// A tour of Orion's static parallelization (paper Sec. 4): for several loop
// shapes, print the classified subscripts, the computed dependence vectors,
// and the plan the planner derives — including a case that needs a
// unimodular (skewing) transformation and a case that cannot be
// parallelized without DistArray Buffers.
//
// Run: ./loop_analysis_tour
#include <cstdio>

#include "src/analysis/dependence.h"
#include "src/analysis/plan.h"
#include "src/ir/analyze_body.h"

using namespace orion;

namespace {

void Show(const char* title, const LoopSpec& spec,
          const std::map<DistArrayId, ArrayStats>& stats) {
  std::printf("== %s ==\n", title);
  for (const auto& a : spec.accesses) {
    std::printf("   access: %s\n", a.ToString().c_str());
  }
  const auto deps = ComputeDependenceVectors(spec);
  std::printf("   dependence vectors:");
  if (deps.empty()) {
    std::printf(" (none)");
  }
  for (const auto& d : deps) {
    std::printf(" %s", d.ToString().c_str());
  }
  PlannerOptions options;
  options.num_workers = 8;
  const auto plan = PlanLoop(spec, stats, options);
  std::printf("\n   plan: %s\n\n", plan.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("Orion static parallelization tour (8 workers assumed)\n\n");

  {
    // SGD matrix factorization (paper Fig. 6).
    LoopSpec spec;
    spec.iter_space = 0;
    spec.iter_extents = {100000, 20000};
    spec.AddAccess(1, "W", {Expr::LoopIndex(0)}, false);
    spec.AddAccess(2, "H", {Expr::LoopIndex(1)}, false);
    spec.AddAccess(1, "W", {Expr::LoopIndex(0)}, true);
    spec.AddAccess(2, "H", {Expr::LoopIndex(1)}, true);
    Show("SGD MF: W[i], H[j] read+write", spec,
         {{1, {100000, 32}}, {2, {20000, 32}}});
  }
  {
    // Word co-occurrence count: writes only, fully independent per (i, j).
    LoopSpec spec;
    spec.iter_space = 0;
    spec.iter_extents = {50000, 50000};
    spec.AddAccess(1, "counts",
                   {Expr::Add(Expr::LoopIndex(0), Expr::Const(0)), Expr::LoopIndex(1)}, true);
    Show("pair counts: counts[i][j] write-only (unordered)", spec, {{1, {250000, 1}}});
  }
  {
    // Sparse logistic regression: runtime subscripts, buffered writes.
    LoopSpec spec;
    spec.iter_space = 0;
    spec.iter_extents = {1000000};
    spec.AddAccess(1, "weights", {Expr::Runtime("nonzero feature id")}, false);
    spec.AddAccess(1, "weights", {Expr::Runtime("nonzero feature id")}, true,
                   /*buffered=*/true);
    Show("SLR: weights[feature(sample)] read + buffered write", spec, {{1, {2000000, 1}}});
  }
  {
    // Same loop but with an *unbuffered* data-dependent write: not
    // statically parallelizable; the planner says to use a buffer.
    LoopSpec spec;
    spec.iter_space = 0;
    spec.iter_extents = {1000000};
    spec.AddAccess(1, "weights", {Expr::Runtime("nonzero feature id")}, false);
    spec.AddAccess(1, "weights", {Expr::Runtime("nonzero feature id")}, true);
    Show("SLR without buffers (unbuffered runtime write)", spec, {{1, {2000000, 1}}});
  }
  {
    // 2-D recurrence: needs a skewing transformation (paper Sec. 4.3).
    LoopSpec spec;
    spec.iter_space = 0;
    spec.iter_extents = {4000, 4000};
    spec.AddAccess(1, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, true);
    spec.AddAccess(1, "C", {Expr::Sub(Expr::LoopIndex(0), Expr::Const(1)), Expr::LoopIndex(1)},
                   false);
    spec.AddAccess(1, "C", {Expr::LoopIndex(0), Expr::Sub(Expr::LoopIndex(1), Expr::Const(1))},
                   false);
    Show("2-D recurrence C[i][j] = f(C[i-1][j], C[i][j-1])", spec, {{1, {16000000, 1}}});
  }
  {
    // Prefetch synthesis (paper Sec. 4.4): write the SLR body as a small
    // program; Orion slices out exactly the statements the weight
    // subscripts depend on and interprets them to produce the key list.
    std::printf("== prefetch synthesis for SLR (sliced access-pattern function) ==\n");
    LoopBody body;
    body.num_index_dims = 1;
    body.num_vars = 5;  // n, f, id, v, margin
    auto two_f = SExpr::Mul(SExpr::Const(2), SExpr::Var(1));
    std::vector<StmtPtr> inner;
    inner.push_back(Stmt::Assign(2, SExpr::IterValueAt(SExpr::Add(SExpr::Const(2), two_f))));
    inner.push_back(Stmt::Assign(3, SExpr::IterValueAt(SExpr::Add(SExpr::Const(3), two_f))));
    inner.push_back(Stmt::Assign(
        4, SExpr::Add(SExpr::Var(4),
                      SExpr::Mul(SExpr::ArrayElem(1, {SExpr::Var(2)}, SExpr::Const(0)),
                                 SExpr::Var(3)))));
    body.stmts.push_back(Stmt::Assign(0, SExpr::IterValueAt(SExpr::Const(1))));
    body.stmts.push_back(Stmt::Assign(4, SExpr::Const(0)));
    body.stmts.push_back(Stmt::For(1, SExpr::Var(0), std::move(inner)));

    const auto program = SynthesizePrefetch(body);
    std::printf("   prefetchable arrays: %zu, unprefetchable: %zu\n",
                program.target_arrays().size(), program.unprefetchable().size());
    const f32 sample[8] = {1.0f, 3.0f, 17.0f, 0.5f, 4.0f, 0.25f, 99.0f, 1.0f};
    std::map<DistArrayId, KeySpace> spaces;
    spaces.emplace(1, KeySpace({1000}));
    std::map<DistArrayId, std::vector<i64>> keys;
    const i64 idx[1] = {0};
    program.Run(idx, sample, 8, spaces, &keys);
    std::printf("   sample [n=3, ids 17 4 99] -> recorded keys:");
    for (i64 k : keys[1]) {
      std::printf(" %lld", static_cast<long long>(k));
    }
    std::printf("\n\n");
  }
  {
    // Scaled subscript: conservatively a range -> serial.
    LoopSpec spec;
    spec.iter_space = 0;
    spec.iter_extents = {10000};
    spec.AddAccess(1, "A", {Expr::Mul(Expr::Const(2), Expr::LoopIndex(0))}, true);
    spec.AddAccess(1, "A", {Expr::LoopIndex(0)}, false);
    Show("A[2*i] write, A[i] read (non-affine-analyzable subscript)", spec,
         {{1, {20000, 1}}});
  }
  return 0;
}
