// Gradient-boosted trees: model-parallel split finding (1D over features,
// as in the paper's Table 2 GBT entry). Trains a small ensemble on a
// planted piecewise-response dataset and prints the learned tree structure.
//
// Run: ./boosted_trees
#include <cstdio>

#include "src/apps/gbt.h"

using namespace orion;

namespace {

void PrintTree(const Tree& tree, int node, int depth) {
  for (int i = 0; i < depth; ++i) {
    std::printf("  ");
  }
  const TreeNode& n = tree.nodes[static_cast<size_t>(node)];
  if (n.feature < 0) {
    std::printf("leaf: %+0.3f\n", n.value);
    return;
  }
  std::printf("feature %d <= bin %d ?\n", n.feature, n.bin);
  PrintTree(tree, n.left, depth + 1);
  PrintTree(tree, n.right, depth + 1);
}

}  // namespace

int main() {
  RegressionConfig data_cfg;
  data_cfg.num_samples = 4000;
  data_cfg.num_features = 16;
  const auto data = GenerateRegression(data_cfg);

  Driver driver({.num_workers = 4});
  GbtConfig gbt;
  gbt.num_trees = 15;
  gbt.max_depth = 3;
  GbtApp app(&driver, gbt);
  ORION_CHECK_OK(app.Init(data));
  std::printf("split-finding plan: %s\n\n", app.split_plan().ToString().c_str());

  std::printf("boosting (%d trees, depth %d):\n", gbt.num_trees, gbt.max_depth);
  const f64 mse0 = app.TrainMse();
  for (int t = 1; t <= gbt.num_trees; ++t) {
    auto mse = app.FitOneTree();
    ORION_CHECK_OK(mse.status());
    if (t % 5 == 0 || t == 1) {
      std::printf("  tree %2d  train MSE = %.4f\n", t, *mse);
    }
  }
  std::printf("MSE reduced %.1fx (%.4f -> %.4f)\n\n", mse0 / app.TrainMse(), mse0,
              app.TrainMse());

  std::printf("first tree (the planted signal splits on features 0-3):\n");
  PrintTree(app.trees().front(), 0, 1);
  return 0;
}
