// Quickstart: parallelize a serial SGD matrix-factorization loop with Orion.
//
// The serial algorithm (paper Alg. 1) is:
//
//   for each rating Z[i][j]:
//     W[i] -= step * dL/dW;  H[j] -= step * dL/dH
//
// With Orion you (1) put the data and parameters in DistArrays, (2) declare
// the loop body's accesses — W[i] and H[j] — and (3) hand the runtime a
// kernel. Static dependence analysis discovers that iterations touching
// different rows AND different columns are independent and derives the
// stratified 2D "rotation" schedule automatically.
//
// Run: ./quickstart
//
// Observability: set ORION_TRACE=/path/to/trace.json to record a cluster
// span timeline (open it at ui.perfetto.dev), and ORION_METRICS=/path/to/
// metrics.json to dump the unified metrics registry. A traced run also
// prints the per-pass critical-path table.
//
// Live telemetry: ORION_OBS_PORT=9464 (or 0 for an ephemeral port) starts
// the background monitor plus a Prometheus endpoint — `curl
// localhost:<port>/metrics` while the loop trains. ORION_OBS_PROM=/path
// additionally self-scrapes the endpoint once at the end and writes the
// exposition text there (what CI validates). ORION_BLACKBOX=/path installs
// the flight-recorder fatal handlers and dumps the black box on exit.
//
// Serve while training: ORION_SERVE_QPS=<keys/sec> starts the read-only
// serving tier over W and H and drives it with ORION_SERVE_THREADS (default
// 2) client threads of batched lookups while the SGD loop runs. W/H rotate
// among workers between passes here, so the example gathers them home and
// republishes after each pass; the clients then read each pass's factors at
// most one pass stale. Achieved QPS and latency print at exit, and the
// serve.* metric families show up on the Prometheus endpoint.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/flight_recorder.h"
#include "src/common/trace.h"
#include "src/obs/metrics_endpoint.h"
#include "src/runtime/driver.h"
#include "src/serve/serving_tier.h"

using namespace orion;  // examples only; library code spells orion:: out

int main() {
  const i64 kRows = 200;
  const i64 kCols = 160;
  const int kRank = 8;

  const char* trace_path = std::getenv("ORION_TRACE");
  const char* metrics_path = std::getenv("ORION_METRICS");
  const char* obs_port = std::getenv("ORION_OBS_PORT");
  const char* prom_path = std::getenv("ORION_OBS_PROM");
  const char* blackbox_path = std::getenv("ORION_BLACKBOX");
  if (trace_path != nullptr) {
    trace::SetEnabled(true);
  }
  if (blackbox_path != nullptr) {
    fr::InstallFatalHandlers();  // fatal dumps go to $ORION_BLACKBOX
  }

  Driver driver({.num_workers = 4});

  int port = 0;
  if (obs_port != nullptr || prom_path != nullptr) {
    auto p = driver.StartMetricsEndpoint(obs_port ? std::atoi(obs_port) : 0);
    ORION_CHECK_OK(p.status());
    port = *p;
    std::printf("live metrics: curl localhost:%d/metrics\n", port);
  }

  // -- 1. DistArrays: sparse ratings, dense factor matrices. --------------
  auto ratings = driver.CreateDistArray("ratings", {kRows, kCols}, 1, Density::kSparse);
  auto w = driver.CreateDistArray("W", {kRows}, kRank, Density::kDense);
  auto h = driver.CreateDistArray("H", {kCols}, kRank, Density::kDense);

  {
    // A little planted low-rank dataset.
    Rng rng(7);
    CellStore& cells = driver.MutableCells(ratings);
    for (int n = 0; n < 4000; ++n) {
      const i64 i = rng.NextIndex(kRows);
      const i64 j = rng.NextIndex(kCols);
      *cells.GetOrCreate(i * kCols + j) =
          3.0f + static_cast<f32>(rng.NextGaussian()) * 0.5f;
    }
  }
  driver.FillRandomNormal(w, 0.1f, 1);
  driver.FillRandomNormal(h, 0.1f, 2);

  // -- 2. Declare the loop: iteration space + accesses. --------------------
  LoopSpec spec;
  spec.iter_space = ratings;
  spec.iter_extents = {kRows, kCols};
  spec.AddAccess(w, "W", {Expr::LoopIndex(0)}, /*is_write=*/false);
  spec.AddAccess(h, "H", {Expr::LoopIndex(1)}, /*is_write=*/false);
  spec.AddAccess(w, "W", {Expr::LoopIndex(0)}, /*is_write=*/true);
  spec.AddAccess(h, "H", {Expr::LoopIndex(1)}, /*is_write=*/true);

  // -- 3. The kernel: the loop body, written against LoopContext. ----------
  int loss_acc = driver.CreateAccumulator();
  const f32 step = 0.03f;
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    f32* wr = ctx.Mutate(w, ki);
    f32* hr = ctx.Mutate(h, kj);
    f32 pred = 0.0f;
    for (int k = 0; k < kRank; ++k) {
      pred += wr[k] * hr[k];
    }
    const f32 diff = value[0] - pred;
    ctx.AccumulatorAdd(loss_acc, static_cast<f64>(diff) * diff);
    for (int k = 0; k < kRank; ++k) {
      const f32 wk = wr[k];
      wr[k] += step * 2.0f * diff * hr[k];
      hr[k] += step * 2.0f * diff * wk;
    }
  };

  // -- Compile once (dependence analysis + plan + scatter), run many. ------
  auto loop = driver.Compile(spec, kernel);
  if (!loop.ok()) {
    std::printf("cannot parallelize: %s\n", loop.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n\n", driver.PlanOf(*loop).ToString().c_str());

  // -- Optional: serve the factors read-only while the loop trains. --------
  const char* serve_qps_env = std::getenv("ORION_SERVE_QPS");
  const char* serve_threads_env = std::getenv("ORION_SERVE_THREADS");
  serve::ServingTier* tier = nullptr;
  std::vector<std::thread> serve_clients;
  std::atomic<bool> serve_stop{false};
  std::atomic<u64> serve_ok{0}, serve_miss{0}, serve_shed{0};
  if (serve_qps_env != nullptr) {
    auto t = driver.StartServingTier({w, h});
    ORION_CHECK_OK(t.status());
    tier = *t;
    const double target_qps = std::atof(serve_qps_env);
    const int nthreads = serve_threads_env ? std::atoi(serve_threads_env) : 2;
    constexpr int kKeysPerLookup = 32;
    for (int c = 0; c < nthreads; ++c) {
      serve_clients.emplace_back([&, c, target_qps, nthreads] {
        const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(kKeysPerLookup * nthreads / target_qps));
        auto next = std::chrono::steady_clock::now();
        u64 x = 0x9e3779b97f4a7c15ull + static_cast<u64>(c);
        std::vector<i64> keys(kKeysPerLookup);
        while (!serve_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_until(next);
          next += interval;
          const bool lookup_w = (x & 1) != 0;
          for (auto& k : keys) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            k = static_cast<i64>((x >> 33) % (lookup_w ? kRows : kCols));
          }
          const auto r = tier->Lookup(lookup_w ? w : h, keys);
          if (r.status == serve::LookupStatus::kOk) {
            ++serve_ok;
          } else if (r.status == serve::LookupStatus::kNotServing) {
            ++serve_miss;
          } else {
            ++serve_shed;
          }
        }
      });
    }
    std::printf("serving W and H at a target of %.0f lookups/sec on %d client thread(s)\n\n",
                target_qps, nthreads);
  }
  const auto serve_t0 = std::chrono::steady_clock::now();

  for (int pass = 1; pass <= 10; ++pass) {
    driver.ResetAccumulator(loss_acc);
    ORION_CHECK_OK(driver.Execute(*loop));
    if (tier != nullptr) {
      // The rotation schedule leaves W/H resident on workers between
      // passes, so the boundary publish inside Execute() skips them; pull
      // them home and republish so clients see this pass's factors.
      (void)driver.Cells(w);
      (void)driver.Cells(h);
      driver.RepublishServingVersions();
    }
    std::printf("pass %2d  training loss (pre-update) = %10.2f\n", pass,
                driver.AccumulatorValue(loss_acc));
  }
  std::printf("\ndone: the loss should have dropped by well over 10x.\n");

  if (tier != nullptr) {
    serve_stop.store(true);
    for (auto& t : serve_clients) {
      t.join();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - serve_t0).count();
    const serve::ServingStats ss = tier->StatsSnapshot();
    const WaitHistogram lat = tier->LatencySnapshot();
    std::printf(
        "served %llu lookups (%.0f keys/sec): ok=%llu warmup-miss=%llu shed=%llu  "
        "p50=%.0fus p99=%.0fus\n",
        static_cast<unsigned long long>(ss.requests),
        secs > 0.0 ? static_cast<double>(ss.keys_looked_up) / secs : 0.0,
        static_cast<unsigned long long>(serve_ok.load()),
        static_cast<unsigned long long>(serve_miss.load()),
        static_cast<unsigned long long>(serve_shed.load()),
        lat.ApproxPercentile(0.50) * 1e6, lat.ApproxPercentile(0.99) * 1e6);
    // Leave the tier running (stopped implicitly when the driver dies) so
    // the metrics export below still carries the serve.* families.
  }

  if (trace_path != nullptr) {
    std::printf("\n%s\n", driver.CriticalPathReport().c_str());
    ORION_CHECK_OK(driver.DumpTrace(trace_path));
    std::printf("trace written to %s (open at ui.perfetto.dev)\n", trace_path);
  }
  if (metrics_path != nullptr) {
    ORION_CHECK_OK(driver.ExportMetrics().DumpJson(metrics_path));
    std::printf("metrics written to %s\n", metrics_path);
  }
  if (prom_path != nullptr) {
    // Self-scrape over the real socket: what an operator's Prometheus sees.
    auto body = obs::HttpGet(port, "/metrics");
    ORION_CHECK_OK(body.status());
    std::FILE* f = std::fopen(prom_path, "wb");
    ORION_CHECK(f != nullptr);
    std::fwrite(body->data(), 1, body->size(), f);
    std::fclose(f);
    std::printf("prometheus exposition written to %s\n", prom_path);
  }
  if (blackbox_path != nullptr) {
    ORION_CHECK_OK(driver.DumpBlackBox(blackbox_path));
    std::printf("flight-recorder black box written to %s\n", blackbox_path);
  }
  return 0;
}
