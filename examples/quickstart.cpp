// Quickstart: parallelize a serial SGD matrix-factorization loop with Orion.
//
// The serial algorithm (paper Alg. 1) is:
//
//   for each rating Z[i][j]:
//     W[i] -= step * dL/dW;  H[j] -= step * dL/dH
//
// With Orion you (1) put the data and parameters in DistArrays, (2) declare
// the loop body's accesses — W[i] and H[j] — and (3) hand the runtime a
// kernel. Static dependence analysis discovers that iterations touching
// different rows AND different columns are independent and derives the
// stratified 2D "rotation" schedule automatically.
//
// Run: ./quickstart
//
// Observability: set ORION_TRACE=/path/to/trace.json to record a cluster
// span timeline (open it at ui.perfetto.dev), and ORION_METRICS=/path/to/
// metrics.json to dump the unified metrics registry. A traced run also
// prints the per-pass critical-path table.
//
// Live telemetry: ORION_OBS_PORT=9464 (or 0 for an ephemeral port) starts
// the background monitor plus a Prometheus endpoint — `curl
// localhost:<port>/metrics` while the loop trains. ORION_OBS_PROM=/path
// additionally self-scrapes the endpoint once at the end and writes the
// exposition text there (what CI validates). ORION_BLACKBOX=/path installs
// the flight-recorder fatal handlers and dumps the black box on exit.
#include <cstdio>
#include <cstdlib>

#include "src/common/flight_recorder.h"
#include "src/common/trace.h"
#include "src/obs/metrics_endpoint.h"
#include "src/runtime/driver.h"

using namespace orion;  // examples only; library code spells orion:: out

int main() {
  const i64 kRows = 200;
  const i64 kCols = 160;
  const int kRank = 8;

  const char* trace_path = std::getenv("ORION_TRACE");
  const char* metrics_path = std::getenv("ORION_METRICS");
  const char* obs_port = std::getenv("ORION_OBS_PORT");
  const char* prom_path = std::getenv("ORION_OBS_PROM");
  const char* blackbox_path = std::getenv("ORION_BLACKBOX");
  if (trace_path != nullptr) {
    trace::SetEnabled(true);
  }
  if (blackbox_path != nullptr) {
    fr::InstallFatalHandlers();  // fatal dumps go to $ORION_BLACKBOX
  }

  Driver driver({.num_workers = 4});

  int port = 0;
  if (obs_port != nullptr || prom_path != nullptr) {
    auto p = driver.StartMetricsEndpoint(obs_port ? std::atoi(obs_port) : 0);
    ORION_CHECK_OK(p.status());
    port = *p;
    std::printf("live metrics: curl localhost:%d/metrics\n", port);
  }

  // -- 1. DistArrays: sparse ratings, dense factor matrices. --------------
  auto ratings = driver.CreateDistArray("ratings", {kRows, kCols}, 1, Density::kSparse);
  auto w = driver.CreateDistArray("W", {kRows}, kRank, Density::kDense);
  auto h = driver.CreateDistArray("H", {kCols}, kRank, Density::kDense);

  {
    // A little planted low-rank dataset.
    Rng rng(7);
    CellStore& cells = driver.MutableCells(ratings);
    for (int n = 0; n < 4000; ++n) {
      const i64 i = rng.NextIndex(kRows);
      const i64 j = rng.NextIndex(kCols);
      *cells.GetOrCreate(i * kCols + j) =
          3.0f + static_cast<f32>(rng.NextGaussian()) * 0.5f;
    }
  }
  driver.FillRandomNormal(w, 0.1f, 1);
  driver.FillRandomNormal(h, 0.1f, 2);

  // -- 2. Declare the loop: iteration space + accesses. --------------------
  LoopSpec spec;
  spec.iter_space = ratings;
  spec.iter_extents = {kRows, kCols};
  spec.AddAccess(w, "W", {Expr::LoopIndex(0)}, /*is_write=*/false);
  spec.AddAccess(h, "H", {Expr::LoopIndex(1)}, /*is_write=*/false);
  spec.AddAccess(w, "W", {Expr::LoopIndex(0)}, /*is_write=*/true);
  spec.AddAccess(h, "H", {Expr::LoopIndex(1)}, /*is_write=*/true);

  // -- 3. The kernel: the loop body, written against LoopContext. ----------
  int loss_acc = driver.CreateAccumulator();
  const f32 step = 0.03f;
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    f32* wr = ctx.Mutate(w, ki);
    f32* hr = ctx.Mutate(h, kj);
    f32 pred = 0.0f;
    for (int k = 0; k < kRank; ++k) {
      pred += wr[k] * hr[k];
    }
    const f32 diff = value[0] - pred;
    ctx.AccumulatorAdd(loss_acc, static_cast<f64>(diff) * diff);
    for (int k = 0; k < kRank; ++k) {
      const f32 wk = wr[k];
      wr[k] += step * 2.0f * diff * hr[k];
      hr[k] += step * 2.0f * diff * wk;
    }
  };

  // -- Compile once (dependence analysis + plan + scatter), run many. ------
  auto loop = driver.Compile(spec, kernel);
  if (!loop.ok()) {
    std::printf("cannot parallelize: %s\n", loop.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n\n", driver.PlanOf(*loop).ToString().c_str());

  for (int pass = 1; pass <= 10; ++pass) {
    driver.ResetAccumulator(loss_acc);
    ORION_CHECK_OK(driver.Execute(*loop));
    std::printf("pass %2d  training loss (pre-update) = %10.2f\n", pass,
                driver.AccumulatorValue(loss_acc));
  }
  std::printf("\ndone: the loss should have dropped by well over 10x.\n");

  if (trace_path != nullptr) {
    std::printf("\n%s\n", driver.CriticalPathReport().c_str());
    ORION_CHECK_OK(driver.DumpTrace(trace_path));
    std::printf("trace written to %s (open at ui.perfetto.dev)\n", trace_path);
  }
  if (metrics_path != nullptr) {
    ORION_CHECK_OK(driver.ExportMetrics().DumpJson(metrics_path));
    std::printf("metrics written to %s\n", metrics_path);
  }
  if (prom_path != nullptr) {
    // Self-scrape over the real socket: what an operator's Prometheus sees.
    auto body = obs::HttpGet(port, "/metrics");
    ORION_CHECK_OK(body.status());
    std::FILE* f = std::fopen(prom_path, "wb");
    ORION_CHECK(f != nullptr);
    std::fwrite(body->data(), 1, body->size(), f);
    std::fclose(f);
    std::printf("prometheus exposition written to %s\n", prom_path);
  }
  if (blackbox_path != nullptr) {
    ORION_CHECK_OK(driver.DumpBlackBox(blackbox_path));
    std::printf("flight-recorder black box written to %s\n", blackbox_path);
  }
  return 0;
}
