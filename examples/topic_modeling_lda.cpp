// Topic-modeling example: collapsed-Gibbs LDA over a synthetic corpus with
// planted topics. Orion schedules the sampler 2D-unordered: doc-topic counts
// stay put, word-topic counts rotate, and the topic totals are replicated
// with buffered (deliberately stale) updates — the paper's "non-critical
// dependence" relaxation.
//
// Run: ./topic_modeling_lda
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/apps/lda.h"

using namespace orion;

int main() {
  CorpusConfig corpus_cfg;
  corpus_cfg.num_docs = 1200;
  corpus_cfg.vocab = 2000;
  corpus_cfg.true_topics = 10;
  corpus_cfg.doc_length = 50;
  const auto corpus = GenerateCorpus(corpus_cfg);
  std::printf("corpus: %lld docs, vocab %lld, %zu distinct (doc, word) cells\n",
              static_cast<long long>(corpus_cfg.num_docs),
              static_cast<long long>(corpus_cfg.vocab), corpus.size());

  Driver driver({.num_workers = 4});
  LdaConfig lda;
  lda.num_topics = 10;
  LdaApp app(&driver, lda);
  ORION_CHECK_OK(app.Init(corpus, corpus_cfg.num_docs, corpus_cfg.vocab));
  std::printf("plan: %s\n\n", app.train_plan().ToString().c_str());

  for (int sweep = 1; sweep <= 20; ++sweep) {
    ORION_CHECK_OK(app.RunPass());
    if (sweep % 5 == 0) {
      std::printf("sweep %2d  per-token log-likelihood = %.4f\n", sweep,
                  *app.EvalLogLikelihood());
    }
  }

  // Show each topic's highest-count words. The generator plants topic t's
  // vocabulary in slice [t*200, (t+1)*200), so good topics concentrate there.
  const CellStore& wt = driver.Cells(app.word_topic());
  std::printf("\ntop words per topic (ids; planted slices are [t*200,(t+1)*200)):\n");
  for (int t = 0; t < lda.num_topics; ++t) {
    std::vector<std::pair<f32, i64>> counts;
    for (i64 word = 0; word < corpus_cfg.vocab; ++word) {
      counts.push_back({wt.Get(word)[t], word});
    }
    std::partial_sort(counts.begin(), counts.begin() + 6, counts.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
    std::printf("  topic %2d:", t);
    for (int x = 0; x < 6; ++x) {
      std::printf(" %4lld", static_cast<long long>(counts[static_cast<size_t>(x)].second));
    }
    std::printf("\n");
  }
  return 0;
}
