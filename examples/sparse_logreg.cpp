// Sparse logistic regression: data-dependent weight accesses force data
// parallelism — reads come from server-hosted weights via Orion's
// synthesized bulk prefetching, writes go through a DistArray Buffer.
// The example trains with each prefetch mode and reports the (modeled)
// communication cost difference (paper Sec. 6.3).
//
// Run: ./sparse_logreg
#include <cstdio>

#include "src/apps/slr.h"

using namespace orion;

int main() {
  SparseLrConfig data_cfg;
  data_cfg.num_samples = 5000;
  data_cfg.num_features = 20000;
  data_cfg.nnz_per_sample = 20;
  const auto data = GenerateSparseLr(data_cfg);
  std::printf("dataset: %lld samples, %lld features, %d nnz/sample\n\n",
              static_cast<long long>(data_cfg.num_samples),
              static_cast<long long>(data_cfg.num_features), data_cfg.nnz_per_sample);

  struct ModeInfo {
    PrefetchMode mode;
    const char* name;
  };
  for (const auto& [mode, name] : {ModeInfo{PrefetchMode::kBulk, "bulk prefetch"},
                                   ModeInfo{PrefetchMode::kCached, "cached prefetch"}}) {
    Driver driver({.num_workers = 4});
    SlrConfig slr;
    slr.loop_options.prefetch = mode;
    SlrApp app(&driver, slr);
    ORION_CHECK_OK(app.Init(data, data_cfg.num_features));
    std::printf("[%s] plan: %s\n", name, app.train_plan().ToString().c_str());
    for (int pass = 1; pass <= 6; ++pass) {
      ORION_CHECK_OK(app.RunPass());
      std::printf("[%s] pass %d  log-loss = %.4f  (%.1f KB moved, %llu msgs)\n", name, pass,
                  app.LastPassLogLoss(),
                  static_cast<double>(app.last_metrics().bytes_sent) / 1024.0,
                  static_cast<unsigned long long>(app.last_metrics().messages_sent));
    }
    std::printf("\n");
  }
  std::printf("note: cached mode skips the synthesized recording pass after the first\n"
              "pass, so its compute per pass is lower; per-key mode (see\n"
              "bench_prefetch_slr) is orders of magnitude slower.\n");
  return 0;
}
