// Recommender-system example: train matrix factorization on a synthetic
// power-law ratings dataset (the paper's Netflix workload stand-in), with
// adaptive revision, checkpointing, and a few sample predictions.
//
// Run: ./recommender_mf
#include <cstdio>

#include "src/apps/sgd_mf.h"

using namespace orion;

int main() {
  RatingsConfig data_cfg;
  data_cfg.rows = 1500;
  data_cfg.cols = 1200;
  data_cfg.nnz = 80000;
  data_cfg.true_rank = 8;
  const auto data = GenerateRatings(data_cfg);
  std::printf("dataset: %lld x %lld, %zu ratings\n",
              static_cast<long long>(data_cfg.rows), static_cast<long long>(data_cfg.cols),
              data.size());

  Driver driver({.num_workers = 4});
  SgdMfConfig mf;
  mf.rank = 16;
  mf.adarev = true;  // adaptive revision via DistArray Buffer apply UDFs
  mf.adarev_alpha = 0.5f;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, data_cfg.rows, data_cfg.cols));
  std::printf("plan: %s\n\n", app.train_plan().ToString().c_str());

  for (int pass = 1; pass <= 12; ++pass) {
    ORION_CHECK_OK(app.RunPass());
    if (pass % 3 == 0) {
      std::printf("pass %2d  NZSL = %.1f\n", pass, *app.EvalLoss());
    }
  }

  // Checkpoint the factors (paper Sec. 4.3 fault tolerance) and restore.
  const std::string ckpt = "/tmp/orion_mf_w.ckpt";
  ORION_CHECK_OK(driver.Checkpoint(app.w(), ckpt));
  ORION_CHECK_OK(driver.Restore(app.w(), ckpt));
  std::printf("\ncheckpointed and restored W (%s)\n", ckpt.c_str());

  // A few predictions from the learned factors.
  const CellStore& w = driver.Cells(app.w());
  const CellStore& h = driver.Cells(app.h());
  std::printf("\nsample predictions (user, item) -> predicted vs actual:\n");
  for (size_t s = 0; s < 5 && s < data.size(); ++s) {
    const auto& e = data[s * (data.size() / 5)];
    const f32* wr = w.Get(e.row);
    const f32* hr = h.Get(e.col);
    f32 pred = 0.0f;
    for (int k = 0; k < mf.rank; ++k) {
      pred += wr[k] * hr[k];
    }
    std::printf("  (%4lld, %4lld) -> %5.2f vs %5.2f\n", static_cast<long long>(e.row),
                static_cast<long long>(e.col), pred, e.value);
  }
  return 0;
}
