// Fig. 11: Orion's automatic parallelization vs STRADS-style *manual* model
// parallelism — (a) SGD MF AdaRev loss over modeled time, (b) LDA
// log-likelihood over modeled time, (c) LDA log-likelihood over iterations.
//
// Paper shape: per-iteration convergence matches (both run the same
// dependence-preserving schedule); STRADS's hand-tuned implementation has
// somewhat higher raw throughput (for the paper, Julia overhead; here, the
// kernel/runtime indirection of the generic system).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/lda.h"
#include "src/apps/sgd_mf.h"
#include "src/baselines/strads_mp.h"

namespace orion {
namespace {

constexpr int kPasses = 12;
constexpr int kWorkers = 4;
constexpr int kRank = 8;
constexpr int kTopics = 20;

int Main() {
  PrintHeader("Fig 11",
              "Orion auto-parallelization vs STRADS manual model parallelism "
              "(MF AdaRev over time; LDA over time and iterations)");
  const auto dcfg = NetflixLike();
  const auto data = GenerateRatings(dcfg);
  const auto ccfg = ClueWebLike();
  const auto corpus = GenerateCorpus(ccfg);

  // ---- (a) SGD MF AdaRev ----
  StradsConfig sc;
  sc.num_workers = kWorkers;
  sc.adarev = true;
  sc.adarev_alpha = 0.5f;
  StradsMf strads_mf(data, dcfg.rows, dcfg.cols, kRank, sc);

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver mf_driver(cfg);
  SgdMfConfig mf;
  mf.rank = kRank;
  mf.adarev = true;
  mf.adarev_alpha = 0.5f;
  SgdMfApp orion_mf(&mf_driver, mf);
  ORION_CHECK_OK(orion_mf.Init(data, dcfg.rows, dcfg.cols));

  std::printf("mf_adarev: iter,strads_t,strads_loss,orion_t,orion_loss\n");
  double ts = 0.0;
  double to = 0.0;
  f64 strads_mf_loss = 0.0;
  f64 orion_mf_loss = 0.0;
  double strads_mf_iter_s = 0.0;
  double orion_mf_iter_s = 0.0;
  for (int p = 0; p < kPasses; ++p) {
    strads_mf.RunPass();
    strads_mf_iter_s = ModeledSeconds(strads_mf.last_pass_compute_max(), 0, 0, kWorkers);
    ts += strads_mf_iter_s;
    strads_mf_loss = strads_mf.EvalLoss();
    ORION_CHECK_OK(orion_mf.RunPass());
    orion_mf_iter_s = ModeledSeconds(orion_mf.last_metrics(), kWorkers);
    to += orion_mf_iter_s;
    orion_mf_loss = *orion_mf.EvalLoss();
    std::printf("%d,%.4f,%.1f,%.4f,%.1f\n", p + 1, ts, strads_mf_loss, to, orion_mf_loss);
  }

  // ---- (b, c) LDA ----
  StradsConfig slc;
  slc.num_workers = kWorkers;
  StradsLda strads_lda(corpus, ccfg.num_docs, ccfg.vocab, kTopics, slc);

  Driver lda_driver(cfg);
  LdaConfig lda;
  lda.num_topics = kTopics;
  LdaApp orion_lda(&lda_driver, lda);
  ORION_CHECK_OK(orion_lda.Init(corpus, ccfg.num_docs, ccfg.vocab));

  std::printf("lda: iter,strads_t,strads_ll,orion_t,orion_ll\n");
  double tls = 0.0;
  double tlo = 0.0;
  f64 strads_ll = 0.0;
  f64 orion_ll = 0.0;
  double strads_lda_iter_s = 0.0;
  double orion_lda_iter_s = 0.0;
  for (int p = 0; p < kPasses; ++p) {
    strads_lda.RunPass();
    strads_lda_iter_s = ModeledSeconds(strads_lda.last_pass_compute_max(), 0, 0, kWorkers);
    tls += strads_lda_iter_s;
    strads_ll = strads_lda.EvalLogLikelihood();
    ORION_CHECK_OK(orion_lda.RunPass());
    orion_lda_iter_s = ModeledSeconds(orion_lda.last_metrics(), kWorkers);
    tlo += orion_lda_iter_s;
    orion_ll = *orion_lda.EvalLogLikelihood();
    std::printf("%d,%.4f,%.4f,%.4f,%.4f\n", p + 1, tls, strads_ll, tlo, orion_ll);
  }

  PrintShape("MF AdaRev: Orion matches manual model parallelism per iteration (within 1.5x)",
             orion_mf_loss < 1.5 * strads_mf_loss && strads_mf_loss < 1.5 * orion_mf_loss);
  // Orion's replicated topic totals are slightly staler than STRADS's
  // per-stratum merge, so it can trail by a small margin.
  PrintShape("LDA: Orion matches manual model parallelism per iteration (within 0.2 nats)",
             orion_ll > strads_ll - 0.2);
  PrintShape("manual STRADS has equal-or-higher throughput (<= Orion time/iter, LDA)",
             strads_lda_iter_s <= orion_lda_iter_s * 1.05);
  PrintShape("Orion LDA time/iter is within ~4x of manual STRADS (paper: 1.8x-4x)",
             orion_lda_iter_s <= 4.5 * strads_lda_iter_s);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
