// Fig. 9a: time per iteration of serial Julia programs vs Orion-parallelized
// programs as worker count grows (SGD MF and LDA).
//
// Reproduced as modeled cluster time per pass (see bench_util.h). The
// paper's shape: Orion beats the serial program from 2 workers on and keeps
// speeding up with more workers.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/lda.h"
#include "src/apps/sgd_mf.h"
#include "src/common/timer.h"

namespace orion {
namespace {

constexpr int kWarmup = 1;
constexpr int kMeasured = 3;

double OrionMfSecondsPerIter(const std::vector<RatingEntry>& data, i64 rows, i64 cols,
                             int workers) {
  DriverConfig cfg;
  cfg.num_workers = workers;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 8;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, rows, cols));
  double total = 0.0;
  for (int p = 0; p < kWarmup + kMeasured; ++p) {
    ORION_CHECK_OK(app.RunPass());
    if (p >= kWarmup) {
      total += ModeledSeconds(app.last_metrics(), workers);
    }
  }
  return total / kMeasured;
}

double OrionLdaSecondsPerIter(const std::vector<TokenEntry>& corpus, i64 docs, i64 vocab,
                              int workers) {
  DriverConfig cfg;
  cfg.num_workers = workers;
  Driver driver(cfg);
  LdaConfig lda;
  lda.num_topics = 20;
  LdaApp app(&driver, lda);
  ORION_CHECK_OK(app.Init(corpus, docs, vocab));
  double total = 0.0;
  for (int p = 0; p < kWarmup + kMeasured; ++p) {
    ORION_CHECK_OK(app.RunPass());
    if (p >= kWarmup) {
      total += ModeledSeconds(app.last_metrics(), workers);
    }
  }
  return total / kMeasured;
}

int Main() {
  PrintHeader("Fig 9a",
              "Modeled seconds/iteration: serial vs Orion with 1..16 workers "
              "(SGD MF on netflix-like, LDA on nytimes-like)");

  const auto ratings_cfg = NetflixLike();
  const auto data = GenerateRatings(ratings_cfg);
  const auto corpus_cfg = NyTimesLike();
  const auto corpus = GenerateCorpus(corpus_cfg);

  // Serial baselines (real wall time of one pass).
  SgdMfConfig mf;
  mf.rank = 8;
  SerialSgdMf serial_mf(data, ratings_cfg.rows, ratings_cfg.cols, mf);
  double serial_mf_s = 0.0;
  {
    serial_mf.RunPass();  // warmup
    Stopwatch sw;
    for (int p = 0; p < kMeasured; ++p) {
      serial_mf.RunPass();
    }
    serial_mf_s = sw.ElapsedSeconds() / kMeasured;
  }
  LdaConfig lda;
  lda.num_topics = 20;
  SerialLda serial_lda(corpus, corpus_cfg.num_docs, corpus_cfg.vocab, lda);
  double serial_lda_s = 0.0;
  {
    serial_lda.RunPass();
    Stopwatch sw;
    for (int p = 0; p < kMeasured; ++p) {
      serial_lda.RunPass();
    }
    serial_lda_s = sw.ElapsedSeconds() / kMeasured;
  }

  std::printf("app,workers,sec_per_iter,speedup_vs_serial\n");
  std::printf("sgd_mf,serial,%.4f,1.00\n", serial_mf_s);
  std::printf("lda,serial,%.4f,1.00\n", serial_lda_s);

  double mf_4w = 0.0;
  double mf_max_speedup = 0.0;
  double lda_4w = 0.0;
  for (int workers : {1, 2, 4, 8, 16}) {
    const double mf_s = OrionMfSecondsPerIter(data, ratings_cfg.rows, ratings_cfg.cols, workers);
    std::printf("sgd_mf,%d,%.4f,%.2f\n", workers, mf_s, serial_mf_s / mf_s);
    if (workers == 4) {
      mf_4w = mf_s;
    }
    mf_max_speedup = std::max(mf_max_speedup, serial_mf_s / mf_s);
    const double lda_s =
        OrionLdaSecondsPerIter(corpus, corpus_cfg.num_docs, corpus_cfg.vocab, workers);
    std::printf("lda,%d,%.4f,%.2f\n", workers, lda_s, serial_lda_s / lda_s);
    if (workers == 4) {
      lda_4w = lda_s;
    }
  }

  // Substitution note: the paper's serial baseline is the serial *Julia*
  // program, which carries the same abstraction overhead Orion does; our
  // serial baseline is a tight C++ loop, so the crossover shifts from 2
  // workers to a few workers.
  PrintShape("Orion overtakes the (tight C++) serial baseline by 4 workers (MF and LDA)",
             mf_4w < serial_mf_s && lda_4w < serial_lda_s);
  PrintShape("speedup keeps growing with workers (MF reaches >= 2.5x by 16 workers)",
             mf_max_speedup >= 2.5);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
