// Comm/compute overlap engine: pass wall time with the engine off vs on,
// under a cost model that charges real time at the sender (so serialized
// communication actually stalls the pass the way a real link would).
//
// Two scenarios:
//   rotation+server — a 2D unordered loop that both rotates a kSpaceTime
//     array every step *and* prefetches a server-hosted table (non-aligned
//     i+j subscript): the overlap engine hides the prefetch round trip under
//     the previous step's compute and moves rotated-partition/flush sends
//     onto the comm thread.
//   sgd_mf — plain rotation (no server arrays): eager rotation only.
//
// Every configuration must be bit-for-bit identical to the synchronous run;
// a mismatch is the only failure (exit 1). Timings are written to
// BENCH_overlap.json for the CI smoke step.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;

std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

bool BitIdentical(const std::map<i64, std::vector<f32>>& a,
                  const std::map<i64, std::vector<f32>>& b) {
  return a == b;  // f32 payloads are finite; == is bitwise here
}

// The cost model that makes serialized communication hurt: every message
// sleeps ~latency + bytes/bandwidth at the sender. The latency is chosen so
// a step's communication is comparable to its compute — the regime the
// overlap engine targets (pure latency-bound passes are limited by the
// transfer dependency chain itself, which no sender-side change shortens).
NetCostModel SlowLink() {
  NetCostModel m;
  m.latency_us = 1000.0;
  m.bandwidth_bps = 2e9;
  m.charge_real_time = true;
  return m;
}

struct RunResult {
  double sec_per_pass = 0.0;
  double overlap_seconds = 0.0;
  double hidden_seconds = 0.0;
  double serve_seconds = 0.0;       // master-side gather+assembly CPU time
  int shard_queue_depth = 0;        // peak requests in flight at the server
  int ring_depth = 0;               // peak prefetch ring occupancy
  double reply_wait_seconds = 0.0;  // executor time blocked on kParamReply
  WaitHistogram reply_wait;         // merged across workers and passes
  u64 zero_copy_bytes = 0;
  std::map<i64, std::vector<f32>> out_r;
  std::map<i64, std::vector<f32>> out_c;
  f64 accum = 0.0;
};

// ---- Scenario 1: rotation schedule + server-hosted table ----

RunResult RunRotationServer(bool overlap, bool zero_copy) {
  constexpr i64 kRows = 64;
  constexpr i64 kCols = 64;
  constexpr int kPasses = 6;

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.net = SlowLink();
  cfg.seed = 11;
  cfg.zero_copy = zero_copy;
  // Serve inline on every config: this bench isolates the overlap engine, and
  // sharded async serving (measured by bench_param_serving) would speed up the
  // sync baseline too and mask the ratio under test.
  cfg.async_param_serving = false;
  Driver driver(cfg);

  auto data = driver.CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  auto out_r = driver.CreateDistArray("out_r", {kRows}, 4, Density::kDense);
  auto out_c = driver.CreateDistArray("out_c", {kCols}, 4, Density::kDense);
  auto table = driver.CreateDistArray("table", {kRows + kCols - 1}, 4, Density::kDense);
  {
    Rng rng(99);
    CellStore& cells = driver.MutableCells(data);
    for (i64 n = 0; n < 2500; ++n) {
      const i64 i = static_cast<i64>(rng.NextBounded(static_cast<u64>(kRows)));
      const i64 j = static_cast<i64>(rng.NextBounded(static_cast<u64>(kCols)));
      *cells.GetOrCreate(i * kCols + j) = 1.0f + 0.25f * static_cast<f32>(n % 7);
    }
    driver.MapCells(table, [](i64 key, f32* v) {
      for (int d = 0; d < 4; ++d) {
        v[d] = 0.5f + 0.001f * static_cast<f32>(key + d);
      }
    });
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kRows, kCols};
  spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);

  const int acc = driver.CreateAccumulator();
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32* t = ctx.Read(table, k);
    // A deterministic compute block: enough arithmetic per record that a
    // step's compute is the same order of magnitude as its communication.
    f32 s = value[0];
    for (int it = 0; it < 11000; ++it) {
      s = s * 0.999f + t[it & 3] * 0.001f;
    }
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    f32* r = ctx.Mutate(out_r, ki);
    f32* c = ctx.Mutate(out_c, kj);
    for (int d = 0; d < 4; ++d) {
      r[d] += s * t[d];
      c[d] += s * t[d];
    }
    ctx.AccumulatorAdd(acc, static_cast<f64>(s));
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;  // warm cache => deep early issue
  options.overlap = overlap;
  options.planner.replicate_threshold_floats = 0;  // force table -> kServer
  auto loop = driver.Compile(spec, kernel, options);
  ORION_CHECK_OK(loop.status());
  ORION_CHECK(driver.PlanOf(*loop).placements.at(table).scheme == PartitionScheme::kServer);

  RunResult res;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(driver.Execute(*loop));
    if (p > 0) {  // skip the recording pass: measure the warm-cache regime
      const LoopMetrics& m = driver.last_metrics();
      res.sec_per_pass += m.pass_wall_seconds;
      res.overlap_seconds += m.overlap_seconds;
      res.hidden_seconds += m.prefetch_wait_hidden_seconds;
      res.serve_seconds += m.param_serve_seconds;
      res.shard_queue_depth = std::max(res.shard_queue_depth, m.param_shard_queue_depth_max);
      res.ring_depth = std::max(res.ring_depth, m.prefetch_ring_depth_used);
      for (const WaitHistogram& h : m.worker_reply_wait) {
        res.reply_wait.Merge(h);
      }
      res.zero_copy_bytes += m.zero_copy_bytes;
    }
  }
  res.reply_wait_seconds = res.reply_wait.total_seconds;
  res.sec_per_pass /= kPasses - 1;
  res.out_r = Snapshot(&driver, out_r);
  res.out_c = Snapshot(&driver, out_c);
  res.accum = driver.AccumulatorValue(acc);
  return res;
}

// ---- Scenario 2: SGD-MF (rotation, no server arrays) ----

RunResult RunSgdMf(bool overlap, bool zero_copy) {
  RatingsConfig d;
  d.rows = 1200;
  d.cols = 960;
  d.nnz = 400000;
  d.true_rank = 8;
  d.seed = 31;
  const auto data = GenerateRatings(d);

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.net = SlowLink();
  cfg.seed = 7;
  cfg.zero_copy = zero_copy;
  cfg.async_param_serving = false;  // same reason as RunRotationServer
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 48;
  mf.loop_options.overlap = overlap;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, d.rows, d.cols));

  RunResult res;
  constexpr int kPasses = 3;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(app.RunPass());
    res.sec_per_pass += driver.last_metrics().pass_wall_seconds;
    res.overlap_seconds += driver.last_metrics().overlap_seconds;
    res.zero_copy_bytes += driver.last_metrics().zero_copy_bytes;
  }
  res.sec_per_pass /= kPasses;
  res.out_r = Snapshot(&driver, app.w());
  res.out_c = Snapshot(&driver, app.h());
  auto loss = app.EvalLoss();
  ORION_CHECK_OK(loss.status());
  res.accum = *loss;
  return res;
}

bool CheckIdentical(const char* scenario, const RunResult& sync, const RunResult& other,
                    const char* config) {
  const bool ok = BitIdentical(sync.out_r, other.out_r) &&
                  BitIdentical(sync.out_c, other.out_c) && sync.accum == other.accum;
  if (!ok) {
    std::printf("MISMATCH: %s %s is not bit-for-bit identical to sync\n", scenario, config);
  }
  return ok;
}

int Main() {
  PrintHeader("comm/compute overlap",
              "pass wall seconds, synchronous vs overlapped (pipelined prefetch + "
              "eager rotation) vs overlapped+zero-copy, real-time-charged link");

  const RunResult rot_sync = RunRotationServer(false, false);
  const RunResult rot_ovl = RunRotationServer(true, false);
  const RunResult rot_zc = RunRotationServer(true, true);
  const RunResult mf_sync = RunSgdMf(false, false);
  const RunResult mf_ovl = RunSgdMf(true, false);
  const RunResult mf_zc = RunSgdMf(true, true);

  bool identical = true;
  identical &= CheckIdentical("rotation+server", rot_sync, rot_ovl, "overlap");
  identical &= CheckIdentical("rotation+server", rot_sync, rot_zc, "overlap+zero_copy");
  identical &= CheckIdentical("sgd_mf", mf_sync, mf_ovl, "overlap");
  identical &= CheckIdentical("sgd_mf", mf_sync, mf_zc, "overlap+zero_copy");

  const double rot_speedup = rot_sync.sec_per_pass / rot_zc.sec_per_pass;
  const double mf_speedup = mf_sync.sec_per_pass / mf_zc.sec_per_pass;

  std::printf("scenario,config,sec_per_pass,overlap_sec,hidden_sec,zero_copy_bytes\n");
  std::printf("rotation_server,sync,%.4f,%.4f,%.4f,%llu\n", rot_sync.sec_per_pass,
              rot_sync.overlap_seconds, rot_sync.hidden_seconds,
              static_cast<unsigned long long>(rot_sync.zero_copy_bytes));
  std::printf("rotation_server,overlap,%.4f,%.4f,%.4f,%llu\n", rot_ovl.sec_per_pass,
              rot_ovl.overlap_seconds, rot_ovl.hidden_seconds,
              static_cast<unsigned long long>(rot_ovl.zero_copy_bytes));
  std::printf("rotation_server,overlap_zero_copy,%.4f,%.4f,%.4f,%llu\n", rot_zc.sec_per_pass,
              rot_zc.overlap_seconds, rot_zc.hidden_seconds,
              static_cast<unsigned long long>(rot_zc.zero_copy_bytes));
  std::printf("sgd_mf,sync,%.4f,%.4f,,%llu\n", mf_sync.sec_per_pass, mf_sync.overlap_seconds,
              static_cast<unsigned long long>(mf_sync.zero_copy_bytes));
  std::printf("sgd_mf,overlap,%.4f,%.4f,,%llu\n", mf_ovl.sec_per_pass, mf_ovl.overlap_seconds,
              static_cast<unsigned long long>(mf_ovl.zero_copy_bytes));
  std::printf("sgd_mf,overlap_zero_copy,%.4f,%.4f,,%llu\n", mf_zc.sec_per_pass,
              mf_zc.overlap_seconds, static_cast<unsigned long long>(mf_zc.zero_copy_bytes));
  std::printf("speedup rotation+server: %.2fx, sgd_mf: %.2fx\n", rot_speedup, mf_speedup);
  std::printf(
      "rotation_server overlap: serve_sec=%.4f shard_queue_depth=%d ring_depth=%d "
      "reply_wait_sec=%.4f reply_wait_p50=%.6f reply_wait_p99=%.6f\n",
      rot_ovl.serve_seconds, rot_ovl.shard_queue_depth, rot_ovl.ring_depth,
      rot_ovl.reply_wait_seconds, rot_ovl.reply_wait.ApproxPercentile(0.5),
      rot_ovl.reply_wait.ApproxPercentile(0.99));

  BenchJson("overlap")
      .Figure("rotation_server",
              JsonF("{\"sync_sec\": %.6f, \"overlap_sec\": %.6f, "
                    "\"overlap_zero_copy_sec\": %.6f, \"speedup\": %.3f}",
                    rot_sync.sec_per_pass, rot_ovl.sec_per_pass, rot_zc.sec_per_pass,
                    rot_speedup))
      .Figure("sgd_mf",
              JsonF("{\"sync_sec\": %.6f, \"overlap_sec\": %.6f, "
                    "\"overlap_zero_copy_sec\": %.6f, \"speedup\": %.3f}",
                    mf_sync.sec_per_pass, mf_ovl.sec_per_pass, mf_zc.sec_per_pass,
                    mf_speedup))
      .Figure("bit_for_bit_identical", identical)
      .Write();

  PrintShape("overlap hides >= 1.3x of the rotation+server pass time", rot_speedup >= 1.3);
  PrintShape("eager rotation speeds up SGD-MF passes", mf_speedup > 1.0);
  PrintShape("all configurations bit-for-bit identical to sync", identical);
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
