// Speculative parameter prefetch for ordered schedules: step t+1's server
// reads are fetched while step t computes, validated against the dirty-range
// summaries the barrier releases carry, and repaired key-by-key on conflict.
//
// On a latency-charged link the synchronous wavefront pays a blocking
// request/reply round trip every step on top of the per-step barrier;
// speculation overlaps that round trip with compute and the barrier itself,
// so the pass time drops while the result stays bit-for-bit identical —
// including under message-fault chaos. A second, conflict-heavy workload
// (the skewed-wavefront recurrence, whose step t+1 reads exactly what step t
// wrote) shows the controller measuring a ~100% conflict rate and reverting
// to synchronous fetches.
//
// Emits BENCH_speculation.json; exits 1 on any bitwise mismatch.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;
constexpr int kWarmup = 2;    // pass 0 records the kCached key lists; pass 1
                              // lets the controller pick its depth
constexpr int kMeasured = 4;

std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

bool BitIdentical(const std::map<i64, std::vector<f32>>& a,
                  const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end() || va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return false;
    }
  }
  return true;
}

// A congested cluster link with a charged (slept) per-message latency and a
// bandwidth term that makes the wide parameter replies the expensive part:
// blocking round trips show up as real pass-time, hidden ones do not.
NetCostModel LatencyChargedLink() {
  NetCostModel net;
  net.latency_us = 200.0;
  net.bandwidth_bps = 1.2e8;
  net.charge_real_time = true;
  return net;
}

// ---------------------------------------------------------------------------
// Wavefront workload: ordered 2-D sweep reading a server-hosted table every
// step (read-only: zero conflicts, the pure-win case for speculation).

struct WavefrontResult {
  double sec_per_pass = 0.0;
  LoopMetrics last;
  std::map<i64, std::vector<f32>> out_r;
  std::map<i64, std::vector<f32>> out_c;
};

WavefrontResult RunWavefront(bool speculate, FaultPlan fault_plan = {}) {
  constexpr i64 kRows = 16;
  constexpr i64 kCols = 16;
  // Wide cells: each step's table fetch moves ~tens of KB, so on the
  // bandwidth-limited link the reply transfer — not the fixed latency — is
  // what the synchronous wavefront blocks on every step.
  constexpr int kDim = 2048;

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.seed = 21;
  cfg.net = LatencyChargedLink();
  cfg.fault_plan = fault_plan;
  auto driver = std::make_unique<Driver>(cfg);
  auto data = driver->CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  auto out_r = driver->CreateDistArray("out_r", {kRows}, 1, Density::kDense);
  auto out_c = driver->CreateDistArray("out_c", {kCols}, 1, Density::kDense);
  auto table = driver->CreateDistArray("table", {kRows + kCols - 1}, kDim, Density::kDense);
  {
    CellStore& cells = driver->MutableCells(data);
    for (i64 i = 0; i < kRows; ++i) {
      for (i64 j = 0; j < kCols; ++j) {
        *cells.GetOrCreate(i * kCols + j) = 1.0f;
      }
    }
    driver->MapCells(table, [](i64 key, f32* v) {
      for (int d = 0; d < kDim; ++d) {
        v[d] = static_cast<f32>(key + 1 + d);
      }
    });
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kRows, kCols};
  spec.ordered = true;
  spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);

  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32* tv = ctx.Read(table, k);
    f32 t = 0.0f;
    for (int d = 0; d < kDim; ++d) {
      t += tv[d];
    }
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    ctx.Mutate(out_r, ki)[0] += value[0] * t;
    ctx.Mutate(out_c, kj)[0] += value[0] * t;
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.speculate = speculate;
  // Let the controller pipeline a few steps ahead: one step's window is
  // shorter than the wide reply's transfer time, so depth > 1 is where the
  // round trip actually disappears from the critical path.
  options.prefetch_depth_max = 4;
  options.planner.replicate_threshold_floats = 0;
  auto loop = driver->Compile(spec, kernel, options);
  ORION_CHECK(loop.ok()) << loop.status();
  ORION_CHECK(driver->PlanOf(*loop).ordered);

  WavefrontResult res;
  for (int p = 0; p < kWarmup + kMeasured; ++p) {
    ORION_CHECK_OK(driver->Execute(*loop));
    if (p >= kWarmup) {
      res.sec_per_pass += driver->last_metrics().pass_wall_seconds;
    }
  }
  res.sec_per_pass /= kMeasured;
  res.last = driver->last_metrics();
  res.out_r = Snapshot(driver.get(), out_r);
  res.out_c = Snapshot(driver.get(), out_c);
  return res;
}

// ---------------------------------------------------------------------------
// Conflict workload: the skewed-wavefront recurrence, where step t+1 reads
// exactly the frontier step t overwrote — every speculative slot needs a
// repair, and the controller should measure that and fall back.

struct RecurrenceResult {
  LoopMetrics speculating_pass;  // the one pass that speculated
  int depth_after = -1;          // effective depth once the controller reacted
  double conflict_rate = 0.0;
  std::map<i64, std::vector<f32>> c_final;
};

RecurrenceResult RunRecurrence(bool speculate) {
  const i64 n = 14;
  const i64 m = 11;

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.net = LatencyChargedLink();
  Driver driver(cfg);
  auto grid = driver.CreateDistArray("grid", {n, m}, 1, Density::kSparse);
  auto b = driver.CreateDistArray("B", {n, m}, 1, Density::kDense);
  auto c = driver.CreateDistArray("C", {n, m}, 1, Density::kDense);
  {
    CellStore& cells = driver.MutableCells(grid);
    for (i64 i = 0; i < n; ++i) {
      for (i64 j = 0; j < m; ++j) {
        *cells.GetOrCreate(i * m + j) = 1.0f;
      }
    }
    Rng rng(31);
    driver.MapCells(b, [&](i64, f32* v) { v[0] = static_cast<f32>(1 + rng.NextBounded(5)); });
  }

  LoopSpec spec;
  spec.iter_space = grid;
  spec.iter_extents = {n, m};
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/true);
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/false);
  spec.AddAccess(c, "C", {Expr::Sub(Expr::LoopIndex(0), Expr::Const(1)), Expr::LoopIndex(1)},
                 /*is_write=*/false);
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::Sub(Expr::LoopIndex(1), Expr::Const(1))},
                 /*is_write=*/false);
  spec.AddAccess(b, "B", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/false);

  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 i = idx[0];
    const i64 j = idx[1];
    f32 up = 0.0f;
    f32 left = 0.0f;
    if (i > 0) {
      const i64 ku[2] = {i - 1, j};
      up = ctx.Read(c, ku)[0];
    }
    if (j > 0) {
      const i64 kl[2] = {i, j - 1};
      left = ctx.Read(c, kl)[0];
    }
    const i64 kb[2] = {i, j};
    const f32 add = ctx.Read(b, kb)[0];
    const f32 old = ctx.Read(c, kb)[0];
    f32* out = ctx.Mutate(c, kb);
    out[0] = up + left + add + old;
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.speculate = speculate;
  auto loop = driver.Compile(spec, kernel, options);
  ORION_CHECK(loop.ok()) << loop.status();

  RecurrenceResult res;
  ORION_CHECK_OK(driver.Execute(*loop));  // records keys
  ORION_CHECK_OK(driver.Execute(*loop));  // speculates (when enabled)
  res.speculating_pass = driver.last_metrics();
  res.conflict_rate = driver.ExportMetrics().Gauge("spec.conflict_rate");
  ORION_CHECK_OK(driver.Execute(*loop));  // controller has reacted
  res.depth_after = driver.last_metrics().spec_depth_effective;
  res.c_final = Snapshot(&driver, c);
  return res;
}

int Main() {
  PrintHeader("Speculative prefetch",
              "Ordered wavefront with snapshot-sourced step t+1 fetches, "
              "conflict validation, and partial repair (4 workers, "
              "200us / 120Mb/s latency-charged link)");

  const WavefrontResult sync = RunWavefront(/*speculate=*/false);
  const WavefrontResult spec = RunWavefront(/*speculate=*/true);

  FaultPlan chaos;
  chaos.seed = 13;
  chaos.drop_prob = 0.02;
  chaos.dup_prob = 0.02;
  chaos.delay_prob = 0.02;
  const WavefrontResult faulted = RunWavefront(/*speculate=*/true, chaos);

  const double speedup = sync.sec_per_pass / spec.sec_per_pass;
  const bool identical =
      BitIdentical(sync.out_r, spec.out_r) && BitIdentical(sync.out_c, spec.out_c);
  const bool faulted_identical =
      BitIdentical(sync.out_r, faulted.out_r) && BitIdentical(sync.out_c, faulted.out_c);

  const RecurrenceResult rec_sync = RunRecurrence(false);
  const RecurrenceResult rec_spec = RunRecurrence(true);
  const bool rec_identical = BitIdentical(rec_sync.c_final, rec_spec.c_final);

  std::printf("workload,config,sec_per_pass,spec_issued,spec_conflicts,hidden_s,wait_s\n");
  std::printf("wavefront,sync,%.4f,%llu,%llu,%.4f,%.4f\n", sync.sec_per_pass,
              static_cast<unsigned long long>(sync.last.spec_issued),
              static_cast<unsigned long long>(sync.last.spec_conflicts),
              sync.last.spec_hidden_seconds, sync.last.spec_wait_seconds);
  std::printf("wavefront,speculate,%.4f,%llu,%llu,%.4f,%.4f\n", spec.sec_per_pass,
              static_cast<unsigned long long>(spec.last.spec_issued),
              static_cast<unsigned long long>(spec.last.spec_conflicts),
              spec.last.spec_hidden_seconds, spec.last.spec_wait_seconds);
  std::printf("wavefront speedup: %.2fx, hidden=%.4fs\n", speedup,
              spec.last.spec_hidden_seconds);
  std::printf(
      "recurrence (forced conflicts): conflict_rate=%.2f issued=%llu conflicts=%llu "
      "repair_bytes=%llu depth_after=%d\n",
      rec_spec.conflict_rate,
      static_cast<unsigned long long>(rec_spec.speculating_pass.spec_issued),
      static_cast<unsigned long long>(rec_spec.speculating_pass.spec_conflicts),
      static_cast<unsigned long long>(rec_spec.speculating_pass.spec_repair_bytes),
      rec_spec.depth_after);

  BenchJson("speculation")
      .Figure("wavefront",
              JsonF("{\"sync_sec\": %.6f, \"spec_sec\": %.6f, \"speedup\": %.3f, "
                    "\"spec_issued\": %llu, \"spec_conflicts\": %llu, "
                    "\"hidden_seconds\": %.6f, \"wait_seconds\": %.6f}",
                    sync.sec_per_pass, spec.sec_per_pass, speedup,
                    static_cast<unsigned long long>(spec.last.spec_issued),
                    static_cast<unsigned long long>(spec.last.spec_conflicts),
                    spec.last.spec_hidden_seconds, spec.last.spec_wait_seconds))
      .Figure("recurrence",
              JsonF("{\"conflict_rate\": %.3f, \"spec_issued\": %llu, "
                    "\"spec_conflicts\": %llu, \"repair_bytes\": %llu, "
                    "\"controller_disabled\": %s}",
                    rec_spec.conflict_rate,
                    static_cast<unsigned long long>(rec_spec.speculating_pass.spec_issued),
                    static_cast<unsigned long long>(rec_spec.speculating_pass.spec_conflicts),
                    static_cast<unsigned long long>(
                        rec_spec.speculating_pass.spec_repair_bytes),
                    rec_spec.depth_after == 0 ? "true" : "false"))
      .Figure("bit_for_bit_identical", identical)
      .Figure("faulted_identical", faulted_identical)
      .Figure("recurrence_identical", rec_identical)
      .Write();

  PrintShape("speculation speeds up the ordered wavefront >= 1.2x", speedup >= 1.2);
  PrintShape("speculative replies land while compute runs (hidden wait > 0)",
             spec.last.spec_hidden_seconds > 0.0);
  PrintShape("bit-for-bit identical to synchronous (clean + faulted + conflicts)",
             identical && faulted_identical && rec_identical);
  PrintShape("controller reverts to synchronous under forced conflicts",
             rec_spec.depth_after == 0);

  const bool ok = identical && faulted_identical && rec_identical;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
