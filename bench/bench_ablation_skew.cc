// Ablation (Sec. 4.3 "Dealing with Skewed Data Distribution"): histogram-
// balanced iteration-space partitioning vs naive equal-width partitioning
// on heavily skewed (Zipf) data.
//
// Equal-width splits put most of a power-law dataset's mass on one worker;
// the histogram splits equalize iteration counts. The effect shows up
// directly in the slowest worker's compute time (the pass critical path).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;
constexpr int kWarmup = 1;
constexpr int kMeasured = 3;

double Measure(const std::vector<RatingEntry>& data, i64 rows, i64 cols, bool equal_width) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 8;
  mf.loop_options.equal_width_partitions = equal_width;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, rows, cols));
  double total = 0.0;
  for (int p = 0; p < kWarmup + kMeasured; ++p) {
    ORION_CHECK_OK(app.RunPass());
    if (p >= kWarmup) {
      total += app.last_metrics().max_worker_compute_seconds;
    }
  }
  return total / kMeasured;
}

int Main() {
  PrintHeader("Ablation: skew-aware partitioning",
              "SGD MF on heavily skewed (zipf 1.0) ratings: slowest-worker "
              "compute per pass, histogram splits vs equal-width splits");
  RatingsConfig dcfg = NetflixLike();
  dcfg.zipf_alpha = 1.0;  // heavier skew than the default
  const auto data = GenerateRatings(dcfg);

  const double hist = Measure(data, dcfg.rows, dcfg.cols, /*equal_width=*/false);
  const double width = Measure(data, dcfg.rows, dcfg.cols, /*equal_width=*/true);

  std::printf("partitioning,critical_path_s\n");
  std::printf("histogram,%.4f\n", hist);
  std::printf("equal_width,%.4f\n", width);
  std::printf("imbalance penalty: %.2fx\n", width / hist);
  PrintShape("histogram-balanced partitioning beats equal-width on skewed data (>1.2x)",
             width > 1.2 * hist);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
