// Fig. 12: network bandwidth usage while training LDA on the nytimes-like
// corpus — Orion's dependence-aware schedule vs Bösen with managed
// communication.
//
// Paper shape: managed communication aggressively spends bandwidth
// (proactive update/value shipping under a budget), using substantially
// more than Orion, whose rotation schedule moves each parameter partition
// exactly once per pass.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/lda.h"
#include "src/baselines/bosen_ps.h"

namespace orion {
namespace {

constexpr int kPasses = 10;
constexpr int kWorkers = 4;
constexpr int kTopics = 20;

int Main() {
  PrintHeader("Fig 12",
              "Bandwidth usage over (modeled) time, LDA nytimes-like: Orion vs "
              "Bösen managed communication");
  const auto ccfg = NyTimesLike();
  const auto corpus = GenerateCorpus(ccfg);

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  LdaConfig lda;
  lda.num_topics = kTopics;
  LdaApp orion_app(&driver, lda);
  ORION_CHECK_OK(orion_app.Init(corpus, ccfg.num_docs, ccfg.vocab));

  BosenConfig cm_cfg;
  cm_cfg.num_workers = kWorkers;
  cm_cfg.managed_comm = true;
  cm_cfg.comm_intervals_per_pass = 16;
  BosenLda cm(corpus, ccfg.num_docs, ccfg.vocab, kTopics, cm_cfg);

  std::printf("pass,orion_t,orion_mbps,bosen_cm_t,bosen_cm_mbps\n");
  double to = 0.0;
  double tc = 0.0;
  u64 orion_total = 0;
  u64 cm_total = 0;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(orion_app.RunPass());
    const auto& m = orion_app.last_metrics();
    const double orion_s = ModeledSeconds(m, kWorkers);
    to += orion_s;
    orion_total += m.bytes_sent;
    const double orion_mbps = static_cast<double>(m.bytes_sent) * 8.0 / orion_s / 1e6;

    cm.RunPass();
    const double cm_s =
        ModeledSeconds(cm.last_pass_compute_max(), cm.last_pass_bytes(), 0, kWorkers);
    tc += cm_s;
    cm_total += cm.last_pass_bytes();
    const double cm_mbps = static_cast<double>(cm.last_pass_bytes()) * 8.0 / cm_s / 1e6;

    std::printf("%d,%.4f,%.1f,%.4f,%.1f\n", p + 1, to, orion_mbps, tc, cm_mbps);
  }

  std::printf("total bytes: orion=%llu bosen_cm=%llu\n",
              static_cast<unsigned long long>(orion_total),
              static_cast<unsigned long long>(cm_total));
  PrintShape("Bösen managed comm uses substantially more bandwidth than Orion (>2x bytes)",
             cm_total > 2 * orion_total);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
