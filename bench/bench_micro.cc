// Library micro-benchmarks (google-benchmark): the static-analysis path
// (subscript classification, dependence vectors, planning), storage
// primitives, and schedule math. These quantify the "compilation" cost the
// paper amortizes by compiling each loop once (Sec. 4.1).
#include <benchmark/benchmark.h>

#include "src/analysis/dependence.h"
#include "src/analysis/plan.h"
#include "src/analysis/unimodular.h"
#include "src/common/rng.h"
#include "src/dsm/cell_store.h"
#include "src/ir/expr.h"
#include "src/sched/schedule.h"

namespace orion {
namespace {

LoopSpec MfSpec() {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {10000, 8000};
  spec.AddAccess(1, "W", {Expr::LoopIndex(0)}, false);
  spec.AddAccess(2, "H", {Expr::LoopIndex(1)}, false);
  spec.AddAccess(1, "W", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(2, "H", {Expr::LoopIndex(1)}, true);
  return spec;
}

void BM_ClassifySubscript(benchmark::State& state) {
  auto e = Expr::Add(Expr::LoopIndex(1), Expr::Const(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifySubscript(e));
  }
}
BENCHMARK(BM_ClassifySubscript);

void BM_ComputeDependenceVectors(benchmark::State& state) {
  const LoopSpec spec = MfSpec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDependenceVectors(spec));
  }
}
BENCHMARK(BM_ComputeDependenceVectors);

void BM_PlanLoop(benchmark::State& state) {
  const LoopSpec spec = MfSpec();
  std::map<DistArrayId, ArrayStats> stats;
  stats[1] = ArrayStats{10000, 8};
  stats[2] = ArrayStats{8000, 8};
  PlannerOptions options;
  options.num_workers = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanLoop(spec, stats, options));
  }
}
BENCHMARK(BM_PlanLoop);

void BM_UnimodularSearch(benchmark::State& state) {
  std::vector<DepVec> deps;
  DepVec d1(2);
  d1[0] = DepEntry::Value(0);
  d1[1] = DepEntry::Value(1);
  DepVec d2(2);
  d2[0] = DepEntry::Value(1);
  d2[1] = DepEntry::Value(0);
  deps.push_back(d1);
  deps.push_back(d2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindOuterCarryingTransform(deps));
  }
}
BENCHMARK(BM_UnimodularSearch);

void BM_CellStoreHashedGet(benchmark::State& state) {
  CellStore store(8, CellStore::Layout::kHashed, 0);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    store.GetOrCreate(static_cast<i64>(rng.NextBounded(1 << 20)));
  }
  Rng probe(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get(static_cast<i64>(probe.NextBounded(1 << 20))));
  }
}
BENCHMARK(BM_CellStoreHashedGet);

void BM_CellStoreDenseRangeGet(benchmark::State& state) {
  CellStore store = CellStore::DenseRange(8, 1000, 101000);
  Rng probe(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get(1000 + static_cast<i64>(probe.NextBounded(100000))));
  }
}
BENCHMARK(BM_CellStoreDenseRangeGet);

void BM_CellStoreSerializeRoundtrip(benchmark::State& state) {
  CellStore store = CellStore::DenseRange(8, 0, 9999);
  for (auto _ : state) {
    ByteWriter w;
    store.Serialize(&w);
    auto bytes = w.Take();
    ByteReader r(bytes);
    benchmark::DoNotOptimize(CellStore::Deserialize(&r));
  }
}
BENCHMARK(BM_CellStoreSerializeRoundtrip);

void BM_RotationScheduleMath(benchmark::State& state) {
  RotationSchedule sched{16, 2};
  int step = 0;
  for (auto _ : state) {
    step = (step + 1) % sched.num_steps();
    for (int w = 0; w < sched.num_workers; ++w) {
      benchmark::DoNotOptimize(sched.TimePartAt(w, step));
    }
  }
}
BENCHMARK(BM_RotationScheduleMath);

}  // namespace
}  // namespace orion

BENCHMARK_MAIN();
