// Online serving while training: the serving tier answers batched lookups
// from pinned COW snapshots concurrently with an ordered wavefront pass.
//
// Run A trains alone; run B trains the identical workload while paced
// client threads drive batched lookups (256 keys/request) against the tier
// at ~150k keys/sec. The headline gates, checked by CI from the emitted
// JSON:
//   - bitwise_match: run B's final arrays are byte-identical to run A's
//     (serving is invisible to training) — the bench itself exits 1 if not;
//   - sustained_lookups_per_sec >= 100k, measured strictly inside the
//     training window;
//   - p99_seconds within p99_budget_seconds (generous: CI runners
//     timeshare one core between trainer, tier, and clients);
//   - training_slowdown_frac < 10% (median pass wall, B vs A);
//   - overload_shed_rate > 0: a deliberately rate-limited tier driven at 2x
//     its capacity sheds with explicit statuses instead of blocking.
//
// Freshness is spot-checked each pass against the workload's closed form
// (integer sums, exact in f32), so the tier is provably serving the latest
// published version, not a stale pin.
//
// Results go to BENCH_serving_tier.json for the CI gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/driver.h"
#include "src/serve/serving_tier.h"

namespace orion {
namespace {

using serve::LookupResult;
using serve::LookupStatus;
using serve::ServingTier;
using serve::ServingTierOptions;

constexpr i64 kRows = 64;
constexpr i64 kCols = 64;
constexpr int kPasses = 16;
constexpr int kClientThreads = 2;
constexpr int kKeysPerRequest = 256;
constexpr double kTargetKeysPerSec = 150e3;
constexpr double kP99BudgetSeconds = 0.20;  // single shared core in CI

std::map<i64, std::vector<f32>> SnapshotArray(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

bool BitIdentical(const std::map<i64, std::vector<f32>>& a,
                  const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end() || va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return false;
    }
  }
  return true;
}

struct Wavefront {
  std::unique_ptr<Driver> driver;
  DistArrayId data{}, out_r{}, out_c{}, table{};
  i32 loop = -1;
};

// Ordered 2-D wavefront: `table` is server-hosted (kServer), out_c rotates
// (kSpaceTime) and returns to the master every pass boundary, so both
// republish each pass. All sums are small integers — exact in f32:
//   out_c[j] after pass p = p * (kRows*j + kRows + kRows*(kRows-1)/2)
Wavefront MakeWavefront() {
  Wavefront w;
  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.seed = 21;
  cfg.param_server_shards = 4;
  w.driver = std::make_unique<Driver>(cfg);
  w.data = w.driver->CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  w.out_r = w.driver->CreateDistArray("out_r", {kRows}, 1, Density::kDense);
  w.out_c = w.driver->CreateDistArray("out_c", {kCols}, 1, Density::kDense);
  w.table = w.driver->CreateDistArray("table", {kRows + kCols - 1}, 1, Density::kDense);
  {
    CellStore& cells = w.driver->MutableCells(w.data);
    for (i64 i = 0; i < kRows; ++i) {
      for (i64 j = 0; j < kCols; ++j) {
        *cells.GetOrCreate(i * kCols + j) = 1.0f;
      }
    }
    w.driver->MapCells(w.table, [](i64 key, f32* v) { v[0] = static_cast<f32>(key + 1); });
  }

  LoopSpec spec;
  spec.iter_space = w.data;
  spec.iter_extents = {kRows, kCols};
  spec.ordered = true;
  spec.AddAccess(w.out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(w.out_c, "out_c", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(w.table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);
  const DistArrayId out_r = w.out_r;
  const DistArrayId out_c = w.out_c;
  const DistArrayId table = w.table;
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32 t = ctx.Read(table, k)[0];
    // Deterministic compute ballast: stretches a pass to ~10ms so the
    // slowdown comparison is not dominated by per-pass scheduler jitter on
    // shared CI cores. volatile defeats loop elision; the result is unused.
    volatile f32 sink = 0.0f;
    for (int s = 0; s < 2500; ++s) {
      sink = sink + 1.0f;
    }
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    ctx.Mutate(out_r, ki)[0] += value[0] * t;
    ctx.Mutate(out_c, kj)[0] += value[0] * t;
  };
  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.planner.replicate_threshold_floats = 0;
  auto loop = w.driver->Compile(spec, kernel, options);
  ORION_CHECK_OK(loop.status());
  ORION_CHECK(w.driver->PlanOf(*loop).placements.at(w.table).scheme ==
              PartitionScheme::kServer);
  w.loop = *loop;
  return w;
}

f32 ExpectedOutC(int pass, i64 j) {
  return static_cast<f32>(pass * (kRows * j + kRows + kRows * (kRows - 1) / 2));
}

// Deadline-paced client: batched lookups against the tier at a fixed rate,
// alternating arrays. Self-corrects after oversleep by issuing immediately
// until caught up (bursts count against the tier's own p99, as they would
// in production).
struct PacedClient {
  PacedClient(ServingTier* tier, std::vector<DistArrayId> arrays, double keys_per_sec)
      : tier_(tier), arrays_(std::move(arrays)) {
    interval_ = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(kKeysPerRequest / keys_per_sec));
    thread_ = std::thread([this] { Run(); });
  }
  void StopAndJoin() {
    stop_.store(true);
    thread_.join();
  }
  void Run() {
    std::vector<i64> keys(kKeysPerRequest);
    auto next = std::chrono::steady_clock::now();
    u64 x = 0x9e3779b97f4a7c15ull;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_until(next);
      next += interval_;
      for (auto& k : keys) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        k = static_cast<i64>((x >> 33) % kCols);
      }
      const LookupResult r = tier_->Lookup(arrays_[x % arrays_.size()], keys);
      switch (r.status) {
        case LookupStatus::kOk:
          ++ok_;
          break;
        case LookupStatus::kNotServing:
          ++not_serving_;
          break;
        default:
          ++shed_;
          break;
      }
    }
  }

  ServingTier* tier_;
  std::vector<DistArrayId> arrays_;
  std::chrono::steady_clock::duration interval_{};
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<u64> ok_{0}, not_serving_{0}, shed_{0};
};

double MedianSeconds(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct TrainResult {
  std::vector<double> pass_seconds;
  std::map<i64, std::vector<f32>> out_r, out_c, table;
};

int Main() {
  PrintHeader("serving_tier",
              "Batched snapshot lookups served concurrently with an ordered "
              "wavefront; training must be bit-for-bit unaffected.");

  // ---- Run A: training alone -------------------------------------------
  TrainResult a;
  {
    Wavefront w = MakeWavefront();
    for (int p = 0; p < kPasses; ++p) {
      const auto t0 = std::chrono::steady_clock::now();
      ORION_CHECK_OK(w.driver->Execute(w.loop));
      a.pass_seconds.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    }
    a.out_r = SnapshotArray(w.driver.get(), w.out_r);
    a.out_c = SnapshotArray(w.driver.get(), w.out_c);
    a.table = SnapshotArray(w.driver.get(), w.table);
  }

  // ---- Run B: training + tier + paced clients --------------------------
  TrainResult b;
  double sustained_qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  u64 client_ok = 0;
  u64 client_not_serving = 0;
  u64 client_shed = 0;
  bool fresh_ok = true;
  {
    Wavefront w = MakeWavefront();
    auto tier_or = w.driver->StartServingTier({w.out_c, w.table});
    ORION_CHECK_OK(tier_or.status());
    ServingTier* tier = *tier_or;

    std::vector<std::unique_ptr<PacedClient>> clients;
    for (int c = 0; c < kClientThreads; ++c) {
      clients.push_back(std::make_unique<PacedClient>(
          tier, std::vector<DistArrayId>{w.out_c, w.table},
          kTargetKeysPerSec / kClientThreads));
    }

    const serve::ServingStats before = tier->StatsSnapshot();
    const auto window0 = std::chrono::steady_clock::now();
    for (int p = 0; p < kPasses; ++p) {
      const auto t0 = std::chrono::steady_clock::now();
      ORION_CHECK_OK(w.driver->Execute(w.loop));
      b.pass_seconds.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
      // Freshness spot check: the boundary publish inside Execute() means
      // the served out_c now reflects exactly p+1 completed passes.
      const LookupResult r = tier->Lookup(w.out_c, {0, kCols / 2, kCols - 1});
      if (r.status != LookupStatus::kOk || r.values[0] != ExpectedOutC(p + 1, 0) ||
          r.values[1] != ExpectedOutC(p + 1, kCols / 2) ||
          r.values[2] != ExpectedOutC(p + 1, kCols - 1)) {
        fresh_ok = false;
      }
    }
    const double window_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - window0).count();
    const serve::ServingStats after = tier->StatsSnapshot();
    sustained_qps =
        static_cast<double>(after.keys_looked_up - before.keys_looked_up) / window_seconds;
    const WaitHistogram lat = tier->LatencySnapshot();
    p50 = lat.ApproxPercentile(0.50);
    p99 = lat.ApproxPercentile(0.99);

    for (auto& c : clients) {
      c->StopAndJoin();
      client_ok += c->ok_.load();
      client_not_serving += c->not_serving_.load();
      client_shed += c->shed_.load();
    }
    b.out_r = SnapshotArray(w.driver.get(), w.out_r);
    b.out_c = SnapshotArray(w.driver.get(), w.out_c);
    b.table = SnapshotArray(w.driver.get(), w.table);
    w.driver->StopServingTier();
  }

  const bool bitwise = BitIdentical(a.out_r, b.out_r) && BitIdentical(a.out_c, b.out_c) &&
                       BitIdentical(a.table, b.table);
  const double med_a = MedianSeconds(a.pass_seconds);
  const double med_b = MedianSeconds(b.pass_seconds);
  const double slowdown = med_a > 0.0 ? (med_b - med_a) / med_a : 0.0;

  // ---- Overload: 2x+ a rate-limited tier's concurrency ------------------
  // Lookup() is a closed loop (callers block on their reply), so overload
  // means more concurrent clients than the tier has queue+service slots:
  // one shard, a 2-deep queue, 1ms service per single-request batch, and 12
  // clients re-issuing as fast as their replies come back. The bounded
  // queue must shed the excess — and every caller must still return.
  double shed_rate = 0.0;
  {
    CellStore flat = CellStore::DenseRange(1, 0, kCols - 1);
    for (i64 k = 0; k < kCols; ++k) {
      *flat.GetOrCreate(k) = 1.0f;
    }
    VersionedCellStore store(std::move(flat));
    store.BeginServing();
    ServingTierOptions opt;
    opt.num_shards = 1;
    opt.max_queue_per_shard = 2;
    opt.max_batch = 1;
    opt.batch_delay_seconds_for_test = 0.001;
    ServingTier tier({{1, "overload", 1}}, opt);
    auto pub = store.PublishVersion();
    tier.Publish(1, std::move(pub.snap), pub.seq);

    std::atomic<bool> stop{false};
    std::atomic<u64> ok{0}, shed{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 12; ++c) {
      clients.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const LookupResult r = tier.Lookup(1, {0, 1, 2, 3});
          if (r.status == LookupStatus::kOk) {
            ++ok;
          } else {
            ++shed;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    for (auto& t : clients) {
      t.join();
    }
    tier.Stop();
    const u64 total = ok.load() + shed.load();
    shed_rate = total > 0 ? static_cast<double>(shed.load()) / static_cast<double>(total)
                          : 0.0;
    std::printf("overload: ok=%llu shed=%llu rate=%.3f\n",
                static_cast<unsigned long long>(ok.load()),
                static_cast<unsigned long long>(shed.load()), shed_rate);
  }

  std::printf(
      "sustained=%.0f keys/s  p50=%.6fs  p99=%.6fs  slowdown=%.3f  "
      "client ok=%llu not_serving=%llu shed=%llu  bitwise=%d fresh=%d\n",
      sustained_qps, p50, p99, slowdown, static_cast<unsigned long long>(client_ok),
      static_cast<unsigned long long>(client_not_serving),
      static_cast<unsigned long long>(client_shed), bitwise ? 1 : 0, fresh_ok ? 1 : 0);

  PrintShape("training bit-for-bit identical with serving on", bitwise);
  PrintShape("served values track the latest published pass exactly", fresh_ok);
  PrintShape("sustained >= 100k lookups/sec while training", sustained_qps >= 100e3);
  PrintShape("p99 within budget", p99 <= kP99BudgetSeconds);
  PrintShape("training slowdown under 10%", slowdown < 0.10);
  PrintShape("2x overload sheds instead of blocking", shed_rate > 0.0);

  BenchJson out("serving_tier");
  out.Figure("sustained_lookups_per_sec", sustained_qps)
      .Figure("p50_seconds", p50)
      .Figure("p99_seconds", p99)
      .Figure("p99_budget_seconds", kP99BudgetSeconds)
      .Figure("training_pass_seconds_idle", med_a)
      .Figure("training_pass_seconds_serving", med_b)
      .Figure("training_slowdown_frac", slowdown)
      .Figure("overload_shed_rate", shed_rate)
      .Figure("served_fresh", fresh_ok)
      .Figure("bitwise_match", bitwise);
  if (!out.Write()) {
    std::fprintf(stderr, "failed to write BENCH_serving_tier.json\n");
    return 1;
  }
  if (!bitwise || !fresh_ok) {
    std::fprintf(stderr, "FAIL: serving perturbed training or served stale values\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
