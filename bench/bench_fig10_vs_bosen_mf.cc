// Fig. 10a/10b: SGD MF (AdaRev) on the netflix-like dataset — Orion vs the
// Bösen parameter server: loss over (modeled) time and over iterations.
//
// Curves: Bösen plain data parallelism, Bösen managed-communication +
// AdaRev, Orion auto-parallelization, Orion + AdaRev.
// Paper shape: Orion's dependence-aware schedules converge far faster than
// plain data parallelism in both axes; managed communication narrows the
// per-iteration gap but pays bandwidth/CPU for it.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"
#include "src/baselines/bosen_ps.h"

namespace orion {
namespace {

constexpr int kPasses = 12;
constexpr int kWorkers = 4;
constexpr int kRank = 8;

struct Curve {
  std::vector<f64> loss;
  std::vector<double> time;
};

Curve RunOrion(const std::vector<RatingEntry>& data, i64 rows, i64 cols, bool adarev) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = kRank;
  mf.adarev = adarev;
  mf.adarev_alpha = 0.5f;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, rows, cols));
  Curve c;
  double t = 0.0;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(app.RunPass());
    t += ModeledSeconds(app.last_metrics(), kWorkers);
    c.time.push_back(t);
    c.loss.push_back(*app.EvalLoss());
  }
  return c;
}

Curve RunBosen(const std::vector<RatingEntry>& data, i64 rows, i64 cols, bool managed,
               bool adarev) {
  BosenConfig bc;
  bc.num_workers = kWorkers;
  bc.step_size = 0.0002f;  // stability under summed colliding updates
  bc.managed_comm = managed;
  bc.adarev = adarev;
  bc.adarev_alpha = 0.5f;
  bc.comm_intervals_per_pass = 16;
  BosenMf bosen(data, rows, cols, kRank, bc);
  Curve c;
  double t = 0.0;
  for (int p = 0; p < kPasses; ++p) {
    bosen.RunPass();
    t += ModeledSeconds(bosen.last_pass_compute_max(), bosen.last_pass_bytes(), 0, kWorkers);
    c.time.push_back(t);
    c.loss.push_back(bosen.EvalLoss());
  }
  return c;
}

int Main() {
  PrintHeader("Fig 10a/10b",
              "SGD MF: Orion (w/ and w/o AdaRev) vs Bösen (plain DP, managed "
              "comm + AdaRev); loss over modeled time and over iterations");
  const auto dcfg = NetflixLike();
  const auto data = GenerateRatings(dcfg);

  const Curve bosen_plain = RunBosen(data, dcfg.rows, dcfg.cols, false, false);
  const Curve bosen_cm = RunBosen(data, dcfg.rows, dcfg.cols, true, true);
  const Curve orion = RunOrion(data, dcfg.rows, dcfg.cols, false);
  const Curve orion_ar = RunOrion(data, dcfg.rows, dcfg.cols, true);

  std::printf(
      "iter,bosen_plain_t,bosen_plain_loss,bosen_cm_adarev_t,bosen_cm_adarev_loss,"
      "orion_t,orion_loss,orion_adarev_t,orion_adarev_loss\n");
  for (int p = 0; p < kPasses; ++p) {
    const auto i = static_cast<size_t>(p);
    std::printf("%d,%.4f,%.1f,%.4f,%.1f,%.4f,%.1f,%.4f,%.1f\n", p + 1, bosen_plain.time[i],
                bosen_plain.loss[i], bosen_cm.time[i], bosen_cm.loss[i], orion.time[i],
                orion.loss[i], orion_ar.time[i], orion_ar.loss[i]);
  }

  PrintShape("Orion converges far faster than plain data parallelism per iteration",
             orion.loss.back() * 3.0 < bosen_plain.loss.back());
  PrintShape("managed comm + AdaRev improves substantially on plain Bösen",
             bosen_cm.loss.back() < 0.5 * bosen_plain.loss.back());
  PrintShape("Orion AdaRev reaches the lowest (or near-lowest) loss",
             orion_ar.loss.back() < 1.3 * orion.loss.back());
  PrintShape("Orion also wins in loss-at-equal-modeled-time (final pass)",
             orion.loss.back() < bosen_plain.loss.back());
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
