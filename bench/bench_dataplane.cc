// Data-plane raw-speed microbenchmarks: SIMD gather/apply/clone kernels,
// pooled serialization, and the page-size sweep.
//
//  - gather/apply: simd::CopyF32 / simd::AddF32 throughput at the forced
//    scalar level vs the best runtime-dispatched level, over cell-shaped
//    strided spans (the shape Gather and the deferred-apply folds see). The
//    scalar reference is compiled with auto-vectorization off, so the ratio
//    is kernel vs honest scalar loop, not kernel vs compiler output.
//  - clone: VersionedCellStore pagination + copy-on-write page-clone
//    throughput, and COW bytes per sparse write as the page size sweeps
//    {64, 256, 1024} (the autotuner's trade-off, measured).
//  - serialization: encode/consume/release loop over PartData-sized
//    payloads; reports allocations-per-message and the pool hit rate
//    (steady state must be ~0 fresh allocations per message).
//
// Results go to BENCH_dataplane.json. The CI smoke step compares the
// *dimensionless* figures (speedups, hit rate) against the committed
// baseline bench/dataplane_baseline.json and fails on a >10% drop —
// absolute MB/s is machine-dependent and is reported but not gated.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/buffer_pool.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/simd.h"
#include "src/common/timer.h"
#include "src/dsm/cell_store.h"
#include "src/dsm/versioned_store.h"
#include "src/runtime/protocol.h"

namespace orion {
namespace {

constexpr size_t kCells = 1 << 16;   // cells per kernel pass
constexpr i32 kVdim = 8;             // typical parameter-row width
constexpr size_t kFloats = kCells * kVdim;
constexpr int kReps = 40;

double MbPerSec(size_t bytes_per_rep, int reps, double seconds) {
  return static_cast<double>(bytes_per_rep) * reps / seconds / 1e6;
}

// Copy kernel in the gather shape: one CopyF32 per cell of kVdim lanes
// (what ParamServer::Gather and the scatter/fold loops issue), plus the
// page-sized bulk shape BeginServing issues. Returns MB/s.
double BenchCopy(simd::Level level, std::vector<f32>* dst, const std::vector<f32>* src) {
  simd::ForceLevel(level);
  Stopwatch sw;
  for (int r = 0; r < kReps; ++r) {
    for (size_t c = 0; c < kCells; ++c) {
      simd::CopyF32(dst->data() + c * kVdim, src->data() + c * kVdim, kVdim);
    }
  }
  const double sec = sw.ElapsedSeconds();
  simd::ResetLevel();
  return MbPerSec(kFloats * sizeof(f32), kReps, sec);
}

double BenchAdd(simd::Level level, std::vector<f32>* dst, const std::vector<f32>* src) {
  simd::ForceLevel(level);
  Stopwatch sw;
  for (int r = 0; r < kReps; ++r) {
    for (size_t c = 0; c < kCells; ++c) {
      simd::AddF32(dst->data() + c * kVdim, src->data() + c * kVdim, kVdim);
    }
  }
  const double sec = sw.ElapsedSeconds();
  simd::ResetLevel();
  return MbPerSec(kFloats * sizeof(f32), kReps, sec);
}

// Pagination (BeginServing/Collapse round trips) throughput: the bulk-copy
// path page clones share. Returns MB/s of cell bytes moved per direction.
double BenchClone(simd::Level level) {
  constexpr i64 kStoreCells = 40000;
  constexpr i32 kDim = 8;
  CellStore flat(kDim, CellStore::Layout::kFullDense, kStoreCells);
  Rng rng(7);
  for (i64 k = 0; k < kStoreCells; ++k) {
    f32* v = flat.GetOrCreate(k);
    for (i32 d = 0; d < kDim; ++d) {
      v[d] = static_cast<f32>(rng.NextGaussian());
    }
  }
  VersionedCellStore store(std::move(flat));
  simd::ForceLevel(level);
  constexpr int kRounds = 20;
  Stopwatch sw;
  for (int r = 0; r < kRounds; ++r) {
    store.BeginServing();   // chop into pages (bulk copy)
    (void)store.Flat();     // collapse back (bulk copy)
  }
  const double sec = sw.ElapsedSeconds();
  simd::ResetLevel();
  // Two bulk copies per round.
  return MbPerSec(static_cast<size_t>(kStoreCells) * kDim * sizeof(f32) * 2, kRounds,
                  sec);
}

// COW cost of a sparse writer at a given page size: bytes cloned per
// written cell when every write lands under a live pin.
struct CowPoint {
  i64 page_cells = 0;
  u64 cow_bytes = 0;
  u64 pages_cloned = 0;
  double bytes_per_write = 0.0;
};

CowPoint BenchCow(i64 page_cells) {
  constexpr i64 kStoreCells = 40000;
  constexpr i32 kDim = 8;
  constexpr int kWrites = 256;
  CellStore flat(kDim, CellStore::Layout::kFullDense, kStoreCells);
  VersionedCellStore store(std::move(flat));
  store.SetPageCells(page_cells);
  store.BeginServing();
  (void)store.TakeStats();
  Rng rng(21);
  u64 cow = 0, cloned = 0;
  constexpr int kRounds = 8;
  for (int r = 0; r < kRounds; ++r) {
    VersionedCellStore::Snapshot snap = store.Pin();
    for (int i = 0; i < kWrites; ++i) {
      store.GetOrCreate(rng.NextIndex(kStoreCells))[0] += 1.0f;
    }
    snap.Release();
    const VersionedCellStore::Stats s = store.TakeStats();
    cow += s.cow_bytes;
    cloned += s.pages_cloned;
  }
  CowPoint p;
  p.page_cells = page_cells;
  p.cow_bytes = cow;
  p.pages_cloned = cloned;
  p.bytes_per_write = static_cast<double>(cow) / (kRounds * kWrites);
  return p;
}

// Steady-state serialization loop: encode a PartData-sized payload, consume
// it, release the buffer. Reports the pool hit rate and fresh allocations
// per message once warm.
struct SerdePoint {
  double hit_rate = 0.0;
  double allocs_per_message = 0.0;
  double mb_per_sec = 0.0;
};

SerdePoint BenchSerde() {
  constexpr int kMessages = 2000;
  constexpr i64 kPartCells = 512;
  PartData pd;
  pd.array = 1;
  pd.cells = CellStore(kVdim, CellStore::Layout::kHashed, 0);
  Rng rng(9);
  for (i64 k = 0; k < kPartCells; ++k) {
    f32* v = pd.cells.GetOrCreate(k * 3);
    for (i32 d = 0; d < kVdim; ++d) {
      v[d] = static_cast<f32>(rng.NextGaussian());
    }
  }
  // Warm the cache so the measured window is steady state.
  for (int i = 0; i < 4; ++i) {
    BufferPool::Release(pd.Encode());
  }
  BufferPool::ResetStatsForTest();
  size_t bytes = 0;
  Stopwatch sw;
  for (int i = 0; i < kMessages; ++i) {
    std::vector<u8> payload = pd.Encode();
    bytes += payload.size();
    PartData back = PartData::Decode(payload);
    ORION_CHECK(back.cells.NumCells() == kPartCells);
    BufferPool::Release(std::move(payload));
  }
  const double sec = sw.ElapsedSeconds();
  const BufferPool::Stats s = BufferPool::AggregateStats();
  SerdePoint p;
  p.hit_rate = s.acquires == 0
                   ? 0.0
                   : static_cast<double>(s.hits) / static_cast<double>(s.acquires);
  p.allocs_per_message =
      static_cast<double>(s.acquires - s.hits) / static_cast<double>(kMessages);
  p.mb_per_sec = static_cast<double>(bytes) / sec / 1e6;
  return p;
}

// ---- Regression gate ----

// Reads "key": value out of a flat JSON file (the committed baseline).
// Returns fallback when the file or key is missing, so a fresh checkout
// without a baseline still runs.
double JsonNumber(const std::string& text, const std::string& key, double fallback) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return fallback;
  }
  const size_t colon = text.find(':', at);
  if (colon == std::string::npos) {
    return fallback;
  }
  return std::atof(text.c_str() + colon + 1);
}

std::string ReadFileOrEmpty(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return {};
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

int Main(int argc, char** argv) {
  PrintHeader("data-plane raw speed",
              "SIMD gather/apply/clone kernels vs forced-scalar, pooled "
              "serialization, COW bytes per page size");
  const std::string baseline_path = argc > 1 ? argv[1] : "";

  Rng rng(3);
  std::vector<f32> src(kFloats), dst(kFloats);
  for (f32& v : src) {
    v = static_cast<f32>(rng.NextGaussian());
  }

  // Best-of-N per configuration: a single-core container timeshares with
  // everything else on the machine, so the max over trials is the honest
  // kernel throughput while mean/min fold in scheduler noise.
  constexpr int kTrials = 5;
  auto best_of = [&](auto&& fn) {
    double best = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      best = std::max(best, fn());
    }
    return best;
  };
  (void)BenchCopy(simd::Level::kScalar, &dst, &src);  // warm-up
  const double copy_scalar =
      best_of([&] { return BenchCopy(simd::Level::kScalar, &dst, &src); });
  const double copy_best =
      best_of([&] { return BenchCopy(simd::BestSupportedLevel(), &dst, &src); });
  const double add_scalar =
      best_of([&] { return BenchAdd(simd::Level::kScalar, &dst, &src); });
  const double add_best =
      best_of([&] { return BenchAdd(simd::BestSupportedLevel(), &dst, &src); });
  const double clone_scalar = best_of([] { return BenchClone(simd::Level::kScalar); });
  const double clone_best =
      best_of([] { return BenchClone(simd::BestSupportedLevel()); });
  const double copy_speedup = copy_best / copy_scalar;
  const double add_speedup = add_best / add_scalar;
  const double clone_speedup = clone_best / clone_scalar;

  std::printf("kernel,scalar_mb_s,%s_mb_s,speedup\n",
              simd::LevelName(simd::BestSupportedLevel()));
  std::printf("gather_copy,%.0f,%.0f,%.2f\n", copy_scalar, copy_best, copy_speedup);
  std::printf("apply_add,%.0f,%.0f,%.2f\n", add_scalar, add_best, add_speedup);
  std::printf("page_clone,%.0f,%.0f,%.2f\n", clone_scalar, clone_best, clone_speedup);

  const SerdePoint serde = BenchSerde();
  std::printf("serialization: %.0f MB/s, pool hit rate %.3f, allocs/message %.4f\n",
              serde.mb_per_sec, serde.hit_rate, serde.allocs_per_message);

  std::vector<CowPoint> cow;
  std::printf("page_cells,cow_bytes,pages_cloned,bytes_per_write\n");
  for (i64 pc : {i64{64}, i64{256}, i64{1024}}) {
    cow.push_back(BenchCow(pc));
    std::printf("%lld,%llu,%llu,%.1f\n", static_cast<long long>(cow.back().page_cells),
                static_cast<unsigned long long>(cow.back().cow_bytes),
                static_cast<unsigned long long>(cow.back().pages_cloned),
                cow.back().bytes_per_write);
  }

  std::vector<std::string> cow_rows;
  for (const CowPoint& p : cow) {
    cow_rows.push_back(JsonF("{\"page_cells\": %lld, \"cow_bytes\": %llu, "
                             "\"pages_cloned\": %llu, \"bytes_per_write\": %.1f}",
                             static_cast<long long>(p.page_cells),
                             static_cast<unsigned long long>(p.cow_bytes),
                             static_cast<unsigned long long>(p.pages_cloned),
                             p.bytes_per_write));
  }
  BenchJson("dataplane")
      .Figure("best_level", JsonF("\"%s\"", simd::LevelName(simd::BestSupportedLevel())))
      .Figure("gather_copy_scalar_mb_s", JsonF("%.1f", copy_scalar))
      .Figure("gather_copy_simd_mb_s", JsonF("%.1f", copy_best))
      .Figure("gather_copy_speedup", JsonF("%.3f", copy_speedup))
      .Figure("apply_add_scalar_mb_s", JsonF("%.1f", add_scalar))
      .Figure("apply_add_simd_mb_s", JsonF("%.1f", add_best))
      .Figure("apply_add_speedup", JsonF("%.3f", add_speedup))
      .Figure("page_clone_scalar_mb_s", JsonF("%.1f", clone_scalar))
      .Figure("page_clone_simd_mb_s", JsonF("%.1f", clone_best))
      .Figure("page_clone_speedup", JsonF("%.3f", clone_speedup))
      .Figure("serde_mb_per_sec", JsonF("%.1f", serde.mb_per_sec))
      .Figure("pool_hit_rate", JsonF("%.4f", serde.hit_rate))
      .Figure("allocs_per_message", JsonF("%.4f", serde.allocs_per_message))
      .Figure("cow_sweep", BenchJson::Array(cow_rows))
      .Write();

  bool ok = true;
  // The kernels must beat the honest scalar loop on at least one of the
  // three paths (acceptance: >= 1.15x), and the pool must make the
  // steady-state encode loop allocation-free.
  const double best = std::max({copy_speedup, add_speedup, clone_speedup});
  PrintShape("SIMD beats forced-scalar by >= 1.15x on gather, apply, or clone",
             best >= 1.15);
  ok = ok && best >= 1.15;
  PrintShape("steady-state pool hit rate >= 0.95 (allocs/message ~ 0)",
             serde.hit_rate >= 0.95);
  ok = ok && serde.hit_rate >= 0.95;
  PrintShape("COW bytes per sparse write shrink monotonically with page size",
             cow[0].bytes_per_write < cow[1].bytes_per_write &&
                 cow[1].bytes_per_write < cow[2].bytes_per_write);
  ok = ok && cow[0].bytes_per_write < cow[1].bytes_per_write &&
       cow[1].bytes_per_write < cow[2].bytes_per_write;

  // Regression gate vs the committed baseline: dimensionless ratios only.
  if (!baseline_path.empty()) {
    const std::string base = ReadFileOrEmpty(baseline_path);
    if (base.empty()) {
      std::printf("baseline %s missing; gate skipped\n", baseline_path.c_str());
    } else {
      struct Gate {
        const char* key;
        double now;
      };
      const Gate gates[] = {
          {"gather_copy_speedup", copy_speedup},
          {"apply_add_speedup", add_speedup},
          {"page_clone_speedup", clone_speedup},
          {"pool_hit_rate", serde.hit_rate},
      };
      for (const Gate& g : gates) {
        const double want = JsonNumber(base, g.key, 0.0);
        if (want > 0.0 && g.now < want * 0.9) {
          std::printf("REGRESSION: %s %.3f < 90%% of baseline %.3f\n", g.key, g.now,
                      want);
          ok = false;
        } else {
          std::printf("gate %s: %.3f (baseline %.3f) OK\n", g.key, g.now, want);
        }
      }
    }
  }

  return ok ? 0 : 1;
}

}  // namespace
}  // namespace orion

int main(int argc, char** argv) { return orion::Main(argc, argv); }
