// Versioned copy-on-write parameter store: 1D snapshot serving vs the
// inline 1D baseline, plus a writer-contention microbench on the wavefront
// overwrite path.
//
// Sweep 1 (1D serving): a chunked 1D loop with runtime-subscripted server
// reads and buffered server writes, split into sync rounds, on a
// real-time-charged link. The baseline serves every round's prefetch
// inline on the master's service loop (one serialized reply per worker per
// round); the versioned store lets 1D loops join the sharded async path —
// the service loop pins a snapshot per request (a refcount bump) and pool
// threads gather from it with no lock while replies overlap on per-worker
// lanes. The workload is arrival-invariant (read-only table + additive
// integer-valued buffered updates), so every configuration must be
// bit-for-bit identical to the inline run; a mismatch is the only failure
// (exit 1).
//
// Sweep 2 (writer contention): the skewed-wavefront recurrence flushes
// unbuffered server writes (kOverwrite) mid-pass while gather tasks for the
// next steps are in flight. On the locked path gathers hold the owning
// stripe's lock across the cell copy; on the snapshot path they hold no
// lock, so cumulative stripe busy time drops to zero and writers pay only
// for the pages they actually clone.
//
// Results go to BENCH_versioned_store.json for the CI smoke step.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;

std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

NetCostModel SlowLink() {
  NetCostModel m;
  m.latency_us = 1000.0;
  m.bandwidth_bps = 2e9;
  m.charge_real_time = true;
  return m;
}

// ---- Sweep 1: 1D chunked serving ----

struct OneDConfig {
  bool versioned = true;
  bool key_range = true;
  int shards = 4;
};

struct OneDResult {
  double sec_per_pass = 0.0;
  double serve_seconds = 0.0;
  u64 snapshot_pins = 0;
  u64 pages_cloned = 0;
  u64 stripe_busy_ns = 0;
  std::map<i64, std::vector<f32>> table_w;
  f64 accum = 0.0;
};

OneDResult Run1D(const OneDConfig& c) {
  constexpr i64 kSamples = 1536;
  constexpr i64 kKeys = 6000;
  constexpr int kRounds = 4;
  constexpr int kPasses = 4;

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.net = SlowLink();
  cfg.seed = 17;
  cfg.param_server_shards = c.shards;
  cfg.versioned_store = c.versioned;
  cfg.param_key_range_stripes = c.key_range;
  Driver driver(cfg);

  auto samples = driver.CreateDistArray("samples", {kSamples}, 3, Density::kDense);
  auto table_r = driver.CreateDistArray("table_r", {kKeys}, 8, Density::kDense);
  auto table_w = driver.CreateDistArray("table_w", {kKeys}, 4, Density::kDense);
  driver.MapCells(samples, [](i64 key, f32* v) {
    v[0] = static_cast<f32>((key * 131 + 17) % kKeys);  // read key
    v[1] = static_cast<f32>((key * 173 + 5) % kKeys);   // write key
    v[2] = static_cast<f32>(1 + key % 7);               // integer payload
  });
  driver.MapCells(table_r, [](i64 key, f32* v) {
    for (int d = 0; d < 8; ++d) {
      v[d] = static_cast<f32>((key + d) % 13);
    }
  });
  driver.RegisterBuffer(table_w, 4, MakeAddApplyFn());
  const int acc = driver.CreateAccumulator();

  LoopSpec spec;
  spec.iter_space = samples;
  spec.iter_extents = {kSamples};
  spec.AddAccess(table_r, "table_r", {Expr::Runtime("rk")}, /*is_write=*/false);
  spec.AddAccess(table_w, "table_w", {Expr::Runtime("wk")}, /*is_write=*/true,
                 /*buffered=*/true);
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    (void)idx;
    const i64 rk[1] = {static_cast<i64>(value[0])};
    const i64 wk[1] = {static_cast<i64>(value[1])};
    const f32* t = ctx.Read(table_r, rk);
    // Integer-valued f32 adds: exact and commutative, so the merged result
    // is independent of apply arrival order across workers.
    f32 upd[4];
    for (int d = 0; d < 4; ++d) {
      upd[d] = value[2] * (t[d] + t[d + 4] + 1.0f);
    }
    ctx.BufferUpdate(table_w, wk, upd);
    ctx.AccumulatorAdd(acc, static_cast<f64>(upd[0]));
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kBulk;
  options.server_sync_rounds = kRounds;
  options.planner.replicate_threshold_floats = 0;  // force both tables -> kServer
  auto loop = driver.Compile(spec, kernel, options);
  ORION_CHECK_OK(loop.status());
  ORION_CHECK(driver.PlanOf(*loop).form == ParallelForm::k1D);
  ORION_CHECK(driver.PlanOf(*loop).placements.at(table_r).scheme == PartitionScheme::kServer);

  OneDResult res;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(driver.Execute(*loop));
    const LoopMetrics& m = driver.last_metrics();
    res.sec_per_pass += m.pass_wall_seconds;
    res.serve_seconds += m.param_serve_seconds;
    res.snapshot_pins += m.versioned_snapshot_pins;
    res.pages_cloned += m.versioned_pages_cloned;
    for (const auto& s : m.stripes) {
      res.stripe_busy_ns += s.busy_ns;
    }
  }
  res.sec_per_pass /= kPasses;
  res.table_w = Snapshot(&driver, table_w);
  res.accum = driver.AccumulatorValue(acc);
  return res;
}

bool Identical(const OneDResult& a, const OneDResult& b) {
  return a.table_w == b.table_w && a.accum == b.accum;
}

// ---- Sweep 2: wavefront writer contention ----

struct WaveResult {
  double sec_per_pass = 0.0;
  u64 stripe_busy_ns = 0;
  u64 stripe_wait_ns = 0;
  u64 stripe_gather_ns = 0;
  u64 pages_cloned = 0;
  u64 cow_bytes = 0;
  std::map<i64, std::vector<f32>> out;
};

WaveResult RunWave(bool versioned) {
  const i64 n = 40;
  const i64 m = 32;

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.seed = 23;
  cfg.param_server_shards = 4;
  cfg.versioned_store = versioned;
  Driver driver(cfg);
  auto grid = driver.CreateDistArray("grid", {n, m}, 1, Density::kSparse);
  auto b = driver.CreateDistArray("B", {n, m}, 1, Density::kDense);
  auto c = driver.CreateDistArray("C", {n, m}, 1, Density::kDense);
  {
    CellStore& cells = driver.MutableCells(grid);
    for (i64 i = 0; i < n; ++i) {
      for (i64 j = 0; j < m; ++j) {
        *cells.GetOrCreate(i * m + j) = 1.0f;
      }
    }
    Rng rng(7);
    driver.MapCells(b, [&](i64, f32* v) { v[0] = static_cast<f32>(rng.NextBounded(4)); });
  }

  LoopSpec spec;
  spec.iter_space = grid;
  spec.iter_extents = {n, m};
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/true);
  spec.AddAccess(c, "C", {Expr::Sub(Expr::LoopIndex(0), Expr::Const(1)), Expr::LoopIndex(1)},
                 /*is_write=*/false);
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::Sub(Expr::LoopIndex(1), Expr::Const(1))},
                 /*is_write=*/false);
  spec.AddAccess(b, "B", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/false);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    (void)value;
    const i64 i = idx[0];
    const i64 j = idx[1];
    f32 up = 0.0f;
    f32 left = 0.0f;
    if (i > 0) {
      const i64 ku[2] = {i - 1, j};
      up = ctx.Read(c, ku)[0];
    }
    if (j > 0) {
      const i64 kl[2] = {i, j - 1};
      left = ctx.Read(c, kl)[0];
    }
    const i64 kb[2] = {i, j};
    f32* o = ctx.Mutate(c, kb);
    o[0] = up + left + ctx.Read(b, kb)[0];
  };

  auto loop = driver.Compile(spec, kernel, {});
  ORION_CHECK_OK(loop.status());
  ORION_CHECK(driver.PlanOf(*loop).form == ParallelForm::k2DUnimodular);

  WaveResult res;
  constexpr int kPasses = 3;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(driver.Execute(*loop));
    const LoopMetrics& lm = driver.last_metrics();
    res.sec_per_pass += lm.pass_wall_seconds;
    res.pages_cloned += lm.versioned_pages_cloned;
    res.cow_bytes += lm.versioned_cow_bytes;
    for (const auto& s : lm.stripes) {
      res.stripe_busy_ns += s.busy_ns;
      res.stripe_wait_ns += s.wait_ns;
      res.stripe_gather_ns += s.gather_ns;
    }
  }
  res.sec_per_pass /= kPasses;
  res.out = Snapshot(&driver, c);
  return res;
}

int Main() {
  PrintHeader("versioned copy-on-write parameter store",
              "1D snapshot serving vs inline baseline (real-time-charged link), and "
              "stripe lock hold time under wavefront overwrites");

  OneDConfig inline_cfg;
  inline_cfg.versioned = false;  // 1D without the versioned store = inline serving
  const OneDResult baseline = Run1D(inline_cfg);
  ORION_CHECK(baseline.snapshot_pins == 0);

  struct Point {
    int shards;
    bool key_range;
    OneDResult res;
    bool identical;
  };
  std::vector<Point> points;
  bool identical = true;
  std::printf("config,sec_per_pass,speedup_vs_inline,serve_sec,pins,stripe_busy_ns,identical\n");
  std::printf("inline,%.4f,1.00,,,,\n", baseline.sec_per_pass);
  for (int shards : {1, 4}) {
    for (bool key_range : {false, true}) {
      OneDConfig c;
      c.shards = shards;
      c.key_range = key_range;
      Point p{shards, key_range, Run1D(c), false};
      p.identical = Identical(baseline, p.res);
      if (!p.identical) {
        std::printf("MISMATCH: shards=%d key_range=%d not bit-for-bit identical to inline\n",
                    shards, key_range ? 1 : 0);
        identical = false;
      }
      ORION_CHECK(p.res.snapshot_pins > 0);
      std::printf("snap_s%d_kr%d,%.4f,%.2f,%.4f,%llu,%llu,%d\n", shards, key_range ? 1 : 0,
                  p.res.sec_per_pass, baseline.sec_per_pass / p.res.sec_per_pass,
                  p.res.serve_seconds, static_cast<unsigned long long>(p.res.snapshot_pins),
                  static_cast<unsigned long long>(p.res.stripe_busy_ns), p.identical ? 1 : 0);
      points.push_back(std::move(p));
    }
  }
  double best_speedup = 0.0;
  for (const Point& p : points) {
    best_speedup = std::max(best_speedup, baseline.sec_per_pass / p.res.sec_per_pass);
  }

  const WaveResult locked = RunWave(false);
  const WaveResult snap = RunWave(true);
  const bool wave_identical = locked.out == snap.out;
  if (!wave_identical) {
    identical = false;
    std::printf("MISMATCH: wavefront snapshot run differs from locked run\n");
  }
  std::printf("wavefront locked:  busy=%.3fms wait=%.3fms gather=%.3fms\n",
              locked.stripe_busy_ns * 1e-6, locked.stripe_wait_ns * 1e-6,
              locked.stripe_gather_ns * 1e-6);
  std::printf("wavefront snapshot: busy=%.3fms wait=%.3fms gather=%.3fms "
              "pages_cloned=%llu cow_bytes=%llu\n",
              snap.stripe_busy_ns * 1e-6, snap.stripe_wait_ns * 1e-6,
              snap.stripe_gather_ns * 1e-6,
              static_cast<unsigned long long>(snap.pages_cloned),
              static_cast<unsigned long long>(snap.cow_bytes));

  std::vector<std::string> sweep_rows;
  for (const Point& p : points) {
    sweep_rows.push_back(
        JsonF("{\"shards\": %d, \"key_range\": %s, \"sec_per_pass\": %.6f, "
              "\"speedup_vs_inline\": %.3f, \"serve_sec\": %.6f, "
              "\"snapshot_pins\": %llu, \"stripe_busy_ns\": %llu, "
              "\"identical\": %s}",
              p.shards, p.key_range ? "true" : "false", p.res.sec_per_pass,
              baseline.sec_per_pass / p.res.sec_per_pass, p.res.serve_seconds,
              static_cast<unsigned long long>(p.res.snapshot_pins),
              static_cast<unsigned long long>(p.res.stripe_busy_ns),
              p.identical ? "true" : "false"));
  }
  BenchJson("versioned_store")
      .Figure("inline_sec", baseline.sec_per_pass)
      .Figure("sweep", BenchJson::Array(sweep_rows))
      .Figure("wavefront_contention",
              JsonF("{\"locked_busy_ns\": %llu, \"locked_wait_ns\": %llu, "
                    "\"snapshot_busy_ns\": %llu, \"snapshot_wait_ns\": %llu, "
                    "\"snapshot_pages_cloned\": %llu, \"snapshot_cow_bytes\": %llu, "
                    "\"identical\": %s}",
                    static_cast<unsigned long long>(locked.stripe_busy_ns),
                    static_cast<unsigned long long>(locked.stripe_wait_ns),
                    static_cast<unsigned long long>(snap.stripe_busy_ns),
                    static_cast<unsigned long long>(snap.stripe_wait_ns),
                    static_cast<unsigned long long>(snap.pages_cloned),
                    static_cast<unsigned long long>(snap.cow_bytes),
                    wave_identical ? "true" : "false"))
      .Figure("best_speedup_vs_inline", JsonF("%.3f", best_speedup))
      .Figure("bit_for_bit_identical", identical)
      .Write();

  PrintShape("1D snapshot serving beats the inline baseline by >= 1.15x",
             best_speedup >= 1.15);
  PrintShape("snapshot gathers hold no stripe lock (busy drops to zero from a "
             "positive locked baseline)",
             snap.stripe_busy_ns == 0 && locked.stripe_busy_ns > 0);
  PrintShape("all configurations bit-for-bit identical", identical);
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
