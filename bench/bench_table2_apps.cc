// Table 2: the application catalogue — for each ML application, the
// parallelization Orion's planner derives automatically from the access
// declarations, plus this repo's lines of code for the app.
//
// Paper: SGD MF -> 2D unordered; SGD MF AdaRev -> 2D unordered;
// SLR (+AdaRev) -> 1D data parallelism; LDA -> 2D unordered (1D possible);
// GBT -> 1D.
#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/gbt.h"
#include "src/apps/lda.h"
#include "src/apps/sgd_mf.h"
#include "src/apps/slr.h"

namespace orion {
namespace {

int CountLines(const std::string& relative) {
#ifdef ORION_SOURCE_DIR
  std::ifstream in(std::string(ORION_SOURCE_DIR) + "/" + relative);
  int lines = 0;
  std::string unused;
  while (std::getline(in, unused)) {
    ++lines;
  }
  return lines;
#else
  (void)relative;
  return 0;
#endif
}

std::string Describe(const ParallelizationPlan& plan) {
  std::string s = ParallelFormName(plan.form);
  if (plan.form != ParallelForm::k1D) {
    s += plan.ordered ? " ordered" : " unordered";
  }
  return s;
}

int Main() {
  PrintHeader("Table 2", "Applications, their LoC in this repo, and the planner's choice");

  const int mf_loc = CountLines("src/apps/sgd_mf.h") + CountLines("src/apps/sgd_mf.cc");
  const int slr_loc = CountLines("src/apps/slr.h") + CountLines("src/apps/slr.cc");
  const int lda_loc = CountLines("src/apps/lda.h") + CountLines("src/apps/lda.cc");
  const int gbt_loc = CountLines("src/apps/gbt.h") + CountLines("src/apps/gbt.cc");

  std::printf("app,model,algorithm,loc,parallelization\n");
  bool ok = true;

  {
    DriverConfig cfg;
    cfg.num_workers = 4;
    Driver driver(cfg);
    SgdMfConfig mf;
    mf.rank = 4;
    SgdMfApp app(&driver, mf);
    RatingsConfig d;
    d.rows = 200;
    d.cols = 150;
    d.nnz = 4000;
    ORION_CHECK_OK(app.Init(GenerateRatings(d), d.rows, d.cols));
    std::printf("SGD MF,Matrix Factorization,SGD,%d,%s\n", mf_loc,
                Describe(app.train_plan()).c_str());
    ok = ok && app.train_plan().form == ParallelForm::k2D && !app.train_plan().ordered;
  }
  {
    DriverConfig cfg;
    cfg.num_workers = 4;
    Driver driver(cfg);
    SgdMfConfig mf;
    mf.rank = 4;
    mf.adarev = true;
    SgdMfApp app(&driver, mf);
    RatingsConfig d;
    d.rows = 200;
    d.cols = 150;
    d.nnz = 4000;
    ORION_CHECK_OK(app.Init(GenerateRatings(d), d.rows, d.cols));
    std::printf("SGD MF AdaRev,Matrix Factorization,SGD w/ Adaptive Revision,%d,%s\n", mf_loc,
                Describe(app.train_plan()).c_str());
    ok = ok && app.train_plan().form == ParallelForm::k2D;
  }
  {
    DriverConfig cfg;
    cfg.num_workers = 4;
    Driver driver(cfg);
    SlrApp app(&driver, SlrConfig{});
    SparseLrConfig d;
    d.num_samples = 500;
    d.num_features = 1000;
    d.nnz_per_sample = 10;
    ORION_CHECK_OK(app.Init(GenerateSparseLr(d), d.num_features));
    std::printf("SLR,Sparse Logistic Regression,SGD,%d,%s (data parallelism)\n", slr_loc,
                Describe(app.train_plan()).c_str());
    ok = ok && app.train_plan().form == ParallelForm::k1D;
  }
  {
    DriverConfig cfg;
    cfg.num_workers = 4;
    Driver driver(cfg);
    SlrConfig slr;
    slr.adarev = true;
    SlrApp app(&driver, slr);
    SparseLrConfig d;
    d.num_samples = 500;
    d.num_features = 1000;
    d.nnz_per_sample = 10;
    ORION_CHECK_OK(app.Init(GenerateSparseLr(d), d.num_features));
    std::printf("SLR AdaRev,Sparse Logistic Regression,SGD w/ Adaptive Revision,%d,%s (data "
                "parallelism)\n",
                slr_loc, Describe(app.train_plan()).c_str());
    ok = ok && app.train_plan().form == ParallelForm::k1D;
  }
  {
    DriverConfig cfg;
    cfg.num_workers = 4;
    Driver driver(cfg);
    LdaConfig lda;
    lda.num_topics = 8;
    LdaApp app(&driver, lda);
    CorpusConfig d;
    d.num_docs = 150;
    d.vocab = 200;
    d.true_topics = 8;
    d.doc_length = 20;
    ORION_CHECK_OK(app.Init(GenerateCorpus(d), d.num_docs, d.vocab));
    std::printf("LDA,Latent Dirichlet Allocation,Collapsed Gibbs Sampling,%d,%s\n", lda_loc,
                Describe(app.train_plan()).c_str());
    ok = ok && app.train_plan().form == ParallelForm::k2D && !app.train_plan().ordered;
  }
  {
    DriverConfig cfg;
    cfg.num_workers = 4;
    Driver driver(cfg);
    GbtApp app(&driver, GbtConfig{});
    RegressionConfig d;
    d.num_samples = 500;
    ORION_CHECK_OK(app.Init(GenerateRegression(d)));
    std::printf("GBT,Gradient Boosted Tree,Gradient Boosting,%d,%s\n", gbt_loc,
                Describe(app.split_plan()).c_str());
    ok = ok && app.split_plan().form == ParallelForm::k1D;
  }

  PrintShape("planner choices match the paper's Table 2 "
             "(MF/MF-AdaRev/LDA -> 2D unordered; SLR/GBT -> 1D)",
             ok);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
