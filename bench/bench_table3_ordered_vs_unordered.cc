// Table 3: time per iteration with ordered vs unordered 2D parallelization
// (SGD MF, SGD MF AdaRev, LDA).
//
// Paper shape: relaxing the ordering constraint speeds every workload up
// (2.2x / 2.6x / 6.0x in the paper) because the unordered rotation schedule
// needs no global wavefront barrier and hides communication by pipelining.
// Here the gap shows up as per-step barrier waits plus wavefront idle steps
// (modeled time adds the same communication either way).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/lda.h"
#include "src/apps/sgd_mf.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;
constexpr int kWarmup = 1;
constexpr int kMeasured = 3;

// Ordered wavefront executions serialize N+M-1 global steps (workers idle
// during the fill and drain of the wavefront) with a global barrier each;
// unordered rotation runs M fully-utilized steps with no barrier and
// pipelines partition transfers behind compute. The idle fraction is pure
// schedule geometry, so the model charges it directly:
//   ordered   = compute_max * (N+M-1)/M + (N+M-1) * barrier_latency + comm
//   unordered = compute_max + comm (overlapped)
double OrderedPenalty(double compute_max, int workers, int time_parts) {
  const double steps = workers + time_parts - 1;
  constexpr double kBarrierLatency = 2 * 20e-6;  // to master and back
  return compute_max * (steps / time_parts) + steps * kBarrierLatency;
}

double MeasureMf(const std::vector<RatingEntry>& data, i64 rows, i64 cols, bool ordered,
                 bool adarev) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 8;
  mf.adarev = adarev;
  mf.loop_options.ordered = ordered;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, rows, cols));
  double total = 0.0;
  for (int p = 0; p < kWarmup + kMeasured; ++p) {
    ORION_CHECK_OK(app.RunPass());
    if (p >= kWarmup) {
      const auto& m = app.last_metrics();
      double t = ModeledSeconds(m, kWorkers);
      if (ordered) {
        t += OrderedPenalty(m.max_worker_compute_seconds, kWorkers, kWorkers) -
             m.max_worker_compute_seconds;
      }
      total += t;
    }
  }
  return total / kMeasured;
}

double MeasureLda(const std::vector<TokenEntry>& corpus, i64 docs, i64 vocab, bool ordered) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  LdaConfig lda;
  lda.num_topics = 20;
  lda.loop_options.ordered = ordered;
  LdaApp app(&driver, lda);
  ORION_CHECK_OK(app.Init(corpus, docs, vocab));
  double total = 0.0;
  for (int p = 0; p < kWarmup + kMeasured; ++p) {
    ORION_CHECK_OK(app.RunPass());
    if (p >= kWarmup) {
      const auto& m = app.last_metrics();
      double t = ModeledSeconds(m, kWorkers);
      if (ordered) {
        t += OrderedPenalty(m.max_worker_compute_seconds, kWorkers, kWorkers) -
             m.max_worker_compute_seconds;
      }
      total += t;
    }
  }
  return total / kMeasured;
}

int Main() {
  PrintHeader("Table 3",
              "Seconds per iteration: ordered vs unordered 2D parallelization "
              "(4 workers; modeled time + measured schedule waits)");
  const auto dcfg = NetflixLike();
  const auto data = GenerateRatings(dcfg);
  const auto ccfg = NyTimesLike();
  const auto corpus = GenerateCorpus(ccfg);

  struct Row {
    const char* name;
    double ordered;
    double unordered;
  };
  Row rows[3] = {
      {"SGD MF (netflix-like)", MeasureMf(data, dcfg.rows, dcfg.cols, true, false),
       MeasureMf(data, dcfg.rows, dcfg.cols, false, false)},
      {"SGD MF AdaRev (netflix-like)", MeasureMf(data, dcfg.rows, dcfg.cols, true, true),
       MeasureMf(data, dcfg.rows, dcfg.cols, false, true)},
      {"LDA (nytimes-like)", MeasureLda(corpus, ccfg.num_docs, ccfg.vocab, true),
       MeasureLda(corpus, ccfg.num_docs, ccfg.vocab, false)},
  };

  std::printf("workload,ordered_s,unordered_s,speedup\n");
  bool all_faster = true;
  for (const auto& r : rows) {
    std::printf("%s,%.4f,%.4f,%.2fx\n", r.name, r.ordered, r.unordered,
                r.ordered / r.unordered);
    all_faster = all_faster && r.unordered < r.ordered;
  }

  // Machine-readable mirror of the table (like the newer benches), so the
  // ordered-schedule gap is tracked across PRs instead of only printed.
  const char* keys[3] = {"sgd_mf", "sgd_mf_adarev", "lda"};
  BenchJson out("ordered");
  for (int i = 0; i < 3; ++i) {
    out.Figure(keys[i],
               JsonF("{\"ordered_sec\": %.6f, \"unordered_sec\": %.6f, "
                     "\"unordered_speedup\": %.3f}",
                     rows[i].ordered, rows[i].unordered,
                     rows[i].ordered / rows[i].unordered));
  }
  out.Figure("all_unordered_faster", all_faster).Write();

  PrintShape("unordered 2D is faster than ordered for every workload", all_faster);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
