// Fig. 9b: SGD MF on the netflix-like dataset — training loss per iteration
// for serial execution, data parallelism (Bösen-style), and Orion's
// dependence-aware parallelization with ordered and unordered 2D schedules.
//
// Paper shape: both dependence-aware variants track the serial curve;
// data parallelism needs many more passes for the same loss; ordering makes
// a negligible difference to convergence.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"
#include "src/baselines/bosen_ps.h"

namespace orion {
namespace {

constexpr int kPasses = 12;
constexpr int kWorkers = 4;
constexpr int kRank = 8;

std::vector<f64> RunOrion(const std::vector<RatingEntry>& data, i64 rows, i64 cols,
                          bool ordered) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = kRank;
  mf.loop_options.ordered = ordered;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, rows, cols));
  std::vector<f64> losses;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(app.RunPass());
    losses.push_back(*app.EvalLoss());
  }
  return losses;
}

int Main() {
  PrintHeader("Fig 9b",
              "SGD MF convergence per iteration (netflix-like): serial vs data "
              "parallelism vs dependence-aware (ordered & unordered)");
  const auto dcfg = NetflixLike();
  const auto data = GenerateRatings(dcfg);

  SgdMfConfig mf;
  mf.rank = kRank;
  SerialSgdMf serial(data, dcfg.rows, dcfg.cols, mf);
  BosenConfig bc;
  bc.num_workers = kWorkers;
  // Data parallelism needs a small step to stay stable when colliding
  // updates sum at each BSP sync (high-degree power-law rows).
  bc.step_size = 0.0002f;
  BosenMf bosen(data, dcfg.rows, dcfg.cols, kRank, bc);

  std::vector<f64> serial_losses;
  std::vector<f64> bosen_losses;
  for (int p = 0; p < kPasses; ++p) {
    serial.RunPass();
    serial_losses.push_back(serial.EvalLoss());
    bosen.RunPass();
    bosen_losses.push_back(bosen.EvalLoss());
  }
  const auto unordered = RunOrion(data, dcfg.rows, dcfg.cols, /*ordered=*/false);
  const auto ordered = RunOrion(data, dcfg.rows, dcfg.cols, /*ordered=*/true);

  std::printf("iter,serial,data_parallel,orion_unordered,orion_ordered\n");
  for (int p = 0; p < kPasses; ++p) {
    std::printf("%d,%.1f,%.1f,%.1f,%.1f\n", p + 1, serial_losses[static_cast<size_t>(p)],
                bosen_losses[static_cast<size_t>(p)], unordered[static_cast<size_t>(p)],
                ordered[static_cast<size_t>(p)]);
  }

  const f64 s = serial_losses.back();
  PrintShape("dep-aware (unordered) matches serial convergence (within 2x of final loss)",
             unordered.back() < 2.0 * s);
  PrintShape("dep-aware (ordered) matches serial convergence (within 2x of final loss)",
             ordered.back() < 2.0 * s);
  PrintShape("data parallelism converges substantially slower than dep-aware",
             bosen_losses.back() > 2.0 * unordered.back());
  PrintShape("loop ordering makes little convergence difference (within 1.5x of each other)",
             ordered.back() < 1.5 * unordered.back() && unordered.back() < 1.5 * ordered.back());
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
