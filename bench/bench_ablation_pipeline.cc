// Ablation (Sec. 4.4, Fig. 8): pipelining depth of the unordered rotation
// schedule.
//
// With pipeline depth 1, a worker must wait for its next rotated partition
// to arrive before each step: transfer time lands on the critical path.
// With depth >= 2, a locally resident partition is always available and the
// transfer hides behind compute. To make the effect observable, this bench
// runs the fabric with a *charged* slow link (sender-side delay per
// message), so waiting for a partition costs real wall time.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;
constexpr int kWarmup = 1;
constexpr int kMeasured = 3;

double Measure(const std::vector<RatingEntry>& data, i64 rows, i64 cols, int depth) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  // Slow, *real* link: 200us latency + 100Mbps, charged as sender delay.
  cfg.net.latency_us = 200.0;
  cfg.net.bandwidth_bps = 100e6;
  cfg.net.charge_real_time = true;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 16;
  mf.loop_options.pipeline_depth = depth;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, rows, cols));
  double total = 0.0;
  for (int p = 0; p < kWarmup + kMeasured; ++p) {
    ORION_CHECK_OK(app.RunPass());
    if (p >= kWarmup) {
      total += app.last_metrics().pass_wall_seconds;
    }
  }
  return total / kMeasured;
}

int Main() {
  PrintHeader("Ablation: pipelining",
              "SGD MF, unordered 2D over a charged slow link: wall seconds per "
              "iteration vs pipeline depth (time partitions per worker)");
  RatingsConfig dcfg = NetflixLike();
  dcfg.nnz = 100000;  // keep the charged-network runs short
  const auto data = GenerateRatings(dcfg);

  std::printf("pipeline_depth,sec_per_iter\n");
  double d1 = 0.0;
  double d2 = 0.0;
  for (int depth : {1, 2, 4}) {
    const double s = Measure(data, dcfg.rows, dcfg.cols, depth);
    std::printf("%d,%.4f\n", depth, s);
    if (depth == 1) {
      d1 = s;
    }
    if (depth == 2) {
      d2 = s;
    }
  }
  PrintShape("pipelining (depth 2) is at least as fast as depth 1", d2 <= d1 * 1.05);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
