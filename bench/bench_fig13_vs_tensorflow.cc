// Fig. 13: SGD MF — Orion vs a TensorFlow-style mini-batch dataflow
// implementation. (a) loss over modeled time; (b) seconds per iteration for
// Orion, TF with a huge mini-batch (TF_25M analogue: the whole dataset per
// batch), and TF with a small mini-batch (TF_806K analogue).
//
// Paper shape: TF's per-batch-delayed updates converge far slower per
// iteration; TF's per-iteration time is worse than Orion's (2.2x in the
// paper), and *smaller* batches make TF iterations even slower (dispatch
// overhead, underutilized operators).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"
#include "src/baselines/tf_minibatch.h"

namespace orion {
namespace {

constexpr int kPasses = 12;
constexpr int kWorkers = 4;
constexpr int kRank = 8;

int Main() {
  PrintHeader("Fig 13",
              "SGD MF: Orion vs TensorFlow-style mini-batch dataflow — loss "
              "over time + seconds/iteration by batch size");
  const auto dcfg = NetflixLike();
  const auto data = GenerateRatings(dcfg);

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = kRank;
  SgdMfApp orion_app(&driver, mf);
  ORION_CHECK_OK(orion_app.Init(data, dcfg.rows, dcfg.cols));

  TfConfig tf_large_cfg;
  tf_large_cfg.num_threads = kWorkers;
  tf_large_cfg.minibatch_size = dcfg.nnz;  // one batch per epoch (TF_25M style)
  TfMinibatchMf tf_large(data, dcfg.rows, dcfg.cols, kRank, tf_large_cfg);
  TfConfig tf_small_cfg = tf_large_cfg;
  tf_small_cfg.minibatch_size = 4096;  // small batches (TF_806K style)
  TfMinibatchMf tf_small(data, dcfg.rows, dcfg.cols, kRank, tf_small_cfg);

  std::printf("iter,orion_t,orion_loss,tf_large_t,tf_large_loss,tf_small_t,tf_small_loss\n");
  double to = 0.0;
  double tl = 0.0;
  double tsm = 0.0;
  f64 orion_loss = 0.0;
  f64 tf_large_loss = 0.0;
  f64 tf_small_loss = 0.0;
  double orion_iter_s = 0.0;
  double tf_large_iter_s = 0.0;
  double tf_small_iter_s = 0.0;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(orion_app.RunPass());
    orion_iter_s = ModeledSeconds(orion_app.last_metrics(), kWorkers);
    to += orion_iter_s;
    orion_loss = *orion_app.EvalLoss();
    tf_large_iter_s = tf_large.RunPass();
    tl += tf_large_iter_s;
    tf_large_loss = tf_large.EvalLoss();
    tf_small_iter_s = tf_small.RunPass();
    tsm += tf_small_iter_s;
    tf_small_loss = tf_small.EvalLoss();
    std::printf("%d,%.4f,%.1f,%.4f,%.1f,%.4f,%.1f\n", p + 1, to, orion_loss, tl, tf_large_loss,
                tsm, tf_small_loss);
  }

  std::printf("sec_per_iter: orion=%.4f tf_large=%.4f tf_small=%.4f\n", orion_iter_s,
              tf_large_iter_s, tf_small_iter_s);
  PrintShape("Orion converges much faster per iteration than TF mini-batch",
             orion_loss * 2.0 < tf_large_loss);
  PrintShape("Orion's time/iteration beats TF's (paper: 2.2x)",
             orion_iter_s < tf_large_iter_s);
  PrintShape("smaller TF batches take longer per iteration (dispatch overhead)",
             tf_small_iter_s > tf_large_iter_s);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
