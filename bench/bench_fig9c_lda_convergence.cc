// Fig. 9c: LDA on the nytimes-like corpus — per-token log-likelihood per
// iteration for serial Gibbs, data-parallel Gibbs (Bösen-style), and Orion's
// 2D parallelization (ordered & unordered).
//
// Paper shape: dependence-aware parallel Gibbs tracks serial; data
// parallelism lags; ordering is immaterial.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/lda.h"
#include "src/baselines/bosen_ps.h"

namespace orion {
namespace {

constexpr int kPasses = 15;
constexpr int kWorkers = 4;
constexpr int kTopics = 20;

std::vector<f64> RunOrion(const std::vector<TokenEntry>& corpus, i64 docs, i64 vocab,
                          bool ordered) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  LdaConfig lda;
  lda.num_topics = kTopics;
  lda.loop_options.ordered = ordered;
  LdaApp app(&driver, lda);
  ORION_CHECK_OK(app.Init(corpus, docs, vocab));
  std::vector<f64> lls;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(app.RunPass());
    lls.push_back(*app.EvalLogLikelihood());
  }
  return lls;
}

int Main() {
  PrintHeader("Fig 9c",
              "LDA convergence per iteration (nytimes-like): serial vs data "
              "parallelism vs dependence-aware (ordered & unordered)");
  const auto ccfg = NyTimesLike();
  const auto corpus = GenerateCorpus(ccfg);

  LdaConfig lda;
  lda.num_topics = kTopics;
  SerialLda serial(corpus, ccfg.num_docs, ccfg.vocab, lda);
  BosenConfig bc;
  bc.num_workers = kWorkers;
  BosenLda bosen(corpus, ccfg.num_docs, ccfg.vocab, kTopics, bc);

  std::vector<f64> serial_lls;
  std::vector<f64> bosen_lls;
  for (int p = 0; p < kPasses; ++p) {
    serial.RunPass();
    serial_lls.push_back(serial.EvalLogLikelihood());
    bosen.RunPass();
    bosen_lls.push_back(bosen.EvalLogLikelihood());
  }
  const auto unordered = RunOrion(corpus, ccfg.num_docs, ccfg.vocab, /*ordered=*/false);
  const auto ordered = RunOrion(corpus, ccfg.num_docs, ccfg.vocab, /*ordered=*/true);

  std::printf("iter,serial,data_parallel,orion_unordered,orion_ordered\n");
  for (int p = 0; p < kPasses; ++p) {
    std::printf("%d,%.4f,%.4f,%.4f,%.4f\n", p + 1, serial_lls[static_cast<size_t>(p)],
                bosen_lls[static_cast<size_t>(p)], unordered[static_cast<size_t>(p)],
                ordered[static_cast<size_t>(p)]);
  }

  const f64 s = serial_lls.back();
  PrintShape("dep-aware (unordered) ends within 0.2 nats of serial", unordered.back() > s - 0.2);
  PrintShape("dep-aware (ordered) ends within 0.2 nats of serial", ordered.back() > s - 0.2);
  PrintShape("dep-aware beats data-parallel Gibbs per iteration",
             unordered.back() >= bosen_lls.back() - 0.02);
  PrintShape("loop ordering makes little convergence difference (within 0.15 nats)",
             ordered.back() > unordered.back() - 0.15 && unordered.back() > ordered.back() - 0.15);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
