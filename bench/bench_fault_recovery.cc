// Fault recovery overhead: SGD MF training with one worker crash mid-run,
// sweeping the checkpoint interval K in two durability modes:
//
//   full   EnableRecovery — every checkpoint rewrites the whole store
//          (write-temp, fsync, rename), recovery degrades to N-1 workers.
//   delta  EnableDurability — checkpoints append only the pages dirtied
//          since the previous record to a CRC-framed delta log, and the
//          crashed rank REJOINS after restore, so the cluster finishes the
//          run at its full width.
//
// Expected shape: passes_replayed after the crash is bounded by K, so total
// recovery work falls as K shrinks while checkpoint count (and fault-free
// overhead) rises — the classic checkpoint-interval trade-off (paper
// Sec. 4.3 fault tolerance). A second experiment measures checkpoint bytes
// on a sparse-update workload, where delta records stay far below the full
// image a whole-store checkpoint must rewrite every time.
//
// Emits BENCH_durability.json with the sweep and the bytes comparison.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"
#include "src/dsm/dist_array_buffer.h"
#include "src/net/fault_injector.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

constexpr int kPasses = 10;
constexpr int kWorkers = 4;
constexpr int kCrashPass = 5;

RatingsConfig BenchData() {
  RatingsConfig d;
  d.rows = 1200;
  d.cols = 900;
  d.nnz = 80000;
  d.true_rank = 8;
  d.seed = 21;
  return d;
}

std::string CkptDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("orion_bench_recovery_" + tag)).string();
  // A stale delta log from a previous run would be adopted by the writer and
  // pollute the byte counts; start every run from an empty directory.
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

u64 DirBytes(const std::string& dir) {
  u64 total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) {
      total += static_cast<u64>(e.file_size());
    }
  }
  return total;
}

struct RunResult {
  double wall_seconds = 0.0;
  f64 final_loss = 0.0;
  RuntimeMetrics metrics;
};

RunResult Run(const std::vector<RatingEntry>& data, const RatingsConfig& dcfg,
              int every_n_passes, bool crash, bool delta_log) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.supervisor.enabled = true;
  cfg.supervisor.heartbeat_interval_seconds = 0.02;
  cfg.supervisor.death_timeout_seconds = 1.0;
  cfg.supervisor.retry_initial_seconds = 0.02;
  if (crash) {
    cfg.fault_plan.seed = 9;
    cfg.fault_plan.crashes.push_back(CrashPoint{/*rank=*/1, /*pass=*/kCrashPass, /*step=*/-1});
  }
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 8;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, dcfg.rows, dcfg.cols));
  const std::string tag = std::string(delta_log ? "delta_" : "full_") +
                          (crash ? "crash_k" : "clean_k") + std::to_string(every_n_passes);
  if (delta_log) {
    Driver::DurabilityOptions opt;
    opt.every_n_passes = every_n_passes;
    opt.compact_every = 8;
    opt.rejoin_crashed_workers = crash;
    ORION_CHECK_OK(driver.EnableDurability({app.w(), app.h()}, CkptDir(tag), opt));
  } else {
    driver.EnableRecovery({app.w(), app.h()}, CkptDir(tag), every_n_passes);
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(app.RunPass());
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.final_loss = *app.EvalLoss();
  r.metrics = driver.runtime_metrics();
  return r;
}

struct SweepRow {
  int k = 0;
  RunResult r;
};

std::vector<SweepRow> CrashSweep(const std::vector<RatingEntry>& data,
                                 const RatingsConfig& dcfg, bool delta_log) {
  std::vector<SweepRow> rows;
  for (int k : {1, 2, 4, 8}) {
    RunResult r = Run(data, dcfg, k, /*crash=*/true, delta_log);
    std::printf("%s,%d,%.2f,%llu,%.3f,%llu,%.3f,%.1f\n", delta_log ? "delta" : "full", k,
                r.wall_seconds, static_cast<unsigned long long>(r.metrics.checkpoints_written),
                r.metrics.checkpoint_seconds,
                static_cast<unsigned long long>(r.metrics.passes_replayed),
                r.metrics.recovery_seconds, r.final_loss);
    ORION_CHECK(r.metrics.crashes_triggered == 1);
    ORION_CHECK(r.metrics.recoveries == 1);
    rows.push_back({k, std::move(r)});
  }
  return rows;
}

// ---- Sparse-update workload: delta bytes vs whole-store checkpoints ----
//
// A 32768-cell server table where every pass's writes land in page 0 only
// (write keys are taken mod 64; pages hold 256 cells). A whole-store
// checkpoint rewrites all 32768 cells each time; a delta record ships one
// dirty page.

constexpr i64 kTableKeys = 32768;
constexpr i64 kTableSamples = 512;
constexpr int kSparsePasses = 12;

struct SparseRun {
  RuntimeMetrics metrics;
  u64 full_image_bytes = 0;  // on-disk size of one whole-store checkpoint
};

SparseRun RunSparse(bool delta_log) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.seed = 13;
  Driver driver(cfg);
  const DistArrayId samples =
      driver.CreateDistArray("samples", {kTableSamples}, 3, Density::kDense);
  const DistArrayId table_r =
      driver.CreateDistArray("table_r", {kTableKeys}, 1, Density::kDense);
  const DistArrayId table_w =
      driver.CreateDistArray("table_w", {kTableKeys}, 1, Density::kDense);
  driver.MapCells(samples, [](i64 key, f32* v) {
    v[0] = static_cast<f32>((key * 31 + 7) % kTableKeys);  // read key: anywhere
    v[1] = static_cast<f32>((key * 17 + 3) % 64);          // write key: page 0 only
    v[2] = static_cast<f32>(1 + key % 5);
  });
  driver.MapCells(table_r, [](i64 key, f32* v) { v[0] = static_cast<f32>(key % 11); });
  driver.MapCells(table_w, [](i64 key, f32* v) { v[0] = static_cast<f32>(key % 5); });
  driver.RegisterBuffer(table_w, 1, MakeAddApplyFn());

  LoopSpec spec;
  spec.iter_space = samples;
  spec.iter_extents = {kTableSamples};
  spec.AddAccess(table_r, "table_r", {Expr::Runtime("rk")}, /*is_write=*/false);
  spec.AddAccess(table_w, "table_w", {Expr::Runtime("wk")}, /*is_write=*/true,
                 /*buffered=*/true);
  LoopKernel kernel = [table_r, table_w](LoopContext& ctx, IdxSpan idx, const f32* value) {
    (void)idx;
    const i64 rk[1] = {static_cast<i64>(value[0])};
    const i64 wk[1] = {static_cast<i64>(value[1])};
    const f32 upd = value[2] * (ctx.Read(table_r, rk)[0] + 1.0f);
    ctx.BufferUpdate(table_w, wk, &upd);
  };
  ParallelForOptions options;
  options.server_sync_rounds = 2;
  options.planner.replicate_threshold_floats = 0;  // both tables server-hosted
  auto loop = driver.Compile(spec, kernel, options);
  ORION_CHECK(loop.ok());

  const std::string dir = CkptDir(delta_log ? "sparse_delta" : "sparse_full");
  if (delta_log) {
    Driver::DurabilityOptions opt;
    opt.every_n_passes = 1;
    opt.compact_every = 0;  // keep every record a delta so bytes reflect dirty pages
    ORION_CHECK_OK(driver.EnableDurability({table_w}, dir, opt));
  } else {
    driver.EnableRecovery({table_w}, dir, /*every_n_passes=*/1);
  }
  for (int p = 0; p < kSparsePasses; ++p) {
    ORION_CHECK_OK(driver.Execute(*loop));
  }

  SparseRun out;
  out.metrics = driver.runtime_metrics();
  if (!delta_log) {
    out.full_image_bytes = DirBytes(dir);
  }
  return out;
}

int Main() {
  PrintHeader("Fault recovery & log-structured durability",
              "SGD MF, 4 workers, crash of worker 1 at pass 5; sweep checkpoint "
              "interval K in whole-store (full) and delta-log (delta) modes. "
              "Replay after the crash is bounded by K; delta mode rejoins the "
              "crashed rank.");
  const auto dcfg = BenchData();
  const auto data = GenerateRatings(dcfg);

  const RunResult baseline = Run(data, dcfg, /*every_n_passes=*/4, /*crash=*/false,
                                 /*delta_log=*/false);
  std::printf("fault-free baseline (full, K=4): wall=%.2fs ckpts=%llu ckpt_time=%.3fs loss=%.1f\n\n",
              baseline.wall_seconds,
              static_cast<unsigned long long>(baseline.metrics.checkpoints_written),
              baseline.metrics.checkpoint_seconds, baseline.final_loss);

  std::printf("mode,K,wall_s,ckpts_written,ckpt_s,passes_replayed,recovery_s,final_loss\n");
  const std::vector<SweepRow> full_rows = CrashSweep(data, dcfg, /*delta_log=*/false);
  const std::vector<SweepRow> delta_rows = CrashSweep(data, dcfg, /*delta_log=*/true);

  bool replay_bounded = true;
  bool ckpts_monotone = true;
  bool rejoined = true;
  for (const auto* rows : {&full_rows, &delta_rows}) {
    u64 prev_ckpts = ~0ull;
    for (const SweepRow& row : *rows) {
      replay_bounded =
          replay_bounded && row.r.metrics.passes_replayed <= static_cast<u64>(row.k);
      ckpts_monotone = ckpts_monotone &&
                       (prev_ckpts == ~0ull || row.r.metrics.checkpoints_written <= prev_ckpts);
      prev_ckpts = row.r.metrics.checkpoints_written;
    }
  }
  for (const SweepRow& row : delta_rows) {
    rejoined = rejoined && row.r.metrics.worker_rejoins == 1;
  }

  std::printf("\nsparse-update checkpoint bytes (%d passes, K=1, %lld-cell table, "
              "writes confined to one page):\n",
              kSparsePasses, static_cast<long long>(kTableKeys));
  const SparseRun sp_full = RunSparse(/*delta_log=*/false);
  const SparseRun sp_delta = RunSparse(/*delta_log=*/true);
  const u64 full_total = sp_full.metrics.checkpoints_written * sp_full.full_image_bytes;
  const u64 delta_total = sp_delta.metrics.log_bytes_appended;
  const double bytes_ratio =
      delta_total > 0 ? static_cast<double>(full_total) / static_cast<double>(delta_total) : 0.0;
  std::printf("full : ckpts=%llu image_bytes=%llu total_bytes=%llu ckpt_s=%.3f\n",
              static_cast<unsigned long long>(sp_full.metrics.checkpoints_written),
              static_cast<unsigned long long>(sp_full.full_image_bytes),
              static_cast<unsigned long long>(full_total), sp_full.metrics.checkpoint_seconds);
  std::printf("delta: ckpts=%llu delta_records=%llu pages_deltad=%llu total_bytes=%llu "
              "ckpt_s=%.3f (%.1fx fewer bytes)\n",
              static_cast<unsigned long long>(sp_delta.metrics.checkpoints_written),
              static_cast<unsigned long long>(sp_delta.metrics.delta_checkpoints),
              static_cast<unsigned long long>(sp_delta.metrics.pages_deltad),
              static_cast<unsigned long long>(delta_total),
              sp_delta.metrics.checkpoint_seconds, bytes_ratio);

  auto sweep_json = [](const std::vector<SweepRow>& rows) {
    std::vector<std::string> out;
    for (const SweepRow& row : rows) {
      out.push_back(
          JsonF("{\"k\": %d, \"wall_s\": %.4f, \"ckpts_written\": %llu, "
                "\"ckpt_s\": %.4f, \"passes_replayed\": %llu, \"recovery_s\": %.4f, "
                "\"worker_rejoins\": %llu}",
                row.k, row.r.wall_seconds,
                static_cast<unsigned long long>(row.r.metrics.checkpoints_written),
                row.r.metrics.checkpoint_seconds,
                static_cast<unsigned long long>(row.r.metrics.passes_replayed),
                row.r.metrics.recovery_seconds,
                static_cast<unsigned long long>(row.r.metrics.worker_rejoins)));
    }
    return BenchJson::Array(out);
  };
  BenchJson("durability")
      .Figure("recovery_sweep", "{\"full\": " + sweep_json(full_rows) +
                                    ", \"delta\": " + sweep_json(delta_rows) + "}")
      .Figure("sparse_checkpoint_bytes",
              JsonF("{\"passes\": %d, \"full_image_bytes\": %llu, "
                    "\"full_total_bytes\": %llu, \"delta_total_bytes\": %llu, "
                    "\"delta_records\": %llu, \"pages_deltad\": %llu, "
                    "\"full_over_delta_bytes\": %.2f}",
                    kSparsePasses, static_cast<unsigned long long>(sp_full.full_image_bytes),
                    static_cast<unsigned long long>(full_total),
                    static_cast<unsigned long long>(delta_total),
                    static_cast<unsigned long long>(sp_delta.metrics.delta_checkpoints),
                    static_cast<unsigned long long>(sp_delta.metrics.pages_deltad),
                    bytes_ratio))
      .Write();

  PrintShape("replayed passes after the crash are bounded by the checkpoint interval K",
             replay_bounded);
  PrintShape("checkpoint count falls as K grows (fault-free overhead trade-off)",
             ckpts_monotone);
  PrintShape("delta mode rejoins the crashed rank (cluster back to full width)", rejoined);
  PrintShape("sparse-update delta log writes >= 4x fewer bytes than whole-store checkpoints",
             delta_total > 0 && full_total >= 4 * delta_total);
  PrintShape("all but the first two records are delta appends",
             sp_delta.metrics.delta_checkpoints >=
                 static_cast<u64>(kSparsePasses) - 1);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
