// Fault recovery overhead: SGD MF training with one worker crash mid-run,
// sweeping the checkpoint interval K. Frequent checkpoints cost time on the
// fault-free path but bound the replay work after a crash; infrequent ones
// are cheap until a worker dies and many passes must be re-executed from the
// last snapshot.
//
// Expected shape: passes_replayed after the crash is bounded by K, so total
// recovery work falls as K shrinks while checkpoint count (and fault-free
// overhead) rises — the classic checkpoint-interval trade-off (paper
// Sec. 4.3 fault tolerance).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/sgd_mf.h"
#include "src/net/fault_injector.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

constexpr int kPasses = 10;
constexpr int kWorkers = 4;
constexpr int kCrashPass = 5;

RatingsConfig BenchData() {
  RatingsConfig d;
  d.rows = 1200;
  d.cols = 900;
  d.nnz = 80000;
  d.true_rank = 8;
  d.seed = 21;
  return d;
}

std::string CkptDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("orion_bench_recovery_" + tag)).string();
  std::filesystem::create_directories(dir);
  return dir;
}

struct RunResult {
  double wall_seconds = 0.0;
  f64 final_loss = 0.0;
  RuntimeMetrics metrics;
};

RunResult Run(const std::vector<RatingEntry>& data, const RatingsConfig& dcfg,
              int every_n_passes, bool crash) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.supervisor.enabled = true;
  cfg.supervisor.heartbeat_interval_seconds = 0.02;
  cfg.supervisor.death_timeout_seconds = 1.0;
  cfg.supervisor.retry_initial_seconds = 0.02;
  if (crash) {
    cfg.fault_plan.seed = 9;
    cfg.fault_plan.crashes.push_back(CrashPoint{/*rank=*/1, /*pass=*/kCrashPass, /*step=*/-1});
  }
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 8;
  SgdMfApp app(&driver, mf);
  ORION_CHECK_OK(app.Init(data, dcfg.rows, dcfg.cols));
  driver.EnableRecovery({app.w(), app.h()},
                        CkptDir((crash ? "crash_k" : "clean_k") + std::to_string(every_n_passes)),
                        every_n_passes);

  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(app.RunPass());
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.final_loss = *app.EvalLoss();
  r.metrics = driver.runtime_metrics();
  return r;
}

int Main() {
  PrintHeader("Fault recovery overhead",
              "SGD MF, 4 workers, crash of worker 1 at pass 5; sweep checkpoint "
              "interval K. Replay after the crash is bounded by K.");
  const auto dcfg = BenchData();
  const auto data = GenerateRatings(dcfg);

  const RunResult baseline = Run(data, dcfg, /*every_n_passes=*/4, /*crash=*/false);
  std::printf("fault-free baseline (K=4): wall=%.2fs ckpts=%llu ckpt_time=%.3fs loss=%.1f\n\n",
              baseline.wall_seconds,
              static_cast<unsigned long long>(baseline.metrics.checkpoints_written),
              baseline.metrics.checkpoint_seconds, baseline.final_loss);

  std::printf("K,wall_s,ckpts_written,ckpt_s,passes_replayed,recovery_s,final_loss\n");
  bool replay_bounded = true;
  bool ckpts_monotone = true;
  u64 prev_ckpts = ~0ull;
  for (int k : {1, 2, 4, 8}) {
    const RunResult r = Run(data, dcfg, k, /*crash=*/true);
    std::printf("%d,%.2f,%llu,%.3f,%llu,%.3f,%.1f\n", k, r.wall_seconds,
                static_cast<unsigned long long>(r.metrics.checkpoints_written),
                r.metrics.checkpoint_seconds,
                static_cast<unsigned long long>(r.metrics.passes_replayed),
                r.metrics.recovery_seconds, r.final_loss);
    ORION_CHECK(r.metrics.crashes_triggered == 1);
    ORION_CHECK(r.metrics.recoveries == 1);
    replay_bounded = replay_bounded && r.metrics.passes_replayed <= static_cast<u64>(k);
    ckpts_monotone = ckpts_monotone &&
                     (prev_ckpts == ~0ull || r.metrics.checkpoints_written <= prev_ckpts);
    prev_ckpts = r.metrics.checkpoints_written;
  }

  PrintShape("replayed passes after the crash are bounded by the checkpoint interval K",
             replay_bounded);
  PrintShape("checkpoint count falls as K grows (fault-free overhead trade-off)",
             ckpts_monotone);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
