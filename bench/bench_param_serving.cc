// Sharded async parameter serving + depth-k prefetch ring: pass wall time
// across a (ring depth, shard count) sweep on the rotation+server scenario,
// under a cost model that charges real time at the sender.
//
// The PR-2 overlap engine (depth-1 double buffer, inline serving on the
// master's service loop) is the baseline; the sweep turns on the sharded
// ParamServer and deepens the ring. One extra point runs the deepest
// configuration under seeded message faults (drop/dup/delay of control
// traffic) to show the async path composes with supervision.
//
// Every configuration must be bit-for-bit identical to the synchronous run;
// a mismatch is the only failure (exit 1). Timings are written to
// BENCH_param_serving.json for the CI smoke step.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;

std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

NetCostModel SlowLink() {
  NetCostModel m;
  m.latency_us = 1000.0;
  m.bandwidth_bps = 2e9;
  m.charge_real_time = true;
  return m;
}

struct Config {
  bool overlap = true;
  bool async_serving = true;
  int depth = 2;
  int shards = 4;
  bool faults = false;
};

struct RunResult {
  double sec_per_pass = 0.0;
  double serve_seconds = 0.0;
  int shard_queue_depth = 0;
  int ring_depth = 0;
  double reply_wait_seconds = 0.0;
  WaitHistogram reply_wait;  // merged across workers and passes
  std::map<i64, std::vector<f32>> out_r;
  std::map<i64, std::vector<f32>> out_c;
  f64 accum = 0.0;
};

RunResult Run(const Config& c) {
  constexpr i64 kRows = 64;
  constexpr i64 kCols = 64;
  constexpr int kPasses = 6;

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.net = SlowLink();
  cfg.seed = 11;
  cfg.async_param_serving = c.async_serving;
  cfg.param_server_shards = c.shards;
  if (c.faults) {
    cfg.fault_plan.seed = 29;
    cfg.fault_plan.drop_prob = 0.03;
    cfg.fault_plan.dup_prob = 0.03;
    cfg.fault_plan.delay_prob = 0.03;
    cfg.supervisor.heartbeat_interval_seconds = 0.05;
    cfg.supervisor.retry_initial_seconds = 0.05;
  }
  Driver driver(cfg);

  auto data = driver.CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  auto out_r = driver.CreateDistArray("out_r", {kRows}, 4, Density::kDense);
  auto out_c = driver.CreateDistArray("out_c", {kCols}, 4, Density::kDense);
  auto table = driver.CreateDistArray("table", {kRows + kCols - 1}, 4, Density::kDense);
  {
    Rng rng(99);
    CellStore& cells = driver.MutableCells(data);
    for (i64 n = 0; n < 2500; ++n) {
      const i64 i = static_cast<i64>(rng.NextBounded(static_cast<u64>(kRows)));
      const i64 j = static_cast<i64>(rng.NextBounded(static_cast<u64>(kCols)));
      *cells.GetOrCreate(i * kCols + j) = 1.0f + 0.25f * static_cast<f32>(n % 7);
    }
    driver.MapCells(table, [](i64 key, f32* v) {
      for (int d = 0; d < 4; ++d) {
        v[d] = 0.5f + 0.001f * static_cast<f32>(key + d);
      }
    });
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kRows, kCols};
  spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);

  const int acc = driver.CreateAccumulator();
  // Lighter compute than bench_overlap's kernel: here the regime under test
  // is a master-bound pass, where the inline reply fan-out (one serialized
  // ~latency sleep per worker per step on the service loop) exceeds the
  // kernel time and stalls every worker. The sharded server's per-worker
  // reply lanes overlap that fan-out; the deep ring hides the round trip.
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32* t = ctx.Read(table, k);
    f32 s = value[0];
    for (int it = 0; it < 2500; ++it) {
      s = s * 0.999f + t[it & 3] * 0.001f;
    }
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    f32* r = ctx.Mutate(out_r, ki);
    f32* cc = ctx.Mutate(out_c, kj);
    for (int d = 0; d < 4; ++d) {
      r[d] += s * t[d];
      cc[d] += s * t[d];
    }
    ctx.AccumulatorAdd(acc, static_cast<f64>(s));
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;  // warm cache => deep early issue
  options.prefetch_depth = c.depth;
  options.overlap = c.overlap;
  options.planner.replicate_threshold_floats = 0;  // force table -> kServer
  auto loop = driver.Compile(spec, kernel, options);
  ORION_CHECK_OK(loop.status());
  ORION_CHECK(driver.PlanOf(*loop).placements.at(table).scheme == PartitionScheme::kServer);

  RunResult res;
  for (int p = 0; p < kPasses; ++p) {
    ORION_CHECK_OK(driver.Execute(*loop));
    if (p > 0) {  // skip the recording pass: measure the warm-cache regime
      const LoopMetrics& m = driver.last_metrics();
      res.sec_per_pass += m.pass_wall_seconds;
      res.serve_seconds += m.param_serve_seconds;
      res.shard_queue_depth = std::max(res.shard_queue_depth, m.param_shard_queue_depth_max);
      res.ring_depth = std::max(res.ring_depth, m.prefetch_ring_depth_used);
      for (const WaitHistogram& h : m.worker_reply_wait) {
        res.reply_wait.Merge(h);
      }
    }
  }
  res.reply_wait_seconds = res.reply_wait.total_seconds;
  res.sec_per_pass /= kPasses - 1;
  res.out_r = Snapshot(&driver, out_r);
  res.out_c = Snapshot(&driver, out_c);
  res.accum = driver.AccumulatorValue(acc);
  return res;
}

bool Identical(const RunResult& a, const RunResult& b) {
  return a.out_r == b.out_r && a.out_c == b.out_c && a.accum == b.accum;
}

int Main() {
  PrintHeader("sharded async parameter serving + depth-k prefetch ring",
              "pass wall seconds across (ring depth, shard count), vs the depth-1 "
              "inline-serving overlap baseline, real-time-charged link");

  Config sync_cfg;
  sync_cfg.overlap = false;
  sync_cfg.async_serving = false;
  sync_cfg.depth = 1;
  const RunResult sync = Run(sync_cfg);

  Config base_cfg;  // PR-2 overlap engine: depth-1 pipeline, inline serving
  base_cfg.overlap = true;
  base_cfg.async_serving = false;
  base_cfg.depth = 1;
  const RunResult baseline = Run(base_cfg);

  bool identical = Identical(sync, baseline);
  if (!identical) {
    std::printf("MISMATCH: overlap baseline is not bit-for-bit identical to sync\n");
  }

  struct Point {
    int depth;
    int shards;
    RunResult res;
    bool identical;
  };
  std::vector<Point> points;
  std::printf("depth,shards,sec_per_pass,speedup_vs_baseline,serve_sec,ring_depth,"
              "reply_wait_sec,identical\n");
  std::printf("sync,,%.4f,,,,,\n", sync.sec_per_pass);
  std::printf("1(inline),,%.4f,1.00,,,,%d\n", baseline.sec_per_pass, identical ? 1 : 0);
  for (int depth : {1, 2, 4}) {
    for (int shards : {1, 4}) {
      Config c;
      c.depth = depth;
      c.shards = shards;
      Point p{depth, shards, Run(c), false};
      p.identical = Identical(sync, p.res);
      if (!p.identical) {
        std::printf("MISMATCH: depth=%d shards=%d is not bit-for-bit identical to sync\n",
                    depth, shards);
        identical = false;
      }
      std::printf("%d,%d,%.4f,%.2f,%.4f,%d,%.4f,%d\n", depth, shards, p.res.sec_per_pass,
                  baseline.sec_per_pass / p.res.sec_per_pass, p.res.serve_seconds,
                  p.res.ring_depth, p.res.reply_wait_seconds, p.identical ? 1 : 0);
      points.push_back(std::move(p));
    }
  }

  Config fault_cfg;
  fault_cfg.depth = 2;
  fault_cfg.shards = 4;
  fault_cfg.faults = true;
  const RunResult faulted = Run(fault_cfg);
  const bool fault_identical = Identical(sync, faulted);
  if (!fault_identical) {
    std::printf("MISMATCH: fault-injected run is not bit-for-bit identical to sync\n");
    identical = false;
  }
  std::printf("2,4,%.4f,%.2f,%.4f,%d,%.4f,%d  (fault-injected)\n", faulted.sec_per_pass,
              baseline.sec_per_pass / faulted.sec_per_pass, faulted.serve_seconds,
              faulted.ring_depth, faulted.reply_wait_seconds, fault_identical ? 1 : 0);

  // Headline: the deepest sharded configuration vs the PR-2 baseline.
  double best_speedup = 0.0;
  for (const Point& p : points) {
    if (p.depth >= 2 && p.shards >= 4) {
      best_speedup = std::max(best_speedup, baseline.sec_per_pass / p.res.sec_per_pass);
    }
  }

  std::vector<std::string> sweep_rows;
  for (const Point& p : points) {
    sweep_rows.push_back(
        JsonF("{\"depth\": %d, \"shards\": %d, \"sec_per_pass\": %.6f, "
              "\"speedup_vs_baseline\": %.3f, \"serve_sec\": %.6f, "
              "\"ring_depth_used\": %d, \"reply_wait_sec\": %.6f, "
              "\"reply_wait_p50\": %.6f, \"reply_wait_p99\": %.6f, "
              "\"identical\": %s}",
              p.depth, p.shards, p.res.sec_per_pass,
              baseline.sec_per_pass / p.res.sec_per_pass, p.res.serve_seconds,
              p.res.ring_depth, p.res.reply_wait_seconds,
              p.res.reply_wait.ApproxPercentile(0.5),
              p.res.reply_wait.ApproxPercentile(0.99), p.identical ? "true" : "false"));
  }
  BenchJson("param_serving")
      .Figure("sync_sec", sync.sec_per_pass)
      .Figure("overlap_depth1_inline_sec", baseline.sec_per_pass)
      .Figure("sweep", BenchJson::Array(sweep_rows))
      .Figure("fault_injected",
              JsonF("{\"depth\": 2, \"shards\": 4, \"sec_per_pass\": %.6f, "
                    "\"identical\": %s}",
                    faulted.sec_per_pass, fault_identical ? "true" : "false"))
      .Figure("best_speedup_vs_baseline", JsonF("%.3f", best_speedup))
      .Figure("bit_for_bit_identical", identical)
      .Write();

  PrintShape("sharded serving + deep ring beats the depth-1 inline baseline by >= 1.15x",
             best_speedup >= 1.15);
  PrintShape("all (depth, shards) points bit-for-bit identical to sync", identical);
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
