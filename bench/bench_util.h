// Shared helpers for the experiment-reproduction benchmarks.
//
// Methodology note (single-host simulation): logical workers are threads
// that timeshare this machine's cores, so raw wall-clock does not show
// scaling. Throughput numbers therefore report the *modeled cluster time*
// of a pass: the slowest worker's compute time (the critical path; each
// worker's compute is measured directly) plus a network term derived from
// the actual bytes/messages the pass moved through the fabric, using the
// paper's 40Gbps-Ethernet-class link model. Convergence-per-iteration
// results are exact (they do not depend on timing at all).
#ifndef ORION_BENCH_BENCH_UTIL_H_
#define ORION_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/datagen.h"
#include "src/runtime/metrics.h"

namespace orion {

struct LinkModel {
  double bandwidth_bps = 40e9;   // 40Gbps Ethernet (paper cluster)
  double latency_s = 20e-6;      // per-message
  double cpu_per_byte = 1.5e-9;  // marshalling cost on the critical path
};

// Communication is pipelined across workers: each worker's link carries
// roughly bytes/num_workers and sends msgs/num_workers messages, overlapped
// with other workers' compute, so the critical path charges the per-worker
// share.
inline double ModeledSeconds(double compute_max, u64 bytes, u64 msgs, int num_workers,
                             const LinkModel& m = LinkModel()) {
  const double per_worker_bytes = static_cast<double>(bytes) / num_workers;
  const double per_worker_msgs = static_cast<double>(msgs) / num_workers;
  return compute_max + per_worker_bytes * 8.0 / m.bandwidth_bps +
         per_worker_msgs * m.latency_s + per_worker_bytes * m.cpu_per_byte;
}

inline double ModeledSeconds(const LoopMetrics& metrics, int num_workers,
                             const LinkModel& m = LinkModel()) {
  return ModeledSeconds(metrics.max_worker_compute_seconds, metrics.bytes_sent,
                        metrics.messages_sent, num_workers, m);
}

// ---- Standard synthetic datasets (scaled-down stand-ins for the paper's) --

// Netflix-like: power-law sparse ratings with planted low-rank structure.
inline RatingsConfig NetflixLike() {
  RatingsConfig d;
  d.rows = 3000;
  d.cols = 2000;
  d.nnz = 300000;
  d.true_rank = 8;
  d.zipf_alpha = 0.6;
  d.seed = 42;
  return d;
}

// NYTimes-like: medium corpus with planted topics.
inline CorpusConfig NyTimesLike() {
  CorpusConfig c;
  c.num_docs = 2000;
  c.vocab = 2500;
  c.true_topics = 20;
  c.doc_length = 60;
  c.seed = 43;
  return c;
}

// ClueWeb-like: larger corpus (scaled).
inline CorpusConfig ClueWebLike() {
  CorpusConfig c;
  c.num_docs = 6000;
  c.vocab = 4000;
  c.true_topics = 20;
  c.doc_length = 60;
  c.seed = 46;
  return c;
}

// KDD-like sparse LR features.
inline SparseLrConfig KddLike() {
  SparseLrConfig d;
  d.num_samples = 20000;
  d.num_features = 50000;
  d.nnz_per_sample = 30;
  d.seed = 44;
  return d;
}

// ---- Output helpers ----

// printf into a std::string — for assembling raw JSON figure values.
inline std::string JsonF(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args);
  }
  va_end(args);
  return out;
}

// Uniform machine-readable bench output. Every bench emits one
// BENCH_<name>.json of the shape
//
//   {"bench": "<name>", "schema_version": 1, "figures": {...}}
//
// so CI gates and cross-PR tracking address figures as
// .figures.<key>... regardless of which bench produced them. Figure values
// are raw JSON fragments (numbers, bools, or JsonF-built objects/arrays);
// the helper owns only the envelope.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  BenchJson& Figure(const std::string& key, std::string raw_json_value) {
    figures_.emplace_back(key, std::move(raw_json_value));
    return *this;
  }
  BenchJson& Figure(const std::string& key, double v) {
    return Figure(key, JsonF("%.6f", v));
  }
  BenchJson& Figure(const std::string& key, bool v) {
    return Figure(key, std::string(v ? "true" : "false"));
  }

  // Joins raw-JSON elements into a JSON array.
  static std::string Array(const std::vector<std::string>& elems) {
    std::string out = "[";
    for (size_t i = 0; i < elems.size(); ++i) {
      out += "\n      ";
      out += elems[i];
      if (i + 1 < elems.size()) {
        out += ",";
      }
    }
    out += "\n    ]";
    return out;
  }

  // Writes BENCH_<bench>.json into the working directory (where CI collects
  // artifacts from). Returns false on IO failure.
  bool Write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema_version\": 1,\n  \"figures\": {\n",
                 bench_.c_str());
    for (size_t i = 0; i < figures_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %s%s\n", figures_[i].first.c_str(),
                   figures_[i].second.c_str(), i + 1 < figures_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> figures_;
};

inline void PrintHeader(const std::string& experiment, const std::string& description) {
  std::printf("==== %s ====\n%s\n", experiment.c_str(), description.c_str());
}

inline void PrintShape(const std::string& expected, bool holds) {
  std::printf("PAPER-SHAPE [%s]: %s\n", holds ? "OK" : "MISS", expected.c_str());
}

}  // namespace orion

#endif  // ORION_BENCH_BENCH_UTIL_H_
