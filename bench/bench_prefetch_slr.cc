// Sec. 6.3 "Bulk Prefetching": SLR on kdd-like sparse features.
//
// Three ways to serve server-hosted weight reads:
//   per-key  — one request/reply round trip per weight (naive remote random
//              access; the paper's 7682 s/pass data point),
//   bulk     — Orion's synthesized access-recording pass batches all keys
//              into one request per array per sync round (9.2 s),
//   cached   — the recorded key lists are reused across passes (6.3 s).
//
// Paper shape: per-key is orders of magnitude slower; caching the prefetch
// indices shaves the recording pass off bulk prefetching.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/slr.h"

namespace orion {
namespace {

constexpr int kWorkers = 4;

double MeasurePass(const std::vector<SparseSample>& data, i64 features, PrefetchMode mode,
                   int passes) {
  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  SlrConfig slr;
  slr.loop_options.prefetch = mode;
  SlrApp app(&driver, slr);
  ORION_CHECK_OK(app.Init(data, features));
  double total = 0.0;
  for (int p = 0; p < passes; ++p) {
    ORION_CHECK_OK(app.RunPass());
    if (p > 0 || passes == 1) {  // cached mode: skip the recording pass
      total += ModeledSeconds(app.last_metrics(), kWorkers);
    }
  }
  return passes == 1 ? total : total / (passes - 1);
}

int Main() {
  PrintHeader("Sec 6.3 bulk prefetching",
              "SLR (kdd-like): modeled seconds/pass — per-key requests vs "
              "synthesized bulk prefetch vs cached prefetch indices");
  const auto dcfg = KddLike();
  const auto data = GenerateSparseLr(dcfg);

  const double per_key = MeasurePass(data, dcfg.num_features, PrefetchMode::kPerKey, 1);
  const double bulk = MeasurePass(data, dcfg.num_features, PrefetchMode::kBulk, 3);
  const double cached = MeasurePass(data, dcfg.num_features, PrefetchMode::kCached, 3);

  std::printf("mode,sec_per_pass\n");
  std::printf("per_key,%.3f\n", per_key);
  std::printf("bulk_prefetch,%.3f\n", bulk);
  std::printf("cached_prefetch,%.3f\n", cached);
  std::printf("speedup per_key->bulk: %.0fx, bulk->cached: %.2fx\n", per_key / bulk,
              bulk / cached);

  PrintShape("per-key remote access is orders of magnitude slower than bulk (>50x)",
             per_key > 50.0 * bulk);
  PrintShape("caching prefetch indices further reduces the pass time", cached < bulk);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
