// Fig. 10c: LDA on the clueweb-like corpus — log-likelihood over modeled
// time: Bösen plain data parallelism, Bösen managed communication, Orion.
//
// Paper shape: managed communication lifts Bösen close to Orion per
// iteration, but its aggressive communication costs CPU/bandwidth, so Orion
// keeps the best overall (time-axis) convergence.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/lda.h"
#include "src/baselines/bosen_ps.h"

namespace orion {
namespace {

constexpr int kPasses = 12;
constexpr int kWorkers = 4;
constexpr int kTopics = 20;

int Main() {
  PrintHeader("Fig 10c",
              "LDA (clueweb-like): log-likelihood over modeled time — Bösen "
              "plain vs Bösen managed-comm vs Orion");
  const auto ccfg = ClueWebLike();
  const auto corpus = GenerateCorpus(ccfg);

  BosenConfig plain_cfg;
  plain_cfg.num_workers = kWorkers;
  BosenLda plain(corpus, ccfg.num_docs, ccfg.vocab, kTopics, plain_cfg);
  BosenConfig cm_cfg = plain_cfg;
  cm_cfg.managed_comm = true;
  cm_cfg.comm_intervals_per_pass = 16;
  BosenLda cm(corpus, ccfg.num_docs, ccfg.vocab, kTopics, cm_cfg);

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  Driver driver(cfg);
  LdaConfig lda;
  lda.num_topics = kTopics;
  LdaApp orion_app(&driver, lda);
  ORION_CHECK_OK(orion_app.Init(corpus, ccfg.num_docs, ccfg.vocab));

  std::printf("iter,bosen_plain_t,bosen_plain_ll,bosen_cm_t,bosen_cm_ll,orion_t,orion_ll\n");
  double tp = 0.0;
  double tc = 0.0;
  double to = 0.0;
  f64 ll_plain = 0.0;
  f64 ll_cm = 0.0;
  f64 ll_orion = 0.0;
  std::vector<std::pair<double, f64>> cm_curve;   // (time, ll)
  for (int p = 0; p < kPasses; ++p) {
    plain.RunPass();
    tp += ModeledSeconds(plain.last_pass_compute_max(), plain.last_pass_bytes(), 0, kWorkers);
    ll_plain = plain.EvalLogLikelihood();
    cm.RunPass();
    tc += ModeledSeconds(cm.last_pass_compute_max(), cm.last_pass_bytes(), 0, kWorkers);
    ll_cm = cm.EvalLogLikelihood();
    cm_curve.push_back({tc, ll_cm});
    ORION_CHECK_OK(orion_app.RunPass());
    to += ModeledSeconds(orion_app.last_metrics(), kWorkers);
    ll_orion = *orion_app.EvalLogLikelihood();
    std::printf("%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", p + 1, tp, ll_plain, tc, ll_cm, to,
                ll_orion);
  }

  // Where had CM gotten by the time Orion finished all its passes? (The
  // paper's time-axis comparison: CM's aggressive communication costs
  // CPU/bandwidth, so at equal time it trails.)
  f64 cm_at_orion_time = cm_curve.front().second;
  for (const auto& [t, ll] : cm_curve) {
    if (t <= to) {
      cm_at_orion_time = ll;
    }
  }

  // Parallel Gibbs is racy; near convergence the two curves can cross by a
  // few hundredths of a nat run-to-run.
  PrintShape("managed comm converges at least as well per iteration as plain Bösen",
             ll_cm >= ll_plain - 0.1);
  PrintShape("managed comm moves more bytes than plain Bösen",
             cm.bytes_communicated() > plain.bytes_communicated());
  PrintShape("managed comm's per-iteration quality is similar to Orion's (within 0.12 nats)",
             std::abs(ll_cm - ll_orion) < 0.12);
  PrintShape("at equal modeled time Orion is ahead of managed comm",
             ll_orion > cm_at_orion_time);
  return 0;
}

}  // namespace
}  // namespace orion

int main() { return orion::Main(); }
