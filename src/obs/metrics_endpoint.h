// Prometheus text-exposition endpoint: GET /metrics (text format 0.0.4) and
// GET /healthz on a localhost TCP port.
//
// Renders entirely from the Monitor's published registry snapshot (an
// immutable MetricsRegistry the driver swaps in at pass boundaries) plus
// the monitor's latest live sample — the accept loop never touches driver,
// fabric, or executor state, so a scrape can never contend with (or
// perturb) a running pass. The listener binds 127.0.0.1 only: this is an
// operator scrape port, not a service port — and deliberately the repo's
// first real network listener, the stepping stone toward the multi-process
// transport on the roadmap.
#ifndef ORION_SRC_OBS_METRICS_ENDPOINT_H_
#define ORION_SRC_OBS_METRICS_ENDPOINT_H_

#include <atomic>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/obs/monitor.h"

namespace orion {
namespace obs {

// Renders `registry` plus the monitor's live view (latest sample as
// "orion_live_*" gauges; nullptr monitor: registry only) as Prometheus text
// exposition format 0.0.4: dotted names sanitized to an "orion_" prefix,
// one # HELP/# TYPE pair per family (duplicates after sanitization are
// dropped), wait histograms as cumulative _bucket{le=...}/_sum/_count.
std::string RenderPrometheus(const MetricsRegistry& registry, const Monitor* monitor);

class MetricsEndpoint {
 public:
  explicit MetricsEndpoint(Monitor* monitor);
  ~MetricsEndpoint();

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  // Returns the bound port.
  StatusOr<int> Start(int port);
  void Stop();

  int port() const { return port_; }

  // What GET /metrics would return right now (self-scrape for tests and the
  // quickstart without going through the socket).
  std::string RenderMetricsText() const;

 private:
  void Serve();
  void HandleConnection(int fd);

  Monitor* monitor_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// Minimal loopback HTTP/1.1 GET (tests and the quickstart self-scrape).
// Returns the response body; non-200 statuses come back as errors.
StatusOr<std::string> HttpGet(int port, const std::string& path);

}  // namespace obs
}  // namespace orion

#endif  // ORION_SRC_OBS_METRICS_ENDPOINT_H_
