// Background monitor: a sampler thread that snapshots live gauges the
// registry cannot see — fabric queue depths, prefetch-ring fill, ParamServer
// in-flight gathers, pinned-snapshot counts, buffer-pool occupancy, per-rank
// pass/step watermarks — into a bounded ring of timestamped samples.
//
// Probes are plain std::function<double()> registered before Start(); each
// must be cheap and side-effect free (read an atomic, or take a short
// uncontended mutex). The sampler never touches a hot path and never feeds
// back into scheduling decisions, so enabling the monitor cannot perturb a
// run: monitor-on and monitor-off executions are bit-for-bit identical.
//
// The monitor also carries the registry snapshot the metrics endpoint
// renders from: the driver publishes an immutable ExportMetrics() copy at
// pass boundaries (a shared_ptr swap), so a scrape never races live driver
// state. Runtime-toggled like the span tracer: Start()/Stop() any time.
#ifndef ORION_SRC_OBS_MONITOR_H_
#define ORION_SRC_OBS_MONITOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {
namespace obs {

class Monitor {
 public:
  struct Options {
    double period_seconds = 0.1;  // sampler cadence
    size_t ring_capacity = 600;   // samples retained (1 min at the default)
  };

  Monitor();
  explicit Monitor(Options options);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // Registers one gauge probe. Must be called before Start(); the callable
  // must stay valid until the Monitor dies and must be safe to invoke from
  // the sampler thread at any time.
  void RegisterProbe(const std::string& name, std::function<double()> probe);

  Status Start();
  void Stop();
  bool running() const;

  struct Sample {
    i64 t_ns = 0;                // trace::NowNs epoch
    std::vector<double> values;  // parallel to ProbeNames()
  };

  std::vector<std::string> ProbeNames() const;
  // Latest sample (values empty when none taken yet).
  Sample Latest() const;
  std::vector<Sample> SamplesSnapshot() const;
  u64 samples_taken() const;

  // Takes one sample synchronously on the calling thread (tests, and the
  // final sample at Stop so short runs always have at least one).
  void SampleNow();

  // ---- Registry snapshot swap (endpoint render source) ----

  void PublishRegistry(std::shared_ptr<const MetricsRegistry> registry);
  std::shared_ptr<const MetricsRegistry> PublishedRegistry() const;

  // Merges the live view into `registry`: "live.<probe>" gauges from the
  // latest sample, one "live.<probe>" series point per retained sample, and
  // the "live.monitor.samples" counter.
  void MergeInto(MetricsRegistry* registry) const;

 private:
  void Loop();
  void TakeSampleLocked();  // requires mu_

  Options options_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> probes_;
  std::deque<Sample> ring_;
  u64 samples_taken_ = 0;
  bool running_ = false;
  bool stop_ = false;
  std::thread thread_;

  mutable std::mutex registry_mu_;
  std::shared_ptr<const MetricsRegistry> published_;
};

}  // namespace obs
}  // namespace orion

#endif  // ORION_SRC_OBS_MONITOR_H_
