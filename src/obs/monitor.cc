#include "src/obs/monitor.h"

#include <chrono>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/trace.h"

namespace orion {
namespace obs {

Monitor::Monitor() : Monitor(Options()) {}

Monitor::Monitor(Options options) : options_(options) {
  if (options_.period_seconds <= 0.0) options_.period_seconds = 0.1;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

Monitor::~Monitor() { Stop(); }

void Monitor::RegisterProbe(const std::string& name, std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  ORION_CHECK(!running_) << "RegisterProbe after Start: " << name;
  names_.push_back(name);
  probes_.push_back(std::move(probe));
}

Status Monitor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("monitor already running");
  }
  stop_ = false;
  running_ = true;
  // Mirror the probe names into the flight recorder once, so a fatal dump
  // can label its last-sample vector without heap access.
  fr::SetSampleNames(names_);
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void Monitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool Monitor::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Monitor::Loop() {
  trace::SetThreadLabel("mon");
  ORION_LOG(kDebug) << "monitor sampler up, period=" << options_.period_seconds << "s";
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    TakeSampleLocked();
    stop_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.period_seconds),
        [this] { return stop_; });
  }
  TakeSampleLocked();  // final sample: short runs still observe one
}

void Monitor::SampleNow() {
  std::lock_guard<std::mutex> lock(mu_);
  TakeSampleLocked();
}

void Monitor::TakeSampleLocked() {
  Sample s;
  s.t_ns = trace::NowNs();
  s.values.reserve(probes_.size());
  for (const auto& probe : probes_) {
    s.values.push_back(probe());
  }
  if (!s.values.empty()) {
    fr::SetSampleValues(s.values.data(), static_cast<int>(s.values.size()));
  }
  ring_.push_back(std::move(s));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  ++samples_taken_;
}

std::vector<std::string> Monitor::ProbeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

Monitor::Sample Monitor::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? Sample{} : ring_.back();
}

std::vector<Monitor::Sample> Monitor::SamplesSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Sample>(ring_.begin(), ring_.end());
}

u64 Monitor::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_taken_;
}

void Monitor::PublishRegistry(std::shared_ptr<const MetricsRegistry> registry) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  published_ = std::move(registry);
}

std::shared_ptr<const MetricsRegistry> Monitor::PublishedRegistry() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return published_;
}

void Monitor::MergeInto(MetricsRegistry* registry) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry->SetCounter("live.monitor.samples", samples_taken_);
  if (ring_.empty()) return;
  const Sample& last = ring_.back();
  for (size_t i = 0; i < names_.size() && i < last.values.size(); ++i) {
    registry->SetGauge("live." + names_[i], last.values[i]);
  }
  for (const Sample& s : ring_) {
    for (size_t i = 0; i < names_.size() && i < s.values.size(); ++i) {
      registry->AppendSeries("live." + names_[i], s.values[i]);
    }
  }
}

}  // namespace obs
}  // namespace orion
