// Straggler / anomaly detection over per-rank timing observations.
//
// The master already observes, per wavefront step, when each rank's barrier
// arrival lands, and per pass, each rank's compute seconds (PassDone). The
// detector consumes those as "rounds": one (rank, seconds) vector per step
// or pass. For each round it computes the cross-rank median and MAD, and a
// rank whose positive deviation exceeds max(k * MAD, floor_seconds) for
// m consecutive rounds is flagged a straggler. The MAD term adapts to the
// workload's natural skew; the absolute floor keeps microsecond-scale noise
// from ever flagging; the consecutive-round confirmation filters one-off
// spikes (a dropped-and-retransmitted barrier message under chaos testing
// delays one round, not m in a row on the same rank). Flags are sticky the
// same way: a confirmed straggler unflags only after m consecutive in-band
// rounds, so one healthy observation (e.g. a pass-level compute round
// between skewed step-level barrier rounds) cannot flap the verdict.
//
// Detection only: the flags feed "anomaly.straggler.<rank>" gauges, a WARN
// log line, and a verdict line in CriticalPathReport(). No scheduling or
// fault-handling decision consults them, so determinism is untouched.
//
// Not thread-safe: fed and read from the driver thread only.
#ifndef ORION_SRC_OBS_ANOMALY_H_
#define ORION_SRC_OBS_ANOMALY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace orion {
namespace obs {

struct StragglerOptions {
  double k_mad = 4.0;           // deviation threshold multiplier
  double floor_seconds = 2e-3;  // absolute deviation floor
  int confirm_rounds = 3;       // consecutive rounds over threshold to flag
  double ewma_alpha = 0.2;      // per-rank lag baseline smoothing
};

class StragglerDetector {
 public:
  explicit StragglerDetector(StragglerOptions options = {});

  void Reset();

  // One observation round: (physical rank, seconds) for every rank that
  // participated. Rounds with fewer than 3 ranks are ignored (median/MAD
  // are meaningless).
  void ObserveRound(const std::vector<std::pair<int, double>>& rank_seconds);

  bool Flagged(int rank) const;
  // Smoothed positive deviation from the round median, seconds (the EWMA
  // baseline exported as the straggler gauge's companion score).
  double LagEwma(int rank) const;
  std::vector<int> FlaggedRanks() const;
  u64 rounds() const { return rounds_; }
  u64 total_flags() const { return total_flags_; }

  // Ranks that crossed into the flagged state since the last call (for
  // WARN-once logging). Clears the pending set.
  std::vector<int> TakeNewlyFlagged();

  // One-line verdict for CriticalPathReport, e.g.
  // "stragglers: none (47 rounds)" or
  // "stragglers: rank 2 lag_ewma=8.1ms streak=5 (47 rounds)".
  std::string Verdict() const;

 private:
  struct RankState {
    int streak = 0;          // consecutive over-threshold rounds
    int healthy_streak = 0;  // consecutive in-band rounds while flagged
    bool flagged = false;
    double lag_ewma = 0.0;
  };

  StragglerOptions options_;
  std::map<int, RankState> ranks_;
  std::vector<int> newly_flagged_;
  u64 rounds_ = 0;
  u64 total_flags_ = 0;
};

}  // namespace obs
}  // namespace orion

#endif  // ORION_SRC_OBS_ANOMALY_H_
