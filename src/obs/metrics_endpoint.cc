#include "src/obs/metrics_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <set>

#include "src/common/logging.h"
#include "src/common/trace.h"

namespace orion {
namespace obs {

namespace {

// "pass.wall_seconds" -> "orion_pass_wall_seconds" (Prometheus metric names
// match [a-zA-Z_:][a-zA-Z0-9_:]*; the prefix guarantees a legal first char).
std::string Sanitize(const std::string& name) {
  std::string out = "orion_";
  out.reserve(name.size() + 6);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// Upper bounds of WaitHistogram's log buckets, as Prometheus `le` labels.
const char* const kBucketLe[WaitHistogram::kNumBuckets] = {
    "0.0001", "0.001", "0.01", "0.1", "1", "+Inf"};

struct FamilyWriter {
  std::string out;
  std::set<std::string> seen;

  // Emits HELP/TYPE for `family` once; false when the family name already
  // appeared (sanitization collision or live/registry overlap) — the caller
  // must then skip its samples too, or the exposition would be invalid.
  bool Begin(const std::string& family, const char* type, const std::string& source) {
    if (!seen.insert(family).second) return false;
    out += "# HELP " + family + " Orion metric " + source + "\n";
    out += "# TYPE " + family + " " + type + "\n";
    return true;
  }
};

}  // namespace

std::string RenderPrometheus(const MetricsRegistry& registry, const Monitor* monitor) {
  FamilyWriter w;
  w.out.reserve(16 * 1024);

  // Live gauges first: when the registry snapshot also carries merged
  // "live.*" gauges from a previous pass boundary, the fresher copy wins and
  // the stale family is dropped by the dedupe.
  if (monitor != nullptr) {
    const std::vector<std::string> names = monitor->ProbeNames();
    const Monitor::Sample last = monitor->Latest();
    for (size_t i = 0; i < names.size() && i < last.values.size(); ++i) {
      const std::string full = "live." + names[i];
      const std::string family = Sanitize(full);
      if (!w.Begin(family, "gauge", full)) continue;
      w.out += family + " " + Num(last.values[i]) + "\n";
    }
    const std::string samples_family = "orion_live_monitor_samples";
    if (w.Begin(samples_family, "counter", "live.monitor.samples")) {
      w.out += samples_family + " " +
               std::to_string(monitor->samples_taken()) + "\n";
    }
  }

  for (const auto& [name, v] : registry.CountersSnapshot()) {
    const std::string family = Sanitize(name);
    if (!w.Begin(family, "counter", name)) continue;
    w.out += family + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : registry.GaugesSnapshot()) {
    const std::string family = Sanitize(name);
    if (!w.Begin(family, "gauge", name)) continue;
    w.out += family + " " + Num(v) + "\n";
  }
  for (const auto& [name, h] : registry.HistogramsSnapshot()) {
    const std::string family = Sanitize(name);
    if (!w.Begin(family, "histogram", name)) continue;
    u64 cumulative = 0;
    for (int b = 0; b < WaitHistogram::kNumBuckets; ++b) {
      cumulative += h.counts[b];
      w.out += family + "_bucket{le=\"" + kBucketLe[b] + "\"} " +
               std::to_string(cumulative) + "\n";
    }
    w.out += family + "_sum " + Num(h.total_seconds) + "\n";
    w.out += family + "_count " + std::to_string(h.total_count()) + "\n";
  }
  return w.out;
}

MetricsEndpoint::MetricsEndpoint(Monitor* monitor) : monitor_(monitor) {}

MetricsEndpoint::~MetricsEndpoint() { Stop(); }

StatusOr<int> MetricsEndpoint::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("metrics endpoint already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("metrics endpoint: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<u16>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Status::IoError("metrics endpoint: bind(127.0.0.1:" +
                           std::to_string(port) + ") failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("metrics endpoint: listen() failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::IoError("metrics endpoint: getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  ORION_LOG(kInfo) << "metrics endpoint listening on 127.0.0.1:" << port_;
  return port_;
}

void MetricsEndpoint::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::string MetricsEndpoint::RenderMetricsText() const {
  std::shared_ptr<const MetricsRegistry> reg = monitor_->PublishedRegistry();
  static const MetricsRegistry kEmpty;
  return RenderPrometheus(reg != nullptr ? *reg : kEmpty, monitor_);
}

void MetricsEndpoint::Serve() {
  trace::SetThreadLabel("mon");
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsEndpoint::HandleConnection(int fd) {
  // Read the request head (we only need the request line; tiny requests
  // arrive in one segment from loopback clients, so a bounded read loop
  // until the blank line or 4 KiB suffices).
  char buf[4096];
  size_t have = 0;
  while (have < sizeof buf - 1) {
    const ssize_t n = ::recv(fd, buf + have, sizeof buf - 1 - have, 0);
    if (n <= 0) break;
    have += static_cast<size_t>(n);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr) break;
  }
  buf[have] = '\0';

  std::string body;
  const char* status_line = "HTTP/1.1 200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (std::strncmp(buf, "GET /metrics", 12) == 0) {
    body = RenderMetricsText();
  } else if (std::strncmp(buf, "GET /healthz", 12) == 0) {
    body = "ok\n";
    content_type = "text/plain; charset=utf-8";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
    content_type = "text/plain; charset=utf-8";
  }

  char head[256];
  std::snprintf(head, sizeof head,
                "%s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status_line, content_type, body.size());
  std::string response = std::string(head) + body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent, response.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

StatusOr<std::string> HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("HttpGet: socket() failed");
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<u16>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Status::IoError("HttpGet: connect(127.0.0.1:" + std::to_string(port) +
                           ") failed");
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("HttpGet: send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("HttpGet: malformed response");
  }
  if (response.find("200") == std::string::npos ||
      response.find("200") > response.find("\r\n")) {
    return Status::IoError("HttpGet: non-200 response: " +
                           response.substr(0, response.find("\r\n")));
  }
  return response.substr(head_end + 4);
}

}  // namespace obs
}  // namespace orion
