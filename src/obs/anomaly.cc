#include "src/obs/anomaly.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace orion {
namespace obs {

namespace {

double MedianOf(std::vector<double> v) {
  const size_t n = v.size();
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  const double hi = v[n / 2];
  if (n % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + n / 2 - 1, v.end());
  return 0.5 * (v[n / 2 - 1] + hi);
}

}  // namespace

StragglerDetector::StragglerDetector(StragglerOptions options) : options_(options) {}

void StragglerDetector::Reset() {
  ranks_.clear();
  newly_flagged_.clear();
  rounds_ = 0;
  total_flags_ = 0;
}

void StragglerDetector::ObserveRound(
    const std::vector<std::pair<int, double>>& rank_seconds) {
  if (rank_seconds.size() < 3) return;
  ++rounds_;
  std::vector<double> values;
  values.reserve(rank_seconds.size());
  for (const auto& [rank, s] : rank_seconds) values.push_back(s);
  const double median = MedianOf(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - median));
  const double mad = MedianOf(deviations);
  const double threshold =
      std::max(options_.k_mad * mad, options_.floor_seconds);

  for (const auto& [rank, s] : rank_seconds) {
    RankState& st = ranks_[rank];
    const double lag = s - median;  // positive = behind the pack
    st.lag_ewma = options_.ewma_alpha * std::max(lag, 0.0) +
                  (1.0 - options_.ewma_alpha) * st.lag_ewma;
    if (lag > threshold) {
      st.healthy_streak = 0;
      ++st.streak;
      if (st.streak >= options_.confirm_rounds && !st.flagged) {
        st.flagged = true;
        ++total_flags_;
        newly_flagged_.push_back(rank);
      }
    } else {
      st.streak = 0;
      if (st.flagged && ++st.healthy_streak >= options_.confirm_rounds) {
        st.flagged = false;
        st.healthy_streak = 0;
      }
    }
  }
}

bool StragglerDetector::Flagged(int rank) const {
  auto it = ranks_.find(rank);
  return it != ranks_.end() && it->second.flagged;
}

double StragglerDetector::LagEwma(int rank) const {
  auto it = ranks_.find(rank);
  return it == ranks_.end() ? 0.0 : it->second.lag_ewma;
}

std::vector<int> StragglerDetector::FlaggedRanks() const {
  std::vector<int> out;
  for (const auto& [rank, st] : ranks_) {
    if (st.flagged) out.push_back(rank);
  }
  return out;
}

std::vector<int> StragglerDetector::TakeNewlyFlagged() {
  std::vector<int> out;
  out.swap(newly_flagged_);
  return out;
}

std::string StragglerDetector::Verdict() const {
  char buf[96];
  std::string out = "stragglers:";
  bool any = false;
  for (const auto& [rank, st] : ranks_) {
    if (!st.flagged) continue;
    any = true;
    std::snprintf(buf, sizeof buf, " rank %d lag_ewma=%.1fms streak=%d", rank,
                  st.lag_ewma * 1e3, st.streak);
    out += buf;
  }
  if (!any) out += " none";
  std::snprintf(buf, sizeof buf, " (%llu rounds)",
                static_cast<unsigned long long>(rounds_));
  out += buf;
  return out;
}

}  // namespace obs
}  // namespace orion
