#include "src/ir/expr.h"

#include <optional>
#include <sstream>

namespace orion {

namespace {

// Linear form over loop indices: coeff[d] * index_d + constant, or
// "not linear" / "contains runtime value".
struct LinearForm {
  bool has_runtime = false;
  bool nonlinear = false;
  i64 constant = 0;
  // Sparse coefficient list (loop_dim, coeff).
  std::vector<std::pair<int, i64>> coeffs;

  void AddCoeff(int dim, i64 c) {
    for (auto& [d, existing] : coeffs) {
      if (d == dim) {
        existing += c;
        return;
      }
    }
    coeffs.push_back({dim, c});
  }

  void PruneZeros() {
    std::erase_if(coeffs, [](const auto& p) { return p.second == 0; });
  }
};

LinearForm Analyze(const Expr& e) {
  LinearForm f;
  switch (e.op()) {
    case ExprOp::kConst:
      f.constant = e.value();
      return f;
    case ExprOp::kLoopIndex:
      f.AddCoeff(e.loop_dim(), 1);
      return f;
    case ExprOp::kRuntime:
      f.has_runtime = true;
      return f;
    case ExprOp::kAdd:
    case ExprOp::kSub: {
      LinearForm a = Analyze(*e.children()[0]);
      LinearForm b = Analyze(*e.children()[1]);
      f.has_runtime = a.has_runtime || b.has_runtime;
      f.nonlinear = a.nonlinear || b.nonlinear;
      const i64 sign = e.op() == ExprOp::kAdd ? 1 : -1;
      f.constant = a.constant + sign * b.constant;
      f.coeffs = a.coeffs;
      for (const auto& [d, c] : b.coeffs) {
        f.AddCoeff(d, sign * c);
      }
      f.PruneZeros();
      return f;
    }
    case ExprOp::kMul: {
      LinearForm a = Analyze(*e.children()[0]);
      LinearForm b = Analyze(*e.children()[1]);
      f.has_runtime = a.has_runtime || b.has_runtime;
      f.nonlinear = a.nonlinear || b.nonlinear;
      if (a.coeffs.empty() && b.coeffs.empty()) {
        f.constant = a.constant * b.constant;
        return f;
      }
      // const * linear stays linear; linear * linear is nonlinear.
      if (!a.coeffs.empty() && !b.coeffs.empty()) {
        f.nonlinear = true;
        return f;
      }
      const LinearForm& lin = a.coeffs.empty() ? b : a;
      const i64 k = a.coeffs.empty() ? a.constant : b.constant;
      f.constant = lin.constant * k;
      for (const auto& [d, c] : lin.coeffs) {
        f.AddCoeff(d, c * k);
      }
      f.PruneZeros();
      return f;
    }
  }
  f.nonlinear = true;
  return f;
}

}  // namespace

Subscript ClassifySubscript(const ExprPtr& e) {
  LinearForm f = Analyze(*e);
  if (f.has_runtime) {
    return Subscript::MakeRuntime();
  }
  if (f.nonlinear) {
    return Subscript::MakeRange();
  }
  if (f.coeffs.empty()) {
    return Subscript::MakeConstant(f.constant);
  }
  if (f.coeffs.size() == 1 && f.coeffs[0].second == 1) {
    return Subscript::MakeLoopIndex(f.coeffs[0].first, f.constant);
  }
  // Multiple loop indices or scaled index: conservative.
  return Subscript::MakeRange();
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (op_) {
    case ExprOp::kConst:
      os << value_;
      break;
    case ExprOp::kLoopIndex:
      os << "i" << loop_dim_;
      break;
    case ExprOp::kRuntime:
      os << "runtime(" << tag_ << ")";
      break;
    case ExprOp::kAdd:
      os << "(" << children_[0]->ToString() << " + " << children_[1]->ToString() << ")";
      break;
    case ExprOp::kSub:
      os << "(" << children_[0]->ToString() << " - " << children_[1]->ToString() << ")";
      break;
    case ExprOp::kMul:
      os << "(" << children_[0]->ToString() << " * " << children_[1]->ToString() << ")";
      break;
  }
  return os.str();
}

std::string Subscript::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case SubscriptKind::kConstant:
      os << constant;
      break;
    case SubscriptKind::kLoopIndex:
      os << "i" << loop_dim;
      if (constant > 0) {
        os << "+" << constant;
      } else if (constant < 0) {
        os << constant;
      }
      break;
    case SubscriptKind::kRange:
      os << ":";
      break;
    case SubscriptKind::kRuntime:
      os << "?";
      break;
  }
  return os.str();
}

}  // namespace orion
