#include "src/ir/analyze_body.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

namespace orion {

namespace {

// ---------------------------------------------------------------------------
// Subscript classification over scalar expressions

// Linear form coeff * index_dim + constant, or taint flags.
struct SLinear {
  bool has_runtime = false;   // variables / iteration values
  bool has_array_read = false;
  bool nonlinear = false;
  f64 constant = 0.0;
  std::vector<std::pair<int, f64>> coeffs;  // (loop_dim, coeff)

  void AddCoeff(int dim, f64 c) {
    for (auto& [d, existing] : coeffs) {
      if (d == dim) {
        existing += c;
        return;
      }
    }
    coeffs.push_back({dim, c});
  }
  void PruneZeros() {
    std::erase_if(coeffs, [](const auto& p) { return p.second == 0.0; });
  }
};

SLinear AnalyzeLinear(const SExpr& e) {
  SLinear f;
  switch (e.op()) {
    case SOp::kConst:
      f.constant = e.constant();
      return f;
    case SOp::kIndexVar:
      f.AddCoeff(e.loop_dim(), 1.0);
      return f;
    case SOp::kVar:
    case SOp::kIterValueAt:
      f.has_runtime = true;
      // IterValueAt's offset may itself read arrays; propagate.
      for (const auto& c : e.children()) {
        const SLinear sub = AnalyzeLinear(*c);
        f.has_array_read |= sub.has_array_read;
      }
      return f;
    case SOp::kArrayElem:
      f.has_runtime = true;
      f.has_array_read = true;
      return f;
    case SOp::kFloor: {
      SLinear a = AnalyzeLinear(*e.children()[0]);
      // floor() of a pure-integer linear form is the form itself; treat any
      // other shape conservatively.
      return a;
    }
    case SOp::kAdd:
    case SOp::kSub: {
      SLinear a = AnalyzeLinear(*e.children()[0]);
      SLinear b = AnalyzeLinear(*e.children()[1]);
      f.has_runtime = a.has_runtime || b.has_runtime;
      f.has_array_read = a.has_array_read || b.has_array_read;
      f.nonlinear = a.nonlinear || b.nonlinear;
      const f64 sign = e.op() == SOp::kAdd ? 1.0 : -1.0;
      f.constant = a.constant + sign * b.constant;
      f.coeffs = a.coeffs;
      for (const auto& [d, c] : b.coeffs) {
        f.AddCoeff(d, sign * c);
      }
      f.PruneZeros();
      return f;
    }
    case SOp::kMul:
    case SOp::kDiv: {
      SLinear a = AnalyzeLinear(*e.children()[0]);
      SLinear b = AnalyzeLinear(*e.children()[1]);
      f.has_runtime = a.has_runtime || b.has_runtime;
      f.has_array_read = a.has_array_read || b.has_array_read;
      if (a.coeffs.empty() && b.coeffs.empty()) {
        f.constant = e.op() == SOp::kMul ? a.constant * b.constant
                                         : a.constant / b.constant;
        f.nonlinear = a.nonlinear || b.nonlinear;
        return f;
      }
      if (e.op() == SOp::kMul && (a.coeffs.empty() || b.coeffs.empty())) {
        const SLinear& lin = a.coeffs.empty() ? b : a;
        const f64 k = a.coeffs.empty() ? a.constant : b.constant;
        f.constant = lin.constant * k;
        for (const auto& [d, c] : lin.coeffs) {
          f.AddCoeff(d, c * k);
        }
        f.PruneZeros();
        f.nonlinear = a.nonlinear || b.nonlinear;
        return f;
      }
      f.nonlinear = true;
      return f;
    }
  }
  f.nonlinear = true;
  return f;
}

// Collects every kArrayElem read in an expression tree (including nested
// reads inside subscripts).
void CollectReads(const SExprPtr& e, std::vector<const SExpr*>* out) {
  if (e == nullptr) {
    return;
  }
  if (e->op() == SOp::kArrayElem) {
    out->push_back(e.get());
  }
  for (const auto& c : e->children()) {
    CollectReads(c, out);
  }
}

// Collects scalar variable ids referenced by an expression.
void CollectVars(const SExprPtr& e, std::set<int>* out) {
  if (e == nullptr) {
    return;
  }
  if (e->op() == SOp::kVar) {
    out->insert(e->var());
  }
  for (const auto& c : e->children()) {
    CollectVars(c, out);
  }
}

bool ContainsArrayRead(const SExprPtr& e) {
  if (e == nullptr) {
    return false;
  }
  if (e->op() == SOp::kArrayElem) {
    return true;
  }
  for (const auto& c : e->children()) {
    if (ContainsArrayRead(c)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Subscript ClassifySubscriptExpr(const SExprPtr& e) {
  const SLinear f = AnalyzeLinear(*e);
  if (f.has_runtime) {
    return Subscript::MakeRuntime();
  }
  if (f.nonlinear) {
    return Subscript::MakeRange();
  }
  if (f.coeffs.empty()) {
    return Subscript::MakeConstant(static_cast<i64>(f.constant));
  }
  if (f.coeffs.size() == 1 && f.coeffs[0].second == 1.0) {
    return Subscript::MakeLoopIndex(f.coeffs[0].first, static_cast<i64>(f.constant));
  }
  return Subscript::MakeRange();
}

// ---------------------------------------------------------------------------
// Access extraction

namespace {

void AddAccessIfNew(std::vector<ArrayAccess>* out, ArrayAccess access) {
  for (const auto& existing : *out) {
    if (existing.array == access.array && existing.is_write == access.is_write &&
        existing.buffered == access.buffered && existing.subscripts == access.subscripts) {
      return;
    }
  }
  out->push_back(std::move(access));
}

ArrayAccess MakeAccess(DistArrayId array, std::string name,
                       const std::vector<SExprPtr>& subs, bool is_write, bool buffered) {
  ArrayAccess a;
  a.array = array;
  a.array_name = std::move(name);
  a.subscripts.reserve(subs.size());
  for (const auto& s : subs) {
    a.subscripts.push_back(ClassifySubscriptExpr(s));
  }
  a.is_write = is_write;
  a.buffered = buffered;
  return a;
}

void ExtractFromExpr(const SExprPtr& e, std::vector<ArrayAccess>* out) {
  std::vector<const SExpr*> reads;
  CollectReads(e, &reads);
  for (const SExpr* r : reads) {
    std::vector<SExprPtr> subs(r->children().begin(), r->children().end() - 1);
    AddAccessIfNew(out, MakeAccess(r->array(), "array" + std::to_string(r->array()), subs,
                                   /*is_write=*/false, /*buffered=*/false));
  }
}

void ExtractFromStmts(const std::vector<StmtPtr>& stmts, std::vector<ArrayAccess>* out) {
  for (const auto& s : stmts) {
    switch (s->kind) {
      case StmtKind::kAssign:
        ExtractFromExpr(s->value, out);
        break;
      case StmtKind::kStore: {
        ExtractFromExpr(s->value, out);
        ExtractFromExpr(s->elem_offset, out);
        for (const auto& sub : s->subscripts) {
          ExtractFromExpr(sub, out);
        }
        AddAccessIfNew(out, MakeAccess(s->array, s->array_name, s->subscripts,
                                       /*is_write=*/true, /*buffered=*/false));
        // A += store also reads the cell.
        if (s->accumulate) {
          AddAccessIfNew(out, MakeAccess(s->array, s->array_name, s->subscripts,
                                         /*is_write=*/false, /*buffered=*/false));
        }
        break;
      }
      case StmtKind::kBufferUpdate: {
        for (const auto& u : s->update) {
          ExtractFromExpr(u, out);
        }
        for (const auto& sub : s->subscripts) {
          ExtractFromExpr(sub, out);
        }
        AddAccessIfNew(out, MakeAccess(s->array, s->array_name, s->subscripts,
                                       /*is_write=*/true, /*buffered=*/true));
        break;
      }
      case StmtKind::kFor:
      case StmtKind::kIf:
        ExtractFromExpr(s->count_or_cond, out);
        ExtractFromStmts(s->body, out);
        break;
    }
  }
}

}  // namespace

std::vector<ArrayAccess> ExtractAccesses(const LoopBody& body) {
  std::vector<ArrayAccess> out;
  ExtractFromStmts(body.stmts, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Prefetch synthesis (backward slice)

namespace {

using Node = PrefetchProgram::Node;

// Taint: variables whose values (transitively) derive from DistArray reads.
// Subscripts built from tainted variables cannot be prefetched.
void ComputeTaint(const std::vector<StmtPtr>& stmts, std::vector<bool>* tainted) {
  for (const auto& s : stmts) {
    switch (s->kind) {
      case StmtKind::kAssign: {
        bool t = ContainsArrayRead(s->value);
        std::set<int> vars;
        CollectVars(s->value, &vars);
        for (int v : vars) {
          t = t || (*tainted)[static_cast<size_t>(v)];
        }
        if (t) {
          (*tainted)[static_cast<size_t>(s->var)] = true;
        }
        break;
      }
      case StmtKind::kFor:
      case StmtKind::kIf:
        ComputeTaint(s->body, tainted);
        break;
      default:
        break;
    }
  }
}

bool SubscriptsPrefetchable(const std::vector<SExprPtr>& subs,
                            const std::vector<bool>& tainted) {
  for (const auto& sub : subs) {
    if (ContainsArrayRead(sub)) {
      return false;
    }
    std::set<int> vars;
    CollectVars(sub, &vars);
    for (int v : vars) {
      if (tainted[static_cast<size_t>(v)]) {
        return false;
      }
    }
  }
  return true;
}

struct SliceBuilder {
  const std::vector<bool>& tainted;
  std::vector<DistArrayId>* target_arrays;
  std::vector<DistArrayId>* unprefetchable;

  // Builds the mirror tree with Record nodes for each prefetchable read.
  std::vector<Node> Mirror(const std::vector<StmtPtr>& stmts) {
    std::vector<Node> out;
    for (const auto& s : stmts) {
      // Record nodes for reads appearing in this statement's expressions.
      std::vector<const SExpr*> reads;
      switch (s->kind) {
        case StmtKind::kAssign:
          CollectReads(s->value, &reads);
          break;
        case StmtKind::kStore:
          CollectReads(s->value, &reads);
          CollectReads(s->elem_offset, &reads);
          for (const auto& sub : s->subscripts) {
            CollectReads(sub, &reads);
          }
          if (s->accumulate) {
            // The += read of the stored cell itself.
            // (Represented by the store's own subscripts.)
          }
          break;
        case StmtKind::kBufferUpdate:
          for (const auto& u : s->update) {
            CollectReads(u, &reads);
          }
          for (const auto& sub : s->subscripts) {
            CollectReads(sub, &reads);
          }
          break;
        case StmtKind::kFor:
        case StmtKind::kIf:
          CollectReads(s->count_or_cond, &reads);
          break;
      }
      for (const SExpr* r : reads) {
        std::vector<SExprPtr> subs(r->children().begin(), r->children().end() - 1);
        if (SubscriptsPrefetchable(subs, tainted)) {
          Node rec;
          rec.kind = Node::Kind::kRecord;
          rec.array = r->array();
          rec.subscripts = std::move(subs);
          target_arrays->push_back(r->array());
          out.push_back(std::move(rec));
        } else {
          unprefetchable->push_back(r->array());
        }
      }
      // The statement itself.
      switch (s->kind) {
        case StmtKind::kAssign: {
          Node n;
          n.kind = Node::Kind::kAssign;
          n.var = s->var;
          n.expr = s->value;
          out.push_back(std::move(n));
          break;
        }
        case StmtKind::kFor: {
          Node n;
          n.kind = Node::Kind::kFor;
          n.var = s->var;
          n.expr = s->count_or_cond;
          n.body = Mirror(s->body);
          out.push_back(std::move(n));
          break;
        }
        case StmtKind::kIf: {
          Node n;
          n.kind = Node::Kind::kIf;
          n.expr = s->count_or_cond;
          n.body = Mirror(s->body);
          out.push_back(std::move(n));
          break;
        }
        case StmtKind::kStore:
        case StmtKind::kBufferUpdate:
          break;  // writes never join the prefetch slice
      }
    }
    return out;
  }
};

// Backward pass: keep Records; keep Assigns whose variable is needed; keep
// For/If blocks containing kept children (their condition vars become
// needed). Returns the sliced block and whether anything was kept.
bool SliceBlock(std::vector<Node>* block, std::set<int>* needed) {
  std::vector<Node> kept;
  bool any = false;
  for (auto it = block->rbegin(); it != block->rend(); ++it) {
    Node& n = *it;
    switch (n.kind) {
      case Node::Kind::kRecord: {
        for (const auto& sub : n.subscripts) {
          CollectVars(sub, needed);
        }
        kept.push_back(std::move(n));
        any = true;
        break;
      }
      case Node::Kind::kAssign: {
        // An assignment inside an expression that *drops* array values never
        // reaches a subscript (taint analysis guaranteed that), so keeping
        // it is only necessary when its variable is needed.
        if (needed->count(n.var) > 0) {
          CollectVars(n.expr, needed);
          kept.push_back(std::move(n));
          any = true;
        }
        break;
      }
      case Node::Kind::kFor: {
        if (SliceBlock(&n.body, needed)) {
          CollectVars(n.expr, needed);
          // Loop counter is defined by the For itself; it stops being an
          // external need.
          needed->erase(n.var);
          kept.push_back(std::move(n));
          any = true;
        }
        break;
      }
      case Node::Kind::kIf: {
        if (SliceBlock(&n.body, needed)) {
          CollectVars(n.expr, needed);
          kept.push_back(std::move(n));
          any = true;
        }
        break;
      }
    }
  }
  std::reverse(kept.begin(), kept.end());
  *block = std::move(kept);
  return any;
}

}  // namespace

PrefetchProgram SynthesizePrefetch(const LoopBody& body) {
  PrefetchProgram program;
  program.num_vars_ = body.num_vars;

  std::vector<bool> tainted(static_cast<size_t>(body.num_vars), false);
  ComputeTaint(body.stmts, &tainted);

  SliceBuilder builder{tainted, &program.target_arrays_, &program.unprefetchable_};
  program.nodes_ = builder.Mirror(body.stmts);
  std::set<int> needed;
  program.has_targets_ = SliceBlock(&program.nodes_, &needed);

  std::sort(program.target_arrays_.begin(), program.target_arrays_.end());
  program.target_arrays_.erase(
      std::unique(program.target_arrays_.begin(), program.target_arrays_.end()),
      program.target_arrays_.end());
  std::sort(program.unprefetchable_.begin(), program.unprefetchable_.end());
  program.unprefetchable_.erase(
      std::unique(program.unprefetchable_.begin(), program.unprefetchable_.end()),
      program.unprefetchable_.end());
  return program;
}

// ---------------------------------------------------------------------------
// Interpretation

namespace {

using Node = PrefetchProgram::Node;

struct Interp {
  IdxSpan idx;
  const f32* value;
  i32 value_dim;
  std::vector<f64> vars;

  f64 Eval(const SExprPtr& e) const {
    switch (e->op()) {
      case SOp::kConst:
        return e->constant();
      case SOp::kIndexVar:
        return static_cast<f64>(idx[static_cast<size_t>(e->loop_dim())]);
      case SOp::kVar:
        return vars[static_cast<size_t>(e->var())];
      case SOp::kIterValueAt: {
        const i64 offset = static_cast<i64>(Eval(e->children()[0]));
        ORION_CHECK(offset >= 0 && offset < value_dim)
            << "iteration-value offset" << offset << "out of range";
        return static_cast<f64>(value[offset]);
      }
      case SOp::kArrayElem:
        ORION_CHECK(false) << "sliced prefetch programs cannot read DistArrays";
        return 0.0;
      case SOp::kAdd:
        return Eval(e->children()[0]) + Eval(e->children()[1]);
      case SOp::kSub:
        return Eval(e->children()[0]) - Eval(e->children()[1]);
      case SOp::kMul:
        return Eval(e->children()[0]) * Eval(e->children()[1]);
      case SOp::kDiv:
        return Eval(e->children()[0]) / Eval(e->children()[1]);
      case SOp::kFloor:
        return std::floor(Eval(e->children()[0]));
    }
    return 0.0;
  }

  void Run(const std::vector<Node>& block,
           const std::map<DistArrayId, KeySpace>& key_spaces,
           std::map<DistArrayId, std::vector<i64>>* out) {
    for (const auto& n : block) {
      switch (n.kind) {
        case Node::Kind::kAssign:
          vars[static_cast<size_t>(n.var)] = Eval(n.expr);
          break;
        case Node::Kind::kRecord: {
          auto ks = key_spaces.find(n.array);
          ORION_CHECK(ks != key_spaces.end()) << "no key space for array" << n.array;
          IndexVec coords;
          coords.reserve(n.subscripts.size());
          for (const auto& sub : n.subscripts) {
            coords.push_back(static_cast<i64>(Eval(sub)));
          }
          (*out)[n.array].push_back(ks->second.Encode(coords));
          break;
        }
        case Node::Kind::kFor: {
          const i64 count = static_cast<i64>(Eval(n.expr));
          for (i64 i = 0; i < count; ++i) {
            vars[static_cast<size_t>(n.var)] = static_cast<f64>(i);
            Run(n.body, key_spaces, out);
          }
          break;
        }
        case Node::Kind::kIf:
          if (Eval(n.expr) != 0.0) {
            Run(n.body, key_spaces, out);
          }
          break;
      }
    }
  }
};

}  // namespace

void PrefetchProgram::Run(IdxSpan idx, const f32* value, i32 value_dim,
                          const std::map<DistArrayId, KeySpace>& key_spaces,
                          std::map<DistArrayId, std::vector<i64>>* out) const {
  Interp interp{idx, value, value_dim, std::vector<f64>(static_cast<size_t>(num_vars_), 0.0)};
  interp.Run(nodes_, key_spaces, out);
}

}  // namespace orion
