// The runtime interface a loop-body kernel programs against.
//
// A kernel is the compiled loop body: it receives the current iteration's
// index vector and value, and touches DistArrays only through this context.
// The same kernel serves three execution modes:
//   - normal execution on an Executor (reads/writes local partitions),
//   - server mode (reads come from prefetched caches, writes go to buffers),
//   - access-recording mode (the synthesized bulk-prefetch pass, paper
//     Sec. 4.4): reads of server-hosted arrays record their subscript and
//     return a zero span; writes are discarded.
#ifndef ORION_SRC_IR_LOOP_CONTEXT_H_
#define ORION_SRC_IR_LOOP_CONTEXT_H_

#include <functional>
#include <span>

#include "src/common/types.h"

namespace orion {

using IdxSpan = std::span<const i64>;

class LoopContext {
 public:
  virtual ~LoopContext() = default;

  // Reads a cell of `array`. Never returns nullptr: absent sparse cells and
  // recording-mode reads yield a zero-filled span of the array's value_dim.
  virtual const f32* Read(DistArrayId array, IdxSpan idx) = 0;

  // Returns a mutable span for a cell this worker owns (dependence-preserving
  // in-place write). Aborts if the cell is not locally owned — the planner
  // guarantees owned access for analyzable writes.
  virtual f32* Mutate(DistArrayId array, IdxSpan idx) = 0;

  // Routes an update through the DistArray Buffer registered for `array`
  // (dependence-exempt write; applied later with the buffer's apply UDF).
  virtual void BufferUpdate(DistArrayId array, IdxSpan idx, const f32* update) = 0;

  // Adds to the worker-local instance of accumulator `slot`.
  virtual void AccumulatorAdd(int slot, f64 delta) = 0;

  // True during the synthesized access-recording (prefetch) pass; kernels
  // never need to check this, but exotic bodies may skip pure compute.
  virtual bool recording() const { return false; }
};

// The compiled loop body. `idx` is the iteration index vector (the element's
// N-tuple in the iteration-space DistArray); `value` is that element's value
// span (e.g. the rating Z_ij).
using LoopKernel = std::function<void(LoopContext& ctx, IdxSpan idx, const f32* value)>;

}  // namespace orion

#endif  // ORION_SRC_IR_LOOP_CONTEXT_H_
