// Analyses over the statement-level loop body (src/ir/stmt.h):
//
//  1. ExtractAccesses — derives the LoopSpec access declarations from the
//     body: every array load/store/buffered-update becomes an ArrayAccess
//     with classified subscripts (loop_index ± const precise, anything
//     data-dependent conservative), replacing hand-written AddAccess calls.
//
//  2. SynthesizePrefetch — the paper's Sec. 4.4 access-pattern function:
//     computes the backward slice of the body that the array-read
//     subscripts depend on (assignments feeding subscript variables,
//     enclosing loop/conditional structure), drops reads whose subscripts
//     themselves depend on DistArray values (those are not prefetchable),
//     and packages the slice as an interpretable PrefetchProgram that emits
//     per-array key lists for one iteration. The construction mirrors dead
//     code elimination run in reverse, exactly as the paper describes.
//
// Programs are assumed structured with definitions textually preceding
// uses (which the builder API naturally produces).
#ifndef ORION_SRC_IR_ANALYZE_BODY_H_
#define ORION_SRC_IR_ANALYZE_BODY_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/dsm/key_space.h"
#include "src/ir/loop_context.h"
#include "src/ir/loop_spec.h"
#include "src/ir/stmt.h"

namespace orion {

// Derives the access declarations (reads, writes, buffered writes) from the
// body. Duplicate accesses with identical classified subscripts collapse.
std::vector<ArrayAccess> ExtractAccesses(const LoopBody& body);

// Classifies one scalar-expression subscript (exposed for tests).
Subscript ClassifySubscriptExpr(const SExprPtr& e);

// The synthesized prefetch function: a sliced, interpretable program.
class PrefetchProgram {
 public:
  struct Node {
    enum class Kind : u8 { kAssign, kFor, kIf, kRecord };
    Kind kind = Kind::kAssign;
    // kAssign / kFor: variable or counter.
    int var = -1;
    // kAssign: value; kFor: count; kIf: condition.
    SExprPtr expr;
    // kRecord: the target read.
    DistArrayId array = kInvalidDistArrayId;
    std::vector<SExprPtr> subscripts;
    // kFor / kIf children.
    std::vector<Node> body;
  };

  // True if at least one array read survived slicing.
  bool HasTargets() const { return has_targets_; }

  // Array ids with at least one prefetchable read.
  const std::vector<DistArrayId>& target_arrays() const { return target_arrays_; }

  // Array reads that could NOT be included because their subscripts depend
  // on other DistArray values (paper: such reads are not prefetched).
  const std::vector<DistArrayId>& unprefetchable() const { return unprefetchable_; }

  const std::vector<Node>& nodes() const { return nodes_; }

  // Runs the sliced program for one iteration, appending each target read's
  // flat key (computed against the arrays' key spaces) into `out`.
  void Run(IdxSpan idx, const f32* value, i32 value_dim,
           const std::map<DistArrayId, KeySpace>& key_spaces,
           std::map<DistArrayId, std::vector<i64>>* out) const;

 private:
  friend PrefetchProgram SynthesizePrefetch(const LoopBody& body);

  int num_vars_ = 0;
  bool has_targets_ = false;
  std::vector<Node> nodes_;
  std::vector<DistArrayId> target_arrays_;
  std::vector<DistArrayId> unprefetchable_;
};

PrefetchProgram SynthesizePrefetch(const LoopBody& body);

}  // namespace orion

#endif  // ORION_SRC_IR_ANALYZE_BODY_H_
