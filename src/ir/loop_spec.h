// LoopSpec: the statically analyzable description of a parallel for-loop.
//
// This is what Orion's @parallel_for macro extracts from the Julia AST
// (paper Fig. 6 "Loop information"): the iteration-space DistArray, the
// ordering requirement, and every DistArray reference in the loop body with
// its per-dimension subscript expressions. Writes routed through DistArray
// Buffers are marked `buffered` and exempted from dependence analysis
// (paper Sec. 3.3).
#ifndef ORION_SRC_IR_LOOP_SPEC_H_
#define ORION_SRC_IR_LOOP_SPEC_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/ir/expr.h"

namespace orion {

struct ArrayAccess {
  DistArrayId array = kInvalidDistArrayId;
  std::string array_name;             // diagnostics only
  std::vector<Subscript> subscripts;  // one per array dimension
  bool is_write = false;
  bool buffered = false;  // write through a DistArray Buffer -> exempt

  std::string ToString() const;
};

struct LoopSpec {
  // Iteration space: the DistArray being iterated (paper Sec. 3.2). Its
  // dimensionality defines the loop nest depth.
  DistArrayId iter_space = kInvalidDistArrayId;
  std::vector<i64> iter_extents;  // iteration-space bounds per dimension
  bool ordered = false;           // enforce lexicographic iteration order

  std::vector<ArrayAccess> accesses;

  int num_dims() const { return static_cast<int>(iter_extents.size()); }

  // Declares one DistArray reference; subscript expressions are classified
  // immediately (the "static analysis of the loop code" step).
  void AddAccess(DistArrayId array, std::string name, const std::vector<ExprPtr>& subs,
                 bool is_write, bool buffered = false) {
    ArrayAccess a;
    a.array = array;
    a.array_name = std::move(name);
    a.subscripts.reserve(subs.size());
    for (const auto& e : subs) {
      a.subscripts.push_back(ClassifySubscript(e));
    }
    a.is_write = is_write;
    a.buffered = buffered;
    accesses.push_back(std::move(a));
  }

  // Convenience for already-classified subscripts (tests).
  void AddClassifiedAccess(DistArrayId array, std::string name, std::vector<Subscript> subs,
                           bool is_write, bool buffered = false) {
    ArrayAccess a;
    a.array = array;
    a.array_name = std::move(name);
    a.subscripts = std::move(subs);
    a.is_write = is_write;
    a.buffered = buffered;
    accesses.push_back(std::move(a));
  }
};

}  // namespace orion

#endif  // ORION_SRC_IR_LOOP_SPEC_H_
