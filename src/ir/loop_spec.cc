#include "src/ir/loop_spec.h"

#include <sstream>

namespace orion {

std::string ArrayAccess::ToString() const {
  std::ostringstream os;
  os << array_name << "[";
  for (size_t d = 0; d < subscripts.size(); ++d) {
    if (d > 0) {
      os << ", ";
    }
    os << subscripts[d].ToString();
  }
  os << "]";
  os << (is_write ? " (write" : " (read");
  if (buffered) {
    os << ", buffered";
  }
  os << ")";
  return os.str();
}

}  // namespace orion
