// Statement-level loop-body IR.
//
// The declaration API (LoopSpec::AddAccess) asks the programmer for each
// DistArray reference. This module is the next layer of the frontend: the
// loop body is written as a small *program* — scalar assignments, array
// loads/stores, buffered updates, counted loops and conditionals — from
// which Orion derives everything itself:
//
//   - the access declarations (subscript classification included), and
//   - the synthesized bulk-prefetch function (paper Sec. 4.4): a backward
//     slice of the body containing exactly the statements the server-array
//     subscripts depend on, interpreted per iteration to record key lists
//     ("in spirit similar to dead code elimination").
//
// Scalars are f64 during interpretation; array cells are f32 spans indexed
// by (subscripts, element offset).
#ifndef ORION_SRC_IR_STMT_H_
#define ORION_SRC_IR_STMT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace orion {

// ---------------------------------------------------------------------------
// Scalar expressions

enum class SOp : u8 {
  kConst,        // floating literal
  kIndexVar,     // the d-th loop index coordinate
  kVar,          // a scalar variable
  kIterValueAt,  // value[offset]: this iteration's value span
  kArrayElem,    // A[subs][elem]: a DistArray cell element
  kAdd,
  kSub,
  kMul,
  kDiv,
  kFloor,        // unary floor (integer subscript arithmetic)
};

class SExpr;
using SExprPtr = std::shared_ptr<const SExpr>;

class SExpr {
 public:
  static SExprPtr Const(f64 v) { return Make(SOp::kConst, v, -1, -1); }
  static SExprPtr IndexVar(int loop_dim) { return Make(SOp::kIndexVar, 0, loop_dim, -1); }
  static SExprPtr Var(int var) { return Make(SOp::kVar, 0, -1, var); }
  static SExprPtr IterValueAt(SExprPtr offset) {
    auto e = Make(SOp::kIterValueAt, 0, -1, -1);
    const_cast<SExpr*>(e.get())->children_ = {std::move(offset)};
    return e;
  }
  static SExprPtr ArrayElem(DistArrayId array, std::vector<SExprPtr> subs, SExprPtr elem) {
    auto e = Make(SOp::kArrayElem, 0, -1, -1);
    SExpr* m = const_cast<SExpr*>(e.get());
    m->array_ = array;
    m->children_ = std::move(subs);
    m->children_.push_back(std::move(elem));  // last child = element offset
    return e;
  }
  static SExprPtr Add(SExprPtr a, SExprPtr b) { return Binary(SOp::kAdd, a, b); }
  static SExprPtr Sub(SExprPtr a, SExprPtr b) { return Binary(SOp::kSub, a, b); }
  static SExprPtr Mul(SExprPtr a, SExprPtr b) { return Binary(SOp::kMul, a, b); }
  static SExprPtr Div(SExprPtr a, SExprPtr b) { return Binary(SOp::kDiv, a, b); }
  static SExprPtr Floor(SExprPtr a) {
    auto e = Make(SOp::kFloor, 0, -1, -1);
    const_cast<SExpr*>(e.get())->children_ = {std::move(a)};
    return e;
  }

  SOp op() const { return op_; }
  f64 constant() const { return constant_; }
  int loop_dim() const { return loop_dim_; }
  int var() const { return var_; }
  DistArrayId array() const { return array_; }
  const std::vector<SExprPtr>& children() const { return children_; }
  // For kArrayElem: the subscript children (all but the last).
  int num_subscripts() const { return static_cast<int>(children_.size()) - 1; }

 private:
  static SExprPtr Make(SOp op, f64 c, int dim, int var) {
    auto e = std::make_shared<SExpr>();
    e->op_ = op;
    e->constant_ = c;
    e->loop_dim_ = dim;
    e->var_ = var;
    return e;
  }
  static SExprPtr Binary(SOp op, SExprPtr a, SExprPtr b) {
    auto e = Make(op, 0, -1, -1);
    const_cast<SExpr*>(e.get())->children_ = {std::move(a), std::move(b)};
    return e;
  }

  SOp op_ = SOp::kConst;
  f64 constant_ = 0.0;
  int loop_dim_ = -1;
  int var_ = -1;
  DistArrayId array_ = kInvalidDistArrayId;
  std::vector<SExprPtr> children_;

  friend class SExprBuilderAccess;

 public:
  SExpr() = default;  // for make_shared
};

// ---------------------------------------------------------------------------
// Statements

enum class StmtKind : u8 {
  kAssign,        // var = expr
  kStore,         // A[subs][elem] = expr   (or += expr)
  kBufferUpdate,  // buffer(A)[subs] <- [expr...]
  kFor,           // for var in 0 .. count-1 { body }
  kIf,            // if (cond != 0) { body }
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  StmtKind kind = StmtKind::kAssign;

  // kAssign
  int var = -1;
  SExprPtr value;

  // kStore / kBufferUpdate
  DistArrayId array = kInvalidDistArrayId;
  std::string array_name;
  std::vector<SExprPtr> subscripts;
  SExprPtr elem_offset;           // kStore only
  bool accumulate = false;        // kStore: += instead of =
  std::vector<SExprPtr> update;   // kBufferUpdate: update_dim expressions

  // kFor / kIf
  SExprPtr count_or_cond;
  std::vector<StmtPtr> body;

  static StmtPtr Assign(int var, SExprPtr value) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kAssign;
    s->var = var;
    s->value = std::move(value);
    return s;
  }
  static StmtPtr Store(DistArrayId array, std::string name, std::vector<SExprPtr> subs,
                       SExprPtr elem, SExprPtr value, bool accumulate = false) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kStore;
    s->array = array;
    s->array_name = std::move(name);
    s->subscripts = std::move(subs);
    s->elem_offset = std::move(elem);
    s->value = std::move(value);
    s->accumulate = accumulate;
    return s;
  }
  static StmtPtr BufferUpdate(DistArrayId array, std::string name,
                              std::vector<SExprPtr> subs, std::vector<SExprPtr> update) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kBufferUpdate;
    s->array = array;
    s->array_name = std::move(name);
    s->subscripts = std::move(subs);
    s->update = std::move(update);
    return s;
  }
  static StmtPtr For(int counter_var, SExprPtr count, std::vector<StmtPtr> body) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kFor;
    s->var = counter_var;
    s->count_or_cond = std::move(count);
    s->body = std::move(body);
    return s;
  }
  static StmtPtr If(SExprPtr cond, std::vector<StmtPtr> body) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kIf;
    s->count_or_cond = std::move(cond);
    s->body = std::move(body);
    return s;
  }
};

// A loop body: the statement list plus bookkeeping the analyses need.
struct LoopBody {
  int num_index_dims = 0;  // iteration-space dimensionality
  int num_vars = 0;        // scalar variable count (ids 0..num_vars-1)
  std::vector<StmtPtr> stmts;
};

}  // namespace orion

#endif  // ORION_SRC_IR_STMT_H_
