// Subscript expression AST.
//
// Orion's Julia macro analyzes the loop body's AST to extract, for each
// DistArray reference, a subscript expression per dimension. This module is
// the C++ equivalent: applications build small expression trees describing
// their subscripts, and ClassifySubscript() reduces each tree to the 3-tuple
// (dim_idx, const, type) the dependence test consumes (paper Sec. 4.2).
//
// The supported precise form is `loop_index ± constant` at each position;
// anything else degrades conservatively (kRange over the whole dimension or
// kRuntime for data-dependent subscripts), exactly as the paper specifies.
#ifndef ORION_SRC_IR_EXPR_H_
#define ORION_SRC_IR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace orion {

enum class ExprOp {
  kConst,      // integer literal
  kLoopIndex,  // the d-th loop index variable
  kRuntime,    // value known only at run time (data-dependent subscript)
  kAdd,
  kSub,
  kMul,
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  static ExprPtr Const(i64 v) { return std::make_shared<Expr>(ExprOp::kConst, v, -1); }
  static ExprPtr LoopIndex(int dim) {
    return std::make_shared<Expr>(ExprOp::kLoopIndex, 0, dim);
  }
  // tag identifies the runtime source (for diagnostics / prefetch synthesis).
  static ExprPtr Runtime(std::string tag) {
    auto e = std::make_shared<Expr>(ExprOp::kRuntime, 0, -1);
    const_cast<Expr*>(e.get())->tag_ = std::move(tag);
    return e;
  }
  static ExprPtr Add(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kAdd, std::move(a), std::move(b)); }
  static ExprPtr Sub(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kSub, std::move(a), std::move(b)); }
  static ExprPtr Mul(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kMul, std::move(a), std::move(b)); }

  Expr(ExprOp op, i64 value, int dim) : op_(op), value_(value), loop_dim_(dim) {}

  ExprOp op() const { return op_; }
  i64 value() const { return value_; }
  int loop_dim() const { return loop_dim_; }
  const std::string& tag() const { return tag_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  std::string ToString() const;

 private:
  static ExprPtr Binary(ExprOp op, ExprPtr a, ExprPtr b) {
    auto e = std::make_shared<Expr>(op, 0, -1);
    const_cast<Expr*>(e.get())->children_ = {std::move(a), std::move(b)};
    return e;
  }

  ExprOp op_;
  i64 value_;
  int loop_dim_;
  std::string tag_;
  std::vector<ExprPtr> children_;
};

// The classified subscript: the paper's (dim_idx, const, stype) 3-tuple.
enum class SubscriptKind {
  kConstant,   // a fixed coordinate
  kLoopIndex,  // loop_index(dim) + constant  (precisely analyzable)
  kRange,      // a set query / unanalyzable affine form: any value in bounds
  kRuntime,    // data-dependent: any value in bounds, not statically known
};

struct Subscript {
  SubscriptKind kind = SubscriptKind::kRange;
  int loop_dim = -1;  // valid for kLoopIndex
  i64 constant = 0;   // kConstant: the coordinate; kLoopIndex: the offset

  static Subscript MakeConstant(i64 c) { return {SubscriptKind::kConstant, -1, c}; }
  static Subscript MakeLoopIndex(int dim, i64 offset = 0) {
    return {SubscriptKind::kLoopIndex, dim, offset};
  }
  static Subscript MakeRange() { return {SubscriptKind::kRange, -1, 0}; }
  static Subscript MakeRuntime() { return {SubscriptKind::kRuntime, -1, 0}; }

  bool PreciselyAnalyzable() const {
    return kind == SubscriptKind::kConstant || kind == SubscriptKind::kLoopIndex;
  }

  std::string ToString() const;

  friend bool operator==(const Subscript& a, const Subscript& b) {
    return a.kind == b.kind && a.loop_dim == b.loop_dim && a.constant == b.constant;
  }
};

// Reduces an expression tree to a Subscript. The precise form is
// `LoopIndex(d) + c` / `LoopIndex(d) - c` / `c` (constant folding over
// +,-,* of constants is performed first). Any expression containing a
// runtime value maps to kRuntime; any other shape (two loop indices,
// loop_index * 2, ...) maps to kRange — "conservatively regarded as any
// value within the DistArray's bounds" (paper Sec. 3.2).
Subscript ClassifySubscript(const ExprPtr& e);

}  // namespace orion

#endif  // ORION_SRC_IR_EXPR_H_
