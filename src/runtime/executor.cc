#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/buffer_pool.h"
#include "src/common/logging.h"
#include "src/common/simd.h"
#include "src/common/trace.h"

namespace orion {

namespace {

// Tags for rotated-partition messages double as the time-partition index
// (plus one so tag 0 stays "untagged").
u32 PartTag(int tau) { return static_cast<u32>(tau + 1); }

}  // namespace

// ---------------------------------------------------------------------------
// Loop contexts

// Normal execution context: resolves each DistArray reference to the store
// that holds it at the current time step.
class WorkerLoopContext : public LoopContext {
 public:
  WorkerLoopContext(Executor* ex, const CompiledLoop* cl, int tau)
      : ex_(ex), cl_(cl), tau_(tau) {}

  const f32* Read(DistArrayId array, IdxSpan idx) override {
    Resolved& r = Resolve(array);
    const i64 key = r.st->meta.key_space.EncodeUnchecked(idx);
    const f32* v = nullptr;
    switch (r.scheme) {
      case PartitionScheme::kRange:
      case PartitionScheme::kSpaceTime:
      case PartitionScheme::kReplicated:
        v = r.store->Get(key);
        break;
      case PartitionScheme::kServer:
        v = ReadServer(r, key);
        break;
      case PartitionScheme::kIterSpace:
        v = ReadIterSpace(r, key);
        break;
      default:
        ORION_CHECK(false) << "unreadable placement for array" << array;
    }
    return v != nullptr ? v : r.st->zeros.data();
  }

  f32* Mutate(DistArrayId array, IdxSpan idx) override {
    Resolved& r = Resolve(array);
    const i64 key = r.st->meta.key_space.EncodeUnchecked(idx);
    switch (r.scheme) {
      case PartitionScheme::kRange:
      case PartitionScheme::kSpaceTime:
        return r.store->GetOrCreate(key);
      case PartitionScheme::kServer: {
        // Copy-on-write from the prefetched value; flushed as an overwrite
        // at the end of the step (wavefront/unimodular loops).
        const bool existed = r.st->server_dirty.Contains(key);
        f32* dirty = r.st->server_dirty.GetOrCreate(key);
        if (!existed) {
          const f32* cur = r.st->prefetch_cache.Get(key);
          if (cur != nullptr) {
            simd::CopyF32(dirty, cur, static_cast<size_t>(r.st->meta.value_dim));
          }
        }
        return dirty;
      }
      default:
        ORION_CHECK(false) << "Mutate on array" << array
                           << "which is not locally owned; use BufferUpdate";
    }
    return nullptr;
  }

  void BufferUpdate(DistArrayId array, IdxSpan idx, const f32* update) override {
    Resolved& r = Resolve(array);
    const i64 key = r.st->meta.key_space.EncodeUnchecked(idx);
    DistArrayBuffer& buf = ex_->GetBuffer(array);
    buf.Accumulate(key, update);
    if (r.scheme == PartitionScheme::kReplicated) {
      // Apply to the local replica immediately so this worker sees its own
      // updates (the flush to the master happens at step end).
      buf.apply_fn()(r.st->replica.GetOrCreate(key), update, r.st->meta.value_dim);
    }
  }

  void AccumulatorAdd(int slot, f64 delta) override {
    ORION_CHECK(slot >= 0 && slot < static_cast<int>(ex_->accum_.size()))
        << "accumulator slot" << slot << "not registered before loop compilation";
    f64& acc = ex_->accum_[static_cast<size_t>(slot)];
    acc = AccumCombine(ex_->accum_ops_[static_cast<size_t>(slot)], acc, delta);
  }

 protected:
  struct Resolved {
    PartitionScheme scheme = PartitionScheme::kUnpartitioned;
    Executor::ArrayState* st = nullptr;
    CellStore* store = nullptr;
  };

  Resolved& Resolve(DistArrayId array) {
    if (array >= 0 && array < static_cast<DistArrayId>(res_.size()) &&
        res_[static_cast<size_t>(array)].st != nullptr) {
      return res_[static_cast<size_t>(array)];
    }
    Resolved r;
    r.st = &ex_->GetArray(array);
    if (array == cl_->spec.iter_space) {
      r.scheme = PartitionScheme::kIterSpace;
      auto it = r.st->parts.find(tau_);
      r.store = it != r.st->parts.end() ? &it->second : nullptr;
    } else {
      const ArrayPlacement& p = cl_->PlacementOf(array);
      r.scheme = p.scheme;
      switch (p.scheme) {
        case PartitionScheme::kRange:
          r.store = &r.st->range_store;
          break;
        case PartitionScheme::kSpaceTime: {
          auto [it, inserted] = r.st->parts.try_emplace(
              tau_, CellStore(r.st->meta.value_dim, CellStore::Layout::kHashed, 0));
          r.store = &it->second;
          break;
        }
        case PartitionScheme::kReplicated:
          r.store = &r.st->replica;
          break;
        case PartitionScheme::kServer:
          r.store = &r.st->prefetch_cache;
          break;
        default:
          ORION_CHECK(false) << "bad placement";
      }
    }
    if (array >= static_cast<DistArrayId>(res_.size())) {
      res_.resize(static_cast<size_t>(array) + 1);
    }
    res_[static_cast<size_t>(array)] = r;
    return res_[static_cast<size_t>(array)];
  }

  virtual const f32* ReadServer(Resolved& r, i64 key) {
    // Dirty (written this step) wins over the prefetched snapshot.
    const f32* dirty = r.st->server_dirty.Get(key);
    if (dirty != nullptr) {
      return dirty;
    }
    return r.st->prefetch_cache.Get(key);
  }

  virtual const f32* ReadIterSpace(Resolved& r, i64 key) {
    return r.store != nullptr ? r.store->Get(key) : nullptr;
  }

  Executor* ex_;
  const CompiledLoop* cl_;
  int tau_;
  std::vector<Resolved> res_;
};

// Access-recording context: the synthesized bulk-prefetch pass (paper
// Sec. 4.4). Server-hosted reads record their key and return zeros; writes
// and accumulators are inert; everything else reads real local data so that
// data-dependent control flow (and data-dependent subscripts computed from
// the iteration's own record) replays faithfully.
class RecordingLoopContext : public WorkerLoopContext {
 public:
  RecordingLoopContext(Executor* ex, const CompiledLoop* cl, int tau,
                       std::map<DistArrayId, std::vector<i64>>* recorded)
      : WorkerLoopContext(ex, cl, tau), recorded_(recorded) {}

  f32* Mutate(DistArrayId array, IdxSpan idx) override {
    Resolved& r = Resolve(array);
    if (ex_->mutate_scratch_.size() < static_cast<size_t>(r.st->meta.value_dim)) {
      ex_->mutate_scratch_.resize(static_cast<size_t>(r.st->meta.value_dim));
    }
    return ex_->mutate_scratch_.data();
  }

  void BufferUpdate(DistArrayId array, IdxSpan idx, const f32* update) override {}
  void AccumulatorAdd(int slot, f64 delta) override {}
  bool recording() const override { return true; }

 protected:
  const f32* ReadServer(Resolved& r, i64 key) override {
    (*recorded_)[r.st->meta.id].push_back(key);
    return nullptr;  // caller substitutes the zero span
  }

 private:
  std::map<DistArrayId, std::vector<i64>>* recorded_;
};

// ---------------------------------------------------------------------------
// Executor

Executor::Executor(WorkerId rank, Fabric* fabric, const SharedDirectory* dir)
    : rank_(rank), fabric_(fabric), dir_(dir), logical_rank_(rank), sender_(fabric, 1, rank) {
  ring_.resize(static_cast<size_t>(fabric->num_workers()));
  for (size_t i = 0; i < ring_.size(); ++i) {
    ring_[i] = static_cast<i32>(i);
  }
}

void Executor::SendData(Message m) {
  if (overlap_) {
    sender_.Enqueue(std::move(m));
  } else {
    fabric_->Send(std::move(m));
  }
}

Executor::ArrayState& Executor::GetArray(DistArrayId id) {
  auto it = arrays_.find(id);
  if (it == arrays_.end()) {
    it = arrays_.emplace(id, std::make_unique<ArrayState>(dir_->GetMeta(id))).first;
  }
  return *it->second;
}

DistArrayBuffer& Executor::GetBuffer(DistArrayId target) {
  auto it = buffers_.find(target);
  if (it == buffers_.end()) {
    auto def = dir_->GetBufferDef(target);
    ORION_CHECK(def != nullptr) << "BufferUpdate on array" << target
                                << "without a registered DistArray Buffer";
    it = buffers_
             .emplace(target, std::make_unique<DistArrayBuffer>(target, def->update_dim,
                                                                def->apply, def->combine))
             .first;
  }
  return *it->second;
}

void Executor::Run() {
  trace::SetThreadRank(logical_rank_);
  sup_ = dir_->supervisor();
  try {
    while (true) {
      auto msg = fabric_->Recv(rank_);
      if (!msg.has_value()) {
        return;  // fabric shut down
      }
      try {
        if (msg->kind == MsgKind::kControl &&
            PeekControlOp(msg->payload) == ControlOp::kStartPass) {
          ByteReader r(msg->payload);
          r.Get<u16>();
          const i32 loop_id = r.Get<i32>();
          const i32 pass = r.Get<i32>();
          // Trailing adaptive-depth and speculation-depth fields; tolerate
          // their absence so older encoders stay decodable.
          const i32 depth = r.AtEnd() ? 0 : r.Get<i32>();
          const i32 spec_depth = r.AtEnd() ? 0 : r.Get<i32>();
          if (pass > last_completed_pass_) {
            BufferPool::Release(std::move(msg->payload));
            RunPass(loop_id, pass, depth, spec_depth);
            continue;
          }
          // Retransmit of an already-finished pass: fall through to the
          // dedupe path, which re-answers with the cached PassDone.
        }
        Dispatch(*msg);
        BufferPool::Release(std::move(msg->payload));
      } catch (const RetireSignal&) {
        // Reconfigured mid-pass; the abandoned pass reports nothing.
      }
    }
  } catch (const HaltSignal&) {
    // Injected crash, kShutdown, or fabric shutdown while mid-pass. Drain the
    // comm queue: everything enqueued precedes the crash point, so delivering
    // it keeps per-link send counts identical to a synchronous sender (the
    // fault injector's determinism witness depends on that).
    sender_.Flush();
  }
}

void Executor::MaybeCrash(i32 pass, i32 step) {
  FaultInjector* inj = fabric_->injector();
  if (inj != nullptr && inj->ShouldCrash(rank_, pass, step)) {
    throw HaltSignal{};
  }
}

void Executor::MaybeStraggle(i32 pass) {
  FaultInjector* inj = fabric_->injector();
  if (inj == nullptr) {
    return;
  }
  const double stall = inj->StraggleSeconds(rank_, pass);
  if (stall > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(stall));
  }
}

void Executor::ProcessRetire(const Message& msg) {
  const Retire t = Retire::Decode(msg.payload);
  // Quiesce the comm thread before acking either phase: the retire protocol's
  // invariant — "after every ack, no pre-failure message from this worker can
  // still be produced" — extends to messages parked in the async queue.
  sender_.Flush();
  overlap_ = false;
  prefetch_ring_.clear();
  PublishRingFill();
  if (t.phase == 0) {
    // Adopt the post-failure configuration. Schedule math now runs in the
    // compacted logical space; physical addressing goes through ring_.
    logical_rank_ = t.logical_rank;
    ring_ = t.ring;
  } else {
    // Full reset: everything local predates the checkpoint the driver is
    // about to restore, so drop it and wait for the re-scatter.
    arrays_.clear();
    buffers_.clear();
    prefetch_key_cache_.clear();
    current_pass_ = -1;
    last_completed_pass_ = -1;
    cached_pass_done_.reset();
  }
  Retire ack;
  ack.op = t.op;  // echo, so rejoin acks are distinguishable from retire acks
  ack.phase = t.phase;
  ack.is_ack = true;
  ack.logical_rank = logical_rank_;
  Message m;
  m.from = rank_;
  m.to = kMasterRank;
  m.kind = MsgKind::kControl;
  m.payload = ack.Encode();
  fabric_->SendReliable(std::move(m));
}

void Executor::Dispatch(Message& msg) {
  switch (msg.kind) {
    case MsgKind::kShutdown:
      throw HaltSignal{};
    case MsgKind::kPartitionData:
    case MsgKind::kParamReply:
      // Drop data from workers outside the current configuration (a zombie
      // sender after a false-positive death declaration).
      if (msg.from != kMasterRank &&
          std::find(ring_.begin(), ring_.end(), static_cast<i32>(msg.from)) == ring_.end()) {
        return;
      }
      InstallPartData(TakePart(msg), msg.kind);
      return;
    case MsgKind::kBarrier:
      return;  // stale barrier traffic from an earlier pass or step
    case MsgKind::kControl:
      break;
    default:
      ORION_CHECK(false) << "unexpected message kind" << static_cast<int>(msg.kind);
  }
  switch (PeekControlOp(msg.payload)) {
    case ControlOp::kHeartbeat: {
      const Heartbeat ping = Heartbeat::Decode(msg.payload);
      if (ping.is_reply) {
        return;  // replies are master-bound; ignore strays
      }
      Heartbeat pong;
      pong.is_reply = true;
      pong.seq = ping.seq;
      pong.last_started_pass = current_pass_ >= 0 ? current_pass_ : last_completed_pass_;
      pong.last_completed_pass = last_completed_pass_;
      Message m;
      m.from = rank_;
      m.to = kMasterRank;
      m.kind = MsgKind::kControl;
      m.payload = pong.Encode();
      fabric_->SendReliable(std::move(m));
      return;
    }
    case ControlOp::kStartPass: {
      // Duplicate or retransmit: if it names the pass we last completed, the
      // PassDone was lost — answer it again.
      ByteReader r(msg.payload);
      r.Get<u16>();
      r.Get<i32>();  // loop id
      const i32 pass = r.Get<i32>();
      if (pass == last_completed_pass_ && cached_pass_done_.has_value()) {
        fabric_->SendReliable(*cached_pass_done_);
      }
      return;
    }
    case ControlOp::kRetire:
    case ControlOp::kRejoin:
      // Rejoin is a retire with a grown ring: same adopt-then-drop protocol,
      // so a re-entering rank and the survivors converge identically.
      ProcessRetire(msg);
      throw RetireSignal{};
    case ControlOp::kGather: {
      ByteReader r(msg.payload);
      r.Get<u16>();
      HandleGather(r.Get<i32>());
      return;
    }
    case ControlOp::kDropArray: {
      ByteReader r(msg.payload);
      r.Get<u16>();
      DropArray(r.Get<i32>());
      return;
    }
    default:
      ORION_CHECK(false) << "unexpected control op"
                         << static_cast<int>(PeekControlOp(msg.payload));
  }
}

void Executor::InstallPartData(PartData pd, MsgKind kind) {
  if (kind == MsgKind::kParamReply) {
    // Replies carry their request's step in `part` and land in that slot's
    // buffers until AwaitPrefetch moves them into the caches. A reply that
    // matches no ring slot is stale traffic from an abandoned pass: drop it
    // rather than corrupt a cache the current step reads.
    for (PrefetchSlot& slot : prefetch_ring_) {
      if (slot.step != pd.part) {
        continue;
      }
      auto it = slot.buffers.find(pd.array);
      if (it != slot.buffers.end()) {
        it->second.MergeAdd(pd.cells);  // buffer starts empty: add == install
      }
      --slot.outstanding;
      ORION_CHECK(slot.outstanding >= 0)
          << "more kParamReply messages than requests for step" << slot.step;
      return;
    }
    return;
  }
  ArrayState& st = GetArray(pd.array);
  switch (pd.mode) {
    case PartDataMode::kInstallPart:
      st.parts[pd.part] = std::move(pd.cells);
      break;
    case PartDataMode::kInstallRange:
      st.range_store = std::move(pd.cells);
      break;
    case PartDataMode::kReplicaSnapshot: {
      st.replica = std::move(pd.cells);
      // Re-apply this worker's unflushed buffered updates so its own recent
      // writes are not lost under the fresh snapshot.
      auto it = buffers_.find(pd.array);
      if (it != buffers_.end() && it->second->NumPending() > 0) {
        // Peek without draining: drain into a copy and put it back.
        CellStore pending = it->second->Drain();
        DistArrayBuffer::ApplyTo(&st.replica, pending, it->second->apply_fn());
        pending.ForEachConst([&](i64 key, const f32* v) { it->second->Accumulate(key, v); });
      }
      break;
    }
    default:
      ORION_CHECK(false) << "unexpected PartData mode on worker";
  }
}

void Executor::DrainInbox() {
  while (true) {
    auto msg = fabric_->TryRecv(rank_);
    if (!msg.has_value()) {
      return;
    }
    Dispatch(*msg);
    BufferPool::Release(std::move(msg->payload));
  }
}

Message Executor::WaitFor(const std::function<bool(const Message&)>& pred) {
  Stopwatch sw;
  while (true) {
    auto msg = fabric_->Recv(rank_);
    if (!msg.has_value()) {
      wait_seconds_ += sw.ElapsedSeconds();
      throw HaltSignal{};  // fabric shut down
    }
    if (pred(*msg)) {
      wait_seconds_ += sw.ElapsedSeconds();
      return *std::move(msg);
    }
    Dispatch(*msg);
    BufferPool::Release(std::move(msg->payload));
  }
}

std::optional<Message> Executor::WaitForTimeout(
    const std::function<bool(const Message&)>& pred, double seconds) {
  Stopwatch sw;
  while (true) {
    const double left = seconds - sw.ElapsedSeconds();
    if (left <= 0.0) {
      wait_seconds_ += sw.ElapsedSeconds();
      return std::nullopt;
    }
    auto msg = fabric_->RecvWithTimeout(rank_, left);
    if (!msg.has_value()) {
      if (fabric_->Closed(rank_)) {
        throw HaltSignal{};
      }
      continue;  // timed out; the deadline check above decides
    }
    if (pred(*msg)) {
      wait_seconds_ += sw.ElapsedSeconds();
      return msg;
    }
    Dispatch(*msg);
    BufferPool::Release(std::move(msg->payload));
  }
}

void Executor::WaitForPart(DistArrayId array, int tau) {
  ArrayState& st = GetArray(array);
  if (st.parts.count(tau) != 0) {
    return;  // already resident: no wait, no span
  }
  ORION_TRACE_SPAN(kExecutor, "rotation_wait");
  while (st.parts.count(tau) == 0) {
    Message msg = WaitFor([](const Message& m) { return m.kind == MsgKind::kPartitionData; });
    Dispatch(msg);
  }
}

void Executor::Barrier(i32 pass, int step) {
  ORION_TRACE_SPAN(kExecutor, "barrier");
  // The barrier is an ordering point: everything this step produced must be
  // on the wire before peers are released into the next step.
  sender_.Flush();
  BarrierMsg arrival;
  arrival.pass = pass;
  arrival.release = false;
  if (trace::Enabled() && trace::RingFillFraction() > 0.75) {
    // Long ordered passes wrap the span ring before PassDone can ship it;
    // piggyback a partial drain on this arrival. The batch id lets the
    // master append resent copies of the same batch exactly once. Fault
    // injection stays deterministic: injector decisions never depend on
    // payload size.
    arrival.spans = trace::DrainRank(logical_rank_);
    if (rank_ != logical_rank_) {
      std::vector<trace::Span> extra = trace::DrainRank(rank_);
      arrival.spans.insert(arrival.spans.end(), extra.begin(), extra.end());
    }
    if (!arrival.spans.empty()) {
      arrival.span_seq = ++span_batch_seq_;
    }
  }
  Message m;
  m.from = rank_;
  m.to = kMasterRank;
  m.kind = MsgKind::kBarrier;
  m.tag = static_cast<u32>(step);
  m.payload = arrival.Encode();
  fabric_->Send(std::move(m));
  // The matched release is decoded once, inside the predicate, and kept for
  // the dirty capture below instead of being decoded a second time.
  BarrierMsg release;
  auto matches = [&](const Message& msg) {
    if (msg.kind != MsgKind::kBarrier || msg.tag != static_cast<u32>(step)) {
      return false;
    }
    BarrierMsg b = BarrierMsg::Decode(msg.payload);
    if (!b.release || b.pass != pass) {
      return false;
    }
    release = std::move(b);
    return true;
  };
  // The release for step s carries the dirty-range summary of the kOverwrite
  // writes flushed during s — the validation input for any speculative fetch
  // that was in flight across this barrier.
  auto record_release = [&]() {
    if (spec_depth_ > 0 && release.has_dirty) {
      step_dirty_[step] = std::move(release.dirty);
    }
  };
  if (!sup_.enabled) {
    WaitFor(matches);
    record_release();
    return;
  }
  // Supervised: either our arrival or the master's release can be lost, so
  // resend (reliably) with backoff until the release for this exact
  // (pass, step) arrives. The master re-releases on duplicate arrivals.
  double backoff = sup_.retry_initial_seconds;
  while (true) {
    auto got = WaitForTimeout(matches, backoff);
    if (got.has_value()) {
      record_release();
      return;
    }
    Message again;
    again.from = rank_;
    again.to = kMasterRank;
    again.kind = MsgKind::kBarrier;
    again.tag = static_cast<u32>(step);
    again.payload = arrival.Encode();
    fabric_->SendReliable(std::move(again));
    if (!arrival.spans.empty()) {
      // That reliable resend bypasses the injector, so the span batch is now
      // durably at the master (which dedupes it by span_seq if the original
      // arrival also lands). Later retries only chase a lost release; keep
      // them small instead of re-shipping the batch every backoff.
      arrival.spans.clear();
    }
    backoff *= sup_.retry_backoff_factor;
  }
}

void Executor::ExecuteCells(const CompiledLoop& cl, int tau, int chunk, int num_chunks) {
  ArrayState& iter = GetArray(cl.spec.iter_space);
  auto it = iter.parts.find(tau);
  if (it == iter.parts.end() || it->second.NumCells() == 0) {
    return;  // no data in this block
  }
  ORION_TRACE_SPAN(kExecutor, "compute");
  WorkerLoopContext ctx(this, &cl, tau);
  const KeySpace& ks = iter.meta.key_space;
  std::vector<i64> idx(static_cast<size_t>(ks.num_dims()));
  CpuStopwatch sw;
  const i64 flush_every = cl.options.buffer_flush_every;
  i64 since_flush = 0;
  auto body = [&](i64 key, f32* value) {
    ks.DecodeInto(key, idx);
    cl.kernel(ctx, idx, value);
    if (flush_every > 0 && ++since_flush >= flush_every) {
      since_flush = 0;
      ApplyLocalBuffers(cl, tau);
    }
  };
  if (num_chunks > 1) {
    it->second.ForEachSlice(chunk, num_chunks, body);
  } else {
    it->second.ForEachFast(body);
  }
  compute_seconds_ += sw.ElapsedSeconds();
}

std::map<DistArrayId, std::vector<i64>> Executor::CollectPrefetchKeys(const CompiledLoop& cl,
                                                                      int tau, int step,
                                                                      int chunk,
                                                                      int num_chunks) {
  // Collect the key lists, either from the per-loop cache or by running the
  // synthesized recording pass over this block's iterations. `step` uniquely
  // identifies the block within a pass (wavefront/rotation step, or sync
  // round for chunked 1D loops), so it keys the cache.
  std::map<DistArrayId, std::vector<i64>> recorded;
  bool have_cached = cl.options.prefetch == PrefetchMode::kCached;
  if (have_cached) {
    for (const auto& [array, placement] : cl.plan.placements) {
      if (placement.scheme != PartitionScheme::kServer) {
        continue;
      }
      auto it = prefetch_key_cache_.find({cl.loop_id, step, array});
      if (it == prefetch_key_cache_.end()) {
        have_cached = false;
        break;
      }
      recorded[array] = it->second;
    }
  }
  if (!have_cached) {
    ORION_TRACE_SPAN(kExecutor, "record_keys");
    recorded.clear();
    CpuStopwatch record_sw;
    ArrayState& iter = GetArray(cl.spec.iter_space);
    auto it = iter.parts.find(tau);
    if (it != iter.parts.end()) {
      const KeySpace& ks = iter.meta.key_space;
      std::vector<i64> idx(static_cast<size_t>(ks.num_dims()));
      std::function<void(i64, f32*)> body;
      if (cl.prefetch_program != nullptr && cl.prefetch_program->HasTargets()) {
        // The synthesized access-pattern function (sliced from the loop
        // body's AST) replaces kernel replay.
        body = [&](i64 key, f32* value) {
          ks.DecodeInto(key, idx);
          cl.prefetch_program->Run(idx, value, iter.meta.value_dim,
                                   cl.prefetch_key_spaces, &recorded);
        };
      } else {
        body = [&, rctx = std::make_shared<RecordingLoopContext>(this, &cl, tau, &recorded)](
                   i64 key, f32* value) {
          ks.DecodeInto(key, idx);
          cl.kernel(*rctx, idx, value);
        };
      }
      if (num_chunks > 1) {
        it->second.ForEachSlice(chunk, num_chunks, body);
      } else {
        it->second.ForEach(body);
      }
    }
    for (auto& [array, keys] : recorded) {
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      if (cl.options.prefetch == PrefetchMode::kCached) {
        prefetch_key_cache_[{cl.loop_id, step, array}] = keys;
      }
    }
    compute_seconds_ += record_sw.ElapsedSeconds();
  }
  return recorded;
}

bool Executor::CanIssueEarly(const CompiledLoop& cl, int step) const {
  if (cl.prefetch_program != nullptr && cl.prefetch_program->HasTargets()) {
    // The synthesized program reads only the iteration records of the target
    // block, which no other step mutates — safe at any point.
    return true;
  }
  if (cl.options.prefetch != PrefetchMode::kCached) {
    return false;  // kernel replay reads live local state; not safe early
  }
  // The key cache is keyed by the step index — the block a worker runs at
  // step s is the same every pass, so step names it uniquely per executor
  // (CollectPrefetchKeys records and looks up under the same key).
  for (const auto& [array, placement] : cl.plan.placements) {
    if (placement.scheme != PartitionScheme::kServer) {
      continue;
    }
    if (prefetch_key_cache_.count({cl.loop_id, step, array}) == 0) {
      return false;  // cold cache: the first pass still records
    }
  }
  return true;
}

void Executor::IssuePrefetch(const CompiledLoop& cl, int tau, int step, int chunk,
                             int num_chunks, bool speculative, int issued_during) {
  ORION_CHECK(prefetch_ring_.empty() || prefetch_ring_.back().step < step)
      << "prefetch ring issued out of step order";
  auto recorded = CollectPrefetchKeys(cl, tau, step, chunk, num_chunks);

  // Span covers only the request fan-out; key collection traced separately
  // as "record_keys" so the critical-path buckets never double-count.
  ORION_TRACE_SPAN(kExecutor, "prefetch_issue");
  PrefetchSlot slot;
  slot.step = step;
  slot.speculative = speculative;
  slot.issued_during = issued_during;
  for (const auto& [array, placement] : cl.plan.placements) {
    if (placement.scheme != PartitionScheme::kServer) {
      continue;
    }
    const ArrayState& st = GetArray(array);
    slot.buffers.emplace(array,
                         CellStore(st.meta.value_dim, CellStore::Layout::kHashed, 0));
    auto it = recorded.find(array);
    const std::vector<i64> empty;
    const std::vector<i64>& keys = it != recorded.end() ? it->second : empty;
    if (speculative) {
      // Remember what was requested (sorted/unique from the collector) so
      // the await can intersect it with the dirty ranges of intervening
      // steps and repair only the overlap.
      slot.keys[array] = keys;
    }
    if (cl.options.prefetch == PrefetchMode::kPerKey) {
      // Naive remote random access: one coalesced wire message carrying the
      // whole key list, metered in the fabric as |keys| individual requests
      // (and its reply as |keys| individual replies). The old code really did
      // send one message per key; the coalesced form keeps that cost model
      // while sparing the service loop the message storm. Zero keys means
      // zero messages, exactly as before.
      if (keys.empty()) {
        continue;
      }
      ParamRequest req{array, step, keys};
      req.per_key = true;
      req.speculative = speculative;
      Message m;
      m.from = rank_;
      m.to = kMasterRank;
      m.kind = MsgKind::kParamRequest;
      MeterAsPerKeyRequests(&m, req);
      AttachParamRequest(&m, std::move(req), fabric_->zero_copy());
      SendData(std::move(m));
      ++slot.expected;
    } else {
      ParamRequest req{array, step, keys};
      req.speculative = speculative;
      Message m;
      m.from = rank_;
      m.to = kMasterRank;
      m.kind = MsgKind::kParamRequest;
      AttachParamRequest(&m, std::move(req), fabric_->zero_copy());
      SendData(std::move(m));
      ++slot.expected;
    }
  }
  slot.outstanding = slot.expected;
  slot.issued_at.Reset();
  prefetch_ring_.push_back(std::move(slot));
  PublishRingFill();
  ring_depth_used_ = std::max(ring_depth_used_, static_cast<int>(prefetch_ring_.size()));
}

void Executor::AwaitPrefetch(const CompiledLoop& cl, int step) {
  if (prefetch_ring_.empty()) {
    return;
  }
  ORION_CHECK(prefetch_ring_.front().step == step) << "prefetch pipeline out of order";
  DrainInbox();
  {
    const PrefetchSlot& front = prefetch_ring_.front();
    ORION_CHECK(front.outstanding >= 0 && front.outstanding <= front.expected)
        << "reply accounting out of range for step" << step;
  }
  const bool spec = prefetch_ring_.front().speculative;
  if (prefetch_ring_.front().outstanding == 0) {
    // Fully overlapped: the wait collapsed to the buffer moves below.
    const double hidden = prefetch_ring_.front().issued_at.ElapsedSeconds();
    if (spec) {
      spec_hidden_seconds_ += hidden;
    } else {
      prefetch_hidden_seconds_ += hidden;
    }
    reply_wait_.Add(0.0);
  } else {
    Stopwatch blocked;
    auto drain = [&] {
      while (prefetch_ring_.front().outstanding > 0) {
        Message msg = WaitFor([](const Message& m) { return m.kind == MsgKind::kParamReply; });
        Dispatch(msg);
      }
    };
    if (spec) {
      ORION_TRACE_SPAN(kExecutor, "spec_wait");
      drain();
      spec_wait_seconds_ += blocked.ElapsedSeconds();
    } else {
      ORION_TRACE_SPAN(kExecutor, "prefetch_wait");
      drain();
    }
    reply_wait_.Add(blocked.ElapsedSeconds());
  }
  PrefetchSlot slot = std::move(prefetch_ring_.front());
  prefetch_ring_.pop_front();
  PublishRingFill();
  for (const auto& [array, placement] : cl.plan.placements) {
    if (placement.scheme != PartitionScheme::kServer) {
      continue;
    }
    ArrayState& st = GetArray(array);
    auto it = slot.buffers.find(array);
    if (it != slot.buffers.end()) {
      st.prefetch_cache = std::move(it->second);
    } else {
      st.prefetch_cache.Clear();
    }
  }
  if (slot.speculative) {
    RepairSpeculative(cl, slot);
  }
}

void Executor::RepairSpeculative(const CompiledLoop& cl, const PrefetchSlot& slot) {
  // Conflict window: the speculative payload was served from master state
  // somewhere between "all writes of steps < issued_during applied" and "all
  // writes of step issued_during applied" (the request raced only that
  // step's flushes on the FIFO master link). Any key a step in
  // [issued_during, step) overwrote may therefore be stale in the cache.
  std::map<DistArrayId, std::vector<i64>> conflicts;
  for (const auto& [array, keys] : slot.keys) {
    if (keys.empty()) {
      continue;
    }
    std::vector<i64> bad;
    for (int t = slot.issued_during; t < slot.step; ++t) {
      auto it = step_dirty_.find(t);
      if (it == step_dirty_.end()) {
        // No summary for an intervening step: assume everything conflicts
        // rather than trust a payload we cannot validate.
        bad = keys;
        break;
      }
      auto ait = it->second.arrays.find(array);
      if (ait == it->second.arrays.end()) {
        continue;  // summary present and silent about this array: clean
      }
      std::vector<i64> hit = ait->second.ConflictKeys(keys);
      bad.insert(bad.end(), hit.begin(), hit.end());
    }
    if (bad.empty()) {
      continue;
    }
    std::sort(bad.begin(), bad.end());
    bad.erase(std::unique(bad.begin(), bad.end()), bad.end());
    conflicts.emplace(array, std::move(bad));
  }
  if (conflicts.empty()) {
    return;  // validated clean: the speculation was a pure win
  }
  ++spec_conflicts_;
  // Partial repair: re-fetch only the conflicting keys, synchronously (the
  // barrier for step-1 has passed, so the master now serves exactly what a
  // synchronous fetch would read), and overwrite-install them over the
  // speculative payload. kOverwrite never deletes cells, so every stale key
  // the master holds comes back.
  ORION_TRACE_SPAN(kExecutor, "spec_wait");
  Stopwatch sw;
  PrefetchSlot repair;
  repair.step = slot.step;
  for (auto& [array, keys] : conflicts) {
    const ArrayState& st = GetArray(array);
    repair.buffers.emplace(array,
                           CellStore(st.meta.value_dim, CellStore::Layout::kHashed, 0));
    ParamRequest req{array, slot.step, std::move(keys)};
    Message m;
    m.from = rank_;
    m.to = kMasterRank;
    m.kind = MsgKind::kParamRequest;
    AttachParamRequest(&m, std::move(req), fabric_->zero_copy());
    SendData(std::move(m));
    ++repair.expected;
  }
  repair.outstanding = repair.expected;
  prefetch_ring_.push_front(std::move(repair));
  PublishRingFill();
  while (prefetch_ring_.front().outstanding > 0) {
    Message msg = WaitFor([](const Message& m) { return m.kind == MsgKind::kParamReply; });
    Dispatch(msg);
  }
  PrefetchSlot done = std::move(prefetch_ring_.front());
  prefetch_ring_.pop_front();
  PublishRingFill();
  for (auto& [array, cells] : done.buffers) {
    spec_repair_bytes_ += cells.SerializedBytes();
    ArrayState& st = GetArray(array);
    const size_t dim = static_cast<size_t>(st.meta.value_dim);
    cells.ForEachConstFast([&](i64 key, const f32* v) {
      simd::CopyF32(st.prefetch_cache.GetOrCreate(key), v, dim);
    });
  }
  spec_wait_seconds_ += sw.ElapsedSeconds();
}

// Applies pending buffered updates whose targets this worker currently
// owns (range partitions and the resident rotated partition).
void Executor::ApplyLocalBuffers(const CompiledLoop& cl, int tau) {
  for (auto& [target, buf] : buffers_) {
    if (buf->NumPending() == 0) {
      continue;
    }
    auto pit = cl.plan.placements.find(target);
    if (pit == cl.plan.placements.end()) {
      continue;
    }
    ArrayState& st = GetArray(target);
    if (pit->second.scheme == PartitionScheme::kRange) {
      CellStore updates = buf->Drain();
      DistArrayBuffer::ApplyTo(&st.range_store, updates, buf->apply_fn());
    } else if (pit->second.scheme == PartitionScheme::kSpaceTime) {
      CellStore updates = buf->Drain();
      auto it = st.parts.find(tau);
      ORION_CHECK(it != st.parts.end()) << "buffered update to a non-resident rotated part";
      DistArrayBuffer::ApplyTo(&it->second, updates, buf->apply_fn());
    }
  }
}

void Executor::StepFlush(const CompiledLoop& cl, int tau, int step) {
  ORION_TRACE_SPAN(kExecutor, "step_flush");
  // Flush unbuffered server writes (wavefront loops) as overwrites.
  for (const auto& [array, placement] : cl.plan.placements) {
    if (placement.scheme != PartitionScheme::kServer) {
      continue;
    }
    ArrayState& st = GetArray(array);
    if (st.server_dirty.NumCells() == 0) {
      continue;
    }
    PartData pd;
    pd.array = array;
    pd.part = -1;
    pd.mode = PartDataMode::kOverwrite;
    pd.cells = std::move(st.server_dirty);
    st.server_dirty = CellStore(st.meta.value_dim, CellStore::Layout::kHashed, 0);
    Message m;
    m.from = rank_;
    m.to = kMasterRank;
    m.kind = MsgKind::kParamUpdate;
    m.tag = static_cast<u32>(step);
    AttachPart(&m, std::move(pd), fabric_->zero_copy());
    SendData(std::move(m));
  }

  // Flush buffered writes whose targets are locally applicable or replicated.
  for (auto& [target, buf] : buffers_) {
    if (buf->NumPending() == 0) {
      continue;
    }
    auto pit = cl.plan.placements.find(target);
    if (pit == cl.plan.placements.end()) {
      continue;  // buffer targets an array not in this loop
    }
    ArrayState& st = GetArray(target);
    switch (pit->second.scheme) {
      case PartitionScheme::kRange: {
        CellStore updates = buf->Drain();
        DistArrayBuffer::ApplyTo(&st.range_store, updates, buf->apply_fn());
        break;
      }
      case PartitionScheme::kSpaceTime: {
        CellStore updates = buf->Drain();
        auto it = st.parts.find(tau);
        ORION_CHECK(it != st.parts.end()) << "buffered update to a non-resident rotated part";
        DistArrayBuffer::ApplyTo(&it->second, updates, buf->apply_fn());
        break;
      }
      case PartitionScheme::kReplicated: {
        // Already applied locally at BufferUpdate time; ship the delta.
        PartData pd;
        pd.array = target;
        pd.part = -1;
        pd.mode = PartDataMode::kApplyBufferUdf;
        pd.cells = buf->Drain();
        Message m;
        m.from = rank_;
        m.to = kMasterRank;
        m.kind = MsgKind::kParamUpdate;
        m.tag = static_cast<u32>(step);
        AttachPart(&m, std::move(pd), fabric_->zero_copy());
        SendData(std::move(m));
        break;
      }
      case PartitionScheme::kServer:
        break;  // flushed once per pass in PassEndFlush
      default:
        ORION_CHECK(false) << "buffered update to iteration space";
    }
  }
}

void Executor::PassEndFlush(const CompiledLoop& cl) { FlushServerBuffers(cl); }

// Ships buffered updates whose targets are server-hosted. Called once per
// pass by default, or once per sync round for chunked 1D loops (bounded
// buffering delay, paper Sec. 3.3).
void Executor::FlushServerBuffers(const CompiledLoop& cl) {
  for (auto& [target, buf] : buffers_) {
    if (buf->NumPending() == 0) {
      continue;
    }
    auto pit = cl.plan.placements.find(target);
    if (pit == cl.plan.placements.end() ||
        pit->second.scheme != PartitionScheme::kServer) {
      continue;
    }
    PartData pd;
    pd.array = target;
    pd.part = -1;
    pd.mode = PartDataMode::kApplyBufferUdf;
    pd.cells = buf->Drain();
    Message m;
    m.from = rank_;
    m.to = kMasterRank;
    m.kind = MsgKind::kParamUpdate;
    AttachPart(&m, std::move(pd), fabric_->zero_copy());
    SendData(std::move(m));
  }
}

void Executor::SendRotatedParts(const CompiledLoop& cl, int tau) {
  ORION_TRACE_SPAN(kExecutor, "rotation_send");
  WorkerId dest;
  if (cl.UsesWavefront()) {
    dest = cl.sched_wave.SendTo(logical_rank_);
  } else {
    dest = cl.sched_rot.SendTo(logical_rank_);
  }
  dest = Physical(dest);
  for (const auto& [array, placement] : cl.plan.placements) {
    if (placement.scheme != PartitionScheme::kSpaceTime) {
      continue;
    }
    ArrayState& st = GetArray(array);
    auto it = st.parts.find(tau);
    ORION_CHECK(it != st.parts.end()) << "rotated part" << tau << "vanished";
    if (dest == kMasterRank && !cl.UsesWavefront()) {
      continue;  // single worker: the part simply stays resident
    }
    PartData pd;
    pd.array = array;
    pd.part = tau;
    pd.mode = PartDataMode::kInstallPart;
    pd.cells = std::move(it->second);
    st.parts.erase(it);
    Message m;
    m.from = rank_;
    m.to = dest;
    m.kind = MsgKind::kPartitionData;
    m.tag = PartTag(tau);
    AttachPart(&m, std::move(pd), fabric_->zero_copy());
    SendData(std::move(m));
  }
}

void Executor::DrainReturningParts(const CompiledLoop& cl) {
  // Unordered rotation: the last `pipeline_depth` partitions of each rotated
  // array are still in flight back to their initial owners; pull them in so
  // the next pass starts with the initial residency.
  if (cl.num_workers == 1) {
    return;
  }
  ORION_TRACE_SPAN(kExecutor, "drain_returning");
  for (const auto& [array, placement] : cl.plan.placements) {
    if (placement.scheme != PartitionScheme::kSpaceTime) {
      continue;
    }
    ArrayState& st = GetArray(array);
    for (int tau = 0; tau < cl.sched_rot.num_time_parts(); ++tau) {
      if (cl.sched_rot.InitialOwner(tau) != logical_rank_) {
        continue;
      }
      while (st.parts.count(tau) == 0) {
        Message msg =
            WaitFor([](const Message& m) { return m.kind == MsgKind::kPartitionData; });
        Dispatch(msg);
      }
    }
  }
}

void Executor::RunPass(i32 loop_id, i32 pass, int depth_override, int spec_depth) {
  current_pass_ = pass;
  trace::SetThreadRank(logical_rank_);
  trace::SetThreadPass(pass);
  trace::SetThreadStep(-1);
  const i64 trace_pass_start_ns = trace::Enabled() ? trace::NowNs() : 0;
  MaybeCrash(pass, -1);
  auto cl = dir_->GetLoop(loop_id);
  accum_ops_ = dir_->accumulator_ops();
  accum_.resize(accum_ops_.size());
  for (size_t i = 0; i < accum_.size(); ++i) {
    accum_[i] = AccumIdentity(accum_ops_[i]);
  }
  compute_seconds_ = 0.0;
  wait_seconds_ = 0.0;
  prefetch_hidden_seconds_ = 0.0;
  prefetch_ring_.clear();
  PublishRingFill();
  ring_depth_used_ = 0;
  reply_wait_ = WaitHistogram{};
  step_dirty_.clear();
  spec_depth_ = spec_depth;
  spec_issued_ = 0;
  spec_conflicts_ = 0;
  spec_repair_bytes_ = 0;
  spec_hidden_seconds_ = 0.0;
  spec_wait_seconds_ = 0.0;
  overlap_ = cl->options.overlap;
  sender_busy_at_pass_start_ = sender_.busy_seconds();

  bool has_server = false;
  for (const auto& [array, placement] : cl->plan.placements) {
    if (placement.scheme == PartitionScheme::kServer) {
      has_server = true;
    }
  }

  if (!cl->Is2D() && cl->options.server_sync_rounds > 1) {
    // Chunked 1D pass: bounded buffering delay. Each round prefetches fresh
    // server values, executes a slice of the local iterations, and flushes
    // buffered updates so other workers' next rounds observe them. Rounds
    // are never pipelined: round r+1's prefetch must observe round r's
    // flushes, so issue and await stay back to back (the master-bound link
    // is FIFO, so the request queued behind the flushes reads fresh state).
    // With the versioned master store these requests are served from a
    // snapshot pinned at dequeue time — same bytes, but the gather copies
    // run on the server pool outside any stripe lock. Cross-round prefetch
    // stays illegal regardless: the snapshot for round r+1 must be pinned
    // *after* round r's flushes are applied.
    const int rounds = cl->options.server_sync_rounds;
    for (int round = 0; round < rounds; ++round) {
      trace::SetThreadStep(round);
      MaybeCrash(pass, round);
      MaybeStraggle(pass);
      DrainInbox();
      if (has_server) {
        IssuePrefetch(*cl, -1, round, round, rounds);
        AwaitPrefetch(*cl, round);
      }
      ExecuteCells(*cl, -1, round, rounds);
      StepFlush(*cl, -1, round);
      FlushServerBuffers(*cl);
    }
  } else {
    const int steps = cl->NumSteps();
    // Pipelined prefetch is only legal for unordered rotation schedules: the
    // master's server state is pass-constant there (buffered server updates
    // apply at pass end), so fetching step t+1 before or after computing
    // step t reads identical values. Wavefront/lockstep loops flush server
    // overwrites every step that the *next* step must observe, so they keep
    // the synchronous issue-await pairing.
    const bool pipelined = overlap_ && has_server && cl->UsesRotation();
    // Speculative prefetch for ordered schedules: the master shipped a
    // non-zero spec depth (the loop opted in and the controller has not
    // disabled it), the loop barriers every step, and the overlap engine is
    // on so the early requests ride the comm thread.
    const bool speculating =
        spec_depth_ > 0 && overlap_ && has_server && cl->NeedsStepBarrier();
    const int static_depth =
        depth_override > 0 ? depth_override : cl->options.prefetch_depth;
    const int depth = pipelined ? std::max(1, static_depth) : 1;
    // Next step at which this worker executes a block (-1 when none): the
    // step the early issue targets.
    auto next_active = [&](int after) {
      for (int s = after + 1; s < steps; ++s) {
        if (cl->TimePartAt(logical_rank_, s) >= 0) {
          return s;
        }
      }
      return -1;
    };
    // Deepest step a prefetch has been issued for; the deep/shallow issues
    // below always extend from here so the ring stays in step order.
    int issued_through = -1;
    // Speculative deep issue: fetch upcoming steps' server reads against the
    // master's current state before this step's writes land. Unlike the
    // rotation pipeline below, server state is NOT pass-constant here —
    // wavefront/lockstep steps flush overwrites mid-pass — so each slot
    // records what it asked for and AwaitPrefetch validates the payload
    // against the dirty-range summaries carried by the intervening barrier
    // releases, re-fetching only conflicting keys. Runs on idle fill steps
    // too: a worker that has not entered the wavefront yet still barriers
    // every step, so its first block's fetch can ride ahead under the same
    // validation window instead of gating its entry step.
    auto speculative_issue = [&](int step) {
      while (static_cast<int>(prefetch_ring_.size()) < spec_depth_) {
        const int nstep = next_active(issued_through);
        if (nstep < 0 || !CanIssueEarly(*cl, nstep)) {
          break;
        }
        IssuePrefetch(*cl, cl->TimePartAt(logical_rank_, nstep), nstep, 0, 1,
                      /*speculative=*/true, /*issued_during=*/step);
        issued_through = nstep;
        ++spec_issued_;
      }
    };
    for (int step = 0; step < steps; ++step) {
      trace::SetThreadStep(step);
      MaybeCrash(pass, step);
      MaybeStraggle(pass);
      DrainInbox();
      const int tau = cl->Is2D() ? cl->TimePartAt(logical_rank_, step) : -1;
      const bool active = !cl->Is2D() || tau >= 0;
      if (active) {
        for (const auto& [array, placement] : cl->plan.placements) {
          if (placement.scheme == PartitionScheme::kSpaceTime) {
            WaitForPart(array, tau);
          }
        }
        if (has_server) {
          if (prefetch_ring_.empty()) {
            IssuePrefetch(*cl, tau, step, 0, 1);
            issued_through = step;
          }
          AwaitPrefetch(*cl, step);
          if (speculating) {
            speculative_issue(step);
          }
          if (pipelined) {
            // Deep issue: key lists for upcoming steps that don't depend on
            // local mutable state (synthesized program or warm cache) go out
            // before compute, hiding up to `depth` round trips under the
            // kernels. Legal at any depth: rotation-loop server state is
            // pass-constant, so step t+k reads the same values whenever it
            // is fetched.
            while (static_cast<int>(prefetch_ring_.size()) < depth) {
              const int nstep = next_active(issued_through);
              if (nstep < 0 || !CanIssueEarly(*cl, nstep)) {
                break;
              }
              IssuePrefetch(*cl, cl->TimePartAt(logical_rank_, nstep), nstep, 0, 1);
              issued_through = nstep;
            }
          }
        }
        ExecuteCells(*cl, tau, 0, 1);
        StepFlush(*cl, tau, step);
        if (cl->Is2D() && !cl->UsesLockstep()) {
          SendRotatedParts(*cl, tau);
        }
        if (pipelined && prefetch_ring_.empty()) {
          // Shallow issue: kernel-replay recording needs step t+1's rotated
          // partitions resident (replay reads them, and resolving would
          // otherwise plant empty placeholder parts that fool WaitForPart).
          // When they already arrived, the request still overlaps the tail
          // of this step and the next step's wait.
          const int nstep = next_active(issued_through);
          if (nstep >= 0) {
            const int ntau = cl->TimePartAt(logical_rank_, nstep);
            DrainInbox();
            bool parts_ready = true;
            for (const auto& [array, placement] : cl->plan.placements) {
              if (placement.scheme == PartitionScheme::kSpaceTime &&
                  GetArray(array).parts.count(ntau) == 0) {
                parts_ready = false;
                break;
              }
            }
            if (parts_ready) {
              IssuePrefetch(*cl, ntau, nstep, 0, 1);
              issued_through = nstep;
            }
          }
        }
      } else if (speculating && has_server) {
        // Idle fill/drain step: no block to run, but the barrier still
        // synchronizes us with the frontier, so pipeline the upcoming
        // entry blocks' fetches now.
        speculative_issue(step);
      }
      if (cl->NeedsStepBarrier()) {
        Barrier(pass, step);
      }
    }
  }
  if (cl->UsesRotation()) {
    DrainReturningParts(*cl);
  }
  PassEndFlush(*cl);

  // Quiesce the comm thread before reporting: the master treats PassDone as
  // "all of this worker's pass traffic is in", and the direct send below
  // must not overtake queued updates on the master-bound link.
  sender_.Flush();
  overlap_ = false;

  PassDone done;
  done.loop_id = loop_id;
  done.pass = pass;
  done.compute_seconds = compute_seconds_;
  done.wait_seconds = wait_seconds_;
  done.overlap_send_seconds = sender_.busy_seconds() - sender_busy_at_pass_start_;
  done.prefetch_hidden_seconds = prefetch_hidden_seconds_;
  done.prefetch_ring_depth_used = ring_depth_used_;
  done.reply_wait = reply_wait_;
  done.accumulators = accum_;
  done.spec_issued = spec_issued_;
  done.spec_conflicts = spec_conflicts_;
  done.spec_repair_bytes = spec_repair_bytes_;
  done.spec_hidden_seconds = spec_hidden_seconds_;
  done.spec_wait_seconds = spec_wait_seconds_;
  if (trace::Enabled()) {
    // Close the pass span, then ship everything this rank recorded (the
    // sender lane is quiesced by the Flush above, so its spans are in).
    trace::SetThreadStep(-1);
    trace::Emit(trace::Category::kExecutor, "pass", trace_pass_start_ns, trace::NowNs());
    done.spans = trace::DrainRank(logical_rank_);
    if (rank_ != logical_rank_) {
      // Post-recovery the sender lane keeps its physical-rank tag.
      std::vector<trace::Span> extra = trace::DrainRank(rank_);
      done.spans.insert(done.spans.end(), extra.begin(), extra.end());
    }
  }
  Message m;
  m.from = rank_;
  m.to = kMasterRank;
  m.kind = MsgKind::kControl;
  m.payload = done.Encode();
  cached_pass_done_ = m;  // re-answer if the master retransmits kStartPass
  last_completed_pass_ = pass;
  current_pass_ = -1;
  fabric_->Send(std::move(m));
}

void Executor::HandleGather(DistArrayId array) {
  ArrayState& st = GetArray(array);
  CellStore merged(st.meta.value_dim, CellStore::Layout::kHashed, 0);
  merged.MergeAdd(st.range_store);
  for (const auto& [tau, cells] : st.parts) {
    merged.MergeAdd(cells);
  }
  PartData pd;
  pd.array = array;
  pd.part = -1;
  pd.mode = PartDataMode::kOverwrite;
  pd.cells = std::move(merged);
  Message m;
  m.from = rank_;
  m.to = kMasterRank;
  m.kind = MsgKind::kParamUpdate;
  AttachPart(&m, std::move(pd), fabric_->zero_copy());
  fabric_->Send(std::move(m));  // between passes: the comm thread is idle
  DropArray(array);
}

void Executor::DropArray(DistArrayId array) {
  arrays_.erase(array);
  // Invalidate only the cached prefetch key lists this drop can stale: those
  // naming the dropped array, and those of loops that recorded their keys
  // from it as the iteration space (a re-scattered iteration space may carry
  // different records). Lists for unrelated arrays stay warm.
  for (auto it = prefetch_key_cache_.begin(); it != prefetch_key_cache_.end();) {
    const auto& [loop_id, step, cached_array] = it->first;
    (void)step;
    if (cached_array == array || dir_->GetLoop(loop_id)->spec.iter_space == array) {
      it = prefetch_key_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace orion
