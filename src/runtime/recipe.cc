#include "src/runtime/recipe.h"

#include <cstdlib>
#include <sstream>

namespace orion {

LineParser MakeDelimitedParser(int num_dims, i32 value_dim) {
  return [num_dims, value_dim](const std::string& line, IndexVec* idx,
                               std::vector<f32>* value) {
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      return false;
    }
    // Accept spaces, tabs, or commas as separators.
    std::string normalized = line;
    for (char& c : normalized) {
      if (c == ',' || c == '\t') {
        c = ' ';
      }
    }
    std::istringstream in(normalized);
    idx->clear();
    value->clear();
    for (int d = 0; d < num_dims; ++d) {
      i64 coord;
      if (!(in >> coord)) {
        return false;
      }
      idx->push_back(coord);
    }
    for (i32 v = 0; v < value_dim; ++v) {
      f32 x;
      if (!(in >> x)) {
        return false;
      }
      value->push_back(x);
    }
    return true;
  };
}

}  // namespace orion
