// Lazily-evaluated DistArray construction (paper Sec. 3.1).
//
// Like Orion's Julia API, a DistArray can be built from a text file through
// a user-defined parser, transformed with `map` operations, and only
// evaluated when the driver calls Materialize. Because the recipe is a
// recorded chain, materialization fuses the parser and every map into one
// pass over the input — no intermediate DistArray is allocated. Set
// operations that shuffle (GroupByDim) are evaluated eagerly, exactly as
// the paper chooses for simplicity.
#ifndef ORION_SRC_RUNTIME_RECIPE_H_
#define ORION_SRC_RUNTIME_RECIPE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace orion {

// Parses one input line into (index, value); returns false to skip the line
// (comments, headers, malformed records).
using LineParser =
    std::function<bool(const std::string& line, IndexVec* idx, std::vector<f32>* value)>;

// A fused transformation stage: may rewrite the index and/or the value of a
// record in place.
using RecordMap = std::function<void(IndexVec* idx, std::vector<f32>* value)>;

class ArrayRecipe {
 public:
  // Records: load from a text file through `parser`.
  static ArrayRecipe TextFile(std::string path, LineParser parser) {
    ArrayRecipe r;
    r.path_ = std::move(path);
    r.parser_ = std::move(parser);
    return r;
  }

  // Records a map stage (fused into the materialization pass).
  ArrayRecipe&& Map(RecordMap fn) && {
    maps_.push_back(std::move(fn));
    return std::move(*this);
  }

  // Convenience: map over values only (paper's map_values=true).
  ArrayRecipe&& MapValues(std::function<void(std::vector<f32>*)> fn) && {
    maps_.push_back([fn = std::move(fn)](IndexVec*, std::vector<f32>* value) { fn(value); });
    return std::move(*this);
  }

  const std::string& path() const { return path_; }
  const LineParser& parser() const { return parser_; }
  const std::vector<RecordMap>& maps() const { return maps_; }

 private:
  std::string path_;
  LineParser parser_;
  std::vector<RecordMap> maps_;
};

// A ready-made parser for whitespace/comma-separated "i j [k ...] value"
// records with `num_dims` leading integer coordinates followed by
// `value_dim` floats. Lines starting with '#' or '%' are skipped.
LineParser MakeDelimitedParser(int num_dims, i32 value_dim);

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_RECIPE_H_
