// Dirty-range summaries for the speculative prefetch engine.
//
// Ordered (wavefront/lockstep) schedules flush their kServer writes as
// kOverwrite updates every step, so the master knows exactly which keys step
// t overwrote. A bounded over-approximation of that set — per-array sorted
// disjoint key ranges, with an "all dirty" fallback when even the ranges
// would blow a size cap — rides on the step-t barrier release. An executor
// that fetched step s's parameters speculatively (from a snapshot pinned
// while an earlier step still ran) intersects its fetched key lists with the
// union of these summaries over the conflict window and re-fetches only the
// intersecting keys. Over-approximation is always safe: a false positive
// just repairs a key that did not change.
#ifndef ORION_SRC_RUNTIME_SPECULATION_H_
#define ORION_SRC_RUNTIME_SPECULATION_H_

#include <map>
#include <utility>
#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"

namespace orion {

// The keys one step overwrote in one server-hosted array, compressed to
// sorted disjoint inclusive [lo, hi] ranges. Bounded: at most kMaxRanges
// ranges survive (nearest neighbors merge first), and a pathological insert
// (more than kAllDirtyThreshold raw intervals) degrades to all_dirty.
struct ArrayDirtyRanges {
  static constexpr size_t kMaxRanges = 64;
  static constexpr size_t kAllDirtyThreshold = 1024;

  bool all_dirty = false;
  std::vector<std::pair<i64, i64>> ranges;  // sorted, disjoint, inclusive

  bool empty() const { return !all_dirty && ranges.empty(); }

  // Folds `keys` (any order, duplicates fine) into the range set, coalescing
  // adjacent keys and enforcing the bounds above.
  void AddKeys(std::vector<i64> keys);

  bool Contains(i64 key) const;

  // Intersection with a sorted, deduplicated key list. all_dirty returns the
  // whole list.
  std::vector<i64> ConflictKeys(const std::vector<i64>& sorted_keys) const;

  void Serialize(ByteWriter* w) const;
  static ArrayDirtyRanges Deserialize(ByteReader* r);
};

// What one step overwrote across every server-hosted array it touched.
struct StepDirtySummary {
  std::map<DistArrayId, ArrayDirtyRanges> arrays;

  bool empty() const { return arrays.empty(); }
  void AddKeys(DistArrayId array, std::vector<i64> keys);

  void Serialize(ByteWriter* w) const;
  static StepDirtySummary Deserialize(ByteReader* r);
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_SPECULATION_H_
