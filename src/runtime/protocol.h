// Wire protocol between the master (driver) and executors.
//
// Every payload is serialized with ByteWriter/ByteReader; the structs here
// are the typed views. Control messages carry a leading ControlOp.
#ifndef ORION_SRC_RUNTIME_PROTOCOL_H_
#define ORION_SRC_RUNTIME_PROTOCOL_H_

#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/dsm/cell_store.h"
#include "src/net/message.h"
#include "src/runtime/metrics.h"
#include "src/runtime/speculation.h"

namespace orion {

enum class ControlOp : u16 {
  kStartPass = 1,    // master -> worker: run one pass of a compiled loop
  kPassDone = 2,     // worker -> master: pass finished (+ accumulators)
  kGather = 3,       // master -> worker: ship array cells back, drop them
  kDropArray = 4,    // master -> worker: drop local cells of an array
  kStepBarrier = 5,  // worker -> master: wavefront step done
  kStepGo = 6,       // master -> worker: proceed to next wavefront step
  kHeartbeat = 7,    // master <-> worker: liveness ping / pong
  kRetire = 8,       // master -> worker: adopt post-failure configuration
  kRejoin = 9,       // master -> worker: adopt re-expanded configuration
};

struct StartPass {
  i32 loop_id = 0;
  i32 pass = 0;
  // Effective prefetch-ring depth for this pass, chosen by the driver's
  // adaptive controller. 0 = use the loop's static option. Serialized last
  // so older decoders simply stop before it.
  i32 prefetch_depth = 0;
  // Speculation depth for ordered schedules: how many steps ahead the
  // executor may fetch parameters speculatively. 0 = synchronous fetch
  // (speculation off, or the controller disabled it). Trailing like
  // prefetch_depth.
  i32 spec_depth = 0;

  std::vector<u8> Encode() const {
    ByteWriter w(sizeof(u16) + 4 * sizeof(i32));
    w.Put<u16>(static_cast<u16>(ControlOp::kStartPass));
    w.Put<i32>(loop_id);
    w.Put<i32>(pass);
    w.Put<i32>(prefetch_depth);
    w.Put<i32>(spec_depth);
    return w.Take();
  }
};

struct PassDone {
  i32 loop_id = 0;
  i32 pass = 0;
  double compute_seconds = 0.0;
  double wait_seconds = 0.0;
  // Comm/compute overlap engine: wall time the worker's comm thread spent
  // sending during the pass (hidden from the compute thread), and wall time
  // pipelined prefetches were in flight under compute (waits that collapsed
  // to a buffer swap because the replies had already arrived).
  double overlap_send_seconds = 0.0;
  double prefetch_hidden_seconds = 0.0;
  // Depth-k prefetch ring: the deepest this worker's ring got during the
  // pass, and the histogram of its blocking reply waits.
  i32 prefetch_ring_depth_used = 0;
  WaitHistogram reply_wait;
  std::vector<f64> accumulators;
  // Span tracer piggyback: the worker's drained spans (empty when tracing
  // is disabled). Serialized last so older decoders simply stop before it.
  std::vector<trace::Span> spans;
  // Speculative prefetch engine (ordered schedules): slots issued early,
  // slots that needed repair, repair bytes re-fetched, in-flight time hidden
  // under compute, and blocked wait (initial await + repair round trips).
  // Trailing after the spans; decoders AtEnd-guard them.
  u32 spec_issued = 0;
  u32 spec_conflicts = 0;
  u64 spec_repair_bytes = 0;
  double spec_hidden_seconds = 0.0;
  double spec_wait_seconds = 0.0;

  std::vector<u8> Encode() const {
    // Fixed fields plus the accumulator vector; the histogram and spans
    // grow the buffer amortized if present.
    ByteWriter w(sizeof(u16) + 3 * sizeof(i32) + 4 * sizeof(double) + sizeof(u64) +
                 accumulators.size() * sizeof(f64) + 64);
    w.Put<u16>(static_cast<u16>(ControlOp::kPassDone));
    w.Put<i32>(loop_id);
    w.Put<i32>(pass);
    w.Put<double>(compute_seconds);
    w.Put<double>(wait_seconds);
    w.Put<double>(overlap_send_seconds);
    w.Put<double>(prefetch_hidden_seconds);
    w.Put<i32>(prefetch_ring_depth_used);
    reply_wait.Serialize(&w);
    w.PutVec(accumulators);
    trace::SerializeSpans(spans, &w);
    w.Put<u32>(spec_issued);
    w.Put<u32>(spec_conflicts);
    w.Put<u64>(spec_repair_bytes);
    w.Put<double>(spec_hidden_seconds);
    w.Put<double>(spec_wait_seconds);
    return w.Take();
  }
};

// Liveness probe. The master pings workers it has not heard from recently;
// a worker answers with is_reply = true and its progress watermarks so the
// master can tell "alive but slow" from "dead".
struct Heartbeat {
  bool is_reply = false;
  u32 seq = 0;
  i32 last_started_pass = -1;
  i32 last_completed_pass = -1;

  std::vector<u8> Encode() const {
    ByteWriter w(sizeof(u16) + sizeof(u8) + sizeof(u32) + 2 * sizeof(i32));
    w.Put<u16>(static_cast<u16>(ControlOp::kHeartbeat));
    w.Put<u8>(is_reply ? 1 : 0);
    w.Put<u32>(seq);
    w.Put<i32>(last_started_pass);
    w.Put<i32>(last_completed_pass);
    return w.Take();
  }

  static Heartbeat Decode(const std::vector<u8>& payload) {
    ByteReader r(payload);
    r.Get<u16>();  // op
    Heartbeat h;
    h.is_reply = r.Get<u8>() != 0;
    h.seq = r.Get<u32>();
    h.last_started_pass = r.Get<i32>();
    h.last_completed_pass = r.Get<i32>();
    return h;
  }
};

// Cluster reconfiguration, delivered reliably in two phases (both acked
// with is_ack = true). Phase 0: adopt the new logical rank and ring of
// member physical ranks — after every ack, no pre-reconfiguration message
// can still be produced. Phase 1: drop all local DistArray state and loop
// caches so the driver can re-scatter from the checkpoint.
//
// Two ops share this shape: kRetire shrinks the ring after a failure, and
// kRejoin re-expands it when a recovered rank re-enters (or resets the
// current ring for a point-in-time restore). Acks echo the request's op so
// a rejoin ack collection cannot be satisfied by a stale retire ack.
struct Retire {
  ControlOp op = ControlOp::kRetire;
  i32 phase = 0;
  bool is_ack = false;
  i32 logical_rank = 0;
  std::vector<i32> ring;  // member physical ranks, in logical order

  std::vector<u8> Encode() const {
    ByteWriter w(sizeof(u16) + 2 * sizeof(i32) + sizeof(u8) + sizeof(u64) +
                 ring.size() * sizeof(i32));
    w.Put<u16>(static_cast<u16>(op));
    w.Put<i32>(phase);
    w.Put<u8>(is_ack ? 1 : 0);
    w.Put<i32>(logical_rank);
    w.PutVec(ring);
    return w.Take();
  }

  static Retire Decode(const std::vector<u8>& payload) {
    ByteReader r(payload);
    Retire t;
    t.op = static_cast<ControlOp>(r.Get<u16>());
    t.phase = r.Get<i32>();
    t.is_ack = r.Get<u8>() != 0;
    t.logical_rank = r.Get<i32>();
    t.ring = r.GetVec<i32>();
    return t;
  }
};

// Payload of kBarrier messages. The pass number disambiguates retransmitted
// or delayed barrier traffic across passes (the tag alone carries only the
// step). `release` marks the master -> worker "go" broadcast.
//
// Two optional trailing sections (section-mask framed, AtEnd-guarded so the
// bare two-field form stays decodable):
//   bit 0 — releases while speculation is on carry the dirty-range summary
//           of the kOverwrite writes flushed during this step (present even
//           when empty: "present and empty" proves nothing changed, where
//           absence would force the validator to assume everything did).
//   bit 1 — arrivals piggyback a partial trace-ring drain when the worker's
//           span ring ran >75% full mid-pass, so long wavefront passes stop
//           wrapping rings before PassDone. `span_seq` is a per-worker
//           monotonic batch id: supervision resends ship the same batch and
//           the master appends each batch once.
struct BarrierMsg {
  i32 pass = 0;
  bool release = false;
  bool has_dirty = false;
  StepDirtySummary dirty;
  u32 span_seq = 0;
  std::vector<trace::Span> spans;

  std::vector<u8> Encode() const {
    ByteWriter w(sizeof(i32) + 2 * sizeof(u8));
    w.Put<i32>(pass);
    w.Put<u8>(release ? 1 : 0);
    const u8 mask =
        static_cast<u8>((has_dirty ? 1 : 0) | (spans.empty() ? 0 : 2));
    w.Put<u8>(mask);
    if (has_dirty) {
      dirty.Serialize(&w);
    }
    if (!spans.empty()) {
      w.Put<u32>(span_seq);
      trace::SerializeSpans(spans, &w);
    }
    return w.Take();
  }

  static BarrierMsg Decode(const std::vector<u8>& payload) {
    ByteReader r(payload);
    BarrierMsg b;
    b.pass = r.Get<i32>();
    b.release = r.Get<u8>() != 0;
    if (r.AtEnd()) {
      return b;
    }
    const u8 mask = r.Get<u8>();
    if ((mask & 1) != 0) {
      b.has_dirty = true;
      b.dirty = StepDirtySummary::Deserialize(&r);
    }
    if ((mask & 2) != 0) {
      b.span_seq = r.Get<u32>();
      b.spans = trace::DeserializeSpans(&r);
    }
    return b;
  }
};

// Header for kPartitionData messages: a chunk of DistArray cells.
// `part` is the time-partition index for rotated partitions, -1 otherwise.
enum class PartDataMode : u8 {
  kInstallPart = 0,    // install into the receiver's partition map [part]
  kInstallRange = 1,   // install as the receiver's range-partition cells
  kOverwrite = 2,      // master-side: overwrite authoritative cells
  kApplyAdd = 3,       // apply as additive deltas
  kApplyBufferUdf = 4, // apply with the registered buffer UDF
  kReplicaSnapshot = 5,// full replicated-array refresh
};

struct PartData {
  DistArrayId array = kInvalidDistArrayId;
  i32 part = -1;
  PartDataMode mode = PartDataMode::kInstallPart;
  CellStore cells;

  std::vector<u8> Encode() const {
    ByteWriter w(EncodedSize());
    w.Put<i32>(array);
    w.Put<i32>(part);
    w.Put<u8>(static_cast<u8>(mode));
    cells.Serialize(&w);
    return w.Take();
  }

  static PartData Decode(const std::vector<u8>& payload) {
    ByteReader r(payload);
    PartData p;
    p.array = r.Get<i32>();
    p.part = r.Get<i32>();
    p.mode = static_cast<PartDataMode>(r.Get<u8>());
    p.cells = CellStore::Deserialize(&r);
    return p;
  }

  // Exact size Encode() would produce; the fabric meters this when the
  // message travels zero-copy.
  size_t EncodedSize() const {
    return sizeof(i32) + sizeof(i32) + sizeof(u8) + cells.SerializedBytes();
  }
};

// Zero-copy carrier for PartData (kPartitionData / kParamReply /
// kParamUpdate): the struct travels by shared pointer, skipping
// Encode/Decode, while the fabric still charges the exact encoded size.
struct ZeroCopyPart final : ZeroCopyPayload {
  PartData pd;
  // Set by broadcast senders that hand one carrier to several receivers.
  // Receivers of a multi-reader part must always copy: deciding move-vs-copy
  // from use_count() would race, because another receiver's copy-then-release
  // is not synchronized-with a relaxed refcount load observing count == 1.
  bool multi_reader = false;
  size_t EncodedSize() const override { return pd.EncodedSize(); }
};

// Packs `pd` into `m`: by reference when the fabric's zero-copy fast path is
// on, serialized otherwise.
inline void AttachPart(Message* m, PartData pd, bool zero_copy) {
  if (zero_copy) {
    auto z = std::make_shared<ZeroCopyPart>();
    z->pd = std::move(pd);
    m->zc = std::move(z);
  } else {
    m->payload = pd.Encode();
  }
}

// Unpacks a PartData from either representation. A multi-reader payload
// (replica broadcast) is always copied — concurrent receivers may be reading
// it. A single-reader one is moved out when uniquely owned; the use_count()
// check only guards same-queue duplicates, which the one receiver thread
// consumes sequentially, so no concurrent access is possible there.
inline PartData TakePart(Message& m) {
  if (m.zc != nullptr) {
    auto* z = static_cast<ZeroCopyPart*>(m.zc.get());
    PartData out = (!z->multi_reader && m.zc.use_count() == 1) ? std::move(z->pd)
                                                               : PartData(z->pd);
    m.zc.reset();
    return out;
  }
  return PartData::Decode(m.payload);
}

// Bulk-prefetch request: the synthesized access-pattern pass's key list.
struct ParamRequest {
  DistArrayId array = kInvalidDistArrayId;
  i32 step = 0;
  std::vector<i64> keys;
  // Marks a coalesced kPerKey storm: the keys travel in one wire message but
  // the exchange is metered as keys.size() per-key request/reply pairs.
  bool per_key = false;
  // Marks a speculative fetch issued against a pinned snapshot while an
  // earlier step still runs; repair re-fetches after validation stay false.
  // Purely observational on the master (counted into spec.requests_served);
  // serving is identical either way.
  bool speculative = false;

  std::vector<u8> Encode() const {
    ByteWriter w(EncodedSize());
    w.Put<i32>(array);
    w.Put<i32>(step);
    w.Put<u8>(per_key ? 1 : 0);
    w.PutVec(keys);
    w.Put<u8>(speculative ? 1 : 0);
    return w.Take();
  }

  static ParamRequest Decode(const std::vector<u8>& payload) {
    ByteReader r(payload);
    ParamRequest p;
    p.array = r.Get<i32>();
    p.step = r.Get<i32>();
    p.per_key = r.Get<u8>() != 0;
    p.keys = r.GetVec<i64>();
    if (!r.AtEnd()) {
      p.speculative = r.Get<u8>() != 0;
    }
    return p;
  }

  // Exact size Encode() would produce; the fabric meters this when the
  // request travels zero-copy.
  size_t EncodedSize() const {
    return sizeof(i32) + sizeof(i32) + sizeof(u8) + sizeof(u64) +
           keys.size() * sizeof(i64) + sizeof(u8);
  }
};

// Zero-copy carrier for ParamRequest: in-process requests skip Encode/Decode
// just like replies, while the fabric still charges the exact encoded size.
struct ZeroCopyParamRequest final : ZeroCopyPayload {
  ParamRequest req;
  size_t EncodedSize() const override { return req.EncodedSize(); }
};

inline void AttachParamRequest(Message* m, ParamRequest req, bool zero_copy) {
  if (zero_copy) {
    auto z = std::make_shared<ZeroCopyParamRequest>();
    z->req = std::move(req);
    m->zc = std::move(z);
  } else {
    m->payload = req.Encode();
  }
}

inline ParamRequest TakeParamRequest(Message& m) {
  if (m.zc != nullptr) {
    auto* z = static_cast<ZeroCopyParamRequest*>(m.zc.get());
    ParamRequest out = m.zc.use_count() == 1 ? std::move(z->req) : z->req;
    m.zc.reset();
    return out;
  }
  return ParamRequest::Decode(m.payload);
}

// kPerKey cost modeling for a coalesced request: had the storm really been
// sent, each key would have been its own message — one transport header plus
// one single-key ParamRequest. Meter the batched message as that many
// latencies and the framing bytes of the (n - 1) messages it absorbed; the
// key payload bytes themselves are identical in both representations.
inline void MeterAsPerKeyRequests(Message* m, const ParamRequest& req) {
  const size_t n = req.keys.size();
  if (!req.per_key || n <= 1) {
    return;
  }
  // Each of the n-1 extra virtual messages repeats the header and the fixed
  // request fields; the keys themselves are already counted once in the real
  // coalesced payload, so the shell here is key-less.
  ParamRequest shell;
  shell.per_key = true;
  const size_t per_msg = Message::kHeaderBytes + shell.EncodedSize();
  m->meter_messages = static_cast<u32>(n);
  m->meter_extra_bytes = (n - 1) * per_msg;
}

// Same for the reply: per-key replies each carry a transport header plus an
// empty PartData shell (header + empty CellStore); the cell bytes of found
// keys are identical whether they travel in one reply or n.
inline void MeterAsPerKeyReplies(Message* m, size_t num_keys, i32 value_dim) {
  if (num_keys <= 1) {
    return;
  }
  PartData shell;
  shell.cells = CellStore(value_dim, CellStore::Layout::kHashed, 0);
  const size_t per_msg = Message::kHeaderBytes + shell.EncodedSize();
  m->meter_messages = static_cast<u32>(num_keys);
  m->meter_extra_bytes = (num_keys - 1) * per_msg;
}

// kGather / kDropArray control message.
struct ArrayOp {
  ControlOp op = ControlOp::kGather;
  DistArrayId array = kInvalidDistArrayId;

  std::vector<u8> Encode() const {
    ByteWriter w(sizeof(u16) + sizeof(i32));
    w.Put<u16>(static_cast<u16>(op));
    w.Put<i32>(array);
    return w.Take();
  }
};

inline ControlOp PeekControlOp(const std::vector<u8>& payload) {
  ByteReader r(payload);
  return static_cast<ControlOp>(r.Get<u16>());
}

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_PROTOCOL_H_
