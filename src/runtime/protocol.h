// Wire protocol between the master (driver) and executors.
//
// Every payload is serialized with ByteWriter/ByteReader; the structs here
// are the typed views. Control messages carry a leading ControlOp.
#ifndef ORION_SRC_RUNTIME_PROTOCOL_H_
#define ORION_SRC_RUNTIME_PROTOCOL_H_

#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"
#include "src/dsm/cell_store.h"
#include "src/net/message.h"

namespace orion {

enum class ControlOp : u16 {
  kStartPass = 1,    // master -> worker: run one pass of a compiled loop
  kPassDone = 2,     // worker -> master: pass finished (+ accumulators)
  kGather = 3,       // master -> worker: ship array cells back, drop them
  kDropArray = 4,    // master -> worker: drop local cells of an array
  kStepBarrier = 5,  // worker -> master: wavefront step done
  kStepGo = 6,       // master -> worker: proceed to next wavefront step
};

struct StartPass {
  i32 loop_id = 0;
  i32 pass = 0;

  std::vector<u8> Encode() const {
    ByteWriter w;
    w.Put<u16>(static_cast<u16>(ControlOp::kStartPass));
    w.Put<i32>(loop_id);
    w.Put<i32>(pass);
    return w.Take();
  }
};

struct PassDone {
  i32 loop_id = 0;
  i32 pass = 0;
  double compute_seconds = 0.0;
  double wait_seconds = 0.0;
  std::vector<f64> accumulators;

  std::vector<u8> Encode() const {
    ByteWriter w;
    w.Put<u16>(static_cast<u16>(ControlOp::kPassDone));
    w.Put<i32>(loop_id);
    w.Put<i32>(pass);
    w.Put<double>(compute_seconds);
    w.Put<double>(wait_seconds);
    w.PutVec(accumulators);
    return w.Take();
  }
};

// Header for kPartitionData messages: a chunk of DistArray cells.
// `part` is the time-partition index for rotated partitions, -1 otherwise.
enum class PartDataMode : u8 {
  kInstallPart = 0,    // install into the receiver's partition map [part]
  kInstallRange = 1,   // install as the receiver's range-partition cells
  kOverwrite = 2,      // master-side: overwrite authoritative cells
  kApplyAdd = 3,       // apply as additive deltas
  kApplyBufferUdf = 4, // apply with the registered buffer UDF
  kReplicaSnapshot = 5,// full replicated-array refresh
};

struct PartData {
  DistArrayId array = kInvalidDistArrayId;
  i32 part = -1;
  PartDataMode mode = PartDataMode::kInstallPart;
  CellStore cells;

  std::vector<u8> Encode() const {
    ByteWriter w;
    w.Put<i32>(array);
    w.Put<i32>(part);
    w.Put<u8>(static_cast<u8>(mode));
    cells.Serialize(&w);
    return w.Take();
  }

  static PartData Decode(const std::vector<u8>& payload) {
    ByteReader r(payload);
    PartData p;
    p.array = r.Get<i32>();
    p.part = r.Get<i32>();
    p.mode = static_cast<PartDataMode>(r.Get<u8>());
    p.cells = CellStore::Deserialize(&r);
    return p;
  }
};

// Bulk-prefetch request: the synthesized access-pattern pass's key list.
struct ParamRequest {
  DistArrayId array = kInvalidDistArrayId;
  i32 step = 0;
  std::vector<i64> keys;

  std::vector<u8> Encode() const {
    ByteWriter w;
    w.Put<i32>(array);
    w.Put<i32>(step);
    w.PutVec(keys);
    return w.Take();
  }

  static ParamRequest Decode(const std::vector<u8>& payload) {
    ByteReader r(payload);
    ParamRequest p;
    p.array = r.Get<i32>();
    p.step = r.Get<i32>();
    p.keys = r.GetVec<i64>();
    return p;
  }
};

// kGather / kDropArray control message.
struct ArrayOp {
  ControlOp op = ControlOp::kGather;
  DistArrayId array = kInvalidDistArrayId;

  std::vector<u8> Encode() const {
    ByteWriter w;
    w.Put<u16>(static_cast<u16>(op));
    w.Put<i32>(array);
    return w.Take();
  }
};

inline ControlOp PeekControlOp(const std::vector<u8>& payload) {
  ByteReader r(payload);
  return static_cast<ControlOp>(r.Get<u16>());
}

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_PROTOCOL_H_
