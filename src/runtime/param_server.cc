#include "src/runtime/param_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/simd.h"
#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/common/trace.h"

namespace orion {

namespace {

u64 NowNs() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AtomicMax(std::atomic<int>* target, int value) {
  int prev = target->load(std::memory_order_relaxed);
  while (value > prev &&
         !target->compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Message BuildParamReply(const ParamRequest& req, const CellStore& master, i32 value_dim,
                        bool zero_copy) {
  PartData pd;
  pd.array = req.array;
  pd.part = req.step;
  pd.mode = PartDataMode::kInstallPart;
  pd.cells = CellStore(value_dim, CellStore::Layout::kHashed, 0);
  pd.cells.Reserve(static_cast<i64>(req.keys.size()));
  for (i64 key : req.keys) {
    const f32* v = master.Get(key);
    if (v != nullptr) {
      simd::CopyF32(pd.cells.GetOrCreate(key), v, static_cast<size_t>(value_dim));
    }
  }
  Message reply;
  reply.from = kMasterRank;
  reply.kind = MsgKind::kParamReply;
  reply.tag = static_cast<u32>(req.step);
  if (req.per_key) {
    MeterAsPerKeyReplies(&reply, req.keys.size(), value_dim);
  }
  AttachPart(&reply, std::move(pd), zero_copy);
  return reply;
}

ParamServer::ParamServer(Fabric* fabric, int num_shards, int num_workers,
                         bool key_range_stripes)
    : fabric_(fabric),
      num_shards_(num_shards),
      key_range_stripes_(key_range_stripes),
      stripes_(std::make_unique<StripeState[]>(static_cast<size_t>(num_shards))),
      sender_(fabric, std::max(1, num_workers)),
      pool_(num_shards) {
  ORION_CHECK(num_shards > 0);
}

ParamServer::~ParamServer() { Quiesce(); }

int ParamServer::StripeOf(i64 key, i64 lo, i64 hi) const {
  if (key_range_stripes_ && hi >= lo && key >= lo && key <= hi) {
    // Equal contiguous key slices: stripe i owns
    // [lo + i*span/S, lo + (i+1)*span/S).
    const u64 span = static_cast<u64>(hi - lo + 1);
    return static_cast<int>(static_cast<u64>(key - lo) *
                            static_cast<u64>(num_shards_) / span);
  }
  // Cheap mix so strided key lists spread across stripes.
  u64 h = static_cast<u64>(key) * 0x9E3779B97F4A7C15ull;
  return static_cast<int>((h >> 32) % static_cast<u64>(num_shards_));
}

void ParamServer::HandleRequest(ParamRequest req, WorkerId from, const CellStore* master,
                                i32 value_dim) {
  if (req.speculative) {
    speculative_served_.fetch_add(1, std::memory_order_relaxed);
  }
  auto r = std::make_shared<Request>();
  r->req = std::move(req);
  r->from = from;
  r->master = master;
  r->value_dim = value_dim;
  if (master->IsDense()) {
    r->range_lo = master->range_lo();
    r->range_hi = master->range_hi();
  } else {
    r->range_lo = 0;
    r->range_hi = -1;
  }
  Start(r);
}

void ParamServer::HandleRequestSnapshot(ParamRequest req, WorkerId from,
                                        VersionedCellStore::Snapshot snap,
                                        i32 value_dim) {
  ORION_CHECK(snap.valid());
  if (req.speculative) {
    speculative_served_.fetch_add(1, std::memory_order_relaxed);
  }
  auto r = std::make_shared<Request>();
  r->req = std::move(req);
  r->from = from;
  r->value_dim = value_dim;
  if (snap.dense()) {
    r->range_lo = snap.range_lo();
    r->range_hi = snap.range_hi();
  } else {
    r->range_lo = 0;
    r->range_hi = -1;
  }
  r->snap = std::move(snap);
  Start(r);
}

void ParamServer::Start(const std::shared_ptr<Request>& r) {
  r->shard_keys.resize(static_cast<size_t>(num_shards_));
  for (i64 key : r->req.keys) {
    r->shard_keys[static_cast<size_t>(StripeOf(key, r->range_lo, r->range_hi))]
        .push_back(key);
  }
  int active_shards = 0;
  for (const auto& keys : r->shard_keys) {
    if (!keys.empty()) {
      ++active_shards;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
    max_queue_depth_ = std::max(max_queue_depth_, in_flight_);
  }
  if (active_shards == 0) {
    Finish(r);  // empty key list: assemble the (empty) reply inline
    return;
  }
  r->shard_vals.resize(static_cast<size_t>(num_shards_));
  r->shard_hits.resize(static_cast<size_t>(num_shards_));
  r->remaining.store(active_shards, std::memory_order_relaxed);
  for (int s = 0; s < num_shards_; ++s) {
    if (r->shard_keys[static_cast<size_t>(s)].empty()) {
      continue;
    }
    pool_.Submit([this, r, s] { Gather(r, s); });
  }
}

void ParamServer::Gather(const std::shared_ptr<Request>& r, int shard) {
  CpuStopwatch sw;
  StripeState& st = stripes_[static_cast<size_t>(shard)];
  {
    // Span closes before the possible tail call into Finish so gather and
    // assemble time never overlap in the trace.
    ORION_TRACE_SPAN(kParamServer, "shard_gather");
    AtomicMax(&st.queue_depth_max, st.inflight.fetch_add(1, std::memory_order_relaxed) + 1);
    const auto& keys = r->shard_keys[static_cast<size_t>(shard)];
    // Flat gather: cell i of this stripe lands at vals[i * value_dim] with a
    // hit flag — a straight SIMD copy per hit, no hashed inserts.
    const size_t vdim = static_cast<size_t>(r->value_dim);
    std::vector<f32>& vals = r->shard_vals[static_cast<size_t>(shard)];
    std::vector<u8>& hits = r->shard_hits[static_cast<size_t>(shard)];
    vals.resize(keys.size() * vdim);
    hits.assign(keys.size(), 0);
    if (r->snap.valid()) {
      // Snapshot path: the version is immutable, so no lock is held across
      // the copy — the stripe's lock scope ended at the pin.
      const u64 t0 = NowNs();
      for (size_t i = 0; i < keys.size(); ++i) {
        const f32* v = r->snap.Get(keys[i]);
        if (v != nullptr) {
          simd::CopyF32(vals.data() + i * vdim, v, vdim);
          hits[i] = 1;
        }
      }
      st.gather_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    } else {
      const u64 t0 = NowNs();
      std::shared_lock<std::shared_mutex> lock(st.mu);
      const u64 t1 = NowNs();
      for (size_t i = 0; i < keys.size(); ++i) {
        const f32* v = r->master->Get(keys[i]);
        if (v != nullptr) {
          simd::CopyF32(vals.data() + i * vdim, v, vdim);
          hits[i] = 1;
        }
      }
      const u64 t2 = NowNs();
      st.wait_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
      st.busy_ns.fetch_add(t2 - t1, std::memory_order_relaxed);
      st.gather_ns.fetch_add(t2 - t1, std::memory_order_relaxed);
    }
    st.inflight.fetch_sub(1, std::memory_order_relaxed);
    st.tasks.fetch_add(1, std::memory_order_relaxed);
  }
  const double elapsed = sw.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    serve_seconds_ += elapsed;
  }
  // The release/acquire pair on `remaining` publishes every shard's result
  // to whichever task runs the assembly.
  if (r->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Finish(r);
  }
}

void ParamServer::Finish(const std::shared_ptr<Request>& r) {
  ORION_TRACE_SPAN(kParamServer, "reply_assemble");
  CpuStopwatch sw;
  // Assemble in request-key order from the shard gathers — never from the
  // master store, which a writer may be mutating by now. This reproduces the
  // inline path's reply bytes exactly (same hits, same insertion order).
  PartData pd;
  pd.array = r->req.array;
  pd.part = r->req.step;
  pd.mode = PartDataMode::kInstallPart;
  pd.cells = CellStore(r->value_dim, CellStore::Layout::kHashed, 0);
  pd.cells.Reserve(static_cast<i64>(r->req.keys.size()));
  if (!r->shard_hits.empty()) {
    // Start() bucketed the request keys into shard_keys in request order, so
    // replaying the request keys with one running cursor per stripe visits
    // each stripe's gathered slices in exactly the order they were produced
    // (duplicate keys get their own slice each, same value every time).
    const size_t vdim = static_cast<size_t>(r->value_dim);
    std::vector<size_t> cursor(static_cast<size_t>(num_shards_), 0);
    for (i64 key : r->req.keys) {
      const size_t s = static_cast<size_t>(StripeOf(key, r->range_lo, r->range_hi));
      const size_t i = cursor[s]++;
      if (r->shard_hits[s][i] != 0) {
        simd::CopyF32(pd.cells.GetOrCreate(key), r->shard_vals[s].data() + i * vdim,
                      vdim);
      }
    }
  }
  // Retire this request's pin before it counts as done: once Quiesce()
  // returns, the caller may collapse or mutate the store, so the pin must
  // not linger until the pool thread drops its Request reference.
  r->snap.Release();
  Message reply;
  reply.from = kMasterRank;
  reply.to = r->from;
  reply.kind = MsgKind::kParamReply;
  reply.tag = static_cast<u32>(r->req.step);
  if (r->req.per_key) {
    MeterAsPerKeyReplies(&reply, r->req.keys.size(), r->value_dim);
  }
  AttachPart(&reply, std::move(pd), fabric_->zero_copy());
  sender_.Enqueue(std::move(reply));
  const double elapsed = sw.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    serve_seconds_ += elapsed;
    --in_flight_;
    if (in_flight_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

void ParamServer::Quiesce() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  sender_.Flush();
}

std::vector<std::unique_lock<std::shared_mutex>> ParamServer::LockAllShards() {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    StripeState& st = stripes_[static_cast<size_t>(s)];
    const u64 t0 = NowNs();
    locks.emplace_back(st.mu);
    st.wait_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  }
  return locks;
}

std::vector<std::unique_lock<std::shared_mutex>> ParamServer::LockForUpdate(
    const CellStore& updates, i64 range_lo, i64 range_hi) {
  if (!key_range_stripes_ || range_hi < range_lo) {
    // Hashed master (an insert can rehash the whole store) or key-range
    // ownership off: writers need full exclusion.
    return LockAllShards();
  }
  std::vector<bool> owned(static_cast<size_t>(num_shards_), false);
  updates.ForEachConstFast([&](i64 key, const f32*) {
    owned[static_cast<size_t>(StripeOf(key, range_lo, range_hi))] = true;
  });
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  for (int s = 0; s < num_shards_; ++s) {
    if (!owned[static_cast<size_t>(s)]) {
      continue;
    }
    StripeState& st = stripes_[static_cast<size_t>(s)];
    const u64 t0 = NowNs();
    locks.emplace_back(st.mu);
    st.wait_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  }
  return locks;
}

void ParamServer::ResetPassStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    serve_seconds_ = 0.0;
    max_queue_depth_ = 0;
  }
  speculative_served_.store(0, std::memory_order_relaxed);
  for (int s = 0; s < num_shards_; ++s) {
    StripeState& st = stripes_[static_cast<size_t>(s)];
    st.busy_ns.store(0, std::memory_order_relaxed);
    st.gather_ns.store(0, std::memory_order_relaxed);
    st.wait_ns.store(0, std::memory_order_relaxed);
    st.tasks.store(0, std::memory_order_relaxed);
    st.queue_depth_max.store(0, std::memory_order_relaxed);
  }
}

std::vector<ParamStripeStats> ParamServer::StripeStatsSnapshot() const {
  std::vector<ParamStripeStats> out(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    const StripeState& st = stripes_[static_cast<size_t>(s)];
    ParamStripeStats& o = out[static_cast<size_t>(s)];
    o.busy_ns = st.busy_ns.load(std::memory_order_relaxed);
    o.gather_ns = st.gather_ns.load(std::memory_order_relaxed);
    o.wait_ns = st.wait_ns.load(std::memory_order_relaxed);
    o.tasks = st.tasks.load(std::memory_order_relaxed);
    o.queue_depth_max = st.queue_depth_max.load(std::memory_order_relaxed);
  }
  return out;
}

double ParamServer::serve_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serve_seconds_;
}

int ParamServer::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_queue_depth_;
}

}  // namespace orion
