#include "src/runtime/param_server.h"

#include <algorithm>
#include <utility>

#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/common/trace.h"

namespace orion {

Message BuildParamReply(const ParamRequest& req, const CellStore& master, i32 value_dim,
                        bool zero_copy) {
  PartData pd;
  pd.array = req.array;
  pd.part = req.step;
  pd.mode = PartDataMode::kInstallPart;
  pd.cells = CellStore(value_dim, CellStore::Layout::kHashed, 0);
  pd.cells.Reserve(static_cast<i64>(req.keys.size()));
  for (i64 key : req.keys) {
    const f32* v = master.Get(key);
    if (v != nullptr) {
      f32* dst = pd.cells.GetOrCreate(key);
      std::copy(v, v + value_dim, dst);
    }
  }
  Message reply;
  reply.from = kMasterRank;
  reply.kind = MsgKind::kParamReply;
  reply.tag = static_cast<u32>(req.step);
  if (req.per_key) {
    MeterAsPerKeyReplies(&reply, req.keys.size(), value_dim);
  }
  AttachPart(&reply, std::move(pd), zero_copy);
  return reply;
}

ParamServer::ParamServer(Fabric* fabric, int num_shards, int num_workers)
    : fabric_(fabric),
      num_shards_(num_shards),
      stripes_(std::make_unique<std::shared_mutex[]>(static_cast<size_t>(num_shards))),
      sender_(fabric, std::max(1, num_workers)),
      pool_(num_shards) {
  ORION_CHECK(num_shards > 0);
}

ParamServer::~ParamServer() { Quiesce(); }

int ParamServer::ShardOf(i64 key) const {
  // Cheap mix so strided key lists spread across stripes.
  u64 h = static_cast<u64>(key) * 0x9E3779B97F4A7C15ull;
  return static_cast<int>((h >> 32) % static_cast<u64>(num_shards_));
}

void ParamServer::HandleRequest(ParamRequest req, WorkerId from, const CellStore* master,
                                i32 value_dim) {
  auto r = std::make_shared<Request>();
  r->req = std::move(req);
  r->from = from;
  r->master = master;
  r->value_dim = value_dim;
  r->shard_keys.resize(static_cast<size_t>(num_shards_));
  for (i64 key : r->req.keys) {
    r->shard_keys[static_cast<size_t>(ShardOf(key))].push_back(key);
  }
  int active_shards = 0;
  for (const auto& keys : r->shard_keys) {
    if (!keys.empty()) {
      ++active_shards;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
    max_queue_depth_ = std::max(max_queue_depth_, in_flight_);
  }
  if (active_shards == 0) {
    Finish(r);  // empty key list: assemble the (empty) reply inline
    return;
  }
  r->shard_results.resize(static_cast<size_t>(num_shards_));
  r->remaining.store(active_shards, std::memory_order_relaxed);
  for (int s = 0; s < num_shards_; ++s) {
    if (r->shard_keys[static_cast<size_t>(s)].empty()) {
      continue;
    }
    pool_.Submit([this, r, s] { Gather(r, s); });
  }
}

void ParamServer::Gather(const std::shared_ptr<Request>& r, int shard) {
  CpuStopwatch sw;
  {
    // Span closes before the possible tail call into Finish so gather and
    // assemble time never overlap in the trace.
    ORION_TRACE_SPAN(kParamServer, "shard_gather");
    std::shared_lock<std::shared_mutex> lock(stripes_[static_cast<size_t>(shard)]);
    const auto& keys = r->shard_keys[static_cast<size_t>(shard)];
    CellStore out(r->value_dim, CellStore::Layout::kHashed, 0);
    out.Reserve(static_cast<i64>(keys.size()));
    for (i64 key : keys) {
      const f32* v = r->master->Get(key);
      if (v != nullptr) {
        f32* dst = out.GetOrCreate(key);
        std::copy(v, v + r->value_dim, dst);
      }
    }
    r->shard_results[static_cast<size_t>(shard)] = std::move(out);
  }
  const double elapsed = sw.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    serve_seconds_ += elapsed;
  }
  // The release/acquire pair on `remaining` publishes every shard's result
  // to whichever task runs the assembly.
  if (r->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Finish(r);
  }
}

void ParamServer::Finish(const std::shared_ptr<Request>& r) {
  ORION_TRACE_SPAN(kParamServer, "reply_assemble");
  CpuStopwatch sw;
  // Assemble in request-key order from the shard gathers — never from the
  // master store, which a writer may be mutating by now. This reproduces the
  // inline path's reply bytes exactly (same hits, same insertion order).
  PartData pd;
  pd.array = r->req.array;
  pd.part = r->req.step;
  pd.mode = PartDataMode::kInstallPart;
  pd.cells = CellStore(r->value_dim, CellStore::Layout::kHashed, 0);
  pd.cells.Reserve(static_cast<i64>(r->req.keys.size()));
  if (!r->shard_results.empty()) {
    for (i64 key : r->req.keys) {
      const f32* v = r->shard_results[static_cast<size_t>(ShardOf(key))].Get(key);
      if (v != nullptr) {
        f32* dst = pd.cells.GetOrCreate(key);
        std::copy(v, v + r->value_dim, dst);
      }
    }
  }
  Message reply;
  reply.from = kMasterRank;
  reply.to = r->from;
  reply.kind = MsgKind::kParamReply;
  reply.tag = static_cast<u32>(r->req.step);
  if (r->req.per_key) {
    MeterAsPerKeyReplies(&reply, r->req.keys.size(), r->value_dim);
  }
  AttachPart(&reply, std::move(pd), fabric_->zero_copy());
  sender_.Enqueue(std::move(reply));
  const double elapsed = sw.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    serve_seconds_ += elapsed;
    --in_flight_;
    if (in_flight_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

void ParamServer::Quiesce() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  sender_.Flush();
}

std::vector<std::unique_lock<std::shared_mutex>> ParamServer::LockAllShards() {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    locks.emplace_back(stripes_[static_cast<size_t>(s)]);
  }
  return locks;
}

void ParamServer::ResetPassStats() {
  std::lock_guard<std::mutex> lock(mu_);
  serve_seconds_ = 0.0;
  max_queue_depth_ = 0;
}

double ParamServer::serve_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serve_seconds_;
}

int ParamServer::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_queue_depth_;
}

}  // namespace orion
