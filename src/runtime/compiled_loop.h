// CompiledLoop: everything the runtime derives from one @parallel_for site.
//
// Compilation happens once per loop (paper Sec. 4.1: macro expansion and JIT
// compilation execute once even when the loop runs many times): the
// dependence analysis, the parallelization plan, the iteration-space grid
// (histogram-balanced splits), and the concrete schedule. Executors hold a
// shared read-only pointer to this structure.
#ifndef ORION_SRC_RUNTIME_COMPILED_LOOP_H_
#define ORION_SRC_RUNTIME_COMPILED_LOOP_H_

#include <map>
#include <memory>
#include <vector>

#include "src/analysis/plan.h"
#include "src/dsm/dist_array_buffer.h"
#include "src/dsm/partition.h"
#include "src/ir/loop_context.h"
#include "src/ir/analyze_body.h"
#include "src/ir/loop_spec.h"
#include "src/sched/schedule.h"

namespace orion {

// How server-hosted reads are fetched (paper Sec. 4.4 and the SLR
// prefetching experiment in Sec. 6.3).
enum class PrefetchMode {
  kPerKey,   // one request per key: models naive remote random access
  kBulk,     // synthesized recording pass per execution, batched request
  kCached,   // recording pass once; key list reused across passes
};

struct ParallelForOptions {
  bool ordered = false;
  PlannerOptions planner;
  int pipeline_depth = 2;  // time partitions per worker (unordered 2D)
  PrefetchMode prefetch = PrefetchMode::kBulk;
  // 1D loops only: bound how long buffered writes to server-hosted arrays
  // may be delayed (paper Sec. 3.3) by splitting each pass into this many
  // sync rounds — each round prefetches fresh values, computes a slice of
  // the local iterations, and flushes its buffered updates.
  int server_sync_rounds = 1;
  // Ablation knob: use equal-width iteration-space splits instead of the
  // histogram-balanced ones (paper Sec. 4.3 skew handling).
  bool equal_width_partitions = false;
  // Bound (in loop iterations) on how long buffered writes to *locally
  // owned* arrays (range/rotated placements) may stay buffered within one
  // block (paper Sec. 3.3: "the application program may optionally bound
  // how long the writes can be buffered"). 0 = apply once per step.
  i64 buffer_flush_every = 0;
  // Comm/compute overlap engine: ship step flushes and rotated partitions
  // through the per-worker comm thread, and (rotation schedules) issue the
  // next step's prefetch before computing the current step. Bit-for-bit
  // identical to synchronous execution; off = fully serialized steps.
  bool overlap = true;
  // Depth of the prefetch ring for pipelined rotation+server loops: how many
  // steps ahead ParamRequests may be issued. 1 = the classic double buffer
  // (issue t+1 during t). Any depth is legal because 2D kServer buffered
  // applies are deferred to pass end, making server state pass-constant.
  int prefetch_depth = 2;
  // Upper bound for the driver's adaptive prefetch-depth controller: when
  // > 0, the driver re-picks the effective depth in [1, prefetch_depth_max]
  // at each pass start from the previous pass's merged reply-wait p90
  // (deepen while blocking waits dominate, shrink when fully hidden) and
  // ships it in StartPass. 0 = static prefetch_depth. Legal because any
  // depth is bit-for-bit identical (server state is pass-constant for
  // rotation loops).
  int prefetch_depth_max = 0;
  // Speculative parameter prefetch for ordered (wavefront/lockstep)
  // schedules: while step t computes, fetch step t+1's server-hosted reads
  // from a snapshot of the master, then validate the payload at the step
  // barrier against the dirty-range summary of the kOverwrite writes steps
  // actually flushed, re-fetching only conflicting keys. Bit-for-bit
  // identical to the synchronous fetch; the driver's speculation controller
  // disables it per loop when the measured conflict rate makes repair cost
  // exceed the hidden wait. Only engages when step t+1's key lists are
  // computable early (synthesized prefetch program, or a warm kCached
  // cache), so kBulk kernel-replay loops are unaffected.
  bool speculate = true;
};

struct CompiledLoop {
  i32 loop_id = 0;
  LoopSpec spec;
  LoopKernel kernel;
  ParallelForOptions options;

  // When the loop was compiled from a statement-level LoopBody, the
  // synthesized prefetch function (paper Sec. 4.4): executors interpret it
  // instead of replaying the kernel in recording mode.
  std::shared_ptr<const PrefetchProgram> prefetch_program;
  std::map<DistArrayId, KeySpace> prefetch_key_spaces;

  ParallelizationPlan plan;

  // Iteration-space partitioning. For 1D only `space_splits` is meaningful.
  SpaceTimeGrid grid;

  // Concrete schedule (which one is valid depends on plan.form/ordered).
  OneDSchedule sched_1d;
  WavefrontSchedule sched_wave;
  RotationSchedule sched_rot;

  int num_workers = 1;

  bool Is2D() const {
    return plan.form == ParallelForm::k2D || plan.form == ParallelForm::k2DUnimodular;
  }
  // Transformed loops run in lockstep: every worker executes the *same*
  // transformed-outer value each step (dependences are carried by that
  // dimension with arbitrary distances, so staggering workers would let
  // dependent blocks run concurrently).
  bool UsesLockstep() const { return plan.form == ParallelForm::k2DUnimodular; }
  bool UsesWavefront() const {
    return Is2D() && plan.ordered && !UsesLockstep();
  }
  bool UsesRotation() const { return Is2D() && !UsesWavefront() && !UsesLockstep(); }
  bool NeedsStepBarrier() const { return UsesWavefront() || UsesLockstep(); }

  int NumSteps() const {
    if (!Is2D()) {
      return 1;
    }
    if (UsesLockstep()) {
      return sched_wave.num_time_parts;
    }
    return UsesWavefront() ? sched_wave.num_steps() : sched_rot.num_steps();
  }

  // Time partition worker executes at a step (-1 = idle this step).
  int TimePartAt(int worker, int step) const {
    if (!Is2D()) {
      return -1;
    }
    if (UsesLockstep()) {
      return step;
    }
    return UsesWavefront() ? sched_wave.TimePartAt(worker, step)
                           : sched_rot.TimePartAt(worker, step);
  }

  // Applies the plan's unimodular transform to an iteration index (identity
  // for non-transformed loops). Only 2D index spaces are transformed.
  std::pair<i64, i64> ToScheduleCoords(i64 p0, i64 p1) const {
    if (plan.form != ParallelForm::k2DUnimodular) {
      return {p0, p1};
    }
    return plan.transform.Apply(p0, p1);
  }

  const ArrayPlacement& PlacementOf(DistArrayId array) const {
    auto it = plan.placements.find(array);
    ORION_CHECK(it != plan.placements.end()) << "no placement for array" << array;
    return it->second;
  }
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_COMPILED_LOOP_H_
