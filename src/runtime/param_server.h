// Sharded, asynchronous serving of kParamRequests on the master.
//
// The master's service loop used to gather and send every reply inline, so
// under a real-time-charged link the reply fan-out serialized across workers
// (~N x latency) and bounded what deep prefetch could hide. ParamServer moves
// that work off the loop:
//
//   HandleRequest — splits the request's key list into S hash shards and
//       enqueues one gather task per non-empty shard on a thread pool. Each
//       gather holds its stripe's lock shared and copies hits out of the
//       master store; the last shard to finish assembles the reply *in
//       request-key order* and hands it to a per-destination reply lane
//       (AsyncSender), so sends to different workers overlap.
//   LockAllShards — server-state writers (mid-pass wavefront overwrites,
//       recovery restores) take every stripe exclusively. CellStore rehashes
//       on insert, so writers need full exclusion, not per-cell atomicity.
//   Quiesce — barrier: every in-flight request assembled and its reply
//       delivered. Called at pass end, on pass abort, and before recovery
//       mutates master state.
//
// Determinism: reply contents depend only on (request keys, master state) —
// exactly what the inline path saw, because 2D kServer buffered applies are
// deferred to pass end (server state is pass-constant for rotation loops)
// and wavefront mid-step overwrites touch cells disjoint from any concurrent
// reader's key list (dependence analysis) with the stripe locks preventing
// torn reads. Key-order assembly makes the reply bytes identical to the
// inline gather's, and per-destination lanes keep each worker's replies in
// FIFO order. kParamReply is not a faultable message kind, so moving replies
// onto lane threads cannot perturb the injected-fault sequence.
#ifndef ORION_SRC_RUNTIME_PARAM_SERVER_H_
#define ORION_SRC_RUNTIME_PARAM_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dsm/cell_store.h"
#include "src/net/async_sender.h"
#include "src/net/fabric.h"
#include "src/runtime/protocol.h"

namespace orion {

// Assembles the kParamReply for `req` against `master`: hits are copied in
// request-key order (the order the reply store's insertion-ordered layout
// makes observable) into a store pre-sized for the key list. Shared by the
// inline serving path and tests; the sharded path assembles from its
// per-shard gathers instead.
Message BuildParamReply(const ParamRequest& req, const CellStore& master, i32 value_dim,
                        bool zero_copy);

class ParamServer {
 public:
  // `num_shards` gather stripes and pool threads; one reply lane per worker.
  ParamServer(Fabric* fabric, int num_shards, int num_workers);
  ~ParamServer();

  ParamServer(const ParamServer&) = delete;
  ParamServer& operator=(const ParamServer&) = delete;

  int num_shards() const { return num_shards_; }

  // Non-blocking: enqueues the gather work and returns. `master` must stay
  // valid and un-mutated (except under LockAllShards) until Quiesce().
  void HandleRequest(ParamRequest req, WorkerId from, const CellStore* master,
                     i32 value_dim);

  // Blocks until every in-flight request has been assembled and its reply
  // pushed into the destination inbox. Cheap when idle.
  void Quiesce();

  // Exclusive access w.r.t. all in-flight gathers, for master-state writers.
  std::vector<std::unique_lock<std::shared_mutex>> LockAllShards();

  // Pass-scoped stats (reset at pass start by the driver).
  void ResetPassStats();
  double serve_seconds() const;    // CPU time across gather + assembly tasks
  int max_queue_depth() const;     // peak requests concurrently in flight

 private:
  struct Request {
    ParamRequest req;
    WorkerId from = 0;
    const CellStore* master = nullptr;
    i32 value_dim = 0;
    std::vector<std::vector<i64>> shard_keys;
    std::vector<CellStore> shard_results;
    std::atomic<int> remaining{0};
  };

  int ShardOf(i64 key) const;
  void Gather(const std::shared_ptr<Request>& r, int shard);
  void Finish(const std::shared_ptr<Request>& r);

  Fabric* fabric_;
  int num_shards_;
  std::unique_ptr<std::shared_mutex[]> stripes_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  int in_flight_ = 0;
  double serve_seconds_ = 0.0;
  int max_queue_depth_ = 0;

  // sender_ before pool_: members destroy in reverse order, and pool tasks
  // enqueue replies, so the pool must drain before the lanes go away.
  AsyncSender sender_;
  ThreadPool pool_;
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_PARAM_SERVER_H_
