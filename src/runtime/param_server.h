// Sharded, asynchronous serving of kParamRequests on the master.
//
// The master's service loop used to gather and send every reply inline, so
// under a real-time-charged link the reply fan-out serialized across workers
// (~N x latency) and bounded what deep prefetch could hide. ParamServer moves
// that work off the loop:
//
//   HandleRequestSnapshot — the versioned-store path. The service loop pins a
//       VersionedCellStore::Snapshot at dequeue time (a refcount bump) and
//       hands it over; gather tasks copy hits out of the immutable snapshot
//       with NO lock held — the stripe's lock scope ends at the pin. Writers
//       never block readers: they clone-on-write the next version instead.
//   HandleRequest — the legacy locked path (versioned_store = false): each
//       gather holds its stripe's lock shared across the copy out of the
//       live master store.
//   Both split the key list into stripes. With key-range ownership (the
//       default for dense masters) stripe i owns an equal contiguous slice
//       of [range_lo, range_hi], so a mid-pass writer locks only the stripes
//       its keys fall in (LockForUpdate) and disjoint readers/writers
//       proceed concurrently. Hashed masters fall back to hash-mixed stripes
//       and full locking, because an insert can rehash the whole store.
//   The last stripe to finish assembles the reply *in request-key order* and
//       hands it to a per-destination reply lane (AsyncSender), so sends to
//       different workers overlap.
//   Quiesce — barrier: every in-flight request assembled, its reply
//       delivered, and its snapshot pin released. Called at pass end, on
//       pass abort, and before recovery mutates master state.
//
// Determinism: reply contents depend only on (request keys, master state at
// dequeue time) — exactly what the inline path saw. On the snapshot path the
// pin happens on the single-threaded service loop at the same point the
// inline path would have served, and copy-on-write guarantees the pinned
// version is immutable, so the gathered bytes are identical no matter when
// the pool thread runs. On the locked path 2D kServer buffered applies are
// deferred to pass end and wavefront mid-step overwrites touch cells
// disjoint from any concurrent reader's key list (dependence analysis) with
// the stripe locks preventing torn reads. Key-order assembly makes the
// reply bytes identical to the inline gather's, and per-destination lanes
// keep each worker's replies in FIFO order. kParamReply is not a faultable
// message kind, so moving replies onto lane threads cannot perturb the
// injected-fault sequence.
#ifndef ORION_SRC_RUNTIME_PARAM_SERVER_H_
#define ORION_SRC_RUNTIME_PARAM_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dsm/cell_store.h"
#include "src/dsm/versioned_store.h"
#include "src/net/async_sender.h"
#include "src/net/fabric.h"
#include "src/runtime/protocol.h"

namespace orion {

// Assembles the kParamReply for `req` against `master`: hits are copied in
// request-key order (the order the reply store's insertion-ordered layout
// makes observable) into a store pre-sized for the key list. Shared by the
// inline serving path and tests; the sharded path assembles from its
// per-stripe gathers instead.
Message BuildParamReply(const ParamRequest& req, const CellStore& master, i32 value_dim,
                        bool zero_copy);

// Per-stripe contention stats for one pass (the stripe heatmap).
struct ParamStripeStats {
  u64 busy_ns = 0;    // lock-held time inside gather tasks (0 on the snapshot path)
  u64 gather_ns = 0;  // cell-copy time, locked or not
  u64 wait_ns = 0;    // time spent blocked acquiring the stripe lock
  u64 tasks = 0;      // gather tasks routed to this stripe
  int queue_depth_max = 0;  // peak concurrent gather tasks on this stripe
};

class ParamServer {
 public:
  // `num_shards` gather stripes and pool threads; one reply lane per worker.
  // `key_range_stripes` keys stripe ownership off contiguous key ranges for
  // dense masters (hash-mixed otherwise).
  ParamServer(Fabric* fabric, int num_shards, int num_workers,
              bool key_range_stripes = true);
  ~ParamServer();

  ParamServer(const ParamServer&) = delete;
  ParamServer& operator=(const ParamServer&) = delete;

  int num_shards() const { return num_shards_; }
  bool key_range_stripes() const { return key_range_stripes_; }

  // Locked path. Non-blocking: enqueues the gather work and returns.
  // `master` must stay valid and un-mutated (except under LockAllShards /
  // LockForUpdate) until Quiesce().
  void HandleRequest(ParamRequest req, WorkerId from, const CellStore* master,
                     i32 value_dim);

  // Snapshot path. The caller pins the version to serve; gathers read it
  // lock-free and the pin is released when the reply has been assembled.
  void HandleRequestSnapshot(ParamRequest req, WorkerId from,
                             VersionedCellStore::Snapshot snap, i32 value_dim);

  // Blocks until every in-flight request has been assembled, its reply
  // pushed into the destination inbox, and its snapshot pin released.
  // Cheap when idle.
  void Quiesce();

  // Exclusive access w.r.t. all in-flight locked gathers, for master-state
  // writers on the locked path.
  std::vector<std::unique_lock<std::shared_mutex>> LockAllShards();

  // Locks only the stripes owning the keys of `updates` (key-range mode,
  // dense master [range_lo, range_hi]). Falls back to LockAllShards for
  // hashed masters — an insert may rehash — or when key-range ownership is
  // off.
  std::vector<std::unique_lock<std::shared_mutex>> LockForUpdate(
      const CellStore& updates, i64 range_lo, i64 range_hi);

  // Pass-scoped stats (reset at pass start by the driver).
  void ResetPassStats();
  double serve_seconds() const;    // CPU time across gather + assembly tasks
  int max_queue_depth() const;     // peak requests concurrently in flight
  // Requests flagged speculative this pass (served identically; the flag is
  // observational for the spec.requests_served metric).
  u64 speculative_served() const { return speculative_served_.load(std::memory_order_relaxed); }
  std::vector<ParamStripeStats> StripeStatsSnapshot() const;

  // Monitor probes: requests currently in flight, and the deepest current
  // per-stripe gather backlog (atomics / a short mutex; never the stripe
  // locks).
  int in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
  }
  int stripe_inflight_max() const {
    int deepest = 0;
    for (int s = 0; s < num_shards_; ++s) {
      const int d = stripes_[s].inflight.load(std::memory_order_relaxed);
      if (d > deepest) deepest = d;
    }
    return deepest;
  }
  // Reply-lane backlog (messages queued or mid-send toward workers).
  size_t reply_queue_depth() const { return sender_.QueueDepth(); }

  // Stripe of `key` for a master spanning [lo, hi] (hi < lo: hashed master).
  int StripeOf(i64 key, i64 lo, i64 hi) const;

 private:
  struct Request {
    ParamRequest req;
    WorkerId from = 0;
    const CellStore* master = nullptr;          // locked path
    VersionedCellStore::Snapshot snap;          // snapshot path (valid() => on)
    i64 range_lo = 0;                           // stripe domain of the master
    i64 range_hi = -1;
    i32 value_dim = 0;
    std::vector<std::vector<i64>> shard_keys;
    // Per-stripe gather results as flat slices in shard-key order: no hashed
    // intermediate store, just value_dim floats and a hit flag per key.
    // Finish() walks the request keys with one running cursor per stripe, so
    // assembly reproduces the inline path's reply bytes exactly (same hits,
    // same insertion order, duplicates included).
    std::vector<std::vector<f32>> shard_vals;
    std::vector<std::vector<u8>> shard_hits;
    std::atomic<int> remaining{0};
  };

  struct StripeState {
    std::shared_mutex mu;
    std::atomic<u64> busy_ns{0};
    std::atomic<u64> gather_ns{0};
    std::atomic<u64> wait_ns{0};
    std::atomic<u64> tasks{0};
    std::atomic<int> inflight{0};
    std::atomic<int> queue_depth_max{0};
  };

  void Start(const std::shared_ptr<Request>& r);
  void Gather(const std::shared_ptr<Request>& r, int shard);
  void Finish(const std::shared_ptr<Request>& r);

  Fabric* fabric_;
  int num_shards_;
  bool key_range_stripes_;
  std::unique_ptr<StripeState[]> stripes_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  int in_flight_ = 0;
  double serve_seconds_ = 0.0;
  int max_queue_depth_ = 0;
  std::atomic<u64> speculative_served_{0};

  // sender_ before pool_: members destroy in reverse order, and pool tasks
  // enqueue replies, so the pool must drain before the lanes go away.
  AsyncSender sender_;
  ThreadPool pool_;
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_PARAM_SERVER_H_
