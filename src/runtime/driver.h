// Driver: the user-facing entry point of the Orion runtime (paper Sec. 3).
//
// A Driver plays the role of the paper's driver program plus the Orion
// master: it owns DistArray metadata and authoritative (driver-resident)
// cell data, compiles parallel for-loops (dependence analysis + planning +
// histogram-balanced partitioning + scatter), and orchestrates pass
// execution, servicing prefetch requests and buffered-update flushes while
// executors run.
//
// Typical usage:
//
//   Driver driver({.num_workers = 8});
//   auto ratings = driver.CreateDistArray("ratings", {m, n}, 1, Density::kSparse);
//   ...fill driver.MutableCells(ratings)...
//   LoopSpec spec = ...;                     // declares accesses
//   auto loop = driver.Compile(spec, kernel, options);   // plans + scatters
//   for (int it = 0; it < kIters; ++it) driver.Execute(*loop);
#ifndef ORION_SRC_RUNTIME_DRIVER_H_
#define ORION_SRC_RUNTIME_DRIVER_H_

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "src/common/metrics_registry.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/obs/anomaly.h"
#include "src/obs/metrics_endpoint.h"
#include "src/obs/monitor.h"
#include "src/dsm/checkpoint.h"
#include "src/dsm/delta_log.h"
#include "src/dsm/versioned_store.h"
#include "src/net/fabric.h"
#include "src/runtime/compiled_loop.h"
#include "src/runtime/executor.h"
#include "src/runtime/metrics.h"
#include "src/runtime/param_server.h"
#include "src/runtime/recipe.h"
#include "src/runtime/shared_directory.h"
#include "src/serve/serving_tier.h"

namespace orion {

struct DriverConfig {
  int num_workers = 4;
  NetCostModel net = NetCostModel::Unlimited();
  double stats_bucket_seconds = 0.5;
  u64 seed = 1;
  // In-process fast path: DistArray payloads travel by shared pointer
  // instead of Encode/Decode. The fabric still meters the exact encoded
  // size, so modeled network costs are unchanged.
  bool zero_copy = true;
  // Faults to inject into the fabric (inactive by default). An active plan
  // forces supervision on.
  FaultPlan fault_plan{};
  // Heartbeat / retry / death-timeout parameters. Supervision can also be
  // enabled without a fault plan to harden against real failures.
  SupervisorConfig supervisor{};
  // Sharded asynchronous parameter serving: kParamRequests are gathered by
  // a stripe-sharded thread pool and replies ship through per-worker comm
  // lanes instead of blocking the master service loop. Bit-for-bit
  // identical to inline serving.
  bool async_param_serving = true;
  int param_server_shards = 4;
  // Versioned copy-on-write page store under async serving: the service
  // loop pins a snapshot at request-dequeue time (a refcount bump) and
  // gather tasks copy from it with no lock held; writers clone only the
  // pages they touch. This also lets 1D chunked loops join async serving —
  // a worker's own round-r flushes are dequeued (and applied) before its
  // round-r+1 request on the same FIFO link, so the pinned snapshot
  // preserves read-own-writes freshness exactly like the inline path.
  bool versioned_store = true;
  // Key-range stripe ownership for dense masters: each stripe owns an equal
  // contiguous key slice, so a mid-pass writer locks only the owning
  // stripe(s) on the locked path. Hashed masters keep hash-mixed stripes
  // and full writer locking.
  bool param_key_range_stripes = true;
};

class Driver {
 public:
  explicit Driver(const DriverConfig& config);
  ~Driver();

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  int num_workers() const { return config_.num_workers; }

  // ---- DistArray lifecycle ----

  DistArrayId CreateDistArray(const std::string& name, std::vector<i64> dims, i32 value_dim,
                              Density density);

  const DistArrayMeta& Meta(DistArrayId id) const;

  // Mutable access to the driver-resident cells (gathers first if the array
  // currently lives on workers).
  CellStore& MutableCells(DistArrayId id);
  const CellStore& Cells(DistArrayId id) { return MutableCells(id); }

  // Fills a dense array with N(0, scale) values (Orion.randn).
  void FillRandomNormal(DistArrayId id, f32 scale, u64 seed);

  // Applies fn to every driver-resident cell (Orion.map with map_values).
  void MapCells(DistArrayId id, const std::function<void(i64 key, f32* value)>& fn);

  // Remaps one dimension of a (sparse) array through a deterministic random
  // permutation to smooth out skew (the DistArray `randomize` operation).
  void RandomizeDim(DistArrayId id, int dim, u64 seed);

  // Materializes a lazily-recorded recipe (text_file + fused maps, paper
  // Sec. 3.1) into a new DistArray. Records whose indices fall outside
  // `dims` make materialization fail.
  StatusOr<DistArrayId> Materialize(const std::string& name, std::vector<i64> dims,
                                    i32 value_dim, Density density, const ArrayRecipe& recipe);

  // Eager groupBy (paper Sec. 3.1): reduces the cells of `src` along one of
  // its dimensions into a new dense 1-D DistArray. `reduce` folds each
  // source cell into the group's accumulator span.
  using GroupReduceFn = std::function<void(f32* acc, const IndexVec& idx, const f32* value)>;
  DistArrayId GroupByDim(DistArrayId src, int dim, const std::string& name, i32 out_value_dim,
                         const GroupReduceFn& reduce);

  // Checkpointing (paper Sec. 4.3 fault tolerance).
  Status Checkpoint(DistArrayId id, const std::string& path);
  Status Restore(DistArrayId id, const std::string& path);

  // ---- Buffers and accumulators ----

  // Registers the DistArray Buffer for `target`; kernels may then call
  // LoopContext::BufferUpdate on it. Must be called before Compile of any
  // loop whose kernel updates the buffer.
  void RegisterBuffer(DistArrayId target, i32 update_dim, BufferApplyFn apply,
                      BufferCombineFn combine = MakeAddCombineFn());

  // Creates an accumulator with the given reduction operator (paper
  // Sec. 3.4: worker-local instances combined with a commutative,
  // associative operator).
  int CreateAccumulator(AccumOp op = AccumOp::kSum);
  f64 AccumulatorValue(int slot) const;
  void ResetAccumulator(int slot);

  // ---- Parallel for-loops ----

  // Compiles the loop: dependence analysis, plan, grid, scatter. Fails with
  // a Status carrying the planner's explanation when the loop cannot be
  // parallelized while preserving dependences.
  StatusOr<i32> Compile(LoopSpec spec, LoopKernel kernel, ParallelForOptions options = {});

  // Compiles a loop whose body is given as a statement-level program
  // (src/ir/stmt.h): the access declarations are *extracted* from the AST
  // and the bulk-prefetch function is *synthesized* by slicing it — no
  // hand-written AddAccess calls and no kernel-replay recording pass. The
  // kernel still performs the numeric work at execution time.
  StatusOr<i32> CompileBody(DistArrayId iter_space, std::vector<i64> iter_extents,
                            bool ordered, const LoopBody& body, LoopKernel kernel,
                            ParallelForOptions options = {});

  // Runs one pass over the full iteration space.
  Status Execute(i32 loop_id);

  // Runs a loop serially on the driver against the master copies — the
  // fallback when PlanLoop reports kSerial (and the gold standard for
  // testing). Iterates the driver-resident cells of the iteration space in
  // lexicographic order when `spec.ordered`, insertion order otherwise;
  // buffered updates are applied immediately with the registered UDF.
  Status ExecuteSerial(const LoopSpec& spec, const LoopKernel& kernel);

  // Checkpoints `arrays` into `directory` (files named <name>.<pass>.ckpt)
  // after every `every_n_passes` Execute() calls — the paper's fault-
  // tolerance recipe (Sec. 4.3). Pass every_n_passes = 0 to disable.
  void AutoCheckpoint(std::vector<DistArrayId> arrays, std::string directory,
                      int every_n_passes);

  // Integrated checkpoint/recovery (paper Sec. 4.3): checkpoints `arrays`
  // (every mutable array must be listed — arrays not listed are assumed
  // immutable during training) into `directory` every `every_n_passes`
  // passes, plus a baseline checkpoint before the first pass. When a worker
  // is lost mid-pass, Execute() transparently retires the dead rank, degrades
  // to the surviving workers, restores the last checkpoint, replays the
  // passes since, and retries the failed pass.
  void EnableRecovery(std::vector<DistArrayId> arrays, std::string directory,
                      int every_n_passes);

  // ---- Log-structured durability (delta log; supersedes EnableRecovery's
  // whole-store checkpoint cycle) ----

  struct DurabilityOptions {
    int every_n_passes = 1;   // checkpoint cadence, like EnableRecovery
    int compact_every = 8;    // fold the WAL into a fresh base after this
                              // many delta records (<= 0: never)
    // After a worker is declared dead and the survivors retire to N-1, bring
    // the rank back: restart its executor if it halted, stream the base plus
    // the delta tail, and flip the cluster back to N partitions before the
    // failed pass is retried.
    bool rejoin_crashed_workers = false;
  };

  // Like EnableRecovery, but checkpoints go to an append-only delta log in
  // `directory`: each checkpoint appends only the pages dirtied since the
  // previous one (CRC-framed, fsynced), periodically compacted into a full
  // base image. The same log then powers Recover(), RestoreToPass() and
  // ResumeFromLog().
  Status EnableDurability(std::vector<DistArrayId> arrays, std::string directory,
                          DurabilityOptions options);
  Status EnableDurability(std::vector<DistArrayId> arrays, std::string directory) {
    return EnableDurability(std::move(arrays), std::move(directory), DurabilityOptions());
  }

  // Master-restart path: a fresh Driver (same config, arrays, buffers and
  // accumulators re-created by the deterministic driver program) restores
  // array cells, accumulator values and the pass counter from the log's
  // latest checkpoint. Returns the number of completed passes; training
  // resumes from there. Requires EnableDurability on the same directory.
  StatusOr<i64> ResumeFromLog();

  // Point-in-time restore: rewinds the cluster (master masters, worker state,
  // accumulators, pass counter) to the recorded checkpoint taken after
  // `pass` completed passes — bit-for-bit the live state at that point.
  Status RestoreToPass(i64 pass);

  // Checkpoints currently restorable from the log (seq + completed passes).
  StatusOr<std::vector<RestorePoint>> DurabilityPoints() const;

  // Convenience: compile (cached by site id) + execute.
  const ParallelizationPlan& PlanOf(i32 loop_id) const;

  // ---- Metrics ----

  const LoopMetrics& last_metrics() const { return last_metrics_; }
  FabricStats NetStats() const { return fabric_->Stats(); }
  void ResetNetStats() { fabric_->ResetStats(); }

  // ---- Tracing (src/common/trace.h; enable with trace::SetEnabled) ----

  // Drains every live span ring (master threads + anything workers have not
  // yet shipped via PassDone) into the merged cluster timeline and returns
  // it. Idempotent between passes; spans accumulate until the Driver dies.
  const std::vector<trace::Span>& CollectTrace();
  // CollectTrace + Chrome trace-event JSON export (Perfetto-loadable).
  Status DumpTrace(const std::string& path);
  // CollectTrace + per-pass critical-path attribution, formatted as a table.
  std::string CriticalPathReport();

  // Flattens LoopMetrics/RuntimeMetrics/FabricStats behind stable names
  // ("pass.wall_seconds", "net.bytes_sent", ...) with the per-worker
  // reply-wait histograms merged into one "pass.reply_wait".
  MetricsRegistry ExportMetrics() const;

  // ---- Live observability (src/obs; paper-external telemetry plane) ----

  // Starts the background monitor thread: every `period_seconds` it samples
  // live gauges (fabric queue depths, prefetch-ring fill, ParamServer
  // in-flight, pinned snapshots, BufferPool occupancy, per-rank pass/step
  // watermarks) into a bounded ring. Samples surface as "live.*" series in
  // ExportMetrics and on the metrics endpoint. Probes read only atomics and
  // short mutexes and feed nothing back into scheduling, so execution is
  // bit-for-bit identical with the monitor on or off. Idempotent.
  Status EnableMonitor(double period_seconds = 0.1);
  void StopMonitor();
  obs::Monitor* monitor() { return monitor_.get(); }

  // Starts a localhost HTTP endpoint serving Prometheus text exposition on
  // GET /metrics (plus GET /healthz). port == 0 binds an ephemeral port;
  // returns the bound port. Implies EnableMonitor. The endpoint renders an
  // immutable registry snapshot published at pass boundaries — a scrape
  // never touches driver state mid-pass.
  StatusOr<int> StartMetricsEndpoint(int port = 0);
  void StopMetricsEndpoint();

  // Writes the flight recorder's black box (ring of structured runtime
  // events + last monitor samples + live-rank table) as self-contained JSON.
  // Also written automatically on fatal signals / ORION_CHECK failures once
  // fr::InstallFatalHandlers() has run.
  Status DumpBlackBox(const std::string& path);

  // True when the straggler detector currently flags `physical` rank as a
  // confirmed straggler (k·MAD rule over barrier/pass lag, m consecutive
  // rounds). Detection only — scheduling never consults this.
  bool StragglerFlagged(int physical_rank) const {
    return straggler_.Flagged(physical_rank);
  }

  // ---- Online snapshot serving (src/serve) ----

  // Starts a read-only serving tier answering Lookup(array, keys) against
  // pinned copy-on-write snapshots of the listed arrays' master copies,
  // concurrently with training. One version per array is published at every
  // pass boundary (pin-per-version; staleness bounded by one pass) plus once
  // at start, and only when the master is authoritative at that boundary —
  // otherwise the previous version keeps serving. Serving never blocks the
  // training driver and never perturbs training results (bit-for-bit
  // identical with the tier on or off). Requires async_param_serving and
  // versioned_store. The returned pointer stays valid until the Driver dies.
  StatusOr<serve::ServingTier*> StartServingTier(std::vector<DistArrayId> arrays,
                                                 serve::ServingTierOptions options = {});
  // Drains + stops the tier and releases its pins. The tier object survives
  // (stopped) so concurrent monitor probes and late clients stay safe; a new
  // tier may be started afterwards.
  void StopServingTier();
  serve::ServingTier* serving_tier() { return serving_tier_.get(); }
  // Re-runs the authority-gated publish immediately (driver thread only).
  // For unordered-rotation workloads whose arrays stay worker-resident
  // across passes: gather them home first (Cells()), then republish so the
  // tier serves the gathered state instead of skipping those arrays.
  void RepublishServingVersions() { PublishServingVersions(); }

  // Fault-tolerance counters, with the injector's live stats folded in.
  RuntimeMetrics runtime_metrics() const;
  // The injected-fault event log (empty without a fault plan) — the
  // determinism witness for chaos tests.
  std::vector<FaultEvent> fault_events() const;
  // Physical ranks still part of the configuration.
  const std::vector<int>& live_ranks() const { return live_ranks_; }

 private:
  struct ArrayHost {
    DistArrayMeta meta;
    // The authoritative driver-resident cells. Flat (a plain CellStore)
    // between passes; paginated into the copy-on-write page store while a
    // pass serves parameters from it (versioned_store).
    VersionedCellStore master;
    bool on_workers = false;
    // Valid when on_workers: how and under which grid it was scattered.
    ArrayPlacement placement;
    SpaceTimeGrid grid;
    bool iter_ordered = false;  // iteration-space cells shipped sorted
  };

  ArrayHost& Host(DistArrayId id);
  const ArrayHost& Host(DistArrayId id) const;

  int ActiveWorkers() const { return static_cast<int>(live_ranks_.size()); }
  WorkerId PhysicalOf(int logical) const {
    return static_cast<WorkerId>(live_ranks_[static_cast<size_t>(logical)]);
  }
  bool IsLive(WorkerId physical) const;

  // Master-side service handlers.
  struct PassOutcome {
    bool completed = true;
    int lost_rank = -1;  // physical rank declared dead when !completed
  };
  PassOutcome ServicePassMessages(const CompiledLoop& cl, i32 pass);
  PassOutcome RunPassOnce(i32 loop_id);  // one supervised pass attempt
  // Synchronous serving path (1D loops, or async_param_serving off).
  void ServeParamRequestInline(const ParamRequest& req, WorkerId from);

  // Recovery machinery.
  Status WriteRecoveryCheckpoint();
  std::string RecoveryPath(DistArrayId id) const;
  Status Recover(int lost_physical_rank);
  Status RecompileLoops();
  MasterRecord BuildMasterRecord() const;
  std::vector<ArrayCheckpointRef> DurableArrayRefs();
  // Installs a materialized log state into the master (arrays, accumulators;
  // `restore_pass_counter` additionally rewinds pass_counter_).
  Status InstallLogState(DeltaLogReader::State state, bool restore_pass_counter);
  // Two-phase kRejoin broadcast of the current live_ranks_ ring to all
  // members, with reliable acks: every member adopts the (re-)expanded
  // configuration and drops local array state for the re-scatter.
  Status BroadcastReconfigure();
  // Brings `rank` back after the N-1 retire: restarts its executor thread if
  // it halted, re-inserts it into live_ranks_, and reconfigures.
  Status RejoinWorker(int rank, bool saw_phase0_ack);
  void ApplyParamUpdate(const CompiledLoop* cl, PartData pd, u32 tag);
  void BroadcastReplicaSnapshot(const CompiledLoop& cl, DistArrayId array);

  // Placement management.
  void GatherToDriver(DistArrayId id);
  void DropFromWorkers(DistArrayId id);
  void EnsureScattered(const CompiledLoop& cl);
  void ScatterIterSpace(const CompiledLoop& cl);
  void ScatterArray(const CompiledLoop& cl, DistArrayId id, const ArrayPlacement& placement);
  void SendParts(DistArrayId array, std::map<std::pair<int, int>, CellStore>* parts,
                 PartDataMode mode);

  static bool GridEquals(const SpaceTimeGrid& a, const SpaceTimeGrid& b);

  // Rebuilds `cl`'s plan, grid, and schedules for the current active worker
  // count (shared by Compile and post-failure recompilation).
  Status BuildLoop(CompiledLoop* cl);

  DriverConfig config_;
  std::shared_ptr<FaultInjector> injector_;  // null without a fault plan
  std::unique_ptr<Fabric> fabric_;
  SharedDirectory dir_;
  std::vector<std::unique_ptr<Executor>> executors_;
  std::vector<std::thread> threads_;
  // Declared after fabric_ so it quiesces and destroys first; null when
  // async_param_serving is off.
  std::unique_ptr<ParamServer> param_server_;

  std::map<DistArrayId, std::unique_ptr<ArrayHost>> arrays_;
  DistArrayId next_array_id_ = 0;
  i32 next_loop_id_ = 0;
  std::map<i32, std::shared_ptr<const CompiledLoop>> loops_;
  std::vector<f64> accumulators_;
  std::vector<AccumOp> accumulator_ops_;

  std::vector<DistArrayId> auto_ckpt_arrays_;
  std::string auto_ckpt_dir_;
  int auto_ckpt_every_ = 0;

  // Cluster membership: live_ranks_[logical] == physical rank.
  std::vector<int> live_ranks_;

  // Integrated recovery state (EnableRecovery).
  std::vector<DistArrayId> recover_arrays_;
  std::string recover_dir_;
  int recover_every_ = 0;
  bool recovery_enabled_ = false;
  bool baseline_ckpt_done_ = false;
  std::vector<std::pair<i32, i32>> pass_log_;  // (loop_id, pass) since last checkpoint
  std::vector<f64> ckpt_accumulators_;

  // Log-structured durability (EnableDurability). When delta_writer_ is set,
  // WriteRecoveryCheckpoint appends to the log instead of rewriting .ckpt
  // files, and Recover restores from the log.
  std::unique_ptr<DeltaLogWriter> delta_writer_;
  DurabilityOptions durability_options_;

  // Physical ranks that were just sent bulk state (scatter / replica
  // snapshot / rejoin stream) and have not spoken since; their death
  // deadline is extended by supervisor.state_transfer_grace_seconds.
  std::set<int> state_transfer_pending_;

  // Merged cluster timeline: spans shipped in PassDone plus everything
  // drained locally by CollectTrace. Only grows while tracing is enabled.
  std::vector<trace::Span> cluster_trace_;

  LoopMetrics last_metrics_;
  RuntimeMetrics runtime_metrics_;
  std::map<DistArrayId, u32> last_replica_bcast_tag_;
  int pass_counter_ = 0;

  // Adaptive prefetch-depth controller (per loop): the effective depth the
  // next pass will ship in StartPass, re-picked from the previous pass's
  // merged reply-wait p90. pass_prefetch_depth_ is the depth of the pass in
  // flight, reused verbatim by supervision retransmits.
  std::map<i32, int> adaptive_depth_;
  int pass_prefetch_depth_ = 0;

  // Speculation controller (per loop, ordered schedules): how many steps
  // ahead executors may fetch against a possibly-stale snapshot. Deepens
  // while conflicts are rare and blocked waits remain, shrinks as the
  // conflict rate climbs, and disables speculation for the rest of the loop
  // (sticky: re-enabling would re-pay the repair cost that proved it
  // unprofitable) when repair cost exceeds the wait it hides.
  // pass_spec_depth_ is the depth shipped for the pass in flight (0 =
  // synchronous), reused verbatim by supervision retransmits.
  struct SpecState {
    bool enabled = true;
    int depth = 1;
  };
  std::map<i32, SpecState> spec_state_;
  int pass_spec_depth_ = 0;

  // Highest barrier-piggybacked span-batch id appended per physical rank:
  // supervision resends carry the same batch, which must merge exactly once.
  std::map<int, u32> worker_span_seq_;

  // Per-pass metric series (flattened into ExportMetrics' "series" section)
  // and driver-lifetime stripe-contention totals for CriticalPathReport.
  std::map<std::string, std::vector<double>> metrics_series_;
  std::vector<ParamStripeStats> stripe_totals_;

  // ---- Serving tier (StartServingTier) ----

  // Publishes one pinned version per served array; called at pass
  // boundaries (and once at start) on the driver thread.
  void PublishServingVersions();
  // Drain + unpin handshakes before any Flat() collapse or wholesale
  // replacement of a possibly-served master.
  void QuiesceServingFor(DistArrayId id);
  void QuiesceServingAll();

  std::vector<DistArrayId> serve_arrays_;
  std::unique_ptr<serve::ServingTier> serving_tier_;
  // Stopped tiers retire here (not freed) so monitor probes and straggling
  // clients holding the pointer never race a destruction.
  std::vector<std::unique_ptr<serve::ServingTier>> retired_tiers_;
  // What monitor probes read: set after construction, cleared before Stop.
  std::atomic<serve::ServingTier*> serving_tier_live_{nullptr};
  u64 serve_publish_round_ = 0;
  // Interval-QPS bookkeeping between publishes, plus the per-array
  // dirty-page gauges from the last publish (ExportMetrics reads these).
  u64 serve_last_keys_ = 0;
  std::chrono::steady_clock::time_point serve_qps_mark_{};
  double serve_last_qps_ = 0.0;
  std::map<std::string, double> serve_dirty_pages_;

  // ---- Observability plane ----

  // Per-physical-rank live watermarks, written by the service loop as
  // evidence arrives (PassDone, heartbeat pongs, barrier arrivals) and read
  // lock-free by monitor probes.
  struct RankLive {
    std::atomic<i64> started{-1};    // highest pass known started
    std::atomic<i64> completed{-1};  // highest pass known completed
    std::atomic<i64> step{-1};       // highest barrier step arrived at
  };
  std::vector<std::unique_ptr<RankLive>> rank_live_;  // by physical rank

  // Stable-address prefetch-ring occupancy gauges, one per physical rank.
  // Executors (including rejoin replacements) publish into these; monitor
  // probes read them without ever touching an Executor object that a rejoin
  // might be replacing.
  std::vector<std::unique_ptr<std::atomic<int>>> ring_fill_gauges_;

  // Straggler detector: fed on the driver thread only (barrier releases and
  // pass completion), never consulted by scheduling.
  obs::StragglerDetector straggler_;

  void RegisterMonitorProbes();
  // Publishes an immutable ExportMetrics() snapshot to the monitor (and
  // therefore the endpoint). Called at pass boundaries on the driver thread.
  void PublishObsSnapshot();

  // Declared last: the monitor thread and endpoint hold probe closures over
  // fabric_/param_server_/executors_, so they must stop (destroy) first.
  std::unique_ptr<obs::Monitor> monitor_;
  std::unique_ptr<obs::MetricsEndpoint> endpoint_;
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_DRIVER_H_
