#include "src/runtime/speculation.h"

#include <algorithm>

namespace orion {

namespace {

// Merges a sorted interval list in place until at most `max_ranges` remain,
// always collapsing the pair with the smallest gap between them (the merge
// that over-approximates the fewest keys).
void MergeDown(std::vector<std::pair<i64, i64>>* ranges, size_t max_ranges) {
  while (ranges->size() > max_ranges) {
    // One pass: find the gap threshold that removes the surplus, then merge
    // every gap at or below it left to right.
    std::vector<i64> gaps;
    gaps.reserve(ranges->size() - 1);
    for (size_t i = 1; i < ranges->size(); ++i) {
      gaps.push_back((*ranges)[i].first - (*ranges)[i - 1].second);
    }
    const size_t surplus = ranges->size() - max_ranges;
    std::nth_element(gaps.begin(), gaps.begin() + static_cast<std::ptrdiff_t>(surplus - 1),
                     gaps.end());
    const i64 threshold = gaps[surplus - 1];
    std::vector<std::pair<i64, i64>> merged;
    merged.reserve(max_ranges);
    merged.push_back((*ranges)[0]);
    size_t merges_left = surplus;
    for (size_t i = 1; i < ranges->size(); ++i) {
      const i64 gap = (*ranges)[i].first - merged.back().second;
      if (merges_left > 0 && gap <= threshold) {
        merged.back().second = std::max(merged.back().second, (*ranges)[i].second);
        --merges_left;
      } else {
        merged.push_back((*ranges)[i]);
      }
    }
    *ranges = std::move(merged);
  }
}

}  // namespace

void ArrayDirtyRanges::AddKeys(std::vector<i64> keys) {
  if (all_dirty || keys.empty()) {
    return;
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // Coalesce the new keys into intervals (adjacent keys fuse), then merge
  // with the existing sorted interval list.
  std::vector<std::pair<i64, i64>> fresh;
  for (i64 k : keys) {
    if (!fresh.empty() && k <= fresh.back().second + 1) {
      fresh.back().second = k;
    } else {
      fresh.emplace_back(k, k);
    }
  }
  if (ranges.size() + fresh.size() > kAllDirtyThreshold) {
    all_dirty = true;
    ranges.clear();
    return;
  }
  std::vector<std::pair<i64, i64>> merged;
  merged.reserve(ranges.size() + fresh.size());
  std::merge(ranges.begin(), ranges.end(), fresh.begin(), fresh.end(),
             std::back_inserter(merged));
  ranges.clear();
  for (const auto& r : merged) {
    if (!ranges.empty() && r.first <= ranges.back().second + 1) {
      ranges.back().second = std::max(ranges.back().second, r.second);
    } else {
      ranges.push_back(r);
    }
  }
  MergeDown(&ranges, kMaxRanges);
}

bool ArrayDirtyRanges::Contains(i64 key) const {
  if (all_dirty) {
    return true;
  }
  auto it = std::upper_bound(ranges.begin(), ranges.end(), key,
                             [](i64 k, const std::pair<i64, i64>& r) { return k < r.first; });
  return it != ranges.begin() && key <= std::prev(it)->second;
}

std::vector<i64> ArrayDirtyRanges::ConflictKeys(const std::vector<i64>& sorted_keys) const {
  if (all_dirty) {
    return sorted_keys;
  }
  std::vector<i64> out;
  size_t r = 0;
  for (i64 k : sorted_keys) {
    while (r < ranges.size() && ranges[r].second < k) {
      ++r;
    }
    if (r == ranges.size()) {
      break;
    }
    if (k >= ranges[r].first) {
      out.push_back(k);
    }
  }
  return out;
}

void ArrayDirtyRanges::Serialize(ByteWriter* w) const {
  w->Put<u8>(all_dirty ? 1 : 0);
  w->Put<u32>(static_cast<u32>(ranges.size()));
  for (const auto& [lo, hi] : ranges) {
    w->Put<i64>(lo);
    w->Put<i64>(hi);
  }
}

ArrayDirtyRanges ArrayDirtyRanges::Deserialize(ByteReader* r) {
  ArrayDirtyRanges out;
  out.all_dirty = r->Get<u8>() != 0;
  const u32 n = r->Get<u32>();
  out.ranges.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    const i64 lo = r->Get<i64>();
    const i64 hi = r->Get<i64>();
    out.ranges.emplace_back(lo, hi);
  }
  return out;
}

void StepDirtySummary::AddKeys(DistArrayId array, std::vector<i64> keys) {
  if (keys.empty()) {
    return;
  }
  arrays[array].AddKeys(std::move(keys));
}

void StepDirtySummary::Serialize(ByteWriter* w) const {
  w->Put<u32>(static_cast<u32>(arrays.size()));
  for (const auto& [array, ranges] : arrays) {
    w->Put<i32>(array);
    ranges.Serialize(w);
  }
}

StepDirtySummary StepDirtySummary::Deserialize(ByteReader* r) {
  StepDirtySummary out;
  const u32 n = r->Get<u32>();
  for (u32 i = 0; i < n; ++i) {
    const DistArrayId array = r->Get<i32>();
    out.arrays.emplace(array, ArrayDirtyRanges::Deserialize(r));
  }
  return out;
}

}  // namespace orion
