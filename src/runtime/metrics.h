// Per-pass metrics reported by Driver::Execute.
#ifndef ORION_SRC_RUNTIME_METRICS_H_
#define ORION_SRC_RUNTIME_METRICS_H_

#include "src/common/types.h"

namespace orion {

struct LoopMetrics {
  double pass_wall_seconds = 0.0;        // master-observed wall time
  double max_worker_compute_seconds = 0.0;
  double max_worker_wait_seconds = 0.0;
  u64 bytes_sent = 0;                    // fabric traffic during the pass
  u64 messages_sent = 0;
  double virtual_net_seconds = 0.0;      // modeled network cost of the pass
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_METRICS_H_
