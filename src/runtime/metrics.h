// Per-pass metrics reported by Driver::Execute.
#ifndef ORION_SRC_RUNTIME_METRICS_H_
#define ORION_SRC_RUNTIME_METRICS_H_

#include <vector>

// WaitHistogram lives in src/common/histogram.h so the common-layer
// MetricsRegistry can aggregate it; re-exported here for existing users.
#include "src/common/histogram.h"
#include "src/common/serde.h"
#include "src/common/types.h"

namespace orion {

struct LoopMetrics {
  double pass_wall_seconds = 0.0;        // master-observed wall time
  double max_worker_compute_seconds = 0.0;
  double max_worker_wait_seconds = 0.0;
  u64 bytes_sent = 0;                    // fabric traffic during the pass
  u64 messages_sent = 0;
  double virtual_net_seconds = 0.0;      // modeled network cost of the pass
  // Comm/compute overlap engine (max over workers): send time moved onto the
  // comm thread, and prefetch in-flight time hidden under compute.
  double overlap_seconds = 0.0;
  double prefetch_wait_hidden_seconds = 0.0;
  u64 zero_copy_bytes = 0;               // wire bytes that skipped Encode/Decode
  // Sharded async parameter serving (master side): CPU time spent gathering
  // and assembling replies, and the peak number of requests concurrently in
  // flight through the sharded path.
  double param_serve_seconds = 0.0;
  int param_shard_queue_depth_max = 0;
  // Depth-k prefetch ring: the deepest any worker's ring actually got, and
  // the depth the adaptive controller chose for the pass (0 = static).
  int prefetch_ring_depth_used = 0;
  int prefetch_depth_effective = 0;
  // Per-worker reply-wait histograms, indexed by logical rank.
  std::vector<WaitHistogram> worker_reply_wait;
  // Speculative prefetch engine for ordered schedules. Depth 0 = the pass
  // ran synchronous fetches (speculation off or controller-disabled).
  // `spec_issued`/`spec_conflicts` count speculative slots (summed over
  // workers); conflict_rate = conflicts / issued for the pass. Hidden/wait
  // are maxima over workers, like the other per-worker time metrics.
  int spec_depth_effective = 0;
  u64 spec_issued = 0;
  u64 spec_conflicts = 0;
  u64 spec_repair_bytes = 0;
  double spec_conflict_rate = 0.0;
  double spec_hidden_seconds = 0.0;
  double spec_wait_seconds = 0.0;
  u64 spec_requests_served = 0;  // master-side: requests flagged speculative
  // Versioned copy-on-write store (master side): snapshots pinned for
  // serving, pages cloned by concurrent writers, and bytes those clones
  // copied.
  u64 versioned_snapshot_pins = 0;
  u64 versioned_pages_cloned = 0;
  u64 versioned_cow_bytes = 0;
  // Per-stripe contention heatmap, indexed by stripe. Empty when the pass
  // had no sharded serving.
  struct StripeMetrics {
    u64 busy_ns = 0;    // lock-held gather time (0 on the snapshot path)
    u64 gather_ns = 0;  // cell-copy time
    u64 wait_ns = 0;    // lock-acquire wait (readers + writers)
    u64 tasks = 0;
    int queue_depth_max = 0;
  };
  std::vector<StripeMetrics> stripes;
};

// Cumulative fault-tolerance counters for one Driver lifetime: what the fault
// injector did to the run and what the supervision/recovery machinery paid to
// absorb it.
struct RuntimeMetrics {
  // Mirrored from the fault injector (zero when no plan is installed).
  u64 faults_dropped = 0;
  u64 faults_duplicated = 0;
  u64 faults_delayed = 0;
  u64 crashes_triggered = 0;

  // Supervision.
  u64 heartbeats_sent = 0;
  u64 retransmits = 0;  // kStartPass retries by the master

  // Recovery.
  u64 workers_lost = 0;
  u64 recoveries = 0;
  u64 passes_replayed = 0;
  double recovery_seconds = 0.0;  // wall time inside Recover (incl. replay)

  // Checkpointing.
  u64 checkpoints_written = 0;
  double checkpoint_seconds = 0.0;

  // Log-structured durability (delta checkpoints; zero when EnableDurability
  // is not in use).
  u64 delta_checkpoints = 0;     // checkpoints appended as WAL delta records
  u64 log_bytes_appended = 0;    // bytes written to the log (base + WAL)
  u64 pages_deltad = 0;          // dirty pages shipped in delta form
  u64 compactions = 0;           // WAL folds into a fresh base image
  u64 worker_rejoins = 0;        // ranks re-entered after a retire
  double restore_seconds = 0.0;  // wall time materializing log states
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_METRICS_H_
