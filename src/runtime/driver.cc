#include "src/runtime/driver.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>

#include "src/common/buffer_pool.h"
#include "src/common/flight_recorder.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/simd.h"
#include "src/common/timer.h"
#include "src/dsm/randomize.h"

#include <fstream>

namespace orion {

namespace {
u32 PartTag(int tau) { return static_cast<u32>(tau + 1); }
}  // namespace

Driver::Driver(const DriverConfig& config)
    : config_(config),
      fabric_(std::make_unique<Fabric>(config.num_workers, config.net,
                                       config.stats_bucket_seconds)) {
  ORION_CHECK(config.num_workers > 0);
  // Fault injection requires supervision: without retransmits and heartbeats
  // a single dropped control message would hang the run.
  if (config_.fault_plan.Active()) {
    injector_ = std::make_shared<FaultInjector>(config_.fault_plan);
    fabric_->SetInjector(injector_);
    config_.supervisor.enabled = true;
  }
  fabric_->SetZeroCopy(config_.zero_copy);
  dir_.SetSupervisor(config_.supervisor);
  if (config_.async_param_serving) {
    param_server_ = std::make_unique<ParamServer>(
        fabric_.get(), std::max(1, config_.param_server_shards), config_.num_workers,
        config_.param_key_range_stripes);
  }
  live_ranks_.resize(static_cast<size_t>(config.num_workers));
  for (int w = 0; w < config.num_workers; ++w) {
    live_ranks_[static_cast<size_t>(w)] = w;
  }
  rank_live_.reserve(static_cast<size_t>(config.num_workers));
  ring_fill_gauges_.reserve(static_cast<size_t>(config.num_workers));
  for (int w = 0; w < config.num_workers; ++w) {
    rank_live_.push_back(std::make_unique<RankLive>());
    ring_fill_gauges_.push_back(std::make_unique<std::atomic<int>>(0));
  }
  fr::SetLiveRanks(live_ranks_.data(), static_cast<int>(live_ranks_.size()));
  executors_.reserve(static_cast<size_t>(config.num_workers));
  threads_.reserve(static_cast<size_t>(config.num_workers));
  for (int w = 0; w < config.num_workers; ++w) {
    executors_.push_back(std::make_unique<Executor>(w, fabric_.get(), &dir_));
    executors_.back()->set_ring_fill_gauge(ring_fill_gauges_[static_cast<size_t>(w)].get());
    threads_.emplace_back([ex = executors_.back().get()] { ex->Run(); });
  }
}

Driver::~Driver() {
  // The endpoint and monitor hold probe closures over fabric_, param_server_
  // and executors_; stop them before any of that goes away. The serving tier
  // stops next: its workers may still be finishing client batches, and its
  // pins must release before the masters die.
  StopMetricsEndpoint();
  StopMonitor();
  StopServingTier();
  for (int w = 0; w < config_.num_workers; ++w) {
    Message m;
    m.from = kMasterRank;
    m.to = w;
    m.kind = MsgKind::kShutdown;
    fabric_->SendReliable(std::move(m));
  }
  for (auto& t : threads_) {
    t.join();
  }
  fabric_->Shutdown();
}

bool Driver::IsLive(WorkerId physical) const {
  return std::find(live_ranks_.begin(), live_ranks_.end(), physical) != live_ranks_.end();
}

// ---------------------------------------------------------------------------
// DistArray lifecycle

DistArrayId Driver::CreateDistArray(const std::string& name, std::vector<i64> dims,
                                    i32 value_dim, Density density) {
  DistArrayMeta meta;
  meta.id = next_array_id_++;
  meta.name = name;
  meta.key_space = KeySpace(std::move(dims));
  meta.value_dim = value_dim;
  meta.density = density;

  auto host = std::make_unique<ArrayHost>();
  host->meta = meta;
  if (density == Density::kDense) {
    host->master = CellStore(value_dim, CellStore::Layout::kFullDense, meta.key_space.total());
  } else {
    host->master = CellStore(value_dim, CellStore::Layout::kHashed, 0);
  }
  dir_.PutMeta(meta);
  arrays_[meta.id] = std::move(host);
  return meta.id;
}

Driver::ArrayHost& Driver::Host(DistArrayId id) {
  auto it = arrays_.find(id);
  ORION_CHECK(it != arrays_.end()) << "unknown DistArray" << id;
  return *it->second;
}

const Driver::ArrayHost& Driver::Host(DistArrayId id) const {
  auto it = arrays_.find(id);
  ORION_CHECK(it != arrays_.end()) << "unknown DistArray" << id;
  return *it->second;
}

const DistArrayMeta& Driver::Meta(DistArrayId id) const { return Host(id).meta; }

CellStore& Driver::MutableCells(DistArrayId id) {
  GatherToDriver(id);
  // Flat() collapses the versioned pages back into a plain CellStore; legal
  // here because no pass is in flight (the ParamServer quiesced at pass end,
  // so no snapshot pins are live) and the serving tier — the one pin holder
  // that outlives passes — drains and unpins first.
  QuiesceServingFor(id);
  return Host(id).master.Flat();
}

void Driver::FillRandomNormal(DistArrayId id, f32 scale, u64 seed) {
  CellStore& cells = MutableCells(id);
  Rng rng(seed);
  cells.ForEach([&](i64 key, f32* value) {
    for (i32 d = 0; d < cells.value_dim(); ++d) {
      value[d] = scale * static_cast<f32>(rng.NextGaussian());
    }
  });
}

void Driver::MapCells(DistArrayId id, const std::function<void(i64, f32*)>& fn) {
  MutableCells(id).ForEach(fn);
}

void Driver::RandomizeDim(DistArrayId id, int dim, u64 seed) {
  ArrayHost& h = Host(id);
  CellStore& cells = MutableCells(id);
  ORION_CHECK(cells.layout() == CellStore::Layout::kHashed)
      << "RandomizeDim applies to sparse arrays";
  const KeySpace& ks = h.meta.key_space;
  RandomPermutation perm(ks.dim(dim), seed);
  CellStore remapped(cells.value_dim(), CellStore::Layout::kHashed, 0);
  std::vector<i64> idx(static_cast<size_t>(ks.num_dims()));
  cells.ForEach([&](i64 key, f32* value) {
    ks.DecodeInto(key, idx);
    idx[static_cast<size_t>(dim)] = perm.Map(idx[static_cast<size_t>(dim)]);
    f32* dst = remapped.GetOrCreate(ks.Encode(idx));
    std::copy(value, value + cells.value_dim(), dst);
  });
  cells = std::move(remapped);
}

StatusOr<DistArrayId> Driver::Materialize(const std::string& name, std::vector<i64> dims,
                                          i32 value_dim, Density density,
                                          const ArrayRecipe& recipe) {
  std::ifstream in(recipe.path());
  if (!in) {
    return Status::IoError("cannot open " + recipe.path());
  }
  const DistArrayId id = CreateDistArray(name, std::move(dims), value_dim, density);
  ArrayHost& h = Host(id);
  const KeySpace& ks = h.meta.key_space;

  // The fused pass: parse -> map_1 -> ... -> map_n -> insert. No
  // intermediate array is ever allocated.
  std::string line;
  IndexVec idx;
  std::vector<f32> value;
  i64 line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!recipe.parser()(line, &idx, &value)) {
      continue;
    }
    for (const auto& map : recipe.maps()) {
      map(&idx, &value);
    }
    if (!ks.Contains(idx)) {
      return Status::OutOfRange(recipe.path() + ":" + std::to_string(line_no) +
                                ": index outside the DistArray bounds");
    }
    if (static_cast<i32>(value.size()) != value_dim) {
      return Status::InvalidArgument(recipe.path() + ":" + std::to_string(line_no) +
                                     ": record has wrong value arity");
    }
    f32* dst = h.master.GetOrCreate(ks.Encode(idx));
    std::copy(value.begin(), value.end(), dst);
  }
  return id;
}

DistArrayId Driver::GroupByDim(DistArrayId src, int dim, const std::string& name,
                               i32 out_value_dim, const GroupReduceFn& reduce) {
  ArrayHost& h = Host(src);
  GatherToDriver(src);
  const KeySpace& ks = h.meta.key_space;
  ORION_CHECK(dim >= 0 && dim < ks.num_dims());
  const DistArrayId out = CreateDistArray(name, {ks.dim(dim)}, out_value_dim, Density::kDense);
  CellStore& out_cells = Host(out).master.Flat();
  IndexVec idx(static_cast<size_t>(ks.num_dims()));
  h.master.ForEachConst([&](i64 key, const f32* value) {
    ks.DecodeInto(key, idx);
    reduce(out_cells.GetOrCreate(idx[static_cast<size_t>(dim)]), idx, value);
  });
  return out;
}

Status Driver::Checkpoint(DistArrayId id, const std::string& path) {
  return CheckpointWrite(path, MutableCells(id));
}

Status Driver::Restore(DistArrayId id, const std::string& path) {
  auto cells = CheckpointRead(path);
  ORION_RETURN_IF_ERROR(cells.status());
  ArrayHost& h = Host(id);
  if (h.on_workers) {
    GatherToDriver(id);
  }
  if (cells->value_dim() != h.meta.value_dim) {
    return Status::InvalidArgument("checkpoint value_dim mismatch for " + h.meta.name);
  }
  QuiesceServingFor(id);  // wholesale replacement drops pages (needs no pins)
  h.master = std::move(cells).value();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Buffers & accumulators

void Driver::RegisterBuffer(DistArrayId target, i32 update_dim, BufferApplyFn apply,
                            BufferCombineFn combine) {
  auto def = std::make_shared<BufferDef>();
  def->target = target;
  def->update_dim = update_dim;
  def->apply = std::move(apply);
  def->combine = std::move(combine);
  dir_.PutBufferDef(std::move(def));
}

int Driver::CreateAccumulator(AccumOp op) {
  accumulators_.push_back(AccumIdentity(op));
  accumulator_ops_.push_back(op);
  dir_.SetAccumulatorOps(accumulator_ops_);
  return static_cast<int>(accumulators_.size()) - 1;
}

f64 Driver::AccumulatorValue(int slot) const {
  ORION_CHECK(slot >= 0 && slot < static_cast<int>(accumulators_.size()));
  return accumulators_[static_cast<size_t>(slot)];
}

void Driver::ResetAccumulator(int slot) {
  ORION_CHECK(slot >= 0 && slot < static_cast<int>(accumulators_.size()));
  accumulators_[static_cast<size_t>(slot)] =
      AccumIdentity(accumulator_ops_[static_cast<size_t>(slot)]);
}

// ---------------------------------------------------------------------------
// Compilation

StatusOr<i32> Driver::Compile(LoopSpec spec, LoopKernel kernel, ParallelForOptions options) {
  auto cl = std::make_shared<CompiledLoop>();
  cl->loop_id = next_loop_id_++;
  cl->spec = std::move(spec);
  cl->kernel = std::move(kernel);
  cl->options = options;
  ORION_RETURN_IF_ERROR(BuildLoop(cl.get()));
  dir_.PutLoop(cl);
  loops_[cl->loop_id] = cl;
  EnsureScattered(*cl);
  return cl->loop_id;
}

Status Driver::BuildLoop(CompiledLoop* cl) {
  const int active = ActiveWorkers();
  // Everything the planner and the histogram pass need must be
  // driver-resident.
  GatherToDriver(cl->spec.iter_space);
  std::map<DistArrayId, ArrayStats> stats;
  for (const auto& a : cl->spec.accesses) {
    if (a.array == cl->spec.iter_space || stats.count(a.array) > 0) {
      continue;
    }
    GatherToDriver(a.array);
    const ArrayHost& h = Host(a.array);
    ArrayStats s;
    s.cells = h.master.NumCells();
    s.value_dim = h.meta.value_dim;
    stats[a.array] = s;
  }

  cl->options.planner.num_workers = active;
  ParallelizationPlan plan = PlanLoop(cl->spec, stats, cl->options.planner);
  if (plan.form == ParallelForm::kSerial) {
    return Status::FailedPrecondition(plan.explanation);
  }
  const ParallelForOptions& options = cl->options;

  cl->plan = std::move(plan);
  cl->num_workers = active;
  cl->sched_1d = OneDSchedule{active};
  cl->sched_wave = WavefrontSchedule{active, active};
  cl->sched_rot = RotationSchedule{active, options.pipeline_depth};

  // Histogram-balanced splits over the iteration space (schedule coords).
  const ArrayHost& iter = Host(cl->spec.iter_space);
  const KeySpace& ks = iter.meta.key_space;
  const int space_dim = cl->plan.space_dim;
  const int time_dim = cl->plan.time_dim;
  const bool transformed = cl->plan.form == ParallelForm::k2DUnimodular;

  i64 space_lo = 0;
  i64 space_hi = 0;
  i64 time_lo = 0;
  i64 time_hi = 0;
  if (transformed) {
    bool first = true;
    std::vector<i64> idx(static_cast<size_t>(ks.num_dims()));
    iter.master.ForEachConst([&](i64 key, const f32*) {
      ks.DecodeInto(key, idx);
      auto [q0, q1] = cl->ToScheduleCoords(idx[0], idx[1]);
      const i64 s = space_dim == 0 ? q0 : q1;
      const i64 t = time_dim == 0 ? q0 : q1;
      if (first) {
        space_lo = space_hi = s;
        time_lo = time_hi = t;
        first = false;
      } else {
        space_lo = std::min(space_lo, s);
        space_hi = std::max(space_hi, s);
        time_lo = std::min(time_lo, t);
        time_hi = std::max(time_hi, t);
      }
    });
    if (first) {
      return Status::FailedPrecondition("iteration space is empty");
    }
  } else {
    space_lo = 0;
    space_hi = ks.dim(space_dim) - 1;
    if (time_dim >= 0) {
      time_lo = 0;
      time_hi = ks.dim(time_dim) - 1;
    }
  }

  constexpr int kHistBuckets = 4096;
  DimHistogram space_hist(space_lo, space_hi, kHistBuckets);
  DimHistogram time_hist(time_lo, std::max(time_lo, time_hi), kHistBuckets);
  {
    std::vector<i64> idx(static_cast<size_t>(ks.num_dims()));
    iter.master.ForEachConst([&](i64 key, const f32*) {
      ks.DecodeInto(key, idx);
      i64 s;
      i64 t = 0;
      if (transformed) {
        auto [q0, q1] = cl->ToScheduleCoords(idx[0], idx[1]);
        s = space_dim == 0 ? q0 : q1;
        t = time_dim == 0 ? q0 : q1;
      } else {
        s = idx[static_cast<size_t>(space_dim)];
        if (time_dim >= 0) {
          t = idx[static_cast<size_t>(time_dim)];
        }
      }
      space_hist.Add(s);
      if (time_dim >= 0) {
        time_hist.Add(t);
      }
    });
  }

  cl->grid.space_dim = space_dim;
  cl->grid.time_dim = time_dim;
  if (options.equal_width_partitions) {
    cl->grid.space_splits = RangeSplits::EqualWidth(space_hi - space_lo + 1, active);
  } else {
    cl->grid.space_splits = RangeSplits::FromHistogram(space_hist, active);
  }
  if (transformed) {
    // Transformed loops carry dependences on the outer (time) dimension with
    // arbitrary distances, so a time *range* could contain dependent
    // iterations assigned to different space partitions. Every distinct
    // transformed outer value therefore becomes its own wavefront step.
    const i64 span = time_hi - time_lo + 1;
    std::vector<i64> uppers;
    uppers.reserve(static_cast<size_t>(span) - 1);
    for (i64 v = time_lo; v < time_hi; ++v) {
      uppers.push_back(v);
    }
    cl->grid.time_splits = RangeSplits(static_cast<int>(span), std::move(uppers));
    cl->sched_wave.num_time_parts = static_cast<int>(span);
  } else if (cl->Is2D()) {
    const int time_parts =
        cl->UsesWavefront() ? cl->sched_wave.num_time_parts : cl->sched_rot.num_time_parts();
    if (options.equal_width_partitions) {
      cl->grid.time_splits = RangeSplits::EqualWidth(time_hi - time_lo + 1, time_parts);
    } else {
      cl->grid.time_splits = RangeSplits::FromHistogram(time_hist, time_parts);
    }
  }
  return Status::Ok();
}

Status Driver::RecompileLoops() {
  for (auto& [id, cl_const] : loops_) {
    // Copy the immutable inputs (spec, kernel, options, prefetch program) and
    // rebuild everything derived from the worker count.
    auto cl = std::make_shared<CompiledLoop>(*cl_const);
    ORION_RETURN_IF_ERROR(BuildLoop(cl.get()));
    dir_.PutLoop(cl);
    loops_[id] = cl;
  }
  return Status::Ok();
}

StatusOr<i32> Driver::CompileBody(DistArrayId iter_space, std::vector<i64> iter_extents,
                                  bool ordered, const LoopBody& body, LoopKernel kernel,
                                  ParallelForOptions options) {
  LoopSpec spec;
  spec.iter_space = iter_space;
  spec.iter_extents = std::move(iter_extents);
  spec.ordered = ordered;
  spec.accesses = ExtractAccesses(body);
  for (auto& a : spec.accesses) {
    a.array_name = Host(a.array).meta.name;  // nicer diagnostics
  }

  auto program = std::make_shared<PrefetchProgram>(SynthesizePrefetch(body));
  auto loop = Compile(std::move(spec), std::move(kernel), options);
  ORION_RETURN_IF_ERROR(loop.status());

  // Attach the synthesized prefetch function (key spaces for the arrays it
  // records) to the compiled loop.
  auto cl = std::const_pointer_cast<CompiledLoop>(loops_[*loop]);
  for (DistArrayId id : program->target_arrays()) {
    cl->prefetch_key_spaces.emplace(id, Host(id).meta.key_space);
  }
  cl->prefetch_program = std::move(program);
  return *loop;
}

const ParallelizationPlan& Driver::PlanOf(i32 loop_id) const {
  auto it = loops_.find(loop_id);
  ORION_CHECK(it != loops_.end());
  return it->second->plan;
}

// ---------------------------------------------------------------------------
// Placement management

bool Driver::GridEquals(const SpaceTimeGrid& a, const SpaceTimeGrid& b) {
  return a.space_dim == b.space_dim && a.time_dim == b.time_dim &&
         a.space_splits.num_parts() == b.space_splits.num_parts() &&
         a.space_splits.uppers() == b.space_splits.uppers() &&
         a.time_splits.num_parts() == b.time_splits.num_parts() &&
         a.time_splits.uppers() == b.time_splits.uppers();
}

void Driver::GatherToDriver(DistArrayId id) {
  ArrayHost& h = Host(id);
  if (!h.on_workers) {
    return;
  }
  if (h.placement.scheme == PartitionScheme::kReplicated ||
      h.placement.scheme == PartitionScheme::kServer) {
    // The master copy is authoritative; just drop worker-side state.
    DropFromWorkers(id);
    h.on_workers = false;
    return;
  }
  for (int w : live_ranks_) {
    Message m;
    m.from = kMasterRank;
    m.to = w;
    m.kind = MsgKind::kControl;
    m.payload = ArrayOp{ControlOp::kGather, id}.Encode();
    fabric_->SendReliable(std::move(m));
  }
  int replies = 0;
  while (replies < ActiveWorkers()) {
    auto msg = fabric_->Recv(kMasterRank);
    ORION_CHECK(msg.has_value()) << "fabric shut down during gather";
    if (msg->kind == MsgKind::kControl || msg->kind == MsgKind::kBarrier ||
        !IsLive(msg->from)) {
      // Stragglers from a faulty pass: duplicated PassDone / barrier
      // arrivals, or traffic from a retired rank. Harmless here.
      continue;
    }
    ORION_CHECK(msg->kind == MsgKind::kParamUpdate)
        << "unexpected message during gather:" << static_cast<int>(msg->kind);
    PartData pd = TakePart(*msg);
    ORION_CHECK(pd.array == id && pd.mode == PartDataMode::kOverwrite);
    pd.cells.ForEachConstFast([&](i64 key, const f32* v) {
      simd::CopyF32(h.master.GetOrCreate(key), v,
                    static_cast<size_t>(h.meta.value_dim));
    });
    ++replies;
  }
  h.on_workers = false;
}

void Driver::DropFromWorkers(DistArrayId id) {
  for (int w : live_ranks_) {
    Message m;
    m.from = kMasterRank;
    m.to = w;
    m.kind = MsgKind::kControl;
    m.payload = ArrayOp{ControlOp::kDropArray, id}.Encode();
    fabric_->SendReliable(std::move(m));
  }
}

void Driver::SendParts(DistArrayId array, std::map<std::pair<int, int>, CellStore>* parts,
                       PartDataMode mode) {
  for (auto& [key, cells] : *parts) {
    const auto [worker, tau] = key;  // `worker` is a logical (schedule) index
    PartData pd;
    pd.array = array;
    pd.part = tau;
    pd.mode = mode;
    pd.cells = std::move(cells);
    Message m;
    m.from = kMasterRank;
    m.to = PhysicalOf(worker);
    m.kind = MsgKind::kPartitionData;
    m.tag = PartTag(tau);
    AttachPart(&m, std::move(pd), fabric_->zero_copy());
    state_transfer_pending_.insert(m.to);
    fabric_->Send(std::move(m));
  }
}

void Driver::ScatterIterSpace(const CompiledLoop& cl) {
  ArrayHost& h = Host(cl.spec.iter_space);
  const KeySpace& ks = h.meta.key_space;

  // Collect keys in execution order: sorted for ordered loops (lexicographic
  // serial semantics), shuffled for unordered loops.
  std::vector<i64> keys;
  keys.reserve(static_cast<size_t>(std::max<i64>(h.master.NumCells(), 0)));
  h.master.ForEachConst([&](i64 key, const f32*) { keys.push_back(key); });
  if (cl.spec.ordered) {
    std::sort(keys.begin(), keys.end());
  } else {
    // Seeded per array, not from a driver-lifetime stream: a re-scatter after
    // recovery must reproduce the same execution order.
    Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + static_cast<u64>(h.meta.id) + 1);
    for (size_t i = keys.size(); i-- > 1;) {
      std::swap(keys[i], keys[rng.NextBounded(i + 1)]);
    }
  }

  std::map<std::pair<int, int>, CellStore> parts;
  std::vector<i64> idx(static_cast<size_t>(ks.num_dims()));
  for (i64 key : keys) {
    ks.DecodeInto(key, idx);
    i64 s;
    i64 t = 0;
    if (cl.plan.form == ParallelForm::k2DUnimodular) {
      auto [q0, q1] = cl.ToScheduleCoords(idx[0], idx[1]);
      s = cl.plan.space_dim == 0 ? q0 : q1;
      t = cl.plan.time_dim == 0 ? q0 : q1;
    } else {
      s = idx[static_cast<size_t>(cl.plan.space_dim)];
      if (cl.plan.time_dim >= 0) {
        t = idx[static_cast<size_t>(cl.plan.time_dim)];
      }
    }
    const int worker = cl.grid.space_splits.PartOf(s);
    const int tau = cl.Is2D() ? cl.grid.time_splits.PartOf(t) : -1;
    auto [it, inserted] = parts.try_emplace(
        {worker, tau}, CellStore(h.meta.value_dim, CellStore::Layout::kHashed, 0));
    f32* dst = it->second.GetOrCreate(key);
    const f32* src = h.master.Get(key);
    std::copy(src, src + h.meta.value_dim, dst);
  }
  SendParts(h.meta.id, &parts, PartDataMode::kInstallPart);

  h.on_workers = true;
  h.placement = ArrayPlacement{PartitionScheme::kIterSpace, -1};
  h.grid = cl.grid;
  h.iter_ordered = cl.spec.ordered;
}

namespace {
// Key bounds (inclusive) of partition `part` under `splits` covering
// [0, extent).
std::pair<i64, i64> PartBounds(const RangeSplits& splits, int part, i64 extent) {
  const i64 lo = part == 0 ? 0 : splits.uppers()[static_cast<size_t>(part - 1)] + 1;
  const i64 hi = part == splits.num_parts() - 1 ? extent - 1
                                                : splits.uppers()[static_cast<size_t>(part)];
  return {lo, hi};
}
}  // namespace

void Driver::ScatterArray(const CompiledLoop& cl, DistArrayId id,
                          const ArrayPlacement& placement) {
  ArrayHost& h = Host(id);
  const KeySpace& ks = h.meta.key_space;

  // Dense 1-D arrays partitioned along their only dimension ship as dense
  // key-range blocks: kernels then access them with direct indexing.
  const bool dense_blocks = h.meta.density == Density::kDense && ks.num_dims() == 1 &&
                            placement.array_dim == 0 &&
                            (placement.scheme == PartitionScheme::kRange ||
                             placement.scheme == PartitionScheme::kSpaceTime);

  if (placement.scheme == PartitionScheme::kServer) {
    // Master-hosted; nothing to ship.
    h.on_workers = true;  // placement is active (workers hold caches only)
    h.placement = placement;
    h.grid = cl.grid;
    return;
  }
  if (placement.scheme == PartitionScheme::kReplicated) {
    BroadcastReplicaSnapshot(cl, id);
    h.on_workers = true;
    h.placement = placement;
    h.grid = cl.grid;
    return;
  }

  std::map<std::pair<int, int>, CellStore> parts;
  if (placement.scheme == PartitionScheme::kSpaceTime) {
    // Pre-create every time partition (the residency protocol requires even
    // empty partitions to circulate).
    const int time_parts = cl.grid.time_splits.num_parts();
    for (int tau = 0; tau < time_parts; ++tau) {
      const int owner = cl.UsesWavefront() ? cl.sched_wave.InitialOwner(tau)
                                           : cl.sched_rot.InitialOwner(tau);
      if (dense_blocks) {
        auto [lo, hi] = PartBounds(cl.grid.time_splits, tau, ks.dim(0));
        parts.try_emplace({owner, tau}, CellStore::DenseRange(h.meta.value_dim, lo, hi));
      } else {
        parts.try_emplace({owner, tau},
                          CellStore(h.meta.value_dim, CellStore::Layout::kHashed, 0));
      }
    }
  } else if (dense_blocks) {
    for (int w = 0; w < cl.grid.space_splits.num_parts(); ++w) {
      auto [lo, hi] = PartBounds(cl.grid.space_splits, w, ks.dim(0));
      parts.try_emplace({w, -1}, CellStore::DenseRange(h.meta.value_dim, lo, hi));
    }
  }
  h.master.ForEachConst([&](i64 key, const f32* v) {
    const i64 coord = ks.Coord(key, placement.array_dim);
    int worker;
    int tau;
    if (placement.scheme == PartitionScheme::kRange) {
      worker = cl.grid.space_splits.PartOf(coord);
      tau = -1;
    } else {
      tau = cl.grid.time_splits.PartOf(coord);
      worker = cl.UsesWavefront() ? cl.sched_wave.InitialOwner(tau)
                                  : cl.sched_rot.InitialOwner(tau);
    }
    auto [it, inserted] = parts.try_emplace(
        {worker, tau}, CellStore(h.meta.value_dim, CellStore::Layout::kHashed, 0));
    f32* dst = it->second.GetOrCreate(key);
    std::copy(v, v + h.meta.value_dim, dst);
  });
  SendParts(id, &parts,
            placement.scheme == PartitionScheme::kRange ? PartDataMode::kInstallRange
                                                         : PartDataMode::kInstallPart);

  h.on_workers = true;
  h.placement = placement;
  h.grid = cl.grid;
}

void Driver::EnsureScattered(const CompiledLoop& cl) {
  ORION_TRACE_SPAN(kDriver, "scatter");
  {
    ArrayHost& h = Host(cl.spec.iter_space);
    const bool ok = h.on_workers && h.placement.scheme == PartitionScheme::kIterSpace &&
                    GridEquals(h.grid, cl.grid) && h.iter_ordered == cl.spec.ordered;
    if (!ok) {
      GatherToDriver(cl.spec.iter_space);
      ScatterIterSpace(cl);
    }
  }
  for (const auto& [id, placement] : cl.plan.placements) {
    ArrayHost& h = Host(id);
    const bool ok = h.on_workers && h.placement.scheme == placement.scheme &&
                    h.placement.array_dim == placement.array_dim && GridEquals(h.grid, cl.grid);
    if (!ok) {
      GatherToDriver(id);
      ScatterArray(cl, id, placement);
    }
  }
}

// ---------------------------------------------------------------------------
// Pass execution (master service loop)

void Driver::ServeParamRequestInline(const ParamRequest& req, WorkerId from) {
  ArrayHost& h = Host(req.array);
  if (req.speculative) {
    ++last_metrics_.spec_requests_served;
  }
  CpuStopwatch sw;
  Message reply =
      BuildParamReply(req, h.master.Flat(), h.meta.value_dim, fabric_->zero_copy());
  reply.to = from;
  last_metrics_.param_serve_seconds += sw.ElapsedSeconds();
  fabric_->Send(std::move(reply));
}

void Driver::BroadcastReplicaSnapshot(const CompiledLoop& cl, DistArrayId array) {
  ArrayHost& h = Host(array);
  QuiesceServingFor(array);  // the Flat() below collapses a served master
  // Zero-copy: one shared payload serves every worker (receivers copy out of
  // the shared carrier), replacing per-worker copy + encode + decode.
  std::shared_ptr<ZeroCopyPart> shared;
  if (fabric_->zero_copy()) {
    shared = std::make_shared<ZeroCopyPart>();
    shared->pd.array = array;
    shared->pd.part = -1;
    shared->pd.mode = PartDataMode::kReplicaSnapshot;
    shared->pd.cells = h.master.Flat();  // one copy for the whole broadcast
    shared->multi_reader = true;  // receivers copy; concurrent moves would race
  }
  for (int w : live_ranks_) {
    Message m;
    m.from = kMasterRank;
    m.to = w;
    m.kind = MsgKind::kPartitionData;
    if (shared != nullptr) {
      m.zc = shared;
    } else {
      PartData pd;
      pd.array = array;
      pd.part = -1;
      pd.mode = PartDataMode::kReplicaSnapshot;
      pd.cells = h.master.Flat();  // copy
      m.payload = pd.Encode();
    }
    state_transfer_pending_.insert(w);
    fabric_->Send(std::move(m));
  }
}

void Driver::ApplyParamUpdate(const CompiledLoop* cl, PartData pd, u32 tag) {
  ArrayHost& h = Host(pd.array);
  switch (pd.mode) {
    case PartDataMode::kOverwrite:
      pd.cells.ForEachConstFast([&](i64 key, const f32* v) {
        simd::CopyF32(h.master.GetOrCreate(key), v,
                      static_cast<size_t>(h.meta.value_dim));
      });
      break;
    case PartDataMode::kApplyAdd:
      h.master.MergeAdd(pd.cells);
      break;
    case PartDataMode::kApplyBufferUdf: {
      auto def = dir_.GetBufferDef(pd.array);
      ORION_CHECK(def != nullptr) << "buffered update for array without buffer def";
      DistArrayBuffer::ApplyTo(&h.master, pd.cells, def->apply);
      break;
    }
    default:
      ORION_CHECK(false) << "unexpected PartData mode on master";
  }
  if (cl != nullptr) {
    auto it = cl->plan.placements.find(pd.array);
    if (it != cl->plan.placements.end() &&
        it->second.scheme == PartitionScheme::kReplicated) {
      // Coalesce: broadcast a refreshed snapshot once per step tag rather
      // than once per worker flush (replicas tolerate bounded staleness).
      auto [tag_it, inserted] = last_replica_bcast_tag_.try_emplace(pd.array, tag);
      if (inserted || tag_it->second != tag) {
        tag_it->second = tag;
        BroadcastReplicaSnapshot(*cl, pd.array);
      }
    }
  }
}

Driver::PassOutcome Driver::ServicePassMessages(const CompiledLoop& cl, i32 pass) {
  const SupervisorConfig& sup = config_.supervisor;
  const int active = ActiveWorkers();
  last_metrics_.max_worker_compute_seconds = 0.0;
  last_metrics_.max_worker_wait_seconds = 0.0;
  last_metrics_.overlap_seconds = 0.0;
  last_metrics_.prefetch_wait_hidden_seconds = 0.0;
  last_metrics_.param_serve_seconds = 0.0;
  last_metrics_.param_shard_queue_depth_max = 0;
  last_metrics_.prefetch_ring_depth_used = 0;
  last_metrics_.spec_issued = 0;
  last_metrics_.spec_conflicts = 0;
  last_metrics_.spec_repair_bytes = 0;
  last_metrics_.spec_conflict_rate = 0.0;
  last_metrics_.spec_hidden_seconds = 0.0;
  last_metrics_.spec_wait_seconds = 0.0;
  last_metrics_.spec_requests_served = 0;
  last_metrics_.versioned_snapshot_pins = 0;
  last_metrics_.versioned_pages_cloned = 0;
  last_metrics_.versioned_cow_bytes = 0;
  last_metrics_.stripes.clear();
  last_metrics_.worker_reply_wait.assign(static_cast<size_t>(active), WaitHistogram{});
  std::vector<DistArrayId> returned;

  // Sharded async serving. 2D passes were always sound: rotation loops defer
  // kServer buffered applies to pass end (server state is pass-constant), and
  // wavefront mid-step overwrites are disjoint from concurrent readers' key
  // lists. 1D chunked loops rely on prompt mid-pass freshness (a round's
  // request, queued behind its flushes on the FIFO master link, must read the
  // just-applied state); the versioned store preserves exactly that — the
  // snapshot is pinned here, at dequeue time on this single-threaded service
  // loop, so it already reflects every update dequeued before the request —
  // which makes the async path bit-for-bit identical to inline serving and
  // lets 1D loops join it.
  const bool versioned = config_.versioned_store && param_server_ != nullptr;
  const bool async_serving =
      param_server_ != nullptr && (cl.Is2D() || versioned);
  if (async_serving) {
    param_server_->ResetPassStats();
  }
  auto logical_of = [&](int physical) {
    return static_cast<int>(std::find(live_ranks_.begin(), live_ranks_.end(), physical) -
                            live_ranks_.begin());
  };
  auto abort_pass = [&](int lost) {
    // Gather tasks may still hold pointers into ArrayHost state the recovery
    // path is about to overwrite; drain them before unwinding.
    if (async_serving) {
      param_server_->Quiesce();
    }
    return PassOutcome{false, lost};
  };

  // Buffered updates to server-hosted arrays in 2D passes are deferred and
  // applied at pass end in logical-rank order (with per-worker FIFO order
  // preserved). This keeps server state constant for the whole pass — which
  // lets executors prefetch a step's values at any point during the pass —
  // and removes arrival-interleaving from the f64-sensitive apply order.
  // 1D chunked loops are exempt: their rounds rely on prompt mid-pass
  // freshness (bounded staleness, paper Sec. 3.3).
  std::vector<std::pair<int, PartData>> deferred_server;  // (physical rank, update)
  // Accumulator contributions per physical rank, folded at pass end in
  // logical-rank order so f64 reduction order is arrival-independent.
  std::map<int, std::vector<f64>> worker_accum;

  // Per-physical-rank supervision state. `started` means we have evidence
  // the worker received this pass's kStartPass (any pass message, or a
  // heartbeat pong whose watermark covers the pass); until then the master
  // retransmits kStartPass with exponential backoff.
  std::map<int, bool> done;
  std::map<int, bool> started;
  std::map<int, double> last_heard;
  std::map<int, double> next_ping;
  std::map<int, double> next_retry;
  std::map<int, double> retry_delay;
  std::map<int, int> retries;
  Stopwatch clock;
  for (int w : live_ranks_) {
    done[w] = false;
    started[w] = false;
    last_heard[w] = 0.0;
    next_ping[w] = sup.heartbeat_interval_seconds;
    next_retry[w] = sup.retry_initial_seconds;
    retry_delay[w] = sup.retry_initial_seconds;
    retries[w] = 0;
  }
  // Barrier bookkeeping per step tag: which live ranks arrived, and whether
  // the release went out. A worker whose arrival (or release) was lost
  // resends; arrivals after the release get an individual re-release.
  std::map<u32, std::set<int>> barrier_arrived;
  std::map<u32, bool> barrier_released;
  // Straggler-detector rounds: first-arrival clock per rank per barrier tag
  // (fed at release time), and per-rank compute seconds (fed at pass end).
  std::map<u32, std::vector<std::pair<int, double>>> barrier_arrival_times;
  std::vector<std::pair<int, double>> pass_compute;
  auto observe_round = [&](const std::vector<std::pair<int, double>>& round) {
    straggler_.ObserveRound(round);
    for (int r : straggler_.TakeNewlyFlagged()) {
      ORION_LOG(kWarning) << "straggler detected: rank " << r << " lag_ewma="
                          << straggler_.LagEwma(r) * 1e3 << "ms (pass " << pass << ")";
      fr::Record(fr::EventKind::kStraggler, r, pass);
    }
  };
  u32 hb_seq = 0;
  int num_done = 0;
  const double poll = std::min(0.01, sup.heartbeat_interval_seconds / 4.0);

  // Per-step dirty-range summaries of the kOverwrite flushes applied this
  // pass, keyed by the flush tag (= the global step). Complete at release
  // time by construction: a worker's flushes precede its barrier arrival on
  // the same FIFO link, and the release waits for every arrival. Piggybacked
  // on the release so speculative fetches that crossed this barrier can be
  // validated; only maintained while the pass speculates.
  std::map<u32, StepDirtySummary> step_dirty;

  auto send_release = [&](u32 tag, int to, bool reliable) {
    Message go;
    go.from = kMasterRank;
    go.to = to;
    go.kind = MsgKind::kBarrier;
    go.tag = tag;
    BarrierMsg release;
    release.pass = pass;
    release.release = true;
    if (pass_spec_depth_ > 0) {
      // Attach even when empty: "present and empty" proves nothing changed,
      // where absence would force the validator to assume everything did.
      release.has_dirty = true;
      auto it = step_dirty.find(tag);
      if (it != step_dirty.end()) {
        release.dirty = it->second;
      }
    }
    go.payload = release.Encode();
    if (reliable) {
      fabric_->SendReliable(std::move(go));
    } else {
      fabric_->Send(std::move(go));
    }
  };

  while (num_done < active) {
    std::optional<Message> msg;
    if (sup.enabled) {
      msg = fabric_->RecvWithTimeout(kMasterRank, poll);
      const double now = clock.ElapsedSeconds();
      for (int w : live_ranks_) {
        if (done[w]) {
          continue;
        }
        // A rank that was just sent bulk state (scatter, replica snapshot,
        // rejoin stream) gets extra grace until it first speaks: installing
        // a large transfer can silently exceed the death timeout, and
        // retiring a healthy rank mid-install would cascade restores.
        double deadline = sup.death_timeout_seconds;
        if (state_transfer_pending_.count(w) != 0) {
          deadline += sup.state_transfer_grace_seconds;
        }
        if (now - last_heard[w] > deadline) {
          return abort_pass(w);
        }
        if (!started[w] && now >= next_retry[w]) {
          if (retries[w] >= sup.max_retries) {
            return abort_pass(w);
          }
          ++retries[w];
          ++runtime_metrics_.retransmits;
          fr::Record(fr::EventKind::kRetransmit, w, pass);
          Message m;
          m.from = kMasterRank;
          m.to = w;
          m.kind = MsgKind::kControl;
          m.payload =
              StartPass{cl.loop_id, pass, pass_prefetch_depth_, pass_spec_depth_}.Encode();
          fabric_->SendReliable(std::move(m));
          retry_delay[w] *= sup.retry_backoff_factor;
          next_retry[w] = now + retry_delay[w];
        }
        if (now >= next_ping[w]) {
          ++runtime_metrics_.heartbeats_sent;
          Message m;
          m.from = kMasterRank;
          m.to = w;
          m.kind = MsgKind::kControl;
          m.payload = Heartbeat{/*is_reply=*/false, ++hb_seq}.Encode();
          fabric_->SendReliable(std::move(m));
          next_ping[w] = now + sup.heartbeat_interval_seconds;
        }
      }
      if (!msg.has_value()) {
        ORION_CHECK(!fabric_->Closed(kMasterRank)) << "fabric shut down during pass";
        continue;
      }
    } else {
      msg = fabric_->Recv(kMasterRank);
      ORION_CHECK(msg.has_value()) << "fabric shut down during pass";
    }
    if (!IsLive(msg->from)) {
      continue;  // zombie traffic from a retired rank
    }
    last_heard[msg->from] = clock.ElapsedSeconds();
    state_transfer_pending_.erase(msg->from);  // it spoke: installs are done

    switch (msg->kind) {
      case MsgKind::kParamRequest: {
        started[msg->from] = true;
        ParamRequest req = TakeParamRequest(*msg);
        if (async_serving) {
          ArrayHost& h = Host(req.array);
          if (versioned) {
            // Paginate lazily on the first request ever served for this
            // array; pages then persist across passes (mutations between
            // requests go through the copy-on-write writer path).
            if (!h.master.paged()) {
              h.master.BeginServing();
            }
            param_server_->HandleRequestSnapshot(std::move(req), msg->from,
                                                 h.master.Pin(), h.meta.value_dim);
          } else {
            param_server_->HandleRequest(std::move(req), msg->from, &h.master.Flat(),
                                         h.meta.value_dim);
          }
        } else {
          ServeParamRequestInline(req, msg->from);
        }
        break;
      }
      case MsgKind::kParamUpdate: {
        started[msg->from] = true;
        PartData pd = TakePart(*msg);
        if (pass_spec_depth_ > 0 && pd.mode == PartDataMode::kOverwrite) {
          // Record what this step's flush overwrites before the update is
          // consumed; the summary rides on the step's barrier release.
          std::vector<i64> keys;
          keys.reserve(pd.cells.NumCells());
          pd.cells.ForEachConstFast([&](i64 key, const f32*) { keys.push_back(key); });
          step_dirty[msg->tag].AddKeys(pd.array, std::move(keys));
        }
        auto pit = cl.plan.placements.find(pd.array);
        const bool server_buffered =
            cl.Is2D() && pd.mode == PartDataMode::kApplyBufferUdf &&
            pit != cl.plan.placements.end() &&
            pit->second.scheme == PartitionScheme::kServer;
        if (server_buffered) {
          deferred_server.emplace_back(msg->from, std::move(pd));
        } else if (async_serving && !versioned) {
          // Mid-pass writer (wavefront kOverwrite flush): dependence analysis
          // makes its cells disjoint from every concurrent reader's key list,
          // but concurrent gathers still need exclusion against torn reads
          // and rehash. Key-range ownership narrows that to the stripes the
          // update actually touches (dense masters only; hashed masters fall
          // back to locking every stripe because an insert can rehash).
          // Speculative fetches would break the disjointness premise (they
          // read exactly the keys upcoming flushes overwrite), which is why
          // eligibility in RunPassOnce excludes this non-versioned async
          // mode: pool-thread gathers read live state, not a pinned version.
          ArrayHost& h = Host(pd.array);
          const CellStore& m = h.master.Flat();
          const i64 lo = m.IsDense() ? m.range_lo() : 0;
          const i64 hi = m.IsDense() ? m.range_hi() : -1;
          auto locks = param_server_->LockForUpdate(pd.cells, lo, hi);
          ApplyParamUpdate(&cl, std::move(pd), msg->tag);
        } else {
          // Versioned store: the writer clones only the pages it touches, so
          // in-flight snapshot gathers keep reading their pinned version and
          // no stripe lock is needed at all.
          ApplyParamUpdate(&cl, std::move(pd), msg->tag);
        }
        break;
      }
      case MsgKind::kPartitionData: {
        // Wavefront loops: the last worker in the ring returns rotated
        // partitions to the master.
        started[msg->from] = true;
        PartData pd = TakePart(*msg);
        ArrayHost& h = Host(pd.array);
        pd.cells.ForEachConstFast([&](i64 key, const f32* v) {
          simd::CopyF32(h.master.GetOrCreate(key), v,
                        static_cast<size_t>(h.meta.value_dim));
        });
        returned.push_back(pd.array);
        break;
      }
      case MsgKind::kBarrier: {
        BarrierMsg b = BarrierMsg::Decode(msg->payload);
        // Piggybacked partial trace drain (rings >75% full mid-pass). Merge
        // before the staleness check — spans from an abandoned attempt are
        // still real history — deduped by the per-worker batch id so
        // supervision resends of the same arrival append exactly once.
        if (!b.release && !b.spans.empty() && b.span_seq > worker_span_seq_[msg->from]) {
          worker_span_seq_[msg->from] = b.span_seq;
          cluster_trace_.insert(cluster_trace_.end(),
                                std::make_move_iterator(b.spans.begin()),
                                std::make_move_iterator(b.spans.end()));
        }
        if (b.pass != pass || b.release) {
          break;  // stale arrival from an earlier attempt
        }
        started[msg->from] = true;
        auto& arrived = barrier_arrived[msg->tag];
        bool& released = barrier_released[msg->tag];
        if (arrived.insert(msg->from).second) {
          barrier_arrival_times[msg->tag].emplace_back(msg->from, last_heard[msg->from]);
          rank_live_[static_cast<size_t>(msg->from)]->step.store(
              static_cast<i64>(msg->tag), std::memory_order_relaxed);
        }
        if (released) {
          // This worker's release was lost (or its arrival was duplicated);
          // re-release individually.
          send_release(msg->tag, msg->from, /*reliable=*/true);
        } else if (static_cast<int>(arrived.size()) == active) {
          released = true;
          // All arrivals for this step are in: one straggler-detector round.
          observe_round(barrier_arrival_times[msg->tag]);
          for (int w : live_ranks_) {
            send_release(msg->tag, w, /*reliable=*/false);
          }
        }
        break;
      }
      case MsgKind::kControl: {
        const ControlOp op = PeekControlOp(msg->payload);
        if (op == ControlOp::kHeartbeat) {
          const Heartbeat hb = Heartbeat::Decode(msg->payload);
          if (hb.is_reply) {
            // Pong watermarks feed the monitor's per-rank liveness gauges.
            RankLive& rl = *rank_live_[static_cast<size_t>(msg->from)];
            if (hb.last_started_pass > rl.started.load(std::memory_order_relaxed)) {
              rl.started.store(hb.last_started_pass, std::memory_order_relaxed);
            }
            if (hb.last_completed_pass > rl.completed.load(std::memory_order_relaxed)) {
              rl.completed.store(hb.last_completed_pass, std::memory_order_relaxed);
            }
          }
          if (hb.is_reply && hb.last_started_pass >= pass) {
            started[msg->from] = true;
          }
          if (hb.is_reply && hb.last_completed_pass >= pass && !done[msg->from]) {
            // The worker finished the pass but its kPassDone was lost in
            // flight; a retransmitted kStartPass makes it resend the cached
            // report.
            ++runtime_metrics_.retransmits;
            fr::Record(fr::EventKind::kRetransmit, msg->from, pass);
            Message m;
            m.from = kMasterRank;
            m.to = msg->from;
            m.kind = MsgKind::kControl;
            m.payload =
                StartPass{cl.loop_id, pass, pass_prefetch_depth_, pass_spec_depth_}.Encode();
            fabric_->SendReliable(std::move(m));
          }
          break;
        }
        if (op != ControlOp::kPassDone) {
          break;  // stray control traffic (e.g. a late retire ack)
        }
        ByteReader r(msg->payload);
        r.Get<u16>();
        const i32 done_loop = r.Get<i32>();
        const i32 done_pass = r.Get<i32>();
        if (done_pass != pass || done[msg->from]) {
          break;  // duplicate or stale PassDone
        }
        (void)done_loop;
        const double compute = r.Get<double>();
        const double wait = r.Get<double>();
        const double overlap_send = r.Get<double>();
        const double prefetch_hidden = r.Get<double>();
        const i32 ring_used = r.Get<i32>();
        WaitHistogram reply_wait = WaitHistogram::Deserialize(&r);
        worker_accum[msg->from] = r.GetVec<f64>();
        if (!r.AtEnd()) {
          // Piggybacked tracer spans. The done[] dedupe above already ran, so
          // an injector-duplicated PassDone never appends twice.
          std::vector<trace::Span> spans = trace::DeserializeSpans(&r);
          cluster_trace_.insert(cluster_trace_.end(),
                                std::make_move_iterator(spans.begin()),
                                std::make_move_iterator(spans.end()));
        }
        if (!r.AtEnd()) {
          // Speculation report: counts/bytes sum across workers, times are
          // maxima like the other per-worker time metrics.
          last_metrics_.spec_issued += r.Get<u32>();
          last_metrics_.spec_conflicts += r.Get<u32>();
          last_metrics_.spec_repair_bytes += r.Get<u64>();
          last_metrics_.spec_hidden_seconds =
              std::max(last_metrics_.spec_hidden_seconds, r.Get<double>());
          last_metrics_.spec_wait_seconds =
              std::max(last_metrics_.spec_wait_seconds, r.Get<double>());
        }
        last_metrics_.max_worker_compute_seconds =
            std::max(last_metrics_.max_worker_compute_seconds, compute);
        last_metrics_.max_worker_wait_seconds =
            std::max(last_metrics_.max_worker_wait_seconds, wait);
        last_metrics_.overlap_seconds = std::max(last_metrics_.overlap_seconds, overlap_send);
        last_metrics_.prefetch_wait_hidden_seconds =
            std::max(last_metrics_.prefetch_wait_hidden_seconds, prefetch_hidden);
        last_metrics_.prefetch_ring_depth_used =
            std::max(last_metrics_.prefetch_ring_depth_used, static_cast<int>(ring_used));
        const size_t slot = static_cast<size_t>(logical_of(msg->from));
        if (slot < last_metrics_.worker_reply_wait.size()) {
          last_metrics_.worker_reply_wait[slot] = reply_wait;
        }
        started[msg->from] = true;
        done[msg->from] = true;
        ++num_done;
        pass_compute.emplace_back(msg->from, compute);
        {
          RankLive& rl = *rank_live_[static_cast<size_t>(msg->from)];
          if (pass > rl.started.load(std::memory_order_relaxed)) {
            rl.started.store(pass, std::memory_order_relaxed);
          }
          if (pass > rl.completed.load(std::memory_order_relaxed)) {
            rl.completed.store(pass, std::memory_order_relaxed);
          }
        }
        break;
      }
      default:
        ORION_CHECK(false) << "unexpected message kind" << static_cast<int>(msg->kind);
    }
    // The payload has been fully consumed (decoded or taken); park the
    // allocation for the next encode instead of freeing it.
    BufferPool::Release(std::move(msg->payload));
  }

  // Every worker has sent kPassDone, and worker->master links are FIFO, so
  // every request of this pass has been handed to the server; drain it before
  // the deferred applies mutate master state.
  if (async_serving) {
    param_server_->Quiesce();
    last_metrics_.param_serve_seconds += param_server_->serve_seconds();
    last_metrics_.param_shard_queue_depth_max = param_server_->max_queue_depth();
    last_metrics_.spec_requests_served += param_server_->speculative_served();
    const std::vector<ParamStripeStats> stripes = param_server_->StripeStatsSnapshot();
    if (stripe_totals_.size() < stripes.size()) {
      stripe_totals_.resize(stripes.size());
    }
    last_metrics_.stripes.resize(stripes.size());
    for (size_t i = 0; i < stripes.size(); ++i) {
      auto& d = last_metrics_.stripes[i];
      d.busy_ns = stripes[i].busy_ns;
      d.gather_ns = stripes[i].gather_ns;
      d.wait_ns = stripes[i].wait_ns;
      d.tasks = stripes[i].tasks;
      d.queue_depth_max = stripes[i].queue_depth_max;
      stripe_totals_[i].busy_ns += stripes[i].busy_ns;
      stripe_totals_[i].gather_ns += stripes[i].gather_ns;
      stripe_totals_[i].wait_ns += stripes[i].wait_ns;
      stripe_totals_[i].tasks += stripes[i].tasks;
      stripe_totals_[i].queue_depth_max =
          std::max(stripe_totals_[i].queue_depth_max, stripes[i].queue_depth_max);
    }
  }

  // Pass-end application of the deferred server updates, in logical-rank
  // order. stable_sort keeps each worker's own flushes in send (FIFO) order.
  {
    ORION_TRACE_SPAN(kDriver, "deferred_applies");
    std::stable_sort(deferred_server.begin(), deferred_server.end(),
                     [&](const auto& a, const auto& b) {
                       return logical_of(a.first) < logical_of(b.first);
                     });
    for (auto& [from, pd] : deferred_server) {
      ApplyParamUpdate(&cl, std::move(pd), 0);
    }
  }

  // Fold accumulators in logical-rank order (arrival-independent f64 sums).
  for (int w : live_ranks_) {
    auto it = worker_accum.find(w);
    if (it == worker_accum.end()) {
      continue;
    }
    const auto& acc = it->second;
    for (size_t i = 0; i < acc.size() && i < accumulators_.size(); ++i) {
      accumulators_[i] = AccumCombine(accumulator_ops_[i], accumulators_[i], acc[i]);
    }
  }

  // Rotated arrays that returned to the master need a re-scatter next pass.
  for (DistArrayId id : returned) {
    Host(id).on_workers = false;
  }

  // Copy-on-write accounting for this pass (pins taken, pages cloned by
  // mid-pass writers, bytes copied for those clones).
  if (versioned) {
    for (const auto& [id, placement] : cl.plan.placements) {
      if (placement.scheme != PartitionScheme::kServer) {
        continue;
      }
      ArrayHost& h = Host(id);
      if (!h.master.paged()) {
        continue;
      }
      const VersionedCellStore::Stats vs = h.master.TakeStats();
      last_metrics_.versioned_snapshot_pins += vs.pins;
      last_metrics_.versioned_pages_cloned += vs.pages_cloned;
      last_metrics_.versioned_cow_bytes += vs.cow_bytes;
      // Pass end is a quiesced point (param server drained, no live pins):
      // safe to repaginate if the observed write sparsity says the page
      // size is wrong for this array.
      h.master.AutoTunePageSize();
    }
  }

  // One straggler-detector round over per-rank compute time (the only
  // per-rank timing signal 1D loops produce; 2D loops also fed per-step
  // barrier rounds above).
  observe_round(pass_compute);
  return {true, -1};
}

void Driver::AutoCheckpoint(std::vector<DistArrayId> arrays, std::string directory,
                            int every_n_passes) {
  auto_ckpt_arrays_ = std::move(arrays);
  auto_ckpt_dir_ = std::move(directory);
  auto_ckpt_every_ = every_n_passes;
}

void Driver::EnableRecovery(std::vector<DistArrayId> arrays, std::string directory,
                            int every_n_passes) {
  recover_arrays_ = std::move(arrays);
  recover_dir_ = std::move(directory);
  recover_every_ = every_n_passes;
  recovery_enabled_ = true;
  baseline_ckpt_done_ = false;
  // Best-effort: an uncreatable directory surfaces as a descriptive IO_ERROR
  // Status at the first checkpoint write, not here.
  std::error_code ec;
  std::filesystem::create_directories(recover_dir_, ec);
}

std::string Driver::RecoveryPath(DistArrayId id) const {
  return recover_dir_ + "/" + Host(id).meta.name + ".ckpt";
}

Status Driver::EnableDurability(std::vector<DistArrayId> arrays, std::string directory,
                                DurabilityOptions options) {
  recover_arrays_ = std::move(arrays);
  recover_dir_ = std::move(directory);
  recover_every_ = options.every_n_passes;
  durability_options_ = options;
  auto writer = DeltaLogWriter::Open(recover_dir_, DeltaLogOptions{options.compact_every});
  if (!writer.ok()) {
    return writer.status();
  }
  delta_writer_ = std::move(writer).value();
  recovery_enabled_ = true;
  baseline_ckpt_done_ = false;
  return Status::Ok();
}

MasterRecord Driver::BuildMasterRecord() const {
  MasterRecord m;
  m.next_pass = pass_counter_;
  m.config_seed = config_.seed;
  m.fault_seed = config_.fault_plan.seed;
  m.num_workers = config_.num_workers;
  m.live_ranks.assign(live_ranks_.begin(), live_ranks_.end());
  for (const auto& [id, loop] : loops_) {
    (void)loop;
    m.loop_ids.push_back(id);
  }
  m.accumulators = accumulators_;
  return m;
}

std::vector<ArrayCheckpointRef> Driver::DurableArrayRefs() {
  std::vector<ArrayCheckpointRef> refs;
  refs.reserve(recover_arrays_.size());
  for (DistArrayId id : recover_arrays_) {
    ArrayHost& h = Host(id);
    if (h.on_workers && h.placement.scheme != PartitionScheme::kServer &&
        h.placement.scheme != PartitionScheme::kReplicated) {
      // Worker-partitioned cells must round-trip home first. Server-hosted
      // and replicated arrays keep their master authoritative between
      // passes, so they are checkpointed in place — pagination (and with it
      // the dirty-page tracking that makes deltas small) stays intact.
      GatherToDriver(id);
    }
    refs.push_back({h.meta.name, &h.master});
  }
  return refs;
}

Status Driver::WriteRecoveryCheckpoint() {
  ORION_TRACE_SPAN(kDriver, "checkpoint");
  Stopwatch sw;
  if (delta_writer_ != nullptr) {
    auto stats = delta_writer_->AppendCheckpoint(BuildMasterRecord(), DurableArrayRefs());
    if (!stats.ok()) {
      return stats.status();
    }
    runtime_metrics_.log_bytes_appended += stats->bytes_appended;
    runtime_metrics_.pages_deltad += stats->pages_deltad;
    if (stats->compacted) {
      ++runtime_metrics_.compactions;
    }
    if (!stats->wrote_base) {
      ++runtime_metrics_.delta_checkpoints;
    }
  } else {
    for (DistArrayId id : recover_arrays_) {
      ORION_RETURN_IF_ERROR(CheckpointWrite(RecoveryPath(id), MutableCells(id)));
    }
  }
  ckpt_accumulators_ = accumulators_;
  pass_log_.clear();
  baseline_ckpt_done_ = true;
  ++runtime_metrics_.checkpoints_written;
  runtime_metrics_.checkpoint_seconds += sw.ElapsedSeconds();
  fr::Record(fr::EventKind::kCheckpoint, -1, pass_counter_,
             static_cast<i64>(runtime_metrics_.checkpoints_written));
  return Status::Ok();
}

Status Driver::InstallLogState(DeltaLogReader::State state, bool restore_pass_counter) {
  QuiesceServingAll();  // masters are replaced wholesale below
  for (auto& [id, host] : arrays_) {
    (void)id;
    host->on_workers = false;
  }
  last_replica_bcast_tag_.clear();
  for (DistArrayId id : recover_arrays_) {
    ArrayHost& h = Host(id);
    auto it = state.arrays.find(h.meta.name);
    if (it == state.arrays.end()) {
      return Status::InvalidArgument("log state has no array named " + h.meta.name);
    }
    h.master = std::move(it->second);
  }
  if (state.master.accumulators.size() != accumulators_.size()) {
    return Status::InvalidArgument(
        "log state has " + std::to_string(state.master.accumulators.size()) +
        " accumulators, driver has " + std::to_string(accumulators_.size()));
  }
  accumulators_ = state.master.accumulators;
  ckpt_accumulators_ = accumulators_;
  if (restore_pass_counter) {
    pass_counter_ = static_cast<int>(state.master.next_pass);
  }
  pass_log_.clear();
  fr::Record(fr::EventKind::kRestore, -1, pass_counter_);
  return Status::Ok();
}

Status Driver::BroadcastReconfigure() {
  for (i32 phase = 0; phase < 2; ++phase) {
    for (size_t logical = 0; logical < live_ranks_.size(); ++logical) {
      Retire r;
      r.op = ControlOp::kRejoin;
      r.phase = phase;
      r.is_ack = false;
      r.logical_rank = static_cast<i32>(logical);
      r.ring.assign(live_ranks_.begin(), live_ranks_.end());
      Message m;
      m.from = kMasterRank;
      m.to = live_ranks_[logical];
      m.kind = MsgKind::kControl;
      m.payload = r.Encode();
      fabric_->SendReliable(std::move(m));
    }
    std::set<int> acked;
    while (static_cast<int>(acked.size()) < ActiveWorkers()) {
      auto msg = fabric_->Recv(kMasterRank);
      if (!msg.has_value()) {
        return Status::Internal("fabric shut down during reconfiguration");
      }
      // Drain everything else, including late retire acks — a rejoin ack
      // echoes kRejoin, so stale retire traffic can never satisfy this
      // collection.
      if (msg->kind != MsgKind::kControl || !IsLive(msg->from) ||
          PeekControlOp(msg->payload) != ControlOp::kRejoin) {
        continue;
      }
      const Retire ack = Retire::Decode(msg->payload);
      if (ack.is_ack && ack.phase == phase) {
        acked.insert(msg->from);
      }
    }
  }
  return Status::Ok();
}

Status Driver::RejoinWorker(int rank, bool saw_phase0_ack) {
  if (!saw_phase0_ack) {
    // No sign of life from the best-effort retire: the rank's executor
    // thread almost certainly halted (injected crash). Shut it down
    // definitively — if it is actually alive, the shutdown makes it exit —
    // join the old thread, flush its inbox, and start a fresh executor. A
    // fresh executor is indistinguishable from a rebooted worker process.
    Message m;
    m.from = kMasterRank;
    m.to = rank;
    m.kind = MsgKind::kShutdown;
    fabric_->SendReliable(std::move(m));
    std::thread& th = threads_[static_cast<size_t>(rank)];
    if (th.joinable()) {
      th.join();
    }
    while (fabric_->TryRecv(rank).has_value()) {
      // Stale messages from its previous life; the new executor must not
      // replay them.
    }
    executors_[static_cast<size_t>(rank)] =
        std::make_unique<Executor>(rank, fabric_.get(), &dir_);
    executors_[static_cast<size_t>(rank)]->set_ring_fill_gauge(
        ring_fill_gauges_[static_cast<size_t>(rank)].get());
    threads_[static_cast<size_t>(rank)] =
        std::thread([ex = executors_[static_cast<size_t>(rank)].get()] { ex->Run(); });
  }
  live_ranks_.push_back(rank);
  std::sort(live_ranks_.begin(), live_ranks_.end());
  fr::Record(fr::EventKind::kRejoin, rank, pass_counter_ - 1);
  fr::SetLiveRanks(live_ranks_.data(), static_cast<int>(live_ranks_.size()));
  // A fresh executor restarts its span-batch counter at 0; forget the
  // pre-crash high-water mark or the rejoined worker's piggybacked trace
  // batches would be dropped as duplicates until it caught up. (Safe when
  // the executor actually survived, too: its counter only ever grows.)
  worker_span_seq_[rank] = 0;
  ++runtime_metrics_.worker_rejoins;
  // All members — survivors and the re-entrant — adopt the full-N ring and
  // drop local state; the next pass's scatter streams the restored cells.
  return BroadcastReconfigure();
}

Status Driver::Recover(int lost_physical_rank) {
  ORION_TRACE_SPAN(kDriver, "recovery");
  Stopwatch sw;
  ++runtime_metrics_.workers_lost;
  ++runtime_metrics_.recoveries;
  if (param_server_ != nullptr) {
    // The aborted pass already quiesced, but be defensive: the restore below
    // rewrites master stores that in-flight gathers would read.
    param_server_->Quiesce();
  }
  if (injector_ != nullptr) {
    // Anything the injector still holds back predates the failure and must
    // not leak into the new configuration.
    injector_->ClearHoldbacks();
  }
  live_ranks_.erase(std::remove(live_ranks_.begin(), live_ranks_.end(), lost_physical_rank),
                    live_ranks_.end());
  fr::Record(fr::EventKind::kRetire, lost_physical_rank, pass_counter_ - 1);
  fr::SetLiveRanks(live_ranks_.data(), static_cast<int>(live_ranks_.size()));
  if (live_ranks_.empty()) {
    return Status::Internal("all workers lost; cannot recover");
  }

  // Two-phase retire. Phase 0: every survivor adopts the new logical rank /
  // ring and unwinds its in-flight pass; because links are FIFO, once a
  // survivor's ack is in, no pre-failure message from it is still queued.
  // Phase 1 (sent only after all phase-0 acks): survivors drop all DistArray
  // state and caches so the master can re-scatter from the checkpoint.
  bool lost_acked = false;
  for (i32 phase = 0; phase < 2; ++phase) {
    for (size_t logical = 0; logical < live_ranks_.size(); ++logical) {
      Retire r;
      r.phase = phase;
      r.is_ack = false;
      r.logical_rank = static_cast<i32>(logical);
      r.ring.assign(live_ranks_.begin(), live_ranks_.end());
      Message m;
      m.from = kMasterRank;
      m.to = live_ranks_[logical];
      m.kind = MsgKind::kControl;
      m.payload = r.Encode();
      fabric_->SendReliable(std::move(m));
    }
    if (phase == 0) {
      // Best-effort retire of the lost rank too: if it was a false-positive
      // death (still running), this unwinds it and stops it interfering.
      Retire r;
      r.phase = 0;
      r.is_ack = false;
      r.logical_rank = -2;  // not a ring member
      r.ring.assign(live_ranks_.begin(), live_ranks_.end());
      Message m;
      m.from = kMasterRank;
      m.to = lost_physical_rank;
      m.kind = MsgKind::kControl;
      m.payload = r.Encode();
      fabric_->SendReliable(std::move(m));
    }
    std::set<int> acked;
    while (static_cast<int>(acked.size()) < ActiveWorkers()) {
      auto msg = fabric_->Recv(kMasterRank);
      if (!msg.has_value()) {
        return Status::Internal("fabric shut down during recovery");
      }
      // An ack from the lost rank itself means it is alive (the death was a
      // false positive) — the rejoin path can skip the executor restart.
      if (msg->kind == MsgKind::kControl && msg->from == lost_physical_rank &&
          PeekControlOp(msg->payload) == ControlOp::kRetire) {
        const Retire ack = Retire::Decode(msg->payload);
        if (ack.is_ack && ack.phase == 0) {
          lost_acked = true;
        }
        continue;
      }
      // Drain everything else: in-flight pass traffic, duplicated control
      // messages, other traffic from the retired rank.
      if (msg->kind != MsgKind::kControl || !IsLive(msg->from) ||
          PeekControlOp(msg->payload) != ControlOp::kRetire) {
        continue;
      }
      const Retire ack = Retire::Decode(msg->payload);
      if (ack.is_ack && ack.phase == phase) {
        acked.insert(msg->from);
      }
    }
  }

  // Worker-resident placements are gone; the master copies (about to be
  // overwritten from the checkpoint) are authoritative again.
  for (auto& [id, host] : arrays_) {
    host->on_workers = false;
  }
  last_replica_bcast_tag_.clear();

  // Capture the replay list before the restore machinery clears it.
  auto log = std::move(pass_log_);
  pass_log_.clear();

  if (delta_writer_ != nullptr) {
    // Restore from the delta log: base image plus the delta tail.
    Stopwatch restore_sw;
    auto reader = DeltaLogReader::Open(delta_writer_->dir());
    if (!reader.ok()) {
      return reader.status();
    }
    auto state = reader->Latest();
    if (!state.ok()) {
      return state.status();
    }
    ORION_RETURN_IF_ERROR(InstallLogState(std::move(state).value(),
                                          /*restore_pass_counter=*/false));
    runtime_metrics_.restore_seconds += restore_sw.ElapsedSeconds();
    if (durability_options_.rejoin_crashed_workers) {
      ORION_RETURN_IF_ERROR(RejoinWorker(lost_physical_rank, lost_acked));
      // The rejoined rank receives its state with the next scatter; give it
      // grace until it first speaks.
      state_transfer_pending_.insert(lost_physical_rank);
    }
  } else {
    for (DistArrayId id : recover_arrays_) {
      ORION_RETURN_IF_ERROR(Restore(id, RecoveryPath(id)));
    }
    accumulators_ = ckpt_accumulators_;
  }

  ORION_RETURN_IF_ERROR(RecompileLoops());

  // Replay the passes committed since the restored checkpoint, in order.
  // Terminates: crashes are one-shot, so nested recoveries are bounded by
  // the number of scheduled crash points.
  runtime_metrics_.passes_replayed += log.size();
  for (const auto& [loop_id, pass] : log) {
    (void)pass;
    ORION_RETURN_IF_ERROR(Execute(loop_id));
  }
  runtime_metrics_.recovery_seconds += sw.ElapsedSeconds();
  return Status::Ok();
}

StatusOr<i64> Driver::ResumeFromLog() {
  if (delta_writer_ == nullptr) {
    return Status::FailedPrecondition("ResumeFromLog requires EnableDurability");
  }
  Stopwatch sw;
  auto reader = DeltaLogReader::Open(delta_writer_->dir());
  if (!reader.ok()) {
    return reader.status();
  }
  auto state = reader->Latest();
  if (!state.ok()) {
    return state.status();
  }
  const MasterRecord& m = state->master;
  if (m.config_seed != config_.seed ||
      m.num_workers != static_cast<i32>(config_.num_workers)) {
    return Status::InvalidArgument(
        "log was written by a different configuration (seed or worker count)");
  }
  const i64 resumed = m.next_pass;
  ORION_RETURN_IF_ERROR(InstallLogState(std::move(state).value(),
                                        /*restore_pass_counter=*/true));
  // The log already holds a restorable image of this state; don't force a
  // fresh baseline before the next delta append.
  baseline_ckpt_done_ = true;
  if (!loops_.empty()) {
    ORION_RETURN_IF_ERROR(RecompileLoops());
  }
  runtime_metrics_.restore_seconds += sw.ElapsedSeconds();
  return resumed;
}

Status Driver::RestoreToPass(i64 pass) {
  if (delta_writer_ == nullptr) {
    return Status::FailedPrecondition("RestoreToPass requires EnableDurability");
  }
  Stopwatch sw;
  auto reader = DeltaLogReader::Open(delta_writer_->dir());
  if (!reader.ok()) {
    return reader.status();
  }
  auto state = reader->StateAtPass(pass);
  if (!state.ok()) {
    return state.status();
  }
  if (param_server_ != nullptr) {
    param_server_->Quiesce();
  }
  // Rewinding the pass counter means re-issuing pass numbers the workers
  // have already seen; reconfigure resets their watermarks and drops their
  // partitions so the next scatter streams the restored cells.
  ORION_RETURN_IF_ERROR(BroadcastReconfigure());
  ORION_RETURN_IF_ERROR(InstallLogState(std::move(state).value(),
                                        /*restore_pass_counter=*/true));
  if (!loops_.empty()) {
    ORION_RETURN_IF_ERROR(RecompileLoops());
  }
  runtime_metrics_.restore_seconds += sw.ElapsedSeconds();
  return Status::Ok();
}

StatusOr<std::vector<RestorePoint>> Driver::DurabilityPoints() const {
  if (delta_writer_ == nullptr) {
    return Status::FailedPrecondition("DurabilityPoints requires EnableDurability");
  }
  auto reader = DeltaLogReader::Open(delta_writer_->dir());
  if (!reader.ok()) {
    return reader.status();
  }
  return reader->points();
}

const std::vector<trace::Span>& Driver::CollectTrace() {
  // Scoop up everything not yet shipped: the master's own threads (driver,
  // ParamServer pool, sender lanes) and any worker spans left in their rings
  // (e.g. recorded after the last PassDone or at halt). Draining removes
  // spans from the rings, so repeated collection never duplicates.
  std::vector<trace::Span> rest = trace::DrainAll();
  cluster_trace_.insert(cluster_trace_.end(), std::make_move_iterator(rest.begin()),
                        std::make_move_iterator(rest.end()));
  return cluster_trace_;
}

Status Driver::DumpTrace(const std::string& path) {
  return trace::WriteChromeTrace(path, CollectTrace());
}

std::string Driver::CriticalPathReport() {
  std::string out =
      trace::FormatCriticalPathTable(trace::AnalyzeCriticalPath(CollectTrace()));
  if (!stripe_totals_.empty()) {
    // Stripe-contention heatmap, cumulative over all async passes: where
    // gathers spend lock-held time (busy), copy time (gather) and lock
    // acquisition (wait). Snapshot serving shows up as busy == 0.
    out += "param stripes (cumulative):";
    for (size_t i = 0; i < stripe_totals_.size(); ++i) {
      const auto& s = stripe_totals_[i];
      char buf[128];
      std::snprintf(buf, sizeof buf, " [%zu] busy=%.3fms gather=%.3fms wait=%.3fms tasks=%llu",
                    i, static_cast<double>(s.busy_ns) / 1e6,
                    static_cast<double>(s.gather_ns) / 1e6,
                    static_cast<double>(s.wait_ns) / 1e6,
                    static_cast<unsigned long long>(s.tasks));
      out += buf;
    }
    out += "\n";
  }
  out += straggler_.Verdict();
  out += "\n";
  return out;
}

Status Driver::EnableMonitor(double period_seconds) {
  if (monitor_ != nullptr) {
    return monitor_->running() ? Status::Ok() : monitor_->Start();
  }
  obs::Monitor::Options opt;
  opt.period_seconds = period_seconds;
  monitor_ = std::make_unique<obs::Monitor>(opt);
  RegisterMonitorProbes();
  PublishObsSnapshot();
  return monitor_->Start();
}

void Driver::StopMonitor() {
  if (monitor_ != nullptr) {
    monitor_->Stop();
  }
}

StatusOr<int> Driver::StartMetricsEndpoint(int port) {
  ORION_RETURN_IF_ERROR(EnableMonitor());
  if (endpoint_ != nullptr && endpoint_->port() > 0) {
    return endpoint_->port();
  }
  endpoint_ = std::make_unique<obs::MetricsEndpoint>(monitor_.get());
  return endpoint_->Start(port);
}

void Driver::StopMetricsEndpoint() {
  if (endpoint_ != nullptr) {
    endpoint_->Stop();
  }
}

Status Driver::DumpBlackBox(const std::string& path) {
  return fr::DumpToFile(path, "explicit");
}

void Driver::RegisterMonitorProbes() {
  // Every closure below reads an atomic or takes a short uncontended mutex,
  // and captures only objects whose addresses outlive the monitor: fabric_,
  // param_server_, the stable gauge/watermark arrays, and ArrayHost masters
  // (arrays_ holds them by unique_ptr). Never an Executor — rejoin replaces
  // those.
  Fabric* fabric = fabric_.get();
  monitor_->RegisterProbe("fabric.inbox.master", [fabric] {
    return static_cast<double>(fabric->InboxDepth(kMasterRank));
  });
  for (int w = 0; w < config_.num_workers; ++w) {
    const std::string suffix = ".w" + std::to_string(w);
    monitor_->RegisterProbe("fabric.inbox" + suffix, [fabric, w] {
      return static_cast<double>(fabric->InboxDepth(w));
    });
    std::atomic<int>* ring = ring_fill_gauges_[static_cast<size_t>(w)].get();
    monitor_->RegisterProbe("prefetch.ring_fill" + suffix, [ring] {
      return static_cast<double>(ring->load(std::memory_order_relaxed));
    });
    RankLive* rl = rank_live_[static_cast<size_t>(w)].get();
    monitor_->RegisterProbe("rank" + suffix + ".started", [rl] {
      return static_cast<double>(rl->started.load(std::memory_order_relaxed));
    });
    monitor_->RegisterProbe("rank" + suffix + ".completed", [rl] {
      return static_cast<double>(rl->completed.load(std::memory_order_relaxed));
    });
    monitor_->RegisterProbe("rank" + suffix + ".step", [rl] {
      return static_cast<double>(rl->step.load(std::memory_order_relaxed));
    });
  }
  if (param_server_ != nullptr) {
    ParamServer* ps = param_server_.get();
    monitor_->RegisterProbe("param.in_flight",
                            [ps] { return static_cast<double>(ps->in_flight()); });
    monitor_->RegisterProbe("param.stripe_inflight_max", [ps] {
      return static_cast<double>(ps->stripe_inflight_max());
    });
    monitor_->RegisterProbe("param.reply_queue", [ps] {
      return static_cast<double>(ps->reply_queue_depth());
    });
  }
  // Pinned-snapshot counts for arrays that exist now; arrays created after
  // EnableMonitor are not probed (probes are fixed at Start).
  for (const auto& [id, host] : arrays_) {
    (void)id;
    const VersionedCellStore* master = &host->master;
    monitor_->RegisterProbe("versioned.pins." + host->meta.name, [master] {
      return static_cast<double>(master->live_pins());
    });
  }
  monitor_->RegisterProbe("bufferpool.pooled_bytes", [] {
    return static_cast<double>(BufferPool::AggregateStats().pooled_bytes_high_water);
  });
  // Serving-tier admission gauges. The tier may start/stop after the
  // monitor, so the probes go through an atomic pointer that is null while
  // no tier serves (stopped tiers retire without freeing, so a stale load
  // still dereferences a live object).
  std::atomic<serve::ServingTier*>* tier = &serving_tier_live_;
  monitor_->RegisterProbe("serve.queue_depth", [tier] {
    serve::ServingTier* t = tier->load(std::memory_order_acquire);
    return t != nullptr ? static_cast<double>(t->queue_depth()) : 0.0;
  });
  monitor_->RegisterProbe("serve.inflight_bytes", [tier] {
    serve::ServingTier* t = tier->load(std::memory_order_acquire);
    return t != nullptr ? static_cast<double>(t->inflight_bytes()) : 0.0;
  });
}

void Driver::PublishObsSnapshot() {
  if (monitor_ == nullptr) {
    return;
  }
  monitor_->PublishRegistry(std::make_shared<const MetricsRegistry>(ExportMetrics()));
}

// ---------------------------------------------------------------------------
// Online snapshot-serving tier

StatusOr<serve::ServingTier*> Driver::StartServingTier(std::vector<DistArrayId> arrays,
                                                       serve::ServingTierOptions options) {
  if (!config_.async_param_serving || !config_.versioned_store) {
    return Status::FailedPrecondition(
        "serving tier requires async_param_serving and versioned_store "
        "(snapshot pins)");
  }
  if (serving_tier_ != nullptr) {
    return Status::FailedPrecondition("serving tier already started");
  }
  if (arrays.empty()) {
    return Status::InvalidArgument("no arrays to serve");
  }
  std::vector<serve::ServingTier::ArraySpec> specs;
  specs.reserve(arrays.size());
  for (DistArrayId id : arrays) {
    const ArrayHost& h = Host(id);  // CHECKs the id exists
    specs.push_back({id, h.meta.name, h.meta.value_dim});
  }
  serve_arrays_ = std::move(arrays);
  serving_tier_ = std::make_unique<serve::ServingTier>(std::move(specs), options);
  serve_last_keys_ = 0;
  serve_qps_mark_ = std::chrono::steady_clock::now();
  // First versions go live immediately; the one-pass staleness bound starts
  // counting from here.
  PublishServingVersions();
  serving_tier_live_.store(serving_tier_.get(), std::memory_order_release);
  return serving_tier_.get();
}

void Driver::StopServingTier() {
  if (serving_tier_ == nullptr) {
    return;
  }
  serving_tier_live_.store(nullptr, std::memory_order_release);
  serving_tier_->Stop();
  // Keep the stopped tier alive until the Driver dies: monitor probes or
  // clients may still hold the raw pointer, and a stopped tier answers them
  // harmlessly (kShutdown / zero gauges).
  retired_tiers_.push_back(std::move(serving_tier_));
  serve_arrays_.clear();
  serve_dirty_pages_.clear();
}

void Driver::PublishServingVersions() {
  if (serving_tier_ == nullptr) {
    return;
  }
  ++serve_publish_round_;
  for (DistArrayId id : serve_arrays_) {
    ArrayHost& h = Host(id);
    // Publish only when the master copy is authoritative at this boundary.
    // Server-hosted and replicated arrays always are (writes flow through
    // the master); rotated (kSpaceTime) arrays are whenever their partitions
    // came home at the boundary (wavefront loops return them every pass;
    // unordered rotation keeps them worker-resident). Space-partitioned
    // kRange arrays never rotate home, so they are skipped until something
    // else gathers them. A skipped array keeps serving its previous
    // published version (or none) — still a consistent snapshot, just
    // older. Never gather here: pulling partitions off workers at publish
    // time would change fabric traffic and break the bit-for-bit
    // serving-on/off identity.
    if (h.on_workers && h.placement.scheme != PartitionScheme::kServer &&
        h.placement.scheme != PartitionScheme::kReplicated) {
      continue;
    }
    if (!h.master.paged()) {
      h.master.BeginServing();
    }
    VersionedCellStore::Published pub = h.master.PublishVersion();
    const double dirty = static_cast<double>(pub.dirty_pages.size());
    serve_dirty_pages_[h.meta.name] = dirty;
    metrics_series_["versioned.dirty_pages." + h.meta.name].push_back(dirty);
    serving_tier_->Publish(id, std::move(pub.snap), serve_publish_round_);
  }
  // Interval QPS across the window since the previous publish, from the
  // tier's cumulative key counter.
  const auto now = std::chrono::steady_clock::now();
  const serve::ServingStats ss = serving_tier_->StatsSnapshot();
  const double dt = std::chrono::duration<double>(now - serve_qps_mark_).count();
  if (dt > 0.0) {
    serve_last_qps_ =
        static_cast<double>(ss.keys_looked_up - serve_last_keys_) / dt;
  }
  serve_last_keys_ = ss.keys_looked_up;
  serve_qps_mark_ = now;
  metrics_series_["serve.qps"].push_back(serve_last_qps_);
  const WaitHistogram lat = serving_tier_->LatencySnapshot();
  metrics_series_["serve.p99_seconds"].push_back(lat.ApproxPercentile(0.99));
}

void Driver::QuiesceServingFor(DistArrayId id) {
  if (serving_tier_ == nullptr) {
    return;
  }
  serving_tier_->QuiesceForCollapse(id);
}

void Driver::QuiesceServingAll() {
  if (serving_tier_ == nullptr) {
    return;
  }
  for (DistArrayId id : serve_arrays_) {
    serving_tier_->QuiesceForCollapse(id);
  }
}

MetricsRegistry Driver::ExportMetrics() const {
  MetricsRegistry reg;
  const LoopMetrics& lm = last_metrics_;
  reg.SetGauge("pass.wall_seconds", lm.pass_wall_seconds);
  reg.SetGauge("pass.max_worker_compute_seconds", lm.max_worker_compute_seconds);
  reg.SetGauge("pass.max_worker_wait_seconds", lm.max_worker_wait_seconds);
  reg.SetGauge("pass.overlap_seconds", lm.overlap_seconds);
  reg.SetGauge("pass.prefetch_wait_hidden_seconds", lm.prefetch_wait_hidden_seconds);
  reg.SetGauge("pass.param_serve_seconds", lm.param_serve_seconds);
  reg.SetCounter("pass.param_shard_queue_depth_max",
                 static_cast<u64>(lm.param_shard_queue_depth_max));
  reg.SetCounter("pass.prefetch_ring_depth_used",
                 static_cast<u64>(lm.prefetch_ring_depth_used));
  reg.SetGauge("prefetch.depth_effective",
               static_cast<double>(lm.prefetch_depth_effective));
  reg.SetCounter("versioned.snapshot_pins", lm.versioned_snapshot_pins);
  reg.SetCounter("versioned.pages_cloned", lm.versioned_pages_cloned);
  reg.SetCounter("versioned.cow_bytes", lm.versioned_cow_bytes);
  reg.SetGauge("spec.enabled", lm.spec_depth_effective > 0 ? 1.0 : 0.0);
  reg.SetGauge("spec.depth_effective",
               static_cast<double>(lm.spec_depth_effective));
  reg.SetGauge("spec.conflict_rate", lm.spec_conflict_rate);
  reg.SetGauge("spec.hidden_seconds", lm.spec_hidden_seconds);
  reg.SetGauge("spec.wait_seconds", lm.spec_wait_seconds);
  reg.SetCounter("spec.issued", lm.spec_issued);
  reg.SetCounter("spec.conflicts", lm.spec_conflicts);
  reg.SetCounter("spec.repair_bytes", lm.spec_repair_bytes);
  reg.SetCounter("spec.requests_served", lm.spec_requests_served);
  for (size_t i = 0; i < lm.stripes.size(); ++i) {
    const auto& s = lm.stripes[i];
    const std::string p = "param.stripe." + std::to_string(i);
    reg.SetCounter(p + ".busy_ns", s.busy_ns);
    reg.SetCounter(p + ".gather_ns", s.gather_ns);
    reg.SetCounter(p + ".wait_ns", s.wait_ns);
    reg.SetCounter(p + ".tasks", s.tasks);
    reg.SetCounter(p + ".queue_depth_max", static_cast<u64>(s.queue_depth_max));
  }
  reg.SetCounter("pass.bytes_sent", lm.bytes_sent);
  reg.SetCounter("pass.messages_sent", lm.messages_sent);
  reg.SetGauge("pass.virtual_net_seconds", lm.virtual_net_seconds);
  reg.SetCounter("pass.zero_copy_bytes", lm.zero_copy_bytes);
  WaitHistogram& reply_wait = reg.Histogram("pass.reply_wait");
  for (const WaitHistogram& h : lm.worker_reply_wait) {
    reply_wait.Merge(h);
  }

  const FabricStats fs = fabric_->Stats();
  reg.SetCounter("net.bytes_sent", fs.bytes_sent);
  reg.SetCounter("net.messages_sent", fs.messages_sent);
  reg.SetCounter("net.zero_copy_bytes", fs.zero_copy_bytes);
  reg.SetGauge("net.virtual_seconds", fs.virtual_net_seconds);

  const RuntimeMetrics rm = runtime_metrics();
  reg.SetCounter("fault.dropped", rm.faults_dropped);
  reg.SetCounter("fault.duplicated", rm.faults_duplicated);
  reg.SetCounter("fault.delayed", rm.faults_delayed);
  reg.SetCounter("fault.crashes_triggered", rm.crashes_triggered);
  reg.SetCounter("supervision.heartbeats_sent", rm.heartbeats_sent);
  reg.SetCounter("supervision.retransmits", rm.retransmits);
  reg.SetCounter("recovery.workers_lost", rm.workers_lost);
  reg.SetCounter("recovery.recoveries", rm.recoveries);
  reg.SetCounter("recovery.passes_replayed", rm.passes_replayed);
  reg.SetGauge("recovery.seconds", rm.recovery_seconds);
  reg.SetCounter("checkpoint.count", rm.checkpoints_written);
  reg.SetGauge("checkpoint.seconds", rm.checkpoint_seconds);
  reg.SetCounter("durability.delta_checkpoints", rm.delta_checkpoints);
  reg.SetCounter("durability.log_bytes_appended", rm.log_bytes_appended);
  reg.SetCounter("durability.pages_deltad", rm.pages_deltad);
  reg.SetCounter("durability.compactions", rm.compactions);
  reg.SetCounter("durability.worker_rejoins", rm.worker_rejoins);
  reg.SetGauge("durability.restore_seconds", rm.restore_seconds);

  const BufferPool::Stats bp = BufferPool::AggregateStats();
  reg.SetCounter("bufferpool.acquires", bp.acquires);
  reg.SetCounter("bufferpool.hits", bp.hits);
  reg.SetCounter("bufferpool.releases", bp.releases);
  reg.SetCounter("bufferpool.discards", bp.discards);
  reg.SetCounter("bufferpool.pooled_bytes_high_water", bp.pooled_bytes_high_water);
  reg.SetGauge("bufferpool.hit_rate",
               bp.acquires == 0
                   ? 0.0
                   : static_cast<double>(bp.hits) / static_cast<double>(bp.acquires));
  for (const auto& [id, host] : arrays_) {
    reg.SetGauge("versioned.page_cells." + host->meta.name,
                 static_cast<double>(host->master.page_cells()));
  }

  // Serving tier: cumulative request counters, the last publish interval's
  // QPS, and p50/p99 over the merged request-latency histogram.
  if (serving_tier_ != nullptr) {
    const serve::ServingStats ss = serving_tier_->StatsSnapshot();
    reg.SetCounter("serve.requests", ss.requests);
    reg.SetCounter("serve.ok", ss.ok);
    reg.SetCounter("serve.not_serving", ss.not_serving);
    reg.SetCounter("serve.shed_queue_full", ss.shed_queue_full);
    reg.SetCounter("serve.shed_bytes", ss.shed_bytes);
    reg.SetCounter("serve.keys_looked_up", ss.keys_looked_up);
    reg.SetCounter("serve.keys_hit", ss.keys_hit);
    reg.SetCounter("serve.bytes_served", ss.bytes_served);
    reg.SetCounter("serve.batches", ss.batches);
    reg.SetCounter("serve.batched_requests", ss.batched_requests);
    reg.SetCounter("serve.versions_published", ss.versions_published);
    reg.SetGauge("serve.qps", serve_last_qps_);
    const WaitHistogram lat = serving_tier_->LatencySnapshot();
    reg.SetGauge("serve.p50_seconds", lat.ApproxPercentile(0.5));
    reg.SetGauge("serve.p99_seconds", lat.ApproxPercentile(0.99));
    reg.Histogram("serve.latency").Merge(lat);
  }
  // Pages dirtied between the last two serving publishes, per array — the
  // per-version delta a snapshot-shipping replica would fetch.
  for (const auto& [name, pages] : serve_dirty_pages_) {
    reg.SetGauge("versioned.dirty_pages." + name, pages);
  }

  for (const auto& [name, points] : metrics_series_) {
    for (double v : points) {
      reg.AppendSeries(name, v);
    }
  }

  // Straggler verdicts (detection only; 1.0 = currently flagged).
  reg.SetCounter("anomaly.rounds", straggler_.rounds());
  reg.SetCounter("anomaly.flags_total", straggler_.total_flags());
  for (int w = 0; w < config_.num_workers; ++w) {
    reg.SetGauge("anomaly.straggler." + std::to_string(w),
                 straggler_.Flagged(w) ? 1.0 : 0.0);
    reg.SetGauge("anomaly.straggler_lag_ewma." + std::to_string(w),
                 straggler_.LagEwma(w));
  }

  if (monitor_ != nullptr) {
    monitor_->MergeInto(&reg);
  }
  return reg;
}

RuntimeMetrics Driver::runtime_metrics() const {
  RuntimeMetrics m = runtime_metrics_;
  if (injector_ != nullptr) {
    const InjectorStats s = injector_->stats();
    m.faults_dropped = s.dropped;
    m.faults_duplicated = s.duplicated;
    m.faults_delayed = s.delayed;
    m.crashes_triggered = s.crashes_triggered;
  }
  return m;
}

std::vector<FaultEvent> Driver::fault_events() const {
  return injector_ != nullptr ? injector_->events() : std::vector<FaultEvent>{};
}

namespace {

// Serial fallback context: reads and writes the driver's master copies
// directly; buffered updates apply immediately through the registered UDF.
class SerialLoopContext : public LoopContext {
 public:
  SerialLoopContext(Driver* driver, const SharedDirectory* dir,
                    std::map<DistArrayId, CellStore*>* stores, std::vector<f64>* accum,
                    std::vector<AccumOp>* ops)
      : driver_(driver), dir_(dir), stores_(stores), accum_(accum), ops_(ops) {}

  const f32* Read(DistArrayId array, IdxSpan idx) override {
    CellStore* store = StoreFor(array);
    const f32* v = store->Get(driver_->Meta(array).key_space.EncodeUnchecked(idx));
    if (v != nullptr) {
      return v;
    }
    zeros_.assign(static_cast<size_t>(store->value_dim()), 0.0f);
    return zeros_.data();
  }

  f32* Mutate(DistArrayId array, IdxSpan idx) override {
    CellStore* store = StoreFor(array);
    return store->GetOrCreate(driver_->Meta(array).key_space.EncodeUnchecked(idx));
  }

  void BufferUpdate(DistArrayId array, IdxSpan idx, const f32* update) override {
    auto def = dir_->GetBufferDef(array);
    ORION_CHECK(def != nullptr) << "BufferUpdate without a registered buffer";
    CellStore* store = StoreFor(array);
    def->apply(store->GetOrCreate(driver_->Meta(array).key_space.EncodeUnchecked(idx)),
               update, store->value_dim());
  }

  void AccumulatorAdd(int slot, f64 delta) override {
    ORION_CHECK(slot >= 0 && slot < static_cast<int>(accum_->size()));
    f64& acc = (*accum_)[static_cast<size_t>(slot)];
    acc = AccumCombine((*ops_)[static_cast<size_t>(slot)], acc, delta);
  }

 private:
  CellStore* StoreFor(DistArrayId array) {
    auto it = stores_->find(array);
    ORION_CHECK(it != stores_->end()) << "array" << array << "not prepared for serial run";
    return it->second;
  }

  Driver* driver_;
  const SharedDirectory* dir_;
  std::map<DistArrayId, CellStore*>* stores_;
  std::vector<f64>* accum_;
  std::vector<AccumOp>* ops_;
  std::vector<f32> zeros_;
};

}  // namespace

Status Driver::ExecuteSerial(const LoopSpec& spec, const LoopKernel& kernel) {
  // Everything must be driver-resident.
  std::map<DistArrayId, CellStore*> stores;
  GatherToDriver(spec.iter_space);
  for (const auto& a : spec.accesses) {
    if (stores.count(a.array) == 0) {
      GatherToDriver(a.array);
      QuiesceServingFor(a.array);  // Flat() below collapses a served master
      stores[a.array] = &Host(a.array).master.Flat();
    }
  }

  ArrayHost& iter = Host(spec.iter_space);
  const KeySpace& ks = iter.meta.key_space;
  std::vector<i64> keys;
  keys.reserve(static_cast<size_t>(std::max<i64>(iter.master.NumCells(), 0)));
  iter.master.ForEachConst([&](i64 key, const f32*) { keys.push_back(key); });
  if (spec.ordered) {
    std::sort(keys.begin(), keys.end());
  }

  std::vector<f64> accum(accumulators_.size());
  for (size_t i = 0; i < accum.size(); ++i) {
    accum[i] = AccumIdentity(accumulator_ops_[i]);
  }
  SerialLoopContext ctx(this, &dir_, &stores, &accum, &accumulator_ops_);
  std::vector<i64> idx(static_cast<size_t>(ks.num_dims()));
  for (i64 key : keys) {
    ks.DecodeInto(key, idx);
    kernel(ctx, idx, iter.master.Get(key));
  }
  for (size_t i = 0; i < accum.size(); ++i) {
    accumulators_[i] = AccumCombine(accumulator_ops_[i], accumulators_[i], accum[i]);
  }
  return Status::Ok();
}

Status Driver::Execute(i32 loop_id) {
  if (loops_.find(loop_id) == loops_.end()) {
    return Status::NotFound("unknown loop id");
  }
  if (recovery_enabled_ && !baseline_ckpt_done_) {
    // Baseline checkpoint: without it a pass-0 failure has nothing to
    // restore from.
    ORION_RETURN_IF_ERROR(WriteRecoveryCheckpoint());
  }
  const int max_attempts =
      recovery_enabled_ ? std::max(1, config_.supervisor.max_recovery_attempts) : 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const PassOutcome out = RunPassOnce(loop_id);
    if (out.completed) {
      // Pass boundary, driver thread, nothing in flight: the safe point to
      // pin fresh serving versions and then publish the immutable registry
      // snapshot (so the scrape sees this pass's serve stats) the endpoint
      // renders.
      PublishServingVersions();
      PublishObsSnapshot();
      if (recovery_enabled_ && recover_every_ > 0 &&
          static_cast<int>(pass_log_.size()) >= recover_every_) {
        ORION_RETURN_IF_ERROR(WriteRecoveryCheckpoint());
      }
      if (auto_ckpt_every_ > 0 && pass_counter_ % auto_ckpt_every_ == 0) {
        for (DistArrayId id : auto_ckpt_arrays_) {
          const std::string path = auto_ckpt_dir_ + "/" + Host(id).meta.name + "." +
                                   std::to_string(pass_counter_) + ".ckpt";
          ORION_RETURN_IF_ERROR(Checkpoint(id, path));
        }
      }
      return Status::Ok();
    }
    if (!recovery_enabled_) {
      return Status::Internal("worker " + std::to_string(out.lost_rank) +
                              " lost and recovery is not enabled");
    }
    fr::Record(fr::EventKind::kWorkerDead, out.lost_rank, pass_counter_ - 1);
    ORION_RETURN_IF_ERROR(Recover(out.lost_rank));
  }
  return Status::Internal("recovery attempts exhausted");
}

Driver::PassOutcome Driver::RunPassOnce(i32 loop_id) {
  // Re-look the loop up each attempt: recovery recompiles it for the
  // degraded worker count.
  auto it = loops_.find(loop_id);
  ORION_CHECK(it != loops_.end());
  const CompiledLoop& cl = *it->second;
  EnsureScattered(cl);

  // Adaptive prefetch depth: re-pick the effective ring depth for this pass
  // from the previous pass's merged reply-wait p90. Any depth in
  // [1, prefetch_depth_max] is bit-for-bit identical for rotation loops
  // (server state is pass-constant), so the controller only trades latency
  // hiding against ring memory / request burstiness.
  pass_prefetch_depth_ = 0;
  if (cl.options.prefetch_depth_max > 0) {
    auto [dit, inserted] = adaptive_depth_.try_emplace(
        loop_id,
        std::clamp(cl.options.prefetch_depth, 1, cl.options.prefetch_depth_max));
    (void)inserted;
    pass_prefetch_depth_ = dit->second;
  }
  last_metrics_.prefetch_depth_effective = pass_prefetch_depth_;

  // Speculative prefetch depth for ordered schedules. Eligibility is
  // structural (overlap engine on, step barrier, a server-hosted array to
  // fetch from); whether the loop *stays* speculative is the controller's
  // call below — a loop whose measured conflict rate made repair cost exceed
  // the hidden wait is sticky-disabled and reverts to synchronous fetches.
  //
  // Speculation additionally requires a serving mode whose served state is
  // fixed at request-dequeue order: inline serving (the single-threaded
  // service loop serves at dequeue time) or versioned serving (the snapshot
  // is pinned at dequeue time). Non-versioned async serving hands gathers to
  // pool threads that read *live* master state at an arbitrary later moment;
  // a speculative gather still queued when step t's barrier release goes out
  // can observe step t+1's kOverwrite flushes — outside the repair window
  // [issued_during, step), so validation would never catch it — and
  // speculative fetches target exactly the keys those flushes overwrite,
  // voiding the reader/writer key-disjointness the stripe-lock path assumes.
  pass_spec_depth_ = 0;
  bool spec_eligible = cl.options.speculate && cl.options.overlap &&
                       cl.NeedsStepBarrier() &&
                       (param_server_ == nullptr || config_.versioned_store);
  if (spec_eligible) {
    spec_eligible = false;
    for (const auto& [id, placement] : cl.plan.placements) {
      if (placement.scheme == PartitionScheme::kServer) {
        spec_eligible = true;
        break;
      }
    }
  }
  if (spec_eligible) {
    SpecState& ss = spec_state_[loop_id];
    pass_spec_depth_ = ss.enabled ? ss.depth : 0;
  }
  last_metrics_.spec_depth_effective = pass_spec_depth_;

  const FabricStats before = fabric_->Stats();
  Stopwatch sw;
  const i32 pass = pass_counter_++;
  fr::Record(fr::EventKind::kPassStart, -1, pass, cl.loop_id);
  trace::SetThreadPass(pass);
  const i64 trace_pass_start_ns = trace::Enabled() ? trace::NowNs() : 0;
  {
    ORION_TRACE_SPAN(kDriver, "start_pass");
    for (int w : live_ranks_) {
      Message m;
      m.from = kMasterRank;
      m.to = w;
      m.kind = MsgKind::kControl;
      m.payload = StartPass{loop_id, pass, pass_prefetch_depth_, pass_spec_depth_}.Encode();
      fabric_->Send(std::move(m));
    }
  }
  const PassOutcome out = ServicePassMessages(cl, pass);
  if (!out.completed) {
    return out;
  }
  fr::Record(fr::EventKind::kPassEnd, -1, pass, cl.loop_id);

  const FabricStats after = fabric_->Stats();
  last_metrics_.pass_wall_seconds = sw.ElapsedSeconds();
  if (trace::Enabled()) {
    // Master pass span: StartPass fan-out through deferred applies — the
    // wall the critical-path analyzer attributes.
    trace::Emit(trace::Category::kDriver, "pass", trace_pass_start_ns, trace::NowNs());
  }
  last_metrics_.bytes_sent = after.bytes_sent - before.bytes_sent;
  last_metrics_.messages_sent = after.messages_sent - before.messages_sent;
  last_metrics_.virtual_net_seconds = after.virtual_net_seconds - before.virtual_net_seconds;
  last_metrics_.zero_copy_bytes = after.zero_copy_bytes - before.zero_copy_bytes;

  // Controller update for the next pass: deepen while blocking reply waits
  // dominate and the ring was actually filled; shrink once waits are fully
  // hidden so idle slots stop holding memory.
  if (cl.options.prefetch_depth_max > 0) {
    constexpr double kDeepenP90Seconds = 50e-6;
    constexpr double kShrinkP90Seconds = 5e-6;
    WaitHistogram merged;
    for (const WaitHistogram& h : last_metrics_.worker_reply_wait) {
      merged.Merge(h);
    }
    int& depth = adaptive_depth_[loop_id];
    if (merged.total_count() > 0) {
      const int depth_before = depth;
      const double p90 = merged.ApproxPercentile(0.90);
      if (p90 > kDeepenP90Seconds &&
          last_metrics_.prefetch_ring_depth_used >= depth) {
        depth = std::min(depth + 1, cl.options.prefetch_depth_max);
      } else if (p90 < kShrinkP90Seconds && depth > 1) {
        --depth;
      }
      if (depth != depth_before) {
        fr::Record(fr::EventKind::kController, -1, depth, depth_before, "prefetch_depth");
      }
    }
  }

  // Speculation controller update. Conflict rate is slots-repaired over
  // slots-issued; hidden vs wait compares what speculation bought (reply
  // latency overlapped with compute) against what it cost (repair round
  // trips + blocked awaits). Disable is *sticky*: a loop whose access
  // pattern conflicts every step will conflict every step, and re-probing
  // would pay the repair tax again each pass.
  if (pass_spec_depth_ > 0 && last_metrics_.spec_issued > 0) {
    SpecState& ss = spec_state_[loop_id];
    const double rate = static_cast<double>(last_metrics_.spec_conflicts) /
                        static_cast<double>(last_metrics_.spec_issued);
    last_metrics_.spec_conflict_rate = rate;
    const int cap = cl.options.prefetch_depth_max > 0
                        ? cl.options.prefetch_depth_max
                        : std::max(1, cl.options.prefetch_depth);
    if (rate > 0.5 || (last_metrics_.spec_conflicts > 0 &&
                       last_metrics_.spec_wait_seconds >
                           last_metrics_.spec_hidden_seconds)) {
      ss.enabled = false;
      fr::Record(fr::EventKind::kController, -1, 0, ss.depth, "spec_disable");
    } else if (rate > 0.25 && ss.depth > 1) {
      --ss.depth;
      fr::Record(fr::EventKind::kController, -1, ss.depth, ss.depth + 1, "spec_depth");
    } else if (rate < 0.05 && last_metrics_.spec_wait_seconds > 50e-6 &&
               ss.depth < cap) {
      ++ss.depth;
      fr::Record(fr::EventKind::kController, -1, ss.depth, ss.depth - 1, "spec_depth");
    }
  }

  // Per-pass metric series (flattened into MetricsRegistry by
  // ExportMetrics): the trend the controller and the stripe heatmap read.
  metrics_series_["pass.wall_seconds"].push_back(last_metrics_.pass_wall_seconds);
  metrics_series_["pass.param_serve_seconds"].push_back(
      last_metrics_.param_serve_seconds);
  metrics_series_["prefetch.depth_effective"].push_back(
      static_cast<double>(last_metrics_.prefetch_depth_effective));
  metrics_series_["spec.depth_effective"].push_back(
      static_cast<double>(last_metrics_.spec_depth_effective));
  metrics_series_["spec.conflict_rate"].push_back(last_metrics_.spec_conflict_rate);
  metrics_series_["spec.repair_bytes"].push_back(
      static_cast<double>(last_metrics_.spec_repair_bytes));
  metrics_series_["versioned.pages_cloned"].push_back(
      static_cast<double>(last_metrics_.versioned_pages_cloned));
  metrics_series_["versioned.snapshot_pins"].push_back(
      static_cast<double>(last_metrics_.versioned_snapshot_pins));
  double stripe_busy_ns = 0.0;
  for (const auto& s : last_metrics_.stripes) {
    stripe_busy_ns += static_cast<double>(s.busy_ns);
  }
  metrics_series_["param.stripe.busy_ns"].push_back(stripe_busy_ns);

  if (recovery_enabled_) {
    pass_log_.emplace_back(loop_id, pass);
  }
  return out;
}

}  // namespace orion
