// Executor: one logical worker of the distributed runtime.
//
// An executor owns the partitions assigned to it and exchanges all data with
// the master and with ring neighbors through the fabric. One pass of a
// compiled loop executes the schedule chosen by the planner:
//
//   1D        — run every local iteration, flush buffers, report done.
//   rotation  — per step: (drain inbox) wait for the rotated partitions of
//               this step's time index, prefetch server reads, run the
//               block, apply/flush buffered writes, forward rotated
//               partitions to the predecessor (paper Fig. 8).
//   wavefront — like rotation but along the successor ring with a global
//               barrier per step (ordered / unimodular loops); server-hosted
//               writes are flushed each step so the next wavefront sees them.
#ifndef ORION_SRC_RUNTIME_EXECUTOR_H_
#define ORION_SRC_RUNTIME_EXECUTOR_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "src/common/timer.h"
#include "src/dsm/dist_array_buffer.h"
#include "src/net/async_sender.h"
#include "src/net/fabric.h"
#include "src/runtime/compiled_loop.h"
#include "src/runtime/metrics.h"
#include "src/runtime/protocol.h"
#include "src/runtime/shared_directory.h"

namespace orion {

// Thrown to unwind out of an in-flight pass when the master reconfigures the
// cluster after a worker loss. Caught in Run(); the abandoned pass sends no
// PassDone.
struct RetireSignal {};

// Thrown when this worker must exit: injected crash, kShutdown, or fabric
// shutdown. Caught at the top of Run(); the thread returns.
struct HaltSignal {};

class Executor {
 public:
  Executor(WorkerId rank, Fabric* fabric, const SharedDirectory* dir);

  // Thread body; returns when the master sends kShutdown (or the fabric
  // shuts down), or when an injected crash fires.
  void Run();

  // Wires the prefetch-ring occupancy gauge: every ring push/pop stores
  // prefetch_ring_.size() into `gauge` (relaxed). The driver owns the atomic
  // at a stable address, so monitor probes stay valid even when a rejoin
  // replaces this Executor object. Call before the executor thread starts.
  void set_ring_fill_gauge(std::atomic<int>* gauge) { ring_fill_gauge_ = gauge; }

 private:
  friend class WorkerLoopContext;
  friend class RecordingLoopContext;

  struct ArrayState {
    DistArrayMeta meta;
    CellStore range_store;             // kRange cells owned by this worker
    std::map<int, CellStore> parts;    // rotated / iteration-space partitions
    CellStore replica;                 // kReplicated full copy
    CellStore prefetch_cache;          // kServer prefetched reads
    CellStore server_dirty;            // kServer unbuffered writes (overwrite)
    std::vector<f32> zeros;            // absent-cell read span

    explicit ArrayState(const DistArrayMeta& m)
        : meta(m),
          range_store(m.value_dim, CellStore::Layout::kHashed, 0),
          replica(m.value_dim, CellStore::Layout::kHashed, 0),
          prefetch_cache(m.value_dim, CellStore::Layout::kHashed, 0),
          server_dirty(m.value_dim, CellStore::Layout::kHashed, 0),
          zeros(static_cast<size_t>(m.value_dim), 0.0f) {}
  };

  ArrayState& GetArray(DistArrayId id);
  DistArrayBuffer& GetBuffer(DistArrayId target);

  // depth_override > 0 replaces the loop's static prefetch_depth for this
  // pass (the master's adaptive controller ships it in StartPass).
  // spec_depth > 0 lets ordered (wavefront/lockstep) passes fetch up to that
  // many steps ahead speculatively; 0 keeps the synchronous issue-await
  // pairing.
  void RunPass(i32 loop_id, i32 pass, int depth_override = 0, int spec_depth = 0);
  void ExecuteCells(const CompiledLoop& cl, int tau, int chunk, int num_chunks);

  // ---- Prefetch pipeline (paper Sec. 4.4 + comm/compute overlap) ----
  //
  // A prefetch is split into issue (collect keys, send ParamRequests, replies
  // land in a ring slot's buffers) and await (drain the front slot's
  // remaining replies, move its buffers into `prefetch_cache`). Synchronous
  // execution issues and awaits back to back; the pipelined path keeps up to
  // `prefetch_depth` steps in flight, so the await collapses to a buffer move
  // when replies already arrived.
  std::map<DistArrayId, std::vector<i64>> CollectPrefetchKeys(const CompiledLoop& cl, int tau,
                                                              int step, int chunk,
                                                              int num_chunks);
  // speculative = true marks the slot as fetched against a possibly-stale
  // master snapshot while step `issued_during` was still executing; the slot
  // then records its key lists so AwaitPrefetch can validate them against
  // the dirty-range summaries of the steps that completed in between.
  void IssuePrefetch(const CompiledLoop& cl, int tau, int step, int chunk, int num_chunks,
                     bool speculative = false, int issued_during = -1);
  void AwaitPrefetch(const CompiledLoop& cl, int step);
  // True when step `step`'s key lists are computable without this worker
  // having executed the preceding steps (synthesized program, or a warm
  // kCached key cache) — the condition for issuing before compute.
  bool CanIssueEarly(const CompiledLoop& cl, int step) const;

  // Validates a speculative slot that AwaitPrefetch just moved into the
  // prefetch caches: keys overlapping any dirty range flushed between issue
  // and now are re-fetched synchronously and overwrite-installed (partial
  // repair). After repair the cache is bit-for-bit what a synchronous fetch
  // at this point would have returned.
  struct PrefetchSlot;
  void RepairSpeculative(const CompiledLoop& cl, const PrefetchSlot& slot);

  void FlushServerBuffers(const CompiledLoop& cl);
  void ApplyLocalBuffers(const CompiledLoop& cl, int tau);
  void StepFlush(const CompiledLoop& cl, int tau, int step);
  void PassEndFlush(const CompiledLoop& cl);
  void SendRotatedParts(const CompiledLoop& cl, int tau);
  void WaitForPart(DistArrayId array, int tau);
  void Barrier(i32 pass, int step);
  void DrainReturningParts(const CompiledLoop& cl);

  void HandleGather(DistArrayId array);
  void DropArray(DistArrayId array);

  // Exits the thread (via HaltSignal) if the fault plan schedules a crash of
  // this worker at (pass, step).
  void MaybeCrash(i32 pass, i32 step);

  // Sleeps out the fault plan's straggle clause for this rank at a step
  // boundary (no-op without one) — wall-clock skew only, used to exercise
  // the master's straggler detector.
  void MaybeStraggle(i32 pass);

  // Routes a data-plane message through the comm thread when the pass runs
  // overlapped, synchronously otherwise.
  void SendData(Message m);

  // Processes one message that is not what the caller is waiting for:
  // installs async data, answers heartbeat pings, dedupes retransmitted
  // kStartPass, discards stale barrier traffic, and throws RetireSignal /
  // HaltSignal on kRetire / kShutdown. Non-const: zero-copy payloads are
  // moved out of the message.
  void Dispatch(Message& msg);
  void ProcessRetire(const Message& msg);
  // Non-blocking drain of queued asynchronous messages.
  void DrainInbox();
  // Blocking receive that dispatches messages until `pred` matches. Throws
  // HaltSignal if the fabric shuts down.
  Message WaitFor(const std::function<bool(const Message&)>& pred);
  // Like WaitFor but gives up after `seconds` (nullopt on timeout).
  std::optional<Message> WaitForTimeout(const std::function<bool(const Message&)>& pred,
                                        double seconds);

  void InstallPartData(PartData pd, MsgKind kind);

  // Maps a schedule-space (logical) worker id to the physical rank holding
  // that slot in the current configuration.
  WorkerId Physical(WorkerId logical) const {
    return logical == kMasterRank ? kMasterRank
                                  : static_cast<WorkerId>(ring_[static_cast<size_t>(logical)]);
  }

  WorkerId rank_;           // physical rank: fabric endpoint, never changes
  Fabric* fabric_;
  const SharedDirectory* dir_;
  SupervisorConfig sup_;

  // Post-failure configuration (kRetire phase 0). Initially logical == rank_
  // and ring_ == {0..N-1}; after a loss, surviving workers get compacted
  // logical ranks and schedule math runs in logical space while messages are
  // addressed to physical ranks.
  WorkerId logical_rank_;
  std::vector<i32> ring_;   // physical rank by logical index

  i32 current_pass_ = -1;        // pass being executed, -1 when idle
  i32 last_completed_pass_ = -1;
  std::optional<Message> cached_pass_done_;  // resent when kStartPass is retransmitted

  std::map<DistArrayId, std::unique_ptr<ArrayState>> arrays_;
  std::map<DistArrayId, std::unique_ptr<DistArrayBuffer>> buffers_;
  std::vector<f64> accum_;
  std::vector<AccumOp> accum_ops_;
  std::vector<f32> mutate_scratch_;

  // Cached prefetch key lists: (loop, tau, array) -> keys.
  std::map<std::tuple<i32, int, DistArrayId>, std::vector<i64>> prefetch_key_cache_;

  // Comm thread for eager sends; Flush()ed at every ordering point (barrier
  // arrival, PassDone, retire ack) so per-link delivery order matches the
  // synchronous sender.
  AsyncSender sender_;
  bool overlap_ = false;  // current pass runs with the overlap engine on

  // Ring of in-flight prefetch issues, FIFO by step: front is the next step
  // this worker will execute, back is the deepest issued. Replies are routed
  // by their step id (PartData::part) into the matching slot's buffers;
  // anything that matches no slot is stale traffic from an abandoned pass and
  // is dropped. Depth is bounded by ParallelForOptions::prefetch_depth.
  struct PrefetchSlot {
    int step = -1;
    int expected = 0;     // requests sent for this step
    int outstanding = 0;  // reply messages not yet installed
    Stopwatch issued_at;
    std::map<DistArrayId, CellStore> buffers;  // per-array landing pads
    // Speculative slots: issued against a possibly-stale snapshot while step
    // `issued_during` ran; `keys` remembers what was requested so the await
    // can validate against the dirty summaries of steps [issued_during, step).
    bool speculative = false;
    int issued_during = -1;
    std::map<DistArrayId, std::vector<i64>> keys;
  };
  void PublishRingFill() {
    if (ring_fill_gauge_ != nullptr) {
      ring_fill_gauge_->store(static_cast<int>(prefetch_ring_.size()),
                              std::memory_order_relaxed);
    }
  }

  std::deque<PrefetchSlot> prefetch_ring_;
  std::atomic<int>* ring_fill_gauge_ = nullptr;  // prefetch_ring_.size() mirror
  int ring_depth_used_ = 0;      // peak ring occupancy this pass
  WaitHistogram reply_wait_;     // per-await blocked-on-reply time

  double compute_seconds_ = 0.0;
  double wait_seconds_ = 0.0;
  double prefetch_hidden_seconds_ = 0.0;
  double sender_busy_at_pass_start_ = 0.0;

  // ---- Speculation state (reset per pass) ----
  // Dirty-range summaries decoded from barrier releases, keyed by step: what
  // the cluster's kOverwrite flushes touched during that step. Consumed by
  // RepairSpeculative to find the conflict window of a speculative slot.
  std::map<int, StepDirtySummary> step_dirty_;
  int spec_depth_ = 0;  // from StartPass; 0 = synchronous
  u32 spec_issued_ = 0;
  u32 spec_conflicts_ = 0;
  u64 spec_repair_bytes_ = 0;
  double spec_hidden_seconds_ = 0.0;
  double spec_wait_seconds_ = 0.0;
  // Monotonic id of barrier-piggybacked span batches (NOT reset per pass:
  // the master dedupes resends by comparing against the last seq it saw).
  u32 span_batch_seq_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_EXECUTOR_H_
