// SharedDirectory: read-mostly metadata shared between the master and the
// executor threads.
//
// Only *metadata* crosses this boundary — array shapes, buffer definitions
// (apply UDFs), compiled loops (kernels + plans). All *data* (cells) moves
// through the fabric as serialized bytes, preserving the share-nothing
// worker model. The directory is written by the master before it signals
// workers, and read under a mutex by executors.
#ifndef ORION_SRC_RUNTIME_SHARED_DIRECTORY_H_
#define ORION_SRC_RUNTIME_SHARED_DIRECTORY_H_

#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/dsm/dist_array_buffer.h"
#include "src/dsm/dist_array_meta.h"
#include "src/runtime/compiled_loop.h"

namespace orion {

// Reduction operator of an accumulator (paper Sec. 3.4: a user-chosen
// commutative and associative operator aggregates worker-local instances).
enum class AccumOp : u8 { kSum, kMin, kMax };

inline f64 AccumIdentity(AccumOp op) {
  switch (op) {
    case AccumOp::kSum:
      return 0.0;
    case AccumOp::kMin:
      return std::numeric_limits<f64>::infinity();
    case AccumOp::kMax:
      return -std::numeric_limits<f64>::infinity();
  }
  return 0.0;
}

inline f64 AccumCombine(AccumOp op, f64 a, f64 b) {
  switch (op) {
    case AccumOp::kSum:
      return a + b;
    case AccumOp::kMin:
      return a < b ? a : b;
    case AccumOp::kMax:
      return a > b ? a : b;
  }
  return a + b;
}

// Supervision parameters, shared master -> executors before the worker
// threads start. Timeouts are wall-clock; pick generous values under
// sanitizers. death_timeout must exceed the longest uninterrupted compute
// block a worker performs, since workers only answer pings between blocks.
struct SupervisorConfig {
  bool enabled = false;
  double heartbeat_interval_seconds = 0.05;  // master ping cadence per worker
  double death_timeout_seconds = 2.0;        // silence before a worker is declared dead
  double retry_initial_seconds = 0.05;       // first retransmit backoff
  double retry_backoff_factor = 2.0;
  int max_retries = 10;                      // per worker per pass
  int max_recovery_attempts = 8;             // per Execute call
  // Extra silence tolerated for a worker that was just sent bulk state
  // (scatter parts, replica snapshots, rejoin streams) and has not spoken
  // since: installing a large transfer can exceed death_timeout_seconds, and
  // declaring the rank dead mid-install would turn every big restore into a
  // false-positive retirement.
  double state_transfer_grace_seconds = 10.0;
};

// A DistArray Buffer definition: how updates routed through the buffer for
// `target` are coalesced and applied.
struct BufferDef {
  DistArrayId target = kInvalidDistArrayId;
  i32 update_dim = 1;
  BufferApplyFn apply;
  BufferCombineFn combine;
};

class SharedDirectory {
 public:
  void PutMeta(const DistArrayMeta& meta) {
    std::lock_guard<std::mutex> lock(mutex_);
    metas_[meta.id] = meta;
  }

  DistArrayMeta GetMeta(DistArrayId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metas_.find(id);
    ORION_CHECK(it != metas_.end()) << "unknown DistArray" << id;
    return it->second;
  }

  void PutBufferDef(std::shared_ptr<const BufferDef> def) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_[def->target] = std::move(def);
  }

  std::shared_ptr<const BufferDef> GetBufferDef(DistArrayId target) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buffers_.find(target);
    return it == buffers_.end() ? nullptr : it->second;
  }

  void PutLoop(std::shared_ptr<const CompiledLoop> loop) {
    std::lock_guard<std::mutex> lock(mutex_);
    loops_[loop->loop_id] = std::move(loop);
  }

  std::shared_ptr<const CompiledLoop> GetLoop(i32 loop_id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = loops_.find(loop_id);
    ORION_CHECK(it != loops_.end()) << "unknown loop" << loop_id;
    return it->second;
  }

  void SetSupervisor(const SupervisorConfig& sup) {
    std::lock_guard<std::mutex> lock(mutex_);
    supervisor_ = sup;
  }
  SupervisorConfig supervisor() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return supervisor_;
  }

  void SetAccumulatorOps(std::vector<AccumOp> ops) {
    std::lock_guard<std::mutex> lock(mutex_);
    accum_ops_ = std::move(ops);
  }
  std::vector<AccumOp> accumulator_ops() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return accum_ops_;
  }
  int num_accumulators() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(accum_ops_.size());
  }

 private:
  mutable std::mutex mutex_;
  std::map<DistArrayId, DistArrayMeta> metas_;
  std::map<DistArrayId, std::shared_ptr<const BufferDef>> buffers_;
  std::map<i32, std::shared_ptr<const CompiledLoop>> loops_;
  std::vector<AccumOp> accum_ops_;
  SupervisorConfig supervisor_;
};

}  // namespace orion

#endif  // ORION_SRC_RUNTIME_SHARED_DIRECTORY_H_
