// Versioned, copy-on-write page layer over CellStore.
//
// The driver's master copy of every DistArray is a VersionedCellStore. It has
// two modes:
//
//  - Flat: a plain CellStore (exactly the seed representation). All
//    between-pass machinery — checkpoints, scatters, gathers, serial loops —
//    keeps operating on `Flat()` with zero overhead.
//  - Paged: the cells live on refcounted pages of kPageCells cells each
//    (BeginServing() paginates; Flat() collapses back). In this mode
//    `Pin()` publishes the current version as an immutable Snapshot — two
//    shared_ptr refcount bumps, no copy — and writers clone only the pages
//    they touch, so parameter-serving gather tasks copy cells out of a
//    pinned snapshot without holding any lock across the copy.
//
// Concurrency contract (what makes this TSan-clean without a lock):
//  - All mutation, Pin(), BeginServing() and Flat() happen on one writer
//    thread (the master's service loop). Pool threads only read through
//    Snapshots.
//  - The store keeps a shared atomic pin counter. Snapshot's destructor
//    drops its page-table/index references FIRST and then decrements the
//    counter with release ordering; the writer reads it with acquire. So
//    when the writer observes zero pins, every concurrent reader access
//    happens-before the writer's next in-place write, and no clone is
//    needed ("no copy when unique").
//  - When pins are live, the writer clones before the first write to any
//    page (or to the page table / hashed index) that predates the latest
//    pin, tracked with a cheap epoch scheme: Pin() bumps `pin_epoch_`; a
//    page whose `page_epoch_` lags it may be shared with a live snapshot
//    and is cloned on write ("copy when pinned"). Cloned or freshly claimed
//    pages carry the current epoch and are written in place thereafter.
//
// Version lifecycle: publish (Pin) -> pinned readers copy lock-free ->
// writer clone-on-write builds the next version in place -> retire (last
// Snapshot release drops the old pages' refcounts to zero).
#ifndef ORION_SRC_DSM_VERSIONED_STORE_H_
#define ORION_SRC_DSM_VERSIONED_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/simd.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dsm/cell_store.h"

namespace orion {

class VersionedCellStore {
 public:
  // Default cells per page. Small enough that a wavefront overwrite touching
  // a few cells clones a few KB, large enough that pagination stays cheap.
  // The effective size is a per-array runtime parameter (page_cells()):
  // SetPageCells() picks it explicitly, AutoTunePageSize() adapts it from
  // value_dim and observed write sparsity — small pages shrink COW bytes for
  // sparse writers, large pages cut pagination overhead for dense serving.
  static constexpr i64 kPageCells = 256;
  static constexpr i64 kMinPageCells = 64;
  static constexpr i64 kMaxPageCells = 1024;

  struct Page {
    std::vector<f32> v;  // page_cells * value_dim floats
  };
  struct PageTable {
    std::vector<std::shared_ptr<Page>> pages;
  };
  struct IndexState {
    std::unordered_map<i64, i64> slot_of;  // hashed layout: key -> slot
  };

  // An immutable view of one published version. Move-only; releasing the
  // last Snapshot of a version retires its private pages. Safe to read from
  // any thread; Get() mirrors CellStore::Get() exactly (dense keys are
  // bounds-CHECKed, hashed misses return nullptr) so replies built from a
  // snapshot are byte-identical to replies built from the live store.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    Snapshot(Snapshot&& other) noexcept = default;
    Snapshot& operator=(Snapshot&& other) noexcept {
      if (this != &other) {
        Release();
        table_ = std::move(other.table_);
        index_ = std::move(other.index_);
        pins_ = std::move(other.pins_);
        dense_ = other.dense_;
        lo_ = other.lo_;
        hi_ = other.hi_;
        vdim_ = other.vdim_;
        page_cells_ = other.page_cells_;
      }
      return *this;
    }
    ~Snapshot() { Release(); }

    bool valid() const { return pins_ != nullptr; }
    i32 value_dim() const { return vdim_; }
    bool dense() const { return dense_; }
    i64 range_lo() const { return lo_; }
    i64 range_hi() const { return hi_; }

    const f32* Get(i64 key) const {
      i64 slot;
      if (dense_) {
        ORION_CHECK(key >= lo_ && key <= hi_)
            << "key" << key << "outside dense range [" << lo_ << "," << hi_ << "]";
        slot = key - lo_;
      } else {
        auto it = index_->slot_of.find(key);
        if (it == index_->slot_of.end()) {
          return nullptr;
        }
        slot = it->second;
      }
      const Page& p = *table_->pages[static_cast<size_t>(slot / page_cells_)];
      return p.v.data() + static_cast<size_t>(slot % page_cells_) * vdim_;
    }

    // Drops the version references, then the pin. Order matters: the
    // release-decrement must come last so a writer that observes zero pins
    // also observes every reference already dropped.
    void Release() {
      if (pins_ == nullptr) {
        return;
      }
      table_.reset();
      index_.reset();
      pins_->fetch_sub(1, std::memory_order_release);
      pins_.reset();
    }

   private:
    friend class VersionedCellStore;
    std::shared_ptr<const PageTable> table_;
    std::shared_ptr<const IndexState> index_;
    std::shared_ptr<std::atomic<int>> pins_;
    bool dense_ = false;
    i64 lo_ = 0;
    i64 hi_ = -1;
    i32 vdim_ = 1;
    i64 page_cells_ = kPageCells;
  };

  // Writer-side pass stats (clone traffic and pins since the last Take).
  struct Stats {
    u64 pins = 0;
    u64 pages_cloned = 0;
    u64 cow_bytes = 0;
  };

  VersionedCellStore() = default;
  explicit VersionedCellStore(CellStore flat) : flat_(std::move(flat)) {}

  // Replaces the contents wholesale (restores, re-creates). Requires no
  // live snapshots — recovery quiesces the ParamServer first.
  VersionedCellStore& operator=(CellStore flat) {
    DropPages();
    flat_ = std::move(flat);
    return *this;
  }

  bool paged() const { return paged_; }
  i32 value_dim() const { return paged_ ? vdim_ : flat_.value_dim(); }
  i64 NumCells() const { return paged_ ? num_cells_ : flat_.NumCells(); }

  // The flat CellStore view, collapsing the pages back first if needed.
  // Collapse requires no live snapshots (call after ParamServer::Quiesce).
  CellStore& Flat() {
    if (paged_) {
      Collapse();
    }
    return flat_;
  }

  // Paginates the flat store so Pin() becomes available. Idempotent; cheap
  // relative to one pass of serving (one bulk copy of the values).
  void BeginServing() {
    if (paged_) {
      return;
    }
    vdim_ = flat_.value_dim();
    layout_ = flat_.layout();
    lo_ = flat_.range_lo();
    hi_ = flat_.range_hi();
    num_cells_ = flat_.NumCells();
    if (layout_ == CellStore::Layout::kHashed) {
      keys_ = flat_.keys();
      index_ = std::make_shared<IndexState>();
      index_->slot_of.reserve(keys_.size());
      for (size_t i = 0; i < keys_.size(); ++i) {
        index_->slot_of.emplace(keys_[i], static_cast<i64>(i));
      }
    }
    const i64 npages = (num_cells_ + page_cells_ - 1) / page_cells_;
    table_ = std::make_shared<PageTable>();
    table_->pages.reserve(static_cast<size_t>(npages));
    // Both layouts keep values in slot order (dense: key order, hashed:
    // insertion order), so pagination is a straight chop of the backing span.
    const std::vector<f32>& src = flat_.raw_values();
    const size_t page_floats = static_cast<size_t>(page_cells_) * vdim_;
    for (i64 p = 0; p < npages; ++p) {
      auto page = std::make_shared<Page>();
      page->v.assign(page_floats, 0.0f);
      const size_t off = static_cast<size_t>(p) * page_floats;
      const size_t n = std::min(page_floats, src.size() - off);
      simd::CopyF32(page->v.data(), src.data() + off, n);
      table_->pages.push_back(std::move(page));
    }
    page_epoch_.assign(static_cast<size_t>(npages), 0);
    // Flat-mode mutations were not page-tracked, so a fresh pagination can
    // not know what changed since the last checkpoint mark.
    dirty_.assign(static_cast<size_t>(npages), 1);
    // Likewise the first publish after pagination honestly reports every
    // page as new to its version.
    version_dirty_.assign(static_cast<size_t>(npages), 1);
    delta_tracking_ = false;
    pin_epoch_ = 0;
    table_epoch_ = 0;
    index_epoch_ = 0;
    flat_ = CellStore(vdim_, CellStore::Layout::kHashed, 0);  // release memory
    paged_ = true;
  }

  // Publishes the current version. Refcount bumps only — no copy.
  Snapshot Pin() {
    ORION_CHECK(paged_) << "Pin() requires BeginServing()";
    ++pin_epoch_;
    ++stats_.pins;
    pins_->fetch_add(1, std::memory_order_acq_rel);
    Snapshot s;
    s.table_ = table_;
    s.index_ = index_;
    s.pins_ = pins_;
    s.dense_ = layout_ != CellStore::Layout::kHashed;
    s.lo_ = lo_;
    s.hi_ = hi_;
    s.vdim_ = vdim_;
    s.page_cells_ = page_cells_;
    return s;
  }

  // ---- Version publish (serving tier) ----
  // One publish per pass boundary: pins the current version (pin-per-version
  // — readers of that version ride shared_ptr copies, never re-pin) and
  // reports which pages were written since the previous publish: exactly the
  // delta a snapshot-shipping replica needs to catch up from version seq-1
  // to seq, and a direct measure of how many clones that pin can force.
  // Tracked by a dedicated bitmap so serving publishes and checkpoint marks
  // (MarkCheckpointed/DirtyPages) never clobber each other's accounting.

  struct Published {
    Snapshot snap;
    std::vector<u32> dirty_pages;  // pages written since the previous publish
    u64 seq = 0;                   // monotone per-store publish sequence
  };

  Published PublishVersion() {
    ORION_CHECK(paged_) << "PublishVersion() requires BeginServing()";
    Published out;
    for (size_t pi = 0; pi < version_dirty_.size(); ++pi) {
      if (version_dirty_[pi]) {
        out.dirty_pages.push_back(static_cast<u32>(pi));
        version_dirty_[pi] = 0;
      }
    }
    out.seq = ++publish_seq_;
    out.snap = Pin();
    return out;
  }

  u64 publish_seq() const { return publish_seq_; }

  // ---- Per-array page sizing ----

  i64 page_cells() const { return page_cells_; }

  // Sets the page size. Cheap in flat mode (takes effect at the next
  // BeginServing); in paged mode it repaginates — collapse plus re-chop, two
  // bulk copies — which requires no live snapshots and honestly invalidates
  // delta tracking (the next checkpoint writes a full record).
  void SetPageCells(i64 cells) {
    ORION_CHECK(cells > 0) << "page size must be positive";
    if (cells == page_cells_) {
      return;
    }
    if (!paged_) {
      page_cells_ = cells;
      return;
    }
    ORION_CHECK(NoLivePins()) << "repaginating a versioned store with live snapshots";
    Collapse();
    page_cells_ = cells;
    BeginServing();
  }

  // Adapts the page size to the traffic observed since the last call (one
  // call per pass, at a quiesced point). Serving-only arrays grow toward
  // kMaxPageCells (pagination overhead only, no COW); sparse writers shrink
  // toward kMinPageCells (clone bytes scale with page size); dense writers
  // settle at a ~4 KiB page derived from value_dim. Two consecutive agreeing
  // picks are required before repaginating, so a single odd pass cannot
  // thrash the layout. Returns true when it repaginated.
  bool AutoTunePageSize() {
    if (!paged_ || !NoLivePins()) {
      return false;
    }
    const i64 desired = PickPageCells();
    tune_cell_writes_ = 0;
    if (desired == page_cells_) {
      tune_pending_ = desired;
      tune_streak_ = 0;
      return false;
    }
    if (tune_pending_ != desired) {
      tune_pending_ = desired;
      tune_streak_ = 1;
      return false;
    }
    if (++tune_streak_ < 2) {
      return false;
    }
    SetPageCells(desired);
    tune_streak_ = 0;
    return true;
  }

  // ---- CellStore-compatible access (writer thread) ----
  // In flat mode these delegate 1:1; in paged mode writes go through
  // clone-on-write so pinned snapshots never observe them.

  const f32* Get(i64 key) const {
    if (!paged_) {
      return flat_.Get(key);
    }
    const i64 slot = SlotOf(key);
    if (slot < 0) {
      return nullptr;
    }
    return SlotPtr(slot);
  }

  f32* GetOrCreate(i64 key) {
    if (!paged_) {
      return flat_.GetOrCreate(key);
    }
    i64 slot;
    if (layout_ != CellStore::Layout::kHashed) {
      ORION_CHECK(key >= lo_ && key <= hi_)
          << "key" << key << "outside dense range [" << lo_ << "," << hi_ << "]";
      slot = key - lo_;
    } else {
      auto it = index_->slot_of.find(key);
      slot = it != index_->slot_of.end() ? it->second : InsertSlot(key);
    }
    return WritableSlot(slot);
  }

  void Reserve(i64 additional_cells) {
    if (!paged_) {
      flat_.Reserve(additional_cells);
    }
  }

  void MergeAdd(const CellStore& other) {
    if (!paged_) {
      flat_.MergeAdd(other);
      return;
    }
    ORION_CHECK(other.value_dim() == vdim_);
    other.ForEachConstFast([this](i64 key, const f32* v) {
      // One IEEE add per lane of this cell — vector width never changes the
      // fold order, so results match the scalar loop bit-for-bit.
      simd::AddF32(GetOrCreate(key), v, static_cast<size_t>(vdim_));
    });
  }

  template <typename F>
  void ForEachConstFast(F&& fn) const {
    if (!paged_) {
      flat_.ForEachConstFast(std::forward<F>(fn));
      return;
    }
    if (layout_ != CellStore::Layout::kHashed) {
      for (i64 k = lo_; k <= hi_; ++k) {
        fn(k, SlotPtr(k - lo_));
      }
      return;
    }
    for (size_t i = 0; i < keys_.size(); ++i) {
      fn(keys_[i], SlotPtr(static_cast<i64>(i)));
    }
  }

  void ForEachConst(const std::function<void(i64 key, const f32* value)>& fn) const {
    ForEachConstFast([&fn](i64 key, const f32* v) { fn(key, v); });
  }

  // ---- Delta export (durability log) ----
  // The writer thread calls MarkCheckpointed() right after a checkpoint
  // record is taken; from then on `dirty_` records exactly the pages touched
  // since that mark (WritableSlot is the sole paged-write choke point, and
  // fresh InsertSlot pages are born dirty). Any transition back to flat mode
  // (Collapse / wholesale assignment) loses page granularity and invalidates
  // tracking, so the next checkpoint honestly falls back to a full record.

  // True when DirtyPages() describes every mutation since MarkCheckpointed().
  bool delta_tracking_valid() const { return paged_ && delta_tracking_; }

  // Indices of pages dirtied since the last MarkCheckpointed(). Only
  // meaningful when delta_tracking_valid().
  std::vector<u32> DirtyPages() const {
    std::vector<u32> out;
    for (size_t pi = 0; pi < dirty_.size(); ++pi) {
      if (dirty_[pi]) {
        out.push_back(static_cast<u32>(pi));
      }
    }
    return out;
  }

  // Number of cells present at the last MarkCheckpointed() (hashed stores
  // grow; the delta ships keys_[checkpoint_cells()..num_cells)).
  i64 checkpoint_cells() const { return checkpoint_cells_; }

  // Clears the dirty set and (in paged mode) arms delta tracking.
  void MarkCheckpointed() {
    if (!paged_) {
      delta_tracking_ = false;
      return;
    }
    std::fill(dirty_.begin(), dirty_.end(), 0);
    checkpoint_cells_ = num_cells_;
    delta_tracking_ = true;
  }

  // Paged-mode layout accessors for the delta writer.
  CellStore::Layout layout() const { return paged_ ? layout_ : flat_.layout(); }
  i64 range_lo() const { return paged_ ? lo_ : flat_.range_lo(); }
  i64 range_hi() const { return paged_ ? hi_ : flat_.range_hi(); }
  const std::vector<i64>& paged_keys() const { return keys_; }
  const f32* PageData(size_t pi) const { return table_->pages[pi]->v.data(); }
  size_t PageFloats() const { return static_cast<size_t>(page_cells_) * vdim_; }

  // Serializes the current contents in exactly the CellStore wire format —
  // byte-identical to Flat().Serialize(w) — without collapsing, so a base
  // image can be written while pagination and dirty tracking stay intact.
  void SerializeTo(ByteWriter* w) const {
    if (!paged_) {
      flat_.Serialize(w);
      return;
    }
    w->Put<i32>(vdim_);
    w->Put<u8>(static_cast<u8>(layout_));
    if (layout_ != CellStore::Layout::kHashed) {
      w->Put<i64>(lo_);
      w->Put<i64>(hi_);
    } else {
      w->PutVec(keys_);
    }
    const size_t total = static_cast<size_t>(num_cells_) * vdim_;
    w->Put<u64>(static_cast<u64>(total));  // PutVec(values_) size prefix
    const size_t page_floats = PageFloats();
    for (size_t pi = 0; pi < table_->pages.size(); ++pi) {
      const size_t off = pi * page_floats;
      const size_t n = std::min(page_floats, total - off);
      w->PutBytes(table_->pages[pi]->v.data(), n * sizeof(f32));
    }
  }

  // ---- Introspection (tests, metrics) ----

  Stats TakeStats() {
    Stats out = stats_;
    stats_ = Stats{};
    return out;
  }
  const Stats& stats() const { return stats_; }
  i64 num_pages() const { return paged_ ? static_cast<i64>(table_->pages.size()) : 0; }
  int live_pins() const {
    return pins_->load(std::memory_order_acquire);
  }
  // Refcount of the page holding `key` (paged mode; tests assert the
  // no-copy-when-unique / copy-when-pinned lifecycle through this).
  long PageUseCount(i64 key) const {
    ORION_CHECK(paged_);
    const i64 slot = SlotOf(key);
    ORION_CHECK(slot >= 0);
    return table_->pages[static_cast<size_t>(slot / page_cells_)].use_count();
  }

 private:
  // Slot of `key`, or -1 when absent (hashed). Mirrors CellStore::Get's
  // dense bounds CHECK.
  i64 SlotOf(i64 key) const {
    if (layout_ != CellStore::Layout::kHashed) {
      ORION_CHECK(key >= lo_ && key <= hi_)
          << "key" << key << "outside dense range [" << lo_ << "," << hi_ << "]";
      return key - lo_;
    }
    auto it = index_->slot_of.find(key);
    return it == index_->slot_of.end() ? -1 : it->second;
  }

  const f32* SlotPtr(i64 slot) const {
    const Page& p = *table_->pages[static_cast<size_t>(slot / page_cells_)];
    return p.v.data() + static_cast<size_t>(slot % page_cells_) * vdim_;
  }

  // Page size the autotuner would choose right now, from value_dim and the
  // write density since the last tune window. Clamped powers of two only, so
  // slot arithmetic stays cheap and the sweep space is small.
  i64 PickPageCells() const {
    if (tune_cell_writes_ == 0) {
      // Serving-only: no COW traffic to shrink for; amortize pagination.
      return kMaxPageCells;
    }
    const double write_fraction =
        static_cast<double>(tune_cell_writes_) /
        static_cast<double>(std::max<i64>(1, num_cells_));
    if (write_fraction < 1.0 / 16.0) {
      // Sparse writers (wavefront flushes): clone bytes scale with page
      // size, so go small.
      return kMinPageCells;
    }
    // Dense writers: target ~4 KiB pages so one clone is one page of cache
    // lines, scaled down as cells get wider.
    i64 cells = kMaxPageCells;
    while (cells > kMinPageCells &&
           cells * static_cast<i64>(sizeof(f32)) * vdim_ > 4096) {
      cells /= 2;
    }
    return cells;
  }

  bool NoLivePins() const { return pins_->load(std::memory_order_acquire) == 0; }

  void EnsureTableOwned() {
    if (table_epoch_ == pin_epoch_) {
      return;
    }
    table_ = std::make_shared<PageTable>(*table_);
    table_epoch_ = pin_epoch_;
  }

  // Returns a writable pointer to `slot`, cloning its page first when a live
  // snapshot might still reference it.
  f32* WritableSlot(i64 slot) {
    const size_t pi = static_cast<size_t>(slot / page_cells_);
    if (page_epoch_[pi] != pin_epoch_) {
      if (NoLivePins()) {
        // Every snapshot that ever saw this page is released; claim it.
        table_epoch_ = pin_epoch_;
        page_epoch_[pi] = pin_epoch_;
      } else {
        EnsureTableOwned();
        const Page& shared = *table_->pages[pi];
        auto clone = std::make_shared<Page>();
        clone->v.resize(shared.v.size());
        simd::CopyF32(clone->v.data(), shared.v.data(), shared.v.size());
        table_->pages[pi] = std::move(clone);
        page_epoch_[pi] = pin_epoch_;
        ++stats_.pages_cloned;
        stats_.cow_bytes += table_->pages[pi]->v.size() * sizeof(f32);
      }
    }
    dirty_[pi] = 1;
    version_dirty_[pi] = 1;
    ++tune_cell_writes_;
    Page& p = *table_->pages[pi];
    return p.v.data() + static_cast<size_t>(slot % page_cells_) * vdim_;
  }

  // Hashed insert while paged: clone the index (and possibly grow the table)
  // under the same epoch rules, then hand the fresh slot to WritableSlot.
  i64 InsertSlot(i64 key) {
    if (index_epoch_ != pin_epoch_) {
      if (!NoLivePins()) {
        index_ = std::make_shared<IndexState>(*index_);
      }
      index_epoch_ = pin_epoch_;
    }
    const i64 slot = num_cells_;
    const size_t pi = static_cast<size_t>(slot / page_cells_);
    if (pi == table_->pages.size()) {
      if (!NoLivePins()) {
        EnsureTableOwned();
      } else {
        table_epoch_ = pin_epoch_;
      }
      auto page = std::make_shared<Page>();
      page->v.assign(static_cast<size_t>(page_cells_) * vdim_, 0.0f);
      table_->pages.push_back(std::move(page));
      page_epoch_.push_back(pin_epoch_);  // fresh page: writer-owned
      dirty_.push_back(1);
      version_dirty_.push_back(1);
    }
    index_->slot_of.emplace(key, slot);
    keys_.push_back(key);
    ++num_cells_;
    return slot;
  }

  void Collapse() {
    ORION_CHECK(NoLivePins()) << "collapsing a versioned store with live snapshots";
    CellStore out = layout_ == CellStore::Layout::kFullDense
                        ? CellStore(vdim_, CellStore::Layout::kFullDense, hi_ - lo_ + 1)
                        : layout_ == CellStore::Layout::kDenseRange
                              ? CellStore::DenseRange(vdim_, lo_, hi_)
                              : CellStore(vdim_, CellStore::Layout::kHashed, 0);
    if (layout_ == CellStore::Layout::kHashed) {
      out.Reserve(num_cells_);
      for (size_t i = 0; i < keys_.size(); ++i) {
        const f32* src = SlotPtr(static_cast<i64>(i));
        simd::CopyF32(out.GetOrCreate(keys_[i]), src, static_cast<size_t>(vdim_));
      }
    } else {
      f32* dst = out.raw_values_data();
      const size_t page_floats = static_cast<size_t>(page_cells_) * vdim_;
      const size_t total = static_cast<size_t>(num_cells_) * vdim_;
      for (size_t pi = 0; pi < table_->pages.size(); ++pi) {
        const size_t off = pi * page_floats;
        const size_t n = std::min(page_floats, total - off);
        simd::CopyF32(dst + off, table_->pages[pi]->v.data(), n);
      }
    }
    flat_ = std::move(out);
    DropPages();
  }

  void DropPages() {
    if (paged_) {
      ORION_CHECK(NoLivePins()) << "dropping a versioned store with live snapshots";
    }
    table_.reset();
    index_.reset();
    keys_.clear();
    page_epoch_.clear();
    dirty_.clear();
    version_dirty_.clear();
    delta_tracking_ = false;
    checkpoint_cells_ = 0;
    num_cells_ = 0;
    paged_ = false;
  }

  CellStore flat_;
  bool paged_ = false;

  // Paged-mode state. `keys_` (hashed insertion order) is writer-private:
  // snapshots resolve keys through their pinned IndexState only.
  CellStore::Layout layout_ = CellStore::Layout::kHashed;
  i32 vdim_ = 1;
  i64 lo_ = 0;
  i64 hi_ = -1;
  i64 num_cells_ = 0;
  std::shared_ptr<PageTable> table_;
  std::shared_ptr<IndexState> index_;
  std::vector<i64> keys_;

  // COW bookkeeping. pin_epoch_ advances on every Pin(); a page/table/index
  // whose epoch lags it may be shared with a live snapshot.
  std::shared_ptr<std::atomic<int>> pins_ = std::make_shared<std::atomic<int>>(0);
  u64 pin_epoch_ = 0;
  u64 table_epoch_ = 0;
  u64 index_epoch_ = 0;
  std::vector<u64> page_epoch_;

  // Delta-checkpoint bookkeeping (see "Delta export" above). `dirty_` is a
  // per-page flag rather than an epoch compare: claim-in-place writes with
  // no live pins mutate a page without bumping its epoch, so epochs alone
  // under-report dirtiness across a checkpoint mark.
  std::vector<u8> dirty_;
  bool delta_tracking_ = false;
  i64 checkpoint_cells_ = 0;

  // Publish bookkeeping (see "Version publish" above). Separate bitmap from
  // `dirty_`: publishes and checkpoints clear on independent cadences.
  // `publish_seq_` survives collapse so versions stay monotone per store.
  std::vector<u8> version_dirty_;
  u64 publish_seq_ = 0;

  // Per-array page size. Survives collapse/repagination; snapshots carry
  // their own copy so a retune never perturbs a pinned version's geometry.
  i64 page_cells_ = kPageCells;
  // Autotune window: cells written through WritableSlot since the last
  // AutoTunePageSize() call, plus the two-pick hysteresis state.
  u64 tune_cell_writes_ = 0;
  i64 tune_pending_ = 0;
  int tune_streak_ = 0;

  Stats stats_;
};

}  // namespace orion

#endif  // ORION_SRC_DSM_VERSIONED_STORE_H_
