#include "src/dsm/dist_array_buffer.h"

namespace orion {

BufferApplyFn MakeAddApplyFn() {
  return [](f32* cell, const f32* update, i32 value_dim) {
    for (i32 d = 0; d < value_dim; ++d) {
      cell[d] += update[d];
    }
  };
}

BufferCombineFn MakeAddCombineFn() {
  return [](f32* pending, const f32* incoming, i32 update_dim) {
    for (i32 d = 0; d < update_dim; ++d) {
      pending[d] += incoming[d];
    }
  };
}

}  // namespace orion
