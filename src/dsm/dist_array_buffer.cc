#include "src/dsm/dist_array_buffer.h"

#include "src/common/simd.h"

namespace orion {

BufferApplyFn MakeAddApplyFn() {
  return [](f32* cell, const f32* update, i32 value_dim) {
    simd::AddF32(cell, update, static_cast<size_t>(value_dim));
  };
}

BufferCombineFn MakeAddCombineFn() {
  return [](f32* pending, const f32* incoming, i32 update_dim) {
    simd::AddF32(pending, incoming, static_cast<size_t>(update_dim));
  };
}

}  // namespace orion
