// Log-structured durability for the driver's master state (ROADMAP
// "log-structured durability"; replaces whole-store CheckpointWrite cycles).
//
// On-disk layout inside one log directory:
//
//   base.orib   full image: master record + every array serialized whole.
//   wal.oril    append-only delta records. Each record carries the master
//               record at that checkpoint plus, per array, either the pages
//               dirtied since the previous record (delta) or a full store
//               when page tracking was not available (e.g. the array was
//               collapsed to flat or regrown since the last mark).
//
// Both files frame their payloads as {magic u32, version u32, seq u64,
// payload_size u64, fnv1a u64, payload} (the checksum covers seq, size and
// payload). `seq` totally orders checkpoints
// across base rewrites: compaction writes a new base at the current seq and
// truncates the WAL, and a reader skips any surviving WAL record with
// seq <= base_seq (the crash window between base rename and WAL truncate).
//
// Durability discipline (shared with CheckpointWrite via durable_io):
// appends are write+fsync on the WAL fd; base replacement is write-temp,
// fsync, rename, fsync-directory. A torn WAL tail — from a crash mid-append
// — fails its size or checksum check; readers stop at the last valid record
// and writers truncate the tail before appending again.
#ifndef ORION_SRC_DSM_DELTA_LOG_H_
#define ORION_SRC_DSM_DELTA_LOG_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dsm/cell_store.h"
#include "src/dsm/versioned_store.h"

namespace orion {

// Everything the master needs, beyond array cells, to resume training after
// a supervisor crash: the pass counter, accumulator values, cluster
// membership, and the seeds that make scatter order and fault injection
// reproducible. Loop ids are recorded for validation — the loop *programs*
// are re-registered by the (deterministic) driver program on restart.
struct MasterRecord {
  i64 next_pass = 0;  // passes completed when this record was taken
  u64 config_seed = 0;
  u64 fault_seed = 0;
  i32 num_workers = 0;
  std::vector<i32> live_ranks;
  std::vector<i32> loop_ids;
  std::vector<f64> accumulators;

  void Encode(ByteWriter* w) const;
  static MasterRecord Decode(ByteReader* r);
};

struct DeltaLogOptions {
  // Fold the log back into a full base image after this many delta records.
  // <= 0 disables compaction (the base is still written once at the start).
  int compact_every = 8;
};

// One array to include in a checkpoint. The store is mutated only by
// MarkCheckpointed() after the record is durably on disk.
struct ArrayCheckpointRef {
  std::string name;
  VersionedCellStore* store = nullptr;
};

struct DeltaAppendStats {
  u64 bytes_appended = 0;  // bytes written to disk for this checkpoint
  u64 pages_deltad = 0;    // dirty pages shipped in delta form
  int full_arrays = 0;     // arrays that fell back to a full image
  bool wrote_base = false; // this checkpoint wrote a full base image
  bool compacted = false;  // ... and it folded existing WAL records into it
};

class DeltaLogWriter {
 public:
  // Opens (creating the directory if needed) the log for appending. If a
  // valid base already exists — a restarted master — appending continues
  // after the last valid record; a torn WAL tail is truncated away first.
  static StatusOr<std::unique_ptr<DeltaLogWriter>> Open(std::string dir,
                                                        DeltaLogOptions options);

  // Durably appends one checkpoint covering `arrays`. The first checkpoint
  // (and every compaction point) writes a full base; otherwise each array
  // contributes only its dirty pages when tracking is valid, or a full
  // store when not. On success every store's dirty set is cleared
  // (MarkCheckpointed), so the next append captures exactly the writes from
  // here forward.
  StatusOr<DeltaAppendStats> AppendCheckpoint(
      const MasterRecord& master, const std::vector<ArrayCheckpointRef>& arrays);

  u64 last_seq() const { return seq_; }
  const std::string& dir() const { return dir_; }

 private:
  DeltaLogWriter(std::string dir, DeltaLogOptions options)
      : dir_(std::move(dir)), options_(options) {}

  Status WriteBase(const MasterRecord& master,
                   const std::vector<ArrayCheckpointRef>& arrays, u64* bytes);

  std::string dir_;
  DeltaLogOptions options_;
  u64 seq_ = 0;                // seq of the last durable checkpoint
  int records_since_base_ = 0;
};

// A restorable checkpoint: `pass` is MasterRecord::next_pass at that point.
struct RestorePoint {
  u64 seq = 0;
  i64 pass = 0;
};

class DeltaLogReader {
 public:
  // Parses the base and scans the WAL, CRC-validating every record. A torn
  // or corrupt tail is not an error: the reader stops at the last valid
  // record and reports torn_tail(). A missing/corrupt *base* is an error —
  // there is nothing to restore from.
  static StatusOr<DeltaLogReader> Open(const std::string& dir);

  // Checkpoints available for restore, in seq order (first is the base).
  const std::vector<RestorePoint>& points() const { return points_; }
  bool torn_tail() const { return torn_tail_; }
  u64 valid_wal_bytes() const { return valid_wal_bytes_; }

  struct State {
    MasterRecord master;
    std::map<std::string, CellStore> arrays;
  };

  // Materializes the state at a recorded point: the base image plus every
  // delta record with base_seq < record seq <= target, bit-for-bit equal to
  // the live master state when that checkpoint was taken.
  StatusOr<State> StateAt(u64 seq) const;
  // Same, addressed by completed-pass count (RestorePoint::pass).
  StatusOr<State> StateAtPass(i64 pass) const;
  StatusOr<State> Latest() const;

 private:
  friend class DeltaLogWriter;

  struct ArrayDelta {
    std::string name;
    bool full = false;
    CellStore full_store;
    // Delta form: layout echo for validation + dirty pages.
    u8 layout = 0;
    i32 vdim = 1;
    i64 lo = 0;
    i64 hi = -1;
    i64 num_cells = 0;
    // Page geometry of the writing store (page sizes are per-array and may
    // be retuned between runs, so each delta record carries its own).
    i64 page_cells = VersionedCellStore::kPageCells;
    std::vector<i64> new_keys;  // hashed growth since the previous record
    std::vector<std::pair<u32, std::vector<f32>>> pages;
  };
  struct Record {
    u64 seq = 0;
    MasterRecord master;
    std::vector<ArrayDelta> arrays;
  };

  u64 base_seq_ = 0;
  MasterRecord base_master_;
  std::map<std::string, CellStore> base_arrays_;
  std::vector<Record> records_;  // seq > base_seq_, ascending
  std::vector<RestorePoint> points_;
  bool torn_tail_ = false;
  u64 valid_wal_bytes_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_DSM_DELTA_LOG_H_
