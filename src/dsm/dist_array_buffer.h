// DistArray Buffers (paper Sec. 3.3): per-worker write-back buffers whose
// writes are exempt from dependence analysis.
//
// A buffer accumulates updates locally; on flush the updates are shipped to
// the owning shard and applied cell-by-cell with a user-defined apply
// function executed atomically per cell. The apply UDF enables adaptive
// gradient algorithms (AdaGrad / Adaptive Revision) because the owner can
// keep auxiliary state in the cell's value span.
#ifndef ORION_SRC_DSM_DIST_ARRAY_BUFFER_H_
#define ORION_SRC_DSM_DIST_ARRAY_BUFFER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/dsm/cell_store.h"

namespace orion {

// Applies one buffered update to one cell. `cell` is the authoritative value
// span (value_dim floats); `update` is the buffered update span
// (update_dim floats, which may differ from value_dim when the update
// carries extra info such as the old parameter value for AdaRevision).
using BufferApplyFn = std::function<void(f32* cell, const f32* update, i32 value_dim)>;

// The default apply: cell += update (update_dim == value_dim).
BufferApplyFn MakeAddApplyFn();

// Combines two pending updates for the same key inside the buffer before
// flush (update coalescing). Default is element-wise addition.
using BufferCombineFn = std::function<void(f32* pending, const f32* incoming, i32 update_dim)>;
BufferCombineFn MakeAddCombineFn();

class DistArrayBuffer {
 public:
  DistArrayBuffer(DistArrayId target, i32 update_dim, BufferApplyFn apply,
                  BufferCombineFn combine)
      : target_(target),
        update_dim_(update_dim),
        apply_(std::move(apply)),
        combine_(std::move(combine)),
        pending_(update_dim, CellStore::Layout::kHashed, 0) {}

  DistArrayId target() const { return target_; }
  i32 update_dim() const { return update_dim_; }
  const BufferApplyFn& apply_fn() const { return apply_; }

  // Buffers an update for `key`, coalescing with any pending update.
  void Accumulate(i64 key, const f32* update) {
    f32* slot = pending_.GetOrCreate(key);
    combine_(slot, update, update_dim_);
  }

  i64 NumPending() const { return pending_.NumCells(); }

  // Drains the pending updates (leaves the buffer empty).
  CellStore Drain() {
    CellStore out = std::move(pending_);
    pending_ = CellStore(update_dim_, CellStore::Layout::kHashed, 0);
    return out;
  }

  // Applies a drained update store onto authoritative cells. Templated so
  // the master's versioned (copy-on-write) store can stand in for a plain
  // CellStore.
  template <typename Store>
  static void ApplyTo(Store* cells, const CellStore& updates, const BufferApplyFn& apply) {
    cells->Reserve(updates.NumCells());
    const i32 value_dim = cells->value_dim();
    updates.ForEachConstFast([&](i64 key, const f32* update) {
      apply(cells->GetOrCreate(key), update, value_dim);
    });
  }

 private:
  DistArrayId target_;
  i32 update_dim_;
  BufferApplyFn apply_;
  BufferCombineFn combine_;
  CellStore pending_;
};

}  // namespace orion

#endif  // ORION_SRC_DSM_DIST_ARRAY_BUFFER_H_
