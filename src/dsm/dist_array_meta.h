// Metadata describing a DistArray (paper Sec. 3.1).
//
// A DistArray is an N-dimensional matrix of cells; each cell is a fixed-size
// span of `value_dim` f32s (rank-r factor rows, K-topic count vectors, or
// plain scalars with value_dim == 1). DistArrays may be dense (every index
// present) or sparse (only materialized entries exist, e.g. a rating matrix).
#ifndef ORION_SRC_DSM_DIST_ARRAY_META_H_
#define ORION_SRC_DSM_DIST_ARRAY_META_H_

#include <string>
#include <vector>

#include "src/dsm/key_space.h"

namespace orion {

enum class Density { kDense, kSparse };

// How a DistArray is laid out across workers during a parallel for-loop.
enum class PartitionScheme {
  kUnpartitioned,  // driver-local
  kRange,          // range partitioned along one dimension (space dim)
  kSpaceTime,      // 2D partitioned (space dim owned, time dim rotated)
  kServer,         // hosted by the server; accessed via prefetch/buffer
  kReplicated,     // full copy on every worker; writes must be buffered
  kIterSpace,      // the loop's iteration space (partitioned by the grid)
};

struct DistArrayMeta {
  DistArrayId id = kInvalidDistArrayId;
  std::string name;
  KeySpace key_space;
  i32 value_dim = 1;
  Density density = Density::kDense;

  PartitionScheme scheme = PartitionScheme::kUnpartitioned;
  // For kRange / kSpaceTime: the array dimension aligned with the loop's
  // space dimension; for kSpaceTime additionally the rotated dimension.
  int partition_dim = -1;

  i64 num_cells() const {
    return density == Density::kDense ? key_space.total() : -1;
  }
};

}  // namespace orion

#endif  // ORION_SRC_DSM_DIST_ARRAY_META_H_
