#include "src/dsm/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/common/serde.h"

namespace orion {

namespace {
constexpr u32 kMagic = 0x4f52434b;  // "ORCK"
// Version 3 adds a payload-size field and an FNV-1a checksum so torn or
// bit-flipped files are rejected with a Status instead of feeding garbage
// into the deserializer.
constexpr u32 kVersion = 3;

u64 Fnv1a(const u8* data, size_t n) {
  u64 h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

Status CheckpointWrite(const std::string& path, const CellStore& store) {
  ByteWriter payload;
  store.Serialize(&payload);
  const auto& body = payload.bytes();

  ByteWriter w;
  w.Put<u32>(kMagic);
  w.Put<u32>(kVersion);
  w.Put<u64>(static_cast<u64>(body.size()));
  w.Put<u64>(Fnv1a(body.data(), body.size()));
  w.PutBytes(body.data(), body.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    const auto& bytes = w.bytes();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return Status::IoError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

StatusOr<CellStore> CheckpointRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<u8> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    return Status::IoError("short read from " + path);
  }

  ByteReader r(bytes);
  const auto magic = r.TryGet<u32>();
  if (!magic.has_value() || *magic != kMagic) {
    return Status::InvalidArgument(path + " is not an Orion checkpoint");
  }
  const auto version = r.TryGet<u32>();
  if (!version.has_value() || *version != kVersion) {
    return Status::InvalidArgument(path + " has an unsupported checkpoint version");
  }
  const auto payload_size = r.TryGet<u64>();
  const auto checksum = r.TryGet<u64>();
  if (!payload_size.has_value() || !checksum.has_value() ||
      *payload_size != r.remaining()) {
    return Status::InvalidArgument(path + " is truncated");
  }
  const u8* body = bytes.data() + (bytes.size() - r.remaining());
  if (Fnv1a(body, static_cast<size_t>(*payload_size)) != *checksum) {
    return Status::InvalidArgument(path + " failed checksum verification");
  }
  auto store = CellStore::TryDeserialize(&r);
  if (!store.ok()) {
    return Status::InvalidArgument(path + ": " + store.status().message());
  }
  return store;
}

}  // namespace orion
