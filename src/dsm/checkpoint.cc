#include "src/dsm/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/common/serde.h"

namespace orion {

namespace {
constexpr u32 kMagic = 0x4f52434b;  // "ORCK"
constexpr u32 kVersion = 2;
}  // namespace

Status CheckpointWrite(const std::string& path, const CellStore& store) {
  ByteWriter w;
  w.Put<u32>(kMagic);
  w.Put<u32>(kVersion);
  store.Serialize(&w);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    const auto& bytes = w.bytes();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return Status::IoError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

StatusOr<CellStore> CheckpointRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<u8> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    return Status::IoError("short read from " + path);
  }
  ByteReader r(bytes);
  if (r.Get<u32>() != kMagic) {
    return Status::InvalidArgument(path + " is not an Orion checkpoint");
  }
  if (r.Get<u32>() != kVersion) {
    return Status::InvalidArgument(path + " has an unsupported checkpoint version");
  }
  return CellStore::Deserialize(&r);
}

}  // namespace orion
