#include "src/dsm/checkpoint.h"

#include <fstream>
#include <vector>

#include "src/common/durable_io.h"
#include "src/common/serde.h"

namespace orion {

namespace {
constexpr u32 kMagic = 0x4f52434b;  // "ORCK"
// Version 3 adds a payload-size field and an FNV-1a checksum so torn or
// bit-flipped files are rejected with a Status instead of feeding garbage
// into the deserializer.
constexpr u32 kVersion = 3;
}  // namespace

Status CheckpointWrite(const std::string& path, const CellStore& store) {
  ByteWriter payload;
  store.Serialize(&payload);
  const auto& body = payload.bytes();

  ByteWriter w;
  w.Put<u32>(kMagic);
  w.Put<u32>(kVersion);
  w.Put<u64>(static_cast<u64>(body.size()));
  w.Put<u64>(Fnv1a64(body.data(), body.size()));
  w.PutBytes(body.data(), body.size());

  // fsync the temp file before rename and the directory after, so a crash
  // right after "success" cannot lose the checkpoint's directory entry.
  const auto& bytes = w.bytes();
  return DurableWriteFile(path, bytes.data(), bytes.size());
}

StatusOr<CellStore> CheckpointRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<u8> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    return Status::IoError("short read from " + path);
  }

  ByteReader r(bytes);
  const auto magic = r.TryGet<u32>();
  if (!magic.has_value() || *magic != kMagic) {
    return Status::InvalidArgument(path + " is not an Orion checkpoint");
  }
  const auto version = r.TryGet<u32>();
  if (!version.has_value() || *version != kVersion) {
    return Status::InvalidArgument(path + " has an unsupported checkpoint version");
  }
  const auto payload_size = r.TryGet<u64>();
  const auto checksum = r.TryGet<u64>();
  if (!payload_size.has_value() || !checksum.has_value() ||
      *payload_size != r.remaining()) {
    return Status::InvalidArgument(path + " is truncated");
  }
  const u8* body = bytes.data() + (bytes.size() - r.remaining());
  if (Fnv1a64(body, static_cast<size_t>(*payload_size)) != *checksum) {
    return Status::InvalidArgument(path + " failed checksum verification");
  }
  auto store = CellStore::TryDeserialize(&r);
  if (!store.ok()) {
    return Status::InvalidArgument(path + ": " + store.status().message());
  }
  return store;
}

}  // namespace orion
