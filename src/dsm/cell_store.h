// Storage for the cells of one DistArray partition.
//
// Three layouts:
//  - kHashed: holds an arbitrary subset of cells (sparse arrays, server
//    shards, caches). Iteration order is insertion order, so executions are
//    deterministic.
//  - kDenseRange: holds the contiguous key range [lo, hi] of a dense array
//    (range partitions and rotated partitions of dense parameter arrays).
//    Constant-time, hash-free access — this is the hot path of kernels.
//  - kFullDense: holds every cell of the key space contiguously (small
//    replicated arrays, driver-resident master copies).
//
// All values are f32 spans of length value_dim.
#ifndef ORION_SRC_DSM_CELL_STORE_H_
#define ORION_SRC_DSM_CELL_STORE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/serde.h"
#include "src/common/simd.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

class CellStore {
 public:
  enum class Layout : u8 { kHashed, kFullDense, kDenseRange };

  CellStore() : CellStore(1, Layout::kHashed, 0) {}
  CellStore(i32 value_dim, Layout layout, i64 dense_total)
      : value_dim_(value_dim), layout_(layout) {
    ORION_CHECK(value_dim > 0);
    ORION_CHECK(layout != Layout::kDenseRange) << "use CellStore::DenseRange";
    if (layout_ == Layout::kFullDense) {
      ORION_CHECK(dense_total >= 0);
      range_lo_ = 0;
      range_hi_ = dense_total - 1;
      values_.assign(static_cast<size_t>(dense_total) * value_dim_, 0.0f);
    }
  }

  // A dense block over keys [lo, hi] (inclusive).
  static CellStore DenseRange(i32 value_dim, i64 lo, i64 hi) {
    ORION_CHECK(value_dim > 0);
    ORION_CHECK(hi >= lo - 1);  // hi == lo-1 encodes an empty range
    CellStore s;
    s.value_dim_ = value_dim;
    s.layout_ = Layout::kDenseRange;
    s.range_lo_ = lo;
    s.range_hi_ = hi;
    s.values_.assign(static_cast<size_t>(hi - lo + 1) * static_cast<size_t>(value_dim), 0.0f);
    return s;
  }

  i32 value_dim() const { return value_dim_; }
  Layout layout() const { return layout_; }
  bool IsDense() const { return layout_ != Layout::kHashed; }
  i64 range_lo() const { return range_lo_; }
  i64 range_hi() const { return range_hi_; }

  i64 NumCells() const {
    return IsDense() ? range_hi_ - range_lo_ + 1 : static_cast<i64>(keys_.size());
  }

  // Returns the cell value span, or nullptr if absent (hashed layout only).
  const f32* Get(i64 key) const {
    if (IsDense()) {
      ORION_CHECK(key >= range_lo_ && key <= range_hi_)
          << "key" << key << "outside dense range [" << range_lo_ << "," << range_hi_ << "]";
      return values_.data() + static_cast<size_t>(key - range_lo_) * value_dim_;
    }
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : values_.data() + it->second;
  }

  // Returns a mutable span, inserting a zero-initialized cell if absent.
  f32* GetOrCreate(i64 key) {
    if (IsDense()) {
      ORION_CHECK(key >= range_lo_ && key <= range_hi_)
          << "key" << key << "outside dense range [" << range_lo_ << "," << range_hi_ << "]";
      return values_.data() + static_cast<size_t>(key - range_lo_) * value_dim_;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      return values_.data() + it->second;
    }
    const size_t offset = values_.size();
    values_.resize(offset + static_cast<size_t>(value_dim_), 0.0f);
    index_.emplace(key, offset);
    keys_.push_back(key);
    return values_.data() + offset;
  }

  bool Contains(i64 key) const {
    if (IsDense()) {
      return key >= range_lo_ && key <= range_hi_;
    }
    return index_.find(key) != index_.end();
  }

  // Visits cells in a deterministic order (insertion order for hashed,
  // key order for dense). Templated so hot loops inline the body.
  template <typename F>
  void ForEachFast(F&& fn) {
    if (IsDense()) {
      for (i64 k = range_lo_; k <= range_hi_; ++k) {
        fn(k, values_.data() + static_cast<size_t>(k - range_lo_) * value_dim_);
      }
      return;
    }
    for (size_t i = 0; i < keys_.size(); ++i) {
      // Insertion order: cell i lives at offset i * value_dim_.
      fn(keys_[i], values_.data() + i * static_cast<size_t>(value_dim_));
    }
  }

  void ForEach(const std::function<void(i64 key, f32* value)>& fn) {
    if (IsDense()) {
      for (i64 k = range_lo_; k <= range_hi_; ++k) {
        fn(k, values_.data() + static_cast<size_t>(k - range_lo_) * value_dim_);
      }
      return;
    }
    for (size_t i = 0; i < keys_.size(); ++i) {
      fn(keys_[i], values_.data() + i * static_cast<size_t>(value_dim_));
    }
  }

  void ForEachConst(const std::function<void(i64 key, const f32* value)>& fn) const {
    const_cast<CellStore*>(this)->ForEach(
        [&fn](i64 key, f32* value) { fn(key, value); });
  }

  // Const counterpart of ForEachFast: templated so bulk merges and buffer
  // applies inline the body instead of bouncing through std::function.
  template <typename F>
  void ForEachConstFast(F&& fn) const {
    if (IsDense()) {
      for (i64 k = range_lo_; k <= range_hi_; ++k) {
        fn(k, values_.data() + static_cast<size_t>(k - range_lo_) * value_dim_);
      }
      return;
    }
    for (size_t i = 0; i < keys_.size(); ++i) {
      fn(keys_[i], values_.data() + i * static_cast<size_t>(value_dim_));
    }
  }

  // Pre-sizes the hashed containers for `additional_cells` upcoming inserts
  // (no-op for dense layouts, which are fully allocated up front).
  void Reserve(i64 additional_cells) {
    if (IsDense() || additional_cells <= 0) {
      return;
    }
    const size_t total = keys_.size() + static_cast<size_t>(additional_cells);
    index_.reserve(total);
    keys_.reserve(total);
    values_.reserve(total * static_cast<size_t>(value_dim_));
  }

  // Visits the `chunk`-th of `num_chunks` contiguous slices of the cell
  // sequence (hashed layout; used for bounded-delay sync rounds).
  void ForEachSlice(int chunk, int num_chunks, const std::function<void(i64 key, f32* value)>& fn) {
    ORION_CHECK(layout_ == Layout::kHashed);
    ORION_CHECK(chunk >= 0 && chunk < num_chunks);
    const size_t n = keys_.size();
    const size_t begin = n * static_cast<size_t>(chunk) / static_cast<size_t>(num_chunks);
    const size_t end = n * static_cast<size_t>(chunk + 1) / static_cast<size_t>(num_chunks);
    for (size_t i = begin; i < end; ++i) {
      fn(keys_[i], values_.data() + i * static_cast<size_t>(value_dim_));
    }
  }

  const std::vector<i64>& keys() const {
    ORION_CHECK(layout_ == Layout::kHashed);
    return keys_;
  }

  void Clear() {
    if (IsDense()) {
      values_.assign(values_.size(), 0.0f);
      return;
    }
    index_.clear();
    keys_.clear();
    values_.clear();
  }

  // ---- Serialization (fabric payloads & checkpoints) ----

  // Exact number of bytes Serialize() produces — the wire size the fabric
  // charges when the cells travel by reference instead of by value.
  size_t SerializedBytes() const {
    size_t n = sizeof(i32) + sizeof(u8);  // value_dim + layout
    if (IsDense()) {
      return n + 2 * sizeof(i64) + sizeof(u64) + values_.size() * sizeof(f32);
    }
    return n + sizeof(u64) + keys_.size() * sizeof(i64) +  // PutVec(keys_)
           sizeof(u64) + values_.size() * sizeof(f32);     // PutVec(values_)
  }

  void Serialize(ByteWriter* w) const {
    w->Reserve(SerializedBytes());
    w->Put<i32>(value_dim_);
    w->Put<u8>(static_cast<u8>(layout_));
    if (IsDense()) {
      w->Put<i64>(range_lo_);
      w->Put<i64>(range_hi_);
      w->PutVec(values_);
      return;
    }
    w->PutVec(keys_);
    w->PutVec(values_);
  }

  static CellStore Deserialize(ByteReader* r) {
    const i32 value_dim = r->Get<i32>();
    const Layout layout = static_cast<Layout>(r->Get<u8>());
    if (layout != Layout::kHashed) {
      const i64 lo = r->Get<i64>();
      const i64 hi = r->Get<i64>();
      CellStore s = DenseRange(value_dim, lo, hi);
      s.layout_ = layout;
      s.values_ = r->GetVec<f32>();
      ORION_CHECK(static_cast<i64>(s.values_.size()) == (hi - lo + 1) * value_dim);
      return s;
    }
    CellStore s(value_dim, Layout::kHashed, 0);
    s.keys_ = r->GetVec<i64>();
    s.values_ = r->GetVec<f32>();
    ORION_CHECK(s.values_.size() == s.keys_.size() * static_cast<size_t>(value_dim));
    s.index_.reserve(s.keys_.size());
    for (size_t i = 0; i < s.keys_.size(); ++i) {
      s.index_.emplace(s.keys_[i], i * static_cast<size_t>(value_dim));
    }
    return s;
  }

  // Bounds-checked deserialization for untrusted bytes (checkpoint files):
  // returns a descriptive Status instead of CHECK-aborting on truncated or
  // internally inconsistent input. The fabric keeps using Deserialize, whose
  // CHECKs guard against programming errors, not corrupt media.
  static StatusOr<CellStore> TryDeserialize(ByteReader* r) {
    const auto value_dim = r->TryGet<i32>();
    const auto layout_byte = r->TryGet<u8>();
    if (!value_dim.has_value() || !layout_byte.has_value()) {
      return Status::InvalidArgument("cell store header truncated");
    }
    if (*value_dim <= 0) {
      return Status::InvalidArgument("cell store has non-positive value_dim");
    }
    if (*layout_byte > static_cast<u8>(Layout::kDenseRange)) {
      return Status::InvalidArgument("cell store has unknown layout");
    }
    const Layout layout = static_cast<Layout>(*layout_byte);
    if (layout != Layout::kHashed) {
      const auto lo = r->TryGet<i64>();
      const auto hi = r->TryGet<i64>();
      if (!lo.has_value() || !hi.has_value() || *hi < *lo - 1) {
        return Status::InvalidArgument("cell store dense range truncated or inverted");
      }
      auto values = r->TryGetVec<f32>();
      if (!values.has_value()) {
        return Status::InvalidArgument("cell store dense values truncated");
      }
      if (static_cast<i64>(values->size()) != (*hi - *lo + 1) * *value_dim) {
        return Status::InvalidArgument("cell store dense value count mismatch");
      }
      CellStore s = DenseRange(*value_dim, *lo, *hi);
      s.layout_ = layout;
      s.values_ = std::move(*values);
      return s;
    }
    auto keys = r->TryGetVec<i64>();
    auto values = keys.has_value() ? r->TryGetVec<f32>() : std::nullopt;
    if (!keys.has_value() || !values.has_value()) {
      return Status::InvalidArgument("cell store cells truncated");
    }
    if (values->size() != keys->size() * static_cast<size_t>(*value_dim)) {
      return Status::InvalidArgument("cell store key/value count mismatch");
    }
    CellStore s(*value_dim, Layout::kHashed, 0);
    s.keys_ = std::move(*keys);
    s.values_ = std::move(*values);
    s.index_.reserve(s.keys_.size());
    for (size_t i = 0; i < s.keys_.size(); ++i) {
      s.index_.emplace(s.keys_[i], i * static_cast<size_t>(*value_dim));
    }
    return s;
  }

  // Adds every cell of `other` into this store (cell-wise +=). Used to merge
  // buffered updates with the default additive apply.
  void MergeAdd(const CellStore& other) {
    ORION_CHECK(other.value_dim_ == value_dim_);
    Reserve(other.NumCells());
    other.ForEachConstFast([this](i64 key, const f32* v) {
      simd::AddF32(GetOrCreate(key), v, static_cast<size_t>(value_dim_));
    });
  }

  size_t ApproxBytes() const {
    return values_.size() * sizeof(f32) + keys_.size() * (sizeof(i64) + 16);
  }

  // Contiguous backing span, in slot order (dense layouts: key order;
  // hashed: insertion order). Lets the versioned page store paginate and
  // collapse with bulk copies instead of per-cell lookups.
  const std::vector<f32>& raw_values() const { return values_; }
  f32* raw_values_data() { return values_.data(); }

 private:
  i32 value_dim_ = 1;
  Layout layout_ = Layout::kHashed;
  i64 range_lo_ = 0;   // dense layouts: first key
  i64 range_hi_ = -1;  // dense layouts: last key (inclusive)
  std::unordered_map<i64, size_t> index_;  // key -> offset into values_
  std::vector<i64> keys_;                  // insertion order
  std::vector<f32> values_;
};

}  // namespace orion

#endif  // ORION_SRC_DSM_CELL_STORE_H_
