// Maps N-dimensional DistArray indices to flat 64-bit keys and back.
//
// DistArray elements are identified by an N-tuple (paper Sec. 3.1); the
// runtime stores and ships them by a flat row-major key so that storage,
// serialization, and range partitioning operate on a single integer.
#ifndef ORION_SRC_DSM_KEY_SPACE_H_
#define ORION_SRC_DSM_KEY_SPACE_H_

#include <numeric>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

class KeySpace {
 public:
  KeySpace() = default;
  explicit KeySpace(std::vector<i64> dims) : dims_(std::move(dims)) {
    strides_.resize(dims_.size());
    i64 stride = 1;
    // Row-major with the *last* dimension contiguous.
    for (size_t d = dims_.size(); d-- > 0;) {
      ORION_CHECK(dims_[d] > 0) << "dimension" << d << "must be positive";
      strides_[d] = stride;
      stride *= dims_[d];
    }
    total_ = stride;
  }

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const std::vector<i64>& dims() const { return dims_; }
  i64 dim(int d) const { return dims_[static_cast<size_t>(d)]; }
  i64 total() const { return total_; }

  bool Contains(std::span<const i64> idx) const {
    if (idx.size() != dims_.size()) {
      return false;
    }
    for (size_t d = 0; d < dims_.size(); ++d) {
      if (idx[d] < 0 || idx[d] >= dims_[d]) {
        return false;
      }
    }
    return true;
  }

  i64 Encode(std::span<const i64> idx) const {
    ORION_CHECK(Contains(idx)) << "index outside key space";
    return EncodeUnchecked(idx);
  }

  // Hot-path encode without bounds validation (storage layers re-check
  // ownership anyway).
  i64 EncodeUnchecked(std::span<const i64> idx) const {
    i64 key = 0;
    for (size_t d = 0; d < dims_.size(); ++d) {
      key += idx[d] * strides_[d];
    }
    return key;
  }

  IndexVec Decode(i64 key) const {
    IndexVec idx(dims_.size());
    DecodeInto(key, idx);
    return idx;
  }

  // Allocation-free decode into a preallocated span (hot path; keys come
  // from trusted stores, so no bounds validation).
  void DecodeInto(i64 key, std::span<i64> idx) const {
    for (size_t d = 0; d < dims_.size(); ++d) {
      idx[d] = key / strides_[d];
      key %= strides_[d];
    }
  }

  const std::vector<i64>& strides() const { return strides_; }

  // Extracts one coordinate without materializing the whole index vector.
  i64 Coord(i64 key, int d) const {
    return (key / strides_[static_cast<size_t>(d)]) % dims_[static_cast<size_t>(d)];
  }

 private:
  std::vector<i64> dims_;
  std::vector<i64> strides_;
  i64 total_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_DSM_KEY_SPACE_H_
