#include "src/dsm/delta_log.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "src/common/buffer_pool.h"
#include "src/common/durable_io.h"
#include "src/common/simd.h"

namespace orion {
namespace {

constexpr u32 kBaseMagic = 0x4f524442;  // "ORDB"
constexpr u32 kWalMagic = 0x4f52444c;   // "ORDL"
// v2: delta array records carry their page geometry (page sizes are
// per-array runtime parameters now, not a compile-time constant).
constexpr u32 kLogVersion = 2;

std::string BasePath(const std::string& dir) { return dir + "/base.orib"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.oril"; }

// The checksum covers seq + size + payload, so a flipped bit in the header's
// ordering fields is caught, not just payload damage.
u64 FrameCrc(u64 seq, const u8* payload, size_t payload_size) {
  u8 hdr[2 * sizeof(u64)];
  const u64 size64 = static_cast<u64>(payload_size);
  std::memcpy(hdr, &seq, sizeof(u64));
  std::memcpy(hdr + sizeof(u64), &size64, sizeof(u64));
  return Fnv1a64(payload, payload_size, Fnv1a64(hdr, sizeof(hdr)));
}

constexpr size_t kFrameHeaderBytes = 2 * sizeof(u32) + 3 * sizeof(u64);

// Frames `payload` as {magic, version, seq, size, crc, payload}. The frame
// buffer is pool-backed and exactly reserved; callers release it after the
// durable write.
std::vector<u8> FrameRecord(u32 magic, u64 seq, const std::vector<u8>& payload) {
  ByteWriter w(kFrameHeaderBytes + payload.size());
  w.Put<u32>(magic);
  w.Put<u32>(kLogVersion);
  w.Put<u64>(seq);
  w.Put<u64>(static_cast<u64>(payload.size()));
  w.Put<u64>(FrameCrc(seq, payload.data(), payload.size()));
  w.PutBytes(payload.data(), payload.size());
  return w.Take();
}

// Validates one frame starting at `r`'s position. Returns the seq and the
// payload span on success; nullopt on a torn or corrupt frame (magic,
// version, size or checksum mismatch).
struct Frame {
  u64 seq = 0;
  const u8* payload = nullptr;
  size_t payload_size = 0;
};
std::optional<Frame> ReadFrame(const std::vector<u8>& bytes, size_t* pos, u32 magic) {
  if (bytes.size() - *pos < kFrameHeaderBytes) {
    return std::nullopt;
  }
  ByteReader r(bytes.data() + *pos, bytes.size() - *pos);
  if (r.Get<u32>() != magic || r.Get<u32>() != kLogVersion) {
    return std::nullopt;
  }
  Frame f;
  f.seq = r.Get<u64>();
  f.payload_size = static_cast<size_t>(r.Get<u64>());
  const u64 crc = r.Get<u64>();
  if (f.payload_size > r.remaining()) {
    return std::nullopt;  // torn tail
  }
  f.payload = bytes.data() + *pos + kFrameHeaderBytes;
  if (FrameCrc(f.seq, f.payload, f.payload_size) != crc) {
    return std::nullopt;
  }
  *pos += kFrameHeaderBytes + f.payload_size;
  return f;
}

void EncodeFullArray(const ArrayCheckpointRef& a, ByteWriter* w) {
  w->PutString(a.name);
  w->Put<u8>(1);  // full
  a.store->SerializeTo(w);
}

void EncodeDeltaArray(const ArrayCheckpointRef& a, ByteWriter* w, u64* pages_out) {
  const VersionedCellStore& s = *a.store;
  w->PutString(a.name);
  w->Put<u8>(0);  // delta
  w->Put<u8>(static_cast<u8>(s.layout()));
  w->Put<i32>(s.value_dim());
  w->Put<i64>(s.range_lo());
  w->Put<i64>(s.range_hi());
  w->Put<i64>(s.NumCells());
  w->Put<i64>(s.page_cells());
  std::vector<i64> new_keys;
  if (s.layout() == CellStore::Layout::kHashed) {
    const auto& keys = s.paged_keys();
    new_keys.assign(keys.begin() + static_cast<size_t>(s.checkpoint_cells()), keys.end());
  }
  w->PutVec(new_keys);
  const std::vector<u32> dirty = s.DirtyPages();
  w->Put<u64>(static_cast<u64>(dirty.size()));
  const size_t page_floats = s.PageFloats();
  w->Reserve(dirty.size() * (sizeof(u32) + sizeof(u64) + page_floats * sizeof(f32)));
  for (const u32 pi : dirty) {
    w->Put<u32>(pi);
    // Full fixed-size pages (zero-padded tail), written straight from the
    // page storage — no scratch copy; the reader clamps the overlay to
    // num_cells * vdim.
    w->Put<u64>(static_cast<u64>(page_floats));  // PutVec-compatible prefix
    w->PutBytes(s.PageData(pi), page_floats * sizeof(f32));
  }
  *pages_out += dirty.size();
}

StatusOr<std::map<std::string, CellStore>> DecodeFullArrays(ByteReader* r, u64 count) {
  std::map<std::string, CellStore> out;
  for (u64 i = 0; i < count; ++i) {
    std::string name = r->GetString();
    auto store = CellStore::TryDeserialize(r);
    if (!store.ok()) {
      return Status::InvalidArgument("array " + name + ": " + store.status().message());
    }
    out.emplace(std::move(name), std::move(store).value());
  }
  return out;
}

}  // namespace

void MasterRecord::Encode(ByteWriter* w) const {
  w->Put<i64>(next_pass);
  w->Put<u64>(config_seed);
  w->Put<u64>(fault_seed);
  w->Put<i32>(num_workers);
  w->PutVec(live_ranks);
  w->PutVec(loop_ids);
  w->PutVec(accumulators);
}

MasterRecord MasterRecord::Decode(ByteReader* r) {
  MasterRecord m;
  m.next_pass = r->Get<i64>();
  m.config_seed = r->Get<u64>();
  m.fault_seed = r->Get<u64>();
  m.num_workers = r->Get<i32>();
  m.live_ranks = r->GetVec<i32>();
  m.loop_ids = r->GetVec<i32>();
  m.accumulators = r->GetVec<f64>();
  return m;
}

// ---------------------------------------------------------------------------
// Reader

StatusOr<DeltaLogReader> DeltaLogReader::Open(const std::string& dir) {
  DeltaLogReader out;

  auto base_bytes = ReadFileBytes(BasePath(dir));
  if (!base_bytes.ok()) {
    return Status::NotFound("delta log " + dir + " has no base image: " +
                            base_bytes.status().message());
  }
  size_t pos = 0;
  auto base = ReadFrame(*base_bytes, &pos, kBaseMagic);
  if (!base.has_value() || pos != base_bytes->size()) {
    return Status::InvalidArgument("delta log " + dir + " base image is corrupt");
  }
  {
    ByteReader r(base->payload, base->payload_size);
    out.base_seq_ = base->seq;
    out.base_master_ = MasterRecord::Decode(&r);
    const u64 count = r.Get<u64>();
    auto arrays = DecodeFullArrays(&r, count);
    if (!arrays.ok()) {
      return Status::InvalidArgument("delta log " + dir + " base: " +
                                     arrays.status().message());
    }
    out.base_arrays_ = std::move(arrays).value();
  }
  out.points_.push_back({out.base_seq_, out.base_master_.next_pass});

  auto wal_bytes = ReadFileBytes(WalPath(dir));
  if (!wal_bytes.ok()) {
    if (wal_bytes.status().code() != StatusCode::kNotFound) {
      return wal_bytes.status();
    }
    return out;  // base only — fresh log or just-compacted
  }
  pos = 0;
  while (pos < wal_bytes->size()) {
    const size_t frame_start = pos;
    auto f = ReadFrame(*wal_bytes, &pos, kWalMagic);
    if (!f.has_value()) {
      out.torn_tail_ = true;
      out.valid_wal_bytes_ = frame_start;
      return out;
    }
    if (f->seq <= out.base_seq_) {
      // Survivor from the crash window between base rename and WAL
      // truncation — already folded into the base.
      out.valid_wal_bytes_ = pos;
      continue;
    }
    Record rec;
    rec.seq = f->seq;
    ByteReader r(f->payload, f->payload_size);
    rec.master = MasterRecord::Decode(&r);
    const u64 count = r.Get<u64>();
    for (u64 i = 0; i < count; ++i) {
      ArrayDelta d;
      d.name = r.GetString();
      d.full = r.Get<u8>() != 0;
      if (d.full) {
        auto store = CellStore::TryDeserialize(&r);
        if (!store.ok()) {
          return Status::InvalidArgument("delta log " + dir + " record " +
                                         std::to_string(f->seq) + ": " +
                                         store.status().message());
        }
        d.full_store = std::move(store).value();
      } else {
        d.layout = r.Get<u8>();
        d.vdim = r.Get<i32>();
        d.lo = r.Get<i64>();
        d.hi = r.Get<i64>();
        d.num_cells = r.Get<i64>();
        d.page_cells = r.Get<i64>();
        d.new_keys = r.GetVec<i64>();
        const u64 npages = r.Get<u64>();
        d.pages.reserve(static_cast<size_t>(npages));
        for (u64 p = 0; p < npages; ++p) {
          const u32 pi = r.Get<u32>();
          d.pages.emplace_back(pi, r.GetVec<f32>());
        }
      }
      rec.arrays.push_back(std::move(d));
    }
    out.points_.push_back({rec.seq, rec.master.next_pass});
    out.records_.push_back(std::move(rec));
    out.valid_wal_bytes_ = pos;
  }
  return out;
}

StatusOr<DeltaLogReader::State> DeltaLogReader::StateAt(u64 seq) const {
  if (seq < base_seq_) {
    return Status::NotFound("checkpoint seq " + std::to_string(seq) +
                            " predates the base image (compacted away)");
  }
  const bool known =
      seq == base_seq_ ||
      std::any_of(records_.begin(), records_.end(),
                  [seq](const Record& r) { return r.seq == seq; });
  if (!known) {
    return Status::NotFound("no checkpoint with seq " + std::to_string(seq));
  }

  State s;
  s.master = base_master_;
  s.arrays = base_arrays_;
  for (const Record& rec : records_) {
    if (rec.seq > seq) {
      break;
    }
    s.master = rec.master;
    for (const ArrayDelta& d : rec.arrays) {
      if (d.full) {
        s.arrays[d.name] = d.full_store;
        continue;
      }
      auto it = s.arrays.find(d.name);
      if (it == s.arrays.end()) {
        return Status::InvalidArgument("delta for unknown array " + d.name);
      }
      CellStore& cells = it->second;
      if (cells.value_dim() != d.vdim ||
          static_cast<u8>(cells.layout()) != d.layout) {
        return Status::InvalidArgument("delta layout mismatch for array " + d.name);
      }
      if (d.layout == static_cast<u8>(CellStore::Layout::kHashed)) {
        for (const i64 key : d.new_keys) {
          cells.GetOrCreate(key);
        }
      }
      if (cells.NumCells() != d.num_cells) {
        return Status::InvalidArgument("delta cell count mismatch for array " + d.name);
      }
      if (d.page_cells <= 0) {
        return Status::InvalidArgument("delta page size invalid for array " + d.name);
      }
      const size_t page_floats = static_cast<size_t>(d.page_cells) * d.vdim;
      const size_t total = static_cast<size_t>(d.num_cells) * d.vdim;
      f32* dst = cells.raw_values_data();
      for (const auto& [pi, page] : d.pages) {
        const size_t off = static_cast<size_t>(pi) * page_floats;
        if (off >= total || page.size() < page_floats) {
          return Status::InvalidArgument("delta page out of range for array " + d.name);
        }
        const size_t n = std::min(page_floats, total - off);
        simd::CopyF32(dst + off, page.data(), n);
      }
    }
  }
  return s;
}

StatusOr<DeltaLogReader::State> DeltaLogReader::StateAtPass(i64 pass) const {
  for (const RestorePoint& p : points_) {
    if (p.pass == pass) {
      return StateAt(p.seq);
    }
  }
  return Status::NotFound("no checkpoint at pass " + std::to_string(pass));
}

StatusOr<DeltaLogReader::State> DeltaLogReader::Latest() const {
  return StateAt(points_.back().seq);
}

// ---------------------------------------------------------------------------
// Writer

StatusOr<std::unique_ptr<DeltaLogWriter>> DeltaLogWriter::Open(
    std::string dir, DeltaLogOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create log directory " + dir + ": " + ec.message());
  }
  auto w = std::unique_ptr<DeltaLogWriter>(new DeltaLogWriter(std::move(dir), options));

  auto existing = DeltaLogReader::Open(w->dir_);
  if (existing.ok()) {
    const DeltaLogReader& log = existing.value();
    w->seq_ = log.points_.back().seq;
    w->records_since_base_ = static_cast<int>(log.records_.size());
    if (log.torn_tail()) {
      // Drop the torn tail so the next append starts at a record boundary.
      const Status s = DurableTruncateFile(WalPath(w->dir_), log.valid_wal_bytes());
      if (!s.ok()) {
        return s;
      }
    }
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();  // corrupt base: refuse to append over it
  }
  return w;
}

Status DeltaLogWriter::WriteBase(const MasterRecord& master,
                                 const std::vector<ArrayCheckpointRef>& arrays,
                                 u64* bytes) {
  ByteWriter payload;
  master.Encode(&payload);
  payload.Put<u64>(static_cast<u64>(arrays.size()));
  for (const ArrayCheckpointRef& a : arrays) {
    payload.PutString(a.name);
    a.store->SerializeTo(&payload);
  }
  std::vector<u8> frame = FrameRecord(kBaseMagic, seq_, payload.bytes());
  *bytes += frame.size();
  Status s = DurableWriteFile(BasePath(dir_), frame.data(), frame.size());
  // Recycle both scratch buffers whether or not the write stuck; the next
  // checkpoint's encode acquires them straight back from the pool.
  BufferPool::Release(payload.Take());
  BufferPool::Release(std::move(frame));
  if (!s.ok()) {
    return s;
  }
  // The WAL prefix is now folded into the base; drop it. A crash before the
  // truncate is benign — readers skip records with seq <= base seq.
  std::error_code ec;
  if (std::filesystem::exists(WalPath(dir_), ec)) {
    s = DurableTruncateFile(WalPath(dir_), 0);
    if (!s.ok()) {
      return s;
    }
  }
  records_since_base_ = 0;
  return Status::Ok();
}

StatusOr<DeltaAppendStats> DeltaLogWriter::AppendCheckpoint(
    const MasterRecord& master, const std::vector<ArrayCheckpointRef>& arrays) {
  DeltaAppendStats stats;
  ++seq_;

  const bool have_base = seq_ > 1 || records_since_base_ > 0;
  const bool compact = options_.compact_every > 0 &&
                       records_since_base_ + 1 > options_.compact_every;
  if (!have_base || compact) {
    const Status s = WriteBase(master, arrays, &stats.bytes_appended);
    if (!s.ok()) {
      --seq_;
      return s;
    }
    stats.wrote_base = true;
    stats.compacted = have_base;
    stats.full_arrays = static_cast<int>(arrays.size());
  } else {
    ByteWriter payload;
    master.Encode(&payload);
    payload.Put<u64>(static_cast<u64>(arrays.size()));
    for (const ArrayCheckpointRef& a : arrays) {
      if (a.store->delta_tracking_valid()) {
        EncodeDeltaArray(a, &payload, &stats.pages_deltad);
      } else {
        EncodeFullArray(a, &payload);
        ++stats.full_arrays;
      }
    }
    std::vector<u8> frame = FrameRecord(kWalMagic, seq_, payload.bytes());
    stats.bytes_appended = frame.size();
    auto end = DurableAppendFile(WalPath(dir_), frame.data(), frame.size());
    // Steady-state appends stop allocating: payload and frame go back to the
    // pool and the next record's ByteWriters acquire them again.
    BufferPool::Release(payload.Take());
    BufferPool::Release(std::move(frame));
    if (!end.ok()) {
      --seq_;
      return end.status();
    }
    ++records_since_base_;
  }

  // Only after the record is durable: arm/reset dirty tracking so the next
  // checkpoint captures exactly the writes from this point on.
  for (const ArrayCheckpointRef& a : arrays) {
    a.store->MarkCheckpointed();
  }
  return stats;
}

}  // namespace orion
