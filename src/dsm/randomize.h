// Deterministic random bijections used by the DistArray `randomize`
// operation (paper Sec. 4.3): remapping a skewed dimension through a random
// permutation yields a near-uniform distribution so equal-width partitions
// balance, complementing histogram-based splitting.
#ifndef ORION_SRC_DSM_RANDOMIZE_H_
#define ORION_SRC_DSM_RANDOMIZE_H_

#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

class RandomPermutation {
 public:
  RandomPermutation(i64 n, u64 seed) : forward_(static_cast<size_t>(n)) {
    ORION_CHECK(n > 0);
    std::iota(forward_.begin(), forward_.end(), 0);
    Rng rng(seed);
    for (size_t i = forward_.size(); i-- > 1;) {
      const size_t j = static_cast<size_t>(rng.NextBounded(i + 1));
      std::swap(forward_[i], forward_[j]);
    }
    inverse_.resize(forward_.size());
    for (size_t i = 0; i < forward_.size(); ++i) {
      inverse_[static_cast<size_t>(forward_[i])] = static_cast<i64>(i);
    }
  }

  i64 size() const { return static_cast<i64>(forward_.size()); }
  i64 Map(i64 x) const { return forward_[static_cast<size_t>(x)]; }
  i64 Inverse(i64 y) const { return inverse_[static_cast<size_t>(y)]; }

 private:
  std::vector<i64> forward_;
  std::vector<i64> inverse_;
};

}  // namespace orion

#endif  // ORION_SRC_DSM_RANDOMIZE_H_
