// DistArray checkpointing (paper Sec. 4.3 "Fault tolerance"): a driver can
// eagerly write a DistArray's cells to disk and restore them later.
#ifndef ORION_SRC_DSM_CHECKPOINT_H_
#define ORION_SRC_DSM_CHECKPOINT_H_

#include <string>

#include "src/common/status.h"
#include "src/dsm/cell_store.h"

namespace orion {

// Writes `store` to `path` (atomic via rename of a temp file).
Status CheckpointWrite(const std::string& path, const CellStore& store);

// Reads a CellStore previously written by CheckpointWrite.
StatusOr<CellStore> CheckpointRead(const std::string& path);

}  // namespace orion

#endif  // ORION_SRC_DSM_CHECKPOINT_H_
