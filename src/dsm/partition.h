// Partitioning descriptors: range splits per dimension and space/time grids.
//
// Range splits are derived from per-dimension histograms of the actual data
// so skewed iteration spaces still produce balanced partitions (paper
// Sec. 4.3). A SpaceTimeGrid describes the 2D-parallel layout: the space
// dimension is owned by a worker, the time dimension rotates.
#ifndef ORION_SRC_DSM_PARTITION_H_
#define ORION_SRC_DSM_PARTITION_H_

#include <algorithm>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

// Splits a coordinate range into contiguous parts. uppers_[p] is the largest
// coordinate belonging to part p (the last part's upper bound is implicit).
class RangeSplits {
 public:
  RangeSplits() = default;
  RangeSplits(int num_parts, std::vector<i64> uppers)
      : num_parts_(num_parts), uppers_(std::move(uppers)) {
    ORION_CHECK(static_cast<int>(uppers_.size()) == num_parts_ - 1);
    ORION_CHECK(std::is_sorted(uppers_.begin(), uppers_.end()));
  }

  // Builds equal-mass splits from a histogram of coordinate occupancy.
  static RangeSplits FromHistogram(const DimHistogram& hist, int num_parts) {
    return RangeSplits(num_parts, hist.EqualMassSplits(num_parts));
  }

  // Builds equal-width splits over [0, extent).
  static RangeSplits EqualWidth(i64 extent, int num_parts) {
    ORION_CHECK(extent > 0 && num_parts > 0);
    std::vector<i64> uppers;
    uppers.reserve(static_cast<size_t>(num_parts) - 1);
    for (int p = 1; p < num_parts; ++p) {
      uppers.push_back(extent * p / num_parts - 1);
    }
    return RangeSplits(num_parts, std::move(uppers));
  }

  int num_parts() const { return num_parts_; }

  int PartOf(i64 coord) const {
    // First part whose upper bound >= coord.
    auto it = std::lower_bound(uppers_.begin(), uppers_.end(), coord);
    return static_cast<int>(it - uppers_.begin());
  }

  const std::vector<i64>& uppers() const { return uppers_; }

  void Serialize(ByteWriter* w) const {
    w->Put<i32>(num_parts_);
    w->PutVec(uppers_);
  }
  static RangeSplits Deserialize(ByteReader* r) {
    const i32 parts = r->Get<i32>();
    auto uppers = r->GetVec<i64>();
    return RangeSplits(parts, std::move(uppers));
  }

 private:
  int num_parts_ = 1;
  std::vector<i64> uppers_;
};

// 2D (space x time) iteration-space grid for 2D-parallel schedules.
struct SpaceTimeGrid {
  int space_dim = -1;  // iteration-space dimension index
  int time_dim = -1;
  RangeSplits space_splits;  // num parts == num workers
  RangeSplits time_splits;   // num parts == num workers * pipeline_depth

  int SpacePartOf(i64 coord) const { return space_splits.PartOf(coord); }
  int TimePartOf(i64 coord) const { return time_splits.PartOf(coord); }

  void Serialize(ByteWriter* w) const {
    w->Put<i32>(space_dim);
    w->Put<i32>(time_dim);
    space_splits.Serialize(w);
    time_splits.Serialize(w);
  }
  static SpaceTimeGrid Deserialize(ByteReader* r) {
    SpaceTimeGrid g;
    g.space_dim = r->Get<i32>();
    g.time_dim = r->Get<i32>();
    g.space_splits = RangeSplits::Deserialize(r);
    g.time_splits = RangeSplits::Deserialize(r);
    return g;
  }
};

}  // namespace orion

#endif  // ORION_SRC_DSM_PARTITION_H_
