// In-process message fabric simulating a distributed cluster interconnect.
//
// Each logical process (master rank -1 plus workers 0..N-1) owns an inbox.
// Links are in-order and reliable. All payloads are serialized bytes, so
// nothing structured is shared between endpoints: the worker model is
// share-nothing even though workers are threads.
//
// The fabric meters traffic into fixed-width time buckets, which reproduces
// the paper's Fig. 12 (bandwidth usage over time).
#ifndef ORION_SRC_NET_FABRIC_H_
#define ORION_SRC_NET_FABRIC_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/blocking_queue.h"
#include "src/common/timer.h"
#include "src/common/types.h"
#include "src/net/cost_model.h"
#include "src/net/fault_injector.h"
#include "src/net/message.h"

namespace orion {

struct FabricStats {
  u64 messages_sent = 0;
  u64 bytes_sent = 0;
  u64 zero_copy_bytes = 0;  // subset of bytes_sent that skipped Encode/Decode
  double virtual_net_seconds = 0.0;  // accumulated modeled cost
  // Bytes sent per time bucket since fabric creation (wall clock).
  std::vector<u64> bytes_per_bucket;
  double bucket_seconds = 0.0;
};

class Fabric {
 public:
  // num_workers worker endpoints plus one master endpoint (kMasterRank).
  explicit Fabric(int num_workers, NetCostModel cost_model = NetCostModel::Unlimited(),
                  double stats_bucket_seconds = 1.0);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int num_workers() const { return num_workers_; }
  const NetCostModel& cost_model() const { return cost_model_; }

  // Enables the zero-copy in-process fast path: senders may attach structured
  // payloads (Message::zc) instead of serialized bytes. Set before any
  // traffic flows; senders consult it to decide how to pack messages.
  void SetZeroCopy(bool enabled) { zero_copy_ = enabled; }
  bool zero_copy() const { return zero_copy_; }

  // Sends msg to msg.to (may be kMasterRank). Thread-safe. Subject to the
  // installed fault injector, if any.
  void Send(Message msg);

  // Like Send, but bypasses the fault injector. Used for supervision traffic
  // whose volume is timing-dependent (heartbeats, retransmits) and for the
  // recovery protocol itself — keeping those out of the injector makes the
  // injected-fault sequence a pure function of the plan seed.
  void SendReliable(Message msg);

  // Blocking receive on the given endpoint. Returns nullopt after Shutdown().
  std::optional<Message> Recv(WorkerId rank);

  // Blocking receive with a timeout; nullopt on timeout or after Shutdown().
  std::optional<Message> RecvWithTimeout(WorkerId rank, double seconds);

  // Non-blocking receive.
  std::optional<Message> TryRecv(WorkerId rank);

  // True once Shutdown() has closed the endpoint's inbox (lets receivers
  // using RecvWithTimeout tell "timed out" from "shut down").
  bool Closed(WorkerId rank) { return InboxFor(rank).closed(); }

  // Installs a fault injector consulted by every Send. Call before any
  // traffic flows; pass nullptr to remove.
  void SetInjector(std::shared_ptr<FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  FaultInjector* injector() const { return injector_.get(); }

  // Closes all inboxes; receivers drain then observe nullopt.
  void Shutdown();

  FabricStats Stats() const;
  // Resets counters (used between benchmark phases).
  void ResetStats();

  // Current inbox depth for `rank` (monitor probe; takes the inbox lock
  // briefly, reads nothing else).
  size_t InboxDepth(WorkerId rank) { return InboxFor(rank).Size(); }

  double ElapsedSeconds() const { return clock_.ElapsedSeconds(); }

 private:
  BlockingQueue<Message>& InboxFor(WorkerId rank);
  // Meters the message (stats + modeled cost, optionally charged as real
  // sender-side time) and returns the modeled cost in seconds. Shared by the
  // plain and fault-injected send paths so the original is charged exactly
  // once either way.
  double Meter(const Message& msg);
  void MeterAndDeliver(Message msg);

  std::shared_ptr<FaultInjector> injector_;
  int num_workers_;
  NetCostModel cost_model_;
  double bucket_seconds_;
  bool zero_copy_ = false;
  Stopwatch clock_;

  std::vector<std::unique_ptr<BlockingQueue<Message>>> inboxes_;  // [0]=master, [1+i]=worker i

  mutable std::mutex stats_mutex_;
  u64 messages_sent_ = 0;
  u64 bytes_sent_ = 0;
  u64 zero_copy_bytes_ = 0;
  double virtual_net_seconds_ = 0.0;
  std::vector<u64> bytes_per_bucket_;
};

}  // namespace orion

#endif  // ORION_SRC_NET_FABRIC_H_
