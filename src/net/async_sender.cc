#include "src/net/async_sender.h"

#include <utility>

#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/common/trace.h"

namespace orion {

AsyncSender::AsyncSender(Fabric* fabric, int num_lanes, i32 trace_rank)
    : fabric_(fabric), trace_rank_(trace_rank) {
  ORION_CHECK(num_lanes > 0);
  lanes_.reserve(static_cast<size_t>(num_lanes));
  for (int i = 0; i < num_lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
    Lane* lane = lanes_.back().get();
    lane->thread = std::thread([this, lane] { Loop(lane); });
  }
}

AsyncSender::~AsyncSender() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lock(lane->mu);
      lane->stop = true;
    }
    lane->work_cv.notify_one();
  }
  for (auto& lane : lanes_) {
    lane->thread.join();
  }
}

AsyncSender::Lane& AsyncSender::LaneFor(WorkerId to) {
  // kMasterRank is -1, so +1 keeps the index non-negative; with one lane per
  // worker, distinct workers land on distinct lanes.
  const size_t idx = static_cast<size_t>(to + 1) % lanes_.size();
  return *lanes_[idx];
}

void AsyncSender::Enqueue(Message msg) {
  Lane& lane = LaneFor(msg.to);
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.queue.push_back(std::move(msg));
  }
  lane.work_cv.notify_one();
}

void AsyncSender::Flush() {
  for (auto& lane : lanes_) {
    std::unique_lock<std::mutex> lock(lane->mu);
    lane->idle_cv.wait(lock, [&] { return lane->queue.empty() && !lane->sending; });
  }
}

double AsyncSender::busy_seconds() const {
  double total = 0.0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    total += lane->busy_seconds;
  }
  return total;
}

void AsyncSender::Loop(Lane* lane) {
  trace::SetThreadRank(trace_rank_);
  std::unique_lock<std::mutex> lock(lane->mu);
  while (true) {
    lane->work_cv.wait(lock, [&] { return !lane->queue.empty() || lane->stop; });
    if (lane->queue.empty()) {
      return;  // stop set and queue drained: remaining work was flushed
    }
    Message msg = std::move(lane->queue.front());
    lane->queue.pop_front();
    lane->sending = true;
    lock.unlock();
    Stopwatch sw;
    {
      ORION_TRACE_SPAN(kSender, "lane_send");
      fabric_->Send(std::move(msg));
    }
    const double elapsed = sw.ElapsedSeconds();
    lock.lock();
    lane->busy_seconds += elapsed;
    lane->sending = false;
    if (lane->queue.empty()) {
      lane->idle_cv.notify_all();
    }
  }
}

}  // namespace orion
