#include "src/net/async_sender.h"

#include <utility>

#include "src/common/timer.h"

namespace orion {

AsyncSender::AsyncSender(Fabric* fabric)
    : fabric_(fabric), thread_([this] { Loop(); }) {}

AsyncSender::~AsyncSender() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_one();
  thread_.join();
}

void AsyncSender::Enqueue(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  work_cv_.notify_one();
}

void AsyncSender::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !sending_; });
}

double AsyncSender::busy_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_seconds_;
}

void AsyncSender::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
    if (queue_.empty()) {
      return;  // stop_ set and queue drained: remaining work was flushed
    }
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    sending_ = true;
    lock.unlock();
    Stopwatch sw;
    fabric_->Send(std::move(msg));
    const double elapsed = sw.ElapsedSeconds();
    lock.lock();
    busy_seconds_ += elapsed;
    sending_ = false;
    if (queue_.empty()) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace orion
