// Network cost model for the simulated fabric.
//
// The paper's cluster uses 40Gbps Ethernet; we model per-message cost as
// latency + bytes/bandwidth and (optionally) charge it as real sender-side
// delay so time-based experiments reflect communication volume. Cost can
// also be accounted on a virtual clock only (no sleeping) for fast runs.
#ifndef ORION_SRC_NET_COST_MODEL_H_
#define ORION_SRC_NET_COST_MODEL_H_

#include "src/common/types.h"

namespace orion {

struct NetCostModel {
  // Per-message fixed latency, microseconds.
  double latency_us = 0.0;
  // Link bandwidth in bits per second; 0 disables the bandwidth term.
  double bandwidth_bps = 0.0;
  // If true, Send() sleeps for the computed cost (models marshalling +
  // serialization occupancy on the sender); if false, cost is only recorded
  // on the virtual clock.
  bool charge_real_time = false;

  static NetCostModel Unlimited() { return NetCostModel{}; }

  static NetCostModel Ethernet40G(bool charge_real_time = false) {
    NetCostModel m;
    m.latency_us = 20.0;
    m.bandwidth_bps = 40e9;
    m.charge_real_time = charge_real_time;
    return m;
  }

  double CostSeconds(size_t bytes) const {
    double s = latency_us * 1e-6;
    if (bandwidth_bps > 0.0) {
      s += static_cast<double>(bytes) * 8.0 / bandwidth_bps;
    }
    return s;
  }
};

}  // namespace orion

#endif  // ORION_SRC_NET_COST_MODEL_H_
