// AsyncSender: a per-endpoint communication thread that ships messages off
// the compute thread, overlapping the sender-side network cost (serialization
// and the NetCostModel's real-time charge) with computation.
//
// Ordering contract: messages enqueued on one AsyncSender leave in FIFO
// order through Fabric::Send, so per-link delivery order — and therefore the
// fault injector's per-link faultable sequence numbers — is exactly what a
// synchronous sender would have produced. Callers that must establish a
// cross-thread ordering point (barrier arrival, PassDone, retire ack) call
// Flush() first: after Flush returns, every enqueued message has been pushed
// into its destination inbox.
#ifndef ORION_SRC_NET_ASYNC_SENDER_H_
#define ORION_SRC_NET_ASYNC_SENDER_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "src/net/fabric.h"
#include "src/net/message.h"

namespace orion {

class AsyncSender {
 public:
  explicit AsyncSender(Fabric* fabric);
  ~AsyncSender();

  AsyncSender(const AsyncSender&) = delete;
  AsyncSender& operator=(const AsyncSender&) = delete;

  // Hands the message to the comm thread. Never blocks on the network.
  void Enqueue(Message msg);

  // Blocks until every previously enqueued message has been delivered (its
  // Fabric::Send returned). No-op when the queue is already drained.
  void Flush();

  // Wall time the comm thread has spent inside Fabric::Send — the
  // communication cost hidden from the compute thread.
  double busy_seconds() const;

 private:
  void Loop();

  Fabric* fabric_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals the comm thread
  std::condition_variable idle_cv_;  // signals Flush / destructor
  std::deque<Message> queue_;
  bool sending_ = false;  // a message is out of the queue but not delivered
  bool stop_ = false;
  double busy_seconds_ = 0.0;
  std::thread thread_;
};

}  // namespace orion

#endif  // ORION_SRC_NET_ASYNC_SENDER_H_
