// AsyncSender: communication threads that ship messages off the compute
// thread, overlapping the sender-side network cost (serialization and the
// NetCostModel's real-time charge) with computation.
//
// Lanes. With num_lanes == 1 (the executor configuration) a single comm
// thread drains a single FIFO queue, so *all* sends leave in enqueue order.
// With num_lanes > 1 (the master's reply fan-out) messages are routed to a
// lane by destination rank: each destination still observes FIFO order, but
// sends to different destinations proceed concurrently — under a
// real-time-charged cost model the per-message latencies overlap instead of
// serializing (~N x latency for an N-worker reply fan-out).
//
// Ordering contract: messages enqueued toward one destination leave in FIFO
// order through Fabric::Send, so per-link delivery order — and therefore the
// fault injector's per-link faultable sequence numbers — is exactly what a
// synchronous sender would have produced. Callers that must establish a
// cross-thread ordering point (barrier arrival, PassDone, retire ack) call
// Flush() first: after Flush returns, every enqueued message has been pushed
// into its destination inbox.
#ifndef ORION_SRC_NET_ASYNC_SENDER_H_
#define ORION_SRC_NET_ASYNC_SENDER_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/fabric.h"
#include "src/net/message.h"

namespace orion {

class AsyncSender {
 public:
  // `trace_rank` tags the lane threads for the span tracer (kMasterRank for
  // master-side senders, the owning executor's rank for worker senders).
  explicit AsyncSender(Fabric* fabric, int num_lanes = 1, i32 trace_rank = kMasterRank);
  ~AsyncSender();

  AsyncSender(const AsyncSender&) = delete;
  AsyncSender& operator=(const AsyncSender&) = delete;

  // Hands the message to its destination's comm thread. Never blocks on the
  // network.
  void Enqueue(Message msg);

  // Blocks until every previously enqueued message, on every lane, has been
  // delivered (its Fabric::Send returned). No-op when already drained.
  void Flush();

  // Wall time the comm threads have spent inside Fabric::Send — the
  // communication cost hidden from the calling thread. Summed across lanes.
  double busy_seconds() const;

  int num_lanes() const { return static_cast<int>(lanes_.size()); }

  // Messages queued or mid-send across all lanes (monitor probe; takes each
  // lane mutex briefly).
  size_t QueueDepth() const {
    size_t depth = 0;
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lock(lane->mu);
      depth += lane->queue.size() + (lane->sending ? 1 : 0);
    }
    return depth;
  }

 private:
  struct Lane {
    std::mutex mu;
    std::condition_variable work_cv;  // signals the comm thread
    std::condition_variable idle_cv;  // signals Flush / destructor
    std::deque<Message> queue;
    bool sending = false;  // a message is out of the queue but not delivered
    bool stop = false;
    double busy_seconds = 0.0;
    std::thread thread;
  };

  Lane& LaneFor(WorkerId to);
  void Loop(Lane* lane);

  Fabric* fabric_;
  i32 trace_rank_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace orion

#endif  // ORION_SRC_NET_ASYNC_SENDER_H_
