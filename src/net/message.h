// Message types exchanged over the simulated fabric.
#ifndef ORION_SRC_NET_MESSAGE_H_
#define ORION_SRC_NET_MESSAGE_H_

#include <memory>
#include <vector>

#include "src/common/types.h"

namespace orion {

// Optional zero-copy payload: a shared-ownership structured value carried
// in place of serialized bytes for large in-process data-plane messages
// (kPartitionData / kParamReply / kParamUpdate). The fabric stays
// layout-agnostic; it only needs the exact encoded size so the NetCostModel
// charges the same wire bytes the serialized path would have.
struct ZeroCopyPayload {
  virtual ~ZeroCopyPayload() = default;
  // Exact number of bytes Encode() would have produced for this value.
  virtual size_t EncodedSize() const = 0;
};

// Message kinds cover both the Orion runtime protocol and the baseline
// parameter-server protocol; the fabric itself is kind-agnostic.
enum class MsgKind : u16 {
  kControl = 0,        // master <-> worker control plane
  kPartitionData = 1,  // DistArray partition rotation (2D schedules)
  kTimeStepToken = 2,  // predecessor -> successor "you may start" signal
  kParamRequest = 3,   // server mode: read request (bulk prefetch list)
  kParamReply = 4,     // server mode: values
  kParamUpdate = 5,    // server mode: buffered writes flush
  kAccumulator = 6,    // accumulator aggregation
  kBarrier = 7,        // distributed barrier protocol
  kShutdown = 8,
};

struct Message {
  // Approximate header cost of a real transport, charged per wire message.
  static constexpr size_t kHeaderBytes = 32;

  WorkerId from = 0;
  WorkerId to = 0;
  MsgKind kind = MsgKind::kControl;
  u32 tag = 0;  // schedule-defined disambiguator (e.g. time step number)
  std::vector<u8> payload;
  // When set, the structured payload travels by reference and `payload`
  // stays empty; receivers take it via protocol-level helpers.
  std::shared_ptr<ZeroCopyPayload> zc;

  // Logical-message metering: a coalesced message standing in for
  // `meter_messages` separate wire messages (the batched kPerKey prefetch
  // storm) is charged that many per-message latencies, counted as that many
  // messages in the stats, and billed `meter_extra_bytes` extra framing
  // bytes — so modeled cost is identical to the uncoalesced exchange.
  u32 meter_messages = 1;
  u64 meter_extra_bytes = 0;

  size_t WireSize() const {
    return kHeaderBytes + (zc != nullptr ? zc->EncodedSize() : payload.size());
  }
};

}  // namespace orion

#endif  // ORION_SRC_NET_MESSAGE_H_
