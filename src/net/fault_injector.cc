#include "src/net/fault_injector.h"

#include <algorithm>
#include <cstring>

#include "src/common/flight_recorder.h"

namespace orion {

namespace {

// splitmix64 finalizer: a full-avalanche 64-bit mixer.
u64 Mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

u64 LinkKey(WorkerId from, WorkerId to) {
  // Ranks start at kMasterRank == -1; shift into non-negative space.
  return (static_cast<u64>(static_cast<u32>(from + 1)) << 32) |
         static_cast<u32>(to + 1);
}

}  // namespace

bool FaultInjector::Faultable(const Message& msg) const {
  if (msg.kind == MsgKind::kBarrier) {
    return plan_.fault_barrier_msgs;
  }
  if (msg.kind != MsgKind::kControl || msg.payload.size() < sizeof(u16)) {
    return false;
  }
  u16 op;
  std::memcpy(&op, msg.payload.data(), sizeof(op));
  return std::find(plan_.faultable_control_ops.begin(), plan_.faultable_control_ops.end(),
                   op) != plan_.faultable_control_ops.end();
}

double FaultInjector::U01(WorkerId from, WorkerId to, u64 seq) const {
  const u64 h = Mix64(plan_.seed ^ Mix64(LinkKey(from, to)) ^ Mix64(seq));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<Message> FaultInjector::Process(Message msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  const WorkerId dest = msg.to;

  // Each send toward a destination ages the holdbacks that *preceded* it (the
  // message being processed must not age its own holdback); expired ones are
  // released after the triggering message below — that is the reorder.
  std::vector<Message> released;
  auto it = holdbacks_.find(dest);
  if (it != holdbacks_.end()) {
    auto& held = it->second;
    for (size_t i = 0; i < held.size();) {
      if (--held[i].remaining <= 0) {
        ++stats_.released;
        fr::Record(fr::EventKind::kFaultRelease, dest, static_cast<i64>(held[i].link_seq));
        events_.push_back(
            {FaultEvent::Kind::kRelease, held[i].msg.from, dest, held[i].link_seq});
        released.push_back(std::move(held[i].msg));
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (held.empty()) {
      holdbacks_.erase(it);
    }
  }

  if (plan_.HasMessageFaults() && Faultable(msg)) {
    const u64 seq = link_seq_[LinkKey(msg.from, dest)]++;
    const double u = U01(msg.from, dest, seq);
    if (u < plan_.drop_prob) {
      ++stats_.dropped;
      events_.push_back({FaultEvent::Kind::kDrop, msg.from, dest, seq});
      fr::Record(fr::EventKind::kFaultDrop, msg.from, dest, static_cast<i64>(seq));
    } else if (u < plan_.drop_prob + plan_.dup_prob) {
      ++stats_.duplicated;
      events_.push_back({FaultEvent::Kind::kDuplicate, msg.from, dest, seq});
      fr::Record(fr::EventKind::kFaultDup, msg.from, dest, static_cast<i64>(seq));
      out.push_back(msg);
      out.push_back(std::move(msg));
    } else if (u < plan_.drop_prob + plan_.dup_prob + plan_.delay_prob) {
      ++stats_.delayed;
      events_.push_back({FaultEvent::Kind::kDelay, msg.from, dest, seq});
      fr::Record(fr::EventKind::kFaultDelay, msg.from, dest, static_cast<i64>(seq));
      holdbacks_[dest].push_back(
          Held{std::move(msg), std::max(1, plan_.delay_release_after), seq});
    } else {
      out.push_back(std::move(msg));
    }
  } else {
    out.push_back(std::move(msg));
  }

  for (Message& m : released) {
    out.push_back(std::move(m));
  }
  return out;
}

bool FaultInjector::ShouldCrash(int rank, i32 pass, i32 step) {
  if (plan_.crashes.empty()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  crash_fired_.resize(plan_.crashes.size(), false);
  for (size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashPoint& c = plan_.crashes[i];
    if (!crash_fired_[i] && c.rank == rank && c.pass == pass && c.step == step) {
      crash_fired_[i] = true;
      ++stats_.crashes_triggered;
      events_.push_back({FaultEvent::Kind::kCrash, rank, rank, 0, pass, step});
      fr::Record(fr::EventKind::kCrashPoint, rank, pass, step);
      return true;
    }
  }
  return false;
}

void FaultInjector::ClearHoldbacks() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [dest, held] : holdbacks_) {
    stats_.holdbacks_cleared += held.size();
  }
  holdbacks_.clear();
}

InjectorStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

}  // namespace orion
