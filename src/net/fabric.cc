#include "src/net/fabric.h"

#include <chrono>
#include <thread>

#include "src/common/status.h"
#include "src/common/trace.h"

namespace orion {

namespace {

// Static span-name tables keyed by message kind: the tracer stores the
// pointer, so names must be string literals.
const char* SendSpanName(MsgKind k) {
  switch (k) {
    case MsgKind::kControl:
      return "send:control";
    case MsgKind::kPartitionData:
      return "send:partition_data";
    case MsgKind::kTimeStepToken:
      return "send:time_step_token";
    case MsgKind::kParamRequest:
      return "send:param_request";
    case MsgKind::kParamReply:
      return "send:param_reply";
    case MsgKind::kParamUpdate:
      return "send:param_update";
    case MsgKind::kAccumulator:
      return "send:accumulator";
    case MsgKind::kBarrier:
      return "send:barrier";
    case MsgKind::kShutdown:
      return "send:shutdown";
  }
  return "send:unknown";
}

const char* RecvSpanName(MsgKind k) {
  switch (k) {
    case MsgKind::kControl:
      return "recv:control";
    case MsgKind::kPartitionData:
      return "recv:partition_data";
    case MsgKind::kTimeStepToken:
      return "recv:time_step_token";
    case MsgKind::kParamRequest:
      return "recv:param_request";
    case MsgKind::kParamReply:
      return "recv:param_reply";
    case MsgKind::kParamUpdate:
      return "recv:param_update";
    case MsgKind::kAccumulator:
      return "recv:accumulator";
    case MsgKind::kBarrier:
      return "recv:barrier";
    case MsgKind::kShutdown:
      return "recv:shutdown";
  }
  return "recv:unknown";
}

}  // namespace

Fabric::Fabric(int num_workers, NetCostModel cost_model, double stats_bucket_seconds)
    : num_workers_(num_workers),
      cost_model_(cost_model),
      bucket_seconds_(stats_bucket_seconds) {
  ORION_CHECK(num_workers > 0);
  ORION_CHECK(stats_bucket_seconds > 0.0);
  inboxes_.reserve(static_cast<size_t>(num_workers) + 1);
  for (int i = 0; i < num_workers + 1; ++i) {
    inboxes_.push_back(std::make_unique<BlockingQueue<Message>>());
  }
}

BlockingQueue<Message>& Fabric::InboxFor(WorkerId rank) {
  ORION_CHECK(rank >= kMasterRank && rank < num_workers_) << "bad rank" << rank;
  return *inboxes_[static_cast<size_t>(rank + 1)];
}

double Fabric::Meter(const Message& msg) {
  const size_t wire = msg.WireSize() + msg.meter_extra_bytes;
  const u32 logical = msg.meter_messages > 0 ? msg.meter_messages : 1;
  // One bandwidth charge over the total bytes plus one fixed latency per
  // logical message the coalesced send stands in for.
  const double cost =
      cost_model_.CostSeconds(wire) + (logical - 1) * cost_model_.latency_us * 1e-6;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    messages_sent_ += logical;
    bytes_sent_ += wire;
    if (msg.zc != nullptr) {
      zero_copy_bytes_ += wire;
    }
    virtual_net_seconds_ += cost;
    const auto bucket = static_cast<size_t>(clock_.ElapsedSeconds() / bucket_seconds_);
    if (bytes_per_bucket_.size() <= bucket) {
      bytes_per_bucket_.resize(bucket + 1, 0);
    }
    bytes_per_bucket_[bucket] += wire;
  }
  if (cost_model_.charge_real_time && cost > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(cost));
  }
  return cost;
}

void Fabric::MeterAndDeliver(Message msg) {
  Meter(msg);
  InboxFor(msg.to).Push(std::move(msg));
}

void Fabric::Send(Message msg) {
  ORION_TRACE_SPAN(kFabric, SendSpanName(msg.kind));
  if (injector_ != nullptr && injector_->plan().HasMessageFaults()) {
    // Metering happens at the sender (the cost was paid even if the message
    // is then lost in transit), so the original is charged exactly once and
    // injector-produced duplicates/releases are delivered for free.
    Meter(msg);
    for (Message& m : injector_->Process(std::move(msg))) {
      InboxFor(m.to).Push(std::move(m));
    }
    return;
  }
  MeterAndDeliver(std::move(msg));
}

void Fabric::SendReliable(Message msg) {
  ORION_TRACE_SPAN(kFabric, SendSpanName(msg.kind));
  MeterAndDeliver(std::move(msg));
}

std::optional<Message> Fabric::Recv(WorkerId rank) {
  if (!trace::Enabled()) {
    return InboxFor(rank).Pop();
  }
  const i64 start_ns = trace::NowNs();
  auto msg = InboxFor(rank).Pop();
  if (msg.has_value()) {
    // The span covers the blocking wait; poll misses emit nothing.
    trace::Emit(trace::Category::kFabric, RecvSpanName(msg->kind), start_ns, trace::NowNs());
  }
  return msg;
}

std::optional<Message> Fabric::RecvWithTimeout(WorkerId rank, double seconds) {
  if (!trace::Enabled()) {
    return InboxFor(rank).PopWithTimeout(std::chrono::duration<double>(seconds));
  }
  const i64 start_ns = trace::NowNs();
  auto msg = InboxFor(rank).PopWithTimeout(std::chrono::duration<double>(seconds));
  if (msg.has_value()) {
    trace::Emit(trace::Category::kFabric, RecvSpanName(msg->kind), start_ns, trace::NowNs());
  }
  return msg;
}

std::optional<Message> Fabric::TryRecv(WorkerId rank) { return InboxFor(rank).TryPop(); }

void Fabric::Shutdown() {
  for (auto& inbox : inboxes_) {
    inbox->Close();
  }
}

FabricStats Fabric::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  FabricStats s;
  s.messages_sent = messages_sent_;
  s.bytes_sent = bytes_sent_;
  s.zero_copy_bytes = zero_copy_bytes_;
  s.virtual_net_seconds = virtual_net_seconds_;
  s.bytes_per_bucket = bytes_per_bucket_;
  s.bucket_seconds = bucket_seconds_;
  return s;
}

void Fabric::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  messages_sent_ = 0;
  bytes_sent_ = 0;
  zero_copy_bytes_ = 0;
  virtual_net_seconds_ = 0.0;
  bytes_per_bucket_.clear();
}

}  // namespace orion
