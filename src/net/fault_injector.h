// Deterministic fault injection for the simulated fabric.
//
// A FaultPlan describes which faults to inject — per-link message drop,
// duplication, and delay (reordering), plus scheduled worker crashes — and a
// FaultInjector executes it. Every decision is a pure hash of
// (seed, from, to, per-link sequence number), so the same plan produces the
// same fault sequence on every run. Per-link sequence numbers are
// deterministic because each link has a single sender thread and only
// schedule-driven traffic is eligible: timing-driven traffic (heartbeats,
// supervision retransmits) must be sent via Fabric::SendReliable, which
// bypasses the injector entirely.
#ifndef ORION_SRC_NET_FAULT_INJECTOR_H_
#define ORION_SRC_NET_FAULT_INJECTOR_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/net/message.h"

namespace orion {

// One scheduled worker crash: the executor thread exits when worker `rank`
// reaches `pass` (step == -1: at pass start; step >= 0: at that wavefront
// step boundary). One-shot — a replayed pass after recovery does not
// re-fire, and a retired worker's slot is never crashed again.
struct CrashPoint {
  int rank = 0;
  i32 pass = 0;
  i32 step = -1;
};

struct FaultPlan {
  u64 seed = 1;
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  // A delayed message is held back and released (i.e. reordered) after this
  // many subsequent sends toward the same destination.
  int delay_release_after = 3;
  // ControlOp values (see src/runtime/protocol.h) eligible for injection when
  // the message kind is kControl. Defaults to kStartPass=1 / kPassDone=2 —
  // the supervised, retransmittable ops. Everything else on the control
  // plane (gather, retire, shutdown) stays reliable by design: the fault
  // model covers the per-pass protocol, not the recovery protocol itself.
  std::vector<u16> faultable_control_ops = {1, 2};
  // Whether kBarrier messages (wavefront step barriers) are eligible.
  bool fault_barrier_msgs = true;
  std::vector<CrashPoint> crashes;

  // Artificial compute straggle: worker `straggle_rank` sleeps
  // `straggle_seconds` of wall clock at every step boundary of passes >=
  // `straggle_from_pass`. Pure timing skew — it perturbs no message
  // sequence and therefore no injected-fault decision — used to exercise
  // the straggler detector.
  int straggle_rank = -1;
  double straggle_seconds = 0.0;
  i32 straggle_from_pass = 0;

  bool HasMessageFaults() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
  }
  bool HasStraggle() const { return straggle_rank >= 0 && straggle_seconds > 0.0; }
  bool Active() const {
    return HasMessageFaults() || !crashes.empty() || HasStraggle();
  }
};

struct InjectorStats {
  u64 dropped = 0;
  u64 duplicated = 0;
  u64 delayed = 0;
  u64 released = 0;
  u64 holdbacks_cleared = 0;
  u64 crashes_triggered = 0;
};

// One injected fault, recorded in order. The log is the determinism witness:
// two runs with the same plan must produce identical logs.
struct FaultEvent {
  enum class Kind : u8 { kDrop, kDuplicate, kDelay, kRelease, kCrash };
  Kind kind = Kind::kDrop;
  WorkerId from = 0;
  WorkerId to = 0;
  u64 link_seq = 0;  // per-link faultable-message sequence number
  i32 pass = -1;     // kCrash only
  i32 step = -1;     // kCrash only

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return a.kind == b.kind && a.from == b.from && a.to == b.to &&
           a.link_seq == b.link_seq && a.pass == b.pass && a.step == b.step;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  // Applies the plan to one outbound message and returns the messages to
  // deliver now, in order: zero (dropped or held back), one, or more (a
  // duplicate and/or holdbacks whose release countdown expired). Thread-safe.
  std::vector<Message> Process(Message msg);

  // True exactly once for each matching CrashPoint. Thread-safe.
  bool ShouldCrash(int rank, i32 pass, i32 step);

  // Seconds worker `rank` should stall at a step boundary of `pass` under
  // the plan's straggle clause (0 when none). Pure function of the plan.
  double StraggleSeconds(int rank, i32 pass) const {
    return (plan_.HasStraggle() && rank == plan_.straggle_rank &&
            pass >= plan_.straggle_from_pass)
               ? plan_.straggle_seconds
               : 0.0;
  }

  // Discards all held-back messages (recovery start: anything the injector is
  // still sitting on predates the reset and must not be replayed into the
  // new configuration).
  void ClearHoldbacks();

  InjectorStats stats() const;
  std::vector<FaultEvent> events() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  struct Held {
    Message msg;
    int remaining;  // sends to the same destination until release
    u64 link_seq;
  };

  bool Faultable(const Message& msg) const;
  double U01(WorkerId from, WorkerId to, u64 seq) const;

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::unordered_map<u64, u64> link_seq_;            // link key -> next seq
  std::unordered_map<WorkerId, std::vector<Held>> holdbacks_;  // by destination
  std::vector<bool> crash_fired_;  // parallel to plan_.crashes
  InjectorStats stats_;
  std::vector<FaultEvent> events_;
};

}  // namespace orion

#endif  // ORION_SRC_NET_FAULT_INJECTOR_H_
