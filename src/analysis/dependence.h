// Dependence-vector computation: the paper's Algorithm 2.
//
// For each DistArray referenced by the loop, every unique pair of references
// (including a reference paired with itself, since the same static reference
// executes in many iterations) is tested:
//   - read/read pairs carry no dependence;
//   - write/write pairs are skipped when the loop is unordered (different
//     write orders yield different but equally serializable results);
//   - buffered writes are exempt (paper Sec. 3.3);
// and surviving pairs produce at most one dependence vector, refined
// per-subscript-position from the all-infinity vector, or proven
// independent when two constant subscripts can never match.
#ifndef ORION_SRC_ANALYSIS_DEPENDENCE_H_
#define ORION_SRC_ANALYSIS_DEPENDENCE_H_

#include <vector>

#include "src/analysis/dep_vector.h"
#include "src/ir/loop_spec.h"

namespace orion {

// Computes the deduplicated set of loop-carried dependence vectors for
// `spec`. Vectors are lexicographically positive; an all-zero (intra-
// iteration) dependence is dropped.
std::vector<DepVec> ComputeDependenceVectors(const LoopSpec& spec);

// Computes the *raw* vector contributed by one pair of references (exposed
// for unit-testing Alg. 2's inner loop); directions are canonicalized later
// by CanonicalRepresentatives. Returns true and fills `out` if the pair
// yields a (possibly loop-carried) dependence.
bool DependenceForPair(const ArrayAccess& ref_a, const ArrayAccess& ref_b, int iter_dims,
                       bool unordered_loop, DepVec* out);

}  // namespace orion

#endif  // ORION_SRC_ANALYSIS_DEPENDENCE_H_
