// Dependence vectors (paper Sec. 4.2).
//
// A dependence vector d for an n-deep loop nest states that iteration
// p' = p + d depends on iteration p. Entries are either a concrete integer
// distance or an infinity: kAny (any integer), kPosInf (any positive),
// kNegInf (any negative). Vectors in a dependence set are kept
// lexicographically positive; CorrectLexPositive() canonicalizes.
#ifndef ORION_SRC_ANALYSIS_DEP_VECTOR_H_
#define ORION_SRC_ANALYSIS_DEP_VECTOR_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

struct DepEntry {
  enum class Kind : u8 { kValue, kAny, kPosInf, kNegInf };

  Kind kind = Kind::kAny;
  i64 value = 0;  // meaningful when kind == kValue

  static DepEntry Value(i64 v) { return {Kind::kValue, v}; }
  static DepEntry Any() { return {Kind::kAny, 0}; }
  static DepEntry PosInf() { return {Kind::kPosInf, 0}; }
  static DepEntry NegInf() { return {Kind::kNegInf, 0}; }

  bool IsZero() const { return kind == Kind::kValue && value == 0; }
  bool IsFiniteOrPosInf() const { return kind == Kind::kValue || kind == Kind::kPosInf; }

  DepEntry Negated() const {
    switch (kind) {
      case Kind::kValue:
        return Value(-value);
      case Kind::kAny:
        return Any();
      case Kind::kPosInf:
        return NegInf();
      case Kind::kNegInf:
        return PosInf();
    }
    return Any();
  }

  std::string ToString() const;

  friend bool operator==(const DepEntry& a, const DepEntry& b) {
    return a.kind == b.kind && (a.kind != Kind::kValue || a.value == b.value);
  }
};

class DepVec {
 public:
  DepVec() = default;
  explicit DepVec(int n) : entries_(static_cast<size_t>(n), DepEntry::Any()) {}
  explicit DepVec(std::vector<DepEntry> entries) : entries_(std::move(entries)) {}

  int size() const { return static_cast<int>(entries_.size()); }
  const DepEntry& operator[](int i) const { return entries_[static_cast<size_t>(i)]; }
  DepEntry& operator[](int i) { return entries_[static_cast<size_t>(i)]; }
  const std::vector<DepEntry>& entries() const { return entries_; }

  bool AllZero() const {
    for (const auto& e : entries_) {
      if (!e.IsZero()) {
        return false;
      }
    }
    return true;
  }

  DepVec Negated() const {
    std::vector<DepEntry> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      out.push_back(e.Negated());
    }
    return DepVec(std::move(out));
  }

  // Canonicalizes to a lexicographically positive representative:
  //  - leading zeros are kept,
  //  - a negative first-significant entry flips the whole vector,
  //  - a kAny first-significant entry becomes kPosInf (both directions of
  //    the raw dependence collapse onto the positive representative).
  // Returns false if the vector is all-zero (not loop-carried; drop it).
  bool CorrectLexPositive();

  std::string ToString() const;

  friend bool operator==(const DepVec& a, const DepVec& b) { return a.entries_ == b.entries_; }

 private:
  std::vector<DepEntry> entries_;
};

// Decomposes a *raw* dependence vector (entries are values or kAny, both
// directions implied) into the complete set of lexicographically positive
// representatives. A leading kAny covers three cases — positive, zero, and
// negative leading distance — so it expands to (kPosInf, rest...),
// (kPosInf, -rest...) and, recursively, the representatives of
// (0, rest...). All-zero (intra-iteration) vectors produce nothing.
std::vector<DepVec> CanonicalRepresentatives(const DepVec& raw);

}  // namespace orion

#endif  // ORION_SRC_ANALYSIS_DEP_VECTOR_H_
