#include "src/analysis/dep_vector.h"

#include <algorithm>

#include <sstream>

namespace orion {

std::string DepEntry::ToString() const {
  switch (kind) {
    case Kind::kValue:
      return std::to_string(value);
    case Kind::kAny:
      return "inf";
    case Kind::kPosInf:
      return "+inf";
    case Kind::kNegInf:
      return "-inf";
  }
  return "?";
}

bool DepVec::CorrectLexPositive() {
  for (auto& e : entries_) {
    switch (e.kind) {
      case DepEntry::Kind::kValue:
        if (e.value == 0) {
          continue;  // keep scanning
        }
        if (e.value < 0) {
          *this = Negated();
        }
        return true;
      case DepEntry::Kind::kAny:
        e = DepEntry::PosInf();
        return true;
      case DepEntry::Kind::kPosInf:
        return true;
      case DepEntry::Kind::kNegInf:
        *this = Negated();
        return true;
    }
  }
  return false;  // all zero
}

std::vector<DepVec> CanonicalRepresentatives(const DepVec& raw) {
  std::vector<DepVec> out;
  // Scan for the first significant entry.
  for (int i = 0; i < raw.size(); ++i) {
    const DepEntry& e = raw[i];
    if (e.IsZero()) {
      continue;
    }
    switch (e.kind) {
      case DepEntry::Kind::kValue: {
        DepVec v = raw;
        if (e.value < 0) {
          v = v.Negated();
        }
        out.push_back(std::move(v));
        return out;
      }
      case DepEntry::Kind::kPosInf: {
        out.push_back(raw);
        return out;
      }
      case DepEntry::Kind::kNegInf: {
        out.push_back(raw.Negated());
        return out;
      }
      case DepEntry::Kind::kAny: {
        // Positive-leading representative...
        DepVec pos = raw;
        pos[i] = DepEntry::PosInf();
        out.push_back(pos);
        // ...its mirror (the raw negative-leading direction)...
        DepVec neg = raw.Negated();
        neg[i] = DepEntry::PosInf();
        if (!(neg == pos)) {
          out.push_back(std::move(neg));
        }
        // ...and the zero-leading case, recursively.
        DepVec zero = raw;
        zero[i] = DepEntry::Value(0);
        for (auto& rep : CanonicalRepresentatives(zero)) {
          if (std::find(out.begin(), out.end(), rep) == out.end()) {
            out.push_back(std::move(rep));
          }
        }
        return out;
      }
    }
  }
  return out;  // all-zero: not loop-carried
}

std::string DepVec::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << entries_[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace orion
