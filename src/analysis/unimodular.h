// Unimodular loop transformations (paper Sec. 4.3, after Wolf & Lam).
//
// When neither 1D nor 2D parallelization applies directly, and every
// dependence-vector entry is a number or +inf, Orion searches for a
// unimodular transformation T (|det T| == 1, combining interchange,
// reversal and skewing) such that every transformed dependence vector has
// its first component > 0 — i.e. all dependences are carried by the
// outermost transformed loop. The inner transformed dimension is then fully
// parallel within one outer step, enabling 2D (wavefront) execution.
//
// Only 2-deep loop nests are transformed (Orion's iteration spaces are
// DistArrays; 2D spaces are the common case). Deeper nests fall back.
#ifndef ORION_SRC_ANALYSIS_UNIMODULAR_H_
#define ORION_SRC_ANALYSIS_UNIMODULAR_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/dep_vector.h"
#include "src/common/types.h"

namespace orion {

struct Unimodular2x2 {
  // Row-major: T = [[a, b], [c, d]].
  i64 a = 1, b = 0, c = 0, d = 1;

  i64 Det() const { return a * d - b * c; }
  bool IsIdentity() const { return a == 1 && b == 0 && c == 0 && d == 1; }

  // Applies T to an index pair.
  std::pair<i64, i64> Apply(i64 p1, i64 p2) const { return {a * p1 + b * p2, c * p1 + d * p2}; }

  std::string ToString() const;

  friend bool operator==(const Unimodular2x2& x, const Unimodular2x2& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c && x.d == y.d;
  }
};

// Computes T * d with infinity-aware arithmetic.
DepVec TransformDepVec(const Unimodular2x2& t, const DepVec& d);

// True if the vector's first component is strictly positive
// (kValue > 0 or kPosInf).
bool FirstComponentPositive(const DepVec& d);

// Searches small-coefficient unimodular matrices for one that carries all
// dependences on the outer loop. Requires every entry of every vector to be
// a number or +inf (else returns nullopt). Prefers the identity, then
// minimal coefficient magnitude.
std::optional<Unimodular2x2> FindOuterCarryingTransform(const std::vector<DepVec>& deps);

// Exact integer inverse of a unimodular matrix.
Unimodular2x2 InverseOf(const Unimodular2x2& t);

}  // namespace orion

#endif  // ORION_SRC_ANALYSIS_UNIMODULAR_H_
