#include "src/analysis/dependence.h"

#include <algorithm>
#include <map>

#include "src/common/status.h"

namespace orion {

bool DependenceForPair(const ArrayAccess& ref_a, const ArrayAccess& ref_b, int iter_dims,
                       bool unordered_loop, DepVec* out) {
  ORION_CHECK(ref_a.array == ref_b.array);
  ORION_CHECK(ref_a.subscripts.size() == ref_b.subscripts.size())
      << "mismatched arity on array" << ref_a.array_name;

  // Buffered writes are exempt from dependence analysis.
  const bool a_writes = ref_a.is_write && !ref_a.buffered;
  const bool b_writes = ref_b.is_write && !ref_b.buffered;

  // Skip if both references are reads...
  if (!a_writes && !b_writes) {
    return false;
  }
  // ...or if the loop is unordered and both references are writes.
  if (unordered_loop && a_writes && b_writes) {
    return false;
  }

  DepVec dvec(iter_dims);  // initialized to all-infinity (kAny)
  for (size_t dim = 0; dim < ref_a.subscripts.size(); ++dim) {
    const Subscript& sub_a = ref_a.subscripts[dim];
    const Subscript& sub_b = ref_b.subscripts[dim];

    if (sub_a.kind == SubscriptKind::kLoopIndex && sub_b.kind == SubscriptKind::kLoopIndex) {
      if (sub_a.loop_dim == sub_b.loop_dim) {
        const i64 dist = sub_a.constant - sub_b.constant;
        DepEntry& slot = dvec[sub_a.loop_dim];
        if (slot.kind == DepEntry::Kind::kValue && slot.value != dist) {
          // Two positions demand contradictory distances on the same loop
          // index: the references can never touch the same cell.
          return false;
        }
        slot = DepEntry::Value(dist);
      }
      // Different loop index variables at the same position: any pair of
      // coordinate values could coincide; no refinement possible.
      continue;
    }

    if (sub_a.kind == SubscriptKind::kConstant && sub_b.kind == SubscriptKind::kConstant) {
      if (sub_a.constant != sub_b.constant) {
        // The subscripts will never match: independent.
        return false;
      }
      continue;
    }

    // Constant vs loop-index: the loop index is pinned to one coordinate
    // value when they match; this constrains which iterations conflict but
    // not their distance, so no refinement. Range / runtime subscripts may
    // take any value: no refinement either.
  }

  // Drop intra-iteration-only (all-zero) vectors here; directional
  // canonicalization happens in ComputeDependenceVectors.
  if (dvec.AllZero()) {
    return false;
  }
  *out = std::move(dvec);
  return true;
}

std::vector<DepVec> ComputeDependenceVectors(const LoopSpec& spec) {
  // Group references by DistArray.
  std::map<DistArrayId, std::vector<const ArrayAccess*>> by_array;
  for (const auto& a : spec.accesses) {
    by_array[a.array].push_back(&a);
  }

  const bool unordered = !spec.ordered;
  std::vector<DepVec> dvecs;
  for (const auto& [array, refs] : by_array) {
    for (size_t i = 0; i < refs.size(); ++i) {
      for (size_t j = i; j < refs.size(); ++j) {
        DepVec raw;
        if (!DependenceForPair(*refs[i], *refs[j], spec.num_dims(), unordered, &raw)) {
          continue;
        }
        for (auto& d : CanonicalRepresentatives(raw)) {
          if (std::find(dvecs.begin(), dvecs.end(), d) == dvecs.end()) {
            dvecs.push_back(std::move(d));
          }
        }
      }
    }
  }
  return dvecs;
}

}  // namespace orion
