#include "src/analysis/plan.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "src/analysis/dependence.h"
#include "src/common/status.h"

namespace orion {

const char* ParallelFormName(ParallelForm f) {
  switch (f) {
    case ParallelForm::k1D:
      return "1D";
    case ParallelForm::k2D:
      return "2D";
    case ParallelForm::k2DUnimodular:
      return "2D-unimodular";
    case ParallelForm::kSerial:
      return "serial";
  }
  return "?";
}

std::vector<int> Find1DCandidates(const std::vector<DepVec>& deps, int num_dims) {
  std::vector<int> out;
  for (int d = 0; d < num_dims; ++d) {
    bool all_zero = true;
    for (const auto& v : deps) {
      if (!v[d].IsZero()) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<std::pair<int, int>> Find2DCandidates(const std::vector<DepVec>& deps, int num_dims) {
  std::vector<std::pair<int, int>> out;
  for (int i = 0; i < num_dims; ++i) {
    for (int j = i + 1; j < num_dims; ++j) {
      bool ok = true;
      for (const auto& v : deps) {
        // Iterations differing in both dims must be independent: every
        // dependence must be killed by dim i or dim j.
        if (!v[i].IsZero() && !v[j].IsZero()) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out.push_back({i, j});
      }
    }
  }
  return out;
}

namespace {

// Set of arrays with at least one unbuffered write.
std::set<DistArrayId> UnbufferedWriteArrays(const LoopSpec& spec) {
  std::set<DistArrayId> out;
  for (const auto& a : spec.accesses) {
    if (a.is_write && !a.buffered) {
      out.insert(a.array);
    }
  }
  return out;
}

std::set<DistArrayId> AccessedArrays(const LoopSpec& spec) {
  std::set<DistArrayId> out;
  for (const auto& a : spec.accesses) {
    out.insert(a.array);
  }
  return out;
}

// Returns the array dimension position q such that *every* access to
// `array` subscripts position q with exactly loop index `loop_dim`
// (offset 0, so partition boundaries coincide); -1 if none.
int AlignedArrayDim(const LoopSpec& spec, DistArrayId array, int loop_dim) {
  int arity = -1;
  for (const auto& a : spec.accesses) {
    if (a.array == array) {
      arity = static_cast<int>(a.subscripts.size());
      break;
    }
  }
  for (int q = 0; q < arity; ++q) {
    bool all = true;
    for (const auto& a : spec.accesses) {
      if (a.array != array) {
        continue;
      }
      const Subscript& s = a.subscripts[static_cast<size_t>(q)];
      if (!(s.kind == SubscriptKind::kLoopIndex && s.loop_dim == loop_dim && s.constant == 0)) {
        all = false;
        break;
      }
    }
    if (all) {
      return q;
    }
  }
  return -1;
}

struct Candidate {
  ParallelForm form;
  int space_dim;
  int time_dim;  // -1 for 1D
  double cost;
  std::map<DistArrayId, ArrayPlacement> placements;
  bool legal;
};

// Arrays with buffered writes (writes routed through a DistArray Buffer).
std::set<DistArrayId> BufferedWriteArrays(const LoopSpec& spec) {
  std::set<DistArrayId> out;
  for (const auto& a : spec.accesses) {
    if (a.is_write && a.buffered) {
      out.insert(a.array);
    }
  }
  return out;
}

Candidate Evaluate(const LoopSpec& spec, const std::map<DistArrayId, ArrayStats>& stats,
                   int space_dim, int time_dim, const PlannerOptions& options) {
  Candidate c;
  c.form = time_dim < 0 ? ParallelForm::k1D : ParallelForm::k2D;
  c.space_dim = space_dim;
  c.time_dim = time_dim;
  c.cost = 0.0;
  c.legal = true;

  const double n = static_cast<double>(options.num_workers);
  const auto writers = UnbufferedWriteArrays(spec);
  const auto buffered = BufferedWriteArrays(spec);
  for (DistArrayId array : AccessedArrays(spec)) {
    if (array == spec.iter_space) {
      continue;  // the iteration space is partitioned by definition
    }
    auto it = stats.find(array);
    ORION_CHECK(it != stats.end()) << "missing ArrayStats for array" << array;
    const double size = static_cast<double>(it->second.SizeFloats());
    const bool buf_written = buffered.count(array) > 0;

    ArrayPlacement placement;
    const int space_q = AlignedArrayDim(spec, array, space_dim);
    const int time_q = time_dim >= 0 ? AlignedArrayDim(spec, array, time_dim) : -1;
    if (space_q >= 0) {
      placement.scheme = PartitionScheme::kRange;
      placement.array_dim = space_q;
      // Served locally: no communication.
    } else if (time_q >= 0) {
      placement.scheme = PartitionScheme::kSpaceTime;
      placement.array_dim = time_q;
      // Every partition visits every worker once per pass.
      c.cost += size * n;
    } else if (writers.count(array) == 0 &&
               it->second.SizeFloats() <= options.replicate_threshold_floats) {
      // Read-only or buffered-write and small: replicate on every worker.
      placement.scheme = PartitionScheme::kReplicated;
      placement.array_dim = -1;
      // Read-only replicas ship once; buffered-write replicas additionally
      // flush deltas and receive refreshed snapshots.
      c.cost += buf_written ? 2.0 * size * n : size;
    } else {
      placement.scheme = PartitionScheme::kServer;
      placement.array_dim = -1;
      c.cost += buf_written ? 3.0 * size * n : 2.0 * size * n;
      if (writers.count(array) > 0) {
        // An unbuffered (dependence-carrying) write must stay local.
        c.legal = false;
      }
    }
    c.placements[array] = placement;
  }
  return c;
}

}  // namespace

ParallelizationPlan PlanLoop(const LoopSpec& spec,
                             const std::map<DistArrayId, ArrayStats>& stats,
                             const PlannerOptions& options) {
  ParallelizationPlan plan;
  plan.ordered = spec.ordered;
  plan.deps = ComputeDependenceVectors(spec);
  const int n = spec.num_dims();

  std::ostringstream why;
  why << "deps={";
  for (size_t i = 0; i < plan.deps.size(); ++i) {
    why << (i > 0 ? ", " : "") << plan.deps[i].ToString();
  }
  why << "}; ";

  auto dim_allowed = [&](int space, int time) {
    if (options.force_space_dim >= 0 && space != options.force_space_dim) {
      return false;
    }
    if (options.force_time_dim >= 0 && time != options.force_time_dim) {
      return false;
    }
    return true;
  };

  std::vector<Candidate> candidates;
  for (int d : Find1DCandidates(plan.deps, n)) {
    if (dim_allowed(d, -1)) {
      Candidate c = Evaluate(spec, stats, d, -1, options);
      if (c.legal) {
        candidates.push_back(std::move(c));
      }
    }
  }
  std::vector<Candidate> candidates_2d;
  for (auto [i, j] : Find2DCandidates(plan.deps, n)) {
    for (auto [s, t] : {std::pair<int, int>{i, j}, std::pair<int, int>{j, i}}) {
      if (dim_allowed(s, t)) {
        Candidate c = Evaluate(spec, stats, s, t, options);
        if (c.legal) {
          candidates_2d.push_back(std::move(c));
        }
      }
    }
  }

  // Candidate choice: minimize estimated communication; a tie goes to 1D
  // (a 1D schedule needs no cross-worker synchronization during the pass).
  // `prefer_2d` restricts the pool to 2D candidates (application override).
  std::vector<Candidate> pool;
  if (options.prefer_2d && !candidates_2d.empty()) {
    pool = std::move(candidates_2d);
  } else {
    pool = std::move(candidates);
    pool.insert(pool.end(), candidates_2d.begin(), candidates_2d.end());
  }

  if (!pool.empty()) {
    auto best = std::min_element(pool.begin(), pool.end(),
                                 [](const Candidate& a, const Candidate& b) {
                                   if (a.cost != b.cost) {
                                     return a.cost < b.cost;
                                   }
                                   const bool a_1d = a.form == ParallelForm::k1D;
                                   const bool b_1d = b.form == ParallelForm::k1D;
                                   if (a_1d != b_1d) {
                                     return a_1d;
                                   }
                                   if (a.space_dim != b.space_dim) {
                                     return a.space_dim < b.space_dim;
                                   }
                                   return a.time_dim < b.time_dim;
                                 });
    plan.form = best->form;
    plan.space_dim = best->space_dim;
    plan.time_dim = best->time_dim;
    plan.placements = best->placements;
    plan.est_comm_floats = best->cost;
    why << ParallelFormName(plan.form) << " over space dim " << plan.space_dim;
    if (plan.time_dim >= 0) {
      why << ", time dim " << plan.time_dim;
    }
    why << " (est comm " << plan.est_comm_floats << " floats)";
    plan.explanation = why.str();
    return plan;
  }

  // Neither 1D nor 2D: try a unimodular transformation (2-deep nests).
  if (options.allow_unimodular && n == 2) {
    auto t = FindOuterCarryingTransform(plan.deps);
    if (t.has_value()) {
      plan.form = ParallelForm::k2DUnimodular;
      plan.transform = *t;
      plan.time_dim = 0;   // outer transformed dim carries all dependences
      plan.space_dim = 1;  // inner transformed dim is parallel within a step
      // Under a transformed schedule, range locality is generally lost:
      // arrays are server-hosted (reads prefetched, writes flushed per
      // wavefront step).
      for (DistArrayId array : AccessedArrays(spec)) {
        if (array != spec.iter_space) {
          plan.placements[array] = ArrayPlacement{PartitionScheme::kServer, -1};
        }
      }
      why << "unimodular transform " << t->ToString()
          << " carries all deps on the outer loop; wavefront over transformed dims";
      plan.explanation = why.str();
      return plan;
    }
  }

  plan.form = ParallelForm::kSerial;
  why << "no dependence-preserving parallelization found";
  if (!UnbufferedWriteArrays(spec).empty()) {
    why << "; consider routing writes through a DistArray Buffer (data parallelism)";
  }
  plan.explanation = why.str();
  return plan;
}

std::string ParallelizationPlan::ToString() const {
  std::ostringstream os;
  os << ParallelFormName(form) << (ordered ? " ordered" : " unordered");
  if (space_dim >= 0) {
    os << " space=" << space_dim;
  }
  if (time_dim >= 0) {
    os << " time=" << time_dim;
  }
  if (form == ParallelForm::k2DUnimodular) {
    os << " T=" << transform.ToString();
  }
  os << " | " << explanation;
  return os.str();
}

}  // namespace orion
