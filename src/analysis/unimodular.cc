#include "src/analysis/unimodular.h"

#include <cstdlib>
#include <sstream>

#include "src/common/status.h"

namespace orion {

namespace {

// coeff * entry with infinity-aware semantics.
DepEntry ScaleEntry(i64 coeff, const DepEntry& e) {
  if (coeff == 0) {
    return DepEntry::Value(0);
  }
  switch (e.kind) {
    case DepEntry::Kind::kValue:
      return DepEntry::Value(coeff * e.value);
    case DepEntry::Kind::kAny:
      return DepEntry::Any();
    case DepEntry::Kind::kPosInf:
      return coeff > 0 ? DepEntry::PosInf() : DepEntry::NegInf();
    case DepEntry::Kind::kNegInf:
      return coeff > 0 ? DepEntry::NegInf() : DepEntry::PosInf();
  }
  return DepEntry::Any();
}

DepEntry AddEntries(const DepEntry& x, const DepEntry& y) {
  if (x.kind == DepEntry::Kind::kAny || y.kind == DepEntry::Kind::kAny) {
    return DepEntry::Any();
  }
  if (x.kind == DepEntry::Kind::kValue && y.kind == DepEntry::Kind::kValue) {
    return DepEntry::Value(x.value + y.value);
  }
  // At least one infinite, none kAny. kPosInf means "any integer >= 1"
  // (kNegInf: <= -1), so adding a finite value can cross zero: the sum is
  // only sign-definite when the finite part does not oppose the sign.
  const bool has_pos =
      x.kind == DepEntry::Kind::kPosInf || y.kind == DepEntry::Kind::kPosInf;
  const bool has_neg =
      x.kind == DepEntry::Kind::kNegInf || y.kind == DepEntry::Kind::kNegInf;
  if (has_pos && has_neg) {
    return DepEntry::Any();
  }
  const DepEntry& finite = x.kind == DepEntry::Kind::kValue ? x : y;
  if (finite.kind == DepEntry::Kind::kValue) {
    if (has_pos && finite.value < 0) {
      return DepEntry::Any();  // >= 1 + negative: sign unknown
    }
    if (has_neg && finite.value > 0) {
      return DepEntry::Any();
    }
  }
  return has_pos ? DepEntry::PosInf() : DepEntry::NegInf();
}

}  // namespace

std::string Unimodular2x2::ToString() const {
  std::ostringstream os;
  os << "[[" << a << ", " << b << "], [" << c << ", " << d << "]]";
  return os.str();
}

DepVec TransformDepVec(const Unimodular2x2& t, const DepVec& v) {
  ORION_CHECK(v.size() == 2) << "unimodular transform requires 2-deep loop nests";
  DepVec out(2);
  out[0] = AddEntries(ScaleEntry(t.a, v[0]), ScaleEntry(t.b, v[1]));
  out[1] = AddEntries(ScaleEntry(t.c, v[0]), ScaleEntry(t.d, v[1]));
  return out;
}

bool FirstComponentPositive(const DepVec& d) {
  const DepEntry& e = d[0];
  return (e.kind == DepEntry::Kind::kValue && e.value > 0) ||
         e.kind == DepEntry::Kind::kPosInf;
}

std::optional<Unimodular2x2> FindOuterCarryingTransform(const std::vector<DepVec>& deps) {
  for (const auto& d : deps) {
    if (d.size() != 2) {
      return std::nullopt;
    }
    for (const auto& e : d.entries()) {
      if (!e.IsFiniteOrPosInf()) {
        return std::nullopt;  // paper: only numbers or positive infinity
      }
    }
  }

  // Enumerate candidates by increasing coefficient magnitude so skewing is
  // only chosen when interchange/reversal cannot do the job.
  constexpr i64 kMaxCoeff = 3;
  std::optional<Unimodular2x2> best;
  i64 best_weight = 0;
  for (i64 a = -kMaxCoeff; a <= kMaxCoeff; ++a) {
    for (i64 b = -kMaxCoeff; b <= kMaxCoeff; ++b) {
      for (i64 c = -kMaxCoeff; c <= kMaxCoeff; ++c) {
        for (i64 d = -kMaxCoeff; d <= kMaxCoeff; ++d) {
          const Unimodular2x2 t{a, b, c, d};
          const i64 det = t.Det();
          if (det != 1 && det != -1) {
            continue;
          }
          bool ok = true;
          for (const auto& dep : deps) {
            if (!FirstComponentPositive(TransformDepVec(t, dep))) {
              ok = false;
              break;
            }
          }
          if (!ok) {
            continue;
          }
          const i64 weight = std::llabs(a) + std::llabs(b) + std::llabs(c) + std::llabs(d);
          if (t.IsIdentity()) {
            return t;  // can't beat the identity
          }
          if (!best.has_value() || weight < best_weight) {
            best = t;
            best_weight = weight;
          }
        }
      }
    }
  }
  return best;
}

Unimodular2x2 InverseOf(const Unimodular2x2& t) {
  const i64 det = t.Det();
  ORION_CHECK(det == 1 || det == -1);
  // inv(T) = adj(T) / det; with det = ±1 this stays integral.
  return Unimodular2x2{t.d * det, -t.b * det, -t.c * det, t.a * det};
}

}  // namespace orion
