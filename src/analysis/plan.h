// Parallelization planning (paper Sec. 4.3): choose 1D / 2D / unimodular-2D
// parallelization from the dependence vectors, pick the partitioning
// dimensions that minimize communication, and assign each referenced
// DistArray a placement (range-partitioned, rotated, or server-hosted).
#ifndef ORION_SRC_ANALYSIS_PLAN_H_
#define ORION_SRC_ANALYSIS_PLAN_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/dep_vector.h"
#include "src/analysis/unimodular.h"
#include "src/dsm/dist_array_meta.h"
#include "src/ir/loop_spec.h"

namespace orion {

enum class ParallelForm {
  k1D,            // partition one dimension; no cross-worker deps
  k2D,            // space x time partitioning
  k2DUnimodular,  // 2D after a unimodular transformation
  kSerial,        // not statically parallelizable (suggest buffering)
};

const char* ParallelFormName(ParallelForm f);

// Where a referenced DistArray lives during the loop.
struct ArrayPlacement {
  PartitionScheme scheme = PartitionScheme::kServer;
  // For kRange / kSpaceTime: the array dimension aligned with the loop's
  // space / time dimension respectively.
  int array_dim = -1;
};

// Size information the cost heuristic needs, supplied by the runtime.
struct ArrayStats {
  i64 cells = 0;      // materialized cells
  i32 value_dim = 1;  // floats per cell

  i64 SizeFloats() const { return cells * value_dim; }
};

struct ParallelizationPlan {
  ParallelForm form = ParallelForm::kSerial;
  bool ordered = false;

  // Iteration-space dimensions (in *transformed* coordinates for
  // k2DUnimodular; transform is the identity otherwise).
  int space_dim = -1;
  int time_dim = -1;
  Unimodular2x2 transform;

  std::vector<DepVec> deps;
  std::map<DistArrayId, ArrayPlacement> placements;
  double est_comm_floats = 0.0;  // heuristic cost of the chosen candidate
  std::string explanation;

  std::string ToString() const;
};

struct PlannerOptions {
  // Prefer a 2D candidate even when a 1D candidate exists (more partitions,
  // finer synchronization; what the paper uses for LDA).
  bool prefer_2d = false;
  // Force partitioning dimensions (application override of the heuristic);
  // -1 means "let the planner choose".
  int force_space_dim = -1;
  int force_time_dim = -1;
  // Disable the unimodular search.
  bool allow_unimodular = true;
  // Number of workers (set by the runtime); scales communication estimates.
  int num_workers = 1;
  // Arrays no larger than this (in floats) that are read-only or written
  // only through buffers may be replicated on every worker instead of
  // server-hosted (cheaper reads; bounded-staleness buffered writes).
  i64 replicate_threshold_floats = 1 << 20;
};

// Plans the loop. `stats` must contain an entry for every accessed array.
ParallelizationPlan PlanLoop(const LoopSpec& spec,
                             const std::map<DistArrayId, ArrayStats>& stats,
                             const PlannerOptions& options = {});

// ---- Exposed for unit tests ----

// Dimensions d where every dependence vector has a zero entry.
std::vector<int> Find1DCandidates(const std::vector<DepVec>& deps, int num_dims);

// Pairs (i, j), i < j, where every vector has a zero at i or at j.
std::vector<std::pair<int, int>> Find2DCandidates(const std::vector<DepVec>& deps, int num_dims);

}  // namespace orion

#endif  // ORION_SRC_ANALYSIS_PLAN_H_
