// Computation schedules (paper Sec. 4.3, Fig. 7).
//
// A schedule maps (worker, global step) to the iteration-space partition the
// worker executes, plus the ring along which rotated DistArray partitions
// travel. Three shapes:
//
//  - OneDSchedule (Fig. 7d): each worker owns one space partition; a single
//    step per pass; workers synchronize only at pass end.
//
//  - WavefrontSchedule (Fig. 7e, ordered 2D): global steps t = 0..M+N-2;
//    worker j executes time partition (t - j) when valid. Rotated partitions
//    flow along the ring 0 -> 1 -> ... -> N-1. Preserves lexicographic
//    dependence direction.
//
//  - RotationSchedule (Fig. 7f + Fig. 8, unordered 2D): the default. With N
//    workers and pipeline depth P, there are M = N*P time partitions; at
//    step t worker j executes partition (j*P + t) mod M. Each worker starts
//    with P locally resident time partitions, forwards a partition to its
//    predecessor right after executing it, and thus never idles waiting for
//    data as long as the pipeline stays full. After the M steps of one pass
//    every rotated partition is back at its initial owner.
#ifndef ORION_SRC_SCHED_SCHEDULE_H_
#define ORION_SRC_SCHED_SCHEDULE_H_

#include <string>

#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

struct OneDSchedule {
  int num_workers = 1;

  int num_steps() const { return 1; }
};

struct WavefrontSchedule {
  int num_workers = 1;
  int num_time_parts = 1;

  int num_steps() const { return num_workers + num_time_parts - 1; }

  // Time partition worker j executes at step t, or -1 if idle.
  int TimePartAt(int worker, int step) const {
    const int tau = step - worker;
    return (tau >= 0 && tau < num_time_parts) ? tau : -1;
  }

  // Ring neighbors for rotated-partition transfer (-1 = none).
  WorkerId SendTo(int worker) const {
    return worker + 1 < num_workers ? worker + 1 : kMasterRank;
  }
  WorkerId RecvFrom(int worker) const { return worker > 0 ? worker - 1 : kMasterRank; }

  // Worker that holds time partition tau before the pass starts.
  int InitialOwner(int tau) const { return 0; }
};

struct RotationSchedule {
  int num_workers = 1;
  int pipeline_depth = 1;  // P; time partitions per worker

  int num_time_parts() const { return num_workers * pipeline_depth; }
  int num_steps() const { return num_time_parts(); }

  int TimePartAt(int worker, int step) const {
    ORION_CHECK(step >= 0 && step < num_steps());
    return (worker * pipeline_depth + step) % num_time_parts();
  }

  // Rotated partitions travel to the predecessor in the worker ring.
  WorkerId SendTo(int worker) const {
    return num_workers == 1 ? kMasterRank
                            : static_cast<WorkerId>((worker + num_workers - 1) % num_workers);
  }
  WorkerId RecvFrom(int worker) const {
    return num_workers == 1 ? kMasterRank : static_cast<WorkerId>((worker + 1) % num_workers);
  }

  // Worker that holds time partition tau before the pass starts.
  int InitialOwner(int tau) const { return tau / pipeline_depth; }

  // True if worker's partition for `step` is part of its initial residency
  // (no receive needed).
  bool InitiallyLocal(int step) const { return step < pipeline_depth; }
};

}  // namespace orion

#endif  // ORION_SRC_SCHED_SCHEDULE_H_
