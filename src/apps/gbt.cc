#include "src/apps/gbt.h"

#include <algorithm>
#include <cmath>

namespace orion {

GbtApp::GbtApp(Driver* driver, const GbtConfig& config) : driver_(driver), config_(config) {
  max_active_nodes_ = 1 << config.max_depth;
}

Status GbtApp::Init(const std::vector<RegressionSample>& samples) {
  ORION_CHECK(!samples.empty());
  data_ = samples;
  num_samples_ = static_cast<i64>(samples.size());
  num_features_ = static_cast<int>(samples[0].features.size());

  // Quantize each feature into equal-frequency bins (driver-side, once).
  bins_.assign(static_cast<size_t>(num_features_), {});
  bin_edges_.assign(static_cast<size_t>(num_features_), {});
  for (int f = 0; f < num_features_; ++f) {
    std::vector<f32> values(static_cast<size_t>(num_samples_));
    for (i64 s = 0; s < num_samples_; ++s) {
      values[static_cast<size_t>(s)] = data_[static_cast<size_t>(s)].features[static_cast<size_t>(f)];
    }
    std::vector<f32> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    auto& edges = bin_edges_[static_cast<size_t>(f)];
    edges.resize(static_cast<size_t>(config_.num_bins));
    for (int b = 0; b < config_.num_bins; ++b) {
      const size_t q = std::min<size_t>(sorted.size() - 1,
                                        sorted.size() * static_cast<size_t>(b + 1) /
                                            static_cast<size_t>(config_.num_bins));
      edges[static_cast<size_t>(b)] = sorted[q];
    }
    auto& col = bins_[static_cast<size_t>(f)];
    col.resize(static_cast<size_t>(num_samples_));
    for (i64 s = 0; s < num_samples_; ++s) {
      const f32 v = values[static_cast<size_t>(s)];
      const auto it = std::lower_bound(edges.begin(), edges.end(), v);
      col[static_cast<size_t>(s)] =
          static_cast<u8>(std::min<size_t>(static_cast<size_t>(it - edges.begin()),
                                           edges.size() - 1));
    }
  }

  predictions_.assign(static_cast<size_t>(num_samples_), 0.0f);
  gradients_.assign(static_cast<size_t>(num_samples_), 0.0f);
  node_of_sample_.assign(static_cast<size_t>(num_samples_), 0);

  // DistArrays.
  features_ = driver_->CreateDistArray("features", {num_features_}, 1, Density::kSparse);
  columns_ = driver_->CreateDistArray("columns", {num_features_, num_samples_}, 1,
                                      Density::kDense);
  node_sample_ = driver_->CreateDistArray("node_sample", {num_samples_}, 2, Density::kDense);
  best_splits_ = driver_->CreateDistArray("best_splits", {num_features_},
                                          4 * max_active_nodes_, Density::kDense);
  {
    CellStore& fcells = driver_->MutableCells(features_);
    for (int f = 0; f < num_features_; ++f) {
      *fcells.GetOrCreate(f) = static_cast<f32>(f);
    }
    CellStore& cols = driver_->MutableCells(columns_);
    for (int f = 0; f < num_features_; ++f) {
      for (i64 s = 0; s < num_samples_; ++s) {
        *cols.GetOrCreate(static_cast<i64>(f) * num_samples_ + s) =
            static_cast<f32>(bins_[static_cast<size_t>(f)][static_cast<size_t>(s)]);
      }
    }
  }

  LoopSpec spec;
  spec.iter_space = features_;
  spec.iter_extents = {num_features_};
  spec.AddAccess(columns_, "columns", {Expr::LoopIndex(0), Expr::Runtime("sample")},
                 /*is_write=*/false);
  spec.AddAccess(node_sample_, "node_sample", {Expr::Runtime("sample")}, /*is_write=*/false);
  spec.AddAccess(best_splits_, "best_splits", {Expr::LoopIndex(0)}, /*is_write=*/true);

  const i64 n = num_samples_;
  const int bins = config_.num_bins;
  const int max_nodes = max_active_nodes_;
  DistArrayId columns = columns_;
  DistArrayId node_sample = node_sample_;
  DistArrayId best_splits = best_splits_;

  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 f = idx[0];
    // Per-(node, bin) gradient histogram.
    thread_local std::vector<f64> grad_sum;
    thread_local std::vector<f64> cnt;
    grad_sum.assign(static_cast<size_t>(max_nodes * bins), 0.0);
    cnt.assign(static_cast<size_t>(max_nodes * bins), 0.0);

    for (i64 s = 0; s < n; ++s) {
      const i64 key_s[1] = {s};
      const f32* ns = ctx.Read(node_sample, key_s);
      const int slot = static_cast<int>(ns[0]);
      if (slot < 0) {
        continue;  // sample sits in a finished leaf
      }
      const i64 key_fs[2] = {f, s};
      const int bin = static_cast<int>(ctx.Read(columns, key_fs)[0]);
      grad_sum[static_cast<size_t>(slot * bins + bin)] += static_cast<f64>(ns[1]);
      cnt[static_cast<size_t>(slot * bins + bin)] += 1.0;
    }

    const i64 key_f[1] = {f};
    f32* out = ctx.Mutate(best_splits, key_f);
    for (int slot = 0; slot < max_nodes; ++slot) {
      f64 total_g = 0.0;
      f64 total_n = 0.0;
      for (int b = 0; b < bins; ++b) {
        total_g += grad_sum[static_cast<size_t>(slot * bins + b)];
        total_n += cnt[static_cast<size_t>(slot * bins + b)];
      }
      f32* cell = out + 4 * slot;
      cell[0] = -1.0f;  // gain
      cell[1] = -1.0f;  // bin
      cell[2] = 0.0f;   // left gradient sum
      cell[3] = 0.0f;   // left count
      if (total_n < 2.0) {
        continue;
      }
      const f64 parent = total_g * total_g / total_n;
      f64 lg = 0.0;
      f64 ln = 0.0;
      for (int b = 0; b < bins - 1; ++b) {
        lg += grad_sum[static_cast<size_t>(slot * bins + b)];
        ln += cnt[static_cast<size_t>(slot * bins + b)];
        const f64 rn = total_n - ln;
        if (ln < 1.0 || rn < 1.0) {
          continue;
        }
        const f64 rg = total_g - lg;
        const f64 gain = lg * lg / ln + rg * rg / rn - parent;
        if (gain > static_cast<f64>(cell[0])) {
          cell[0] = static_cast<f32>(gain);
          cell[1] = static_cast<f32>(b);
          cell[2] = static_cast<f32>(lg);
          cell[3] = static_cast<f32>(ln);
        }
      }
    }
  };

  auto loop = driver_->Compile(spec, kernel, config_.loop_options);
  ORION_RETURN_IF_ERROR(loop.status());
  split_loop_ = *loop;
  return Status::Ok();
}

void GbtApp::ComputeGradients() {
  for (i64 s = 0; s < num_samples_; ++s) {
    gradients_[static_cast<size_t>(s)] =
        predictions_[static_cast<size_t>(s)] - data_[static_cast<size_t>(s)].target;
  }
}

StatusOr<f64> GbtApp::FitOneTree() {
  ComputeGradients();
  Tree tree;
  tree.nodes.push_back(TreeNode{});

  // frontier[i] = node index; samples carry the *slot* (position in the
  // frontier) so the kernel indexes histograms densely.
  std::vector<int> frontier = {0};
  std::vector<int> node_slot(static_cast<size_t>(num_samples_), 0);
  node_of_sample_.assign(static_cast<size_t>(num_samples_), 0);

  for (int depth = 0; depth < config_.max_depth && !frontier.empty(); ++depth) {
    // Publish slot ids + gradients.
    for (i64 s = 0; s < num_samples_; ++s) {
      const int node = node_of_sample_[static_cast<size_t>(s)];
      int slot = -1;
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (frontier[i] == node) {
          slot = static_cast<int>(i);
          break;
        }
      }
      node_slot[static_cast<size_t>(s)] = slot;
    }
    {
      CellStore& cells = driver_->MutableCells(node_sample_);
      for (i64 s = 0; s < num_samples_; ++s) {
        f32* cell = cells.GetOrCreate(s);
        cell[0] = static_cast<f32>(node_slot[static_cast<size_t>(s)]);
        cell[1] = gradients_[static_cast<size_t>(s)];
      }
    }

    ORION_RETURN_IF_ERROR(driver_->Execute(split_loop_));

    // Aggregate the per-feature candidates into the global best per slot.
    const CellStore& splits = driver_->Cells(best_splits_);
    struct Best {
      f64 gain = 0.0;
      int feature = -1;
      int bin = -1;
    };
    std::vector<Best> best(frontier.size());
    for (int f = 0; f < num_features_; ++f) {
      const f32* cell = splits.Get(f);
      for (size_t slot = 0; slot < frontier.size(); ++slot) {
        const f32* c = cell + 4 * slot;
        if (c[0] > static_cast<f32>(config_.min_gain) &&
            static_cast<f64>(c[0]) > best[slot].gain) {
          best[slot] = {static_cast<f64>(c[0]), f, static_cast<int>(c[1])};
        }
      }
    }

    // Grow the tree and reassign samples.
    std::vector<int> next_frontier;
    std::vector<int> split_feature(frontier.size(), -1);
    std::vector<int> split_bin(frontier.size(), -1);
    for (size_t slot = 0; slot < frontier.size(); ++slot) {
      if (best[slot].feature < 0) {
        continue;
      }
      const int node = frontier[slot];
      tree.nodes[static_cast<size_t>(node)].feature = best[slot].feature;
      tree.nodes[static_cast<size_t>(node)].bin = best[slot].bin;
      tree.nodes[static_cast<size_t>(node)].left = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      tree.nodes[static_cast<size_t>(node)].right = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      next_frontier.push_back(tree.nodes[static_cast<size_t>(node)].left);
      next_frontier.push_back(tree.nodes[static_cast<size_t>(node)].right);
      split_feature[slot] = best[slot].feature;
      split_bin[slot] = best[slot].bin;
    }
    for (i64 s = 0; s < num_samples_; ++s) {
      const int slot = node_slot[static_cast<size_t>(s)];
      if (slot < 0 || split_feature[static_cast<size_t>(slot)] < 0) {
        continue;
      }
      const int node = frontier[static_cast<size_t>(slot)];
      const int f = split_feature[static_cast<size_t>(slot)];
      const int b = bins_[static_cast<size_t>(f)][static_cast<size_t>(s)];
      node_of_sample_[static_cast<size_t>(s)] =
          b <= split_bin[static_cast<size_t>(slot)]
              ? tree.nodes[static_cast<size_t>(node)].left
              : tree.nodes[static_cast<size_t>(node)].right;
    }
    frontier = std::move(next_frontier);
  }

  // Leaf values: the gradient-descent step on each leaf's mean residual.
  std::vector<f64> leaf_grad(tree.nodes.size(), 0.0);
  std::vector<f64> leaf_cnt(tree.nodes.size(), 0.0);
  for (i64 s = 0; s < num_samples_; ++s) {
    const int node = node_of_sample_[static_cast<size_t>(s)];
    leaf_grad[static_cast<size_t>(node)] += static_cast<f64>(gradients_[static_cast<size_t>(s)]);
    leaf_cnt[static_cast<size_t>(node)] += 1.0;
  }
  for (size_t node = 0; node < tree.nodes.size(); ++node) {
    if (tree.nodes[node].feature < 0 && leaf_cnt[node] > 0.0) {
      tree.nodes[node].value =
          -config_.learning_rate * static_cast<f32>(leaf_grad[node] / leaf_cnt[node]);
    }
  }
  for (i64 s = 0; s < num_samples_; ++s) {
    predictions_[static_cast<size_t>(s)] +=
        tree.nodes[static_cast<size_t>(node_of_sample_[static_cast<size_t>(s)])].value;
  }
  trees_.push_back(std::move(tree));
  return TrainMse();
}

f64 GbtApp::TrainMse() const {
  f64 mse = 0.0;
  for (i64 s = 0; s < num_samples_; ++s) {
    const f64 d = static_cast<f64>(predictions_[static_cast<size_t>(s)]) -
                  static_cast<f64>(data_[static_cast<size_t>(s)].target);
    mse += d * d;
  }
  return mse / static_cast<f64>(num_samples_);
}

}  // namespace orion
