#include "src/apps/sgd_mf.h"

#include <cmath>

namespace orion {

namespace {

// Initializes factor cells with small uniform-positive values (common MF
// initialization so first predictions are near the rating mean).
void InitFactors(Driver* driver, DistArrayId id, int rank, int stride, u64 seed) {
  Rng rng(seed);
  driver->MapCells(id, [&](i64 key, f32* value) {
    for (int k = 0; k < rank; ++k) {
      value[k] = 0.5f * static_cast<f32>(rng.NextDouble());
    }
    for (int k = rank; k < stride; ++k) {
      value[k] = 0.0f;  // optimizer state starts at zero
    }
  });
}

}  // namespace

BufferApplyFn MakeAdaRevApplyFn(f32 alpha) {
  return [alpha](f32* cell, const f32* update, i32 value_dim) {
    const i32 r = value_dim / 3;
    f32* w = cell;
    f32* z = cell + r;
    f32* gsum = cell + 2 * r;
    const f32* g = update;
    const f32* gsum_seen = update + r;
    for (i32 k = 0; k < r; ++k) {
      // Gradients applied since this worker read the cell ("missed"
      // updates); colliding same-direction updates inflate z so the
      // effective step shrinks — the adaptive revision.
      const f32 g_bwd = gsum[k] - gsum_seen[k];
      const f32 extra = g[k] * g_bwd;
      const f32 z_new = z[k] + g[k] * g[k] + 2.0f * (extra > 0.0f ? extra : 0.0f);
      const f32 eta = alpha / std::sqrt(1.0f + z_new);
      w[k] -= eta * g[k];
      z[k] = z_new;
      gsum[k] += g[k];
    }
  };
}

SgdMfApp::SgdMfApp(Driver* driver, const SgdMfConfig& config)
    : driver_(driver),
      config_(config),
      step_(std::make_shared<std::atomic<f32>>(config.step_size)) {}

Status SgdMfApp::Init(const std::vector<RatingEntry>& entries, i64 rows, i64 cols) {
  rows_ = rows;
  cols_ = cols;
  const int r = config_.rank;
  const int stride = config_.adarev ? 3 * r : r;

  ratings_ = driver_->CreateDistArray("ratings", {rows, cols}, 1, Density::kSparse);
  w_ = driver_->CreateDistArray("W", {rows}, stride, Density::kDense);
  h_ = driver_->CreateDistArray("H", {cols}, stride, Density::kDense);

  {
    CellStore& cells = driver_->MutableCells(ratings_);
    for (const auto& e : entries) {
      *cells.GetOrCreate(e.row * cols + e.col) = e.value;
    }
  }
  InitFactors(driver_, w_, r, stride, 101);
  InitFactors(driver_, h_, r, stride, 202);

  loss_acc_ = driver_->CreateAccumulator();

  // ---- Training loop ----
  LoopSpec train;
  train.iter_space = ratings_;
  train.iter_extents = {rows, cols};
  train.ordered = config_.loop_options.ordered;
  const bool adarev = config_.adarev;
  train.AddAccess(w_, "W", {Expr::LoopIndex(0)}, /*is_write=*/false);
  train.AddAccess(h_, "H", {Expr::LoopIndex(1)}, /*is_write=*/false);
  train.AddAccess(w_, "W", {Expr::LoopIndex(0)}, /*is_write=*/true, /*buffered=*/adarev);
  train.AddAccess(h_, "H", {Expr::LoopIndex(1)}, /*is_write=*/true, /*buffered=*/adarev);

  LoopKernel kernel;
  if (!adarev) {
    kernel = [this, r](LoopContext& ctx, IdxSpan idx, const f32* value) {
      const i64 key_i[1] = {idx[0]};
      const i64 key_j[1] = {idx[1]};
      f32* w = ctx.Mutate(w_, key_i);
      f32* h = ctx.Mutate(h_, key_j);
      f32 pred = 0.0f;
      for (int k = 0; k < r; ++k) {
        pred += w[k] * h[k];
      }
      const f32 diff = value[0] - pred;
      const f32 eps = step_->load(std::memory_order_relaxed);
      for (int k = 0; k < r; ++k) {
        const f32 wk = w[k];
        const f32 hk = h[k];
        w[k] = wk + eps * 2.0f * diff * hk;
        h[k] = hk + eps * 2.0f * diff * wk;
      }
    };
  } else {
    // Bound the buffering delay so adaptive-revision updates become visible
    // within a block (once per whole block behaves like a huge mini-batch).
    if (config_.loop_options.buffer_flush_every == 0) {
      config_.loop_options.buffer_flush_every = 32;
    }
    driver_->RegisterBuffer(w_, 2 * r, MakeAdaRevApplyFn(config_.adarev_alpha));
    driver_->RegisterBuffer(h_, 2 * r, MakeAdaRevApplyFn(config_.adarev_alpha));
    kernel = [this, r](LoopContext& ctx, IdxSpan idx, const f32* value) {
      const i64 key_i[1] = {idx[0]};
      const i64 key_j[1] = {idx[1]};
      const f32* wc = ctx.Read(w_, key_i);  // [w, z, gsum]
      const f32* hc = ctx.Read(h_, key_j);
      f32 pred = 0.0f;
      for (int k = 0; k < r; ++k) {
        pred += wc[k] * hc[k];
      }
      const f32 diff = value[0] - pred;
      // Update = [gradient, gsum at read time].
      thread_local std::vector<f32> uw;
      thread_local std::vector<f32> uh;
      uw.resize(static_cast<size_t>(2 * r));
      uh.resize(static_cast<size_t>(2 * r));
      for (int k = 0; k < r; ++k) {
        uw[static_cast<size_t>(k)] = -2.0f * diff * hc[k];
        uh[static_cast<size_t>(k)] = -2.0f * diff * wc[k];
        uw[static_cast<size_t>(r + k)] = wc[2 * r + k];
        uh[static_cast<size_t>(r + k)] = hc[2 * r + k];
      }
      ctx.BufferUpdate(w_, key_i, uw.data());
      ctx.BufferUpdate(h_, key_j, uh.data());
    };
  }

  auto train_loop = driver_->Compile(train, kernel, config_.loop_options);
  ORION_RETURN_IF_ERROR(train_loop.status());
  train_loop_ = *train_loop;

  // ---- Eval loop (reads only) ----
  LoopSpec eval;
  eval.iter_space = ratings_;
  eval.iter_extents = {rows, cols};
  // Share the training loop's schedule shape (and thus its data layout).
  eval.ordered = config_.loop_options.ordered;
  eval.AddAccess(w_, "W", {Expr::LoopIndex(0)}, /*is_write=*/false);
  eval.AddAccess(h_, "H", {Expr::LoopIndex(1)}, /*is_write=*/false);

  LoopKernel eval_kernel = [this, r](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 key_i[1] = {idx[0]};
    const i64 key_j[1] = {idx[1]};
    const f32* w = ctx.Read(w_, key_i);
    const f32* h = ctx.Read(h_, key_j);
    f32 pred = 0.0f;
    for (int k = 0; k < r; ++k) {
      pred += w[k] * h[k];
    }
    const f64 diff = static_cast<f64>(value[0]) - static_cast<f64>(pred);
    ctx.AccumulatorAdd(loss_acc_, diff * diff);
  };

  // Match the training loop's layout so no repartitioning happens between
  // training and evaluation passes.
  ParallelForOptions eval_options = config_.loop_options;
  const auto& tp = driver_->PlanOf(train_loop_);
  eval_options.planner.force_space_dim = tp.space_dim;
  eval_options.planner.force_time_dim = tp.time_dim;
  eval_options.planner.prefer_2d = tp.form != ParallelForm::k1D;
  auto eval_loop = driver_->Compile(eval, eval_kernel, eval_options);
  ORION_RETURN_IF_ERROR(eval_loop.status());
  eval_loop_ = *eval_loop;
  return Status::Ok();
}

Status SgdMfApp::RunPass() {
  ORION_RETURN_IF_ERROR(driver_->Execute(train_loop_));
  step_->store(step_->load() * config_.step_decay);
  return Status::Ok();
}

StatusOr<f64> SgdMfApp::EvalLoss() {
  driver_->ResetAccumulator(loss_acc_);
  ORION_RETURN_IF_ERROR(driver_->Execute(eval_loop_));
  return driver_->AccumulatorValue(loss_acc_);
}

// ---------------------------------------------------------------------------
// Serial reference

SerialSgdMf::SerialSgdMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols,
                         const SgdMfConfig& config)
    : entries_(entries), config_(config), rows_(rows), cols_(cols), step_(config.step_size) {
  const int r = config.rank;
  w_.resize(static_cast<size_t>(rows * r));
  h_.resize(static_cast<size_t>(cols * r));
  Rng wrng(101);
  for (i64 i = 0; i < rows; ++i) {
    for (int k = 0; k < r; ++k) {
      w_[static_cast<size_t>(i * r + k)] = 0.5f * static_cast<f32>(wrng.NextDouble());
    }
  }
  Rng hrng(202);
  for (i64 j = 0; j < cols; ++j) {
    for (int k = 0; k < r; ++k) {
      h_[static_cast<size_t>(j * r + k)] = 0.5f * static_cast<f32>(hrng.NextDouble());
    }
  }
}

void SerialSgdMf::RunPass() {
  const int r = config_.rank;
  for (const auto& e : entries_) {
    f32* w = &w_[static_cast<size_t>(e.row * r)];
    f32* h = &h_[static_cast<size_t>(e.col * r)];
    f32 pred = 0.0f;
    for (int k = 0; k < r; ++k) {
      pred += w[k] * h[k];
    }
    const f32 diff = e.value - pred;
    for (int k = 0; k < r; ++k) {
      const f32 wk = w[k];
      const f32 hk = h[k];
      w[k] = wk + step_ * 2.0f * diff * hk;
      h[k] = hk + step_ * 2.0f * diff * wk;
    }
  }
  step_ *= config_.step_decay;
}

f64 SerialSgdMf::EvalLoss() const {
  const int r = config_.rank;
  f64 loss = 0.0;
  for (const auto& e : entries_) {
    const f32* w = &w_[static_cast<size_t>(e.row * r)];
    const f32* h = &h_[static_cast<size_t>(e.col * r)];
    f32 pred = 0.0f;
    for (int k = 0; k < r; ++k) {
      pred += w[k] * h[k];
    }
    const f64 diff = static_cast<f64>(e.value) - static_cast<f64>(pred);
    loss += diff * diff;
  }
  return loss;
}

}  // namespace orion
