#include "src/apps/datagen.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <set>
#include <unordered_set>

#include "src/common/status.h"

namespace orion {

std::vector<RatingEntry> GenerateRatings(const RatingsConfig& config) {
  Rng rng(config.seed);
  const int r = config.true_rank;
  const f32 scale = 1.0f / std::sqrt(static_cast<f32>(r));

  std::vector<f32> u(static_cast<size_t>(config.rows * r));
  std::vector<f32> v(static_cast<size_t>(config.cols * r));
  for (auto& x : u) {
    x = static_cast<f32>(rng.NextGaussian());
  }
  for (auto& x : v) {
    x = static_cast<f32>(rng.NextGaussian());
  }

  std::vector<RatingEntry> entries;
  entries.reserve(static_cast<size_t>(config.nnz));
  std::unordered_set<i64> seen;
  seen.reserve(static_cast<size_t>(config.nnz) * 2);
  i64 attempts = 0;
  const i64 max_attempts = config.nnz * 20;
  while (static_cast<i64>(entries.size()) < config.nnz && attempts < max_attempts) {
    ++attempts;
    const i64 i = rng.NextZipf(config.rows, config.zipf_alpha);
    const i64 j = rng.NextZipf(config.cols, config.zipf_alpha);
    const i64 key = i * config.cols + j;
    if (!seen.insert(key).second) {
      continue;
    }
    f32 dot = 0.0f;
    for (int k = 0; k < r; ++k) {
      dot += u[static_cast<size_t>(i * r + k)] * v[static_cast<size_t>(j * r + k)];
    }
    const f32 value =
        dot * scale + config.noise * static_cast<f32>(rng.NextGaussian()) + 3.0f;
    entries.push_back({i, j, value});
  }
  return entries;
}

std::vector<TokenEntry> GenerateCorpus(const CorpusConfig& config) {
  Rng rng(config.seed);
  const int k = config.true_topics;

  // Each planted topic owns a Zipf-skewed distribution over a slice of the
  // vocabulary (with 20% mass spread over the full vocabulary).
  const i64 slice = std::max<i64>(1, config.vocab / k);

  std::vector<TokenEntry> entries;
  std::map<std::pair<i64, i64>, i32> counts;
  for (i64 d = 0; d < config.num_docs; ++d) {
    // Sparse topic mixture: 1-3 dominant topics per document.
    const int num_active = 1 + static_cast<int>(rng.NextBounded(3));
    std::vector<int> active(static_cast<size_t>(num_active));
    for (auto& t : active) {
      t = static_cast<int>(rng.NextBounded(static_cast<u64>(k)));
    }
    const int len = config.doc_length / 2 +
                    static_cast<int>(rng.NextBounded(static_cast<u64>(config.doc_length)));
    for (int t = 0; t < len; ++t) {
      const int topic = active[rng.NextBounded(static_cast<u64>(num_active))];
      i64 word;
      if (rng.NextDouble() < 0.8) {
        // Topic-specific word from this topic's slice.
        const i64 offset = rng.NextZipf(slice, config.zipf_alpha);
        word = (topic * slice + offset) % config.vocab;
      } else {
        word = rng.NextZipf(config.vocab, config.zipf_alpha);
      }
      counts[{d, word}] += 1;
    }
  }
  entries.reserve(counts.size());
  for (const auto& [dw, c] : counts) {
    entries.push_back({dw.first, dw.second, c});
  }
  return entries;
}

std::vector<SparseSample> GenerateSparseLr(const SparseLrConfig& config) {
  Rng rng(config.seed);
  // Planted weights: dense gaussian, scaled down.
  std::vector<f32> w(static_cast<size_t>(config.num_features));
  for (auto& x : w) {
    x = 0.5f * static_cast<f32>(rng.NextGaussian());
  }

  std::vector<SparseSample> samples;
  samples.reserve(static_cast<size_t>(config.num_samples));
  for (i64 s = 0; s < config.num_samples; ++s) {
    SparseSample sample;
    std::set<i64> ids;
    while (static_cast<int>(ids.size()) < config.nnz_per_sample) {
      ids.insert(rng.NextZipf(config.num_features, config.zipf_alpha));
    }
    f32 margin = 0.0f;
    for (i64 id : ids) {
      const f32 value = 0.5f + 0.5f * static_cast<f32>(rng.NextDouble());
      sample.features.push_back({id, value});
      margin += w[static_cast<size_t>(id)] * value;
    }
    const f64 p = 1.0 / (1.0 + std::exp(-static_cast<f64>(margin)));
    sample.label = rng.NextDouble() < p ? 1.0f : 0.0f;
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<RegressionSample> GenerateRegression(const RegressionConfig& config) {
  Rng rng(config.seed);
  std::vector<RegressionSample> samples;
  samples.reserve(static_cast<size_t>(config.num_samples));
  for (i64 s = 0; s < config.num_samples; ++s) {
    RegressionSample sample;
    sample.features.resize(static_cast<size_t>(config.num_features));
    for (auto& x : sample.features) {
      x = static_cast<f32>(rng.NextDouble());
    }
    // Piecewise response over the first few features: exactly the structure
    // trees capture.
    f32 y = 0.0f;
    y += sample.features[0] > 0.5f ? 2.0f : -1.0f;
    y += sample.features[1] > 0.3f ? (sample.features[2] > 0.6f ? 1.5f : 0.5f) : 0.0f;
    y += 0.8f * sample.features[3];
    sample.target = y + config.noise * static_cast<f32>(rng.NextGaussian());
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace orion
