// SGD Matrix Factorization on Orion (paper Sec. 2, Fig. 5, Table 2).
//
// The serial algorithm is Alg. 1: for each rating Z_ij, update row W_i and
// column H_j by a gradient step on the nonzero squared loss. Orion's planner
// discovers the 2D (space = rows, time = cols) unordered parallelization —
// the stratified-SGD schedule of Gemulla et al. — automatically from the
// access declarations W[i] and H[j].
//
// Two training variants:
//   - plain SGD: W and H cells hold the factor row (value_dim = rank) and
//     are updated in place (dependence-preserving Mutate);
//   - SGD with Adaptive Revision (AdaRev): cells hold [w, z, g_sum]
//     (value_dim = 3*rank); updates carry [gradient, g_sum_seen] and are
//     routed through DistArray Buffers whose apply UDF implements a
//     delay-compensated AdaGrad step (paper Sec. 3.3).
#ifndef ORION_SRC_APPS_SGD_MF_H_
#define ORION_SRC_APPS_SGD_MF_H_

#include <atomic>
#include <vector>

#include "src/apps/datagen.h"
#include "src/runtime/driver.h"

namespace orion {

struct SgdMfConfig {
  int rank = 16;
  f32 step_size = 0.02f;
  f32 step_decay = 0.99f;   // multiplicative per-pass decay
  bool adarev = false;
  f32 adarev_alpha = 0.08f;  // AdaRev base learning rate
  ParallelForOptions loop_options;
};

// The AdaRev apply UDF, exposed for unit tests: cell = [w(r), z(r), gsum(r)],
// update = [g(r), gsum_seen(r)].
BufferApplyFn MakeAdaRevApplyFn(f32 alpha);

class SgdMfApp {
 public:
  SgdMfApp(Driver* driver, const SgdMfConfig& config);

  // Creates DistArrays from the entries and compiles both loops.
  Status Init(const std::vector<RatingEntry>& entries, i64 rows, i64 cols);

  // One pass of SGD over all ratings (decays the step size afterwards).
  Status RunPass();

  // Training loss: sum of squared errors over the nonzero entries.
  StatusOr<f64> EvalLoss();

  const ParallelizationPlan& train_plan() const { return driver_->PlanOf(train_loop_); }
  DistArrayId ratings() const { return ratings_; }
  DistArrayId w() const { return w_; }
  DistArrayId h() const { return h_; }
  const LoopMetrics& last_metrics() const { return driver_->last_metrics(); }

 private:
  Driver* driver_;
  SgdMfConfig config_;
  i64 rows_ = 0;
  i64 cols_ = 0;

  DistArrayId ratings_ = kInvalidDistArrayId;
  DistArrayId w_ = kInvalidDistArrayId;
  DistArrayId h_ = kInvalidDistArrayId;
  i32 train_loop_ = -1;
  i32 eval_loop_ = -1;
  int loss_acc_ = -1;
  std::shared_ptr<std::atomic<f32>> step_;  // read by worker threads
};

// Serial reference implementation (the "gold standard" convergence curve and
// the single-core baseline of Fig. 9a). Operates on plain vectors.
class SerialSgdMf {
 public:
  SerialSgdMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols,
              const SgdMfConfig& config);

  void RunPass();
  f64 EvalLoss() const;

  const std::vector<f32>& w() const { return w_; }
  const std::vector<f32>& h() const { return h_; }

 private:
  std::vector<RatingEntry> entries_;
  SgdMfConfig config_;
  i64 rows_;
  i64 cols_;
  f32 step_;
  std::vector<f32> w_;  // rows x rank
  std::vector<f32> h_;  // cols x rank
};

}  // namespace orion

#endif  // ORION_SRC_APPS_SGD_MF_H_
