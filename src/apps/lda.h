// Latent Dirichlet Allocation by collapsed Gibbs sampling (paper Table 2:
// "2D Unordered, 1D").
//
// The iteration space is the sparse (doc, word) token-count matrix; each
// cell also stores the current topic assignment of its token occurrences
// (mutated in place across passes). Access pattern:
//   - doc_topic[d]  : read + write, aligned with the doc dimension;
//   - word_topic[w] : read + write, aligned with the word dimension;
//   - topic_sum[0]  : read + buffered write (constant subscript).
// The planner derives the 2D unordered schedule; the topic totals are the
// "non-critical dependence" the paper deliberately violates: they are
// replicated with bounded-staleness buffered updates.
#ifndef ORION_SRC_APPS_LDA_H_
#define ORION_SRC_APPS_LDA_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/apps/datagen.h"
#include "src/runtime/driver.h"

namespace orion {

struct LdaConfig {
  int num_topics = 20;
  f32 alpha = 0.5f;  // doc-topic smoothing
  f32 beta = 0.1f;   // topic-word smoothing
  // Maximum stored occurrences per (doc, word) cell; heavier cells are
  // clamped at generation time.
  int max_occurrences = 7;
  ParallelForOptions loop_options;
};

class LdaApp {
 public:
  LdaApp(Driver* driver, const LdaConfig& config);

  Status Init(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab);

  // One Gibbs sweep over every token.
  Status RunPass();

  // Mean per-token predictive log-likelihood (higher is better).
  StatusOr<f64> EvalLogLikelihood();

  const ParallelizationPlan& train_plan() const { return driver_->PlanOf(train_loop_); }
  DistArrayId doc_topic() const { return doc_topic_; }
  DistArrayId word_topic() const { return word_topic_; }
  DistArrayId topic_sum() const { return topic_sum_; }
  const LoopMetrics& last_metrics() const { return driver_->last_metrics(); }

 private:
  Driver* driver_;
  LdaConfig config_;
  i64 num_docs_ = 0;
  i64 vocab_ = 0;
  i64 total_tokens_ = 0;

  DistArrayId tokens_ = kInvalidDistArrayId;
  DistArrayId doc_topic_ = kInvalidDistArrayId;
  DistArrayId word_topic_ = kInvalidDistArrayId;
  DistArrayId topic_sum_ = kInvalidDistArrayId;
  i32 train_loop_ = -1;
  i32 eval_loop_ = -1;
  int loglik_acc_ = -1;
  std::shared_ptr<std::atomic<i32>> pass_;  // seeds per-iteration Gibbs RNG
};

// Serial collapsed Gibbs reference (gold-standard convergence).
class SerialLda {
 public:
  SerialLda(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab,
            const LdaConfig& config);

  void RunPass();
  f64 EvalLogLikelihood() const;

 private:
  struct Token {
    i64 doc;
    i64 word;
    int topic;
  };

  LdaConfig config_;
  i64 num_docs_;
  i64 vocab_;
  std::vector<Token> tokens_;
  std::vector<i32> doc_topic_;   // num_docs x K
  std::vector<i32> word_topic_;  // vocab x K
  std::vector<i32> topic_sum_;   // K
  int pass_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_APPS_LDA_H_
