// Sparse Logistic Regression with SGD (paper Table 2: "1D (data
// parallelism)", Sec. 6.3 bulk prefetching).
//
// Each sample reads and updates the weights of its nonzero features —
// data-dependent subscripts that static analysis cannot capture, so reads
// go to server-hosted weights via synthesized bulk prefetching and writes
// go through a DistArray Buffer (pure data parallelism). With AdaRev, the
// buffer's apply UDF performs the delay-compensated adaptive step.
//
// Sample encoding (value span of the 1-D samples array):
//   [label, n, id_0, val_0, id_1, val_1, ...]  padded to 2 + 2*max_nnz.
#ifndef ORION_SRC_APPS_SLR_H_
#define ORION_SRC_APPS_SLR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/apps/datagen.h"
#include "src/runtime/driver.h"

namespace orion {

struct SlrConfig {
  f32 step_size = 0.05f;
  f32 step_decay = 0.98f;
  bool adarev = false;
  f32 adarev_alpha = 0.1f;
  int max_nnz = 64;
  // Build the loop from the statement-level IR (CompileBody): accesses are
  // extracted from the AST and the prefetch function is synthesized by
  // slicing, instead of declared accesses + kernel-replay recording.
  bool use_body_ir = false;
  ParallelForOptions loop_options;  // prefetch mode lives here

  SlrConfig() {
    // Bound buffered-write delay: data-parallel SGD with once-per-pass
    // synchronization diverges at reasonable step sizes (the effective
    // batch is the whole dataset), so SLR syncs several times per pass.
    loop_options.server_sync_rounds = 8;
  }
};

class SlrApp {
 public:
  SlrApp(Driver* driver, const SlrConfig& config);

  Status Init(const std::vector<SparseSample>& samples, i64 num_features);

  // One SGD pass; also accumulates the training log-loss of the pass.
  Status RunPass();

  // Log-loss accumulated during the last RunPass (pre-update predictions).
  f64 LastPassLogLoss() const { return last_logloss_; }

  const ParallelizationPlan& train_plan() const { return driver_->PlanOf(train_loop_); }
  DistArrayId weights() const { return weights_; }
  const LoopMetrics& last_metrics() const { return driver_->last_metrics(); }

 private:
  Driver* driver_;
  SlrConfig config_;
  i64 num_features_ = 0;
  i64 num_samples_ = 0;

  DistArrayId samples_ = kInvalidDistArrayId;
  DistArrayId weights_ = kInvalidDistArrayId;
  i32 train_loop_ = -1;
  int loss_acc_ = -1;
  f64 last_logloss_ = 0.0;
  std::shared_ptr<std::atomic<f32>> step_;
};

// Serial SGD reference.
class SerialSlr {
 public:
  SerialSlr(const std::vector<SparseSample>& samples, i64 num_features,
            const SlrConfig& config);

  // Returns the pass's mean log-loss (pre-update predictions).
  f64 RunPass();

 private:
  std::vector<SparseSample> samples_;
  SlrConfig config_;
  f32 step_;
  std::vector<f32> w_;
};

}  // namespace orion

#endif  // ORION_SRC_APPS_SLR_H_
