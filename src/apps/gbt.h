// Gradient Boosted Trees (paper Table 2: "1D").
//
// Regression trees are grown level by level; the expensive step — finding
// the best split per feature per active node — is a parallel for-loop over
// the *features* (model parallelism, as in STRADS). Access pattern:
//   - columns[f]      : the f-th feature's binned column, aligned with the
//                       feature dimension -> range-partitioned, local;
//   - node_sample[s]  : per-sample (node id, gradient), read-only in the
//                       split loop -> replicated;
//   - best_splits[f]  : per-feature best split per node, write aligned ->
//                       local.
// The driver aggregates per-feature candidates into the global best split
// per node, grows the tree, and recomputes sample assignments/gradients.
#ifndef ORION_SRC_APPS_GBT_H_
#define ORION_SRC_APPS_GBT_H_

#include <vector>

#include "src/apps/datagen.h"
#include "src/runtime/driver.h"

namespace orion {

struct GbtConfig {
  int num_trees = 20;
  int max_depth = 3;
  int num_bins = 32;
  f32 learning_rate = 0.3f;
  f32 min_gain = 1e-6f;
  ParallelForOptions loop_options;
};

struct TreeNode {
  int feature = -1;    // -1: leaf
  int bin = -1;        // split: go left if bin_value <= bin
  f32 value = 0.0f;    // leaf prediction
  int left = -1;
  int right = -1;
};

struct Tree {
  std::vector<TreeNode> nodes;  // node 0 is the root
};

class GbtApp {
 public:
  GbtApp(Driver* driver, const GbtConfig& config);

  Status Init(const std::vector<RegressionSample>& samples);

  // Fits one boosting round (one tree); returns the training MSE after it.
  StatusOr<f64> FitOneTree();

  f64 TrainMse() const;
  const std::vector<Tree>& trees() const { return trees_; }
  const ParallelizationPlan& split_plan() const { return driver_->PlanOf(split_loop_); }
  DistArrayId columns() const { return columns_; }

 private:
  void ComputeGradients();

  Driver* driver_;
  GbtConfig config_;
  i64 num_samples_ = 0;
  int num_features_ = 0;

  // Driver-resident copies used for tree growth and prediction.
  std::vector<RegressionSample> data_;
  std::vector<std::vector<u8>> bins_;        // [feature][sample] bin ids
  std::vector<std::vector<f32>> bin_edges_;  // [feature][bin] upper edges
  std::vector<f32> predictions_;             // running boosted prediction
  std::vector<f32> gradients_;               // residuals for the next tree
  std::vector<i32> node_of_sample_;
  std::vector<Tree> trees_;

  DistArrayId features_ = kInvalidDistArrayId;     // iteration space
  DistArrayId columns_ = kInvalidDistArrayId;      // binned feature columns
  DistArrayId node_sample_ = kInvalidDistArrayId;  // [node_id, gradient]
  DistArrayId best_splits_ = kInvalidDistArrayId;  // per-feature candidates
  i32 split_loop_ = -1;
  int max_active_nodes_ = 8;
};

}  // namespace orion

#endif  // ORION_SRC_APPS_GBT_H_
