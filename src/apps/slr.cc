#include "src/apps/slr.h"

#include "src/ir/analyze_body.h"

#include <cmath>

namespace orion {

namespace {

f64 Sigmoid(f64 x) { return 1.0 / (1.0 + std::exp(-x)); }

f64 LogLoss(f64 p, f32 label) {
  constexpr f64 kEps = 1e-12;
  return label > 0.5f ? -std::log(p + kEps) : -std::log(1.0 - p + kEps);
}

}  // namespace

SlrApp::SlrApp(Driver* driver, const SlrConfig& config)
    : driver_(driver),
      config_(config),
      step_(std::make_shared<std::atomic<f32>>(config.step_size)) {}

Status SlrApp::Init(const std::vector<SparseSample>& samples, i64 num_features) {
  // SLR models the parameter-server deployment the paper evaluates: the
  // weight vector is shared and too large to replicate per worker, so the
  // planner must place it on the server (bulk-prefetched reads).
  config_.loop_options.planner.replicate_threshold_floats = 0;
  num_features_ = num_features;
  num_samples_ = static_cast<i64>(samples.size());
  const int stride = 2 + 2 * config_.max_nnz;
  const int wdim = config_.adarev ? 3 : 1;  // [w] or [w, z, gsum]

  samples_ = driver_->CreateDistArray("samples", {num_samples_}, stride, Density::kSparse);
  weights_ = driver_->CreateDistArray("weights", {num_features}, wdim, Density::kDense);

  {
    CellStore& cells = driver_->MutableCells(samples_);
    for (i64 s = 0; s < num_samples_; ++s) {
      const auto& sample = samples[static_cast<size_t>(s)];
      f32* cell = cells.GetOrCreate(s);
      const int n = std::min<int>(static_cast<int>(sample.features.size()), config_.max_nnz);
      cell[0] = sample.label;
      cell[1] = static_cast<f32>(n);
      for (int f = 0; f < n; ++f) {
        cell[2 + 2 * f] = static_cast<f32>(sample.features[static_cast<size_t>(f)].first);
        cell[3 + 2 * f] = sample.features[static_cast<size_t>(f)].second;
      }
    }
  }

  if (config_.adarev) {
    // Update = [gradient, gsum_seen]; cell = [w, z, gsum].
    const f32 alpha = config_.adarev_alpha;
    driver_->RegisterBuffer(weights_, 2, [alpha](f32* cell, const f32* update, i32) {
      const f32 g = update[0];
      const f32 g_bwd = cell[2] - update[1];
      const f32 extra = g * g_bwd;
      const f32 z_new = cell[1] + g * g + 2.0f * (extra > 0.0f ? extra : 0.0f);
      cell[0] -= alpha / std::sqrt(1.0f + z_new) * g;
      cell[1] = z_new;
      cell[2] += g;
    });
  } else {
    driver_->RegisterBuffer(weights_, 1, MakeAddApplyFn());
  }

  loss_acc_ = driver_->CreateAccumulator();

  LoopSpec spec;
  spec.iter_space = samples_;
  spec.iter_extents = {num_samples_};
  spec.AddAccess(weights_, "weights", {Expr::Runtime("feature_id")}, /*is_write=*/false);
  spec.AddAccess(weights_, "weights", {Expr::Runtime("feature_id")}, /*is_write=*/true,
                 /*buffered=*/true);

  const bool adarev = config_.adarev;
  const int acc = loss_acc_;
  auto step = step_;
  DistArrayId weights = weights_;
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const f32 label = value[0];
    const int n = static_cast<int>(value[1]);
    // First sweep: margin (this is also what the synthesized prefetch pass
    // replays to record the weight subscripts).
    thread_local std::vector<f64> wcache;
    thread_local std::vector<f64> gseen;
    wcache.assign(static_cast<size_t>(n), 0.0);
    gseen.assign(static_cast<size_t>(n), 0.0);
    f64 margin = 0.0;
    for (int f = 0; f < n; ++f) {
      const i64 id[1] = {static_cast<i64>(value[2 + 2 * f])};
      const f32* w = ctx.Read(weights, id);
      wcache[static_cast<size_t>(f)] = w[0];
      if (adarev) {
        gseen[static_cast<size_t>(f)] = w[2];
      }
      margin += static_cast<f64>(w[0]) * static_cast<f64>(value[3 + 2 * f]);
    }
    const f64 p = Sigmoid(margin);
    ctx.AccumulatorAdd(acc, LogLoss(p, label));
    const f32 err = static_cast<f32>(p) - label;  // dL/dmargin
    const f32 eps = step->load(std::memory_order_relaxed);
    for (int f = 0; f < n; ++f) {
      const i64 id[1] = {static_cast<i64>(value[2 + 2 * f])};
      const f32 g = err * value[3 + 2 * f];
      if (adarev) {
        const f32 update[2] = {g, static_cast<f32>(gseen[static_cast<size_t>(f)])};
        ctx.BufferUpdate(weights, id, update);
      } else {
        const f32 update = -eps * g;
        ctx.BufferUpdate(weights, id, &update);
      }
    }
  };

  StatusOr<i32> loop = Status::Internal("unset");
  if (!config_.use_body_ir) {
    loop = driver_->Compile(spec, kernel, config_.loop_options);
  } else {
    // The same loop written as a statement-level program: accesses and the
    // bulk-prefetch function are derived from this AST.
    //   n = value[1]
    //   for f in 0..n-1:
    //     id = value[2 + 2f]
    //     w  = weights[id][0]           (the prefetchable read)
    //     buffer(weights)[id] <- update
    LoopBody body;
    body.num_index_dims = 1;
    body.num_vars = 4;  // 0=n, 1=f, 2=id, 3=w
    auto two_f = SExpr::Mul(SExpr::Const(2), SExpr::Var(1));
    std::vector<StmtPtr> inner;
    inner.push_back(
        Stmt::Assign(2, SExpr::IterValueAt(SExpr::Add(SExpr::Const(2), two_f))));
    inner.push_back(
        Stmt::Assign(3, SExpr::ArrayElem(weights_, {SExpr::Var(2)}, SExpr::Const(0))));
    inner.push_back(
        Stmt::BufferUpdate(weights_, "weights", {SExpr::Var(2)}, {SExpr::Var(3)}));
    body.stmts.push_back(Stmt::Assign(0, SExpr::IterValueAt(SExpr::Const(1))));
    body.stmts.push_back(Stmt::For(1, SExpr::Var(0), std::move(inner)));
    loop = driver_->CompileBody(samples_, {num_samples_}, /*ordered=*/false, body, kernel,
                                config_.loop_options);
  }
  ORION_RETURN_IF_ERROR(loop.status());
  train_loop_ = *loop;
  return Status::Ok();
}

Status SlrApp::RunPass() {
  driver_->ResetAccumulator(loss_acc_);
  ORION_RETURN_IF_ERROR(driver_->Execute(train_loop_));
  last_logloss_ = driver_->AccumulatorValue(loss_acc_) / static_cast<f64>(num_samples_);
  step_->store(step_->load() * config_.step_decay);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Serial reference

SerialSlr::SerialSlr(const std::vector<SparseSample>& samples, i64 num_features,
                     const SlrConfig& config)
    : samples_(samples), config_(config), step_(config.step_size) {
  w_.assign(static_cast<size_t>(num_features), 0.0f);
}

f64 SerialSlr::RunPass() {
  f64 loss = 0.0;
  for (const auto& s : samples_) {
    f64 margin = 0.0;
    for (const auto& [id, v] : s.features) {
      margin += static_cast<f64>(w_[static_cast<size_t>(id)]) * static_cast<f64>(v);
    }
    const f64 p = Sigmoid(margin);
    loss += LogLoss(p, s.label);
    const f32 err = static_cast<f32>(p) - s.label;
    for (const auto& [id, v] : s.features) {
      w_[static_cast<size_t>(id)] -= step_ * err * v;
    }
  }
  step_ *= config_.step_decay;
  return loss / static_cast<f64>(samples_.size());
}

}  // namespace orion
