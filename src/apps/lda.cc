#include "src/apps/lda.h"

#include <cmath>

namespace orion {

namespace {

// Deterministic per-(cell, pass) RNG so Gibbs sweeps are reproducible
// regardless of worker scheduling.
Rng CellRng(i64 key, i32 pass) {
  return Rng(static_cast<u64>(key) * 0x9e3779b97f4a7c15ULL + static_cast<u64>(pass) + 1);
}

// Samples a topic from unnormalized weights.
int SampleTopic(const std::vector<f64>& weights, f64 total, Rng* rng) {
  f64 u = rng->NextDouble() * total;
  for (size_t k = 0; k < weights.size(); ++k) {
    u -= weights[k];
    if (u <= 0.0) {
      return static_cast<int>(k);
    }
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace

LdaApp::LdaApp(Driver* driver, const LdaConfig& config)
    : driver_(driver), config_(config), pass_(std::make_shared<std::atomic<i32>>(0)) {}

Status LdaApp::Init(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab) {
  num_docs_ = num_docs;
  vocab_ = vocab;
  const int k = config_.num_topics;
  const int maxo = config_.max_occurrences;

  tokens_ = driver_->CreateDistArray("tokens", {num_docs, vocab}, 1 + maxo, Density::kSparse);
  doc_topic_ = driver_->CreateDistArray("doc_topic", {num_docs}, k, Density::kDense);
  word_topic_ = driver_->CreateDistArray("word_topic", {vocab}, k, Density::kDense);
  topic_sum_ = driver_->CreateDistArray("topic_sum", {1}, k, Density::kDense);
  driver_->RegisterBuffer(topic_sum_, k, MakeAddApplyFn());

  // Initialize assignments uniformly at random and the count matrices
  // consistently.
  {
    CellStore& cells = driver_->MutableCells(tokens_);
    CellStore& dt = driver_->MutableCells(doc_topic_);
    CellStore& wt = driver_->MutableCells(word_topic_);
    CellStore& ts = driver_->MutableCells(topic_sum_);
    Rng rng(4242);
    for (const auto& t : tokens) {
      const i64 key = t.doc * vocab + t.word;
      f32* cell = cells.GetOrCreate(key);
      const int count = std::min<int>(t.count, maxo);
      cell[0] = static_cast<f32>(count);
      for (int o = 0; o < count; ++o) {
        const int topic = static_cast<int>(rng.NextBounded(static_cast<u64>(k)));
        cell[1 + o] = static_cast<f32>(topic);
        dt.GetOrCreate(t.doc)[topic] += 1.0f;
        wt.GetOrCreate(t.word)[topic] += 1.0f;
        ts.GetOrCreate(0)[topic] += 1.0f;
        ++total_tokens_;
      }
    }
  }

  loglik_acc_ = driver_->CreateAccumulator();

  LoopSpec train;
  train.iter_space = tokens_;
  train.iter_extents = {num_docs, vocab};
  train.ordered = config_.loop_options.ordered;
  train.AddAccess(doc_topic_, "doc_topic", {Expr::LoopIndex(0)}, /*is_write=*/false);
  train.AddAccess(doc_topic_, "doc_topic", {Expr::LoopIndex(0)}, /*is_write=*/true);
  train.AddAccess(word_topic_, "word_topic", {Expr::LoopIndex(1)}, /*is_write=*/false);
  train.AddAccess(word_topic_, "word_topic", {Expr::LoopIndex(1)}, /*is_write=*/true);
  train.AddAccess(topic_sum_, "topic_sum", {Expr::Const(0)}, /*is_write=*/false);
  train.AddAccess(topic_sum_, "topic_sum", {Expr::Const(0)}, /*is_write=*/true,
                  /*buffered=*/true);

  const f32 alpha = config_.alpha;
  const f32 beta = config_.beta;
  const f64 vbeta = static_cast<f64>(vocab) * beta;
  auto pass = pass_;
  DistArrayId doc_topic = doc_topic_;
  DistArrayId word_topic = word_topic_;
  DistArrayId topic_sum = topic_sum_;

  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    // `value` is this cell's span in the local iteration partition; Gibbs
    // mutates the stored assignments in place.
    f32* cell = const_cast<f32*>(value);
    const int count = static_cast<int>(cell[0]);
    if (count == 0) {
      return;
    }
    const i64 d = idx[0];
    const i64 w = idx[1];
    const i64 key_d[1] = {d};
    const i64 key_w[1] = {w};
    const i64 key_0[1] = {0};
    Rng rng = CellRng(d * 1000003 + w, pass->load(std::memory_order_relaxed));

    thread_local std::vector<f64> weights;
    thread_local std::vector<f32> delta;
    weights.assign(static_cast<size_t>(k), 0.0);
    delta.assign(static_cast<size_t>(k), 0.0f);

    f32* dt = ctx.Mutate(doc_topic, key_d);
    f32* wt = ctx.Mutate(word_topic, key_w);
    for (int o = 0; o < count; ++o) {
      const int old = static_cast<int>(cell[1 + o]);
      dt[old] -= 1.0f;
      wt[old] -= 1.0f;
      const f32* ts = ctx.Read(topic_sum, key_0);
      f64 total = 0.0;
      for (int t = 0; t < k; ++t) {
        const f64 nk = static_cast<f64>(ts[t]) - (t == old ? 1.0 : 0.0);
        const f64 p = (static_cast<f64>(dt[t]) + alpha) * (static_cast<f64>(wt[t]) + beta) /
                      (nk + vbeta);
        weights[static_cast<size_t>(t)] = p > 0.0 ? p : 0.0;
        total += weights[static_cast<size_t>(t)];
      }
      const int fresh = total > 0.0 ? SampleTopic(weights, total, &rng) : old;
      dt[fresh] += 1.0f;
      wt[fresh] += 1.0f;
      delta[static_cast<size_t>(old)] -= 1.0f;
      delta[static_cast<size_t>(fresh)] += 1.0f;
      cell[1 + o] = static_cast<f32>(fresh);
    }
    ctx.BufferUpdate(topic_sum, key_0, delta.data());
  };

  auto train_loop = driver_->Compile(train, kernel, config_.loop_options);
  ORION_RETURN_IF_ERROR(train_loop.status());
  train_loop_ = *train_loop;

  // ---- Evaluation: per-token predictive log-likelihood ----
  LoopSpec eval;
  eval.iter_space = tokens_;
  eval.iter_extents = {num_docs, vocab};
  eval.ordered = config_.loop_options.ordered;
  eval.AddAccess(doc_topic_, "doc_topic", {Expr::LoopIndex(0)}, /*is_write=*/false);
  eval.AddAccess(word_topic_, "word_topic", {Expr::LoopIndex(1)}, /*is_write=*/false);
  eval.AddAccess(topic_sum_, "topic_sum", {Expr::Const(0)}, /*is_write=*/false);

  const int acc = loglik_acc_;
  const f64 kalpha = static_cast<f64>(k) * alpha;
  LoopKernel eval_kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const int count = static_cast<int>(value[0]);
    if (count == 0) {
      return;
    }
    const i64 key_d[1] = {idx[0]};
    const i64 key_w[1] = {idx[1]};
    const i64 key_0[1] = {0};
    const f32* dt = ctx.Read(doc_topic, key_d);
    const f32* wt = ctx.Read(word_topic, key_w);
    const f32* ts = ctx.Read(topic_sum, key_0);
    f64 nd = 0.0;
    for (int t = 0; t < k; ++t) {
      nd += static_cast<f64>(dt[t]);
    }
    f64 p = 0.0;
    for (int t = 0; t < k; ++t) {
      const f64 theta = (static_cast<f64>(dt[t]) + alpha) / (nd + kalpha);
      const f64 phi = (static_cast<f64>(wt[t]) + beta) / (static_cast<f64>(ts[t]) + vbeta);
      p += theta * phi;
    }
    if (p > 0.0) {
      ctx.AccumulatorAdd(acc, static_cast<f64>(count) * std::log(p));
    }
  };

  ParallelForOptions eval_options = config_.loop_options;
  const auto& tp = driver_->PlanOf(train_loop_);
  eval_options.planner.force_space_dim = tp.space_dim;
  eval_options.planner.force_time_dim = tp.time_dim;
  eval_options.planner.prefer_2d = tp.form != ParallelForm::k1D;
  auto eval_loop = driver_->Compile(eval, eval_kernel, eval_options);
  ORION_RETURN_IF_ERROR(eval_loop.status());
  eval_loop_ = *eval_loop;
  return Status::Ok();
}

Status LdaApp::RunPass() {
  pass_->fetch_add(1);
  return driver_->Execute(train_loop_);
}

StatusOr<f64> LdaApp::EvalLogLikelihood() {
  driver_->ResetAccumulator(loglik_acc_);
  ORION_RETURN_IF_ERROR(driver_->Execute(eval_loop_));
  return driver_->AccumulatorValue(loglik_acc_) / static_cast<f64>(total_tokens_);
}

// ---------------------------------------------------------------------------
// Serial reference

SerialLda::SerialLda(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab,
                     const LdaConfig& config)
    : config_(config), num_docs_(num_docs), vocab_(vocab) {
  const int k = config.num_topics;
  doc_topic_.assign(static_cast<size_t>(num_docs * k), 0);
  word_topic_.assign(static_cast<size_t>(vocab * k), 0);
  topic_sum_.assign(static_cast<size_t>(k), 0);
  Rng rng(4242);
  for (const auto& t : tokens) {
    const int count = std::min<int>(t.count, config.max_occurrences);
    for (int o = 0; o < count; ++o) {
      const int topic = static_cast<int>(rng.NextBounded(static_cast<u64>(k)));
      tokens_.push_back({t.doc, t.word, topic});
      doc_topic_[static_cast<size_t>(t.doc * k + topic)] += 1;
      word_topic_[static_cast<size_t>(t.word * k + topic)] += 1;
      topic_sum_[static_cast<size_t>(topic)] += 1;
    }
  }
}

void SerialLda::RunPass() {
  const int k = config_.num_topics;
  const f64 alpha = config_.alpha;
  const f64 beta = config_.beta;
  const f64 vbeta = static_cast<f64>(vocab_) * beta;
  ++pass_;
  Rng rng(static_cast<u64>(pass_) * 777 + 5);
  std::vector<f64> weights(static_cast<size_t>(k));
  for (auto& t : tokens_) {
    i32* dt = &doc_topic_[static_cast<size_t>(t.doc * k)];
    i32* wt = &word_topic_[static_cast<size_t>(t.word * k)];
    dt[t.topic] -= 1;
    wt[t.topic] -= 1;
    topic_sum_[static_cast<size_t>(t.topic)] -= 1;
    f64 total = 0.0;
    for (int x = 0; x < k; ++x) {
      const f64 p = (static_cast<f64>(dt[x]) + alpha) * (static_cast<f64>(wt[x]) + beta) /
                    (static_cast<f64>(topic_sum_[static_cast<size_t>(x)]) + vbeta);
      weights[static_cast<size_t>(x)] = p > 0.0 ? p : 0.0;
      total += weights[static_cast<size_t>(x)];
    }
    const int fresh = total > 0.0 ? SampleTopic(weights, total, &rng) : t.topic;
    dt[fresh] += 1;
    wt[fresh] += 1;
    topic_sum_[static_cast<size_t>(fresh)] += 1;
    t.topic = fresh;
  }
}

f64 SerialLda::EvalLogLikelihood() const {
  const int k = config_.num_topics;
  const f64 alpha = config_.alpha;
  const f64 beta = config_.beta;
  const f64 vbeta = static_cast<f64>(vocab_) * beta;
  const f64 kalpha = static_cast<f64>(k) * alpha;
  std::vector<f64> doc_len(static_cast<size_t>(num_docs_), 0.0);
  for (i64 d = 0; d < num_docs_; ++d) {
    for (int x = 0; x < k; ++x) {
      doc_len[static_cast<size_t>(d)] +=
          static_cast<f64>(doc_topic_[static_cast<size_t>(d * k + x)]);
    }
  }
  f64 ll = 0.0;
  for (const auto& t : tokens_) {
    f64 p = 0.0;
    for (int x = 0; x < k; ++x) {
      const f64 theta = (static_cast<f64>(doc_topic_[static_cast<size_t>(t.doc * k + x)]) +
                         alpha) /
                        (doc_len[static_cast<size_t>(t.doc)] + kalpha);
      const f64 phi = (static_cast<f64>(word_topic_[static_cast<size_t>(t.word * k + x)]) +
                       beta) /
                      (static_cast<f64>(topic_sum_[static_cast<size_t>(x)]) + vbeta);
      p += theta * phi;
    }
    if (p > 0.0) {
      ll += std::log(p);
    }
  }
  return ll / static_cast<f64>(tokens_.size());
}

}  // namespace orion
