// Synthetic dataset generators.
//
// The paper evaluates on Netflix (100M ratings), NYTimes / ClueWeb corpora
// and KDD2010 sparse features; none of those ship with this repo, so each
// generator reproduces the *properties* the experiments exercise:
//   - ratings: planted low-rank structure + noise, power-law row/column
//     popularity (so partitions skew without histogram balancing);
//   - corpus: documents drawn from planted topic mixtures with Zipfian
//     word frequencies (so LDA has real topic structure to recover);
//   - sparse LR: sparse features with planted ground-truth weights (so the
//     loss curve separates good and bad parallelizations);
//   - regression: dense tabular features with a planted piecewise response
//     for gradient-boosted trees.
#ifndef ORION_SRC_APPS_DATAGEN_H_
#define ORION_SRC_APPS_DATAGEN_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace orion {

// ---- Ratings (matrix factorization) ----

struct RatingsConfig {
  i64 rows = 2000;       // users
  i64 cols = 1500;       // items
  i64 nnz = 100000;      // rating count (distinct cells; duplicates dropped)
  int true_rank = 8;     // planted factor rank
  f32 noise = 0.1f;      // observation noise stddev
  f64 zipf_alpha = 0.6;  // popularity skew for rows/cols (0 = uniform)
  u64 seed = 42;
};

struct RatingEntry {
  i64 row;
  i64 col;
  f32 value;
};

std::vector<RatingEntry> GenerateRatings(const RatingsConfig& config);

// ---- Corpus (LDA) ----

struct CorpusConfig {
  i64 num_docs = 2000;
  i64 vocab = 4000;
  int true_topics = 20;
  int doc_length = 80;    // tokens per document (mean)
  f64 zipf_alpha = 0.8;   // word skew inside a topic
  u64 seed = 43;
};

// One (doc, word) cell: the token count.
struct TokenEntry {
  i64 doc;
  i64 word;
  i32 count;
};

std::vector<TokenEntry> GenerateCorpus(const CorpusConfig& config);

// ---- Sparse logistic regression ----

struct SparseLrConfig {
  i64 num_samples = 20000;
  i64 num_features = 50000;
  int nnz_per_sample = 30;
  f64 zipf_alpha = 0.7;  // feature popularity skew
  u64 seed = 44;
};

struct SparseSample {
  f32 label;  // 0 or 1
  std::vector<std::pair<i64, f32>> features;
};

std::vector<SparseSample> GenerateSparseLr(const SparseLrConfig& config);

// ---- Dense regression (gradient boosted trees) ----

struct RegressionConfig {
  i64 num_samples = 8000;
  int num_features = 16;
  f32 noise = 0.1f;
  u64 seed = 45;
};

struct RegressionSample {
  f32 target;
  std::vector<f32> features;
};

std::vector<RegressionSample> GenerateRegression(const RegressionConfig& config);

}  // namespace orion

#endif  // ORION_SRC_APPS_DATAGEN_H_
