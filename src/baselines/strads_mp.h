// STRADS-style manual model parallelism (paper Secs. 2.2, 6.4, Fig. 11).
//
// The programmer hand-derives the stratified schedule Orion finds
// automatically: ratings are blocked (worker-row x column-stratum), strata
// rotate across workers, and no two concurrent blocks share a row of W or a
// column of H — a serializable execution with shared-memory arrays and no
// runtime layering (this is the "manually optimized" comparison point; its
// per-iteration convergence should match Orion's, with somewhat higher raw
// throughput).
#ifndef ORION_SRC_BASELINES_STRADS_MP_H_
#define ORION_SRC_BASELINES_STRADS_MP_H_

#include <memory>
#include <vector>

#include "src/apps/datagen.h"
#include "src/baselines/mf_common.h"
#include "src/common/thread_pool.h"

namespace orion {

struct StradsConfig {
  int num_workers = 4;
  f32 step_size = 0.02f;
  f32 step_decay = 0.99f;
  bool adarev = false;
  f32 adarev_alpha = 0.08f;
};

class StradsMf {
 public:
  StradsMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols, int rank,
           const StradsConfig& config);
  ~StradsMf();

  void RunPass();
  f64 EvalLoss() const;
  // Critical-path compute time of the last pass: sum over strata of the
  // slowest block in the stratum (each stratum ends with a barrier).
  double last_pass_compute_max() const { return last_pass_compute_max_; }

 private:
  std::vector<RatingEntry> entries_;
  i64 rows_;
  i64 cols_;
  int rank_;
  StradsConfig config_;
  f32 step_;

  // blocks_[worker][stratum] = entries in that block.
  std::vector<std::vector<std::vector<RatingEntry>>> blocks_;
  std::vector<i64> row_split_;  // worker row ranges
  std::vector<i64> col_split_;  // stratum column ranges

  std::vector<f32> w_;
  std::vector<f32> h_;
  std::vector<f32> w_state_;  // AdaRev [z, gsum] interleaved
  std::vector<f32> h_state_;
  std::unique_ptr<ThreadPool> pool_;
  double last_pass_compute_max_ = 0.0;
};

// Manual model-parallel LDA: documents partitioned over workers, vocabulary
// blocked into strata that rotate; topic totals merged once per stratum.
class StradsLda {
 public:
  StradsLda(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab, int num_topics,
            const StradsConfig& config);
  ~StradsLda();

  void RunPass();
  f64 EvalLogLikelihood() const;
  double last_pass_compute_max() const { return last_pass_compute_max_; }

 private:
  struct Token {
    i64 doc;
    i64 word;
    int topic;
  };

  i64 num_docs_;
  i64 vocab_;
  int k_;
  StradsConfig config_;
  int pass_ = 0;
  f32 alpha_ = 0.5f;
  f32 beta_ = 0.1f;
  i64 total_tokens_ = 0;

  // tokens_[worker][stratum].
  std::vector<std::vector<std::vector<Token>>> tokens_;
  std::vector<i32> doc_topic_;
  std::vector<i32> word_topic_;
  std::vector<i32> topic_sum_;
  std::unique_ptr<ThreadPool> pool_;
  double last_pass_compute_max_ = 0.0;
};

}  // namespace orion

#endif  // ORION_SRC_BASELINES_STRADS_MP_H_
