// Bösen-style data-parallel parameter server baseline (paper Sec. 6.4).
//
// Workers hold random partitions of the training data and a *snapshot* of
// the parameters taken at synchronization points. Under plain BSP, updates
// accumulate locally and are applied to the server table once per pass —
// high throughput, heavily violated dependences, slow per-pass convergence.
//
// Managed communication (CM) spends a configurable bandwidth budget during
// the pass: at fixed intervals each worker flushes its largest-magnitude
// pending updates (up to the per-interval byte budget) and refreshes the
// corresponding parameter values — trading network traffic for freshness,
// exactly the Bösen mechanism the paper compares against (Figs. 10 and 12).
#ifndef ORION_SRC_BASELINES_BOSEN_PS_H_
#define ORION_SRC_BASELINES_BOSEN_PS_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/apps/datagen.h"
#include "src/baselines/mf_common.h"
#include "src/common/thread_pool.h"

namespace orion {

struct BosenConfig {
  int num_workers = 4;
  // Data parallelism sums concurrent workers' colliding updates at each
  // sync, so it needs a much smaller step than serial/model-parallel SGD
  // at the same scale (part of the paper's data-parallelism critique).
  f32 step_size = 0.002f;
  f32 step_decay = 0.99f;
  bool adarev = false;
  f32 adarev_alpha = 0.08f;

  // Managed communication.
  bool managed_comm = false;
  int comm_intervals_per_pass = 8;        // how often CM flushes
  double bandwidth_budget_mbps = 1600.0;  // per-worker budget (paper setup)
  double assumed_pass_seconds = 1.0;      // converts budget into bytes/pass

  u64 seed = 77;
};

class BosenMf {
 public:
  BosenMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols, int rank,
          const BosenConfig& config);
  ~BosenMf();

  void RunPass();
  f64 EvalLoss() const;

  // Bytes "sent over the network" (updates flushed + values refreshed) since
  // construction.
  u64 bytes_communicated() const { return bytes_communicated_; }
  u64 last_pass_bytes() const { return last_pass_bytes_; }
  // Longest single-worker compute time of the last pass (the critical path
  // on a real cluster; workers here timeshare the host).
  double last_pass_compute_max() const { return last_pass_compute_max_; }

 private:
  struct Shard;  // per-worker state

  void FlushAndRefresh(Shard* shard, size_t budget_entries);

  std::vector<RatingEntry> entries_;
  i64 rows_;
  i64 cols_;
  int rank_;
  BosenConfig config_;
  f32 step_;

  // Server table (authoritative). AdaRev keeps z and gsum alongside w.
  std::vector<f32> w_;
  std::vector<f32> w_z_;
  std::vector<f32> w_gsum_;
  std::vector<f32> h_;
  std::vector<f32> h_z_;
  std::vector<f32> h_gsum_;
  std::vector<std::mutex> locks_;  // striped

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  u64 bytes_communicated_ = 0;
  u64 last_pass_bytes_ = 0;
  double last_pass_compute_max_ = 0.0;
};

// Data-parallel collapsed-Gibbs LDA on the same parameter-server skeleton.
class BosenLda {
 public:
  BosenLda(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab, int num_topics,
           const BosenConfig& config);
  ~BosenLda();

  void RunPass();
  f64 EvalLogLikelihood() const;
  u64 bytes_communicated() const { return bytes_communicated_; }
  u64 last_pass_bytes() const { return last_pass_bytes_; }
  double last_pass_compute_max() const { return last_pass_compute_max_; }

 private:
  struct Token {
    i64 doc;
    i64 word;
    int topic;
  };
  struct WorkerState;

  i64 num_docs_;
  i64 vocab_;
  int k_;
  BosenConfig config_;
  f32 alpha_ = 0.5f;
  f32 beta_ = 0.1f;
  int pass_ = 0;

  // Server table.
  std::vector<i32> word_topic_;
  std::vector<i32> topic_sum_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::unique_ptr<ThreadPool> pool_;
  u64 bytes_communicated_ = 0;
  u64 last_pass_bytes_ = 0;
  double last_pass_compute_max_ = 0.0;
  i64 total_tokens_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_BASELINES_BOSEN_PS_H_
