#include "src/baselines/strads_mp.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/timer.h"

namespace orion {

// ---------------------------------------------------------------------------
// StradsMf

StradsMf::StradsMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols, int rank,
                   const StradsConfig& config)
    : entries_(entries),
      rows_(rows),
      cols_(cols),
      rank_(rank),
      config_(config),
      step_(config.step_size) {
  w_ = InitFactorMatrix(rows, rank, 101);
  h_ = InitFactorMatrix(cols, rank, 202);
  if (config.adarev) {
    w_state_.assign(w_.size() * 2, 0.0f);
    h_state_.assign(h_.size() * 2, 0.0f);
  }

  const int p = config.num_workers;
  blocks_.assign(static_cast<size_t>(p), {});
  for (auto& row : blocks_) {
    row.assign(static_cast<size_t>(p), {});
  }
  for (const auto& e : entries_) {
    const int wr = static_cast<int>(e.row * p / rows);
    const int st = static_cast<int>(e.col * p / cols);
    blocks_[static_cast<size_t>(std::min(wr, p - 1))][static_cast<size_t>(std::min(st, p - 1))]
        .push_back(e);
  }
  pool_ = std::make_unique<ThreadPool>(p);
}

StradsMf::~StradsMf() = default;

void StradsMf::RunPass() {
  const int p = config_.num_workers;
  const f32 eps = step_;
  last_pass_compute_max_ = 0.0;
  std::vector<double> block_seconds(static_cast<size_t>(p));
  // Strata rotate: at sub-epoch t, worker j processes block (j, (j+t)%p).
  for (int t = 0; t < p; ++t) {
    for (int j = 0; j < p; ++j) {
      const int stratum = (j + t) % p;
      auto& block = blocks_[static_cast<size_t>(j)][static_cast<size_t>(stratum)];
      double* seconds = &block_seconds[static_cast<size_t>(j)];
      pool_->Submit([this, &block, eps, seconds] {
        CpuStopwatch sw;
        for (const auto& e : block) {
          f32* w = &w_[static_cast<size_t>(e.row * rank_)];
          f32* h = &h_[static_cast<size_t>(e.col * rank_)];
          f32 pred = 0.0f;
          for (int x = 0; x < rank_; ++x) {
            pred += w[x] * h[x];
          }
          const f32 diff = e.value - pred;
          for (int x = 0; x < rank_; ++x) {
            const f32 gw = -2.0f * diff * h[x];
            const f32 gh = -2.0f * diff * w[x];
            if (!config_.adarev) {
              w[x] -= eps * gw;
              h[x] -= eps * gh;
            } else {
              // Serial-equivalent AdaRev (no delay inside a block schedule).
              f32* wz = &w_state_[static_cast<size_t>((e.row * rank_ + x) * 2)];
              f32* hz = &h_state_[static_cast<size_t>((e.col * rank_ + x) * 2)];
              wz[0] += gw * gw;
              hz[0] += gh * gh;
              w[x] -= config_.adarev_alpha / std::sqrt(1.0f + wz[0]) * gw;
              h[x] -= config_.adarev_alpha / std::sqrt(1.0f + hz[0]) * gh;
            }
          }
        }
        *seconds = sw.ElapsedSeconds();
      });
    }
    pool_->Wait();  // stratum barrier
    last_pass_compute_max_ += *std::max_element(block_seconds.begin(), block_seconds.end());
  }
  step_ *= config_.step_decay;
}

f64 StradsMf::EvalLoss() const { return MfLoss(entries_, w_, h_, rank_); }

// ---------------------------------------------------------------------------
// StradsLda

StradsLda::StradsLda(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab,
                     int num_topics, const StradsConfig& config)
    : num_docs_(num_docs), vocab_(vocab), k_(num_topics), config_(config) {
  const int p = config.num_workers;
  tokens_.assign(static_cast<size_t>(p), {});
  for (auto& row : tokens_) {
    row.assign(static_cast<size_t>(p), {});
  }
  doc_topic_.assign(static_cast<size_t>(num_docs * k_), 0);
  word_topic_.assign(static_cast<size_t>(vocab * k_), 0);
  topic_sum_.assign(static_cast<size_t>(k_), 0);

  Rng rng(4242);
  for (const auto& t : tokens) {
    const int count = std::min<i32>(t.count, 7);
    const int wr = static_cast<int>(t.doc * p / num_docs);
    const int st = static_cast<int>(t.word * p / vocab);
    for (int o = 0; o < count; ++o) {
      const int topic = static_cast<int>(rng.NextBounded(static_cast<u64>(k_)));
      tokens_[static_cast<size_t>(std::min(wr, p - 1))][static_cast<size_t>(std::min(st, p - 1))]
          .push_back({t.doc, t.word, topic});
      doc_topic_[static_cast<size_t>(t.doc * k_ + topic)] += 1;
      word_topic_[static_cast<size_t>(t.word * k_ + topic)] += 1;
      topic_sum_[static_cast<size_t>(topic)] += 1;
      ++total_tokens_;
    }
  }
  pool_ = std::make_unique<ThreadPool>(p);
}

StradsLda::~StradsLda() = default;

void StradsLda::RunPass() {
  const int p = config_.num_workers;
  ++pass_;
  const f64 alpha = alpha_;
  const f64 beta = beta_;
  const f64 vbeta = static_cast<f64>(vocab_) * beta;
  last_pass_compute_max_ = 0.0;
  std::vector<double> block_seconds(static_cast<size_t>(p));

  for (int t = 0; t < p; ++t) {
    // Each worker samples with a private copy of the topic totals (the
    // non-critical dependence); deltas merge at the stratum barrier.
    std::vector<std::vector<i32>> ts_local(static_cast<size_t>(p));
    for (int j = 0; j < p; ++j) {
      ts_local[static_cast<size_t>(j)] = topic_sum_;
      const int stratum = (j + t) % p;
      auto& block = tokens_[static_cast<size_t>(j)][static_cast<size_t>(stratum)];
      auto* ts = &ts_local[static_cast<size_t>(j)];
      const u64 seed = static_cast<u64>(pass_) * 997 + static_cast<u64>(t * p + j);
      double* seconds = &block_seconds[static_cast<size_t>(j)];
      pool_->Submit([this, &block, ts, seed, alpha, beta, vbeta, seconds] {
        CpuStopwatch sw;
        Rng rng(seed);
        std::vector<f64> weights(static_cast<size_t>(k_));
        for (auto& tok : block) {
          i32* dt = &doc_topic_[static_cast<size_t>(tok.doc * k_)];
          i32* wt = &word_topic_[static_cast<size_t>(tok.word * k_)];
          dt[tok.topic] -= 1;
          wt[tok.topic] -= 1;
          (*ts)[static_cast<size_t>(tok.topic)] -= 1;
          f64 total = 0.0;
          for (int x = 0; x < k_; ++x) {
            const f64 pr = (static_cast<f64>(dt[x]) + alpha) *
                           (static_cast<f64>(wt[x]) + beta) /
                           (static_cast<f64>((*ts)[static_cast<size_t>(x)]) + vbeta);
            weights[static_cast<size_t>(x)] = pr > 0.0 ? pr : 0.0;
            total += weights[static_cast<size_t>(x)];
          }
          int fresh = tok.topic;
          if (total > 0.0) {
            f64 u = rng.NextDouble() * total;
            for (int x = 0; x < k_; ++x) {
              u -= weights[static_cast<size_t>(x)];
              if (u <= 0.0) {
                fresh = x;
                break;
              }
            }
          }
          dt[fresh] += 1;
          wt[fresh] += 1;
          (*ts)[static_cast<size_t>(fresh)] += 1;
          tok.topic = fresh;
        }
        *seconds = sw.ElapsedSeconds();
      });
    }
    pool_->Wait();
    last_pass_compute_max_ += *std::max_element(block_seconds.begin(), block_seconds.end());
    // Merge topic-total deltas.
    std::vector<i32> merged = topic_sum_;
    for (int j = 0; j < p; ++j) {
      for (int x = 0; x < k_; ++x) {
        merged[static_cast<size_t>(x)] +=
            ts_local[static_cast<size_t>(j)][static_cast<size_t>(x)] -
            topic_sum_[static_cast<size_t>(x)];
      }
    }
    topic_sum_ = std::move(merged);
  }
}

f64 StradsLda::EvalLogLikelihood() const {
  const f64 alpha = alpha_;
  const f64 beta = beta_;
  const f64 vbeta = static_cast<f64>(vocab_) * beta;
  const f64 kalpha = static_cast<f64>(k_) * alpha;
  std::vector<i64> doc_len(static_cast<size_t>(num_docs_), 0);
  for (i64 d = 0; d < num_docs_; ++d) {
    for (int x = 0; x < k_; ++x) {
      doc_len[static_cast<size_t>(d)] += doc_topic_[static_cast<size_t>(d * k_ + x)];
    }
  }
  f64 ll = 0.0;
  for (const auto& row : tokens_) {
    for (const auto& block : row) {
      for (const auto& tok : block) {
        f64 p = 0.0;
        for (int x = 0; x < k_; ++x) {
          const f64 theta =
              (static_cast<f64>(doc_topic_[static_cast<size_t>(tok.doc * k_ + x)]) + alpha) /
              (static_cast<f64>(doc_len[static_cast<size_t>(tok.doc)]) + kalpha);
          const f64 phi =
              (static_cast<f64>(word_topic_[static_cast<size_t>(tok.word * k_ + x)]) + beta) /
              (static_cast<f64>(topic_sum_[static_cast<size_t>(x)]) + vbeta);
          p += theta * phi;
        }
        if (p > 0.0) {
          ll += std::log(p);
        }
      }
    }
  }
  return ll / static_cast<f64>(total_tokens_);
}

}  // namespace orion
