#include "src/baselines/bosen_ps.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "src/common/status.h"
#include "src/common/timer.h"

namespace orion {

namespace {
constexpr size_t kLockStripes = 256;
constexpr size_t kBytesPerUpdate = 12;  // key + value on the wire
}  // namespace

// ---------------------------------------------------------------------------
// BosenMf

struct BosenMf::Shard {
  std::vector<RatingEntry> data;      // this worker's random partition
  std::vector<f32> w_snap;            // parameter snapshots
  std::vector<f32> h_snap;
  std::vector<f32> w_gsum_snap;       // gsum seen (AdaRev)
  std::vector<f32> h_gsum_snap;
  // Pending updates: accumulated gradient (times -step for plain SGD).
  std::unordered_map<i64, std::vector<f32>> w_pending;
  std::unordered_map<i64, std::vector<f32>> h_pending;
  std::atomic<u64> bytes{0};
  double seconds = 0.0;
};

BosenMf::BosenMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols, int rank,
                 const BosenConfig& config)
    : entries_(entries),
      rows_(rows),
      cols_(cols),
      rank_(rank),
      config_(config),
      step_(config.step_size),
      locks_(kLockStripes) {
  w_ = InitFactorMatrix(rows, rank, 101);
  h_ = InitFactorMatrix(cols, rank, 202);
  if (config.adarev) {
    w_z_.assign(w_.size(), 0.0f);
    w_gsum_.assign(w_.size(), 0.0f);
    h_z_.assign(h_.size(), 0.0f);
    h_gsum_.assign(h_.size(), 0.0f);
  }

  // Random data partitioning (data parallelism).
  Rng rng(config.seed);
  shards_.reserve(static_cast<size_t>(config.num_workers));
  for (int wkr = 0; wkr < config.num_workers; ++wkr) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (const auto& e : entries_) {
    shards_[rng.NextBounded(static_cast<u64>(config.num_workers))]->data.push_back(e);
  }
  pool_ = std::make_unique<ThreadPool>(config.num_workers);
}

BosenMf::~BosenMf() = default;

void BosenMf::FlushAndRefresh(Shard* shard, size_t budget_entries) {
  // Rank pending rows by update magnitude; flush the largest first until the
  // budget runs out (Bösen's magnitude-prioritized communication).
  struct Cand {
    bool is_w;
    i64 key;
    f32 mag;
  };
  std::vector<Cand> cands;
  cands.reserve(shard->w_pending.size() + shard->h_pending.size());
  for (const auto& [key, upd] : shard->w_pending) {
    f32 mag = 0.0f;
    for (int x = 0; x < rank_; ++x) {
      mag += std::fabs(upd[static_cast<size_t>(x)]);
    }
    cands.push_back({true, key, mag});
  }
  for (const auto& [key, upd] : shard->h_pending) {
    f32 mag = 0.0f;
    for (int x = 0; x < rank_; ++x) {
      mag += std::fabs(upd[static_cast<size_t>(x)]);
    }
    cands.push_back({false, key, mag});
  }
  if (budget_entries < cands.size()) {
    std::nth_element(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(budget_entries),
                     cands.end(), [](const Cand& a, const Cand& b) { return a.mag > b.mag; });
    cands.resize(budget_entries);
  }

  for (const auto& c : cands) {
    auto& pending = c.is_w ? shard->w_pending : shard->h_pending;
    auto it = pending.find(c.key);
    auto& table = c.is_w ? w_ : h_;
    auto& table_z = c.is_w ? w_z_ : h_z_;
    auto& table_gsum = c.is_w ? w_gsum_ : h_gsum_;
    auto& snap = c.is_w ? shard->w_snap : shard->h_snap;
    auto& gsum_snap = c.is_w ? shard->w_gsum_snap : shard->h_gsum_snap;
    const size_t base = static_cast<size_t>(c.key) * static_cast<size_t>(rank_);
    {
      std::lock_guard<std::mutex> lock(locks_[static_cast<size_t>(c.key) % kLockStripes]);
      for (int x = 0; x < rank_; ++x) {
        const f32 u = it->second[static_cast<size_t>(x)];
        if (!config_.adarev) {
          table[base + static_cast<size_t>(x)] += u;  // u already includes -step
        } else {
          const f32 g = u;
          const f32 g_bwd = table_gsum[base + static_cast<size_t>(x)] -
                            gsum_snap[base + static_cast<size_t>(x)];
          const f32 extra = g * g_bwd;
          const f32 z_new = table_z[base + static_cast<size_t>(x)] + g * g +
                            2.0f * (extra > 0.0f ? extra : 0.0f);
          table[base + static_cast<size_t>(x)] -=
              config_.adarev_alpha / std::sqrt(1.0f + z_new) * g;
          table_z[base + static_cast<size_t>(x)] = z_new;
          table_gsum[base + static_cast<size_t>(x)] += g;
        }
      }
      // Refresh the snapshot for this row (CM sends fresh values back).
      for (int x = 0; x < rank_; ++x) {
        snap[base + static_cast<size_t>(x)] = table[base + static_cast<size_t>(x)];
        if (config_.adarev) {
          gsum_snap[base + static_cast<size_t>(x)] = table_gsum[base + static_cast<size_t>(x)];
        }
      }
    }
    shard->bytes += 2 * kBytesPerUpdate * static_cast<u64>(rank_);  // flush + refresh
    pending.erase(it);
  }
}

void BosenMf::RunPass() {
  const u64 bytes_before = bytes_communicated_;
  // Snapshot parameters (BSP sync point).
  for (auto& shard : shards_) {
    shard->w_snap = w_;
    shard->h_snap = h_;
    if (config_.adarev) {
      shard->w_gsum_snap = w_gsum_;
      shard->h_gsum_snap = h_gsum_;
    }
    shard->bytes = 0;
  }

  // CM budget: bytes per worker per interval.
  size_t budget_entries = std::numeric_limits<size_t>::max();
  if (config_.managed_comm) {
    const double bytes_per_pass =
        config_.bandwidth_budget_mbps * 1e6 / 8.0 * config_.assumed_pass_seconds;
    budget_entries = static_cast<size_t>(
        bytes_per_pass / static_cast<double>(config_.comm_intervals_per_pass) /
        static_cast<double>(2 * kBytesPerUpdate * static_cast<u64>(rank_)));
  }

  const f32 eps = step_;
  for (size_t wkr = 0; wkr < shards_.size(); ++wkr) {
    Shard* shard = shards_[wkr].get();
    pool_->Submit([this, shard, eps, budget_entries] {
      CpuStopwatch sw;
      const size_t n = shard->data.size();
      const size_t interval =
          config_.managed_comm
              ? std::max<size_t>(1, n / static_cast<size_t>(config_.comm_intervals_per_pass))
              : n + 1;
      for (size_t i = 0; i < n; ++i) {
        const auto& e = shard->data[i];
        f32* w = &shard->w_snap[static_cast<size_t>(e.row * rank_)];
        f32* h = &shard->h_snap[static_cast<size_t>(e.col * rank_)];
        f32 pred = 0.0f;
        for (int x = 0; x < rank_; ++x) {
          pred += w[x] * h[x];
        }
        const f32 diff = e.value - pred;
        auto& wu = shard->w_pending[e.row];
        auto& hu = shard->h_pending[e.col];
        if (wu.empty()) {
          wu.assign(static_cast<size_t>(rank_), 0.0f);
        }
        if (hu.empty()) {
          hu.assign(static_cast<size_t>(rank_), 0.0f);
        }
        for (int x = 0; x < rank_; ++x) {
          const f32 gw = -2.0f * diff * h[x];
          const f32 gh = -2.0f * diff * w[x];
          if (!config_.adarev) {
            // Plain SGD: pending carries the ready-to-add delta. The worker
            // also applies it to its own snapshot (it sees its own writes).
            wu[static_cast<size_t>(x)] += -eps * gw;
            hu[static_cast<size_t>(x)] += -eps * gh;
            w[x] += -eps * gw;
            h[x] += -eps * gh;
          } else {
            wu[static_cast<size_t>(x)] += gw;
            hu[static_cast<size_t>(x)] += gh;
          }
        }
        if (config_.managed_comm && (i + 1) % interval == 0) {
          FlushAndRefresh(shard, budget_entries);
        }
      }
      // BSP sync: flush everything that remains.
      FlushAndRefresh(shard, std::numeric_limits<size_t>::max());
      shard->seconds = sw.ElapsedSeconds();
    });
  }
  pool_->Wait();
  last_pass_compute_max_ = 0.0;
  for (auto& shard : shards_) {
    bytes_communicated_ += shard->bytes;
    last_pass_compute_max_ = std::max(last_pass_compute_max_, shard->seconds);
  }
  last_pass_bytes_ = bytes_communicated_ - bytes_before;
  step_ *= config_.step_decay;
}

f64 BosenMf::EvalLoss() const { return MfLoss(entries_, w_, h_, rank_); }

// ---------------------------------------------------------------------------
// BosenLda

struct BosenLda::WorkerState {
  std::vector<Token> tokens;
  std::vector<i32> word_topic_snap;
  std::vector<i32> topic_sum_snap;
  std::unordered_map<i64, std::vector<i32>> wt_pending;
  std::vector<i32> ts_pending;
  std::vector<i32> doc_topic;  // owned exclusively (docs partitioned)
  std::atomic<u64> bytes{0};
  double seconds = 0.0;
};

BosenLda::BosenLda(const std::vector<TokenEntry>& tokens, i64 num_docs, i64 vocab,
                   int num_topics, const BosenConfig& config)
    : num_docs_(num_docs), vocab_(vocab), k_(num_topics), config_(config) {
  word_topic_.assign(static_cast<size_t>(vocab * k_), 0);
  topic_sum_.assign(static_cast<size_t>(k_), 0);

  workers_.reserve(static_cast<size_t>(config.num_workers));
  for (int w = 0; w < config.num_workers; ++w) {
    workers_.push_back(std::make_unique<WorkerState>());
    workers_.back()->doc_topic.assign(static_cast<size_t>(num_docs * k_), 0);
    workers_.back()->ts_pending.assign(static_cast<size_t>(k_), 0);
  }

  // Partition documents round-robin; initialize assignments like the apps.
  Rng rng(4242);
  for (const auto& t : tokens) {
    const int count = std::min<i32>(t.count, 7);
    for (int o = 0; o < count; ++o) {
      const int topic = static_cast<int>(rng.NextBounded(static_cast<u64>(k_)));
      WorkerState* ws =
          workers_[static_cast<size_t>(t.doc) % workers_.size()].get();
      ws->tokens.push_back({t.doc, t.word, topic});
      ws->doc_topic[static_cast<size_t>(t.doc * k_ + topic)] += 1;
      word_topic_[static_cast<size_t>(t.word * k_ + topic)] += 1;
      topic_sum_[static_cast<size_t>(topic)] += 1;
      ++total_tokens_;
    }
  }
  pool_ = std::make_unique<ThreadPool>(config.num_workers);
}

BosenLda::~BosenLda() = default;

void BosenLda::RunPass() {
  const u64 bytes_before = bytes_communicated_;
  ++pass_;
  for (auto& ws : workers_) {
    ws->word_topic_snap = word_topic_;
    ws->topic_sum_snap = topic_sum_;
    ws->bytes = 0;
  }

  size_t interval_tokens = std::numeric_limits<size_t>::max();
  if (config_.managed_comm) {
    interval_tokens = 0;  // computed per worker below
  }

  std::mutex table_mutex;
  const f64 alpha = alpha_;
  const f64 beta = beta_;
  const f64 vbeta = static_cast<f64>(vocab_) * beta;
  for (size_t w = 0; w < workers_.size(); ++w) {
    WorkerState* ws = workers_[w].get();
    const u64 seed = static_cast<u64>(pass_) * 131 + w;
    pool_->Submit([this, ws, seed, alpha, beta, vbeta, &table_mutex] {
      CpuStopwatch sw;
      Rng rng(seed);
      std::vector<f64> weights(static_cast<size_t>(k_));
      const size_t n = ws->tokens.size();
      const size_t interval =
          config_.managed_comm
              ? std::max<size_t>(1, n / static_cast<size_t>(config_.comm_intervals_per_pass))
              : n + 1;
      auto flush = [&] {
        std::lock_guard<std::mutex> lock(table_mutex);
        for (auto& [word, delta] : ws->wt_pending) {
          for (int x = 0; x < k_; ++x) {
            word_topic_[static_cast<size_t>(word * k_ + x)] += delta[static_cast<size_t>(x)];
            // Refresh snapshot.
            ws->word_topic_snap[static_cast<size_t>(word * k_ + x)] =
                word_topic_[static_cast<size_t>(word * k_ + x)];
          }
          ws->bytes += 2 * kBytesPerUpdate * static_cast<u64>(k_);
        }
        ws->wt_pending.clear();
        for (int x = 0; x < k_; ++x) {
          topic_sum_[static_cast<size_t>(x)] += ws->ts_pending[static_cast<size_t>(x)];
          ws->topic_sum_snap[static_cast<size_t>(x)] = topic_sum_[static_cast<size_t>(x)];
          ws->ts_pending[static_cast<size_t>(x)] = 0;
        }
        ws->bytes += 2 * kBytesPerUpdate * static_cast<u64>(k_);
      };
      for (size_t i = 0; i < n; ++i) {
        auto& t = ws->tokens[i];
        i32* dt = &ws->doc_topic[static_cast<size_t>(t.doc * k_)];
        i32* wt = &ws->word_topic_snap[static_cast<size_t>(t.word * k_)];
        dt[t.topic] -= 1;
        wt[t.topic] -= 1;
        ws->topic_sum_snap[static_cast<size_t>(t.topic)] -= 1;
        auto& wt_delta = ws->wt_pending[t.word];
        if (wt_delta.empty()) {
          wt_delta.assign(static_cast<size_t>(k_), 0);
        }
        wt_delta[static_cast<size_t>(t.topic)] -= 1;
        ws->ts_pending[static_cast<size_t>(t.topic)] -= 1;

        f64 total = 0.0;
        for (int x = 0; x < k_; ++x) {
          const f64 p =
              (static_cast<f64>(dt[x]) + alpha) * (static_cast<f64>(wt[x]) + beta) /
              (static_cast<f64>(ws->topic_sum_snap[static_cast<size_t>(x)]) + vbeta);
          weights[static_cast<size_t>(x)] = p > 0.0 ? p : 0.0;
          total += weights[static_cast<size_t>(x)];
        }
        int fresh = t.topic;
        if (total > 0.0) {
          f64 u = rng.NextDouble() * total;
          for (int x = 0; x < k_; ++x) {
            u -= weights[static_cast<size_t>(x)];
            if (u <= 0.0) {
              fresh = x;
              break;
            }
          }
        }
        dt[fresh] += 1;
        wt[fresh] += 1;
        ws->topic_sum_snap[static_cast<size_t>(fresh)] += 1;
        wt_delta[static_cast<size_t>(fresh)] += 1;
        ws->ts_pending[static_cast<size_t>(fresh)] += 1;
        t.topic = fresh;
        if (config_.managed_comm && (i + 1) % interval == 0) {
          flush();
        }
      }
      flush();
      ws->seconds = sw.ElapsedSeconds();
    });
  }
  pool_->Wait();
  last_pass_compute_max_ = 0.0;
  for (auto& ws : workers_) {
    bytes_communicated_ += ws->bytes;
    last_pass_compute_max_ = std::max(last_pass_compute_max_, ws->seconds);
  }
  last_pass_bytes_ = bytes_communicated_ - bytes_before;
  (void)interval_tokens;
}

f64 BosenLda::EvalLogLikelihood() const {
  const f64 alpha = alpha_;
  const f64 beta = beta_;
  const f64 vbeta = static_cast<f64>(vocab_) * beta;
  const f64 kalpha = static_cast<f64>(k_) * alpha;

  // Merge doc-topic counts (each worker owns disjoint docs).
  std::vector<i64> doc_len(static_cast<size_t>(num_docs_), 0);
  std::vector<const WorkerState*> owner(static_cast<size_t>(num_docs_), nullptr);
  for (const auto& ws : workers_) {
    for (const auto& t : ws->tokens) {
      owner[static_cast<size_t>(t.doc)] = ws.get();
    }
  }
  for (i64 d = 0; d < num_docs_; ++d) {
    if (owner[static_cast<size_t>(d)] == nullptr) {
      continue;
    }
    for (int x = 0; x < k_; ++x) {
      doc_len[static_cast<size_t>(d)] +=
          owner[static_cast<size_t>(d)]->doc_topic[static_cast<size_t>(d * k_ + x)];
    }
  }

  f64 ll = 0.0;
  for (const auto& ws : workers_) {
    for (const auto& t : ws->tokens) {
      f64 p = 0.0;
      for (int x = 0; x < k_; ++x) {
        const f64 theta =
            (static_cast<f64>(ws->doc_topic[static_cast<size_t>(t.doc * k_ + x)]) + alpha) /
            (static_cast<f64>(doc_len[static_cast<size_t>(t.doc)]) + kalpha);
        const f64 phi =
            (static_cast<f64>(word_topic_[static_cast<size_t>(t.word * k_ + x)]) + beta) /
            (static_cast<f64>(topic_sum_[static_cast<size_t>(x)]) + vbeta);
        p += theta * phi;
      }
      if (p > 0.0) {
        ll += std::log(p);
      }
    }
  }
  return ll / static_cast<f64>(total_tokens_);
}

}  // namespace orion
