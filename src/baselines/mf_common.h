// Shared helpers for the matrix-factorization baselines.
#ifndef ORION_SRC_BASELINES_MF_COMMON_H_
#define ORION_SRC_BASELINES_MF_COMMON_H_

#include <vector>

#include "src/apps/datagen.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace orion {

// Initializes a factor matrix (rows x rank) exactly like the Orion app and
// the serial reference do, so convergence curves start from the same point.
inline std::vector<f32> InitFactorMatrix(i64 rows, int rank, u64 seed) {
  std::vector<f32> m(static_cast<size_t>(rows * rank));
  Rng rng(seed);
  for (auto& x : m) {
    x = 0.5f * static_cast<f32>(rng.NextDouble());
  }
  return m;
}

// Nonzero squared loss over the training entries.
inline f64 MfLoss(const std::vector<RatingEntry>& entries, const std::vector<f32>& w,
                  const std::vector<f32>& h, int rank) {
  f64 loss = 0.0;
  for (const auto& e : entries) {
    const f32* wr = &w[static_cast<size_t>(e.row * rank)];
    const f32* hr = &h[static_cast<size_t>(e.col * rank)];
    f32 pred = 0.0f;
    for (int k = 0; k < rank; ++k) {
      pred += wr[k] * hr[k];
    }
    const f64 d = static_cast<f64>(e.value) - static_cast<f64>(pred);
    loss += d * d;
  }
  return loss;
}

}  // namespace orion

#endif  // ORION_SRC_BASELINES_MF_COMMON_H_
