// TensorFlow-style mini-batch dataflow SGD MF (paper Sec. 6.4, Fig. 13).
//
// A TF program expresses one mini-batch's computation as a DAG: gradients
// for the whole batch are computed against the *current* parameters and
// applied only when the batch completes. That makes the effective SGD batch
// the mini-batch size — large batches converge slowly per epoch, small
// batches underutilize the parallel operators. Both effects are reproduced:
// gradients are computed batch-at-a-time with a thread pool, and a fixed
// per-batch dispatch overhead models the DAG execution cost that dominates
// small batches.
#ifndef ORION_SRC_BASELINES_TF_MINIBATCH_H_
#define ORION_SRC_BASELINES_TF_MINIBATCH_H_

#include <memory>
#include <vector>

#include "src/apps/datagen.h"
#include "src/baselines/mf_common.h"
#include "src/common/thread_pool.h"

namespace orion {

struct TfConfig {
  int num_threads = 4;
  i64 minibatch_size = 1 << 16;
  f32 step_size = 0.01f;
  f32 step_decay = 0.99f;
  // Models per-batch graph dispatch/launch overhead (seconds).
  double dispatch_overhead_s = 0.002;
};

class TfMinibatchMf {
 public:
  TfMinibatchMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols, int rank,
                const TfConfig& config);
  ~TfMinibatchMf();

  // One epoch (all mini-batches). Returns modeled execution seconds:
  // compute wall time divided across the threads a real deployment would
  // run in parallel, plus per-batch dispatch overhead.
  double RunPass();
  f64 EvalLoss() const;

 private:
  std::vector<RatingEntry> entries_;
  i64 rows_;
  i64 cols_;
  int rank_;
  TfConfig config_;
  f32 step_;

  std::vector<f32> w_;
  std::vector<f32> h_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace orion

#endif  // ORION_SRC_BASELINES_TF_MINIBATCH_H_
