#include "src/baselines/tf_minibatch.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "src/common/timer.h"

namespace orion {

TfMinibatchMf::TfMinibatchMf(const std::vector<RatingEntry>& entries, i64 rows, i64 cols,
                             int rank, const TfConfig& config)
    : entries_(entries),
      rows_(rows),
      cols_(cols),
      rank_(rank),
      config_(config),
      step_(config.step_size) {
  w_ = InitFactorMatrix(rows, rank, 101);
  h_ = InitFactorMatrix(cols, rank, 202);
  pool_ = std::make_unique<ThreadPool>(config.num_threads);
}

TfMinibatchMf::~TfMinibatchMf() = default;

double TfMinibatchMf::RunPass() {
  Stopwatch sw;
  const i64 n = static_cast<i64>(entries_.size());
  const i64 batch = std::max<i64>(1, config_.minibatch_size);
  const i64 num_batches = (n + batch - 1) / batch;
  double modeled = 0.0;

  // Per-thread gradient accumulators, merged and applied at batch end (the
  // dataflow semantics: no intra-batch updates).
  std::vector<std::unordered_map<i64, std::vector<f32>>> wgrad(
      static_cast<size_t>(config_.num_threads));
  std::vector<std::unordered_map<i64, std::vector<f32>>> hgrad(
      static_cast<size_t>(config_.num_threads));
  std::mutex slot_mutex;

  for (i64 b = 0; b < num_batches; ++b) {
    const i64 begin = b * batch;
    const i64 end = std::min(n, begin + batch);
    for (auto& g : wgrad) {
      g.clear();
    }
    for (auto& g : hgrad) {
      g.clear();
    }
    std::atomic<int> next_slot{0};
    pool_->ParallelFor(end - begin, [&](i64 lo, i64 hi) {
      int slot;
      {
        std::lock_guard<std::mutex> lock(slot_mutex);
        slot = next_slot.fetch_add(1);
      }
      auto& wg = wgrad[static_cast<size_t>(slot)];
      auto& hg = hgrad[static_cast<size_t>(slot)];
      for (i64 i = lo; i < hi; ++i) {
        const auto& e = entries_[static_cast<size_t>(begin + i)];
        const f32* w = &w_[static_cast<size_t>(e.row * rank_)];
        const f32* h = &h_[static_cast<size_t>(e.col * rank_)];
        f32 pred = 0.0f;
        for (int x = 0; x < rank_; ++x) {
          pred += w[x] * h[x];
        }
        const f32 diff = e.value - pred;
        auto& wrow = wg[e.row];
        auto& hrow = hg[e.col];
        if (wrow.empty()) {
          wrow.assign(static_cast<size_t>(rank_) + 1, 0.0f);
        }
        if (hrow.empty()) {
          hrow.assign(static_cast<size_t>(rank_) + 1, 0.0f);
        }
        for (int x = 0; x < rank_; ++x) {
          wrow[static_cast<size_t>(x)] += -2.0f * diff * h[x];
          hrow[static_cast<size_t>(x)] += -2.0f * diff * w[x];
        }
        wrow[static_cast<size_t>(rank_)] += 1.0f;  // contribution count
        hrow[static_cast<size_t>(rank_)] += 1.0f;
      }
    });
    // Apply the batch gradient. Per-row gradients are averaged over their
    // contributing entries (dataflow programs minimize the batch *mean*
    // loss), merging per-thread partials first.
    std::unordered_map<i64, std::vector<f32>> wsum;
    std::unordered_map<i64, std::vector<f32>> hsum;
    auto merge = [this](std::vector<std::unordered_map<i64, std::vector<f32>>>& parts,
                        std::unordered_map<i64, std::vector<f32>>& out) {
      for (const auto& g : parts) {
        for (const auto& [row, grad] : g) {
          auto& acc = out[row];
          if (acc.empty()) {
            acc.assign(static_cast<size_t>(rank_) + 1, 0.0f);
          }
          for (int x = 0; x <= rank_; ++x) {
            acc[static_cast<size_t>(x)] += grad[static_cast<size_t>(x)];
          }
        }
      }
    };
    merge(wgrad, wsum);
    merge(hgrad, hsum);
    for (const auto& [row, grad] : wsum) {
      f32* w = &w_[static_cast<size_t>(row * rank_)];
      const f32 cnt = std::max(1.0f, grad[static_cast<size_t>(rank_)]);
      for (int x = 0; x < rank_; ++x) {
        w[x] -= step_ * grad[static_cast<size_t>(x)] / cnt;
      }
    }
    for (const auto& [col, grad] : hsum) {
      f32* h = &h_[static_cast<size_t>(col * rank_)];
      const f32 cnt = std::max(1.0f, grad[static_cast<size_t>(rank_)]);
      for (int x = 0; x < rank_; ++x) {
        h[x] -= step_ * grad[static_cast<size_t>(x)] / cnt;
      }
    }
    modeled += config_.dispatch_overhead_s;
  }
  step_ *= config_.step_decay;
  return sw.ElapsedSeconds() / config_.num_threads + modeled;
}

f64 TfMinibatchMf::EvalLoss() const { return MfLoss(entries_, w_, h_, rank_); }

}  // namespace orion
