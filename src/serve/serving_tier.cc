#include "src/serve/serving_tier.h"

#include <algorithm>

#include "src/common/simd.h"

namespace orion {
namespace serve {

const char* LookupStatusName(LookupStatus s) {
  switch (s) {
    case LookupStatus::kOk:
      return "ok";
    case LookupStatus::kNotServing:
      return "not_serving";
    case LookupStatus::kShedQueueFull:
      return "shed_queue_full";
    case LookupStatus::kShedBytes:
      return "shed_bytes";
    case LookupStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

ServingTier::ServingTier(std::vector<ArraySpec> arrays, ServingTierOptions options)
    : options_(options) {
  ORION_CHECK(!arrays.empty()) << "serving tier needs at least one array";
  for (ArraySpec& spec : arrays) {
    ArrayState state;
    state.name = std::move(spec.name);
    state.value_dim = spec.value_dim;
    arrays_.emplace(spec.id, std::move(state));
  }
  const int nshards = std::max(1, options_.num_shards);
  shards_.reserve(static_cast<size_t>(nshards));
  for (int s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, sh = shard.get()] { WorkerLoop(sh); });
  }
}

ServingTier::~ServingTier() { Stop(); }

void ServingTier::Publish(DistArrayId id, VersionedCellStore::Snapshot snap,
                          u64 version) {
  auto it = arrays_.find(id);
  ORION_CHECK(it != arrays_.end()) << "publishing an array the tier does not serve";
  auto view = std::make_shared<VersionView>();
  view->snap = std::move(snap);
  view->version = version;
  std::shared_ptr<const VersionView> old;
  {
    std::lock_guard<std::mutex> lk(views_mu_);
    old = std::move(it->second.view);
    it->second.view = std::move(view);
    it->second.version = version;
  }
  // `old` releases here (outside the lock): if a batch still references it,
  // the last batch to drain drops the pin instead.
  old.reset();
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++stats_.versions_published;
}

void ServingTier::QuiesceForCollapse(DistArrayId id) {
  auto it = arrays_.find(id);
  if (it == arrays_.end()) {
    return;
  }
  std::shared_ptr<const VersionView> old;
  std::unique_lock<std::mutex> lk(views_mu_);
  old = std::move(it->second.view);
  it->second.view = nullptr;
  it->second.version = 0;
  // A batch that copied the view before the swap may still hold a reference
  // (and with it the version's pin). Wait for every in-flight batch: workers
  // drop their view references before decrementing the count, so once it
  // hits zero our `old` is the last reference.
  drained_cv_.wait(lk, [this] { return inflight_batches_ == 0; });
  lk.unlock();
  old.reset();  // pin released (or already was, on a worker)
}

void ServingTier::Stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->stopping = true;
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
  // Workers are gone, so no batch is in flight: drop every served version.
  std::lock_guard<std::mutex> lk(views_mu_);
  for (auto& [id, state] : arrays_) {
    (void)id;
    state.view = nullptr;
    state.version = 0;
  }
}

LookupResult ServingTier::Lookup(DistArrayId id, const i64* keys, size_t num_keys) {
  LookupResult result;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.requests;
  }
  auto it = arrays_.find(id);
  if (it == arrays_.end()) {
    result.status = LookupStatus::kNotServing;
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.not_serving;
    return result;
  }
  ArrayState& array = it->second;

  const u64 est = static_cast<u64>(num_keys) * sizeof(f32) * array.value_dim;
  // Bytes admission: reserve optimistically, back out on rejection. The
  // worker refunds after the reply is ready.
  const u64 inflight = inflight_bytes_.fetch_add(est, std::memory_order_relaxed);
  if (inflight + est > options_.max_inflight_bytes) {
    inflight_bytes_.fetch_sub(est, std::memory_order_relaxed);
    result.status = LookupStatus::kShedBytes;
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.shed_bytes;
    return result;
  }

  Pending pending;
  pending.array = &array;
  pending.keys = keys;
  pending.num_keys = num_keys;
  pending.out = &result;
  pending.enqueued = std::chrono::steady_clock::now();
  pending.est_bytes = est;

  Shard& shard =
      *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size()];
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    if (shard.stopping) {
      inflight_bytes_.fetch_sub(est, std::memory_order_relaxed);
      result.status = LookupStatus::kShutdown;
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++stats_.shutdown;
      return result;
    }
    if (static_cast<int>(shard.queue.size()) >= options_.max_queue_per_shard) {
      inflight_bytes_.fetch_sub(est, std::memory_order_relaxed);
      result.status = LookupStatus::kShedQueueFull;
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++stats_.shed_queue_full;
      return result;
    }
    shard.queue.push_back(&pending);
    shard.cv.notify_one();
  }
  pending.done.acquire();
  return result;
}

void ServingTier::WorkerLoop(Shard* shard) {
  std::vector<Pending*> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(shard->mu);
      shard->cv.wait(lk, [shard] { return shard->stopping || !shard->queue.empty(); });
      if (shard->stopping && shard->queue.empty()) {
        return;
      }
      const size_t take =
          std::min(shard->queue.size(), static_cast<size_t>(std::max(1, options_.max_batch)));
      batch.assign(shard->queue.begin(),
                   shard->queue.begin() + static_cast<long>(take));
      shard->queue.erase(shard->queue.begin(),
                         shard->queue.begin() + static_cast<long>(take));
      if (shard->stopping) {
        // Drain: complete what was queued with kShutdown, refs intact.
        lk.unlock();
        u64 refund = 0;
        for (Pending* p : batch) {
          refund += p->est_bytes;
          p->out->status = LookupStatus::kShutdown;
        }
        {
          std::lock_guard<std::mutex> slk(stats_mu_);
          stats_.shutdown += batch.size();
        }
        for (Pending* p : batch) {
          p->done.release();
        }
        inflight_bytes_.fetch_sub(refund, std::memory_order_relaxed);
        batch.clear();
        continue;
      }
    }
    ServeBatch(shard, &batch);
  }
}

void ServingTier::ServeBatch(Shard* shard, std::vector<Pending*>* batch) {
  if (options_.batch_delay_seconds_for_test > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.batch_delay_seconds_for_test));
  }
  // One view acquisition per distinct array in the batch: a shared_ptr copy
  // under a short lock, never a pin.
  std::unordered_map<ArrayState*, std::shared_ptr<const VersionView>> views;
  {
    std::lock_guard<std::mutex> lk(views_mu_);
    ++inflight_batches_;
    for (Pending* p : *batch) {
      views.try_emplace(p->array, p->array->view);
    }
  }

  u64 ok = 0, not_serving = 0, keys = 0, hits = 0, bytes = 0;
  for (Pending* p : *batch) {
    const std::shared_ptr<const VersionView>& view = views[p->array];
    LookupResult& r = *p->out;
    if (view == nullptr || !view->snap.valid()) {
      r.status = LookupStatus::kNotServing;
      ++not_serving;
      continue;
    }
    const VersionedCellStore::Snapshot& snap = view->snap;
    const i32 vdim = p->array->value_dim;
    r.values.assign(p->num_keys * static_cast<size_t>(vdim), 0.0f);
    r.hits.assign(p->num_keys, 0);
    const bool dense = snap.dense();
    for (size_t i = 0; i < p->num_keys; ++i) {
      const i64 key = p->keys[i];
      // Out-of-range client keys are a graceful miss, not a crash: the
      // snapshot's own dense accessor CHECKs bounds because runtime-internal
      // readers are never wrong, but serving faces arbitrary client input.
      if (dense && (key < snap.range_lo() || key > snap.range_hi())) {
        continue;
      }
      const f32* v = snap.Get(key);
      if (v == nullptr) {
        continue;
      }
      simd::CopyF32(r.values.data() + i * static_cast<size_t>(vdim), v,
                    static_cast<size_t>(vdim));
      r.hits[i] = 1;
      ++hits;
    }
    r.status = LookupStatus::kOk;
    r.version = view->version;
    ++ok;
    keys += p->num_keys;
    bytes += p->num_keys * sizeof(f32) * static_cast<u64>(vdim);
  }

  const auto now = std::chrono::steady_clock::now();
  u64 refund = 0;
  {
    std::lock_guard<std::mutex> lk(shard->mu);
    for (Pending* p : *batch) {
      refund += p->est_bytes;
      shard->latency.Add(std::chrono::duration<double>(now - p->enqueued).count());
    }
  }
  // Completion. After release a Pending may be destroyed by its caller.
  for (Pending* p : *batch) {
    p->done.release();
  }
  inflight_bytes_.fetch_sub(refund, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.ok += ok;
    stats_.not_serving += not_serving;
    stats_.keys_looked_up += keys;
    stats_.keys_hit += hits;
    stats_.bytes_served += bytes;
    ++stats_.batches;
    stats_.batched_requests += batch->size();
  }

  // Drop view references BEFORE decrementing the in-flight count, so a
  // quiescer that observes zero in-flight batches also observes every
  // reference (and therefore the pin) already released.
  views.clear();
  {
    std::lock_guard<std::mutex> lk(views_mu_);
    --inflight_batches_;
    if (inflight_batches_ == 0) {
      drained_cv_.notify_all();
    }
  }
  batch->clear();
}

ServingStats ServingTier::StatsSnapshot() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

WaitHistogram ServingTier::LatencySnapshot() const {
  WaitHistogram merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    merged.Merge(shard->latency);
  }
  return merged;
}

u64 ServingTier::published_version(DistArrayId id) const {
  auto it = arrays_.find(id);
  if (it == arrays_.end()) {
    return 0;
  }
  std::lock_guard<std::mutex> lk(views_mu_);
  return it->second.version;
}

int ServingTier::queue_depth() const {
  size_t depth = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    depth += shard->queue.size();
  }
  return static_cast<int>(depth);
}

}  // namespace serve
}  // namespace orion
