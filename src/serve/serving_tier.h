// Online snapshot-serving tier: a read-only, high-QPS front-end that answers
// parameter/embedding lookups (Lookup(array, keys) -> values) from pinned
// VersionedCellStore snapshots concurrently with training.
//
// Version lifecycle (pin-per-version, not pin-per-request):
//  - At every pass boundary the driver publishes each served array's current
//    version: one VersionedCellStore::PublishVersion() — two refcount bumps —
//    wrapped in an immutable VersionView the tier swaps in under a mutex.
//    Lookups never pin; a worker takes one shared_ptr copy of the view per
//    (array, batch), so snapshot isolation costs a refcount bump per batch,
//    not per request. Staleness is bounded by one pass.
//  - Training writers never block on readers: the copy-on-write store clones
//    the pages they touch while the pinned version stays immutable.
//  - Before the driver collapses a served array back to flat (MutableCells,
//    restores, the serial fallback), it calls QuiesceForCollapse(): the view
//    is dropped, in-flight batches drain, and the version's pin releases.
//    Lookups for that array answer kNotServing until the next publish.
//
// Request path: Lookup() runs admission control first — bounded per-shard
// queues and a bound on in-flight reply bytes; over either limit it sheds
// with an explicit status instead of queueing, so overload surfaces as
// backpressure to clients and never as blocking anywhere near the training
// driver. Admitted requests are enqueued to a shard worker and the caller
// waits on a per-request semaphore. Workers drain everything queued (up to
// max_batch) into one batch: one view acquisition per (array, batch), then
// per-key gathers through the SIMD copy kernels. Batches grow naturally
// under load — while a worker serves batch k, batch k+1 accumulates.
//
// Why serving cannot perturb training: the tier only reads pinned snapshots
// (writers COW around them), generates no fabric traffic, and shares no lock
// with any training-path thread. Training output is bit-for-bit identical
// with the tier on or off; tests and bench_serving_tier gate exactly that.
#ifndef ORION_SRC_SERVE_SERVING_TIER_H_
#define ORION_SRC_SERVE_SERVING_TIER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <semaphore>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/dsm/versioned_store.h"

namespace orion {
namespace serve {

enum class LookupStatus : u8 {
  kOk = 0,
  // No version published for the array (tier just started, or the driver
  // quiesced it for a collapse and has not republished yet).
  kNotServing,
  // Admission control: the chosen shard's queue is at capacity.
  kShedQueueFull,
  // Admission control: admitted-but-unanswered reply bytes over the limit.
  kShedBytes,
  // The tier is stopped.
  kShutdown,
};
const char* LookupStatusName(LookupStatus s);

struct LookupResult {
  LookupStatus status = LookupStatus::kShutdown;
  u64 version = 0;          // publish sequence of the version that answered
  std::vector<f32> values;  // num_keys * value_dim floats (zeros on miss)
  std::vector<u8> hits;     // per-key presence flag
};

struct ServingTierOptions {
  int num_shards = 2;                    // worker threads (one queue each)
  int max_queue_per_shard = 1024;        // queued lookups before shedding
  u64 max_inflight_bytes = 64ull << 20;  // admitted reply bytes at once
  int max_batch = 512;                   // lookups coalesced per traversal
  // Test seam: stalls each batch so bounded queues observably overflow in
  // shed tests. Never set on production paths.
  double batch_delay_seconds_for_test = 0.0;
};

// Cumulative counters since construction (monotone; exported verbatim).
struct ServingStats {
  u64 requests = 0;           // every Lookup() call
  u64 ok = 0;                 // answered from a published version
  u64 not_serving = 0;        // no published version at serve time
  u64 shed_queue_full = 0;    // rejected: shard queue at capacity
  u64 shed_bytes = 0;         // rejected: in-flight bytes over limit
  u64 shutdown = 0;           // completed/rejected during Stop()
  u64 keys_looked_up = 0;     // keys across ok requests
  u64 keys_hit = 0;           // keys that resolved to a cell
  u64 bytes_served = 0;       // value bytes copied to clients
  u64 batches = 0;            // worker batch traversals
  u64 batched_requests = 0;   // requests summed over batches
  u64 versions_published = 0; // Publish() calls
};

class ServingTier {
 public:
  struct ArraySpec {
    DistArrayId id = -1;
    std::string name;
    i32 value_dim = 1;
  };

  ServingTier(std::vector<ArraySpec> arrays, ServingTierOptions options);
  ~ServingTier();

  ServingTier(const ServingTier&) = delete;
  ServingTier& operator=(const ServingTier&) = delete;

  // ---- Driver-thread API ----

  // Swaps in `snap` as the array's served version. The previous version's
  // pin releases as soon as the last in-flight batch referencing it drains.
  void Publish(DistArrayId id, VersionedCellStore::Snapshot snap, u64 version);

  // Drops the array's served version and waits for every in-flight batch to
  // finish, so the caller can rely on the tier holding zero pins on the
  // array (required before VersionedCellStore::Flat() collapse). The array
  // answers kNotServing until the next Publish().
  void QuiesceForCollapse(DistArrayId id);

  // Stops the workers. Queued requests complete with kShutdown; all served
  // versions (and their pins) are released. Idempotent.
  void Stop();

  // ---- Client API (any thread) ----

  LookupResult Lookup(DistArrayId id, const i64* keys, size_t num_keys);
  LookupResult Lookup(DistArrayId id, const std::vector<i64>& keys) {
    return Lookup(id, keys.data(), keys.size());
  }

  // ---- Introspection (any thread) ----

  ServingStats StatsSnapshot() const;
  // Merged request-latency histogram (enqueue admit -> reply ready).
  WaitHistogram LatencySnapshot() const;
  // Latest published version for the array; 0 when none.
  u64 published_version(DistArrayId id) const;
  int queue_depth() const;  // queued lookups across shards (monitor probe)
  u64 inflight_bytes() const {
    return inflight_bytes_.load(std::memory_order_relaxed);
  }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  // Immutable once published; readers hold shared_ptr copies.
  struct VersionView {
    VersionedCellStore::Snapshot snap;
    u64 version = 0;
  };

  struct ArrayState {
    std::string name;
    i32 value_dim = 1;
    std::shared_ptr<const VersionView> view;  // guarded by views_mu_
    u64 version = 0;                          // guarded by views_mu_
  };

  // Lives on the calling Lookup() frame; the worker fills *out, records
  // latency, and releases `done`. After release the worker must not touch it.
  struct Pending {
    ArrayState* array = nullptr;
    const i64* keys = nullptr;
    size_t num_keys = 0;
    LookupResult* out = nullptr;
    std::chrono::steady_clock::time_point enqueued;
    u64 est_bytes = 0;
    std::binary_semaphore done{0};
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending*> queue;  // guarded by mu
    bool stopping = false;       // guarded by mu
    WaitHistogram latency;       // guarded by mu
    std::thread worker;
  };

  void WorkerLoop(Shard* shard);
  void ServeBatch(Shard* shard, std::vector<Pending*>* batch);

  const ServingTierOptions options_;
  // Key set fixed at construction; ArrayState fields follow their own guards.
  std::unordered_map<DistArrayId, ArrayState> arrays_;

  // Guards every ArrayState view/version plus the in-flight batch count.
  // Workers hold it only for pointer copies, never across a gather.
  mutable std::mutex views_mu_;
  std::condition_variable drained_cv_;
  int inflight_batches_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<u32> next_shard_{0};
  std::atomic<u64> inflight_bytes_{0};
  std::atomic<bool> stopped_{false};

  mutable std::mutex stats_mu_;
  ServingStats stats_;
};

}  // namespace serve
}  // namespace orion

#endif  // ORION_SRC_SERVE_SERVING_TIER_H_
