// Unified metrics registry: named counters, gauges, and wait histograms
// behind stable string names, with a deterministic JSON dump.
//
// The ad-hoc LoopMetrics/RuntimeMetrics structs stay as the wire/API types;
// Driver::ExportMetrics() flattens them into a registry so benches and CI
// consume one schema ("pass.wall_seconds", "net.bytes_sent", ...) instead
// of struct fields.
#ifndef ORION_SRC_COMMON_METRICS_REGISTRY_H_
#define ORION_SRC_COMMON_METRICS_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

class MetricsRegistry {
 public:
  void SetCounter(const std::string& name, u64 value);
  void AddCounter(const std::string& name, u64 delta);
  void SetGauge(const std::string& name, double value);

  // Returns the histogram registered under `name`, creating it empty on
  // first use (merge into the returned reference).
  WaitHistogram& Histogram(const std::string& name);

  // Per-pass time series: counters and gauges are last-pass snapshots;
  // AppendSeries records one point per pass under `name` so controllers and
  // heatmaps can look at the trend instead of the final value.
  void AppendSeries(const std::string& name, double value);

  u64 Counter(const std::string& name) const;        // 0 when absent
  double Gauge(const std::string& name) const;       // 0.0 when absent
  bool HasHistogram(const std::string& name) const;
  // The series registered under `name`, or nullptr when absent.
  const std::vector<double>* Series(const std::string& name) const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{counts:[...],
  //  total_seconds,max_seconds,count,p50,p90,p99}},"series":{name:[...]}}
  // — keys sorted, so the dump is byte-stable for identical contents.
  std::string ToJson() const;
  Status DumpJson(const std::string& path) const;

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, WaitHistogram> histograms_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_METRICS_REGISTRY_H_
