// Unified metrics registry: named counters, gauges, and wait histograms
// behind stable string names, with a deterministic JSON dump.
//
// The ad-hoc LoopMetrics/RuntimeMetrics structs stay as the wire/API types;
// Driver::ExportMetrics() flattens them into a registry so benches and CI
// consume one schema ("pass.wall_seconds", "net.bytes_sent", ...) instead
// of struct fields.
//
// Thread-safety: every mutator and reader takes an internal mutex, so
// appending series points or bumping counters is safe concurrently with a
// ToJson()/DumpJson() in flight (the dump renders under the lock — one
// consistent cut). The one escape hatch is Histogram(): the returned
// reference is meant for single-threaded merge loops and must not be
// mutated concurrently with a dump.
#ifndef ORION_SRC_COMMON_METRICS_REGISTRY_H_
#define ORION_SRC_COMMON_METRICS_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& other);
  MetricsRegistry& operator=(const MetricsRegistry& other);

  void SetCounter(const std::string& name, u64 value);
  void AddCounter(const std::string& name, u64 delta);
  void SetGauge(const std::string& name, double value);

  // Returns the histogram registered under `name`, creating it empty on
  // first use (merge into the returned reference). The reference escapes
  // the registry lock: do not mutate it concurrently with a dump.
  WaitHistogram& Histogram(const std::string& name);

  // Per-pass time series: counters and gauges are last-pass snapshots;
  // AppendSeries records one point per pass under `name` so controllers and
  // heatmaps can look at the trend instead of the final value.
  void AppendSeries(const std::string& name, double value);

  u64 Counter(const std::string& name) const;        // 0 when absent
  double Gauge(const std::string& name) const;       // 0.0 when absent
  bool HasHistogram(const std::string& name) const;
  // Copy of the series registered under `name` (empty when absent).
  std::vector<double> SeriesCopy(const std::string& name) const;
  // Back-compat pointer form; invalidated by the next mutation. Prefer
  // SeriesCopy for anything that outlives the calling statement.
  const std::vector<double>* Series(const std::string& name) const;

  // Consistent snapshots of each section (for exposition renderers that
  // iterate instead of probing by name).
  std::map<std::string, u64> CountersSnapshot() const;
  std::map<std::string, double> GaugesSnapshot() const;
  std::map<std::string, WaitHistogram> HistogramsSnapshot() const;
  std::map<std::string, std::vector<double>> SeriesSnapshot() const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{counts:[...],
  //  total_seconds,max_seconds,count,p50,p90,p99}},"series":{name:[...]}}
  // — keys sorted, so the dump is byte-stable for identical contents.
  std::string ToJson() const;
  Status DumpJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, u64> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, WaitHistogram> histograms_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_METRICS_REGISTRY_H_
