// Byte-oriented serialization used by the message fabric.
//
// Everything that crosses a (simulated) machine boundary is serialized with
// these writers/readers so communication volume is measurable and the
// share-nothing worker model is honest.
#ifndef ORION_SRC_COMMON_SERDE_H_
#define ORION_SRC_COMMON_SERDE_H_

#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

// GCC 12's flow-sensitive object-size analysis misjudges the grow-then-copy
// appends below when the whole Encode chain is inlined into a caller (it
// assumes the pre-resize allocation), producing spurious -Wstringop-overflow
// and -Warray-bounds reports. Suppress only for this class.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

class ByteWriter {
 public:
  ByteWriter() = default;

  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "Put requires a trivially copyable type");
    const size_t offset = buf_.size();
    buf_.resize(offset + sizeof(T));
    std::memcpy(buf_.data() + offset, &v, sizeof(T));
  }

  void PutString(const std::string& s) {
    Put<u64>(s.size());
    const size_t offset = buf_.size();
    buf_.resize(offset + s.size());
    std::memcpy(buf_.data() + offset, s.data(), s.size());
  }

  template <typename T>
  void PutVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>, "PutVec requires a trivially copyable type");
    Put<u64>(v.size());
    const size_t offset = buf_.size();
    buf_.resize(offset + v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(buf_.data() + offset, v.data(), v.size() * sizeof(T));
    }
  }

  void PutBytes(const void* data, size_t n) {
    const size_t offset = buf_.size();
    buf_.resize(offset + n);
    if (n > 0) {
      std::memcpy(buf_.data() + offset, data, n);
    }
  }

  size_t size() const { return buf_.size(); }
  std::vector<u8> Take() { return std::move(buf_); }
  const std::vector<u8>& bytes() const { return buf_; }

 private:
  std::vector<u8> buf_;
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

class ByteReader {
 public:
  explicit ByteReader(const std::vector<u8>& buf) : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const u8* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>, "Get requires a trivially copyable type");
    ORION_CHECK(pos_ + sizeof(T) <= size_) << "ByteReader overrun";
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string GetString() {
    const u64 n = Get<u64>();
    ORION_CHECK(pos_ + n <= size_) << "ByteReader overrun";
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> GetVec() {
    static_assert(std::is_trivially_copyable_v<T>, "GetVec requires a trivially copyable type");
    const u64 n = Get<u64>();
    ORION_CHECK(pos_ + n * sizeof(T) <= size_) << "ByteReader overrun";
    std::vector<T> v(n);
    if (n > 0) {
      std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return v;
  }

  // Non-aborting variants for parsing untrusted bytes (e.g. checkpoint files
  // that may be truncated or corrupt): return nullopt instead of CHECKing.
  template <typename T>
  std::optional<T> TryGet() {
    static_assert(std::is_trivially_copyable_v<T>, "TryGet requires a trivially copyable type");
    if (pos_ + sizeof(T) > size_) {
      return std::nullopt;
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::optional<std::vector<T>> TryGetVec() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "TryGetVec requires a trivially copyable type");
    const auto n = TryGet<u64>();
    if (!n.has_value() || *n > (size_ - pos_) / sizeof(T)) {
      return std::nullopt;
    }
    std::vector<T> v(static_cast<size_t>(*n));
    if (*n > 0) {
      std::memcpy(v.data(), data_ + pos_, static_cast<size_t>(*n) * sizeof(T));
    }
    pos_ += static_cast<size_t>(*n) * sizeof(T);
    return v;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const u8* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_SERDE_H_
