// Byte-oriented serialization used by the message fabric.
//
// Everything that crosses a (simulated) machine boundary is serialized with
// these writers/readers so communication volume is measurable and the
// share-nothing worker model is honest.
#ifndef ORION_SRC_COMMON_SERDE_H_
#define ORION_SRC_COMMON_SERDE_H_

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

// Append-only encoder. Backing storage comes from the BufferPool (acquired
// lazily on the first append), growth is amortized doubling, and every
// append lands via vector::insert — no resize-then-memcpy, so appended bytes
// are written exactly once and GCC 12's object-size analysis no longer
// produces the spurious -Wstringop-overflow reports the old grow-then-copy
// pattern needed a pragma for. Encode chains that know their size call
// Reserve() up front and append without ever reallocating.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve_bytes) { Reserve(reserve_bytes); }

  // Ensures capacity for `additional` more bytes beyond the current size.
  void Reserve(size_t additional) { EnsureFor(additional); }

  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "Put requires a trivially copyable type");
    const u8* p = reinterpret_cast<const u8*>(&v);
    EnsureFor(sizeof(T));
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void PutString(const std::string& s) {
    EnsureFor(sizeof(u64) + s.size());
    Put<u64>(s.size());
    PutBytes(s.data(), s.size());
  }

  template <typename T>
  void PutVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>, "PutVec requires a trivially copyable type");
    EnsureFor(sizeof(u64) + v.size() * sizeof(T));
    Put<u64>(v.size());
    PutBytes(v.data(), v.size() * sizeof(T));
  }

  void PutBytes(const void* data, size_t n) {
    if (n == 0) {
      return;
    }
    EnsureFor(n);
    const u8* p = static_cast<const u8*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  size_t size() const { return buf_.size(); }
  std::vector<u8> Take() { return std::move(buf_); }
  const std::vector<u8>& bytes() const { return buf_; }

 private:
  // Grows capacity to hold `n` more bytes: first allocation comes from the
  // pool, later growth at least doubles so N appends cost O(N) copies.
  void EnsureFor(size_t n) {
    const size_t need = buf_.size() + n;
    if (need <= buf_.capacity()) {
      return;
    }
    if (buf_.capacity() == 0) {
      buf_ = BufferPool::Acquire(need < kInitialCapacity ? kInitialCapacity : need);
    } else {
      buf_.reserve(std::max(need, buf_.capacity() * 2));
    }
  }

  static constexpr size_t kInitialCapacity = 64;

  std::vector<u8> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<u8>& buf) : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const u8* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>, "Get requires a trivially copyable type");
    ORION_CHECK(pos_ + sizeof(T) <= size_) << "ByteReader overrun";
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string GetString() {
    const u64 n = Get<u64>();
    ORION_CHECK(pos_ + n <= size_) << "ByteReader overrun";
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> GetVec() {
    static_assert(std::is_trivially_copyable_v<T>, "GetVec requires a trivially copyable type");
    const u64 n = Get<u64>();
    ORION_CHECK(pos_ + n * sizeof(T) <= size_) << "ByteReader overrun";
    std::vector<T> v(n);
    if (n > 0) {
      std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return v;
  }

  // Non-aborting variants for parsing untrusted bytes (e.g. checkpoint files
  // that may be truncated or corrupt): return nullopt instead of CHECKing.
  template <typename T>
  std::optional<T> TryGet() {
    static_assert(std::is_trivially_copyable_v<T>, "TryGet requires a trivially copyable type");
    if (pos_ + sizeof(T) > size_) {
      return std::nullopt;
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::optional<std::vector<T>> TryGetVec() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "TryGetVec requires a trivially copyable type");
    const auto n = TryGet<u64>();
    if (!n.has_value() || *n > (size_ - pos_) / sizeof(T)) {
      return std::nullopt;
    }
    std::vector<T> v(static_cast<size_t>(*n));
    if (*n > 0) {
      std::memcpy(v.data(), data_ + pos_, static_cast<size_t>(*n) * sizeof(T));
    }
    pos_ += static_cast<size_t>(*n) * sizeof(T);
    return v;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const u8* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_SERDE_H_
