// Runtime-dispatched SIMD kernels for the data plane's byte-moving loops.
//
// The hot inner loops of the engine — snapshot gathers, deferred applies,
// page clones — all reduce to two primitives over f32 spans: copy and
// lane-wise add. These are dispatched once at startup to the widest
// instruction set the CPU supports (AVX2 > SSE2 > scalar) and can be forced
// down a level for tests and benchmarks.
//
// Determinism contract: AddF32 performs exactly one IEEE-754 addition per
// lane — dst[i] += src[i] — regardless of dispatch level. Vectorization is
// across the independent lanes of one cell (value_dim), never across fold
// order, so accumulation results are bit-for-bit identical to the scalar
// loop at every level.
#ifndef ORION_SRC_COMMON_SIMD_H_
#define ORION_SRC_COMMON_SIMD_H_

#include <cstddef>

#include "src/common/types.h"

namespace orion {
namespace simd {

enum class Level : int {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

// Widest level this CPU supports (decided once, at startup).
Level BestSupportedLevel();

// Level the kernels currently dispatch to.
Level ActiveLevel();

const char* LevelName(Level level);

// Test/bench seam: force dispatch to `level`, clamped to what the CPU
// supports. Not thread-safe against concurrent kernel calls in the sense of
// choosing which level serves them (results are identical at every level, so
// a racing call merely runs the old kernel); call from a quiesced state in
// tests anyway.
void ForceLevel(Level level);

// Restores dispatch to BestSupportedLevel().
void ResetLevel();

// dst[i] = src[i] for i in [0, n). Spans must not overlap.
void CopyF32(f32* dst, const f32* src, size_t n);

// dst[i] += src[i] for i in [0, n). One IEEE add per lane at every level.
void AddF32(f32* dst, const f32* src, size_t n);

}  // namespace simd
}  // namespace orion

#endif  // ORION_SRC_COMMON_SIMD_H_
