#include "src/common/simd.h"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define ORION_SIMD_X86 1
#include <immintrin.h>
#endif

namespace orion {
namespace simd {
namespace {

// The scalar kernels are the bit-for-bit reference the vector paths are
// tested against, and the baseline the dataplane bench compares to; keep the
// compiler from auto-vectorizing them so "scalar" means scalar.
#if defined(__GNUC__) && !defined(__clang__)
#define ORION_NO_AUTOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define ORION_NO_AUTOVEC
#endif

ORION_NO_AUTOVEC void CopyScalar(f32* dst, const f32* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = src[i];
  }
}

ORION_NO_AUTOVEC void AddScalar(f32* dst, const f32* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] += src[i];
  }
}

#if defined(ORION_SIMD_X86)

// SSE2 is part of the x86-64 baseline: no target attribute needed.
void CopySSE2(f32* dst, const f32* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128 a = _mm_loadu_ps(src + i);
    const __m128 b = _mm_loadu_ps(src + i + 4);
    const __m128 c = _mm_loadu_ps(src + i + 8);
    const __m128 d = _mm_loadu_ps(src + i + 12);
    _mm_storeu_ps(dst + i, a);
    _mm_storeu_ps(dst + i + 4, b);
    _mm_storeu_ps(dst + i + 8, c);
    _mm_storeu_ps(dst + i + 12, d);
  }
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm_loadu_ps(src + i));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
  }
}

void AddSSE2(f32* dst, const f32* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(dst + i), _mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] += src[i];
  }
}

__attribute__((target("avx2"))) void CopyAVX2(f32* dst, const f32* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256 a = _mm256_loadu_ps(src + i);
    const __m256 b = _mm256_loadu_ps(src + i + 8);
    const __m256 c = _mm256_loadu_ps(src + i + 16);
    const __m256 d = _mm256_loadu_ps(src + i + 24);
    _mm256_storeu_ps(dst + i, a);
    _mm256_storeu_ps(dst + i + 8, b);
    _mm256_storeu_ps(dst + i + 16, c);
    _mm256_storeu_ps(dst + i + 24, d);
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
  }
}

__attribute__((target("avx2"))) void AddAVX2(f32* dst, const f32* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] += src[i];
  }
}

#endif  // ORION_SIMD_X86

using KernelFn = void (*)(f32*, const f32*, size_t);

struct Kernels {
  KernelFn copy;
  KernelFn add;
};

Kernels KernelsFor(Level level) {
#if defined(ORION_SIMD_X86)
  switch (level) {
    case Level::kAVX2:
      return {CopyAVX2, AddAVX2};
    case Level::kSSE2:
      return {CopySSE2, AddSSE2};
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return {CopyScalar, AddScalar};
}

Level DetectBest() {
#if defined(ORION_SIMD_X86)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) {
    return Level::kAVX2;
  }
#endif
  return Level::kSSE2;
#else
  return Level::kScalar;
#endif
}

// Dispatch state. The function pointers are the only per-call indirection;
// ForceLevel swaps both atomically enough for tests (every level computes
// identical results, so a torn read of the pair is still correct). Constant
// scalar initializers keep calls from other static initializers safe before
// DispatchInit upgrades to the detected level.
std::atomic<KernelFn> g_copy{CopyScalar};
std::atomic<KernelFn> g_add{AddScalar};
std::atomic<int> g_level{0};

struct DispatchInit {
  DispatchInit() {
    const Level best = DetectBest();
    const Kernels k = KernelsFor(best);
    g_copy.store(k.copy, std::memory_order_relaxed);
    g_add.store(k.add, std::memory_order_relaxed);
    g_level.store(static_cast<int>(best), std::memory_order_relaxed);
  }
};
DispatchInit g_init;

}  // namespace

Level BestSupportedLevel() { return DetectBest(); }

Level ActiveLevel() {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSSE2:
      return "sse2";
    case Level::kAVX2:
      return "avx2";
  }
  return "unknown";
}

void ForceLevel(Level level) {
  const Level best = DetectBest();
  if (static_cast<int>(level) > static_cast<int>(best)) {
    level = best;
  }
  const Kernels k = KernelsFor(level);
  g_copy.store(k.copy, std::memory_order_relaxed);
  g_add.store(k.add, std::memory_order_relaxed);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetLevel() { ForceLevel(DetectBest()); }

void CopyF32(f32* dst, const f32* src, size_t n) {
  g_copy.load(std::memory_order_relaxed)(dst, src, n);
}

void AddF32(f32* dst, const f32* src, size_t n) {
  g_add.load(std::memory_order_relaxed)(dst, src, n);
}

}  // namespace simd
}  // namespace orion
