#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/status.h"

namespace orion {

ThreadPool::ThreadPool(int num_threads) {
  ORION_CHECK(num_threads > 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  tasks_.Close();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    ++pending_;
  }
  tasks_.Push(std::move(fn));
}

i64 ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  return pending_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    auto task = tasks_.Pop();
    if (!task.has_value()) {
      return;
    }
    (*task)();
    {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      --pending_;
    }
    wait_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(i64 n, const std::function<void(i64, i64)>& fn) {
  if (n <= 0) {
    return;
  }
  const i64 chunks = std::min<i64>(n, num_threads());
  const i64 chunk = (n + chunks - 1) / chunks;
  for (i64 c = 0; c < chunks; ++c) {
    const i64 begin = c * chunk;
    const i64 end = std::min(n, begin + chunk);
    if (begin >= end) {
      break;
    }
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

}  // namespace orion
