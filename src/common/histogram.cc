#include "src/common/histogram.h"

#include <algorithm>

#include "src/common/status.h"

namespace orion {

DimHistogram::DimHistogram(i64 lo, i64 hi, int num_buckets) : lo_(lo), hi_(hi) {
  ORION_CHECK(hi >= lo);
  ORION_CHECK(num_buckets > 0);
  const i64 span = hi - lo + 1;
  const i64 buckets = std::min<i64>(num_buckets, span);
  width_ = span / buckets;
  if (width_ == 0) {
    width_ = 1;
  }
  // Number of buckets actually needed to cover the span at this width.
  const i64 needed = (span + width_ - 1) / width_;
  buckets_.assign(static_cast<size_t>(needed), 0);
}

void DimHistogram::Add(i64 key, i64 count) {
  ORION_CHECK(key >= lo_ && key <= hi_) << "key" << key << "outside [" << lo_ << "," << hi_ << "]";
  size_t b = static_cast<size_t>((key - lo_) / width_);
  if (b >= buckets_.size()) {
    b = buckets_.size() - 1;
  }
  buckets_[b] += count;
  total_ += count;
}

i64 DimHistogram::BucketHi(int b) const {
  const i64 hi = lo_ + static_cast<i64>(b + 1) * width_ - 1;
  return std::min(hi, hi_);
}

std::vector<i64> DimHistogram::EqualMassSplits(int num_parts) const {
  ORION_CHECK(num_parts > 0);
  std::vector<i64> splits;
  if (num_parts == 1) {
    return splits;
  }
  if (total_ == 0) {
    // Degenerate: fall back to equal-width splits.
    const i64 span = hi_ - lo_ + 1;
    for (int p = 1; p < num_parts; ++p) {
      splits.push_back(lo_ + span * p / num_parts - 1);
    }
    return splits;
  }
  // Walk buckets accumulating mass; emit a split whenever the running mass
  // crosses the next target quantile.
  i64 cum = 0;
  int next_part = 1;
  for (size_t b = 0; b < buckets_.size() && next_part < num_parts; ++b) {
    cum += buckets_[b];
    while (next_part < num_parts &&
           cum * num_parts >= total_ * next_part) {
      splits.push_back(BucketHi(static_cast<int>(b)));
      ++next_part;
    }
  }
  // If mass ran out early (possible with heavy tail in the last bucket),
  // pad with hi_ so callers always get num_parts-1 boundaries.
  while (static_cast<int>(splits.size()) < num_parts - 1) {
    splits.push_back(hi_);
  }
  return splits;
}

}  // namespace orion
