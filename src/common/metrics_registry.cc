#include "src/common/metrics_registry.h"

#include <cstdio>
#include <sstream>

namespace orion {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::SetCounter(const std::string& name, u64 value) {
  counters_[name] = value;
}

void MetricsRegistry::AddCounter(const std::string& name, u64 delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

WaitHistogram& MetricsRegistry::Histogram(const std::string& name) {
  return histograms_[name];
}

void MetricsRegistry::AppendSeries(const std::string& name, double value) {
  series_[name].push_back(value);
}

const std::vector<double>* MetricsRegistry::Series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

u64 MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::HasHistogram(const std::string& name) const {
  return histograms_.count(name) != 0;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":" + Num(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":{\"counts\":[";
    for (int b = 0; b < WaitHistogram::kNumBuckets; ++b) {
      if (b > 0) out += ",";
      out += std::to_string(h.counts[b]);
    }
    out += "],\"total_seconds\":" + Num(h.total_seconds);
    out += ",\"max_seconds\":" + Num(h.max_seconds);
    out += ",\"count\":" + std::to_string(h.total_count());
    out += ",\"p50\":" + Num(h.ApproxPercentile(0.5));
    out += ",\"p90\":" + Num(h.ApproxPercentile(0.9));
    out += ",\"p99\":" + Num(h.ApproxPercentile(0.99));
    out += "}";
  }
  out += "},\"series\":{";
  first = true;
  for (const auto& [name, points] : series_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) out += ",";
      out += Num(points[i]);
    }
    out += "]";
  }
  out += "}}\n";
  return out;
}

Status MetricsRegistry::DumpJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to metrics file: " + path);
  }
  return Status::Ok();
}

}  // namespace orion
