#include "src/common/metrics_registry.h"

#include <cstdio>
#include <sstream>

namespace orion {

namespace {

// JSON string escaping, defensive about names that were never meant to hold
// quotes or control characters (a corrupted name must not corrupt the dump).
void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", uc);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

MetricsRegistry::MetricsRegistry(const MetricsRegistry& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  series_ = other.series_;
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) return *this;
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, WaitHistogram> histograms;
  std::map<std::string, std::vector<double>> series;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
    series = other.series_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = std::move(counters);
  gauges_ = std::move(gauges);
  histograms_ = std::move(histograms);
  series_ = std::move(series);
  return *this;
}

void MetricsRegistry::SetCounter(const std::string& name, u64 value) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = value;
}

void MetricsRegistry::AddCounter(const std::string& name, u64 delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

WaitHistogram& MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

void MetricsRegistry::AppendSeries(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  series_[name].push_back(value);
}

const std::vector<double>* MetricsRegistry::Series(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<double> MetricsRegistry::SeriesCopy(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? std::vector<double>() : it->second;
}

u64 MetricsRegistry::Counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::HasHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.count(name) != 0;
}

std::map<std::string, u64> MetricsRegistry::CountersSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> MetricsRegistry::GaugesSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::map<std::string, WaitHistogram> MetricsRegistry::HistogramsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_;
}

std::map<std::string, std::vector<double>> MetricsRegistry::SeriesSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);  // one consistent cut vs. mutators
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":" + Num(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":{\"counts\":[";
    for (int b = 0; b < WaitHistogram::kNumBuckets; ++b) {
      if (b > 0) out += ",";
      out += std::to_string(h.counts[b]);
    }
    out += "],\"total_seconds\":" + Num(h.total_seconds);
    out += ",\"max_seconds\":" + Num(h.max_seconds);
    out += ",\"count\":" + std::to_string(h.total_count());
    out += ",\"p50\":" + Num(h.ApproxPercentile(0.5));
    out += ",\"p90\":" + Num(h.ApproxPercentile(0.9));
    out += ",\"p99\":" + Num(h.ApproxPercentile(0.99));
    out += "}";
  }
  out += "},\"series\":{";
  first = true;
  for (const auto& [name, points] : series_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(name, &out);
    out += "\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) out += ",";
      out += Num(points[i]);
    }
    out += "]";
  }
  out += "}}\n";
  return out;
}

Status MetricsRegistry::DumpJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to metrics file: " + path);
  }
  return Status::Ok();
}

}  // namespace orion
