#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/common/trace.h"

namespace orion {

namespace {

// Minimum level comes from ORION_LOG_LEVEL at startup (name or digit,
// case-insensitive: debug/info/warning/error or 0..3); default kWarning.
int InitialLogLevel() {
  const char* e = std::getenv("ORION_LOG_LEVEL");
  if (e == nullptr || e[0] == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  switch (e[0]) {
    case '0':
    case 'd':
    case 'D':
      return static_cast<int>(LogLevel::kDebug);
    case '1':
    case 'i':
    case 'I':
      return static_cast<int>(LogLevel::kInfo);
    case '2':
    case 'w':
    case 'W':
      return static_cast<int>(LogLevel::kWarning);
    case '3':
    case 'e':
    case 'E':
      return static_cast<int>(LogLevel::kError);
    default:
      return static_cast<int>(LogLevel::kWarning);
  }
}

std::atomic<int> g_log_level{InitialLogLevel()};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_log_level.load()), level_(level) {
  if (enabled_) {
    // Monotonic timestamp (same epoch as the span tracer) and thread/rank
    // tag: "M" for master-side threads, "w<r>" for executor rank r, plus the
    // tracer's stable small thread id.
    const double t = static_cast<double>(trace::NowNs()) * 1e-9;
    const i32 rank = trace::ThreadRank();
    char tag[24];
    const char* label = trace::ThreadLabel();
    if (rank == kMasterRank && label != nullptr) {
      std::snprintf(tag, sizeof tag, "M|%s/t%d", label, trace::ThreadId());
    } else if (rank == kMasterRank) {
      std::snprintf(tag, sizeof tag, "M/t%d", trace::ThreadId());
    } else {
      std::snprintf(tag, sizeof tag, "w%d/t%d", rank, trace::ThreadId());
    }
    char prefix[96];
    std::snprintf(prefix, sizeof prefix, "[%s %.6f %s ", LevelName(level), t, tag);
    stream_ << prefix << Basename(file) << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace orion
