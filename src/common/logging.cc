#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace orion {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_log_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace orion
