#include "src/common/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

namespace orion {
namespace {

constexpr int kMinClassShift = 6;    // 64 B
constexpr int kMaxClassShift = 20;   // 1 MiB
constexpr int kNumClasses = kMaxClassShift - kMinClassShift + 1;
constexpr size_t kMaxClassBytes = size_t{1} << kMaxClassShift;
constexpr size_t kClassDepth = 8;  // buffers parked per class per thread

// Smallest class index whose size is >= bytes, or -1 when bytes exceeds the
// largest class.
int ClassCeil(size_t bytes) {
  if (bytes > kMaxClassBytes) {
    return -1;
  }
  for (int c = 0; c < kNumClasses; ++c) {
    if ((size_t{1} << (kMinClassShift + c)) >= bytes) {
      return c;
    }
  }
  return -1;
}

// Largest class index whose size is <= bytes, or -1 when bytes is below the
// smallest class. A released buffer parks here so any request of that class
// fits in it.
int ClassFloor(size_t bytes) {
  if (bytes < (size_t{1} << kMinClassShift)) {
    return -1;
  }
  int c = std::min(kNumClasses - 1, 63 - kMinClassShift);
  while (c > 0 && (size_t{1} << (kMinClassShift + c)) > bytes) {
    --c;
  }
  return c;
}

size_t ClassBytes(int c) { return size_t{1} << (kMinClassShift + c); }

struct StatBlock {
  std::atomic<u64> acquires{0};
  std::atomic<u64> hits{0};
  std::atomic<u64> releases{0};
  std::atomic<u64> discards{0};
  std::atomic<u64> pooled_high_water{0};
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<StatBlock>> blocks;
};

Registry& GlobalRegistry() {
  // Leaked on purpose: thread caches destruct at thread exit, possibly after
  // static destruction begins.
  static Registry* r = new Registry();
  return *r;
}

struct ThreadCache {
  std::shared_ptr<StatBlock> stats;
  std::vector<std::vector<u8>> classes[kNumClasses];
  size_t pooled_bytes = 0;

  ThreadCache() : stats(std::make_shared<StatBlock>()) {
    Registry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.blocks.push_back(stats);
  }
};

ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

std::vector<u8> BufferPool::Acquire(size_t min_capacity) {
  ThreadCache& c = Cache();
  c.stats->acquires.fetch_add(1, std::memory_order_relaxed);
  const int cls = ClassCeil(std::max(min_capacity, size_t{1} << kMinClassShift));
  if (cls >= 0 && !c.classes[cls].empty()) {
    std::vector<u8> buf = std::move(c.classes[cls].back());
    c.classes[cls].pop_back();
    c.pooled_bytes -= buf.capacity();
    buf.clear();
    c.stats->hits.fetch_add(1, std::memory_order_relaxed);
    return buf;
  }
  std::vector<u8> buf;
  buf.reserve(cls >= 0 ? ClassBytes(cls) : min_capacity);
  return buf;
}

void BufferPool::Release(std::vector<u8>&& buf) {
  if (buf.capacity() == 0) {
    return;  // nothing to park; not worth a stats entry
  }
  ThreadCache& c = Cache();
  const int cls = buf.capacity() <= kMaxClassBytes ? ClassFloor(buf.capacity()) : -1;
  if (cls < 0 || c.classes[cls].size() >= kClassDepth) {
    c.stats->discards.fetch_add(1, std::memory_order_relaxed);
    std::vector<u8>().swap(buf);
    return;
  }
  c.pooled_bytes += buf.capacity();
  buf.clear();
  c.classes[cls].push_back(std::move(buf));
  c.stats->releases.fetch_add(1, std::memory_order_relaxed);
  u64 hw = c.stats->pooled_high_water.load(std::memory_order_relaxed);
  if (c.pooled_bytes > hw) {
    c.stats->pooled_high_water.store(c.pooled_bytes, std::memory_order_relaxed);
  }
}

BufferPool::Stats BufferPool::AggregateStats() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Stats out;
  for (const auto& b : reg.blocks) {
    out.acquires += b->acquires.load(std::memory_order_relaxed);
    out.hits += b->hits.load(std::memory_order_relaxed);
    out.releases += b->releases.load(std::memory_order_relaxed);
    out.discards += b->discards.load(std::memory_order_relaxed);
    out.pooled_bytes_high_water += b->pooled_high_water.load(std::memory_order_relaxed);
  }
  return out;
}

void BufferPool::ResetStatsForTest() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& b : reg.blocks) {
    b->acquires.store(0, std::memory_order_relaxed);
    b->hits.store(0, std::memory_order_relaxed);
    b->releases.store(0, std::memory_order_relaxed);
    b->discards.store(0, std::memory_order_relaxed);
    b->pooled_high_water.store(0, std::memory_order_relaxed);
  }
}

void BufferPool::TrimThreadCacheForTest() {
  ThreadCache& c = Cache();
  for (auto& cls : c.classes) {
    cls.clear();
  }
  c.pooled_bytes = 0;
}

}  // namespace orion
