#include "src/common/status.h"

#include <atomic>

namespace orion {

namespace internal {

namespace {
std::atomic<CheckFailHook> g_check_fail_hook{nullptr};
}  // namespace

void SetCheckFailHook(CheckFailHook hook) {
  g_check_fail_hook.store(hook, std::memory_order_release);
}

void InvokeCheckFailHook(const char* message) {
  CheckFailHook hook = g_check_fail_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(message);
}

}  // namespace internal

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

}  // namespace orion
