#include "src/common/status.h"

namespace orion {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

}  // namespace orion
