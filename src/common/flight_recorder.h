// Crash-safe flight recorder: an always-on, fixed-size, lock-free ring of
// structured cluster events (pass boundaries, fault-injector decisions,
// retransmits, retire/rejoin transitions, controller decisions, checkpoint
// and restore markers). Recording costs one atomic fetch_add plus a handful
// of relaxed stores, so call sites never gate it on a flag.
//
// Two dump paths share one JSON renderer:
//   - DumpToFile(): the orderly path (Driver::DumpBlackBox) — builds the
//     post-mortem on the heap and writes it with the durable_io discipline.
//   - DumpOnFatal(): the disorderly path — installed for fatal signals and
//     ORION_CHECK failures. Renders with hand-rolled integer formatting into
//     write(2) calls on a pre-opened path: no heap, no stdio, no locks, so
//     it is safe to run from a signal handler over a corrupted process.
//
// The dump is self-contained: events + the last monitor sample (mirrored in
// by obs::Monitor) + the live-rank table (mirrored in by the Driver), so a
// post-mortem needs nothing but the one JSON file.
#ifndef ORION_SRC_COMMON_FLIGHT_RECORDER_H_
#define ORION_SRC_COMMON_FLIGHT_RECORDER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {
namespace fr {

enum class EventKind : u8 {
  kPassStart = 0,   // rank=-1, a=pass, b=loop_id
  kPassEnd,         // rank=-1, a=pass, b=completed(1)/aborted(0)
  kFaultDrop,       // rank=from, a=to, b=link_seq
  kFaultDup,        // rank=from, a=to, b=link_seq
  kFaultDelay,      // rank=from, a=to, b=link_seq
  kFaultRelease,    // rank=to,   a=held count released
  kCrashPoint,      // rank, a=pass, b=step — injector fired a CrashPoint
  kRetransmit,      // rank=to, a=pass — supervision StartPass resend
  kWorkerDead,      // rank, a=pass — supervisor declared the rank dead
  kRetire,          // rank, a=pass — two-phase retire to N-1
  kRejoin,          // rank, a=pass — rank streamed back in
  kController,      // rank=-1, a=value, detail names the decision
  kCheckpoint,      // rank=-1, a=pass, b=bytes (0 when unknown)
  kRestore,         // rank=-1, a=pass restored to
  kStraggler,       // rank, a=streak, detail carries the lag
  kCheckFail,       // rank of the failing thread, detail=message prefix
  kNote,            // free-form (tests, apps)
};
const char* EventKindName(EventKind k);

// Longest detail string stored per event (truncated silently).
inline constexpr int kDetailBytes = 24;

struct DecodedEvent {
  i64 t_ns = 0;  // trace::NowNs epoch — same clock as spans and log lines
  EventKind kind = EventKind::kNote;
  int rank = kMasterRank;
  i64 a = 0;
  i64 b = 0;
  std::string detail;
};

// Records one event. Thread-safe, lock-free, async-signal-tolerant (writers
// never block; a dump concurrent with a write skips the torn slot).
void Record(EventKind kind, int rank, i64 a = 0, i64 b = 0,
            const char* detail = nullptr);

// ---- Self-contained-dump mirrors ----------------------------------------

// Live-rank table (Driver updates on construction and every membership
// change). Copied into fixed atomic storage; count clamps at capacity.
void SetLiveRanks(const int* ranks, int count);

// Monitor-sample mirror: names once at Monitor::Start, values every tick.
// Best-effort under concurrent fatal dump (values are individually atomic).
void SetSampleNames(const std::vector<std::string>& names);
void SetSampleValues(const double* values, int count);

// ---- Dumps ---------------------------------------------------------------

// Events currently in the ring, oldest first (torn slots skipped).
std::vector<DecodedEvent> SnapshotEvents();

// Full post-mortem JSON: {"reason","t_ns","events_recorded","events":[...],
// "live_ranks":[...],"monitor":{"names":[...],"last":[...]}}.
std::string DumpJson(const std::string& reason);

// DumpJson written with DurableWriteFile (write + fsync + rename).
Status DumpToFile(const std::string& path, const std::string& reason);

// ---- Fatal path ----------------------------------------------------------

// Path the fatal handler writes to (copied into static storage; default
// "orion_blackbox.json", overridden by ORION_BLACKBOX at install time).
void SetFatalDumpPath(const char* path);

// Installs handlers for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT plus the
// ORION_CHECK failure hook; each dumps the ring to the fatal path exactly
// once, then re-raises the default disposition. Idempotent.
void InstallFatalHandlers();

// The async-signal-safe dump itself (public for tests).
void DumpOnFatal(const char* reason);

// Total events ever recorded (recorded - min(recorded, capacity) were
// overwritten).
u64 TotalRecorded();

// Clears the ring and mirrors (test isolation).
void ResetForTest();

}  // namespace fr
}  // namespace orion

#endif  // ORION_SRC_COMMON_FLIGHT_RECORDER_H_
