// Lightweight Status / StatusOr error-handling vocabulary.
//
// Orion is a library, so recoverable failures (bad subscripts, shape
// mismatches, I/O errors) are reported as Status values rather than
// exceptions; programming errors abort via ORION_CHECK.
#ifndef ORION_SRC_COMMON_STATUS_H_
#define ORION_SRC_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace orion {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status IoError(std::string m) { return Status(StatusCode::kIoError, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// A value-or-error holder; precondition violation (accessing the value of a
// failed StatusOr) aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(T value)                                        // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::cerr << "StatusOr accessed with error: " << status_.ToString() << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Observer invoked with the composed message just before a failed
// ORION_CHECK aborts — the flight recorder installs one so the black box
// captures the check text. Must not throw or return control flow; the abort
// proceeds regardless.
using CheckFailHook = void (*)(const char* message);
void SetCheckFailHook(CheckFailHook hook);
void InvokeCheckFailHook(const char* message);

// Stream-composes a CHECK failure message then aborts in the destructor.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr;
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    InvokeCheckFailHook(stream_.str().c_str());
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};
}  // namespace internal

#define ORION_CHECK(cond)                                       \
  if (cond) {                                                   \
  } else /* NOLINT */                                           \
    ::orion::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define ORION_CHECK_OK(status_expr)                                          \
  do {                                                                       \
    const ::orion::Status _orion_st = (status_expr);                         \
    ORION_CHECK(_orion_st.ok()) << _orion_st.ToString();                     \
  } while (0)

#define ORION_RETURN_IF_ERROR(expr)       \
  do {                                    \
    ::orion::Status _orion_st = (expr);   \
    if (!_orion_st.ok()) {                \
      return _orion_st;                   \
    }                                     \
  } while (0)

}  // namespace orion

#endif  // ORION_SRC_COMMON_STATUS_H_
