// Deterministic, splittable pseudo-random number generation.
//
// All stochastic pieces of Orion (data generators, shuffles, Gibbs sampling)
// take an explicit Rng so experiments are reproducible run-to-run and each
// worker can derive an independent stream with Split().
#ifndef ORION_SRC_COMMON_RNG_H_
#define ORION_SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

// xoshiro256** with splitmix64 seeding; fast, decent quality, header-only.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) {
    u64 x = seed;
    for (auto& si : s_) {
      si = SplitMix64(&x);
    }
  }

  u64 NextU64() {
    const u64 result = Rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  u64 NextBounded(u64 bound) {
    ORION_CHECK(bound > 0);
    // Rejection-free multiply-shift (Lemire); tiny bias acceptable here.
    const unsigned __int128 m = static_cast<unsigned __int128>(NextU64()) * bound;
    return static_cast<u64>(m >> 64);
  }

  i64 NextIndex(i64 bound) { return static_cast<i64>(NextBounded(static_cast<u64>(bound))); }

  // Uniform double in [0, 1).
  f64 NextDouble() { return static_cast<f64>(NextU64() >> 11) * 0x1.0p-53; }

  // Standard normal via Box-Muller.
  f64 NextGaussian() {
    f64 u1 = NextDouble();
    f64 u2 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  // Samples from Zipf-like power law over [0, n): P(k) ~ 1/(k+1)^alpha.
  // Uses inverse-CDF over a precomputation-free approximation (rejection).
  i64 NextZipf(i64 n, f64 alpha) {
    ORION_CHECK(n > 0);
    if (alpha <= 0.0) {
      return NextIndex(n);
    }
    // Rejection sampling against the continuous envelope.
    const f64 amin = 1.0;
    const f64 amax = static_cast<f64>(n) + 1.0;
    while (true) {
      f64 u = NextDouble();
      f64 x;
      if (std::abs(alpha - 1.0) < 1e-9) {
        x = amin * std::pow(amax / amin, u);
      } else {
        const f64 one_m_a = 1.0 - alpha;
        x = std::pow(u * (std::pow(amax, one_m_a) - std::pow(amin, one_m_a)) +
                         std::pow(amin, one_m_a),
                     1.0 / one_m_a);
      }
      const i64 k = static_cast<i64>(x);  // in [1, n]
      if (k >= 1 && k <= n) {
        return k - 1;
      }
    }
  }

  // Derives an independent child generator; deterministic given the parent
  // state, and advances the parent.
  Rng Split() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static u64 SplitMix64(u64* x) {
    u64 z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 s_[4];
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_RNG_H_
