#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace orion {

// POSIX durability helpers shared by the checkpoint writer and the delta log.
//
// The contract for "this file now exists with these bytes, even across a
// crash" on POSIX is three-step: write + fsync the file itself, rename it
// into place, then fsync the containing directory so the rename (the name ->
// inode mapping) is itself on stable storage. Skipping the directory fsync is
// the classic durability hole: the data blocks survive but the name may not.

// Writes `bytes` to `path` atomically and durably: writes to `path + ".tmp"`,
// fsyncs the temp file, renames over `path`, then fsyncs the parent
// directory.
Status DurableWriteFile(const std::string& path, const u8* data, size_t size);

// Appends `bytes` to the file at `path` (creating it if absent) and fsyncs
// the file descriptor before returning. The first append to a fresh file also
// fsyncs the parent directory so the file's directory entry is durable.
// Returns the file size after the append.
StatusOr<u64> DurableAppendFile(const std::string& path, const u8* data,
                                size_t size);

// Truncates the file at `path` to `size` bytes and fsyncs it. Used by log
// compaction to drop the folded prefix, and by tests to simulate torn writes.
Status DurableTruncateFile(const std::string& path, u64 size);

// fsyncs the directory containing `path` (or `path` itself if it is a
// directory). Needed after rename/unlink/create so the namespace change is
// durable.
Status FsyncParentDir(const std::string& path);

// Reads the whole file into a byte vector. Returns kNotFound if the file does
// not exist.
StatusOr<std::vector<u8>> ReadFileBytes(const std::string& path);

// FNV-1a 64-bit hash, used as the record checksum by both the checkpoint
// writer and the delta log. Pass a previous result as `seed` to chain the
// hash over discontiguous spans (e.g. frame header fields + payload).
inline u64 Fnv1a64(const u8* data, size_t n, u64 seed = 14695981039346656037ull) {
  u64 h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace orion
