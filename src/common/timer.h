// Wall-clock stopwatch for throughput measurements.
#ifndef ORION_SRC_COMMON_TIMER_H_
#define ORION_SRC_COMMON_TIMER_H_

#include <ctime>

#include <chrono>

namespace orion {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Measures CPU time consumed by the *calling thread*. Simulated workers
// timeshare the host's cores, so per-worker compute must be charged in
// thread CPU time — wall time would include preemption by sibling workers.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_TIMER_H_
