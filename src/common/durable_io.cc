#include "src/common/durable_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace orion {
namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const u8* data, size_t size, const std::string& path) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status FsyncParentDir(const std::string& path) {
  struct stat st;
  std::string dir = path;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    dir = ParentDir(path);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  if (::fsync(fd) != 0) {
    const Status s = Errno("fsync dir", dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::Ok();
}

Status DurableWriteFile(const std::string& path, const u8* data, size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status s = WriteAll(fd, data, size, tmp);
  if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", tmp);
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rs = Errno("rename", path);
    ::unlink(tmp.c_str());
    return rs;
  }
  return FsyncParentDir(path);
}

StatusOr<u64> DurableAppendFile(const std::string& path, const u8* data,
                                size_t size) {
  struct stat st;
  const bool fresh = ::stat(path.c_str(), &st) != 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  Status s = WriteAll(fd, data, size, path);
  if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", path);
  u64 end = 0;
  if (s.ok()) {
    const off_t pos = ::lseek(fd, 0, SEEK_END);
    if (pos < 0) s = Errno("lseek", path);
    end = static_cast<u64>(pos);
  }
  ::close(fd);
  if (!s.ok()) return s;
  if (fresh) {
    const Status ds = FsyncParentDir(path);
    if (!ds.ok()) return ds;
  }
  return end;
}

Status DurableTruncateFile(const std::string& path, u64 size) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Errno("open", path);
  Status s = Status::Ok();
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) s = Errno("ftruncate", path);
  if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", path);
  ::close(fd);
  return s;
}

StatusOr<std::vector<u8>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  std::vector<u8> out;
  u8 buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

}  // namespace orion
