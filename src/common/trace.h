// Cluster-wide span tracer.
//
// Always compiled, runtime-toggled: `ORION_TRACE_SPAN(category, name)` costs
// a single relaxed atomic load plus one branch when tracing is disabled.
// When enabled, every thread records spans into its own overwrite-oldest
// ring buffer (registered once per thread in a process-global registry that
// outlives the thread, so spans survive until drained). Spans carry the
// thread's logical rank tag, a stable small thread id, the current pass and
// step ids, and steady-clock timestamps relative to one process epoch, so
// spans from every thread merge into a single coherent timeline.
//
// Workers drain their spans and piggyback them on PassDone; the master
// appends them to the cluster timeline and drains all remaining rings
// (its own threads, plus anything a worker had not yet shipped at halt)
// in Driver::DumpTrace. Export is Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
#ifndef ORION_SRC_COMMON_TRACE_H_
#define ORION_SRC_COMMON_TRACE_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"

namespace orion {
namespace trace {

// Span taxonomy. Categories name the subsystem that emitted the span; the
// critical-path analyzer buckets only kExecutor spans (the worker's own
// sequential phases), so concurrent sender/fabric spans never double-count.
enum class Category : u16 {
  kDriver = 0,       // master pass lifecycle
  kExecutor = 1,     // worker step phases (sequential on the worker thread)
  kParamServer = 2,  // shard gather + reply assembly (master pool threads)
  kSender = 3,       // AsyncSender lane activity
  kFabric = 4,       // individual send/recv with message kind
};
inline constexpr int kNumCategories = 5;
const char* CategoryName(Category c);

// One closed span. `name` points at a string literal while the span sits in
// a ring; drained spans own a std::string copy (safe to serialize/merge).
struct Span {
  i64 start_ns = 0;  // steady clock, relative to the process trace epoch
  i64 end_ns = 0;
  i64 pass = -1;  // -1 = unknown (thread had no pass context)
  i64 step = -1;
  i32 rank = kMasterRank;  // logical rank tag of the emitting thread
  i32 tid = 0;             // sequential tracer thread id (stable per thread)
  u16 category = 0;
  std::string name;
};

// ---- Runtime toggle ----------------------------------------------------

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);

// ---- Per-thread context ------------------------------------------------

// Tags the calling thread with a logical rank. Untagged threads default to
// kMasterRank (-1): the driver thread, ParamServer pool threads and the
// master's sender lanes need no plumbing.
void SetThreadRank(i32 rank);
i32 ThreadRank();

// Optional short label for master-side helper threads (monitor, metrics
// endpoint): ORION_LOG lines tag them "M|<label>/t<id>" instead of the bare
// "M/t<id>", so interleaved logs stay attributable. The pointer must outlive
// the thread (string literals only); nullptr clears it.
void SetThreadLabel(const char* label);
const char* ThreadLabel();

// Current pass/step ids stamped onto spans recorded by this thread
// (-1 = unknown; the analyzer then attributes by timestamp containment).
void SetThreadPass(i64 pass);
void SetThreadStep(i64 step);

// Stable small id for the calling thread (registers it on first use).
i32 ThreadId();

// Nanoseconds since the process trace epoch (steady clock).
i64 NowNs();

// Records a closed span for the calling thread. No-op when disabled.
// Stamps the thread's rank/pass/step at call time. `name` must outlive the
// ring (string literals only).
void Emit(Category category, const char* name, i64 start_ns, i64 end_ns);

// ---- Draining ----------------------------------------------------------

// Removes and returns spans whose rank tag is `rank`, from every ring, in
// per-thread chronological order. Used by executors to ship their spans
// (own thread + their sender lane) in PassDone.
std::vector<Span> DrainRank(i32 rank);

// Removes and returns every buffered span. Used by the master at dump time
// to pick up its own threads plus anything workers had not yet shipped.
std::vector<Span> DrainAll();

// Discards all buffered spans (test isolation between driver instances).
void Reset();

// Total spans overwritten before they could be drained (ring wraparound).
u64 DroppedCount();

// Ring capacity (spans) applied to rings created by threads registering
// after the call. Existing rings are unaffected. Default 1 << 15.
void SetRingCapacity(size_t capacity);

// Fraction of the calling thread's ring currently occupied (0.0 when the
// thread has recorded nothing yet). Executors use it to decide when a long
// ordered pass should piggyback a partial drain on a barrier arrival
// instead of letting the ring wrap before PassDone.
double RingFillFraction();

// ---- Serialization (PassDone piggyback) --------------------------------

void SerializeSpans(const std::vector<Span>& spans, ByteWriter* w);
std::vector<Span> DeserializeSpans(ByteReader* r);

// ---- Export ------------------------------------------------------------

// Sorts a copy of `spans` by start time and writes Chrome trace-event JSON:
// one "X" (complete) event per span, pid = rank + 1 (master-side threads are
// pid 0), tid = tracer thread id, plus process_name metadata. Loadable in
// Perfetto or chrome://tracing.
Status WriteChromeTrace(const std::string& path, const std::vector<Span>& spans);
std::string ChromeTraceJson(const std::vector<Span>& spans);

// ---- Critical-path analysis --------------------------------------------

// Per-pass attribution of the master-observed wall time. The critical
// worker is the one with the longest "pass" span; its sequential executor
// phases fill the buckets, master-side applies/checkpoints add
// master_apply_seconds, and the residual (message latency, barrier skew,
// StartPass fan-out) lands in other_seconds, so the buckets sum to
// wall_seconds by construction. param_serve_seconds overlaps worker time
// (it is served concurrently on master pool threads) and is reported
// informationally, outside the sum.
struct PassBreakdown {
  i64 pass = -1;
  i32 critical_rank = kMasterRank;
  double wall_seconds = 0.0;
  double compute_seconds = 0.0;        // compute + record_keys
  double prefetch_wait_seconds = 0.0;  // blocking AwaitPrefetch
  double spec_wait_seconds = 0.0;      // speculative-slot stalls + conflict repair
  double rotation_seconds = 0.0;       // rotation_wait/send + drain_returning
  double flush_send_seconds = 0.0;     // StepFlush + prefetch_issue
  double barrier_seconds = 0.0;        // barrier skew absorbed at Barrier()
  double master_apply_seconds = 0.0;   // deferred applies + checkpoint + recovery
  double other_seconds = 0.0;          // residual vs wall
  double param_serve_seconds = 0.0;    // informational, overlaps worker time
  // Checkpoint stall charged to this pass: driver "checkpoint" spans between
  // this pass window and the next (durability appends happen after the pass
  // commits). Informational, outside the sum — like serve — because the
  // stall is not inside the pass's wall window.
  double checkpoint_seconds = 0.0;

  double Sum() const {
    return compute_seconds + prefetch_wait_seconds + spec_wait_seconds + rotation_seconds +
           flush_send_seconds + barrier_seconds + master_apply_seconds + other_seconds;
  }
};

std::vector<PassBreakdown> AnalyzeCriticalPath(const std::vector<Span>& spans);
std::string FormatCriticalPathTable(const std::vector<PassBreakdown>& passes);

// ---- RAII macro --------------------------------------------------------

namespace internal {
class ScopedSpan {
 public:
  ScopedSpan(Category category, const char* name) {
    if (Enabled()) {
      category_ = category;
      name_ = name;
      start_ns_ = NowNs();
      active_ = true;
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Emit(category_, name_, start_ns_, NowNs());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  Category category_ = Category::kDriver;
  const char* name_ = nullptr;
  i64 start_ns_ = 0;
};
}  // namespace internal

#define ORION_TRACE_CONCAT_INNER(a, b) a##b
#define ORION_TRACE_CONCAT(a, b) ORION_TRACE_CONCAT_INNER(a, b)
#define ORION_TRACE_SPAN(category, name)                                 \
  ::orion::trace::internal::ScopedSpan ORION_TRACE_CONCAT(orion_span_,   \
                                                          __LINE__)(     \
      ::orion::trace::Category::category, (name))

}  // namespace trace
}  // namespace orion

#endif  // ORION_SRC_COMMON_TRACE_H_
