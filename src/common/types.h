// Core scalar and index types shared across the Orion library.
#ifndef ORION_SRC_COMMON_TYPES_H_
#define ORION_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace orion {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using f32 = float;
using f64 = double;

// An index vector identifying one iteration (equivalently, one element of an
// N-dimensional DistArray). Dimension order is application order: index[0] is
// the first subscript position.
using IndexVec = std::vector<i64>;

// Identifies a DistArray inside a driver session.
using DistArrayId = i32;
inline constexpr DistArrayId kInvalidDistArrayId = -1;

// Identifies a logical worker (executor).
using WorkerId = i32;
inline constexpr WorkerId kMasterRank = -1;

inline constexpr i64 kI64Max = std::numeric_limits<i64>::max();
inline constexpr i64 kI64Min = std::numeric_limits<i64>::min();

}  // namespace orion

#endif  // ORION_SRC_COMMON_TYPES_H_
