#include "src/common/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/common/durable_io.h"
#include "src/common/trace.h"

namespace orion {
namespace fr {

namespace {

// ---- Ring storage --------------------------------------------------------
//
// Every slot field is a relaxed atomic so concurrent writers (ring wrap) and
// readers (a dump taken mid-run) are race-free by construction. A writer
// claims a ticket, marks the slot busy (seq = 0), stores the payload, then
// publishes seq = ticket with release order; a reader validates seq before
// and after reading the payload and skips torn slots.

constexpr size_t kRingCapacity = 4096;
constexpr int kMaxRanks = 64;
constexpr int kMaxProbes = 64;
constexpr int kProbeNameBytes = 48;

struct Slot {
  std::atomic<u64> seq{0};  // 0 = empty/busy, else the 1-based ticket
  std::atomic<i64> t_ns{0};
  std::atomic<u32> kind{0};
  std::atomic<i32> rank{0};
  std::atomic<i64> a{0};
  std::atomic<i64> b{0};
  std::atomic<u64> detail[kDetailBytes / 8]{};  // 8 chars per word
};

Slot g_ring[kRingCapacity];
std::atomic<u64> g_head{0};  // next ticket - 1

// Live-rank mirror.
std::atomic<i32> g_live_ranks[kMaxRanks];
std::atomic<i32> g_live_rank_count{0};

// Monitor-sample mirror. Names are written once (before the sampler runs)
// under a mutex; values are per-slot atomics updated every tick.
std::mutex g_names_mu;
char g_probe_names[kMaxProbes][kProbeNameBytes];
std::atomic<i32> g_probe_count{0};
std::atomic<double> g_probe_values[kMaxProbes];

// Fatal-dump state.
char g_fatal_path[256] = "orion_blackbox.json";
std::atomic<bool> g_fatal_dumped{false};
std::atomic<bool> g_handlers_installed{false};
struct sigaction g_old_actions[NSIG];

// ---- Async-signal-safe emitter -------------------------------------------
//
// One JSON renderer serves both dump paths through an emit callback: the
// orderly path appends to a std::string, the fatal path write(2)s straight
// to a file descriptor. All formatting below is hand-rolled (no stdio, no
// heap) so the fatal path stays async-signal-safe.

struct Emitter {
  void (*emit)(void* ctx, const char* data, size_t len);
  void* ctx;
  void Str(const char* s) { emit(ctx, s, std::strlen(s)); }
  void Raw(const char* s, size_t n) { emit(ctx, s, n); }
  void Int(i64 v) {
    char buf[24];
    char* p = buf + sizeof buf;
    const bool neg = v < 0;
    u64 u = neg ? ~static_cast<u64>(v) + 1 : static_cast<u64>(v);
    do {
      *--p = static_cast<char>('0' + u % 10);
      u /= 10;
    } while (u != 0);
    if (neg) *--p = '-';
    emit(ctx, p, static_cast<size_t>(buf + sizeof buf - p));
  }
  // Fixed-point double (6 fractional digits), clamped to the i64 range —
  // monitor gauges are counts, depths, and byte totals, so this covers them
  // without touching locale-dependent float formatting.
  void Fixed(double v) {
    if (!(v > -9.0e12 && v < 9.0e12)) {  // NaN or out of range
      Str("0");
      return;
    }
    const bool neg = v < 0;
    if (neg) v = -v;
    const i64 scaled = static_cast<i64>(v * 1e6 + 0.5);
    if (neg && scaled != 0) Str("-");
    Int(scaled / 1000000);
    Str(".");
    char frac[7];
    i64 f = scaled % 1000000;
    for (int i = 5; i >= 0; --i) {
      frac[i] = static_cast<char>('0' + f % 10);
      f /= 10;
    }
    frac[6] = '\0';
    Raw(frac, 6);
  }
  void Quoted(const char* s, size_t max_len) {
    Str("\"");
    for (size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (c == '"' || c == '\\') {
        char esc[2] = {'\\', static_cast<char>(c)};
        Raw(esc, 2);
      } else if (c < 0x20) {
        Raw("_", 1);  // control chars cannot appear in detail strings anyway
      } else {
        Raw(reinterpret_cast<const char*>(&c), 1);
      }
    }
    Str("\"");
  }
};

void EmitToString(void* ctx, const char* data, size_t len) {
  static_cast<std::string*>(ctx)->append(data, len);
}

void EmitToFd(void* ctx, const char* data, size_t len) {
  int fd = *static_cast<int*>(ctx);
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;
    data += n;
    len -= static_cast<size_t>(n);
  }
}

// Reads one slot; false when empty or torn by a concurrent writer.
bool ReadSlot(const Slot& s, u64 want_ticket, DecodedEvent* out) {
  if (s.seq.load(std::memory_order_acquire) != want_ticket) return false;
  out->t_ns = s.t_ns.load(std::memory_order_relaxed);
  out->kind = static_cast<EventKind>(s.kind.load(std::memory_order_relaxed));
  out->rank = s.rank.load(std::memory_order_relaxed);
  out->a = s.a.load(std::memory_order_relaxed);
  out->b = s.b.load(std::memory_order_relaxed);
  char detail[kDetailBytes + 1];
  for (int w = 0; w < kDetailBytes / 8; ++w) {
    const u64 word = s.detail[w].load(std::memory_order_relaxed);
    std::memcpy(detail + w * 8, &word, 8);
  }
  detail[kDetailBytes] = '\0';
  out->detail = detail;
  return s.seq.load(std::memory_order_acquire) == want_ticket;
}

// Renders the full post-mortem through `e`. Walks tickets oldest-first.
void Render(Emitter* e, const char* reason) {
  const u64 total = g_head.load(std::memory_order_acquire);
  const u64 first = total > kRingCapacity ? total - kRingCapacity + 1 : 1;
  e->Str("{\"reason\":");
  e->Quoted(reason, 128);
  e->Str(",\"t_ns\":");
  e->Int(trace::NowNs());
  e->Str(",\"events_recorded\":");
  e->Int(static_cast<i64>(total));
  e->Str(",\"events\":[");
  bool first_ev = true;
  for (u64 ticket = first; ticket <= total; ++ticket) {
    DecodedEvent ev;
    if (!ReadSlot(g_ring[(ticket - 1) % kRingCapacity], ticket, &ev)) continue;
    if (!first_ev) e->Str(",");
    first_ev = false;
    e->Str("{\"t_ns\":");
    e->Int(ev.t_ns);
    e->Str(",\"kind\":");
    e->Quoted(EventKindName(ev.kind), 32);
    e->Str(",\"rank\":");
    e->Int(ev.rank);
    e->Str(",\"a\":");
    e->Int(ev.a);
    e->Str(",\"b\":");
    e->Int(ev.b);
    e->Str(",\"detail\":");
    e->Quoted(ev.detail.c_str(), kDetailBytes);
    e->Str("}");
  }
  e->Str("],\"live_ranks\":[");
  const int nranks = g_live_rank_count.load(std::memory_order_acquire);
  for (int i = 0; i < nranks && i < kMaxRanks; ++i) {
    if (i > 0) e->Str(",");
    e->Int(g_live_ranks[i].load(std::memory_order_relaxed));
  }
  e->Str("],\"monitor\":{\"names\":[");
  const int nprobes = g_probe_count.load(std::memory_order_acquire);
  for (int i = 0; i < nprobes && i < kMaxProbes; ++i) {
    if (i > 0) e->Str(",");
    e->Quoted(g_probe_names[i], kProbeNameBytes);
  }
  e->Str("],\"last\":[");
  for (int i = 0; i < nprobes && i < kMaxProbes; ++i) {
    if (i > 0) e->Str(",");
    e->Fixed(g_probe_values[i].load(std::memory_order_relaxed));
  }
  e->Str("]}}\n");
}

// ---- Fatal handlers ------------------------------------------------------

void FatalSignalHandler(int signo) {
  char reason[32];
  std::memcpy(reason, "signal_", 7);
  int n = 7;
  if (signo >= 10) reason[n++] = static_cast<char>('0' + signo / 10);
  reason[n++] = static_cast<char>('0' + signo % 10);
  reason[n] = '\0';
  DumpOnFatal(reason);
  // Restore the previous disposition and re-raise so the process still dies
  // with the original signal (core dumps, test harness expectations).
  if (signo > 0 && signo < NSIG) ::sigaction(signo, &g_old_actions[signo], nullptr);
  ::raise(signo);
}

void CheckFailRecorder(const char* message) {
  Record(EventKind::kCheckFail, trace::ThreadRank(), 0, 0, message);
  DumpOnFatal("check_failure");
  // std::abort() follows in the CHECK machinery; the SIGABRT handler sees
  // g_fatal_dumped and does not dump twice.
}

}  // namespace

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kPassStart:    return "pass_start";
    case EventKind::kPassEnd:      return "pass_end";
    case EventKind::kFaultDrop:    return "fault_drop";
    case EventKind::kFaultDup:     return "fault_dup";
    case EventKind::kFaultDelay:   return "fault_delay";
    case EventKind::kFaultRelease: return "fault_release";
    case EventKind::kCrashPoint:   return "crash_point";
    case EventKind::kRetransmit:   return "retransmit";
    case EventKind::kWorkerDead:   return "worker_dead";
    case EventKind::kRetire:       return "retire";
    case EventKind::kRejoin:       return "rejoin";
    case EventKind::kController:   return "controller";
    case EventKind::kCheckpoint:   return "checkpoint";
    case EventKind::kRestore:      return "restore";
    case EventKind::kStraggler:    return "straggler";
    case EventKind::kCheckFail:    return "check_fail";
    case EventKind::kNote:         return "note";
  }
  return "unknown";
}

void Record(EventKind kind, int rank, i64 a, i64 b, const char* detail) {
  const u64 ticket = g_head.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = g_ring[(ticket - 1) % kRingCapacity];
  s.seq.store(0, std::memory_order_release);  // mark busy: readers skip
  s.t_ns.store(trace::NowNs(), std::memory_order_relaxed);
  s.kind.store(static_cast<u32>(kind), std::memory_order_relaxed);
  s.rank.store(rank, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  char buf[kDetailBytes] = {};
  if (detail != nullptr) {
    size_t n = 0;
    while (n < kDetailBytes && detail[n] != '\0') {
      buf[n] = detail[n];
      ++n;
    }
  }
  for (int w = 0; w < kDetailBytes / 8; ++w) {
    u64 word;
    std::memcpy(&word, buf + w * 8, 8);
    s.detail[w].store(word, std::memory_order_relaxed);
  }
  s.seq.store(ticket, std::memory_order_release);
}

void SetLiveRanks(const int* ranks, int count) {
  if (count > kMaxRanks) count = kMaxRanks;
  for (int i = 0; i < count; ++i) {
    g_live_ranks[i].store(ranks[i], std::memory_order_relaxed);
  }
  g_live_rank_count.store(count, std::memory_order_release);
}

void SetSampleNames(const std::vector<std::string>& names) {
  std::lock_guard<std::mutex> lock(g_names_mu);
  const int count = static_cast<int>(names.size() > kMaxProbes ? kMaxProbes : names.size());
  for (int i = 0; i < count; ++i) {
    std::strncpy(g_probe_names[i], names[static_cast<size_t>(i)].c_str(),
                 kProbeNameBytes - 1);
    g_probe_names[i][kProbeNameBytes - 1] = '\0';
  }
  g_probe_count.store(count, std::memory_order_release);
}

void SetSampleValues(const double* values, int count) {
  if (count > kMaxProbes) count = kMaxProbes;
  for (int i = 0; i < count; ++i) {
    g_probe_values[i].store(values[i], std::memory_order_relaxed);
  }
}

std::vector<DecodedEvent> SnapshotEvents() {
  std::vector<DecodedEvent> out;
  const u64 total = g_head.load(std::memory_order_acquire);
  const u64 first = total > kRingCapacity ? total - kRingCapacity + 1 : 1;
  out.reserve(static_cast<size_t>(total - first + 1));
  for (u64 ticket = first; ticket <= total; ++ticket) {
    DecodedEvent ev;
    if (ReadSlot(g_ring[(ticket - 1) % kRingCapacity], ticket, &ev)) {
      out.push_back(std::move(ev));
    }
  }
  return out;
}

std::string DumpJson(const std::string& reason) {
  std::string out;
  out.reserve(64 * 1024);
  Emitter e{&EmitToString, &out};
  Render(&e, reason.c_str());
  return out;
}

Status DumpToFile(const std::string& path, const std::string& reason) {
  const std::string json = DumpJson(reason);
  return DurableWriteFile(path, reinterpret_cast<const u8*>(json.data()), json.size());
}

void SetFatalDumpPath(const char* path) {
  std::strncpy(g_fatal_path, path, sizeof g_fatal_path - 1);
  g_fatal_path[sizeof g_fatal_path - 1] = '\0';
}

void DumpOnFatal(const char* reason) {
  if (g_fatal_dumped.exchange(true)) return;  // dump exactly once
  const int fd = ::open(g_fatal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  Emitter e{&EmitToFd, const_cast<int*>(&fd)};
  Render(&e, reason);
  ::fsync(fd);
  ::close(fd);
}

void InstallFatalHandlers() {
  if (g_handlers_installed.exchange(true)) return;
  const char* env_path = std::getenv("ORION_BLACKBOX");
  if (env_path != nullptr && env_path[0] != '\0') SetFatalDumpPath(env_path);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &FatalSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    ::sigaction(signo, &sa, &g_old_actions[signo]);
  }
  internal::SetCheckFailHook(&CheckFailRecorder);
}

u64 TotalRecorded() { return g_head.load(std::memory_order_relaxed); }

void ResetForTest() {
  g_head.store(0, std::memory_order_release);
  for (auto& s : g_ring) s.seq.store(0, std::memory_order_release);
  g_live_rank_count.store(0, std::memory_order_release);
  g_probe_count.store(0, std::memory_order_release);
  g_fatal_dumped.store(false, std::memory_order_release);
}

}  // namespace fr
}  // namespace orion
