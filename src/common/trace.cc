#include "src/common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "src/common/status.h"

namespace orion {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// In-ring record: `name` is a string literal owned by the program image, so
// records are trivially copyable and a ring slot overwrite never frees.
struct Record {
  i64 start_ns;
  i64 end_ns;
  i64 pass;
  i64 step;
  i32 rank;
  u16 category;
  const char* name;
};

struct ThreadBuffer {
  std::mutex mu;
  std::vector<Record> ring;  // allocated lazily on first span
  size_t capacity = 0;
  size_t next = 0;   // slot the next record goes into
  size_t count = 0;  // live records (<= capacity)
  u64 dropped = 0;
  i32 tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // never shrinks
  i32 next_tid = 0;
  size_t ring_capacity = size_t{1} << 15;
};

// Leaked singletons: rings must outlive every thread (a worker's undrained
// spans are scooped up by the master at dump time, possibly after the
// worker thread has exited) and survive static destruction order.
Registry* GlobalRegistry() {
  static Registry* r = new Registry();
  return r;
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point e = std::chrono::steady_clock::now();
  return e;
}

struct ThreadState {
  ThreadBuffer* buffer = nullptr;
  i32 rank = kMasterRank;
  i64 pass = -1;
  i64 step = -1;
  const char* label = nullptr;
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

ThreadBuffer* BufferForThisThread() {
  ThreadState& s = Tls();
  if (s.buffer == nullptr) {
    Registry* reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg->mu);
    reg->buffers.push_back(std::make_unique<ThreadBuffer>());
    ThreadBuffer* b = reg->buffers.back().get();
    b->tid = reg->next_tid++;
    b->capacity = reg->ring_capacity;
    s.buffer = b;
  }
  return s.buffer;
}

void AppendDrained(ThreadBuffer* b, i32 want_rank, bool all, std::vector<Span>* out) {
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->count == 0) {
    return;
  }
  std::vector<Record> kept;
  const size_t first = (b->next + b->capacity - b->count) % b->capacity;
  for (size_t i = 0; i < b->count; ++i) {
    const Record& r = b->ring[(first + i) % b->capacity];
    if (!all && r.rank != want_rank) {
      kept.push_back(r);
      continue;
    }
    Span s;
    s.start_ns = r.start_ns;
    s.end_ns = r.end_ns;
    s.pass = r.pass;
    s.step = r.step;
    s.rank = r.rank;
    s.tid = b->tid;
    s.category = r.category;
    s.name = r.name;
    out->push_back(std::move(s));
  }
  b->count = kept.size();
  b->next = kept.size() % b->capacity;
  std::copy(kept.begin(), kept.end(), b->ring.begin());
}

std::vector<ThreadBuffer*> AllBuffers() {
  Registry* reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg->mu);
  std::vector<ThreadBuffer*> out;
  out.reserve(reg->buffers.size());
  for (auto& b : reg->buffers) {
    out.push_back(b.get());
  }
  return out;
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kDriver:
      return "driver";
    case Category::kExecutor:
      return "executor";
    case Category::kParamServer:
      return "param_server";
    case Category::kSender:
      return "sender";
    case Category::kFabric:
      return "fabric";
  }
  return "unknown";
}

void SetEnabled(bool on) {
  Epoch();  // pin the epoch no later than the first enable
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

void SetThreadRank(i32 rank) { Tls().rank = rank; }
i32 ThreadRank() { return Tls().rank; }

void SetThreadLabel(const char* label) { Tls().label = label; }
const char* ThreadLabel() { return Tls().label; }
void SetThreadPass(i64 pass) { Tls().pass = pass; }
void SetThreadStep(i64 step) { Tls().step = step; }

i32 ThreadId() { return BufferForThisThread()->tid; }

i64 NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch())
      .count();
}

void Emit(Category category, const char* name, i64 start_ns, i64 end_ns) {
  if (!Enabled()) {
    return;
  }
  ThreadState& s = Tls();
  ThreadBuffer* b = BufferForThisThread();
  Record r;
  r.start_ns = start_ns;
  r.end_ns = end_ns;
  r.pass = s.pass;
  r.step = s.step;
  r.rank = s.rank;
  r.category = static_cast<u16>(category);
  r.name = name;
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->ring.empty()) {
    b->ring.resize(b->capacity);
  }
  if (b->count == b->capacity) {
    ++b->dropped;  // overwrite the oldest record
  } else {
    ++b->count;
  }
  b->ring[b->next] = r;
  b->next = (b->next + 1) % b->capacity;
}

std::vector<Span> DrainRank(i32 rank) {
  std::vector<Span> out;
  for (ThreadBuffer* b : AllBuffers()) {
    AppendDrained(b, rank, /*all=*/false, &out);
  }
  return out;
}

std::vector<Span> DrainAll() {
  std::vector<Span> out;
  for (ThreadBuffer* b : AllBuffers()) {
    AppendDrained(b, 0, /*all=*/true, &out);
  }
  return out;
}

void Reset() {
  for (ThreadBuffer* b : AllBuffers()) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->count = 0;
    b->next = 0;
    b->dropped = 0;
  }
}

u64 DroppedCount() {
  u64 n = 0;
  for (ThreadBuffer* b : AllBuffers()) {
    std::lock_guard<std::mutex> lock(b->mu);
    n += b->dropped;
  }
  return n;
}

void SetRingCapacity(size_t capacity) {
  ORION_CHECK(capacity > 0);
  Registry* reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg->mu);
  reg->ring_capacity = capacity;
}

double RingFillFraction() {
  ThreadBuffer* b = Tls().buffer;
  if (b == nullptr) {
    return 0.0;  // thread has recorded nothing yet
  }
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->capacity == 0) {
    return 0.0;
  }
  return static_cast<double>(b->count) / static_cast<double>(b->capacity);
}

void SerializeSpans(const std::vector<Span>& spans, ByteWriter* w) {
  w->Put<u32>(static_cast<u32>(spans.size()));
  for (const Span& s : spans) {
    w->Put<i64>(s.start_ns);
    w->Put<i64>(s.end_ns);
    w->Put<i64>(s.pass);
    w->Put<i64>(s.step);
    w->Put<i32>(s.rank);
    w->Put<i32>(s.tid);
    w->Put<u16>(s.category);
    w->PutString(s.name);
  }
}

std::vector<Span> DeserializeSpans(ByteReader* r) {
  const u32 n = r->Get<u32>();
  std::vector<Span> spans;
  spans.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    Span s;
    s.start_ns = r->Get<i64>();
    s.end_ns = r->Get<i64>();
    s.pass = r->Get<i64>();
    s.step = r->Get<i64>();
    s.rank = r->Get<i32>();
    s.tid = r->Get<i32>();
    s.category = r->Get<u16>();
    s.name = r->GetString();
    spans.push_back(std::move(s));
  }
  return spans;
}

std::string ChromeTraceJson(const std::vector<Span>& spans) {
  std::vector<const Span*> sorted;
  sorted.reserve(spans.size());
  for (const Span& s : spans) {
    sorted.push_back(&s);
  }
  std::stable_sort(sorted.begin(), sorted.end(), [](const Span* a, const Span* b) {
    if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
    return a->end_ns > b->end_ns;  // enclosing span first, so nesting renders
  });

  std::string out;
  out.reserve(spans.size() * 128 + 256);
  out += "{\"traceEvents\":[\n";
  bool first = true;

  // Process metadata: pid 0 is everything master-side, pid r+1 is worker r.
  std::vector<i32> pids;
  for (const Span& s : spans) {
    const i32 pid = s.rank + 1;
    if (std::find(pids.begin(), pids.end(), pid) == pids.end()) {
      pids.push_back(pid);
    }
  }
  std::sort(pids.begin(), pids.end());
  for (i32 pid : pids) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"args\":{\"name\":\"";
    out += pid == 0 ? "master" : ("worker " + std::to_string(pid - 1));
    out += "\"}}";
  }

  char buf[64];
  for (const Span* s : sorted) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    JsonEscape(s->name, &out);
    out += "\",\"cat\":\"";
    out += CategoryName(static_cast<Category>(s->category));
    out += "\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", static_cast<double>(s->start_ns) / 1e3);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                  static_cast<double>(s->end_ns - s->start_ns) / 1e3);
    out += buf;
    out += ",\"pid\":" + std::to_string(s->rank + 1);
    out += ",\"tid\":" + std::to_string(s->tid);
    out += ",\"args\":{\"pass\":" + std::to_string(s->pass) +
           ",\"step\":" + std::to_string(s->step) + "}}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path, const std::vector<Span>& spans) {
  const std::string json = ChromeTraceJson(spans);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::Ok();
}

namespace {

double Seconds(i64 ns) { return static_cast<double>(ns) * 1e-9; }

bool MidpointInside(const Span& s, i64 lo, i64 hi) {
  const i64 mid = s.start_ns + (s.end_ns - s.start_ns) / 2;
  return mid >= lo && mid <= hi;
}

}  // namespace

std::vector<PassBreakdown> AnalyzeCriticalPath(const std::vector<Span>& spans) {
  // Master pass windows, in timeline order (a replayed pass appears twice,
  // once per attempt — matched to worker spans by time containment).
  std::vector<const Span*> windows;
  for (const Span& s : spans) {
    if (static_cast<Category>(s.category) == Category::kDriver && s.name == "pass" &&
        s.rank == kMasterRank) {
      windows.push_back(&s);
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const Span* a, const Span* b) { return a->start_ns < b->start_ns; });

  std::vector<PassBreakdown> out;
  out.reserve(windows.size());
  for (const Span* w : windows) {
    PassBreakdown pb;
    pb.pass = w->pass;
    pb.wall_seconds = Seconds(w->end_ns - w->start_ns);

    // Critical worker: longest executor "pass" span inside this window.
    const Span* crit = nullptr;
    for (const Span& s : spans) {
      if (static_cast<Category>(s.category) != Category::kExecutor || s.name != "pass") {
        continue;
      }
      if (s.pass != w->pass || !MidpointInside(s, w->start_ns, w->end_ns)) {
        continue;
      }
      if (crit == nullptr || (s.end_ns - s.start_ns) > (crit->end_ns - crit->start_ns)) {
        crit = &s;
      }
    }

    double attributed = 0.0;
    if (crit != nullptr) {
      pb.critical_rank = crit->rank;
      for (const Span& s : spans) {
        if (static_cast<Category>(s.category) != Category::kExecutor || s.rank != crit->rank ||
            s.pass != w->pass || s.name == "pass" ||
            !MidpointInside(s, w->start_ns, w->end_ns)) {
          continue;
        }
        const double d = Seconds(s.end_ns - s.start_ns);
        if (s.name == "compute" || s.name == "record_keys") {
          pb.compute_seconds += d;
        } else if (s.name == "prefetch_wait") {
          pb.prefetch_wait_seconds += d;
        } else if (s.name == "spec_wait") {
          pb.spec_wait_seconds += d;
        } else if (s.name == "rotation_wait" || s.name == "rotation_send" ||
                   s.name == "drain_returning") {
          pb.rotation_seconds += d;
        } else if (s.name == "step_flush" || s.name == "prefetch_issue") {
          pb.flush_send_seconds += d;
        } else if (s.name == "barrier") {
          pb.barrier_seconds += d;
        } else {
          continue;  // unknown phase: falls into the residual
        }
        attributed += d;
      }
    }

    for (const Span& s : spans) {
      const Category c = static_cast<Category>(s.category);
      if (c == Category::kDriver &&
          (s.name == "deferred_applies" || s.name == "checkpoint" || s.name == "recovery") &&
          MidpointInside(s, w->start_ns, w->end_ns)) {
        pb.master_apply_seconds += Seconds(s.end_ns - s.start_ns);
      } else if (c == Category::kParamServer && MidpointInside(s, w->start_ns, w->end_ns)) {
        pb.param_serve_seconds += Seconds(s.end_ns - s.start_ns);
      }
    }

    pb.other_seconds =
        std::max(0.0, pb.wall_seconds - attributed - pb.master_apply_seconds);
    out.push_back(pb);
  }

  // Checkpoint stall: durability appends run between pass windows (after the
  // pass commits), so they never land in master_apply_seconds above. Charge
  // each such span to the nearest preceding pass window, informationally.
  for (const Span& s : spans) {
    if (static_cast<Category>(s.category) != Category::kDriver || s.name != "checkpoint") {
      continue;
    }
    const i64 mid = s.start_ns + (s.end_ns - s.start_ns) / 2;
    size_t idx = windows.size();
    for (size_t i = 0; i < windows.size(); ++i) {
      if (windows[i]->start_ns <= mid) {
        idx = i;
      }
    }
    if (idx == windows.size() || MidpointInside(s, windows[idx]->start_ns, windows[idx]->end_ns)) {
      continue;  // before the first pass, or already counted into apply
    }
    out[idx].checkpoint_seconds += Seconds(s.end_ns - s.start_ns);
  }
  return out;
}

std::string FormatCriticalPathTable(const std::vector<PassBreakdown>& passes) {
  std::ostringstream os;
  char line[256];
  os << "critical path per pass (ms; serve and ckpt overlap/follow the pass, outside the sum)\n";
  std::snprintf(line, sizeof line, "%5s %5s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
                "pass", "crit", "wall", "compute", "pf_wait", "spec_wait", "rotation", "flush",
                "barrier", "apply", "other", "serve", "ckpt");
  os << line;
  PassBreakdown total;
  for (const PassBreakdown& p : passes) {
    std::snprintf(line, sizeof line,
                  "%5lld %5d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                  static_cast<long long>(p.pass), p.critical_rank, p.wall_seconds * 1e3,
                  p.compute_seconds * 1e3, p.prefetch_wait_seconds * 1e3,
                  p.spec_wait_seconds * 1e3, p.rotation_seconds * 1e3, p.flush_send_seconds * 1e3,
                  p.barrier_seconds * 1e3, p.master_apply_seconds * 1e3, p.other_seconds * 1e3,
                  p.param_serve_seconds * 1e3, p.checkpoint_seconds * 1e3);
    os << line;
    total.wall_seconds += p.wall_seconds;
    total.compute_seconds += p.compute_seconds;
    total.prefetch_wait_seconds += p.prefetch_wait_seconds;
    total.spec_wait_seconds += p.spec_wait_seconds;
    total.rotation_seconds += p.rotation_seconds;
    total.flush_send_seconds += p.flush_send_seconds;
    total.barrier_seconds += p.barrier_seconds;
    total.master_apply_seconds += p.master_apply_seconds;
    total.other_seconds += p.other_seconds;
    total.param_serve_seconds += p.param_serve_seconds;
    total.checkpoint_seconds += p.checkpoint_seconds;
  }
  std::snprintf(line, sizeof line,
                "%5s %5s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                "total", "", total.wall_seconds * 1e3, total.compute_seconds * 1e3,
                total.prefetch_wait_seconds * 1e3, total.spec_wait_seconds * 1e3,
                total.rotation_seconds * 1e3, total.flush_send_seconds * 1e3,
                total.barrier_seconds * 1e3, total.master_apply_seconds * 1e3,
                total.other_seconds * 1e3, total.param_serve_seconds * 1e3,
                total.checkpoint_seconds * 1e3);
  os << line;
  return os.str();
}

}  // namespace trace
}  // namespace orion
