// Fixed-size thread pool with a ParallelFor helper.
//
// Used by baselines (which model shared-memory workers) and by drivers for
// local preprocessing. The Orion runtime itself uses dedicated Executor
// threads (src/runtime) rather than this pool.
#ifndef ORION_SRC_COMMON_THREAD_POOL_H_
#define ORION_SRC_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "src/common/blocking_queue.h"
#include "src/common/types.h"

namespace orion {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules fn; Wait() blocks until all scheduled work has finished.
  void Submit(std::function<void()> fn);
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Tasks submitted but not yet finished (queued + executing). Lets callers
  // track peak backlog (e.g. the parameter server's shard-queue depth).
  i64 pending() const;

  // Runs fn(i) for i in [0, n) partitioned into num_threads contiguous
  // chunks, blocking until done.
  void ParallelFor(i64 n, const std::function<void(i64 begin, i64 end)>& fn);

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  mutable std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  i64 pending_ = 0;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_THREAD_POOL_H_
