// Minimal leveled logger. Thread-safe line-at-a-time output to stderr.
#ifndef ORION_SRC_COMMON_LOGGING_H_
#define ORION_SRC_COMMON_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>

namespace orion {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default kWarning so
// benchmarks and tests stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) {
      stream_ << v;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define ORION_LOG(level) ::orion::internal::LogLine(::orion::LogLevel::level, __FILE__, __LINE__)

}  // namespace orion

#endif  // ORION_SRC_COMMON_LOGGING_H_
