// Unbounded MPMC blocking queue used for inter-worker message delivery.
#ifndef ORION_SRC_COMMON_BLOCKING_QUEUE_H_
#define ORION_SRC_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace orion {

template <typename T>
class BlockingQueue {
 public:
  // Enqueues item; returns false (and drops the item) if the queue has been
  // closed — a closed queue accepts no further work.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed.
  // Returns nullopt only when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  // Blocks until an item is available, the queue is closed, or `timeout`
  // elapses. Returns nullopt on timeout and on closed-and-drained; callers
  // that need to distinguish the two check closed().
  template <typename Rep, typename Period>
  std::optional<T> PopWithTimeout(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_BLOCKING_QUEUE_H_
