// Size-classed, thread-local recycling pool for serialized-message buffers.
//
// Every message that crosses the fabric is carried in a std::vector<u8>.
// Before this pool, each encode allocated a fresh vector and each decode
// freed it, so a pass at high fan-out hammered the allocator with
// short-lived, identically-sized blocks. The pool closes that loop:
// ByteWriter acquires its backing storage here, and the message consumers
// (driver service loop, executor loops, delta-log writer) release consumed
// payloads back, so steady-state traffic recycles a handful of buffers per
// thread with zero heap churn.
//
// Design:
//  - Size classes are powers of two from 64 B to 1 MiB; a few buffers are
//    parked per class per thread. Oversized buffers bypass the pool (plain
//    heap allocation, counted as a miss; released oversized storage is
//    freed, counted as a discard).
//  - Caches are thread-local and lock-free on the hot path. A buffer
//    released on a different thread than it was acquired on simply parks in
//    the releasing thread's cache — each thread both encodes and decodes, so
//    caches fill from either direction.
//  - Stats blocks are shared_ptr-owned by a global registry, so
//    AggregateStats() is safe after the owning threads exit.
#ifndef ORION_SRC_COMMON_BUFFER_POOL_H_
#define ORION_SRC_COMMON_BUFFER_POOL_H_

#include <cstddef>
#include <vector>

#include "src/common/types.h"

namespace orion {

class BufferPool {
 public:
  struct Stats {
    u64 acquires = 0;   // total Acquire() calls
    u64 hits = 0;       // acquires served from a parked buffer (no heap alloc)
    u64 releases = 0;   // buffers parked for reuse
    u64 discards = 0;   // releases dropped (class full or oversized)
    // Sum over threads of each thread's peak parked bytes — an upper bound
    // on the pool's aggregate footprint at any instant.
    u64 pooled_bytes_high_water = 0;
  };

  // A buffer with size 0 and capacity >= min_capacity: a parked buffer of
  // the matching class when one is available, otherwise a fresh allocation
  // rounded up to the class size (so it can re-enter the pool on release).
  static std::vector<u8> Acquire(size_t min_capacity);

  // Parks `buf`'s storage in this thread's cache for reuse. Buffers with no
  // capacity are ignored; oversized buffers and full classes are freed.
  static void Release(std::vector<u8>&& buf);

  // Aggregated over every thread that ever touched the pool.
  static Stats AggregateStats();

  // Test helpers: zero all stat blocks / drop this thread's parked buffers.
  static void ResetStatsForTest();
  static void TrimThreadCacheForTest();
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_BUFFER_POOL_H_
