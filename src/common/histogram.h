// Approximate per-dimension histograms for skew-aware iteration-space
// partitioning (paper Sec. 4.3 "Dealing with Skewed Data Distribution").
//
// Orion computes a histogram along each candidate partitioning dimension and
// derives partition boundaries that equalize the *number of iterations* per
// partition rather than the key range.
#ifndef ORION_SRC_COMMON_HISTOGRAM_H_
#define ORION_SRC_COMMON_HISTOGRAM_H_

#include <cmath>
#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"

namespace orion {

// Histogram of an executor's reply waits: the blocking portion of each
// AwaitPrefetch (0 when the prefetch was fully hidden under compute).
// Log-scale bucket upper bounds: 0.1ms, 1ms, 10ms, 100ms, 1s, +inf.
struct WaitHistogram {
  static constexpr int kNumBuckets = 6;
  u64 counts[kNumBuckets] = {0, 0, 0, 0, 0, 0};
  double total_seconds = 0.0;
  double max_seconds = 0.0;

  void Add(double seconds) {
    double bound = 1e-4;
    int b = 0;
    while (b < kNumBuckets - 1 && seconds >= bound) {
      bound *= 10.0;
      ++b;
    }
    ++counts[b];
    total_seconds += seconds;
    if (seconds > max_seconds) {
      max_seconds = seconds;
    }
  }

  // Folds another histogram into this one (buckets are aligned by
  // construction, so a merge is exact up to bucket granularity).
  void Merge(const WaitHistogram& o) {
    for (int b = 0; b < kNumBuckets; ++b) {
      counts[b] += o.counts[b];
    }
    total_seconds += o.total_seconds;
    if (o.max_seconds > max_seconds) {
      max_seconds = o.max_seconds;
    }
  }

  u64 total_count() const {
    u64 n = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      n += counts[b];
    }
    return n;
  }

  // Approximate quantile (q in [0, 1]) by log interpolation inside the
  // bucket holding the target rank. The first bucket interpolates linearly
  // from 0 and the open-ended last bucket interpolates up to max_seconds;
  // results are clamped to [0, max_seconds].
  double ApproxPercentile(double q) const {
    const u64 n = total_count();
    if (n == 0) {
      return 0.0;
    }
    if (q <= 0.0) {
      return 0.0;
    }
    if (q > 1.0) {
      q = 1.0;
    }
    const double target = q * static_cast<double>(n);
    double cum = 0.0;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (counts[b] == 0) {
        continue;
      }
      const double next = cum + static_cast<double>(counts[b]);
      if (target <= next || b == kNumBuckets - 1) {
        const double frac = (target - cum) / static_cast<double>(counts[b]);
        const double lo = b == 0 ? 0.0 : 1e-4 * std::pow(10.0, b - 1);
        double hi = b == kNumBuckets - 1 ? max_seconds : 1e-4 * std::pow(10.0, b);
        if (hi < lo) {
          hi = lo;
        }
        double v;
        if (lo <= 0.0) {
          v = hi * frac;  // linear in the bucket touching zero
        } else {
          v = lo * std::pow(hi / lo, frac);  // log interpolation
        }
        if (max_seconds > 0.0 && v > max_seconds) {
          v = max_seconds;
        }
        return v;
      }
      cum = next;
    }
    return max_seconds;
  }

  void Serialize(ByteWriter* w) const {
    for (int b = 0; b < kNumBuckets; ++b) {
      w->Put<u64>(counts[b]);
    }
    w->Put<double>(total_seconds);
    w->Put<double>(max_seconds);
  }

  static WaitHistogram Deserialize(ByteReader* r) {
    WaitHistogram h;
    for (int b = 0; b < kNumBuckets; ++b) {
      h.counts[b] = r->Get<u64>();
    }
    h.total_seconds = r->Get<double>();
    h.max_seconds = r->Get<double>();
    return h;
  }
};

class DimHistogram {
 public:
  // Tracks counts over [lo, hi] with the given number of buckets.
  DimHistogram(i64 lo, i64 hi, int num_buckets);

  void Add(i64 key, i64 count = 1);

  // Returns `num_parts - 1` split keys such that partition p holds keys in
  // [split[p-1]+1 .. split[p]] and partitions have approximately equal mass.
  // Split keys are bucket upper bounds (approximation granularity = bucket).
  std::vector<i64> EqualMassSplits(int num_parts) const;

  i64 total() const { return total_; }
  i64 lo() const { return lo_; }
  i64 hi() const { return hi_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  i64 bucket_count(int b) const { return buckets_[b]; }

  // Upper key bound (inclusive) of bucket b.
  i64 BucketHi(int b) const;

 private:
  i64 lo_;
  i64 hi_;
  i64 width_;  // keys per bucket (last bucket may be wider)
  i64 total_ = 0;
  std::vector<i64> buckets_;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_HISTOGRAM_H_
