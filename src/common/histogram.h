// Approximate per-dimension histograms for skew-aware iteration-space
// partitioning (paper Sec. 4.3 "Dealing with Skewed Data Distribution").
//
// Orion computes a histogram along each candidate partitioning dimension and
// derives partition boundaries that equalize the *number of iterations* per
// partition rather than the key range.
#ifndef ORION_SRC_COMMON_HISTOGRAM_H_
#define ORION_SRC_COMMON_HISTOGRAM_H_

#include <vector>

#include "src/common/types.h"

namespace orion {

class DimHistogram {
 public:
  // Tracks counts over [lo, hi] with the given number of buckets.
  DimHistogram(i64 lo, i64 hi, int num_buckets);

  void Add(i64 key, i64 count = 1);

  // Returns `num_parts - 1` split keys such that partition p holds keys in
  // [split[p-1]+1 .. split[p]] and partitions have approximately equal mass.
  // Split keys are bucket upper bounds (approximation granularity = bucket).
  std::vector<i64> EqualMassSplits(int num_parts) const;

  i64 total() const { return total_; }
  i64 lo() const { return lo_; }
  i64 hi() const { return hi_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  i64 bucket_count(int b) const { return buckets_[b]; }

  // Upper key bound (inclusive) of bucket b.
  i64 BucketHi(int b) const;

 private:
  i64 lo_;
  i64 hi_;
  i64 width_;  // keys per bucket (last bucket may be wider)
  i64 total_ = 0;
  std::vector<i64> buckets_;
};

}  // namespace orion

#endif  // ORION_SRC_COMMON_HISTOGRAM_H_
