// Live telemetry plane: background monitor, Prometheus exposition endpoint,
// straggler detector, and the crash-safe flight recorder (ROADMAP
// "observability").
//
// The load-bearing invariant is the last test: enabling the monitor and the
// scrape endpoint must leave the computation bit-for-bit identical, because
// probes only read atomics and the endpoint renders from an immutable
// registry snapshot — observability can never feed back into scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flight_recorder.h"
#include "src/common/metrics_registry.h"
#include "src/net/fault_injector.h"
#include "src/obs/anomaly.h"
#include "src/obs/metrics_endpoint.h"
#include "src/obs/monitor.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

std::string TempPath(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/orion_obs_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

using CellMap = std::map<i64, std::vector<f32>>;

CellMap Snapshot(Driver* d, DistArrayId id) {
  CellMap out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

::testing::AssertionResult BitIdentical(const CellMap& a, const CellMap& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

// Ordered 8x8 wavefront over a server-hosted table: every step ends in a
// global barrier, so the master observes one (rank, arrival) round per step
// — the feed the straggler detector consumes.
struct WavefrontRun {
  CellMap out_r;
  CellMap out_c;
  f64 accum = 0.0;
  std::string report;
  MetricsRegistry metrics;
  std::vector<bool> flagged;  // per physical rank
};

struct WavefrontKnobs {
  int passes = 3;
  FaultPlan fault_plan;
  bool monitor = false;
  bool endpoint = false;
  // Scraped mid-run when the endpoint is up (one body per pass).
  std::vector<std::string>* scrapes = nullptr;
};

WavefrontRun RunWavefront(const WavefrontKnobs& knobs) {
  constexpr int kWorkers = 4;
  constexpr i64 kN = 8;

  DriverConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.seed = 21;
  cfg.fault_plan = knobs.fault_plan;
  if (cfg.fault_plan.Active()) {
    cfg.supervisor.enabled = true;
    cfg.supervisor.heartbeat_interval_seconds = 0.02;
    cfg.supervisor.retry_initial_seconds = 0.02;
    cfg.supervisor.death_timeout_seconds = 2.0;
  }
  Driver driver(cfg);
  if (knobs.monitor) {
    ORION_CHECK_OK(driver.EnableMonitor(/*period_seconds=*/0.005));
  }
  int port = 0;
  if (knobs.endpoint) {
    auto p = driver.StartMetricsEndpoint(0);
    ORION_CHECK_OK(p.status());
    port = *p;
  }

  auto data = driver.CreateDistArray("data", {kN, kN}, 1, Density::kDense);
  auto out_r = driver.CreateDistArray("out_r", {kN}, 2, Density::kDense);
  auto out_c = driver.CreateDistArray("out_c", {kN}, 2, Density::kDense);
  auto table = driver.CreateDistArray("table", {2 * kN - 1}, 2, Density::kDense);
  driver.MapCells(data, [](i64 key, f32* v) {
    v[0] = 1.0f + 0.125f * static_cast<f32>(key % 5);
  });
  driver.MapCells(table, [](i64 key, f32* v) {
    v[0] = 0.5f + 0.01f * static_cast<f32>(key);
    v[1] = 1.0f - 0.01f * static_cast<f32>(key);
  });
  const int acc = driver.CreateAccumulator();

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kN, kN};
  spec.ordered = true;
  spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, /*is_write=*/true);
  spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, /*is_write=*/true);
  spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 /*is_write=*/false);

  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32* t = ctx.Read(table, k);
    const f32 s = value[0] * t[0] + t[1];
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    ctx.Mutate(out_r, ki)[0] += s;
    ctx.Mutate(out_c, kj)[1] += s * 0.5f;
    ctx.AccumulatorAdd(acc, static_cast<f64>(s));
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.planner.replicate_threshold_floats = 0;  // force table -> kServer
  auto loop = driver.Compile(spec, kernel, options);
  ORION_CHECK_OK(loop.status());

  WavefrontRun run;
  for (int p = 0; p < knobs.passes; ++p) {
    ORION_CHECK_OK(driver.Execute(*loop));
    if (knobs.endpoint && knobs.scrapes != nullptr) {
      auto body = obs::HttpGet(port, "/metrics");
      ORION_CHECK_OK(body.status());
      knobs.scrapes->push_back(*std::move(body));
    }
  }

  if (knobs.monitor) {
    driver.monitor()->SampleNow();  // final sample sees the finished run
  }
  run.out_r = Snapshot(&driver, out_r);
  run.out_c = Snapshot(&driver, out_c);
  run.accum = driver.AccumulatorValue(acc);
  run.report = driver.CriticalPathReport();
  run.metrics = driver.ExportMetrics();
  for (int r = 0; r < kWorkers; ++r) {
    run.flagged.push_back(driver.StragglerFlagged(r));
  }
  return run;
}

// ---- Monitor ----

TEST(ObsMonitor, SamplesProbesAndMergesLiveSeries) {
  WavefrontKnobs knobs;
  knobs.monitor = true;
  const WavefrontRun run = RunWavefront(knobs);

  EXPECT_GT(run.metrics.Counter("live.monitor.samples"), 0u);
  const auto gauges = run.metrics.GaugesSnapshot();
  // Probe families registered by the driver, all under the live. prefix.
  EXPECT_TRUE(gauges.count("live.fabric.inbox.master"));
  EXPECT_TRUE(gauges.count("live.prefetch.ring_fill.w0"));
  EXPECT_TRUE(gauges.count("live.rank.w0.completed"));
  EXPECT_TRUE(gauges.count("live.bufferpool.pooled_bytes"));
  // The per-rank completed-pass watermark saw the run finish.
  EXPECT_GE(gauges.at("live.rank.w0.completed"), 0.0);
  // Each retained sample contributes one series point per probe.
  EXPECT_FALSE(run.metrics.SeriesCopy("live.rank.w0.completed").empty());
}

TEST(ObsMonitor, StartStopIsIdempotentAndStandalone) {
  obs::Monitor::Options opt;
  opt.period_seconds = 0.001;
  opt.ring_capacity = 4;
  obs::Monitor mon(opt);
  std::atomic<int> calls{0};
  mon.RegisterProbe("probe.a", [&] { return static_cast<double>(++calls); });
  ASSERT_TRUE(mon.Start().ok());
  EXPECT_TRUE(mon.running());
  EXPECT_FALSE(mon.Start().ok());  // double-start refused
  mon.SampleNow();
  mon.Stop();
  mon.Stop();  // idempotent
  EXPECT_FALSE(mon.running());
  EXPECT_GT(mon.samples_taken(), 0u);
  // Ring stays bounded no matter how many samples were taken.
  EXPECT_LE(mon.SamplesSnapshot().size(), 4u);
  const obs::Monitor::Sample last = mon.Latest();
  ASSERT_EQ(last.values.size(), 1u);
  EXPECT_GT(last.values[0], 0.0);
}

// ---- Prometheus endpoint ----

TEST(ObsEndpoint, ServesScrapeAndHealthOverLoopback) {
  std::vector<std::string> scrapes;
  WavefrontKnobs knobs;
  knobs.monitor = true;
  knobs.endpoint = true;
  knobs.scrapes = &scrapes;
  RunWavefront(knobs);

  ASSERT_EQ(scrapes.size(), 3u);
  const std::string& body = scrapes.back();
  EXPECT_NE(body.find("# TYPE orion_pass_wall_seconds gauge"), std::string::npos);
  EXPECT_NE(body.find("orion_live_"), std::string::npos);
  // Wait histograms expose the full cumulative triple.
  EXPECT_NE(body.find("orion_pass_reply_wait_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(body.find("orion_pass_reply_wait_sum"), std::string::npos);
  EXPECT_NE(body.find("orion_pass_reply_wait_count"), std::string::npos);

  // Exposition hygiene: one # TYPE line per family, never two.
  std::set<std::string> type_lines;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_TRUE(type_lines.insert(line).second) << "duplicate: " << line;
    }
  }
  EXPECT_GT(type_lines.size(), 10u);
}

TEST(ObsEndpoint, HealthAndNotFound) {
  obs::Monitor mon;
  obs::MetricsEndpoint ep(&mon);
  auto port = ep.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();
  ASSERT_GT(*port, 0);

  auto health = obs::HttpGet(*port, "/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(*health, "ok\n");

  // No registry published yet: /metrics still answers (empty families).
  auto metrics = obs::HttpGet(*port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  EXPECT_FALSE(obs::HttpGet(*port, "/nope").ok());
  ep.Stop();
  ep.Stop();  // idempotent
  EXPECT_FALSE(obs::HttpGet(*port, "/healthz").ok());
}

TEST(ObsEndpoint, RenderEscapesAndSanitizesNames) {
  MetricsRegistry reg;
  reg.SetGauge("weird.gauge-with/slash", 2.5);
  reg.SetCounter("plain.counter", 7);
  const std::string text = obs::RenderPrometheus(reg, nullptr);
  EXPECT_NE(text.find("orion_weird_gauge_with_slash 2.5"), std::string::npos);
  EXPECT_NE(text.find("orion_plain_counter 7"), std::string::npos);
  // Sample lines carry only sanitized names ('/' survives in # HELP text).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind('#', 0) != 0) {
      EXPECT_EQ(line.find('/'), std::string::npos) << line;
    }
  }
}

// ---- Straggler detector ----

TEST(ObsAnomaly, UnitFlagAfterConfirmRoundsAndVerdict) {
  obs::StragglerOptions opt;
  opt.confirm_rounds = 3;
  obs::StragglerDetector det(opt);
  // Too few ranks: ignored entirely.
  det.ObserveRound({{0, 1.0}, {1, 5.0}});
  EXPECT_EQ(det.rounds(), 0u);

  const std::vector<std::pair<int, double>> skewed = {
      {0, 0.010}, {1, 0.011}, {2, 0.060}, {3, 0.010}};
  det.ObserveRound(skewed);
  det.ObserveRound(skewed);
  EXPECT_FALSE(det.Flagged(2));  // two rounds: not confirmed yet
  det.ObserveRound(skewed);
  EXPECT_TRUE(det.Flagged(2));
  EXPECT_FALSE(det.Flagged(0));
  EXPECT_GT(det.LagEwma(2), 0.0);
  EXPECT_EQ(det.TakeNewlyFlagged(), std::vector<int>{2});
  EXPECT_TRUE(det.TakeNewlyFlagged().empty());  // WARN-once semantics
  EXPECT_NE(det.Verdict().find("rank 2"), std::string::npos);

  // The flag is sticky: it takes confirm_rounds healthy rounds in a row to
  // clear, so one in-band observation cannot flap the verdict.
  const std::vector<std::pair<int, double>> even = {
      {0, 0.010}, {1, 0.010}, {2, 0.010}, {3, 0.010}};
  det.ObserveRound(even);
  det.ObserveRound(even);
  EXPECT_TRUE(det.Flagged(2));
  det.ObserveRound(even);
  EXPECT_FALSE(det.Flagged(2));
}

TEST(ObsAnomaly, InjectedStraggleIsDetectedEndToEnd) {
  WavefrontKnobs knobs;
  knobs.fault_plan.straggle_rank = 2;
  knobs.fault_plan.straggle_seconds = 0.015;
  const WavefrontRun run = RunWavefront(knobs);

  ASSERT_EQ(run.flagged.size(), 4u);
  EXPECT_TRUE(run.flagged[2]);
  EXPECT_FALSE(run.flagged[0]);
  EXPECT_FALSE(run.flagged[1]);
  EXPECT_FALSE(run.flagged[3]);
  EXPECT_EQ(run.metrics.Gauge("anomaly.straggler.2"), 1.0);
  EXPECT_GT(run.metrics.Gauge("anomaly.straggler_lag_ewma.2"), 0.0);
  EXPECT_GT(run.metrics.Counter("anomaly.flags_total"), 0u);
  EXPECT_NE(run.report.find("stragglers: rank 2"), std::string::npos);

  // The straggle clause is pure timing skew: the computation is untouched.
  const WavefrontRun clean = RunWavefront({});
  EXPECT_TRUE(BitIdentical(clean.out_r, run.out_r));
  EXPECT_TRUE(BitIdentical(clean.out_c, run.out_c));
  EXPECT_EQ(clean.accum, run.accum);
}

TEST(ObsAnomaly, CleanChaosRunStaysSilent) {
  // Message faults (drop/dup/delay) delay single rounds, never the same
  // rank for confirm_rounds in a row — no straggler flags.
  WavefrontKnobs knobs;
  knobs.fault_plan.seed = 29;
  knobs.fault_plan.drop_prob = 0.03;
  knobs.fault_plan.dup_prob = 0.03;
  knobs.fault_plan.delay_prob = 0.03;
  const WavefrontRun run = RunWavefront(knobs);

  EXPECT_EQ(run.metrics.Counter("anomaly.flags_total"), 0u);
  EXPECT_NE(run.report.find("stragglers: none"), std::string::npos);
  EXPECT_GT(run.metrics.Counter("anomaly.rounds"), 0u);
}

// ---- Determinism: the whole plane is observation-only ----

TEST(ObsDeterminism, MonitorAndEndpointOnOffBitIdentical) {
  const WavefrontRun off = RunWavefront({});

  std::vector<std::string> scrapes;
  WavefrontKnobs on;
  on.monitor = true;
  on.endpoint = true;
  on.scrapes = &scrapes;
  const WavefrontRun watched = RunWavefront(on);

  EXPECT_TRUE(BitIdentical(off.out_r, watched.out_r));
  EXPECT_TRUE(BitIdentical(off.out_c, watched.out_c));
  EXPECT_EQ(off.accum, watched.accum);
  EXPECT_FALSE(scrapes.empty());  // the endpoint really was scraped mid-run
}

// ---- Flight recorder ----

TEST(ObsFlightRecorder, RingWrapsAndDumpsOldestFirst) {
  fr::ResetForTest();
  constexpr int kEvents = 5000;  // > ring capacity (4096): oldest overwritten
  for (int i = 0; i < kEvents; ++i) {
    fr::Record(fr::EventKind::kNote, i % 4, i, 2 * i, "wrap");
  }
  EXPECT_EQ(fr::TotalRecorded(), static_cast<u64>(kEvents));
  const auto events = fr::SnapshotEvents();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), 4096u);
  // Oldest first, contiguous tail of the record stream.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, events[i - 1].a + 1);
  }
  EXPECT_EQ(events.back().a, kEvents - 1);
  EXPECT_EQ(events.back().detail, "wrap");

  const std::string json = fr::DumpJson("unit");
  EXPECT_NE(json.find("\"reason\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"note\""), std::string::npos);
}

TEST(ObsFlightRecorder, FatalDumpPathIsSignalSafeRenderer) {
  fr::ResetForTest();
  fr::Record(fr::EventKind::kNote, 1, 42, 0, "fatal-test");
  const std::string path = TempPath("fatal") + "/blackbox.json";
  fr::SetFatalDumpPath(path.c_str());
  fr::DumpOnFatal("test_reason");
  const std::string dump = ReadFile(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("test_reason"), std::string::npos);
  EXPECT_NE(dump.find("fatal-test"), std::string::npos);
  EXPECT_NE(dump.find("\"events_recorded\""), std::string::npos);
}

TEST(ObsFlightRecorder, CrashRecoveryLeavesParseableBlackBox) {
  fr::ResetForTest();

  // The durability rejoin scenario: rank 1 crashes at pass 2, is retired to
  // N-1, then streams back in from the delta log.
  constexpr i64 kKeys = 256;
  constexpr i64 kSamples = 2048;
  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.seed = 19;
  cfg.versioned_store = true;
  cfg.fault_plan.seed = 29;
  cfg.fault_plan.crashes = {{/*rank=*/1, /*pass=*/2, /*step=*/-1}};
  cfg.supervisor.enabled = true;
  cfg.supervisor.heartbeat_interval_seconds = 0.02;
  cfg.supervisor.retry_initial_seconds = 0.02;
  cfg.supervisor.death_timeout_seconds = 1.0;
  Driver driver(cfg);

  auto samples = driver.CreateDistArray("samples", {kSamples}, 3, Density::kDense);
  auto table_r = driver.CreateDistArray("table_r", {kKeys}, 1, Density::kDense);
  auto table_w = driver.CreateDistArray("table_w", {kKeys}, 1, Density::kDense);
  driver.MapCells(samples, [](i64 key, f32* v) {
    v[0] = static_cast<f32>((key * 31 + 7) % kKeys);
    v[1] = static_cast<f32>((key * 17 + 3) % 64);
    v[2] = static_cast<f32>(1 + key % 5);
  });
  driver.MapCells(table_r, [](i64 key, f32* v) { v[0] = static_cast<f32>(key % 11); });
  driver.MapCells(table_w, [](i64 key, f32* v) { v[0] = static_cast<f32>(key % 5); });
  driver.RegisterBuffer(table_w, 1, MakeAddApplyFn());

  LoopSpec spec;
  spec.iter_space = samples;
  spec.iter_extents = {kSamples};
  spec.AddAccess(table_r, "table_r", {Expr::Runtime("rk")}, /*is_write=*/false);
  spec.AddAccess(table_w, "table_w", {Expr::Runtime("wk")}, /*is_write=*/true,
                 /*buffered=*/true);
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    (void)idx;
    const i64 rk[1] = {static_cast<i64>(value[0])};
    const i64 wk[1] = {static_cast<i64>(value[1])};
    const f32 upd = value[2] * (ctx.Read(table_r, rk)[0] + 1.0f);
    ctx.BufferUpdate(table_w, wk, &upd);
  };
  ParallelForOptions options;
  options.server_sync_rounds = 2;
  options.planner.replicate_threshold_floats = 0;
  auto loop = driver.Compile(spec, kernel, options);
  ASSERT_TRUE(loop.ok()) << loop.status();

  Driver::DurabilityOptions dur;
  dur.every_n_passes = 1;
  dur.rejoin_crashed_workers = true;
  ASSERT_TRUE(driver.EnableDurability({table_w}, TempPath("blackbox_log"), dur).ok());

  for (int p = 0; p < 5; ++p) {
    ASSERT_TRUE(driver.Execute(*loop).ok());
  }
  const RuntimeMetrics rm = driver.runtime_metrics();
  ASSERT_EQ(rm.workers_lost, 1u);
  ASSERT_EQ(rm.worker_rejoins, 1u);

  const std::string path = TempPath("blackbox") + "/blackbox.json";
  ASSERT_TRUE(driver.DumpBlackBox(path).ok());
  const std::string dump = ReadFile(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(dump.front(), '{');

  // The whole membership transition is on the record: the crash decision,
  // the death verdict, the retire to N-1, and the rejoin back to N.
  EXPECT_NE(dump.find("\"crash_point\""), std::string::npos);
  EXPECT_NE(dump.find("\"worker_dead\""), std::string::npos);
  EXPECT_NE(dump.find("\"retire\""), std::string::npos);
  EXPECT_NE(dump.find("\"rejoin\""), std::string::npos);
  EXPECT_NE(dump.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(dump.find("\"pass_start\""), std::string::npos);
  EXPECT_NE(dump.find("\"live_ranks\":[0,1,2,3]"), std::string::npos);

  // Structurally sound JSON: balanced braces and brackets.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < dump.size(); ++i) {
    const char ch = dump[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{') ++braces;
    else if (ch == '}') --braces;
    else if (ch == '[') ++brackets;
    else if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// ---- Registry hardening (the TSan target) ----

TEST(ObsRegistry, DumpConcurrentWithAppendIsSafe) {
  constexpr u64 kWrites = 20000;
  MetricsRegistry reg;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (u64 n = 0; n < kWrites; ++n) {
      reg.AddCounter("hammer.count", 1);
      reg.SetGauge("hammer.gauge", static_cast<double>(n));
      reg.AppendSeries("hammer.series", static_cast<double>(n));
    }
    done.store(true);
  });
  // Dump continuously while the writer runs (the TSan target).
  while (!done.load()) {
    ASSERT_FALSE(reg.ToJson().empty());
  }
  writer.join();
  // Every dump was one consistent cut; the final one reflects all writes.
  const std::string fin = reg.ToJson();
  EXPECT_NE(fin.find("hammer.series"), std::string::npos);
  EXPECT_EQ(reg.Counter("hammer.count"), kWrites);
  EXPECT_EQ(reg.SeriesCopy("hammer.series").size(), kWrites);
}

TEST(ObsRegistry, JsonEscapesHostileNames) {
  MetricsRegistry reg;
  reg.SetGauge("evil\"name\\with\nnewline", 1.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline"), std::string::npos);
  // Still one structurally valid object (trailing newline after the brace).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.find_last_not_of('\n'), json.size() - 2);
  EXPECT_EQ(json[json.size() - 2], '}');
}

}  // namespace
}  // namespace orion
