// Online snapshot-serving tier: lookups answered from pinned COW snapshots
// concurrently with training. The acceptance bar checked here: training is
// bit-for-bit identical with serving on or off; lookups at a pass boundary
// return exactly the latest published version (staleness bounded by one
// pass); overload sheds with explicit statuses instead of blocking; the
// quiesce handshake survives lookup hammering across pass boundaries and
// Flat() collapses; and the tier stays correct under message-fault chaos and
// a worker crash + rejoin.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/driver.h"
#include "src/serve/serving_tier.h"

namespace orion {
namespace {

using serve::LookupResult;
using serve::LookupStatus;
using serve::ServingTier;
using serve::ServingTierOptions;

// Bitwise snapshot of a DistArray's master cells (gathers first).
std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

::testing::AssertionResult BitIdentical(const std::map<i64, std::vector<f32>>& a,
                                        const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Standalone tier over a hand-built store: the version lifecycle without a
// driver in the way.

TEST(ServingTierStandalone, PublishLookupRepublishQuiesce) {
  constexpr i64 kCells = 100;
  constexpr i32 kDim = 4;
  CellStore flat = CellStore::DenseRange(kDim, 0, kCells - 1);
  for (i64 k = 0; k < kCells; ++k) {
    f32* v = flat.GetOrCreate(k);
    for (i32 d = 0; d < kDim; ++d) {
      v[d] = static_cast<f32>(k * 10 + d);
    }
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();

  ServingTier tier({{/*id=*/7, "t", kDim}}, ServingTierOptions{});

  auto pub = store.PublishVersion();
  EXPECT_EQ(pub.seq, 1u);
  tier.Publish(7, std::move(pub.snap), pub.seq);
  EXPECT_EQ(tier.published_version(7), 1u);

  // In-range hits, plus out-of-range keys answered as graceful misses.
  const std::vector<i64> keys = {0, 5, 99, -3, 1000};
  LookupResult r = tier.Lookup(7, keys);
  ASSERT_EQ(r.status, LookupStatus::kOk);
  EXPECT_EQ(r.version, 1u);
  ASSERT_EQ(r.values.size(), keys.size() * kDim);
  ASSERT_EQ(r.hits.size(), keys.size());
  EXPECT_EQ(r.hits[0], 1);
  EXPECT_EQ(r.hits[1], 1);
  EXPECT_EQ(r.hits[2], 1);
  EXPECT_EQ(r.hits[3], 0);
  EXPECT_EQ(r.hits[4], 0);
  EXPECT_EQ(r.values[1 * kDim + 2], 52.0f);  // key 5, lane 2
  EXPECT_EQ(r.values[3 * kDim + 0], 0.0f);   // missed keys stay zero

  // Writer mutates after the publish: the served version must not move
  // (snapshot isolation) until the next publish swaps it in.
  store.GetOrCreate(5)[2] = -1.0f;
  r = tier.Lookup(7, keys);
  ASSERT_EQ(r.status, LookupStatus::kOk);
  EXPECT_EQ(r.values[1 * kDim + 2], 52.0f);

  auto pub2 = store.PublishVersion();
  EXPECT_EQ(pub2.seq, 2u);
  tier.Publish(7, std::move(pub2.snap), pub2.seq);
  r = tier.Lookup(7, {5});
  ASSERT_EQ(r.status, LookupStatus::kOk);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(r.values[2], -1.0f);

  // Lookup on an array the tier was never given.
  EXPECT_EQ(tier.Lookup(99, {0}).status, LookupStatus::kNotServing);

  // Quiesce releases the pin, so the store may collapse to flat again.
  EXPECT_GT(store.live_pins(), 0);
  tier.QuiesceForCollapse(7);
  EXPECT_EQ(store.live_pins(), 0);
  EXPECT_EQ(tier.Lookup(7, {5}).status, LookupStatus::kNotServing);
  CellStore& back = store.Flat();
  EXPECT_EQ(back.Get(5)[2], -1.0f);

  const serve::ServingStats ss = tier.StatsSnapshot();
  EXPECT_EQ(ss.versions_published, 2u);
  EXPECT_GE(ss.ok, 3u);
  EXPECT_GE(ss.not_serving, 2u);
  EXPECT_EQ(ss.shed_queue_full + ss.shed_bytes, 0u);
  EXPECT_GT(tier.LatencySnapshot().total_count(), 0u);

  tier.Stop();
  EXPECT_EQ(tier.Lookup(7, {5}).status, LookupStatus::kShutdown);
}

TEST(ServingTierStandalone, DirtyPagesTrackPublishDeltas) {
  constexpr i64 kCells = 2048;
  CellStore flat = CellStore::DenseRange(1, 0, kCells - 1);
  for (i64 k = 0; k < kCells; ++k) {
    *flat.GetOrCreate(k) = static_cast<f32>(k);
  }
  VersionedCellStore store(std::move(flat));
  store.SetPageCells(256);
  store.BeginServing();

  // First publish after pagination: every page is new to its version.
  auto p1 = store.PublishVersion();
  EXPECT_EQ(p1.dirty_pages.size(), 8u);

  // One cell written -> exactly one page in the next publish's delta, even
  // though the checkpoint-delta bitmap was cleared independently in between.
  store.MarkCheckpointed();
  *store.GetOrCreate(700) = -7.0f;
  auto p2 = store.PublishVersion();
  ASSERT_EQ(p2.dirty_pages.size(), 1u);
  EXPECT_EQ(p2.dirty_pages[0], 700u / 256u);

  // No writes -> empty delta.
  auto p3 = store.PublishVersion();
  EXPECT_TRUE(p3.dirty_pages.empty());
  EXPECT_EQ(p3.seq, 3u);
}

// ---------------------------------------------------------------------------
// Overload: bounded queues and the in-flight-bytes budget shed with explicit
// statuses; every caller returns (nothing blocks indefinitely).

TEST(ServingTierStandalone, OverloadShedsInsteadOfBlocking) {
  CellStore flat = CellStore::DenseRange(1, 0, 63);
  for (i64 k = 0; k < 64; ++k) {
    *flat.GetOrCreate(k) = 1.0f;
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();

  ServingTierOptions opt;
  opt.num_shards = 1;
  opt.max_queue_per_shard = 2;
  opt.max_batch = 1;
  opt.batch_delay_seconds_for_test = 0.01;  // serve ~100/s so the queue fills
  ServingTier tier({{1, "t", 1}}, opt);
  auto pub = store.PublishVersion();
  tier.Publish(1, std::move(pub.snap), pub.seq);

  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        const LookupResult r = tier.Lookup(1, {static_cast<i64>(i)});
        if (r.status == LookupStatus::kOk) {
          ++ok;
        } else if (r.status == LookupStatus::kShedQueueFull) {
          ++shed;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(ok + shed + other, kClients * kPerClient);  // everyone returned
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(shed.load(), 0) << "bounded queue never shed under 8x overload";
  EXPECT_EQ(other.load(), 0);

  // Bytes budget: a request whose reply alone exceeds the limit is rejected
  // up front with its own status.
  ServingTierOptions tiny;
  tiny.max_inflight_bytes = 16;
  ServingTier tier2({{1, "t", 1}}, tiny);
  const std::vector<i64> big(100, 0);
  EXPECT_EQ(tier2.Lookup(1, big).status, LookupStatus::kShedBytes);
  EXPECT_EQ(tier2.StatsSnapshot().shed_bytes, 1u);
}

// ---------------------------------------------------------------------------
// Driver-integrated workload: the ordered wavefront over a dense 2-D space.
// `table` is server-hosted (master-authoritative all pass), out_r/out_c
// rotate and return to the master at every pass boundary, so all three
// republish each pass. The kernel's sums are small integers — exact in f32 —
// so per-pass freshness can be asserted against closed forms:
//   out_r[i] = p * (8i + 36),  out_c[j] = p * (8j + 36),  table[k] = k + 1.

constexpr i64 kRows = 8;
constexpr i64 kCols = 8;

struct Wavefront {
  std::unique_ptr<Driver> driver;
  DistArrayId data{}, out_r{}, out_c{}, table{};
  i32 loop = -1;
};

Wavefront MakeWavefront(FaultPlan fault_plan = {}) {
  Wavefront w;
  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.seed = 21;
  cfg.param_server_shards = 4;
  cfg.fault_plan = fault_plan;
  if (cfg.fault_plan.Active()) {
    cfg.supervisor.enabled = true;
    cfg.supervisor.heartbeat_interval_seconds = 0.02;
    cfg.supervisor.retry_initial_seconds = 0.02;
    cfg.supervisor.death_timeout_seconds = 1.0;
  }
  w.driver = std::make_unique<Driver>(cfg);
  w.data = w.driver->CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  w.out_r = w.driver->CreateDistArray("out_r", {kRows}, 1, Density::kDense);
  w.out_c = w.driver->CreateDistArray("out_c", {kCols}, 1, Density::kDense);
  w.table = w.driver->CreateDistArray("table", {kRows + kCols - 1}, 1, Density::kDense);
  {
    CellStore& cells = w.driver->MutableCells(w.data);
    for (i64 i = 0; i < kRows; ++i) {
      for (i64 j = 0; j < kCols; ++j) {
        *cells.GetOrCreate(i * kCols + j) = 1.0f;
      }
    }
    w.driver->MapCells(w.table, [](i64 key, f32* v) { v[0] = static_cast<f32>(key + 1); });
  }

  LoopSpec spec;
  spec.iter_space = w.data;
  spec.iter_extents = {kRows, kCols};
  spec.ordered = true;
  spec.AddAccess(w.out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(w.out_c, "out_c", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(w.table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);

  const DistArrayId out_r = w.out_r;
  const DistArrayId out_c = w.out_c;
  const DistArrayId table = w.table;
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32 t = ctx.Read(table, k)[0];
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    ctx.Mutate(out_r, ki)[0] += value[0] * t;
    ctx.Mutate(out_c, kj)[0] += value[0] * t;
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.planner.replicate_threshold_floats = 0;
  auto loop = w.driver->Compile(spec, kernel, options);
  EXPECT_TRUE(loop.ok()) << loop.status();
  EXPECT_EQ(w.driver->PlanOf(*loop).placements.at(w.table).scheme,
            PartitionScheme::kServer);
  w.loop = *loop;
  return w;
}

// Client hammer: spins lookups against every served array until stopped,
// tallying statuses. Read-only traffic — must never perturb training.
struct Hammer {
  explicit Hammer(ServingTier* tier, std::vector<DistArrayId> arrays, int threads = 2)
      : tier_(tier), arrays_(std::move(arrays)) {
    for (int t = 0; t < threads; ++t) {
      threads_.emplace_back([this, t] { Run(t); });
    }
  }
  void StopAndJoin() {
    stop_.store(true);
    for (auto& t : threads_) {
      t.join();
    }
  }
  void Run(int seed) {
    u64 x = static_cast<u64>(seed) * 2654435761u + 12345u;
    std::vector<i64> keys(8);
    while (!stop_.load(std::memory_order_relaxed)) {
      for (auto& k : keys) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        k = static_cast<i64>((x >> 33) % kRows);
      }
      const LookupResult r = tier_->Lookup(arrays_[x % arrays_.size()], keys);
      switch (r.status) {
        case LookupStatus::kOk:
          ++ok_;
          break;
        case LookupStatus::kNotServing:
          ++not_serving_;
          break;
        default:
          ++other_;
          break;
      }
    }
  }

  ServingTier* tier_;
  std::vector<DistArrayId> arrays_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<u64> ok_{0}, not_serving_{0}, other_{0};
};

TEST(ServingTierDriver, RequiresVersionedAsyncServing) {
  DriverConfig cfg;
  cfg.num_workers = 2;
  cfg.async_param_serving = false;
  Driver driver(cfg);
  auto a = driver.CreateDistArray("a", {8}, 1, Density::kDense);
  auto tier = driver.StartServingTier({a});
  EXPECT_FALSE(tier.ok());
}

TEST(ServingTierDriver, TrainingBitForBitWithServingOnOff) {
  Wavefront off = MakeWavefront();
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(off.driver->Execute(off.loop).ok());
  }
  const auto want_r = Snapshot(off.driver.get(), off.out_r);
  const auto want_c = Snapshot(off.driver.get(), off.out_c);

  Wavefront on = MakeWavefront();
  auto tier = on.driver->StartServingTier({on.out_r, on.out_c, on.table});
  ASSERT_TRUE(tier.ok()) << tier.status();
  Hammer hammer(*tier, {on.out_r, on.out_c, on.table});
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(on.driver->Execute(on.loop).ok());
  }
  hammer.StopAndJoin();

  EXPECT_TRUE(BitIdentical(want_r, Snapshot(on.driver.get(), on.out_r)));
  EXPECT_TRUE(BitIdentical(want_c, Snapshot(on.driver.get(), on.out_c)));
  EXPECT_GT(hammer.ok_.load(), 0u) << "hammer never got an answer";
  EXPECT_EQ(hammer.other_.load(), 0u);
}

TEST(ServingTierDriver, LookupsReturnLatestPublishedVersion) {
  Wavefront w = MakeWavefront();
  auto tier_or = w.driver->StartServingTier({w.out_r, w.out_c, w.table});
  ASSERT_TRUE(tier_or.ok()) << tier_or.status();
  ServingTier* tier = *tier_or;

  // Publish round 1 ran at start. Compile already scattered the arrays:
  // `table` is server-hosted (master always authoritative -> published),
  // while out_r (kRange, worker-resident) and out_c (kSpaceTime, rotating)
  // skip this round — their partitions live on workers right now.
  EXPECT_EQ(tier->published_version(w.table), 1u);
  EXPECT_EQ(tier->published_version(w.out_c), 0u);
  EXPECT_EQ(tier->published_version(w.out_r), 0u);
  LookupResult r = tier->Lookup(w.table, {3});
  ASSERT_EQ(r.status, LookupStatus::kOk);
  EXPECT_EQ(r.version, 1u);
  EXPECT_EQ(r.values[0], 4.0f);
  EXPECT_EQ(tier->Lookup(w.out_c, {0}).status, LookupStatus::kNotServing);

  for (int p = 1; p <= 3; ++p) {
    ASSERT_TRUE(w.driver->Execute(w.loop).ok());
    // Staleness bound: the boundary publish already happened inside
    // Execute(). out_c's rotated partitions returned to the master at the
    // boundary, so its lookups now reflect every completed pass exactly —
    // version p+1 (round 1 ran at start), zero passes stale.
    EXPECT_EQ(tier->published_version(w.out_c), static_cast<u64>(p) + 1);
    EXPECT_EQ(tier->published_version(w.table), static_cast<u64>(p) + 1);
    for (i64 j = 0; j < kCols; ++j) {
      r = tier->Lookup(w.out_c, {j});
      ASSERT_EQ(r.status, LookupStatus::kOk);
      EXPECT_EQ(r.version, static_cast<u64>(p) + 1);
      EXPECT_EQ(r.values[0], static_cast<f32>(p * (8 * j + 36)))
          << "pass " << p << " col " << j;
    }
    r = tier->Lookup(w.table, {3});
    ASSERT_EQ(r.status, LookupStatus::kOk);
    EXPECT_EQ(r.values[0], 4.0f);
    // out_r stays worker-resident across passes (space-partitioned, never
    // rotates home), so the authority rule keeps skipping it rather than
    // gathering — it must never serve a half-stale master copy.
    EXPECT_EQ(tier->published_version(w.out_r), 0u);
    EXPECT_EQ(tier->Lookup(w.out_r, {0}).status, LookupStatus::kNotServing);
  }
}

// The pin-release regression test: lookups hammer across pass boundaries
// while the driver repeatedly collapses a served master to flat
// (MutableCells). Before the QuiesceForCollapse handshake this CHECK-failed
// on Flat()'s zero-pin invariant.
TEST(ServingTierDriver, QuiesceAcrossPassBoundaryHammer) {
  Wavefront w = MakeWavefront();
  auto tier_or = w.driver->StartServingTier({w.out_r, w.out_c, w.table});
  ASSERT_TRUE(tier_or.ok()) << tier_or.status();
  Hammer hammer(*tier_or, {w.out_r, w.out_c, w.table}, /*threads=*/4);

  constexpr int kPasses = 6;
  for (int p = 0; p < kPasses; ++p) {
    ASSERT_TRUE(w.driver->Execute(w.loop).ok());
    // Forces the collapse path mid-hammer: gather (no-op at the boundary),
    // quiesce, Flat(). The next pass's boundary publish re-paginates.
    CellStore& flat = w.driver->MutableCells(w.out_r);
    EXPECT_EQ(flat.Get(0)[0], static_cast<f32>((p + 1) * 36));
  }
  hammer.StopAndJoin();

  EXPECT_GT(hammer.ok_.load(), 0u);
  EXPECT_EQ(hammer.other_.load(), 0u);
  // out_r was quiesced by the last MutableCells and (worker-resident) never
  // republished; out_c's served state is still exact after six collapses.
  EXPECT_EQ((*tier_or)->Lookup(w.out_r, {0}).status, LookupStatus::kNotServing);
  for (i64 j = 0; j < kCols; ++j) {
    const LookupResult r = (*tier_or)->Lookup(w.out_c, {j});
    ASSERT_EQ(r.status, LookupStatus::kOk);
    EXPECT_EQ(r.version, static_cast<u64>(kPasses) + 1);
    EXPECT_EQ(r.values[0], static_cast<f32>(kPasses * (8 * j + 36)));
  }
}

// ---------------------------------------------------------------------------
// Chaos, part 1: message-level drop / duplicate / delay faults with the tier
// active and hammering. Supervision retransmits; training stays bit-for-bit
// equal to the fault-free serving-off run.

TEST(ServingTierChaos, DropDupDelayStaysBitForBit) {
  Wavefront clean = MakeWavefront();
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(clean.driver->Execute(clean.loop).ok());
  }
  const auto want_r = Snapshot(clean.driver.get(), clean.out_r);
  const auto want_c = Snapshot(clean.driver.get(), clean.out_c);

  FaultPlan chaos;
  chaos.seed = 13;
  chaos.drop_prob = 0.05;
  chaos.dup_prob = 0.05;
  chaos.delay_prob = 0.05;
  Wavefront w = MakeWavefront(chaos);
  auto tier = w.driver->StartServingTier({w.out_r, w.out_c, w.table});
  ASSERT_TRUE(tier.ok()) << tier.status();
  Hammer hammer(*tier, {w.out_r, w.out_c, w.table});
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(w.driver->Execute(w.loop).ok());
  }
  hammer.StopAndJoin();

  EXPECT_TRUE(BitIdentical(want_r, Snapshot(w.driver.get(), w.out_r)));
  EXPECT_TRUE(BitIdentical(want_c, Snapshot(w.driver.get(), w.out_c)));
  EXPECT_GT(hammer.ok_.load(), 0u);
  EXPECT_EQ(hammer.other_.load(), 0u);
}

// Chaos, part 2: a worker crash mid-training with durability-log recovery
// and rejoin, the tier serving (and being quiesced/republished by the
// recovery restore) throughout. Uses the 1-D server-hosted workload the
// durability suite proves clean-vs-chaos identity on.

struct ServerWorkload {
  std::unique_ptr<Driver> driver;
  DistArrayId samples{}, table_r{}, table_w{};
  i32 loop = -1;
};

ServerWorkload MakeServerWorkload(FaultPlan fault_plan = {}) {
  constexpr i64 kSamples = 64;
  constexpr i64 kTable = 40;
  ServerWorkload w;
  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.seed = 5;
  cfg.param_server_shards = 4;
  cfg.fault_plan = fault_plan;
  if (cfg.fault_plan.Active()) {
    cfg.supervisor.enabled = true;
    cfg.supervisor.heartbeat_interval_seconds = 0.02;
    cfg.supervisor.retry_initial_seconds = 0.02;
    cfg.supervisor.death_timeout_seconds = 1.0;
  }
  w.driver = std::make_unique<Driver>(cfg);
  w.samples = w.driver->CreateDistArray("samples", {kSamples}, 3, Density::kSparse);
  w.table_r = w.driver->CreateDistArray("table_r", {kTable}, 1, Density::kDense);
  w.table_w = w.driver->CreateDistArray("table_w", {kTable}, 1, Density::kDense);
  {
    CellStore& cells = w.driver->MutableCells(w.samples);
    for (i64 s = 0; s < kSamples; ++s) {
      f32* v = cells.GetOrCreate(s);
      v[0] = static_cast<f32>(s % kTable);        // read key
      v[1] = static_cast<f32>((s * 7) % kTable);  // write key
      v[2] = 0.01f * static_cast<f32>(s % 5 + 1);
    }
    w.driver->MapCells(w.table_r, [](i64 key, f32* v) {
      v[0] = static_cast<f32>(key % 3);
    });
  }
  w.driver->RegisterBuffer(w.table_w, 1, MakeAddApplyFn());

  LoopSpec spec;
  spec.iter_space = w.samples;
  spec.iter_extents = {kSamples};
  spec.AddAccess(w.table_r, "table_r", {Expr::Runtime("rk")}, /*is_write=*/false);
  spec.AddAccess(w.table_w, "table_w", {Expr::Runtime("wk")}, /*is_write=*/true,
                 /*buffered=*/true);
  const DistArrayId table_r = w.table_r;
  const DistArrayId table_w = w.table_w;
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    (void)idx;
    const i64 rk[1] = {static_cast<i64>(value[0])};
    const i64 wk[1] = {static_cast<i64>(value[1])};
    const f32 upd = value[2] * (ctx.Read(table_r, rk)[0] + 1.0f);
    ctx.BufferUpdate(table_w, wk, &upd);
  };
  ParallelForOptions options;
  options.server_sync_rounds = 2;
  options.planner.replicate_threshold_floats = 0;  // both tables -> kServer
  auto loop = w.driver->Compile(spec, kernel, options);
  EXPECT_TRUE(loop.ok()) << loop.status();
  w.loop = *loop;
  return w;
}

TEST(ServingTierChaos, WorkerCrashRejoinWithTierActive) {
  const std::string dir = ::testing::TempDir() + "/serve_rejoin";

  ServerWorkload clean = MakeServerWorkload();
  {
    Driver::DurabilityOptions o;
    o.every_n_passes = 1;
    ASSERT_TRUE(clean.driver->EnableDurability({clean.table_w}, dir + "_clean", o).ok());
  }
  for (int p = 0; p < 5; ++p) {
    ASSERT_TRUE(clean.driver->Execute(clean.loop).ok());
  }
  const auto want = Snapshot(clean.driver.get(), clean.table_w);

  FaultPlan chaos;
  chaos.seed = 29;
  chaos.crashes = {{/*rank=*/1, /*pass=*/2, /*step=*/-1}};
  ServerWorkload w = MakeServerWorkload(chaos);
  {
    Driver::DurabilityOptions o;
    o.every_n_passes = 1;
    o.rejoin_crashed_workers = true;
    ASSERT_TRUE(w.driver->EnableDurability({w.table_w}, dir + "_chaos", o).ok());
  }
  auto tier = w.driver->StartServingTier({w.table_w, w.table_r});
  ASSERT_TRUE(tier.ok()) << tier.status();
  Hammer hammer(*tier, {w.table_w, w.table_r});
  for (int p = 0; p < 5; ++p) {
    ASSERT_TRUE(w.driver->Execute(w.loop).ok());
  }
  hammer.StopAndJoin();

  const RuntimeMetrics rm = w.driver->runtime_metrics();
  EXPECT_EQ(rm.crashes_triggered, 1u);
  EXPECT_EQ(rm.worker_rejoins, 1u);
  EXPECT_EQ(w.driver->live_ranks().size(), 4u);
  EXPECT_TRUE(BitIdentical(want, Snapshot(w.driver.get(), w.table_w)));
  EXPECT_GT(hammer.ok_.load(), 0u);
  EXPECT_EQ(hammer.other_.load(), 0u);
}

// ---------------------------------------------------------------------------
// Observability: serve.* counters/gauges and per-array dirty-page gauges +
// series all land in the registry.

TEST(ServingTierDriver, MetricsAndDirtyPageGaugesExported) {
  Wavefront w = MakeWavefront();
  auto tier_or = w.driver->StartServingTier({w.out_c, w.table});
  ASSERT_TRUE(tier_or.ok());
  for (int p = 0; p < 2; ++p) {
    ASSERT_TRUE(w.driver->Execute(w.loop).ok());
    (void)(*tier_or)->Lookup(w.out_c, {0, 1, 2, 3});
    (void)(*tier_or)->Lookup(w.table, {0, 1, 2, 3});
  }
  const MetricsRegistry reg = w.driver->ExportMetrics();
  EXPECT_GT(reg.Counter("serve.requests"), 0u);
  EXPECT_GT(reg.Counter("serve.ok"), 0u);
  EXPECT_GT(reg.Counter("serve.keys_looked_up"), 0u);
  EXPECT_GT(reg.Counter("serve.versions_published"), 0u);
  EXPECT_TRUE(reg.HasHistogram("serve.latency"));
  EXPECT_GE(reg.Gauge("serve.p99_seconds"), reg.Gauge("serve.p50_seconds"));
  // out_c is rewritten wholesale every pass: its last publish delta covers
  // its one page. The read-only table's delta is empty after the first.
  EXPECT_GT(reg.Gauge("versioned.dirty_pages.out_c"), 0.0);
  EXPECT_EQ(reg.Gauge("versioned.dirty_pages.table"), 0.0);
  // One dirty-page series point per publish of that array: out_c skipped the
  // start round (still scattered) and published at both pass boundaries; the
  // table published all three rounds. serve.qps records every round.
  EXPECT_EQ(reg.SeriesCopy("versioned.dirty_pages.out_c").size(), 2u);
  EXPECT_EQ(reg.SeriesCopy("versioned.dirty_pages.table").size(), 3u);
  EXPECT_EQ(reg.SeriesCopy("serve.qps").size(), 3u);

  // Stopping the tier keeps training (and a restart) working.
  w.driver->StopServingTier();
  EXPECT_EQ((*tier_or)->Lookup(w.out_c, {0}).status, LookupStatus::kShutdown);
  ASSERT_TRUE(w.driver->Execute(w.loop).ok());
  auto again = w.driver->StartServingTier({w.table});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->Lookup(w.table, {0}).status, LookupStatus::kOk);
}

}  // namespace
}  // namespace orion
