// DSM primitives: key spaces, cell stores (all three layouts), partitions,
// buffers, randomize, checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/rng.h"
#include "src/dsm/cell_store.h"
#include "src/dsm/checkpoint.h"
#include "src/dsm/dist_array_buffer.h"
#include "src/dsm/key_space.h"
#include "src/dsm/partition.h"
#include "src/dsm/randomize.h"

namespace orion {
namespace {

// ---- KeySpace ----

TEST(KeySpace, EncodeDecodeRoundtrip) {
  const KeySpace ks({4, 5, 6});
  EXPECT_EQ(ks.total(), 120);
  for (i64 a = 0; a < 4; ++a) {
    for (i64 b = 0; b < 5; ++b) {
      for (i64 c = 0; c < 6; ++c) {
        const i64 key = ks.Encode(std::vector<i64>{a, b, c});
        const auto idx = ks.Decode(key);
        EXPECT_EQ(idx[0], a);
        EXPECT_EQ(idx[1], b);
        EXPECT_EQ(idx[2], c);
        EXPECT_EQ(ks.Coord(key, 0), a);
        EXPECT_EQ(ks.Coord(key, 1), b);
        EXPECT_EQ(ks.Coord(key, 2), c);
      }
    }
  }
}

TEST(KeySpace, LastDimContiguous) {
  const KeySpace ks({3, 7});
  EXPECT_EQ(ks.Encode(std::vector<i64>{0, 1}) - ks.Encode(std::vector<i64>{0, 0}), 1);
}

TEST(KeySpace, ContainsBounds) {
  const KeySpace ks({3, 3});
  EXPECT_TRUE(ks.Contains(std::vector<i64>{2, 2}));
  EXPECT_FALSE(ks.Contains(std::vector<i64>{3, 0}));
  EXPECT_FALSE(ks.Contains(std::vector<i64>{0, -1}));
  EXPECT_FALSE(ks.Contains(std::vector<i64>{0}));
}

// ---- CellStore layouts (parameterized) ----

enum class StoreKind { kHashed, kFullDense, kDenseRange };

class CellStoreLayoutTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  CellStore Make(i32 value_dim) const {
    switch (GetParam()) {
      case StoreKind::kHashed:
        return CellStore(value_dim, CellStore::Layout::kHashed, 0);
      case StoreKind::kFullDense:
        return CellStore(value_dim, CellStore::Layout::kFullDense, 100);
      case StoreKind::kDenseRange:
        return CellStore::DenseRange(value_dim, 10, 109);
    }
    return CellStore();
  }
  i64 KeyFor(int i) const {
    return GetParam() == StoreKind::kDenseRange ? 10 + i : i;
  }
};

TEST_P(CellStoreLayoutTest, WriteReadBack) {
  CellStore s = Make(3);
  for (int i = 0; i < 50; ++i) {
    f32* v = s.GetOrCreate(KeyFor(i));
    v[0] = static_cast<f32>(i);
    v[2] = static_cast<f32>(-i);
  }
  for (int i = 0; i < 50; ++i) {
    const f32* v = s.Get(KeyFor(i));
    ASSERT_NE(v, nullptr);
    EXPECT_FLOAT_EQ(v[0], static_cast<f32>(i));
    EXPECT_FLOAT_EQ(v[2], static_cast<f32>(-i));
  }
}

TEST_P(CellStoreLayoutTest, SerializeRoundtrip) {
  CellStore s = Make(2);
  for (int i = 0; i < 30; ++i) {
    s.GetOrCreate(KeyFor(i))[1] = static_cast<f32>(i * i);
  }
  ByteWriter w;
  s.Serialize(&w);
  auto bytes = w.Take();
  ByteReader r(bytes);
  CellStore back = CellStore::Deserialize(&r);
  EXPECT_EQ(back.layout(), s.layout());
  EXPECT_EQ(back.NumCells(), s.NumCells());
  for (int i = 0; i < 30; ++i) {
    EXPECT_FLOAT_EQ(back.Get(KeyFor(i))[1], static_cast<f32>(i * i));
  }
}

TEST_P(CellStoreLayoutTest, ForEachVisitsEverythingOnce) {
  CellStore s = Make(1);
  for (int i = 0; i < 20; ++i) {
    *s.GetOrCreate(KeyFor(i)) = 1.0f;
  }
  i64 visits = 0;
  f64 sum = 0.0;
  s.ForEach([&](i64, f32* v) {
    ++visits;
    sum += v[0];
  });
  EXPECT_EQ(visits, s.NumCells());
  EXPECT_DOUBLE_EQ(sum, 20.0);  // untouched dense cells contribute zero
}

TEST_P(CellStoreLayoutTest, MergeAddAccumulates) {
  CellStore a = Make(2);
  CellStore b = Make(2);
  for (int i = 0; i < 10; ++i) {
    a.GetOrCreate(KeyFor(i))[0] = 1.0f;
    b.GetOrCreate(KeyFor(i))[0] = 2.0f;
  }
  a.MergeAdd(b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(a.Get(KeyFor(i))[0], 3.0f);
  }
}

TEST_P(CellStoreLayoutTest, ClearZeroesOrEmpties) {
  CellStore s = Make(1);
  *s.GetOrCreate(KeyFor(3)) = 9.0f;
  s.Clear();
  if (GetParam() == StoreKind::kHashed) {
    EXPECT_EQ(s.NumCells(), 0);
  } else {
    EXPECT_FLOAT_EQ(s.Get(KeyFor(3))[0], 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, CellStoreLayoutTest,
                         ::testing::Values(StoreKind::kHashed, StoreKind::kFullDense,
                                           StoreKind::kDenseRange));

TEST(CellStore, HashedInsertionOrderIsStable) {
  CellStore s(1, CellStore::Layout::kHashed, 0);
  const std::vector<i64> keys = {42, 7, 99, 1, 13};
  for (i64 k : keys) {
    s.GetOrCreate(k);
  }
  std::vector<i64> seen;
  s.ForEach([&](i64 k, f32*) { seen.push_back(k); });
  EXPECT_EQ(seen, keys);
}

TEST(CellStore, SliceCoversExactlyOnce) {
  CellStore s(1, CellStore::Layout::kHashed, 0);
  for (i64 k = 0; k < 103; ++k) {
    s.GetOrCreate(k * 7);
  }
  std::vector<int> visits(103, 0);
  for (int chunk = 0; chunk < 8; ++chunk) {
    s.ForEachSlice(chunk, 8, [&](i64 k, f32*) { ++visits[static_cast<size_t>(k / 7)]; });
  }
  for (int v : visits) {
    EXPECT_EQ(v, 1);
  }
}

// ---- RangeSplits / histograms ----

TEST(RangeSplits, EqualWidthCoversRange) {
  const auto s = RangeSplits::EqualWidth(100, 4);
  EXPECT_EQ(s.PartOf(0), 0);
  EXPECT_EQ(s.PartOf(24), 0);
  EXPECT_EQ(s.PartOf(25), 1);
  EXPECT_EQ(s.PartOf(99), 3);
}

TEST(RangeSplits, PartOfIsMonotone) {
  DimHistogram hist(0, 999, 128);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    hist.Add(rng.NextZipf(1000, 0.9));
  }
  const auto s = RangeSplits::FromHistogram(hist, 7);
  int prev = 0;
  for (i64 c = 0; c < 1000; ++c) {
    const int p = s.PartOf(c);
    EXPECT_GE(p, prev);
    EXPECT_LT(p, 7);
    prev = p;
  }
}

TEST(RangeSplits, HistogramBalancesSkew) {
  DimHistogram hist(0, 9999, 512);
  Rng rng(6);
  std::vector<i64> coords;
  for (int i = 0; i < 50000; ++i) {
    coords.push_back(rng.NextZipf(10000, 1.0));
    hist.Add(coords.back());
  }
  const int parts = 8;
  const auto balanced = RangeSplits::FromHistogram(hist, parts);
  const auto naive = RangeSplits::EqualWidth(10000, parts);
  std::vector<i64> balanced_load(parts, 0);
  std::vector<i64> naive_load(parts, 0);
  for (i64 c : coords) {
    ++balanced_load[static_cast<size_t>(balanced.PartOf(c))];
    ++naive_load[static_cast<size_t>(naive.PartOf(c))];
  }
  const i64 balanced_max = *std::max_element(balanced_load.begin(), balanced_load.end());
  const i64 naive_max = *std::max_element(naive_load.begin(), naive_load.end());
  EXPECT_LT(balanced_max, naive_max / 2) << "histogram splits should halve the max load";
}

TEST(RangeSplits, SerializeRoundtrip) {
  const auto s = RangeSplits::EqualWidth(1000, 5);
  ByteWriter w;
  s.Serialize(&w);
  auto bytes = w.Take();
  ByteReader r(bytes);
  const auto back = RangeSplits::Deserialize(&r);
  EXPECT_EQ(back.num_parts(), 5);
  EXPECT_EQ(back.uppers(), s.uppers());
}

// ---- DistArray buffers ----

TEST(Buffer, CoalescesAndApplies) {
  DistArrayBuffer buf(7, 2, MakeAddApplyFn(), MakeAddCombineFn());
  const f32 u1[2] = {1.0f, 2.0f};
  const f32 u2[2] = {3.0f, 4.0f};
  buf.Accumulate(5, u1);
  buf.Accumulate(5, u2);
  buf.Accumulate(9, u1);
  EXPECT_EQ(buf.NumPending(), 2);
  CellStore target(2, CellStore::Layout::kHashed, 0);
  target.GetOrCreate(5)[0] = 10.0f;
  CellStore drained = buf.Drain();
  EXPECT_EQ(buf.NumPending(), 0);
  DistArrayBuffer::ApplyTo(&target, drained, buf.apply_fn());
  EXPECT_FLOAT_EQ(target.Get(5)[0], 14.0f);
  EXPECT_FLOAT_EQ(target.Get(5)[1], 6.0f);
  EXPECT_FLOAT_EQ(target.Get(9)[0], 1.0f);
}

TEST(Buffer, CustomApplyUdf) {
  // Apply: cell[0] = max(cell[0], update[0]) — a non-additive UDF.
  auto apply = [](f32* cell, const f32* update, i32) {
    cell[0] = std::max(cell[0], update[0]);
  };
  DistArrayBuffer buf(7, 1, apply, MakeAddCombineFn());
  const f32 u = 5.0f;
  buf.Accumulate(1, &u);
  CellStore target(1, CellStore::Layout::kHashed, 0);
  target.GetOrCreate(1)[0] = 3.0f;
  DistArrayBuffer::ApplyTo(&target, buf.Drain(), buf.apply_fn());
  EXPECT_FLOAT_EQ(target.Get(1)[0], 5.0f);
}

// ---- Randomize ----

TEST(Randomize, IsABijection) {
  RandomPermutation perm(1000, 9);
  std::vector<bool> hit(1000, false);
  for (i64 x = 0; x < 1000; ++x) {
    const i64 y = perm.Map(x);
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 1000);
    EXPECT_FALSE(hit[static_cast<size_t>(y)]);
    hit[static_cast<size_t>(y)] = true;
    EXPECT_EQ(perm.Inverse(y), x);
  }
}

TEST(Randomize, DeterministicInSeed) {
  RandomPermutation a(100, 1);
  RandomPermutation b(100, 1);
  RandomPermutation c(100, 2);
  bool differs = false;
  for (i64 x = 0; x < 100; ++x) {
    EXPECT_EQ(a.Map(x), b.Map(x));
    differs = differs || a.Map(x) != c.Map(x);
  }
  EXPECT_TRUE(differs);
}

// ---- Checkpointing ----

TEST(Checkpoint, Roundtrip) {
  CellStore s(3, CellStore::Layout::kHashed, 0);
  for (i64 k = 0; k < 100; ++k) {
    s.GetOrCreate(k * 13)[1] = static_cast<f32>(k);
  }
  const std::string path = ::testing::TempDir() + "/orion_ckpt_test.bin";
  ASSERT_TRUE(CheckpointWrite(path, s).ok());
  auto back = CheckpointRead(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumCells(), 100);
  EXPECT_FLOAT_EQ(back->Get(13 * 7)[1], 7.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileFails) {
  auto result = CheckpointRead("/nonexistent/orion.ckpt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(Checkpoint, CorruptMagicRejected) {
  const std::string path = ::testing::TempDir() + "/orion_bad_ckpt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  auto result = CheckpointRead(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace orion
