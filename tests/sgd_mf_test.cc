// SGD MF: the Orion-parallelized program must pick the stratified 2D plan
// and match serial convergence per iteration (paper Fig. 9b).
#include <gtest/gtest.h>

#include "src/apps/sgd_mf.h"

namespace orion {
namespace {

RatingsConfig SmallData() {
  RatingsConfig d;
  d.rows = 300;
  d.cols = 240;
  d.nnz = 12000;
  d.true_rank = 4;
  d.seed = 7;
  return d;
}

TEST(SgdMf, PlannerPicks2DUnordered) {
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 4;
  SgdMfApp app(&driver, mf);
  auto data = GenerateRatings(SmallData());
  ASSERT_TRUE(app.Init(data, 300, 240).ok());

  const auto& plan = app.train_plan();
  EXPECT_EQ(plan.form, ParallelForm::k2D);
  EXPECT_FALSE(plan.ordered);
  // W aligned with rows (space), H rotated along cols (time) — or the
  // transpose, depending on sizes; either way both factor arrays are local.
  EXPECT_EQ(plan.placements.at(app.w()).scheme,
            plan.space_dim == 0 ? PartitionScheme::kRange : PartitionScheme::kSpaceTime);
  EXPECT_EQ(plan.placements.at(app.h()).scheme,
            plan.space_dim == 0 ? PartitionScheme::kSpaceTime : PartitionScheme::kRange);
}

TEST(SgdMf, MatchesSerialConvergence) {
  auto data = GenerateRatings(SmallData());

  SgdMfConfig mf;
  mf.rank = 4;
  mf.step_size = 0.02f;

  SerialSgdMf serial(data, 300, 240, mf);
  const f64 loss0 = serial.EvalLoss();
  std::vector<f64> serial_losses;
  for (int p = 0; p < 8; ++p) {
    serial.RunPass();
    serial_losses.push_back(serial.EvalLoss());
  }
  // The serial algorithm must actually converge on the planted data.
  EXPECT_LT(serial_losses.back(), 0.2 * loss0);

  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  SgdMfApp app(&driver, mf);
  ASSERT_TRUE(app.Init(data, 300, 240).ok());
  std::vector<f64> orion_losses;
  for (int p = 0; p < 8; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
    auto loss = app.EvalLoss();
    ASSERT_TRUE(loss.ok());
    orion_losses.push_back(*loss);
  }
  EXPECT_LT(orion_losses.back(), 0.2 * loss0);
  // Dependence-preserving parallelization: per-iteration progress should be
  // close to serial (not bit-identical — iteration order differs, which
  // serializability permits).
  EXPECT_LT(orion_losses.back(), 2.0 * serial_losses.back() + 1e-6);
}

TEST(SgdMf, AdaRevConverges) {
  auto data = GenerateRatings(SmallData());
  SgdMfConfig mf;
  mf.rank = 4;
  mf.adarev = true;
  mf.adarev_alpha = 0.1f;

  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  SgdMfApp app(&driver, mf);
  ASSERT_TRUE(app.Init(data, 300, 240).ok());
  EXPECT_EQ(app.train_plan().form, ParallelForm::k2D);

  auto first = app.EvalLoss();
  ASSERT_TRUE(first.ok());
  for (int p = 0; p < 10; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
  }
  auto last = app.EvalLoss();
  ASSERT_TRUE(last.ok());
  EXPECT_LT(*last, 0.5 * *first);
}

TEST(SgdMf, OrderedWavefrontAlsoConverges) {
  auto data = GenerateRatings(SmallData());
  SgdMfConfig mf;
  mf.rank = 4;
  mf.loop_options.ordered = true;

  DriverConfig cfg;
  cfg.num_workers = 3;
  Driver driver(cfg);
  SgdMfApp app(&driver, mf);
  ASSERT_TRUE(app.Init(data, 300, 240).ok());
  EXPECT_TRUE(app.train_plan().ordered);

  auto first = app.EvalLoss();
  ASSERT_TRUE(first.ok());
  for (int p = 0; p < 6; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
  }
  auto last = app.EvalLoss();
  ASSERT_TRUE(last.ok());
  EXPECT_LT(*last, 0.5 * *first);
}

}  // namespace
}  // namespace orion
