// Foundation utilities: status, serde, RNG, histogram, queues, thread pool,
// metrics registry.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/blocking_queue.h"
#include "src/common/histogram.h"
#include "src/common/metrics_registry.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace orion {
namespace {

// ---- Status / StatusOr ----

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad shape");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOut) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// ---- Serde ----

TEST(Serde, ScalarsRoundtrip) {
  ByteWriter w;
  w.Put<i32>(-7);
  w.Put<f64>(3.25);
  w.Put<u8>(255);
  auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_EQ(r.Get<i32>(), -7);
  EXPECT_DOUBLE_EQ(r.Get<f64>(), 3.25);
  EXPECT_EQ(r.Get<u8>(), 255);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, VectorsAndStrings) {
  ByteWriter w;
  w.PutVec(std::vector<i64>{1, 2, 3});
  w.PutString("orion");
  w.PutVec(std::vector<f32>{});
  auto bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_EQ(r.GetVec<i64>(), (std::vector<i64>{1, 2, 3}));
  EXPECT_EQ(r.GetString(), "orion");
  EXPECT_TRUE(r.GetVec<f32>().empty());
}

// ---- Rng ----

TEST(Rng, DeterministicInSeed) {
  Rng a(12);
  Rng b(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const f64 d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(5);
  i64 low_half = 0;
  for (int i = 0; i < 20000; ++i) {
    const i64 z = rng.NextZipf(1000, 1.0);
    ASSERT_GE(z, 0);
    ASSERT_LT(z, 1000);
    if (z < 100) {
      ++low_half;
    }
  }
  // Zipf(1.0): the first 10% of the range should hold well over half the mass.
  EXPECT_GT(low_half, 10000);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(6);
  Rng child = parent.Split();
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = parent.NextU64() != child.NextU64();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, GaussianMomentsSane) {
  Rng rng(7);
  f64 sum = 0.0;
  f64 sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const f64 g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

// ---- Histogram ----

TEST(Histogram, UniformDataSplitsEvenly) {
  DimHistogram hist(0, 99, 100);
  for (i64 k = 0; k < 100; ++k) {
    hist.Add(k, 10);
  }
  const auto splits = hist.EqualMassSplits(4);
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_NEAR(static_cast<double>(splits[0]), 24.0, 2.0);
  EXPECT_NEAR(static_cast<double>(splits[1]), 49.0, 2.0);
  EXPECT_NEAR(static_cast<double>(splits[2]), 74.0, 2.0);
}

TEST(Histogram, EmptyFallsBackToEqualWidth) {
  DimHistogram hist(0, 99, 10);
  const auto splits = hist.EqualMassSplits(2);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0], 49);
}

TEST(Histogram, SinglePartHasNoSplits) {
  DimHistogram hist(0, 9, 10);
  hist.Add(5);
  EXPECT_TRUE(hist.EqualMassSplits(1).empty());
}

TEST(Histogram, NegativeRangeSupported) {
  DimHistogram hist(-50, 49, 100);
  for (i64 k = -50; k < 50; ++k) {
    hist.Add(k);
  }
  const auto splits = hist.EqualMassSplits(2);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_NEAR(static_cast<double>(splits[0]), -1.0, 2.0);
}

// ---- BlockingQueue ----

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.TryPop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueue, CloseUnblocksConsumers) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  q.Close();
  consumer.join();
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) {
      q.Push(i);
    }
  });
  i64 sum = 0;
  for (int i = 0; i < 1000; ++i) {
    sum += *q.Pop();
  }
  producer.join();
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(BlockingQueue, PushAfterCloseIsRejected) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(2));
  // The pre-close item still drains; the rejected one was dropped.
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueue, PopWithTimeoutReturnsItem) {
  BlockingQueue<int> q;
  q.Push(42);
  auto v = q.PopWithTimeout(std::chrono::milliseconds(50));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(BlockingQueue, PopWithTimeoutTimesOutOnEmptyQueue) {
  BlockingQueue<int> q;
  auto v = q.PopWithTimeout(std::chrono::milliseconds(10));
  EXPECT_FALSE(v.has_value());
  EXPECT_FALSE(q.closed());  // a timeout is not a shutdown
}

TEST(BlockingQueue, PopWithTimeoutWakesOnLatePush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(7);
  });
  auto v = q.PopWithTimeout(std::chrono::seconds(5));
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

// ---- ThreadPool ----

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&](i64 lo, i64 hi) {
    for (i64 i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(WaitHistogram, MergeAddsBucketsAndKeepsMax) {
  WaitHistogram a;
  a.Add(5e-5);   // bucket 0
  a.Add(5e-4);   // bucket 1
  WaitHistogram b;
  b.Add(5e-4);   // bucket 1
  b.Add(2.0);    // open-ended last bucket
  WaitHistogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.total_count(), 4u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 2u);
  EXPECT_EQ(merged.counts[WaitHistogram::kNumBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(merged.total_seconds, a.total_seconds + b.total_seconds);
  EXPECT_DOUBLE_EQ(merged.max_seconds, 2.0);

  // Merging into an empty histogram reproduces the source exactly.
  WaitHistogram empty;
  empty.Merge(b);
  for (int i = 0; i < WaitHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(empty.counts[i], b.counts[i]);
  }
  EXPECT_DOUBLE_EQ(empty.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(empty.max_seconds, b.max_seconds);
}

TEST(WaitHistogram, ApproxPercentileStaysInsideBucketBounds) {
  WaitHistogram empty;
  EXPECT_DOUBLE_EQ(empty.ApproxPercentile(0.5), 0.0);

  // 100 samples all in the [1e-3, 1e-2) bucket: every quantile must land
  // inside that bucket's bounds and never exceed the observed max.
  WaitHistogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(5e-3);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.ApproxPercentile(q);
    EXPECT_GE(v, 1e-3) << "q=" << q;
    EXPECT_LE(v, 1e-2) << "q=" << q;
    EXPECT_LE(v, h.max_seconds + 1e-12) << "q=" << q;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(h.ApproxPercentile(0.1), h.ApproxPercentile(0.9));

  // Skewed mix: p50 sits in the low bucket, p99 reaches toward the tail.
  WaitHistogram mix;
  for (int i = 0; i < 90; ++i) {
    mix.Add(5e-4);
  }
  for (int i = 0; i < 10; ++i) {
    mix.Add(0.5);
  }
  EXPECT_LT(mix.ApproxPercentile(0.5), 1e-3);
  EXPECT_GT(mix.ApproxPercentile(0.99), 0.05);
  EXPECT_LE(mix.ApproxPercentile(1.0), mix.max_seconds + 1e-12);
}

// ---- MetricsRegistry ----

TEST(MetricsRegistry, CountersGaugesAndDefaults) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.Counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(reg.Gauge("absent"), 0.0);
  EXPECT_FALSE(reg.HasHistogram("absent"));

  reg.SetCounter("a", 3);
  reg.AddCounter("a", 2);
  reg.SetGauge("g", 1.5);
  EXPECT_EQ(reg.Counter("a"), 5u);
  EXPECT_DOUBLE_EQ(reg.Gauge("g"), 1.5);
}

TEST(MetricsRegistry, SeriesAccumulatesPerPassPoints) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.Series("pass.wall_seconds"), nullptr);
  reg.AppendSeries("pass.wall_seconds", 0.5);
  reg.AppendSeries("pass.wall_seconds", 0.25);
  reg.AppendSeries("prefetch.depth_effective", 2.0);
  const std::vector<double>* s = reg.Series("pass.wall_seconds");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, (std::vector<double>{0.5, 0.25}));
  ASSERT_NE(reg.Series("prefetch.depth_effective"), nullptr);
  EXPECT_EQ(reg.Series("prefetch.depth_effective")->size(), 1u);
}

TEST(MetricsRegistry, JsonIsDeterministicAndCarriesSeries) {
  auto build = [] {
    MetricsRegistry reg;
    reg.SetCounter("z.count", 7);
    reg.SetGauge("a.gauge", 0.125);
    reg.Histogram("w").Add(5e-4);
    reg.AppendSeries("s.two", 1.0);
    reg.AppendSeries("s.two", 2.5);
    reg.AppendSeries("s.one", -3.0);
    return reg;
  };
  const std::string a = build().ToJson();
  const std::string b = build().ToJson();
  EXPECT_EQ(a, b);  // byte-stable for identical contents (sorted keys)

  // The series section lists names sorted, each as a plain number array.
  EXPECT_NE(a.find("\"series\":{\"s.one\":[-3],\"s.two\":[1,2.5]}"), std::string::npos)
      << a;
  EXPECT_NE(a.find("\"counters\":{\"z.count\":7}"), std::string::npos) << a;

  // Empty registry still emits all four sections.
  const std::string empty = MetricsRegistry().ToJson();
  EXPECT_NE(empty.find("\"series\":{}"), std::string::npos);
  EXPECT_NE(empty.find("\"histograms\":{}"), std::string::npos);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace orion
